// Worker-parallel corpus encode and decode. JSON marshalling dominates
// the cost of persisting or replaying a stream, so both directions gain
// a pooled-buffer worker path: chunks are encoded (or decoded) by a
// small worker pool and re-sequenced through a reorder buffer, keeping
// the bytes on disk and the chunks handed to the caller identical to
// the serial path. The single-writer/single-reader protocol of
// StreamWriter and StreamReader is unchanged — parallelism is entirely
// internal.
package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"throughputlab/internal/stream"
)

// linePool recycles per-line encode/decode buffers across chunks and
// across writers. Buffers that ballooned past maxPooledLine are dropped
// instead of pinning chunk-sized allocations forever.
var linePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledLine = 4 << 20

func getLineBuf() *bytes.Buffer {
	b := linePool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putLineBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledLine {
		linePool.Put(b)
	}
}

// encJob is one chunk awaiting encoding, tagged with its output
// sequence number.
type encJob struct {
	seq  int
	line StreamChunk
}

// encodePipeline fans chunk encoding out to workers and re-sequences
// the encoded lines before they reach the underlying writer.
type encodePipeline struct {
	in   chan encJob
	ro   *stream.Reorder[*bytes.Buffer]
	wg   sync.WaitGroup
	done chan struct{}
	next int // next sequence number; single producer (WriteChunk)

	mu      sync.Mutex
	retired sync.Cond // signaled as written advances or the pipeline fails
	written int       // frames the sequencer has retired, for drain's barrier
	err     error
}

func (ep *encodePipeline) fail(err error) {
	ep.mu.Lock()
	if ep.err == nil {
		ep.err = err
	}
	ep.retired.Broadcast()
	ep.mu.Unlock()
}

func (ep *encodePipeline) firstErr() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.err
}

// retire counts one frame through the sequencer, waking drainers.
func (ep *encodePipeline) retire() {
	ep.mu.Lock()
	ep.written++
	ep.retired.Broadcast()
	ep.mu.Unlock()
}

// drain blocks until the sequencer has retired the first n submitted
// frames (they reached the bufio layer) or the pipeline failed.
func (ep *encodePipeline) drain(n int) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for ep.written < n && ep.err == nil {
		ep.retired.Wait()
	}
	return ep.err
}

// NewStreamWriterWorkers is NewStreamWriter with worker-parallel chunk
// encoding. workers <= 1 returns the plain serial writer. The output
// bytes are identical at any worker count: workers encode into pooled
// buffers concurrently, and a reorder buffer restores submission order
// before anything is written. WriteChunk must still be called from a
// single goroutine; errors from the encode/write pipeline surface on a
// later WriteChunk or at Close.
func NewStreamWriterWorkers(w io.Writer, public Public, meta StreamMeta, workers int) (*StreamWriter, error) {
	sw, err := NewStreamWriter(w, public, meta)
	if err != nil || workers <= 1 {
		return sw, err
	}
	sw.attachEncoders(workers)
	return sw, nil
}

// attachEncoders wires the worker encode pipeline onto a writer whose
// header is already on disk; shared by the fresh and resumed paths.
func (sw *StreamWriter) attachEncoders(workers int) {
	ep := &encodePipeline{
		in:   make(chan encJob, workers),
		ro:   stream.NewReorder[*bytes.Buffer](workers),
		done: make(chan struct{}),
	}
	ep.retired.L = &ep.mu
	for i := 0; i < workers; i++ {
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			// Workers pull jobs in submission order, so in-flight
			// sequence numbers are dense and a window of `workers`
			// guarantees progress. After a failure the worker keeps
			// draining so WriteChunk never wedges on a full channel.
			dead := false
			for job := range ep.in {
				if dead {
					continue
				}
				buf := getLineBuf()
				if err := json.NewEncoder(buf).Encode(job.line); err != nil {
					err = fmt.Errorf("export: encoding corpus stream: %w", err)
					ep.fail(err)
					ep.ro.Fail(err)
					putLineBuf(buf)
					dead = true
					continue
				}
				if !ep.ro.Put(job.seq, buf) {
					putLineBuf(buf)
					dead = true
				}
			}
		}()
	}
	go func() {
		for {
			buf, ok := ep.ro.Next()
			if !ok {
				break
			}
			if ep.firstErr() == nil {
				if _, err := sw.bw.Write(buf.Bytes()); err != nil {
					err = fmt.Errorf("export: writing corpus stream: %w", err)
					ep.fail(err)
					ep.ro.Fail(err)
				}
			}
			putLineBuf(buf)
			ep.retire()
		}
		close(ep.done)
	}()
	sw.enc = ep
}

// rawLine is one undecoded record line, tagged with its sequence
// number; err carries the read failure (io.EOF for a clean end of
// input) that stopped the line reader.
type rawLine struct {
	seq  int
	data []byte
	err  error
}

// decoded is one classified record: exactly one of chunk, footer, or
// err is set. readFail marks err as an I/O-level failure (needing the
// caller's wrapping) rather than an already-formatted decode error.
type decoded struct {
	chunk    *StreamChunk
	footer   *StreamFooter
	err      error
	readFail bool
}

// decodeRecord classifies and unmarshals one record line. It is the
// single decode routine shared by the serial and worker paths, so the
// two report identical errors.
func decodeRecord(rl rawLine) decoded {
	if rl.err != nil {
		return decoded{err: rl.err, readFail: true}
	}
	if bytes.HasPrefix(rl.data, []byte(`{"footer"`)) {
		var f StreamFooter
		if err := json.Unmarshal(rl.data, &f); err != nil {
			return decoded{err: fmt.Errorf("export: corpus stream: invalid footer: %w", err)}
		}
		return decoded{footer: &f}
	}
	var c StreamChunk
	if err := json.Unmarshal(rl.data, &c); err != nil {
		return decoded{err: fmt.Errorf("export: corpus stream: chunk %d: invalid line: %w", rl.seq, err)}
	}
	return decoded{chunk: &c}
}

// errReaderClosed kills the decode pipeline when the caller abandons a
// stream before its footer.
var errReaderClosed = errors.New("export: corpus stream reader closed")

// decodePipeline reads raw lines ahead of the caller and unmarshals
// them on workers, re-sequenced so Next still observes file order.
type decodePipeline struct {
	in       chan rawLine
	ro       *stream.Reorder[decoded]
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// OpenStreamWorkers is OpenStream with worker-parallel chunk decoding.
// workers <= 1 returns the plain serial reader. Next returns the same
// chunks, in the same order, with the same errors, at any worker
// count. A worker-backed reader holds up to roughly 2×workers decoded
// chunks in flight; call Close when abandoning it before EOF, or the
// decode goroutines leak.
func OpenStreamWorkers(r io.Reader, workers int) (*StreamReader, error) {
	sr, err := OpenStream(r)
	if err != nil || workers <= 1 {
		return sr, err
	}
	dp := &decodePipeline{
		in:   make(chan rawLine, workers),
		ro:   stream.NewReorder[decoded](workers),
		stop: make(chan struct{}),
	}
	dp.wg.Add(1)
	go func() { // line reader: the only goroutine touching sr.br
		defer dp.wg.Done()
		defer close(dp.in)
		for seq := 0; ; seq++ {
			data, err := sr.readLine()
			rl := rawLine{seq: seq, data: data, err: err}
			select {
			case dp.in <- rl:
			case <-dp.stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	for i := 0; i < workers; i++ {
		dp.wg.Add(1)
		go func() {
			defer dp.wg.Done()
			dead := false
			for rl := range dp.in {
				if dead {
					continue
				}
				if !dp.ro.Put(rl.seq, decodeRecord(rl)) {
					dead = true
				}
			}
		}()
	}
	go func() { dp.wg.Wait(); dp.ro.Close() }()
	sr.dp = dp
	return sr, nil
}

// Close releases a worker-backed reader's decode goroutines; it is a
// no-op for serial readers and after a completed replay. Safe to call
// more than once.
func (sr *StreamReader) Close() error {
	if sr.dp == nil {
		return nil
	}
	sr.dp.stopOnce.Do(func() {
		close(sr.dp.stop)
		sr.dp.ro.Fail(errReaderClosed)
	})
	sr.dp.wg.Wait()
	return nil
}

// ReadWorkers is Read with worker-parallel stream decoding. A
// single-blob dataset ignores the worker count (its decode is one
// JSON document); a chunked stream or columnar corpus is materialized
// through its worker-parallel reader.
func ReadWorkers(r io.Reader, workers int) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	isStream := false
	if head, err := br.Peek(len(streamMagic)); err == nil && bytes.HasPrefix(head, []byte(streamMagic)) {
		isStream = true
	} else if head, err := br.Peek(len(columnarMagic)); err == nil && string(head) == columnarMagic {
		isStream = true
	}
	if isStream {
		cr, err := OpenCorpusWorkers(br, workers)
		if err != nil {
			return nil, err
		}
		defer cr.Close()
		return materializeCorpus(cr)
	}
	return Read(br)
}
