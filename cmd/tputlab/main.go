// Command tputlab regenerates the paper's tables and figures from the
// synthetic Internet.
//
// Usage:
//
//	tputlab list
//	tputlab run <experiment>|all [-scale small|default|large] [-seed N] [-tests N] [-parallel N]
//	tputlab bench [-out FILE] [-note TEXT]
//
// Example:
//
//	tputlab run fig5 -scale small
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"throughputlab/internal/datasets"
	"throughputlab/internal/experiments"
	"throughputlab/internal/faults"
	"throughputlab/internal/obs"
	"throughputlab/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Paper)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "report":
		if err := reportCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "bench":
		if err := benchCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tputlab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tputlab list                                  show available experiments
  tputlab run <name>|all [flags]                regenerate a table/figure
  tputlab report [flags]                        caveat-annotated congestion report (§7 checklist)
  tputlab bench [-out FILE] [-note TEXT]        write a BENCH_<date>.json performance baseline

flags for run/report:
  -scale small|default|large   topology/corpus scale (default "default")
  -json                  (run) emit the result struct as JSON
  -seed N                generation seed (default 1)
  -tests N               NDT corpus size (0 = scale default)
  -parallel N            engine worker count (default GOMAXPROCS);
                         results are identical for every N
  -genworkers N          world-generation worker count (default
                         GOMAXPROCS); the world is byte-identical
                         for every N
  -faults PROFILE        deterministic fault injection: off (default),
                         light, moderate or heavy; degraded data is
                         skipped by inference and accounted in the
                         report's data-completeness section
  -faultseed N           seed for the fault streams (default: -seed);
                         a fixed profile+seed yields a byte-identical
                         corpus at every -parallel value
  -metrics               print the phase-span tree and pipeline metrics
                         (cache hit rates, per-shard counts, fallbacks)
                         to stderr; stdout stays byte-identical
  -metrics-json FILE     write the metrics registry dump as JSON`)
}

// scaleOptions maps a -scale value to its environment options; unknown
// values are a usage error, and run and report accept the same set.
func scaleOptions(scale string) (experiments.Options, error) {
	switch scale {
	case "default":
		return experiments.DefaultOptions(), nil
	case "small":
		return experiments.QuickOptions(), nil
	case "large":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.LargeScale()
		return opts, nil
	default:
		return experiments.Options{}, fmt.Errorf("invalid -scale %q (valid: small, default, large)", scale)
	}
}

// commonFlags is the flag/Options-building block shared by runCmd and
// reportCmd (it was duplicated verbatim between them before).
type commonFlags struct {
	scale       *string
	seed        *int64
	tests       *int
	workers     *int
	genWorkers  *int
	faults      *string
	faultSeed   *int64
	metrics     *bool
	metricsJSON *string
}

// addCommonFlags registers the run/report flag set on fs.
func addCommonFlags(fs *flag.FlagSet) *commonFlags {
	return &commonFlags{
		scale:       fs.String("scale", "default", "small, default or large"),
		seed:        fs.Int64("seed", 1, "generation seed"),
		tests:       fs.Int("tests", 0, "NDT corpus size override"),
		workers:     fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker count"),
		genWorkers:  fs.Int("genworkers", runtime.GOMAXPROCS(0), "world-generation worker count"),
		faults:      fs.String("faults", "off", "fault-injection profile: off, light, moderate or heavy"),
		faultSeed:   fs.Int64("faultseed", 0, "fault-injection seed (0 = generation seed)"),
		metrics:     fs.Bool("metrics", false, "print phase spans and pipeline metrics to stderr"),
		metricsJSON: fs.String("metrics-json", "", "write the metrics registry dump to this file as JSON"),
	}
}

// validateWorkers rejects non-positive worker counts with a usage-style
// error naming the flag, instead of silently clamping (a -parallel 0
// passed by a wrapper script is a bug worth surfacing, not a request
// for serial execution).
func validateWorkers(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("-%s must be >= 1 (got %d)", flagName, n)
	}
	return nil
}

// options assembles the experiment Options from the parsed flags,
// attaching a fresh obs registry when metrics were requested (nil
// otherwise, which disables instrumentation throughout the pipeline).
func (cf *commonFlags) options() (experiments.Options, *obs.Registry, error) {
	opts, err := scaleOptions(*cf.scale)
	if err != nil {
		return experiments.Options{}, nil, err
	}
	if err := validateWorkers("parallel", *cf.workers); err != nil {
		return experiments.Options{}, nil, err
	}
	if err := validateWorkers("genworkers", *cf.genWorkers); err != nil {
		return experiments.Options{}, nil, err
	}
	prof, err := faults.ByName(*cf.faults)
	if err != nil {
		return experiments.Options{}, nil, err
	}
	opts.Topo.Seed = *cf.seed
	opts.Topo.Workers = *cf.genWorkers
	if *cf.tests > 0 {
		opts.Collect.Tests = *cf.tests
	}
	opts.Collect.Faults = prof
	opts.Collect.FaultSeed = *cf.faultSeed
	opts.Workers = *cf.workers
	var reg *obs.Registry
	if *cf.metrics || *cf.metricsJSON != "" {
		reg = obs.NewRegistry()
		opts.Obs = reg
	}
	return opts, reg, nil
}

// emitMetrics renders the registry per the flags: the human summary to
// stderr (-metrics), the JSON dump to a file (-metrics-json). stdout is
// never touched, so experiment output stays byte-identical.
func (cf *commonFlags) emitMetrics(reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	if *cf.metrics {
		fmt.Fprint(os.Stderr, reg.Summary())
	}
	if *cf.metricsJSON != "" {
		f, err := os.Create(*cf.metricsJSON)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func reportCmd(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	cf := addCommonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, reg, err := cf.options()
	if err != nil {
		return err
	}
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return err
	}
	sp := reg.Span("report")
	out := report.Build(env, report.DefaultConfig()).Render()
	sp.End()
	fmt.Println(out)
	return cf.emitMetrics(reg)
}

func runCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("run requires an experiment name (try 'tputlab list')")
	}
	name := args[0]
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cf := addCommonFlags(fs)
	asJSON := fs.Bool("json", false, "emit the result struct as JSON instead of a table")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opts, reg, err := cf.options()
	if err != nil {
		return err
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating world (scale=%s seed=%d parallel=%d)...\n", *cf.scale, *cf.seed, *cf.workers)
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "world: %s\n", env.World.Topo.CollectStats())
	fmt.Fprintf(os.Stderr, "platforms: %d M-Lab servers, %d Speedtest servers; corpus: %d tests, %d traces (%.1fs)\n",
		len(env.World.MLabServers()), len(env.World.Speedtest),
		len(env.Corpus.Tests), len(env.Corpus.Traces), time.Since(start).Seconds())

	if name == "all" {
		out, stats, err := experiments.RunParallel(env, *cf.workers)
		fmt.Print(out)
		fmt.Fprint(os.Stderr, stats.Summary())
		if err != nil {
			return err
		}
		return cf.emitMetrics(reg)
	}
	entry, ok := experiments.Find(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try 'tputlab list')", name)
	}
	sp := reg.Span("experiments")
	child := sp.Child(entry.Name)
	res, err := entry.Run(env)
	child.End()
	sp.End()
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		return cf.emitMetrics(reg)
	}
	fmt.Println(res.Render())
	return cf.emitMetrics(reg)
}
