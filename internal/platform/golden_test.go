package platform

import (
	"fmt"
	"testing"

	"throughputlab/internal/obs"
)

// seedCorpusHash is the corpus FNV hash of the small-scale campaign
// (SmallConfig world, smallCollect config) measured before the
// resolver memoization layer landed. The caches, the delay matrix, the
// weighted samplers, and every hot-path allocation cut must leave the
// corpus byte-identical, so this constant must never change for
// performance work; it moves only when the model itself intentionally
// changes.
const seedCorpusHash = 0x62321200631590a1

// TestCorpusGoldenSeedHash pins the collected corpus — with the cached
// resolver, at several worker counts — to the pre-caching seed hash.
func TestCorpusGoldenSeedHash(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c, err := CollectParallel(world, smallCollect(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := corpusHash(c); got != seedCorpusHash {
			t.Errorf("corpus hash with %d workers = %#x, want seed %#x", workers, got, seedCorpusHash)
		}
	}
}

// TestCorpusGoldenSeedHashWithObs pins the observability invariance
// guarantee: a metrics-enabled collection (live registry shared by all
// shards and workers) produces the byte-identical corpus, still equal
// to the seed hash, at workers 1/2/8 — and the registry actually saw
// the campaign. Under -race this also exercises concurrent shard
// updates against one registry on the real pipeline.
func TestCorpusGoldenSeedHashWithObs(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		reg := obs.NewRegistry()
		cfg := smallCollect()
		cfg.Obs = reg
		c, err := CollectParallel(world, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := corpusHash(c); got != seedCorpusHash {
			t.Errorf("instrumented corpus hash with %d workers = %#x, want seed %#x",
				workers, got, seedCorpusHash)
		}
		if got := reg.Counter("collect.tests").Value(); got != uint64(len(c.Tests)) {
			t.Errorf("collect.tests = %d, want %d", got, len(c.Tests))
		}
		if got := reg.Counter("collect.traces").Value(); got != uint64(len(c.Traces)) {
			t.Errorf("collect.traces = %d, want %d", got, len(c.Traces))
		}
		if got := reg.Counter("collect.trace.rejected_busy").Value(); got != uint64(c.TestsWithoutTrace) {
			t.Errorf("busy rejections = %d, want %d", got, c.TestsWithoutTrace)
		}
		var shardTests int64
		for s := 0; s < DefaultShards; s++ {
			shardTests += reg.Gauge(fmt.Sprintf("collect.shard.%02d.tests", s)).Value()
		}
		if shardTests != int64(len(c.Tests)) {
			t.Errorf("per-shard test gauges sum to %d, want %d", shardTests, len(c.Tests))
		}
		d := reg.Snapshot()
		if len(d.Spans) == 0 || d.Spans[0].Name != "collect" {
			t.Fatalf("missing collect span tree: %+v", d.Spans)
		}
		phases := map[string]bool{}
		for _, c := range d.Spans[0].Children {
			phases[c.Name] = true
		}
		for _, want := range []string{"collect.population", "collect.schedule", "collect.sweep", "collect.execute"} {
			if !phases[want] {
				t.Errorf("collect span missing child %q (have %v)", want, phases)
			}
		}
	}
}

// TestCorpusGoldenSeedHashFullTelemetry extends the invariance
// guarantee to the whole live-telemetry stack: with the
// simulated-clock sampler AND the progress event bus attached — on the
// barrier path and on the chunk-pipelined path, at workers 1/2/8 — the
// corpus still hashes to the seed value, the sampler stamped at least
// one point per simulated hour of the campaign on a gap-free grid, and
// the bus saw the chunk stream end with collect.done.
func TestCorpusGoldenSeedHashFullTelemetry(t *testing.T) {
	for _, pipeline := range []int{0, 4} {
		for _, workers := range []int{1, 2, 8} {
			reg := obs.NewRegistry()
			sampler := reg.EnableTimeSeries(60, 0, nil)
			bus := reg.EnableEvents(4096)
			cfg := smallCollect()
			cfg.Obs = reg
			cfg.PipelineChunks = pipeline
			c, err := CollectParallel(world, cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := corpusHash(c); got != seedCorpusHash {
				t.Errorf("telemetered corpus hash (pipeline=%d workers=%d) = %#x, want seed %#x",
					pipeline, workers, got, seedCorpusHash)
			}
			bus.Close()

			sr := sampler.Series("collect.tests")
			if sr == nil {
				t.Fatal("sampler has no collect.tests series")
			}
			pts := sr.Points()
			if len(pts) < 2 {
				t.Fatalf("series has %d points, want >= 2 (one per simulated hour)", len(pts))
			}
			for i := 1; i < len(pts)-1; i++ {
				if pts[i].Minute != pts[i-1].Minute+60 {
					t.Fatalf("hourly grid has a gap: %d -> %d", pts[i-1].Minute, pts[i].Minute)
				}
			}
			if got := pts[len(pts)-1].Value; got != float64(len(c.Tests)) {
				t.Errorf("final sample = %g, want %d (all tests counted by campaign end)", got, len(c.Tests))
			}

			st := bus.Stats()
			if st.ByKind["collect.chunk"] == 0 {
				t.Errorf("no collect.chunk events delivered: %+v", st.ByKind)
			}
			if st.ByKind["collect.done"] != 1 {
				t.Errorf("collect.done events = %d, want 1", st.ByKind["collect.done"])
			}
		}
	}
}
