package netaddr

// Text marshaling so addresses and prefixes serialize as dotted-quad
// strings in JSON datasets rather than opaque integers.

// MarshalText implements encoding.TextMarshaler.
func (a Addr) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Addr) UnmarshalText(b []byte) error {
	v, err := ParseAddr(string(b))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (p Prefix) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Prefix) UnmarshalText(b []byte) error {
	v, err := ParsePrefix(string(b))
	if err != nil {
		return err
	}
	*p = v
	return nil
}
