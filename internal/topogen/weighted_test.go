package topogen

import (
	"math/rand"
	"testing"

	"throughputlab/internal/datasets"
)

// linearWeightedChoice is the pre-optimization implementation: a
// subtractive scan returning the first index whose cumulative weight
// strictly exceeds the draw. The binary-search version must replay its
// draws exactly — stub placement feeds the master RNG stream, so any
// divergence would reshuffle the whole world.
func linearWeightedChoice(weights []float64, rng *rand.Rand) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func TestWeightedChoiceMatchesLinearScan(t *testing.T) {
	// The production weight vector first: identical draws here are what
	// keep the generated world byte-identical across the rewrite.
	metros := datasets.USMetros()
	metroWeights := make([]float64, len(metros))
	for i, m := range metros {
		metroWeights[i] = m.Weight
	}
	vectors := [][]float64{
		metroWeights,
		{1},
		{1, 0, 2},        // zero weight mid-vector
		{0, 0, 5},        // leading zeros
		{2, 3, 0},        // trailing zero
		{0.1, 0.1, 0.1},  // uniform
		{1e-9, 1, 1e-09}, // extreme spread
	}
	for vi, weights := range vectors {
		chooser := newWeightedChooser(weights)
		rngA := rand.New(rand.NewSource(int64(vi + 1)))
		rngB := rand.New(rand.NewSource(int64(vi + 1)))
		for d := 0; d < 10000; d++ {
			want := linearWeightedChoice(weights, rngA)
			got := chooser.pick(rngB)
			if got != want {
				t.Fatalf("vector %d draw %d: pick=%d, linear scan=%d", vi, d, got, want)
			}
		}
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	// Sanity: zero-weight entries are never drawn and the distribution
	// tracks the weights.
	weights := []float64{1, 0, 3}
	chooser := newWeightedChooser(weights)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, len(weights))
	const n = 40000
	for i := 0; i < n; i++ {
		counts[chooser.pick(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	frac := float64(counts[2]) / n
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("index 2 drawn %.3f of the time, want ~0.75", frac)
	}
}
