package main

import (
	"testing"
)

func TestRunCmdUnknownExperiment(t *testing.T) {
	if err := runCmd([]string{"nosuch", "-scale", "small", "-tests", "50"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := runCmd(nil); err == nil {
		t.Error("missing experiment name should error")
	}
}

func TestScaleValidation(t *testing.T) {
	// run and report accept the same scale set and reject anything
	// else with a usage error, before any world is built.
	for _, scale := range []string{"small", "default", "medium", "large", "xlarge"} {
		if _, err := scaleOptions(scale); err != nil {
			t.Errorf("scale %q rejected: %v", scale, err)
		}
	}
	// xlarge is the million-test streaming profile.
	if opts, _ := scaleOptions("xlarge"); opts.Collect.Tests != 1_000_000 {
		t.Errorf("xlarge schedules %d tests, want 1000000", opts.Collect.Tests)
	}
	for _, scale := range []string{"tiny", "huge", "", "Default"} {
		if _, err := scaleOptions(scale); err == nil {
			t.Errorf("scale %q accepted, want usage error", scale)
		}
	}
	if err := runCmd([]string{"table1", "-scale", "tiny"}); err == nil {
		t.Error("run with invalid -scale should error")
	}
	if err := reportCmd([]string{"-scale", "tiny"}); err == nil {
		t.Error("report with invalid -scale should error")
	}
}

func TestWorkerCountValidation(t *testing.T) {
	// Zero or negative worker counts are a usage error on every
	// subcommand that accepts them, raised before any world is built.
	cases := [][]string{
		{"-parallel", "0"},
		{"-parallel", "-3"},
		{"-genworkers", "0"},
		{"-genworkers", "-1"},
	}
	for _, c := range cases {
		if err := runCmd(append([]string{"table1", "-scale", "small"}, c...)); err == nil {
			t.Errorf("run %v accepted, want error", c)
		}
		if err := reportCmd(append([]string{"-scale", "small"}, c...)); err == nil {
			t.Errorf("report %v accepted, want error", c)
		}
		if err := benchCmd(append([]string{"-quick"}, c...)); err == nil {
			t.Errorf("bench %v accepted, want error", c)
		}
	}
	if err := validateWorkers("parallel", 1); err != nil {
		t.Errorf("validateWorkers(1): %v", err)
	}
}

func TestFaultProfileValidation(t *testing.T) {
	if err := runCmd([]string{"table1", "-scale", "small", "-faults", "nosuch"}); err == nil {
		t.Error("unknown -faults profile accepted on run")
	}
	if err := reportCmd([]string{"-scale", "small", "-faults", "nosuch"}); err == nil {
		t.Error("unknown -faults profile accepted on report")
	}
}

func TestRunCmdSmokeTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	// table1 is the cheapest experiment; a tiny corpus keeps this fast.
	if err := runCmd([]string{"table1", "-scale", "small", "-tests", "200"}); err != nil {
		t.Fatalf("runCmd table1: %v", err)
	}
}

func TestReportCmdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	if err := reportCmd([]string{"-scale", "small", "-tests", "1500"}); err != nil {
		t.Fatalf("reportCmd: %v", err)
	}
}

func TestReportCorpusFlagValidation(t *testing.T) {
	if err := reportCmd([]string{"-corpus", "a.ndjson", "-corpus-out", "b.ndjson"}); err == nil {
		t.Error("-corpus with -corpus-out should be a usage error")
	}
	if err := reportCmd([]string{"-corpus", "/nonexistent/corpus.ndjson"}); err == nil {
		t.Error("missing corpus file should error")
	}
}

func TestReportStreamRoundTripSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	// The full cycle the CI smoke job runs: a streamed campaign persisted
	// with -corpus-out, then re-reported from the file without a world.
	path := t.TempDir() + "/corpus.ndjson"
	if err := reportCmd([]string{"-scale", "small", "-tests", "1200",
		"-stream", "-corpus-out", path}); err != nil {
		t.Fatalf("report -stream -corpus-out: %v", err)
	}
	if err := reportCmd([]string{"-corpus", path}); err != nil {
		t.Fatalf("report -corpus: %v", err)
	}
}
