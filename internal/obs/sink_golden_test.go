package obs

import (
	"encoding/json"
	"testing"
)

// zeroSpanMillis strips the only nondeterministic field of a dump —
// measured wall durations — so the remainder can be compared to a
// golden document byte for byte.
func zeroSpanMillis(spans []SpanDump) {
	for i := range spans {
		spans[i].Millis = 0
		zeroSpanMillis(spans[i].Children)
	}
}

// TestSnapshotGoldenSchema pins the exact serialized shape of a fully
// telemetered dump — counters, gauges, histograms with percentiles,
// spans, simulated-clock series, and event stats. The CI metrics and
// telemetry jobs, and any external dashboard, parse this document; a
// key rename or structural change must show up here as a diff, not in
// a broken consumer.
func TestSnapshotGoldenSchema(t *testing.T) {
	r := NewRegistry()
	r.Counter("collect.tests").Add(42)
	r.Gauge("collect.stream.chunks").Set(3)
	r.Histogram("match.delay", Bounds(10, 100)).Observe(50)
	sp := r.Span("collect")
	sp.Child("collect.execute").End()
	sp.End()
	r.EnableTimeSeries(60, 0, func(name string) bool { return name == "collect.tests" }).Advance(60)
	bus := r.EnableEvents(8)
	bus.Publish("collect.chunk", "", 60, 0)
	bus.Close()

	d := r.Snapshot()
	zeroSpanMillis(d.Spans)
	got, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "counters": {
    "collect.tests": 42
  },
  "gauges": {
    "collect.stream.chunks": 3
  },
  "histograms": {
    "match.delay": {
      "count": 1,
      "sum": 50,
      "p50": 100,
      "p90": 100,
      "p99": 100,
      "buckets": [
        {
          "le": "10",
          "count": 0
        },
        {
          "le": "100",
          "count": 1
        },
        {
          "le": "+Inf",
          "count": 0
        }
      ]
    }
  },
  "spans": [
    {
      "name": "collect",
      "ms": 0,
      "children": [
        {
          "name": "collect.execute",
          "ms": 0
        }
      ]
    }
  ],
  "series": {
    "collect.tests": {
      "kind": "counter",
      "step_minutes": 60,
      "points": [
        {
          "m": 60,
          "v": 42
        }
      ]
    }
  },
  "events": {
    "published": 1,
    "dropped": 0,
    "by_kind": {
      "collect.chunk": 1
    }
  }
}`
	if string(got) != golden {
		t.Errorf("dump schema drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
