package experiments

import (
	"fmt"
	"sort"
	"strings"

	"throughputlab/internal/core"
	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

// ---- §4.1: matching rates (E9) ----

// MatchingResult reproduces the traceroute-association analysis.
type MatchingResult struct {
	// Rows sweep window sizes for both modes.
	Rows []struct {
		WindowMin  int
		AfterRate  float64
		AroundRate float64
	}
	// LostToBusyCollector is the ground-truth count of tests whose
	// traceroute the single-threaded collector skipped.
	LostToBusyCollector int
	Total               int
	// HighVolumeTotal and HighVolumeAfterRate model the March-2017
	// regime the paper checked (§4.1): an ~8x larger monthly corpus
	// matched at about the same rate (76%), because the loss is
	// collector scheduling, not corpus size.
	HighVolumeTotal     int
	HighVolumeAfterRate float64
}

// Matching sweeps the association window and repeats the 10-minute
// analysis on a higher-volume corpus.
func Matching(e *Env) *MatchingResult {
	res := &MatchingResult{
		LostToBusyCollector: e.Corpus.TestsWithoutTrace,
		Total:               len(e.Corpus.Tests),
	}
	for _, w := range []int{1, 2, 5, 10, 20} {
		after := core.MatchTraces(e.Corpus.Tests, e.Corpus.Traces, w, core.WindowAfter)
		around := core.MatchTraces(e.Corpus.Tests, e.Corpus.Traces, w, core.WindowAround)
		res.Rows = append(res.Rows, struct {
			WindowMin  int
			AfterRate  float64
			AroundRate float64
		}{w, after.Rate(), around.Rate()})
	}

	// The 2017-style corpus: double the monthly volume on the same
	// world and infrastructure.
	cfg := e.Opts.Collect
	cfg.Tests *= 2
	cfg.Seed += 9000
	if big, err := platform.Collect(e.World, cfg); err == nil {
		m := core.MatchTraces(big.Tests, big.Traces, 10, core.WindowAfter)
		res.HighVolumeTotal = len(big.Tests)
		res.HighVolumeAfterRate = m.Rate()
	}
	return res
}

// Render prints the sweep.
func (r *MatchingResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.WindowMin), pct(row.AfterRate), pct(row.AroundRate),
		})
	}
	out := "§4.1 — NDT↔Paris-traceroute association rates by window\n" +
		table([]string{"window (min)", "after-only", "±window"}, rows) +
		fmt.Sprintf("\ntraceroutes lost to the single-threaded collector: %d of %d tests (%.1f%%)\n",
			r.LostToBusyCollector, r.Total, 100*float64(r.LostToBusyCollector)/float64(r.Total))
	if r.HighVolumeTotal > 0 {
		out += fmt.Sprintf("2017-regime corpus (%d tests): %s matched at 10 min after — volume does not fix the association (§4.1)\n",
			r.HighVolumeTotal, pct(r.HighVolumeAfterRate))
	}
	return out
}

// ---- §6.2: threshold sensitivity (E12) ----

// ThresholdsResult is the detector sweep against simulator ground
// truth.
type ThresholdsResult struct {
	Points []core.ThresholdPoint
	Groups int
}

// Thresholds sweeps the congestion-drop threshold over all
// sufficiently large (server net+metro, client ISP) groups.
func Thresholds(e *Env) *ThresholdsResult {
	type gkey struct{ net, metro, isp string }
	groups := map[gkey][]*ndt.Test{}
	sat := map[gkey]int{}
	for _, t := range e.Corpus.Tests {
		k := gkey{t.ServerNet, t.ServerMetro, t.ClientISP}
		groups[k] = append(groups[k], t)
		if t.TruthSaturated {
			sat[k]++
		}
	}
	keys := make([]gkey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.net != b.net {
			return a.net < b.net
		}
		if a.metro != b.metro {
			return a.metro < b.metro
		}
		return a.isp < b.isp
	})
	var labeled []core.LabeledGroup
	for _, k := range keys {
		tests := groups[k]
		if len(tests) < 120 {
			continue
		}
		labeled = append(labeled, core.LabeledGroup{
			Name:           fmt.Sprintf("%s/%s→%s", k.net, k.metro, k.isp),
			Series:         core.BuildSeries(tests, e.HourOf),
			TrulyCongested: float64(sat[k])/float64(len(tests)) > 0.05,
		})
	}
	cfg := core.DefaultDetector()
	cfg.MinSamples = 15
	ths := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	return &ThresholdsResult{
		Points: core.ThresholdSweep(labeled, ths, cfg),
		Groups: len(labeled),
	}
}

// Render prints the sensitivity table.
func (r *ThresholdsResult) Render() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Threshold),
			fmt.Sprintf("%d", p.TruePos), fmt.Sprintf("%d", p.FalsePos),
			fmt.Sprintf("%d", p.FalseNeg), fmt.Sprintf("%d", p.TrueNeg),
			fmt.Sprintf("%d", p.Undecided),
			pct(p.Precision()), pct(p.Recall()),
		})
	}
	return fmt.Sprintf("§6.2 — congestion-threshold sensitivity over %d groups\n", r.Groups) +
		table([]string{"drop thr", "TP", "FP", "FN", "TN", "undecided", "precision", "recall"}, rows)
}

// ---- §6.1: bias diagnostics ----

// BiasResult summarizes crowdsourcing-bias diagnostics per ISP.
type BiasResult struct {
	Rows []struct {
		ISP    string
		Report core.BiasReport
		Tests  int
	}
}

// BiasDiagnostics computes §6.1's health checks for each ISP's tests.
func BiasDiagnostics(e *Env) *BiasResult {
	byISP := map[string][]*ndt.Test{}
	for _, t := range e.Corpus.Tests {
		byISP[t.ClientISP] = append(byISP[t.ClientISP], t)
	}
	names := make([]string, 0, len(byISP))
	for n := range byISP {
		names = append(names, n)
	}
	sort.Strings(names)
	res := &BiasResult{}
	for _, n := range names {
		res.Rows = append(res.Rows, struct {
			ISP    string
			Report core.BiasReport
			Tests  int
		}{n, core.Bias(byISP[n], e.HourOf, 30), len(byISP[n])})
	}
	return res
}

// Render prints the diagnostics.
func (r *BiasResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.ISP, fmt.Sprintf("%d", row.Tests),
			fmt.Sprintf("%.2f", row.Report.NightToEveningRatio),
			fmt.Sprintf("%.2f", row.Report.MaxHourCV),
			fmt.Sprintf("%.0f", row.Report.TestsPerClientP90),
			fmt.Sprintf("%d", len(row.Report.ThinHours)),
		})
	}
	return "§6.1 — crowdsourcing bias diagnostics per ISP\n" +
		table([]string{"ISP", "tests", "night/evening", "max hourly CV", "tests/client p90", "thin hours"}, rows)
}

// ---- §5.4: changes over time (E11) ----

// SnapshotsResult compares platform coverage across two synthetic
// snapshots: the Speedtest fleet grows ~1.45x, M-Lab stays flat, and
// the topology drifts.
type SnapshotsResult struct {
	MLabServersA, MLabServersB   int
	SpeedServersA, SpeedServersB int
	Rows                         []struct {
		ISP                        string
		PeerCovA, PeerCovB         float64 // Speedtest peer coverage
		MLabPeerCovA, MLabPeerCovB float64
	}
}

// Snapshots builds a second drifted world and compares peer coverage.
func Snapshots(e *Env) (*SnapshotsResult, error) {
	cfgB := e.Opts.Topo
	cfgB.Seed += 1000 // topology drift between snapshots
	cfgB.SpeedtestFactor = e.Opts.Topo.SpeedtestFactor * 1.45
	wB, err := topogen.Generate(cfgB)
	if err != nil {
		return nil, err
	}
	envB := &Env{Opts: Options{Topo: cfgB, Collect: e.Opts.Collect}, World: wB}

	res := &SnapshotsResult{
		MLabServersA:  len(e.World.MLabServers()),
		MLabServersB:  len(wB.MLabServers()),
		SpeedServersA: len(e.World.Speedtest),
		SpeedServersB: len(wB.Speedtest),
	}
	covA := peerCoverageByISP(e)
	covB := peerCoverageByISP(envB)
	names := make([]string, 0, len(covA))
	for n := range covA {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a, b := covA[n], covB[n]
		res.Rows = append(res.Rows, struct {
			ISP                        string
			PeerCovA, PeerCovB         float64
			MLabPeerCovA, MLabPeerCovB float64
		}{n, a.speed, b.speed, a.mlab, b.mlab})
	}
	return res, nil
}

type peerCov struct{ mlab, speed float64 }

// peerCoverageByISP aggregates Fig-3-style peer coverage per ISP
// (averaging over that ISP's VPs).
func peerCoverageByISP(e *Env) map[string]peerCov {
	agg := map[string][]peerCov{}
	for _, v := range VPAnalyses(e) {
		peers := 0
		for _, b := range v.Borders.Borders {
			if v.Rel(b.Neighbor) == topology.RelPeer {
				peers++
			}
		}
		if peers == 0 {
			continue
		}
		count := func(set map[topology.ASN]bool) float64 {
			n := 0
			for a := range set {
				if v.Rel(a) == topology.RelPeer {
					n++
				}
			}
			return float64(n) / float64(peers)
		}
		agg[v.ISP] = append(agg[v.ISP], peerCov{mlab: count(v.MLabAS), speed: count(v.SpeedAS)})
	}
	out := map[string]peerCov{}
	for isp, list := range agg {
		var m, s float64
		for _, c := range list {
			m += c.mlab
			s += c.speed
		}
		out[isp] = peerCov{mlab: m / float64(len(list)), speed: s / float64(len(list))}
	}
	return out
}

// Render prints the snapshot comparison.
func (r *SnapshotsResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.ISP,
			pct(row.MLabPeerCovA), pct(row.MLabPeerCovB),
			pct(row.PeerCovA), pct(row.PeerCovB),
		})
	}
	var sb strings.Builder
	sb.WriteString("§5.4 — peer-interconnection coverage across two snapshots\n")
	sb.WriteString(fmt.Sprintf("M-Lab servers: %d → %d (flat); Speedtest servers: %d → %d\n",
		r.MLabServersA, r.MLabServersB, r.SpeedServersA, r.SpeedServersB))
	sb.WriteString(table([]string{"ISP", "M-Lab A", "M-Lab B", "Speedtest A", "Speedtest B"}, rows))
	return sb.String()
}
