package experiments

import (
	"regexp"
	"testing"

	"throughputlab/internal/faults"
	"throughputlab/internal/obs"
)

// metricName is the repo-wide naming convention: dotted
// stage.sub.metric paths, every segment lowercase [a-z0-9_-], at least
// two segments. "collect.tests" and "faults.test_abort.retried" pass;
// "tests", "Collect.Tests", and "collect..tests" do not.
var metricName = regexp.MustCompile(`^[a-z0-9_-]+(\.[a-z0-9_-]+)+$`)

// TestMetricNamesFollowConvention walks the full metric namespace of a
// completely instrumented run — world generation, fault-injected
// collection, the pipelined streaming path, and the experiment sweep —
// and rejects any counter, gauge, histogram, or time-series key that
// is not a namespaced dotted path. A metric that fails here would
// collide or be unfindable on every dashboard fed by the JSON dump or
// the Prometheus endpoint.
func TestMetricNamesFollowConvention(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full instrumented campaign")
	}
	reg := obs.NewRegistry()
	reg.EnableTimeSeries(60, 0, nil)
	bus := reg.EnableEvents(4096)
	opts := QuickOptions()
	opts.Obs = reg
	opts.Topo.Workers = 2
	opts.Collect.Faults = faults.Light()
	opts.Collect.PipelineChunks = 2
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunParallel(env, 2); err != nil {
		t.Fatal(err)
	}
	bus.Close()

	d := reg.Snapshot()
	check := func(section, name string) {
		t.Helper()
		if !metricName.MatchString(name) {
			t.Errorf("%s %q violates the stage.sub.metric naming convention", section, name)
		}
	}
	total := 0
	for name := range d.Counters {
		check("counter", name)
		total++
	}
	for name := range d.Gauges {
		check("gauge", name)
		total++
	}
	for name := range d.Histograms {
		check("histogram", name)
		total++
	}
	for name := range d.Series {
		check("series", name)
	}
	if d.Events != nil {
		for kind := range d.Events.ByKind {
			check("event kind", kind)
		}
	}
	// Sanity: an empty walk would vacuously pass; a fully instrumented
	// run registers metrics across at least these subsystems.
	if total < 20 {
		t.Fatalf("only %d metrics registered — instrumentation did not run", total)
	}
	for _, prefix := range []string{"collect.", "resolver.", "faults.", "topogen.", "experiments."} {
		found := false
		for name := range d.Counters {
			if len(name) > len(prefix) && name[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			for name := range d.Gauges {
				if len(name) > len(prefix) && name[:len(prefix)] == prefix {
					found = true
					break
				}
			}
		}
		if !found {
			for name := range d.Histograms {
				if len(name) > len(prefix) && name[:len(prefix)] == prefix {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("no metric registered under %q — expected that subsystem instrumented", prefix)
		}
	}
}
