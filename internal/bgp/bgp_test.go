package bgp

import (
	"math/rand"
	"testing"

	"throughputlab/internal/geo"
	"throughputlab/internal/topology"
)

// buildTopo assembles a topology from a compact edge list.
// Edges are (a, b, rel-of-b-as-seen-from-a).
type edge struct {
	a, b topology.ASN
	rel  topology.Rel
}

func buildTopo(asns []topology.ASN, edges []edge) *topology.Topology {
	t := topology.New([]geo.Metro{{Code: "m", Name: "Metro", Weight: 1}})
	org := &topology.Org{Name: "shared"}
	for _, a := range asns {
		t.AddAS(&topology.AS{ASN: a, Name: "AS", Org: org, Type: topology.ASTypeStub, Metros: []string{"m"}})
	}
	for _, e := range edges {
		t.SetRel(e.a, e.b, e.rel)
	}
	return t
}

// A small reference topology:
//
//	      T1 ---peer--- T2
//	     /  \             \
//	   M1    M2            M3        (customers of transits)
//	  /  \     \          /
//	S1    S2    S3      S4           (stubs)
//
// M1 and M2 peer with each other.
func refTopo() *topology.Topology {
	asns := []topology.ASN{10, 20, 101, 102, 103, 1001, 1002, 1003, 1004}
	edges := []edge{
		{10, 20, topology.RelPeer},
		{10, 101, topology.RelCustomer},
		{10, 102, topology.RelCustomer},
		{20, 103, topology.RelCustomer},
		{101, 102, topology.RelPeer},
		{101, 1001, topology.RelCustomer},
		{101, 1002, topology.RelCustomer},
		{102, 1003, topology.RelCustomer},
		{103, 1004, topology.RelCustomer},
	}
	return buildTopo(asns, edges)
}

func TestNextHopAndPathBasics(t *testing.T) {
	r := Compute(refTopo())

	// Stub to its own provider: direct.
	if p := r.Path(1001, 101); len(p) != 2 {
		t.Errorf("path 1001->101 = %v", p)
	}
	// Sibling stubs under same provider: via the provider.
	if p := r.Path(1001, 1002); len(p) != 3 || p[1] != 101 {
		t.Errorf("path 1001->1002 = %v", p)
	}
	// Across the peer link M1-M2, not up through T1: peer route at 101
	// (3 hops via peer 102) ties with provider route length but peer
	// class wins.
	p := r.Path(1001, 1003)
	want := []topology.ASN{1001, 101, 102, 1003}
	if len(p) != 4 || p[1] != 101 || p[2] != 102 {
		t.Errorf("path 1001->1003 = %v, want %v", p, want)
	}
	// Far side of the transit peer link.
	p = r.Path(1001, 1004)
	if len(p) != 6 {
		t.Errorf("path 1001->1004 = %v, want 5 hops", p)
	}
}

func TestRouteClassPreference(t *testing.T) {
	r := Compute(refTopo())
	// 101's route to 1003: peer class via 102 even though a provider
	// route through T1 exists.
	if c := r.Class(101, 1003); c != ClassPeer {
		t.Errorf("class 101->1003 = %v, want peer", c)
	}
	// 101's route to 1001: customer.
	if c := r.Class(101, 1001); c != ClassCustomer {
		t.Errorf("class 101->1001 = %v, want customer", c)
	}
	// 101's route to 1004: provider (up through T1).
	if c := r.Class(101, 1004); c != ClassProvider {
		t.Errorf("class 101->1004 = %v, want provider", c)
	}
	// Self.
	if c := r.Class(101, 101); c != ClassCustomer {
		t.Errorf("class self = %v", c)
	}
}

func TestNoValleyThroughPeerStub(t *testing.T) {
	// S3 (customer of 102) must not be used as transit between 101 and
	// anything; and 103's only path to 1003 goes up through T2, across
	// the T1-T2 peer link, then down — never via the M1-M2 peer edge
	// (that would be peer->peer).
	r := Compute(refTopo())
	p := r.Path(103, 1003)
	// Expected: 103 -> 20 -> 10 -> 102 -> 1003.
	if len(p) != 5 || p[1] != 20 || p[2] != 10 || p[3] != 102 {
		t.Errorf("path 103->1003 = %v", p)
	}
}

func TestUnreachable(t *testing.T) {
	asns := []topology.ASN{1, 2, 3}
	edges := []edge{{1, 2, topology.RelCustomer}} // 3 is isolated
	r := Compute(buildTopo(asns, edges))
	if r.HasRoute(1, 3) || r.HasRoute(3, 1) {
		t.Error("isolated AS should be unreachable")
	}
	if p := r.Path(1, 3); p != nil {
		t.Errorf("path to isolated AS = %v", p)
	}
	if r.PathLen(1, 3) != -1 {
		t.Error("PathLen to unreachable should be -1")
	}
	if _, ok := r.NextHop(1, 3); ok {
		t.Error("NextHop to unreachable should fail")
	}
}

func TestPeerRoutesNotExportedToPeers(t *testing.T) {
	// A - peer - B - peer - C: A must NOT reach C (no provider chain).
	asns := []topology.ASN{1, 2, 3}
	edges := []edge{
		{1, 2, topology.RelPeer},
		{2, 3, topology.RelPeer},
	}
	r := Compute(buildTopo(asns, edges))
	if r.HasRoute(1, 3) {
		t.Error("peer routes must not be exported to peers (valley)")
	}
	if !r.HasRoute(1, 2) || !r.HasRoute(2, 3) {
		t.Error("direct peers should reach each other")
	}
}

func TestSiblingPropagation(t *testing.T) {
	// Sibling pair B1-B2; customer C under B1; peer P of B2.
	// P should reach C via B2 -> B1 (peer route relayed by sibling).
	asns := []topology.ASN{11, 12, 100, 200}
	edges := []edge{
		{11, 12, topology.RelSibling},
		{11, 100, topology.RelCustomer},
		{12, 200, topology.RelPeer},
	}
	tp := buildTopo(asns, edges)
	r := Compute(tp)
	p := r.Path(200, 100)
	want := []topology.ASN{200, 12, 11, 100}
	if len(p) != 4 || p[1] != want[1] || p[2] != want[2] {
		t.Errorf("path 200->100 = %v, want %v", p, want)
	}
	if c := r.Class(200, 100); c != ClassPeer {
		t.Errorf("class 200->100 = %v, want peer", c)
	}
	// And the reverse: C reaches P going up through sibling pair.
	p = r.Path(100, 200)
	if len(p) != 4 {
		t.Errorf("path 100->200 = %v", p)
	}
}

func TestMultihomedStubPrefersShorterCustomerlessPath(t *testing.T) {
	// Stub S multihomed to M1 and T1 (M1 is T1's customer). Traffic
	// from another T1 customer M2 to S: T1 prefers its direct customer
	// route to S (2 hops) over via M1 (3 hops).
	asns := []topology.ASN{10, 101, 102, 1001}
	edges := []edge{
		{10, 101, topology.RelCustomer},
		{10, 102, topology.RelCustomer},
		{101, 1001, topology.RelCustomer},
		{10, 1001, topology.RelCustomer},
	}
	r := Compute(buildTopo(asns, edges))
	p := r.Path(102, 1001)
	if len(p) != 3 || p[1] != 10 {
		t.Errorf("path 102->1001 = %v, want direct via T1", p)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-length customer routes: next hop must be the lowest ASN,
	// and repeated computation must agree.
	asns := []topology.ASN{10, 30, 20, 1001}
	edges := []edge{
		{10, 30, topology.RelCustomer},
		{10, 20, topology.RelCustomer},
		{30, 1001, topology.RelCustomer},
		{20, 1001, topology.RelCustomer},
	}
	tp := buildTopo(asns, edges)
	r1 := Compute(tp)
	r2 := Compute(tp)
	nh1, _ := r1.NextHop(10, 1001)
	nh2, _ := r2.NextHop(10, 1001)
	if nh1 != nh2 {
		t.Errorf("non-deterministic next hop: %v vs %v", nh1, nh2)
	}
	if nh1 != 20 {
		t.Errorf("next hop = %v, want lowest-ASN 20", nh1)
	}
}

// validPathState checks the valley-free property of a path.
func validPath(t *topology.Topology, path []topology.ASN) bool {
	const (
		up = iota
		down
	)
	state := up
	for i := 1; i < len(path); i++ {
		switch t.RelOf(path[i-1], path[i]) {
		case topology.RelProvider: // uphill
			if state != up {
				return false
			}
		case topology.RelPeer: // at most one, at the top
			if state != up {
				return false
			}
			state = down
		case topology.RelCustomer: // downhill
			state = down
		case topology.RelSibling:
			// allowed anywhere
		default:
			return false // non-adjacent consecutive hops
		}
	}
	return true
}

// randomHierarchy builds a random 3-tier topology for property tests.
func randomHierarchy(rng *rand.Rand) *topology.Topology {
	nT, nM, nS := 3+rng.Intn(3), 6+rng.Intn(6), 20+rng.Intn(20)
	var asns []topology.ASN
	var edges []edge
	for i := 0; i < nT+nM+nS; i++ {
		asns = append(asns, topology.ASN(100+i))
	}
	transit := asns[:nT]
	mid := asns[nT : nT+nM]
	stub := asns[nT+nM:]
	// Transit full mesh of peers.
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			edges = append(edges, edge{transit[i], transit[j], topology.RelPeer})
		}
	}
	// Mids buy from 1-2 transits; some mid-mid peering.
	for _, m := range mid {
		p := transit[rng.Intn(nT)]
		edges = append(edges, edge{p, m, topology.RelCustomer})
		if rng.Intn(2) == 0 {
			q := transit[rng.Intn(nT)]
			if q != p {
				edges = append(edges, edge{q, m, topology.RelCustomer})
			}
		}
	}
	for i := 0; i < nM/2; i++ {
		a, b := mid[rng.Intn(nM)], mid[rng.Intn(nM)]
		if a != b {
			edges = append(edges, edge{a, b, topology.RelPeer})
		}
	}
	// Stubs buy from mids (sometimes transits).
	for _, s := range stub {
		var p topology.ASN
		if rng.Intn(4) == 0 {
			p = transit[rng.Intn(nT)]
		} else {
			p = mid[rng.Intn(nM)]
		}
		edges = append(edges, edge{p, s, topology.RelCustomer})
		if rng.Intn(3) == 0 {
			q := mid[rng.Intn(nM)]
			if q != p {
				edges = append(edges, edge{q, s, topology.RelCustomer})
			}
		}
	}
	return buildTopo(asns, edges)
}

func TestValleyFreePropertyOnRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		tp := randomHierarchy(rng)
		r := Compute(tp)
		asns := tp.ASNs()
		checked := 0
		for _, src := range asns {
			for _, dst := range asns {
				if src == dst {
					continue
				}
				p := r.Path(src, dst)
				if p == nil {
					// Everything has a provider chain to the transit
					// mesh, so full reachability is expected.
					t.Fatalf("trial %d: no route %v->%v", trial, src, dst)
				}
				if !validPath(tp, p) {
					t.Fatalf("trial %d: valley in path %v", trial, p)
				}
				if int(r.PathLen(src, dst)) != len(p)-1 {
					t.Fatalf("trial %d: PathLen %d != len(path)-1 %d", trial, r.PathLen(src, dst), len(p)-1)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no paths checked")
		}
	}
}

func TestPathEndpointsAndAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	asns := tp.ASNs()
	for _, src := range asns[:10] {
		for _, dst := range asns[len(asns)-10:] {
			if src == dst {
				continue
			}
			p := r.Path(src, dst)
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			for i := 1; i < len(p); i++ {
				if tp.RelOf(p[i-1], p[i]) == topology.RelNone {
					t.Fatalf("non-adjacent hop in %v", p)
				}
			}
			// No AS loops.
			seen := map[topology.ASN]bool{}
			for _, a := range p {
				if seen[a] {
					t.Fatalf("loop in path %v", p)
				}
				seen[a] = true
			}
		}
	}
}

func BenchmarkComputeMediumTopology(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	tp := randomHierarchy(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(tp)
	}
}
