package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

// TestHigherTierNeverSlower: raising the plan rate can only help.
func TestHigherTierNeverSlower(t *testing.T) {
	n := buildFlowNet(t, 5000, 0.3, 0.9)
	for h := 0; h < 24; h += 2 {
		prev := -1.0
		for _, tier := range []float64{5, 10, 25, 50, 100, 200} {
			res := n.model.BulkFlow(n.path, minuteAtLocalHour(h), FlowOpts{TierMbps: tier}, nil)
			if res.ThroughputMbps < prev-1e-9 {
				t.Fatalf("hour %d: tier %v slower (%v) than a lower tier (%v)",
					h, tier, res.ThroughputMbps, prev)
			}
			prev = res.ThroughputMbps
		}
	}
}

// TestUtilMonotoneInPeak: for a fixed time at the diurnal peak,
// raising PeakUtil never lowers ρ.
func TestUtilMonotoneInPeak(t *testing.T) {
	f := func(baseRaw, peakRaw1, peakRaw2 float64) bool {
		base := math.Abs(math.Mod(baseRaw, 0.5))
		d1 := math.Abs(math.Mod(peakRaw1, 0.8))
		d2 := math.Abs(math.Mod(peakRaw2, 0.8))
		lo, hi := base+math.Min(d1, d2), base+math.Max(d1, d2)
		// Same shape factor applies; rho is affine in PeakUtil.
		shape := 0.7
		rhoLo := base + (lo-base)*shape
		rhoHi := base + (hi-base)*shape
		return rhoHi >= rhoLo-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFlowRTTNeverBelowBase: the loaded RTT is always at least the
// start RTT, which is at least the propagation RTT.
func TestFlowRTTNeverBelowBase(t *testing.T) {
	n := buildFlowNet(t, 2000, 0.45, 1.3)
	for h := 0; h < 24; h++ {
		for _, tier := range []float64{6, 50, 150} {
			res := n.model.BulkFlow(n.path, minuteAtLocalHour(h), FlowOpts{TierMbps: tier}, nil)
			if res.StartRTTms < res.BaseRTTms-1e-9 {
				t.Fatalf("start RTT %.2f below base %.2f", res.StartRTTms, res.BaseRTTms)
			}
			if res.RTTms < res.StartRTTms-1e-9 {
				t.Fatalf("loaded RTT %.2f below start %.2f", res.RTTms, res.StartRTTms)
			}
			if math.Abs(res.SelfQueueMs-(res.RTTms-res.StartRTTms)) > 1e-9 {
				t.Fatalf("self queue bookkeeping inconsistent: %v vs %v",
					res.SelfQueueMs, res.RTTms-res.StartRTTms)
			}
		}
	}
}

// TestSaturatedFlowsDontSelfQueue: flows squeezed by an already-full
// buffer build almost no standing queue of their own — the signature
// discriminator must hold at the model level.
func TestSaturatedFlowsDontSelfQueue(t *testing.T) {
	congested := buildFlowNet(t, 2000, 0.45, 1.3)
	peak := congested.model.BulkFlow(congested.path, minuteAtLocalHour(21), FlowOpts{TierMbps: 18}, nil)
	if !peak.BottleneckSaturated {
		t.Fatal("peak flow should cross a saturated link")
	}
	if peak.SelfQueueMs > 5 {
		t.Errorf("saturated-path flow self-queued %.1f ms", peak.SelfQueueMs)
	}

	healthy := buildFlowNet(t, 100000, 0.1, 0.3)
	off := healthy.model.BulkFlow(healthy.path, minuteAtLocalHour(21), FlowOpts{TierMbps: 18}, nil)
	if off.BottleneckSaturated {
		t.Fatal("healthy path flagged saturated")
	}
	if off.SelfQueueMs < 10 {
		t.Errorf("tier-limited flow self-queued only %.1f ms; discriminator too weak", off.SelfQueueMs)
	}
	// And the relative inflations separate.
	inflSat := peak.SelfQueueMs / peak.StartRTTms
	inflSelf := off.SelfQueueMs / off.StartRTTms
	if inflSelf <= 2*inflSat {
		t.Errorf("inflation separation weak: saturated %.2f vs self %.2f", inflSat, inflSelf)
	}
}

// TestZeroTierMeansUnshaped: TierMbps 0 must not clamp throughput.
func TestZeroTierMeansUnshaped(t *testing.T) {
	n := buildFlowNet(t, 10000, 0.1, 0.3)
	res := n.model.BulkFlow(n.path, minuteAtLocalHour(4), FlowOpts{}, nil)
	if res.ThroughputMbps < 100 {
		t.Errorf("unshaped flow got only %.1f Mbps", res.ThroughputMbps)
	}
	if res.Kind == LimitAccessPlan || res.Kind == LimitHomeWiFi {
		t.Errorf("unshaped flow limited by %v", res.Kind)
	}
}

// TestBottleneckKindStrings covers the stringer.
func TestBottleneckKindStrings(t *testing.T) {
	for _, k := range []BottleneckKind{LimitAccessPlan, LimitHomeWiFi, LimitLink, LimitLatency} {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has bad string", k)
		}
	}
	if BottleneckKind(99).String() != "unknown" {
		t.Error("unknown kind should say so")
	}
}
