package obs

import (
	"sync"
)

// The simulated-clock time-series layer. A campaign runs on a
// simulated clock (minutes since the campaign epoch), and the paper's
// core signals — diurnal throughput dips, per-interconnect congestion
// onset — are functions of that clock, not of wall time. A Sampler
// turns the registry's point-in-time metrics into time series by
// snapshotting every counter, gauge, and histogram count once per
// simulated step, driven by the collection watermark that
// platform.CollectStream publishes with each chunk: chunks arrive in
// schedule order, their watermarks are monotone, so Advance observes a
// monotone simulated clock no matter how many workers produced the
// chunks and the sampled series are deterministic modulo the metric
// values themselves.
//
// Series are ring-buffered: a fixed point capacity per series bounds
// memory for open-ended campaigns (ROADMAP item 2's long-running
// service), with evicted points counted so sinks can disclose
// truncation instead of silently forgetting the campaign's start.

// DefaultSampleStepMin is the sampling cadence when EnableTimeSeries is
// given a non-positive step: one sample per simulated hour, the
// resolution of the paper's Fig-5 diurnal analysis.
const DefaultSampleStepMin = 60

// DefaultSeriesCap is the per-series ring capacity when
// EnableTimeSeries is given a non-positive capacity: at one point per
// simulated hour this retains ~85 simulated days.
const DefaultSeriesCap = 2048

// Point is one sample: the metric's value at a simulated minute.
type Point struct {
	// Minute is the simulated-clock stamp (minutes since campaign
	// epoch); points within one series are strictly increasing.
	Minute int `json:"m"`
	// Value is the sampled value: cumulative count for counters and
	// histogram counts, the current level for gauges.
	Value float64 `json:"v"`
}

// Series is the ring-buffered sample history of one metric. All access
// goes through the owning Sampler's lock. The ring grows geometrically
// up to max, so a short campaign never pays for the full capacity.
type Series struct {
	kind    string // "counter", "gauge", "histogram"
	ring    []Point
	max     int // capacity ceiling for the ring
	head    int // index of the oldest retained point
	n       int // retained points
	evicted int // points dropped off the ring's tail
}

// Points returns the retained samples, oldest first.
func (s *Series) Points() []Point {
	out := make([]Point, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	return out
}

// Kind reports the sampled metric's kind ("counter", "gauge",
// "histogram").
func (s *Series) Kind() string { return s.kind }

// Evicted reports how many points fell off the ring.
func (s *Series) Evicted() int { return s.evicted }

func (s *Series) push(p Point) {
	if s.n == len(s.ring) && len(s.ring) < s.max {
		grown := 2 * len(s.ring)
		if grown == 0 {
			grown = 16
		}
		if grown > s.max {
			grown = s.max
		}
		ring := make([]Point, grown)
		for i := 0; i < s.n; i++ {
			ring[i] = s.ring[(s.head+i)%len(s.ring)]
		}
		s.ring, s.head = ring, 0
	}
	if s.n < len(s.ring) {
		s.ring[(s.head+s.n)%len(s.ring)] = p
		s.n++
		return
	}
	s.ring[s.head] = p
	s.head = (s.head + 1) % len(s.ring)
	s.evicted++
}

// Deltas returns per-step increments between consecutive retained
// points — the windowed view a Fig-5-style diurnal statistic consumes
// for cumulative series (tests collected per simulated hour, retries
// per hour). The result has one fewer entry than Points; gauge series
// yield signed level changes.
func (s *Series) Deltas() []Point {
	pts := s.Points()
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		out[i-1] = Point{Minute: pts[i].Minute, Value: pts[i].Value - pts[i-1].Value}
	}
	return out
}

// Window returns the retained points with from <= Minute < to, oldest
// first.
func (s *Series) Window(from, to int) []Point {
	var out []Point
	for _, p := range s.Points() {
		if p.Minute >= from && p.Minute < to {
			out = append(out, p)
		}
	}
	return out
}

// Sampler samples the registry on the simulated clock. Obtain one with
// Registry.EnableTimeSeries; a nil *Sampler is the disabled layer and
// every method on it is a no-op, so instrumented code calls
// reg.TimeSeries().Advance(...) unconditionally.
type Sampler struct {
	reg     *Registry
	stepMin int
	cap     int
	filter  func(name string) bool

	mu     sync.Mutex
	series map[string]*Series
	// sampled is the last simulated minute a sample was stamped at
	// (-1 before the first sample).
	sampled int
}

// EnableTimeSeries attaches a simulated-clock sampler to the registry
// and returns it; the first call wins and later calls return the
// existing sampler. stepMin is the sampling cadence in simulated
// minutes and capacity the per-series ring size (non-positive values
// take the defaults). filter, when non-nil, selects which metric names
// are sampled — sampling every per-shard gauge of a 16-shard campaign
// is rarely what a dashboard wants. On a nil registry it returns nil.
func (r *Registry) EnableTimeSeries(stepMin, capacity int, filter func(name string) bool) *Sampler {
	if r == nil {
		return nil
	}
	if stepMin <= 0 {
		stepMin = DefaultSampleStepMin
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	s := &Sampler{
		reg: r, stepMin: stepMin, cap: capacity, filter: filter,
		series: make(map[string]*Series), sampled: -1,
	}
	if r.sampler.CompareAndSwap(nil, s) {
		return s
	}
	return r.sampler.Load()
}

// TimeSeries returns the attached sampler (nil when none, or on a nil
// registry).
func (r *Registry) TimeSeries() *Sampler {
	if r == nil {
		return nil
	}
	return r.sampler.Load()
}

// StepMinutes returns the sampling cadence (0 on the nil sampler).
func (s *Sampler) StepMinutes() int {
	if s == nil {
		return 0
	}
	return s.stepMin
}

// Advance moves the simulated clock to watermark (minutes since the
// campaign epoch) and stamps one sample at every step boundary crossed
// since the previous call — a chunk whose watermark jumps several
// simulated hours yields several points, so consumers always see >= 1
// point per elapsed step. Regressing watermarks are ignored. Safe for
// use from the streaming sink goroutine; a no-op on the nil sampler.
func (s *Sampler) Advance(watermark int) {
	if s == nil || watermark < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// First boundary strictly after the last stamped sample; sample
	// boundaries are multiples of the step so the series is a fixed
	// simulated-time grid regardless of chunk sizes.
	next := (s.sampled/s.stepMin + 1) * s.stepMin
	if s.sampled < 0 {
		next = s.stepMin
	}
	if next > watermark {
		return
	}
	// Every boundary in (sampled, watermark] observes the same metric
	// values — the registry is only knowable "now" — so sweep it once
	// and replicate the sample at each crossed boundary rather than
	// re-walking the registry per boundary (a single-chunk campaign can
	// cross hundreds of simulated hours in one call).
	s.sampleRangeLocked(next, watermark)
}

// Finalize stamps one last sample at the given simulated minute if it
// is past the last stamped sample — so a campaign whose final watermark
// lands between boundaries still records its closing totals. No-op on
// the nil sampler.
func (s *Sampler) Finalize(watermark int) {
	if s == nil || watermark < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if watermark > s.sampled {
		s.sampleRangeLocked(watermark, watermark)
	}
}

// sampleRangeLocked sweeps the registry once and stamps a sample of
// every selected metric at each step boundary from `from` through the
// largest boundary <= to (from itself counts as a boundary). Caller
// holds s.mu.
func (s *Sampler) sampleRangeLocked(from, to int) {
	r := s.reg
	r.mu.Lock()
	for name, c := range r.counters {
		s.recordRangeLocked(name, "counter", from, to, float64(c.Value()))
	}
	for name, g := range r.gauges {
		s.recordRangeLocked(name, "gauge", from, to, float64(g.Value()))
	}
	for name, h := range r.histograms {
		s.recordRangeLocked(name, "histogram", from, to, float64(h.Count()))
	}
	r.mu.Unlock()
	s.sampled = from + (to-from)/s.stepMin*s.stepMin
}

func (s *Sampler) recordRangeLocked(name, kind string, from, to int, v float64) {
	if s.filter != nil && !s.filter(name) {
		return
	}
	sr := s.series[name]
	if sr == nil {
		sr = &Series{kind: kind, max: s.cap}
		s.series[name] = sr
	}
	sr.pushRun(from, s.stepMin, (to-from)/s.stepMin+1, v)
}

// pushRun appends count points at minutes from, from+step, ... with
// the same value — the replicated samples of a multi-boundary Advance.
// It grows the ring to the needed size in one step and bulk-fills when
// no eviction is in play, falling back to per-point pushes otherwise.
func (s *Series) pushRun(from, step, count int, v float64) {
	if need := s.n + count; need > len(s.ring) && len(s.ring) < s.max {
		grown := 2 * len(s.ring)
		if grown < 16 {
			grown = 16
		}
		for grown < need {
			grown *= 2
		}
		if grown > s.max {
			grown = s.max
		}
		ring := make([]Point, grown)
		for i := 0; i < s.n; i++ {
			ring[i] = s.ring[(s.head+i)%len(s.ring)]
		}
		s.ring, s.head = ring, 0
	}
	if s.head == 0 && s.n+count <= len(s.ring) {
		for i := 0; i < count; i++ {
			s.ring[s.n+i] = Point{Minute: from + i*step, Value: v}
		}
		s.n += count
		return
	}
	for i := 0; i < count; i++ {
		s.push(Point{Minute: from + i*step, Value: v})
	}
}

// Series returns the named series (nil when the metric was never
// sampled, or on the nil sampler). The returned Series must not be
// read concurrently with Advance; it is meant for after the sampled
// work has completed.
func (s *Sampler) Series(name string) *Series {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name]
}

// SeriesDump is one exported time series.
type SeriesDump struct {
	Kind string `json:"kind"`
	// StepMinutes is the sampling cadence on the simulated clock.
	StepMinutes int     `json:"step_minutes"`
	Points      []Point `json:"points"`
	// Evicted counts points dropped off the ring (0 = complete
	// history).
	Evicted int `json:"evicted,omitempty"`
}

// DumpSeries exports every sampled series keyed by metric name (nil on
// the nil sampler).
func (s *Sampler) DumpSeries() map[string]SeriesDump {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SeriesDump, len(s.series))
	for name, sr := range s.series {
		out[name] = SeriesDump{
			Kind: sr.kind, StepMinutes: s.stepMin,
			Points: sr.Points(), Evicted: sr.evicted,
		}
	}
	return out
}
