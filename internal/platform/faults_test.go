package platform

import (
	"fmt"
	"hash/fnv"
	"testing"

	"throughputlab/internal/faults"
	"throughputlab/internal/obs"
)

// faultedCorpusHash extends corpusHash with the degradation markers the
// fault plane adds (truncation flags, degraded traces, the completeness
// ledger), so replay equality covers the fault decisions themselves,
// not just the surviving clean fields.
func faultedCorpusHash(c *Corpus) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "base=%#x\n", corpusHash(c))
	for _, t := range c.Tests {
		if t.Truncated {
			fmt.Fprintf(h, "trunc %d %.9g %.9g\n", t.ID, t.DownMbps, t.Web100.DurationSec)
		}
	}
	for _, tr := range c.Traces {
		if tr.Degraded {
			fmt.Fprintf(h, "deg %d %d %d\n", uint32(tr.SrcAddr), uint32(tr.DstAddr), tr.LaunchMinute)
		}
	}
	fmt.Fprintf(h, "comp %+v\n", c.Completeness)
	return h.Sum64()
}

func heavyCollect() CollectConfig {
	cfg := smallCollect()
	cfg.Faults = faults.Heavy()
	return cfg
}

// TestFaultReplayDeterminism pins the fault plane's determinism
// contract: a fixed (seed, profile, fault seed) yields a byte-identical
// corpus — including every fault decision — at workers 1, 2 and 8, and
// under serial Collect. Under -race this is also the aggressive-profile
// concurrency sweep: heavy faults drive the retry planner, truncation
// and trace perturbation from all execution workers against one live
// registry.
func TestFaultReplayDeterminism(t *testing.T) {
	cfg := heavyCollect()
	serial, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := faultedCorpusHash(serial)
	if !serial.Completeness.Degraded() {
		t.Fatal("heavy profile produced a pristine corpus")
	}
	for _, workers := range []int{1, 2, 8} {
		icfg := cfg
		icfg.Obs = obs.NewRegistry()
		c, err := CollectParallel(world, icfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := faultedCorpusHash(c); got != want {
			t.Errorf("faulted corpus hash with %d workers = %#x, want %#x", workers, got, want)
		}
	}
}

// TestFaultSeedIdentity pins the FaultSeed semantics: 0 means the
// campaign seed, an explicit equal value changes nothing, a different
// value replays different faults on the same schedule.
func TestFaultSeedIdentity(t *testing.T) {
	cfg := heavyCollect()
	def, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultSeed = cfg.Seed
	explicit, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faultedCorpusHash(def) != faultedCorpusHash(explicit) {
		t.Error("FaultSeed=Seed differs from FaultSeed=0")
	}
	cfg.FaultSeed = cfg.Seed + 1
	other, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faultedCorpusHash(other) == faultedCorpusHash(def) {
		t.Error("fault decisions insensitive to FaultSeed")
	}
}

// TestCleanCorpusHasZeroCompleteness pins byte-invisibility from the
// consumer side: a faultless campaign carries the zero ledger and no
// degradation markers at all.
func TestCleanCorpusHasZeroCompleteness(t *testing.T) {
	c, err := Collect(world, smallCollect())
	if err != nil {
		t.Fatal(err)
	}
	if c.Completeness != (Completeness{}) {
		t.Errorf("clean corpus completeness = %+v, want zero", c.Completeness)
	}
	for _, tst := range c.Tests {
		if tst.Truncated || !tst.Web100.Complete() {
			t.Fatalf("clean corpus contains truncated test %d", tst.ID)
		}
	}
	for _, tr := range c.Traces {
		if tr.Degraded {
			t.Fatal("clean corpus contains degraded trace")
		}
	}
}

// TestFaultCountersAndLedger cross-checks the obs counters against the
// corpus: the ledger's counts must equal what the corpus actually
// carries, and the retry machinery must both recover and abandon under
// the heavy profile at this scale.
func TestFaultCountersAndLedger(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := heavyCollect()
	cfg.Obs = reg
	c, err := CollectParallel(world, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := c.Completeness
	if got := len(c.Tests); got != comp.ScheduledTests-comp.AbandonedTests-comp.DroppedRows {
		t.Errorf("published tests %d != scheduled %d - abandoned %d - dropped %d",
			got, comp.ScheduledTests, comp.AbandonedTests, comp.DroppedRows)
	}
	trunc, deg := 0, 0
	for _, tst := range c.Tests {
		if tst.Truncated {
			trunc++
			if tst.Web100.Complete() {
				t.Errorf("test %d truncated but web100 snapshot complete", tst.ID)
			}
		}
	}
	for _, tr := range c.Traces {
		if tr.Degraded {
			deg++
			if tr.Reached && tr.Hops[len(tr.Hops)-1].NoReply() {
				t.Error("degraded trace with NoReply final hop still marked reached")
			}
		}
	}
	if trunc != comp.TruncatedTests {
		t.Errorf("ledger says %d truncated tests, corpus carries %d", comp.TruncatedTests, trunc)
	}
	if deg != comp.DegradedTraces {
		t.Errorf("ledger says %d degraded traces, corpus carries %d", comp.DegradedTraces, deg)
	}
	cs := reg.CountersWithPrefix("faults.")
	if cs["faults.row_corruption.injected"] != uint64(comp.DroppedRows) {
		t.Errorf("row corruption counter %d != dropped rows %d",
			cs["faults.row_corruption.injected"], comp.DroppedRows)
	}
	if cs["faults.test_truncation.injected"] == 0 {
		t.Error("no truncation faults counted")
	}
	retried := cs["faults.test_abort.retried"] + cs["faults.server_outage.retried"]
	recovered := cs["faults.test_abort.recovered"] + cs["faults.server_outage.recovered"]
	if retried == 0 || recovered == 0 {
		t.Errorf("retry machinery idle under heavy profile: retried=%d recovered=%d", retried, recovered)
	}
	if comp.AbandonedTests > 0 {
		if cs["faults.test_abort.abandoned"]+cs["faults.server_outage.abandoned"] == 0 {
			t.Error("tests abandoned but no abandonment attributed to a fault kind")
		}
	}
	// The retry planner leaves its span tree: a collect.retries phase
	// with one child per wave.
	var sawRetries bool
	d := reg.Snapshot()
	for _, s := range d.Spans {
		for _, ch := range s.Children {
			if ch.Name == "collect.retries" {
				sawRetries = true
				if len(ch.Children) == 0 {
					t.Error("collect.retries span has no wave children")
				}
			}
		}
	}
	if !sawRetries {
		t.Error("missing collect.retries span")
	}
}

// TestGoldenHashUnchangedByFaultsOff re-pins the golden seed hash with
// the fault-plane fields explicitly zeroed, so no future default can
// silently turn injection on.
func TestGoldenHashUnchangedByFaultsOff(t *testing.T) {
	cfg := smallCollect()
	cfg.Faults = faults.Off()
	cfg.FaultSeed = 99 // must be inert while the profile is disabled
	c, err := CollectParallel(world, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := corpusHash(c); got != seedCorpusHash {
		t.Errorf("corpus hash with explicit off profile = %#x, want seed %#x", got, seedCorpusHash)
	}
}
