package report

import (
	"fmt"
	"strings"
	"testing"

	"throughputlab/internal/core"
	"throughputlab/internal/experiments"
	"throughputlab/internal/faults"
	"throughputlab/internal/mapit"
	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/stream"
)

// streamReport runs the two-pass streaming assembly over a campaign by
// re-collecting the deterministic stream for pass 2.
func streamReport(t *testing.T, cfg platform.CollectConfig, workers int) *Report {
	t.Helper()
	b := NewStreamBuilder(DefaultConfig(), MetroHourOf(), env.MapItOpts())
	if _, err := platform.CollectStream(env.World, cfg, workers, func(c *platform.Chunk) error {
		b.AddTraces(c.Traces)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	b.FinishInference()
	st, err := platform.CollectStream(env.World, cfg, workers, func(c *platform.Chunk) error {
		b.AddChunk(c.Tests, c.Traces, c.Watermark)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.Finish(st.Completeness)
}

// TestStreamReportMatchesBatch is the tentpole's report-level parity
// pin: the chunked two-pass assembly renders byte-for-byte the same
// report as the in-memory batch path, including the world-free
// MetroHourOf standing in for Env.HourOf.
func TestStreamReportMatchesBatch(t *testing.T) {
	want := built.Render()
	for _, workers := range []int{1, 4} {
		cfg := env.Opts.Collect
		cfg.ChunkTests = 1024
		got := streamReport(t, cfg, workers).Render()
		if got != want {
			t.Fatalf("streamed report (workers=%d) diverges from batch:\n%s",
				workers, firstDiff(want, got))
		}
	}
}

// TestStreamReportPipelinedStages runs pass 2 with the aggregation and
// matching stages on separate goroutines behind a stream.Pipeline —
// the deployment shape of the pipelined report path — and pins that
// the rendered report is still byte-identical to the batch build. The
// two stages hold disjoint halves of the group state, so only their
// per-stage publication order matters, which the pipeline preserves.
func TestStreamReportPipelinedStages(t *testing.T) {
	want := built.Render()
	cfg := env.Opts.Collect
	cfg.ChunkTests = 512
	cfg.PipelineChunks = 3
	for _, workers := range []int{1, 2, 8} {
		b := NewStreamBuilder(DefaultConfig(), MetroHourOf(), env.MapItOpts())
		if _, err := platform.CollectStream(env.World, cfg, workers, func(c *platform.Chunk) error {
			b.AddTraces(c.Traces)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		b.FinishInference()
		p := stream.NewPipeline("report", 4, nil,
			stream.Stage[*platform.Chunk]{Name: "aggregate", Fn: func(c *platform.Chunk) error {
				b.AddTests(c.Tests)
				return nil
			}},
			stream.Stage[*platform.Chunk]{Name: "match", Fn: func(c *platform.Chunk) error {
				b.AddMatch(c.Tests, c.Traces, c.Watermark)
				return nil
			}},
		)
		st, err := platform.CollectStream(env.World, cfg, workers, p.Send)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		got := b.Finish(st.Completeness).Render()
		if got != want {
			t.Fatalf("pipelined-stage report (workers=%d) diverges from batch:\n%s",
				workers, firstDiff(want, got))
		}
	}
}

// TestStreamReportTelemetryByteIdentical is the telemetry-invariance
// pin at the report level: the streamed, pipelined assembly with the
// FULL live-telemetry stack attached — metrics registry, simulated-
// clock sampler, progress event bus with an active sink — renders a
// report byte-identical to the uninstrumented batch build. Telemetry
// observes the campaign; it must never steer it.
func TestStreamReportTelemetryByteIdentical(t *testing.T) {
	want := built.Render()
	cfg := env.Opts.Collect
	cfg.ChunkTests = 1024
	cfg.PipelineChunks = 3
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		reg.EnableTimeSeries(60, 0, nil)
		bus := reg.EnableEvents(4096)
		var delivered int
		bus.AddSink(func(obs.Event) { delivered++ })
		cfg.Obs = reg
		opts := env.MapItOpts()
		opts.Obs = reg
		b := NewStreamBuilder(DefaultConfig(), MetroHourOf(), opts)
		if _, err := platform.CollectStream(env.World, cfg, workers, func(c *platform.Chunk) error {
			b.AddTraces(c.Traces)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		b.FinishInference()
		st0, err := platform.CollectStream(env.World, cfg, workers, func(c *platform.Chunk) error {
			b.AddChunk(c.Tests, c.Traces, c.Watermark)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got := b.Finish(st0.Completeness).Render()
		bus.Close()
		if got != want {
			t.Fatalf("telemetered streamed report (workers=%d) diverges from batch:\n%s",
				workers, firstDiff(want, got))
		}
		st := bus.Stats()
		if st.ByKind["collect.chunk"] == 0 || st.ByKind["report.pass"] == 0 {
			t.Errorf("telemetry did not observe the run (workers=%d): %+v", workers, st.ByKind)
		}
		if delivered == 0 {
			t.Errorf("sink saw no events (workers=%d)", workers)
		}
	}
}

// TestStreamReportMatchesBatchUnderFaults extends the parity to a
// degraded campaign, where completeness ledgers and degraded-pair
// exclusions flow through the streamed path too.
func TestStreamReportMatchesBatchUnderFaults(t *testing.T) {
	cfg := env.Opts.Collect
	cfg.Tests = 4000
	cfg.Faults = faults.Heavy()
	cfg.ChunkTests = 512

	corpus, err := platform.Collect(env.World, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fe := &experiments.Env{
		Opts:      env.Opts,
		World:     env.World,
		Corpus:    corpus,
		Inference: mapit.Run(corpus.Traces, env.MapItOpts()),
		Matching:  core.MatchTraces(corpus.Tests, corpus.Traces, MatchWindowMin, MatchModeUsed),
	}
	want := Build(fe, DefaultConfig()).Render()
	got := streamReport(t, cfg, 4).Render()
	if got != want {
		t.Fatalf("faulted streamed report diverges from batch:\n%s", firstDiff(want, got))
	}
	if !strings.Contains(want, "data completeness:") {
		t.Fatal("faulted report missing completeness section (fixture too clean)")
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  batch:  %s\n  stream: %s", i, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: batch %d lines, stream %d", len(w), len(g))
}
