package web100

import (
	"math"
	"math/rand"
	"testing"

	"throughputlab/internal/netsim"
)

func res(tput, rttStart, rttLoaded, loss float64, kind netsim.BottleneckKind) netsim.FlowResult {
	return netsim.FlowResult{
		ThroughputMbps: tput,
		StartRTTms:     rttStart,
		RTTms:          rttLoaded,
		LossRate:       loss,
		Kind:           kind,
	}
}

func TestCountersConsistent(t *testing.T) {
	s := Synthesize(res(50, 20, 40, 1e-3, netsim.LimitAccessPlan), 10, nil)
	if math.Abs(s.ThroughputMbps()-50) > 0.5 {
		t.Errorf("recomputed throughput %.2f, want 50", s.ThroughputMbps())
	}
	if math.Abs(s.RetransRate()-1e-3) > 5e-4 {
		t.Errorf("retrans rate %.5f, want ~0.001", s.RetransRate())
	}
	if s.MinRTTms != 20 || s.SmoothedRTTms != 40 {
		t.Error("RTT fields not carried through")
	}
	// BDP at 50 Mbps, 40 ms ≈ 250 KB.
	if s.CurCwndBytes < 200000 || s.CurCwndBytes > 300000 {
		t.Errorf("cwnd %d, want ≈250000", s.CurCwndBytes)
	}
	// Fractions sum to 1.
	sum := s.SndLimTimeCwndFrac + s.SndLimTimeRwinFrac + s.SndLimTimeSenderFrac
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("SndLim fractions sum to %v", sum)
	}
}

func TestCongSignalsScaleWithLoss(t *testing.T) {
	quiet := Synthesize(res(50, 20, 40, 1e-6, netsim.LimitAccessPlan), 10, nil)
	lossy := Synthesize(res(50, 120, 125, 0.02, netsim.LimitLatency), 10, nil)
	if quiet.CongSignals > 2 {
		t.Errorf("near-lossless flow has %d signals", quiet.CongSignals)
	}
	if lossy.CongSignals <= quiet.CongSignals {
		t.Errorf("lossy flow signals (%d) not above quiet (%d)", lossy.CongSignals, quiet.CongSignals)
	}
	// Bounded by one per RTT.
	maxSignals := int(10 * 1000 / 120)
	if lossy.CongSignals > maxSignals {
		t.Errorf("signals %d exceed one-per-RTT bound %d", lossy.CongSignals, maxSignals)
	}
}

func TestSndLimByKind(t *testing.T) {
	wifi := Synthesize(res(20, 15, 30, 1e-5, netsim.LimitHomeWiFi), 10, nil)
	if wifi.SndLimTimeRwinFrac < 0.5 {
		t.Error("wifi-limited flow should be rwin-limited")
	}
	net := Synthesize(res(1, 130, 132, 0.02, netsim.LimitLatency), 10, nil)
	if net.SndLimTimeCwndFrac < 0.5 {
		t.Error("network-limited flow should be cwnd-limited")
	}
	plan := Synthesize(res(50, 15, 35, 1e-5, netsim.LimitAccessPlan), 10, nil)
	if plan.SndLimTimeSenderFrac < 0.5 {
		t.Error("shaped flow should look sender-paced")
	}
}

func TestJitterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := Synthesize(res(10, 100, 110, 0.01, netsim.LimitLatency), 10, nil)
	for i := 0; i < 50; i++ {
		s := Synthesize(res(10, 100, 110, 0.01, netsim.LimitLatency), 10, rng)
		d := s.CongSignals - base.CongSignals
		if d < -1 || d > 2 {
			t.Fatalf("jitter moved signals by %d", d)
		}
		if s.CongSignals < 1 {
			t.Fatal("lossy flow lost all signals to jitter")
		}
	}
}

func TestZeroDurationDefaults(t *testing.T) {
	s := Synthesize(res(10, 20, 25, 1e-4, netsim.LimitAccessPlan), 0, nil)
	if s.DurationSec != 10 {
		t.Errorf("duration defaulted to %v", s.DurationSec)
	}
	var empty Snapshot
	if empty.ThroughputMbps() != 0 || empty.RetransRate() != 0 {
		t.Error("zero snapshot should compute zeros, not NaN")
	}
}

func TestTruncateScalesAndIncompletes(t *testing.T) {
	s := Synthesize(res(10, 100, 110, 0.01, netsim.LimitLatency), 10, nil)
	if !s.Complete() {
		t.Fatal("synthesized snapshot should be complete")
	}
	full := s
	s.Truncate(0.5)
	if s.Complete() {
		t.Error("truncated snapshot still reports complete")
	}
	if s.DurationSec != full.DurationSec/2 {
		t.Errorf("duration %v, want half of %v", s.DurationSec, full.DurationSec)
	}
	if s.HCThruOctetsAcked != full.HCThruOctetsAcked/2 {
		t.Errorf("octets %d, want half of %d", s.HCThruOctetsAcked, full.HCThruOctetsAcked)
	}
	// The counter-derived rate is unchanged: both numerator and
	// denominator scaled — the bias lives in the HEADLINE number, which
	// divides partial bytes by the full duration (ndt.Test.Truncate).
	if got, want := s.ThroughputMbps(), full.ThroughputMbps(); got < want*0.99 || got > want*1.01 {
		t.Errorf("counter throughput %v, want ~%v", got, want)
	}
	// Out-of-range fractions clamp instead of corrupting counters.
	c := full
	c.Truncate(1.5)
	if c.HCThruOctetsAcked != full.HCThruOctetsAcked {
		t.Error("frac>1 should clamp to the full snapshot")
	}
	z := full
	z.Truncate(-1)
	if z.HCThruOctetsAcked != 0 || z.Complete() {
		t.Error("frac<0 should clamp to the empty snapshot")
	}
}
