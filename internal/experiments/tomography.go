package experiments

import (
	"fmt"
	"sort"
	"strings"

	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/stats"
	"throughputlab/internal/tomo"
	"throughputlab/internal/topology"
)

// TomographyResult contrasts full binary tomography over inferred
// IP-level links with the simplified AS-level method (E13, §3).
type TomographyResult struct {
	// Full tomography: inferred bad links with ground-truth assessment.
	BadLinks []struct {
		Near, Far netaddr.Addr
		NearAS    topology.ASN
		FarAS     topology.ASN
		// TrulyCongested: the ground-truth link saturates at peak.
		TrulyCongested bool
	}
	Consistent bool
	Uncovered  int

	// Simplified AS-level verdicts.
	ASVerdicts []tomo.PairVerdict
	// Mislocalized counts AS-level flags whose pair is NOT directly
	// connected for most tests (Assumption 2 violated) — any verdict
	// there cannot name the congested link.
	Mislocalized int

	BadTests, GoodTests int
}

// Tomography labels each matched peak-hour test good/bad relative to
// its client ISP's off-peak median, then localizes.
func Tomography(e *Env) *TomographyResult {
	res := &TomographyResult{}

	// Off-peak medians per ISP as the health baseline.
	offMedian := map[string]float64{}
	{
		byISP := map[string][]float64{}
		for _, t := range e.Corpus.Tests {
			h := e.HourOf(t)
			if h >= 7 && h < 15 {
				byISP[t.ClientISP] = append(byISP[t.ClientISP], t.DownMbps)
			}
		}
		for isp, xs := range byISP {
			offMedian[isp] = stats.Median(xs)
		}
	}

	isPeak := func(t *ndt.Test) bool {
		h := e.HourOf(t)
		return h >= 19 && h < 23
	}
	bad := func(t *ndt.Test) bool {
		m := offMedian[t.ClientISP]
		return m > 0 && t.DownMbps < 0.3*m
	}

	// Full tomography over inferred IP-level interdomain links, using
	// matched traceroutes for path data. Links are identified by their
	// FAR interface address (the neighbor's ingress uniquely names the
	// physical link; near-side addresses wobble under third-party
	// replies). Links seen in fewer than minSupport traces are treated
	// as measurement noise and dropped from paths, as real tomography
	// pipelines do. The client's access line is unobservable; it is
	// represented by a per-client pseudo-link so home/access problems
	// have somewhere to go (Assumption 1 relief).
	const minSupport = 3
	type peakTest struct {
		t    *ndt.Test
		fars []netaddr.Addr
		bad  bool
	}
	var peakTests []peakTest
	support := map[netaddr.Addr]int{}
	nearOf := map[netaddr.Addr]netaddr.Addr{}
	for _, t := range e.Corpus.Tests {
		if !isPeak(t) {
			continue
		}
		tr := e.Matching.ByTest[t.ID]
		if tr == nil {
			continue
		}
		pt := peakTest{t: t, bad: bad(t)}
		for _, l := range e.Inference.LinksOf(tr) {
			pt.fars = append(pt.fars, l.Far)
			support[l.Far]++
			nearOf[l.Far] = l.Near
		}
		peakTests = append(peakTests, pt)
	}

	var obs []tomo.Observation[string]
	var asObs []tomo.ASObservation
	directish := map[[2]string]*[2]int{} // pair → [multiHopTests, tests]
	for _, pt := range peakTests {
		var path []string
		for _, far := range pt.fars {
			if support[far] >= minSupport {
				path = append(path, far.String())
			}
		}
		path = append(path, "access:"+pt.t.ClientAddr.String())
		obs = append(obs, tomo.Observation[string]{Links: path, Bad: pt.bad})
		if pt.bad {
			res.BadTests++
		} else {
			res.GoodTests++
		}

		serverOrg := pt.t.ServerNet
		clientOrg := e.OrgName(pt.t.ClientASN)
		asObs = append(asObs, tomo.ASObservation{ServerOrg: serverOrg, ClientOrg: clientOrg, Bad: pt.bad})
		k := [2]string{serverOrg, clientOrg}
		c := directish[k]
		if c == nil {
			c = &[2]int{}
			directish[k] = c
		}
		c[1]++
		if tr := e.Matching.ByTest[pt.t.ID]; tr != nil && len(e.Inference.ASPathOf(tr)) > 2 {
			c[0]++
		}
	}

	// Collapse repeated observations of the same path (same links, same
	// client) into one majority verdict, so a single lucky test cannot
	// exonerate a congested link nor a single Wi-Fi-throttled test frame
	// a healthy one.
	obs = tomo.AggregatePaths(obs, 0.5, 1, func(ls []string) string {
		return strings.Join(ls, "|")
	})
	full := tomo.SmallestFailureSet(obs)
	res.Consistent = full.Consistent
	res.Uncovered = full.Uncovered
	for _, l := range full.Bad {
		if strings.HasPrefix(l, "access:") {
			continue
		}
		far := netaddr.MustParseAddr(l)
		entry := struct {
			Near, Far      netaddr.Addr
			NearAS         topology.ASN
			FarAS          topology.ASN
			TrulyCongested bool
		}{Near: nearOf[far], Far: far}
		entry.NearAS = e.Inference.Operator[entry.Near]
		entry.FarAS = e.Inference.Operator[far]
		if ifc := e.World.Topo.IfaceByAddr[far]; ifc != nil && ifc.Link != nil {
			entry.TrulyCongested = ifc.Link.PeakUtil >= 1
		} else if ifc := e.World.Topo.IfaceByAddr[entry.Near]; ifc != nil && ifc.Link != nil {
			entry.TrulyCongested = ifc.Link.PeakUtil >= 1
		}
		res.BadLinks = append(res.BadLinks, entry)
	}
	sort.Slice(res.BadLinks, func(i, j int) bool { return res.BadLinks[i].Far < res.BadLinks[j].Far })

	res.ASVerdicts = tomo.SimplifiedASLevel(asObs, 0.5, 30)
	for _, v := range res.ASVerdicts {
		if !v.Congested {
			continue
		}
		if c := directish[[2]string{v.ServerOrg, v.ClientOrg}]; c != nil && c[1] > 0 &&
			float64(c[0])/float64(c[1]) > 0.5 {
			res.Mislocalized++
		}
	}
	return res
}

// Render prints the comparison.
func (r *TomographyResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§3 — binary tomography vs simplified AS-level tomography (peak-hour tests)\n")
	sb.WriteString(fmt.Sprintf("peak tests: %d bad / %d good; consistent=%v, unexplainable=%d\n",
		r.BadTests, r.GoodTests, r.Consistent, r.Uncovered))
	sb.WriteString("\nfull tomography — inferred bad IP links:\n")
	var rows [][]string
	for _, b := range r.BadLinks {
		rows = append(rows, []string{
			b.Near.String(), b.Far.String(),
			fmt.Sprintf("AS%d→AS%d", b.NearAS, b.FarAS),
			fmt.Sprintf("%v", b.TrulyCongested),
		})
	}
	sb.WriteString(table([]string{"near", "far", "ASes", "truly congested"}, rows))
	sb.WriteString("\nsimplified AS-level verdicts (congested pairs):\n")
	rows = nil
	for _, v := range r.ASVerdicts {
		if !v.Congested {
			continue
		}
		rows = append(rows, []string{v.ServerOrg, v.ClientOrg,
			fmt.Sprintf("%d/%d", v.BadTests, v.Tests)})
	}
	sb.WriteString(table([]string{"server org", "client org", "bad/total"}, rows))
	sb.WriteString(fmt.Sprintf("\nAS-level flags on mostly multi-hop pairs (mislocalized): %d\n", r.Mislocalized))
	return sb.String()
}
