package stats

import (
	"math/rand"
	"testing"
)

// TestWeightedSamplerMatchesWeightedChoice pins the draw-for-draw
// identity contract: over identical RNG streams, Pick returns exactly
// the index sequence WeightedChoice returns, for mixed, degenerate,
// and all-zero weight vectors.
func TestWeightedSamplerMatchesWeightedChoice(t *testing.T) {
	vectors := [][]float64{
		{0, 1, 3, 0},
		{2.5},
		{1, 1, 1, 1, 1, 1, 1},
		{0, 0, 0},
		{0.1, 0, 17, 3.3, 0, 0.0001, 42},
		{-1, 2, -3, 4},
	}
	for vi, weights := range vectors {
		s := NewWeightedSampler(weights)
		a := rand.New(rand.NewSource(int64(vi + 1)))
		b := rand.New(rand.NewSource(int64(vi + 1)))
		for i := 0; i < 5000; i++ {
			want := WeightedChoice(weights, a)
			if got := s.Pick(b); got != want {
				t.Fatalf("vector %d draw %d: Pick = %d, WeightedChoice = %d", vi, i, got, want)
			}
		}
	}
}
