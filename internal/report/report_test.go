package report

import (
	"strings"
	"testing"

	"throughputlab/internal/experiments"
)

var env = func() *experiments.Env {
	e, err := experiments.NewEnv(experiments.QuickOptions())
	if err != nil {
		panic(err)
	}
	return e
}()

var built = Build(env, DefaultConfig())

func findingFor(net, metro, isp string) *Finding {
	for i := range built.Findings {
		f := &built.Findings[i]
		if f.ServerNet == net && f.ServerMetro == metro && f.ClientISP == isp {
			return f
		}
	}
	return nil
}

func TestBuildProducesFindings(t *testing.T) {
	if len(built.Findings) < 10 {
		t.Fatalf("only %d findings", len(built.Findings))
	}
	// Sorted by (net, metro, isp).
	for i := 1; i < len(built.Findings); i++ {
		a, b := built.Findings[i-1], built.Findings[i]
		ka := a.ServerNet + "|" + a.ServerMetro + "|" + a.ClientISP
		kb := b.ServerNet + "|" + b.ServerMetro + "|" + b.ClientISP
		if ka > kb {
			t.Fatal("findings unsorted")
		}
	}
	for _, f := range built.Findings {
		if f.Tests < DefaultConfig().MinTests {
			t.Fatalf("finding below MinTests: %+v", f)
		}
		if f.MatchedFrac < 0 || f.MatchedFrac > 1 || f.OneHopFrac < 0 || f.OneHopFrac > 1 {
			t.Fatalf("fractions out of range: %+v", f)
		}
	}
}

func TestCongestedPairGradedCongested(t *testing.T) {
	f := findingFor("GTT", "atl", "AT&T")
	if f == nil {
		t.Skip("GTT/atl→AT&T group below size threshold at this scale")
	}
	if f.Grade != CongestedHighConfidence && f.Grade != CongestedLowConfidence {
		t.Errorf("saturated pair graded %v", f.Grade)
	}
	// The corroborating signature evidence should be strong.
	if f.ExternalSigFrac < 0.5 {
		t.Errorf("external signature fraction %.2f low for a saturated pair", f.ExternalSigFrac)
	}
}

func TestBusyPairNotCongested(t *testing.T) {
	f := findingFor("GTT", "atl", "Comcast")
	if f == nil {
		t.Skip("GTT/atl→Comcast group below size threshold")
	}
	if f.Grade == CongestedHighConfidence || f.Grade == CongestedLowConfidence {
		t.Errorf("busy pair graded %v (drop %.2f)", f.Grade, f.Detector.Drop)
	}
}

func TestChallengeCaveatsAppear(t *testing.T) {
	// Somewhere in the corpus the assumption checks must fire: Charter/
	// Cox groups are mostly multi-hop, so their findings (when large
	// enough) should carry the Assumption-2 caveat; at minimum, SOME
	// finding carries SOME caveat.
	caveated := 0
	assumption2 := 0
	for _, f := range built.Findings {
		if len(f.Caveats) > 0 {
			caveated++
		}
		for _, c := range f.Caveats {
			if strings.Contains(c, "Assumption 2") {
				assumption2++
			}
		}
	}
	if caveated == 0 {
		t.Error("no finding carries any caveat; the challenge checks are dead")
	}
	if assumption2 == 0 {
		t.Log("note: no Assumption-2 caveat at this scale (all large groups one-hop)")
	}
}

func TestGradeString(t *testing.T) {
	for g := Insufficient; g <= CongestedHighConfidence; g++ {
		if g.String() == "" {
			t.Fatalf("grade %d has no string", g)
		}
	}
	if Grade(42).String() == "" {
		t.Error("unknown grade should stringify")
	}
}

func TestRender(t *testing.T) {
	out := built.Render()
	if !strings.Contains(out, "congested") {
		t.Error("render missing summary")
	}
	if built.Congested > 0 && !strings.Contains(out, "congested (") {
		t.Error("congested findings not rendered")
	}
}

func TestCongestedCountsConsistent(t *testing.T) {
	cong, amb := 0, 0
	for _, f := range built.Findings {
		switch f.Grade {
		case CongestedHighConfidence, CongestedLowConfidence:
			cong++
		case Ambiguous:
			amb++
		}
	}
	if cong != built.Congested || amb != built.Ambiguous {
		t.Errorf("summary counts (%d,%d) != recount (%d,%d)", built.Congested, built.Ambiguous, cong, amb)
	}
	if cong == 0 {
		t.Error("the default scenario has saturated interconnections; the report should find at least one")
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	r := Build(env, Config{})
	if len(r.Findings) == 0 {
		t.Error("zero config should default, not produce nothing")
	}
}

func BenchmarkBuild(b *testing.B) {
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(env, cfg)
	}
}

func TestRecommendations(t *testing.T) {
	recs := built.Recommendations()
	if len(recs) == 0 {
		t.Fatal("the default corpus exhibits several §7 problems; recommendations expected")
	}
	// The multi-link problem is structural in this world.
	found := false
	for _, r := range recs {
		if strings.Contains(r, "stratify per IP link") {
			found = true
		}
	}
	if !found {
		t.Error("missing the §4.3 stratification recommendation")
	}
	// And they surface in the render.
	if !strings.Contains(built.Render(), "recommendations (§7):") {
		t.Error("render missing recommendations")
	}
	// Empty report: no recommendations.
	if (&Report{}).Recommendations() != nil {
		t.Error("empty report should have no recommendations")
	}
}
