package topology

import "fmt"

// Stats summarizes a topology's population, used by tools' banners and
// by tests asserting generator scale.
type Stats struct {
	ASes     int
	ByType   map[ASType]int
	Orgs     int
	Routers  int
	ByKind   map[RouterKind]int
	Links    int
	ByLink   map[LinkKind]int
	Prefixes int
	IXPs     int
	// SaturatedLinks counts links whose offered peak load meets or
	// exceeds capacity.
	SaturatedLinks int
}

// CollectStats walks the topology once.
func (t *Topology) CollectStats() Stats {
	s := Stats{
		ByType: map[ASType]int{},
		ByKind: map[RouterKind]int{},
		ByLink: map[LinkKind]int{},
		Orgs:   len(t.Orgs),
		IXPs:   len(t.IXPs),
	}
	for _, asn := range t.ASNs() {
		s.ASes++
		s.ByType[t.AS(asn).Type]++
	}
	for _, r := range t.routers {
		s.Routers++
		s.ByKind[r.Kind]++
	}
	for _, l := range t.links {
		s.Links++
		s.ByLink[l.Kind]++
		if l.PeakUtil >= 1 {
			s.SaturatedLinks++
		}
	}
	s.Prefixes = t.Origin.Len()
	return s
}

// String renders a one-line banner.
func (s Stats) String() string {
	return fmt.Sprintf("%d ASes (%d access, %d transit, %d content, %d stub) in %d orgs; %d routers; %d links (%d interdomain, %d saturated); %d prefixes; %d IXPs",
		s.ASes, s.ByType[ASTypeAccess], s.ByType[ASTypeTransit], s.ByType[ASTypeContent], s.ByType[ASTypeStub],
		s.Orgs, s.Routers, s.Links, s.ByLink[LinkInterdomain], s.SaturatedLinks, s.Prefixes, s.IXPs)
}
