// Binary columnar corpus format (tputlab-corpus/2): the persisted
// shape a report re-reads many times, so decode speed and size on disk
// are the design goals (the NDJSON stream of stream.go stays the
// debuggable, `jq`-able interchange form).
//
// File layout:
//
//	magic[8] = "tputcol2"
//	header frame:  uvarint len | JSON streamHeader | crc32c
//	chunk frame:   0x01 | uvarint payloadLen | payload   ×N
//	footer frame:  0x02 | uvarint payloadLen | payload | crc32c
//	               | uint32 LE footerFrameLen | tail[8] = "tplc2idx"
//
// A chunk payload is a checksummed preamble (chunk index, watermark,
// per-chunk completeness ledger, row counts, stripe count) followed by
// one stripe per Test/Trace field — column-major, so a reader that
// only needs traces (report pass 1) skips every test stripe without
// decoding a byte of it. The footer carries campaign totals (the same
// truncation check the NDJSON footer performs) plus an append-only
// chunk index: one (offset, watermark, tests, traces) row per chunk,
// enabling O(1) seek-to-chunk through OpenColumnarAt without scanning
// the file. The trailing fixed-width frame length and tail magic let a
// seekable reader find the footer from the end of the file.
//
// Chunk encoding is deterministic (dictionaries are built in
// first-appearance order), so serial and worker-parallel writers
// produce byte-identical files — the same contract the NDJSON worker
// codec pins.
package export

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/stream"
	"throughputlab/internal/traceroute"
)

// ColumnarFormat names the binary columnar corpus format version.
const ColumnarFormat = "tputlab-corpus/2"

// columnarMagic opens every columnar corpus file; columnarTail closes
// it, immediately after the fixed-width footer-frame length.
const (
	columnarMagic = "tputcol2"
	columnarTail  = "tplc2idx"
)

// Frame kinds.
const (
	frameChunk  byte = 0x01
	frameFooter byte = 0x02
)

// maxFramePayload caps a single frame's declared payload. Real chunks
// at the default 8192-test size encode to ~1–2 MB; anything past the
// cap is a corrupt or hostile length, refused before any allocation.
const maxFramePayload = 1 << 28

// Test column field ids (stable on disk; new fields append, never
// renumber). Trace columns start at 64.
const (
	fTestID uint64 = iota + 1
	fTestClientAddr
	fTestClientASN
	fTestClientISP
	fTestClientMetro
	fTestTierMbps
	fTestWiFiCapMbps
	fTestServerAddr
	fTestServerASN
	fTestServerSite
	fTestServerNet
	fTestServerMetro
	fTestStartMinute
	fTestFlowEntropy
	fTestDownMbps
	fTestUpMbps
	fTestRTTms
	fTestRTTMinMs
	fTestRetransRate
	fTestW100DurationSec
	fTestW100OctetsAcked
	fTestW100SegsOut
	fTestW100SegsRetrans
	fTestW100CongSignals
	fTestW100MinRTTms
	fTestW100SmoothedRTTms
	fTestW100CurCwndBytes
	fTestW100CwndFrac
	fTestW100RwinFrac
	fTestW100SenderFrac
	fTestTruncated
	fTestTruthKind
	fTestTruthSaturated
	fTestTruthBottleneck
	fTestTruthInterLens
	fTestTruthInterVals
	fTestTruthASPathLens
	fTestTruthASPathVals

	numTestFields = int(fTestTruthASPathVals)
)

const (
	fTraceSrcAddr uint64 = iota + 64
	fTraceDstAddr
	fTraceLaunchMinute
	fTraceFlowEntropy
	fTraceReached
	fTraceDegraded
	fTraceHopLens
	fTraceHopTTL
	fTraceHopAddr
	fTraceHopDNSName
	fTraceHopRTTms

	numTraceFields = int(fTraceHopRTTms) - 63
)

// colScratch holds the reusable encode-side buffers: the per-column
// value slices the stripe builders read from, the dictionary maps, and
// the payload accumulator. One scratch serves one chunk encode and is
// pooled across chunks and writers.
type colScratch struct {
	payload  []byte
	chunkBuf []byte
	u64s     []uint64
	i64s     []int64
	f64s     []float64
	u32s     []uint32
	bools    []bool
	strs     []string
	strDict  map[string]uint64
	u64Dict  map[uint64]uint64
}

var colScratchPool = sync.Pool{New: func() any {
	return &colScratch{strDict: map[string]uint64{}, u64Dict: map[uint64]uint64{}}
}}

// frameBufPool recycles whole encoded chunk frames between the encode
// workers and the sequencer (and across serial WriteChunk calls).
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getFrameBuf() *[]byte {
	b := frameBufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func putFrameBuf(b *[]byte) {
	if cap(*b) <= maxPooledLine {
		frameBufPool.Put(b)
	}
}

// appendChunkPayload encodes one collection chunk's columnar payload:
// checksummed preamble, then every test stripe, then every trace
// stripe.
func appendChunkPayload(dst []byte, c *platform.Chunk, sc *colScratch) []byte {
	preStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(c.Index))
	dst = binary.AppendUvarint(dst, uint64(c.Watermark))
	dst = binary.AppendUvarint(dst, uint64(c.TestsWithoutTrace))
	dst = appendCompleteness(dst, c.Completeness)
	dst = binary.AppendUvarint(dst, uint64(len(c.Tests)))
	dst = binary.AppendUvarint(dst, uint64(len(c.Traces)))
	dst = binary.AppendUvarint(dst, uint64(numTestFields+numTraceFields))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[preStart:], castagnoli))
	dst = appendTestStripes(dst, c.Tests, sc)
	dst = appendTraceStripes(dst, c.Traces, sc)
	return dst
}

// appendCompleteness encodes the five-field fault ledger.
func appendCompleteness(dst []byte, cm platform.Completeness) []byte {
	for _, v := range [...]int{cm.ScheduledTests, cm.AbandonedTests, cm.DroppedRows, cm.TruncatedTests, cm.DegradedTraces} {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

// appendTestStripes emits one stripe per ndt.Test field, in field-id
// order.
func appendTestStripes(dst []byte, tests []*ndt.Test, sc *colScratch) []byte {
	stripe := func(field uint64, enc byte) {
		dst = appendStripe(dst, field, enc, sc.payload)
		sc.payload = sc.payload[:0]
	}
	deltas := func(field uint64, get func(*ndt.Test) int64) {
		sc.i64s = sc.i64s[:0]
		for _, t := range tests {
			sc.i64s = append(sc.i64s, get(t))
		}
		sc.payload = appendDeltas(sc.payload, sc.i64s)
		stripe(field, encDelta)
	}
	varints := func(field uint64, get func(*ndt.Test) uint64) {
		sc.u64s = sc.u64s[:0]
		for _, t := range tests {
			sc.u64s = append(sc.u64s, get(t))
		}
		sc.payload = appendUvarints(sc.payload, sc.u64s)
		stripe(field, encVarint)
	}
	dictInts := func(field uint64, get func(*ndt.Test) uint64) {
		sc.u64s = sc.u64s[:0]
		for _, t := range tests {
			sc.u64s = append(sc.u64s, get(t))
		}
		sc.payload = appendIntDict(sc.payload, sc.u64s, sc.u64Dict)
		stripe(field, encDict)
	}
	dictStrs := func(field uint64, get func(*ndt.Test) string) {
		sc.strs = sc.strs[:0]
		for _, t := range tests {
			sc.strs = append(sc.strs, get(t))
		}
		sc.payload = appendStringDict(sc.payload, sc.strs, sc.strDict)
		stripe(field, encDict)
	}
	rawFloats := func(field uint64, get func(*ndt.Test) float64) {
		sc.f64s = sc.f64s[:0]
		for _, t := range tests {
			sc.f64s = append(sc.f64s, get(t))
		}
		sc.payload = appendFloats(sc.payload, sc.f64s)
		stripe(field, encRaw)
	}
	adaptFloats := func(field uint64, get func(*ndt.Test) float64) {
		sc.f64s = sc.f64s[:0]
		for _, t := range tests {
			sc.f64s = append(sc.f64s, get(t))
		}
		var enc byte
		sc.payload, enc = appendFloatColumn(sc.payload, sc.f64s, sc.u64Dict)
		stripe(field, enc)
	}
	rawU32s := func(field uint64, get func(*ndt.Test) uint32) {
		sc.u32s = sc.u32s[:0]
		for _, t := range tests {
			sc.u32s = append(sc.u32s, get(t))
		}
		sc.payload = appendUint32s(sc.payload, sc.u32s)
		stripe(field, encRaw)
	}
	bitmap := func(field uint64, get func(*ndt.Test) bool) {
		sc.bools = sc.bools[:0]
		for _, t := range tests {
			sc.bools = append(sc.bools, get(t))
		}
		sc.payload = appendBitmap(sc.payload, sc.bools)
		stripe(field, encBitmap)
	}
	deltas(fTestID, func(t *ndt.Test) int64 { return int64(t.ID) })
	rawU32s(fTestClientAddr, func(t *ndt.Test) uint32 { return uint32(t.ClientAddr) })
	varints(fTestClientASN, func(t *ndt.Test) uint64 { return uint64(t.ClientASN) })
	dictStrs(fTestClientISP, func(t *ndt.Test) string { return t.ClientISP })
	dictStrs(fTestClientMetro, func(t *ndt.Test) string { return t.ClientMetro })
	adaptFloats(fTestTierMbps, func(t *ndt.Test) float64 { return t.TierMbps })
	adaptFloats(fTestWiFiCapMbps, func(t *ndt.Test) float64 { return t.WiFiCapMbps })
	dictInts(fTestServerAddr, func(t *ndt.Test) uint64 { return uint64(t.ServerAddr) })
	dictInts(fTestServerASN, func(t *ndt.Test) uint64 { return uint64(t.ServerASN) })
	dictStrs(fTestServerSite, func(t *ndt.Test) string { return t.ServerSite })
	dictStrs(fTestServerNet, func(t *ndt.Test) string { return t.ServerNet })
	dictStrs(fTestServerMetro, func(t *ndt.Test) string { return t.ServerMetro })
	deltas(fTestStartMinute, func(t *ndt.Test) int64 { return int64(t.StartMinute) })
	rawU32s(fTestFlowEntropy, func(t *ndt.Test) uint32 { return t.FlowEntropy })
	rawFloats(fTestDownMbps, func(t *ndt.Test) float64 { return t.DownMbps })
	rawFloats(fTestUpMbps, func(t *ndt.Test) float64 { return t.UpMbps })
	rawFloats(fTestRTTms, func(t *ndt.Test) float64 { return t.RTTms })
	rawFloats(fTestRTTMinMs, func(t *ndt.Test) float64 { return t.RTTMinMs })
	rawFloats(fTestRetransRate, func(t *ndt.Test) float64 { return t.RetransRate })
	adaptFloats(fTestW100DurationSec, func(t *ndt.Test) float64 { return t.Web100.DurationSec })
	varints(fTestW100OctetsAcked, func(t *ndt.Test) uint64 { return uint64(t.Web100.HCThruOctetsAcked) })
	varints(fTestW100SegsOut, func(t *ndt.Test) uint64 { return uint64(t.Web100.SegsOut) })
	varints(fTestW100SegsRetrans, func(t *ndt.Test) uint64 { return uint64(t.Web100.SegsRetrans) })
	varints(fTestW100CongSignals, func(t *ndt.Test) uint64 { return uint64(t.Web100.CongSignals) })
	rawFloats(fTestW100MinRTTms, func(t *ndt.Test) float64 { return t.Web100.MinRTTms })
	rawFloats(fTestW100SmoothedRTTms, func(t *ndt.Test) float64 { return t.Web100.SmoothedRTTms })
	varints(fTestW100CurCwndBytes, func(t *ndt.Test) uint64 { return uint64(t.Web100.CurCwndBytes) })
	adaptFloats(fTestW100CwndFrac, func(t *ndt.Test) float64 { return t.Web100.SndLimTimeCwndFrac })
	adaptFloats(fTestW100RwinFrac, func(t *ndt.Test) float64 { return t.Web100.SndLimTimeRwinFrac })
	adaptFloats(fTestW100SenderFrac, func(t *ndt.Test) float64 { return t.Web100.SndLimTimeSenderFrac })
	bitmap(fTestTruncated, func(t *ndt.Test) bool { return t.Truncated })
	varints(fTestTruthKind, func(t *ndt.Test) uint64 { return uint64(t.TruthKind) })
	bitmap(fTestTruthSaturated, func(t *ndt.Test) bool { return t.TruthSaturated })
	varints(fTestTruthBottleneck, func(t *ndt.Test) uint64 { return uint64(t.TruthBottleneck) })

	// List columns: a lengths stripe, then the values flattened across
	// the chunk (the same shape as hop columns on the trace side).
	varints(fTestTruthInterLens, func(t *ndt.Test) uint64 { return uint64(len(t.TruthInterLinks)) })
	sc.u64s = sc.u64s[:0]
	for _, t := range tests {
		for _, v := range t.TruthInterLinks {
			sc.u64s = append(sc.u64s, uint64(v))
		}
	}
	sc.payload = appendUvarints(sc.payload, sc.u64s)
	stripe(fTestTruthInterVals, encVarint)

	varints(fTestTruthASPathLens, func(t *ndt.Test) uint64 { return uint64(len(t.TruthASPath)) })
	sc.u64s = sc.u64s[:0]
	for _, t := range tests {
		for _, v := range t.TruthASPath {
			sc.u64s = append(sc.u64s, uint64(v))
		}
	}
	sc.payload = appendUvarints(sc.payload, sc.u64s)
	stripe(fTestTruthASPathVals, encVarint)
	return dst
}

// appendTraceStripes emits one stripe per traceroute.Trace field. Hop
// fields are flattened across the chunk behind a per-trace lengths
// stripe, which the writer emits first so the decoder can size the hop
// slab before any hop stripe arrives.
func appendTraceStripes(dst []byte, traces []*traceroute.Trace, sc *colScratch) []byte {
	stripe := func(field uint64, enc byte) {
		dst = appendStripe(dst, field, enc, sc.payload)
		sc.payload = sc.payload[:0]
	}

	sc.u32s = sc.u32s[:0]
	for _, tr := range traces {
		sc.u32s = append(sc.u32s, uint32(tr.SrcAddr))
	}
	sc.payload = appendUint32s(sc.payload, sc.u32s)
	stripe(fTraceSrcAddr, encRaw)

	sc.u32s = sc.u32s[:0]
	for _, tr := range traces {
		sc.u32s = append(sc.u32s, uint32(tr.DstAddr))
	}
	sc.payload = appendUint32s(sc.payload, sc.u32s)
	stripe(fTraceDstAddr, encRaw)

	sc.i64s = sc.i64s[:0]
	for _, tr := range traces {
		sc.i64s = append(sc.i64s, int64(tr.LaunchMinute))
	}
	sc.payload = appendDeltas(sc.payload, sc.i64s)
	stripe(fTraceLaunchMinute, encDelta)

	sc.u32s = sc.u32s[:0]
	for _, tr := range traces {
		sc.u32s = append(sc.u32s, tr.FlowEntropy)
	}
	sc.payload = appendUint32s(sc.payload, sc.u32s)
	stripe(fTraceFlowEntropy, encRaw)

	sc.bools = sc.bools[:0]
	for _, tr := range traces {
		sc.bools = append(sc.bools, tr.Reached)
	}
	sc.payload = appendBitmap(sc.payload, sc.bools)
	stripe(fTraceReached, encBitmap)

	sc.bools = sc.bools[:0]
	for _, tr := range traces {
		sc.bools = append(sc.bools, tr.Degraded)
	}
	sc.payload = appendBitmap(sc.payload, sc.bools)
	stripe(fTraceDegraded, encBitmap)

	sc.u64s = sc.u64s[:0]
	for _, tr := range traces {
		sc.u64s = append(sc.u64s, uint64(len(tr.Hops)))
	}
	sc.payload = appendUvarints(sc.payload, sc.u64s)
	stripe(fTraceHopLens, encVarint)

	sc.u64s = sc.u64s[:0]
	for _, tr := range traces {
		for _, h := range tr.Hops {
			sc.u64s = append(sc.u64s, uint64(h.TTL))
		}
	}
	sc.payload = appendUvarints(sc.payload, sc.u64s)
	stripe(fTraceHopTTL, encVarint)

	sc.u32s = sc.u32s[:0]
	for _, tr := range traces {
		for _, h := range tr.Hops {
			sc.u32s = append(sc.u32s, uint32(h.Addr))
		}
	}
	sc.payload = appendUint32s(sc.payload, sc.u32s)
	stripe(fTraceHopAddr, encRaw)

	sc.strs = sc.strs[:0]
	for _, tr := range traces {
		for _, h := range tr.Hops {
			sc.strs = append(sc.strs, h.DNSName)
		}
	}
	sc.payload = appendStringDict(sc.payload, sc.strs, sc.strDict)
	stripe(fTraceHopDNSName, encDict)

	sc.f64s = sc.f64s[:0]
	for _, tr := range traces {
		for _, h := range tr.Hops {
			sc.f64s = append(sc.f64s, h.RTTms)
		}
	}
	sc.payload = appendFloats(sc.payload, sc.f64s)
	stripe(fTraceHopRTTms, encRaw)

	return dst
}

// appendChunkFrame wraps a chunk payload in its frame header. The
// payload is staged in the scratch so the frame's length prefix can be
// written first without a fresh allocation per chunk.
func appendChunkFrame(dst []byte, c *platform.Chunk, sc *colScratch) []byte {
	sc.chunkBuf = appendChunkPayload(sc.chunkBuf[:0], c, sc)
	dst = append(dst, frameChunk)
	dst = binary.AppendUvarint(dst, uint64(len(sc.chunkBuf)))
	return append(dst, sc.chunkBuf...)
}

// ChunkIndexEntry is one row of the footer's chunk index.
type ChunkIndexEntry struct {
	// Offset is the file offset of the chunk frame's kind byte.
	Offset int64
	// Watermark, Tests and Traces mirror the chunk preamble, so a
	// seeking reader can pick chunks by time window or row budget
	// without touching them.
	Watermark int
	Tests     int
	Traces    int
}

// colFrame is one encoded chunk frame in flight between the encode
// workers and the sequencer, carrying the index row it will occupy.
type colFrame struct {
	buf       *[]byte
	watermark int
	tests     int
	traces    int
}

// colEncJob is one chunk awaiting columnar encoding.
type colEncJob struct {
	seq int
	c   *platform.Chunk
}

// colEncodePipeline mirrors encodePipeline for the columnar writer.
type colEncodePipeline struct {
	in   chan colEncJob
	ro   *stream.Reorder[colFrame]
	wg   sync.WaitGroup
	done chan struct{}
	next int

	mu      sync.Mutex
	retired sync.Cond
	written int
	err     error
}

func (ep *colEncodePipeline) fail(err error) {
	ep.mu.Lock()
	if ep.err == nil {
		ep.err = err
	}
	ep.retired.Broadcast()
	ep.mu.Unlock()
}

func (ep *colEncodePipeline) firstErr() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.err
}

func (ep *colEncodePipeline) retire() {
	ep.mu.Lock()
	ep.written++
	ep.retired.Broadcast()
	ep.mu.Unlock()
}

// drain blocks until the sequencer has retired the first n submitted
// frames or the pipeline failed, mirroring encodePipeline.drain.
func (ep *colEncodePipeline) drain(n int) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for ep.written < n && ep.err == nil {
		ep.retired.Wait()
	}
	return ep.err
}

// ColumnarWriter persists a campaign as a tputlab-corpus/2 file. Like
// StreamWriter it buffers only the frame being written, never the
// corpus, and WriteChunk must be called from a single goroutine.
type ColumnarWriter struct {
	bw     *bufio.Writer
	off    int64
	footer StreamFooter
	index  []ChunkIndexEntry
	frame  []byte // serial-path frame scratch
	closed bool
	enc    *colEncodePipeline
}

// NewColumnarWriter writes the magic and header frame and returns a
// writer ready for chunks. The public bundle is validated first, as in
// the NDJSON writer.
func NewColumnarWriter(w io.Writer, public Public, meta StreamMeta) (*ColumnarWriter, error) {
	if err := public.Validate(); err != nil {
		return nil, err
	}
	hdr, err := json.Marshal(streamHeader{Format: ColumnarFormat, Public: public, Meta: meta})
	if err != nil {
		return nil, fmt.Errorf("export: encoding columnar header: %w", err)
	}
	cw := &ColumnarWriter{bw: bufio.NewWriterSize(w, 1<<20), footer: StreamFooter{Footer: true}}
	var buf []byte
	buf = append(buf, columnarMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(hdr)))
	buf = append(buf, hdr...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(hdr, castagnoli))
	if err := cw.write(buf); err != nil {
		return nil, err
	}
	return cw, nil
}

// NewColumnarWriterWorkers is NewColumnarWriter with worker-parallel
// chunk encoding behind a reorder buffer; the output bytes are
// identical at any worker count. Errors surface on a later WriteChunk
// or at Close, exactly as in NewStreamWriterWorkers.
func NewColumnarWriterWorkers(w io.Writer, public Public, meta StreamMeta, workers int) (*ColumnarWriter, error) {
	cw, err := NewColumnarWriter(w, public, meta)
	if err != nil || workers <= 1 {
		return cw, err
	}
	cw.attachEncoders(workers)
	return cw, nil
}

// attachEncoders wires the worker encode pipeline onto a writer whose
// header is already on disk; shared by the fresh and resumed paths.
func (cw *ColumnarWriter) attachEncoders(workers int) {
	ep := &colEncodePipeline{
		in:   make(chan colEncJob, workers),
		ro:   stream.NewReorder[colFrame](workers),
		done: make(chan struct{}),
	}
	ep.retired.L = &ep.mu
	for i := 0; i < workers; i++ {
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			sc := colScratchPool.Get().(*colScratch)
			defer colScratchPool.Put(sc)
			dead := false
			for job := range ep.in {
				if dead {
					continue
				}
				buf := getFrameBuf()
				*buf = appendChunkFrame(*buf, job.c, sc)
				fr := colFrame{buf: buf, watermark: job.c.Watermark, tests: len(job.c.Tests), traces: len(job.c.Traces)}
				if !ep.ro.Put(job.seq, fr) {
					putFrameBuf(buf)
					dead = true
				}
			}
		}()
	}
	go func() {
		for {
			fr, ok := ep.ro.Next()
			if !ok {
				break
			}
			if ep.firstErr() == nil {
				cw.index = append(cw.index, ChunkIndexEntry{
					Offset: cw.off, Watermark: fr.watermark, Tests: fr.tests, Traces: fr.traces,
				})
				if err := cw.write(*fr.buf); err != nil {
					ep.fail(err)
					ep.ro.Fail(err)
				}
			}
			putFrameBuf(fr.buf)
			ep.retire()
		}
		close(ep.done)
	}()
	cw.enc = ep
}

// write pushes bytes to the underlying writer, tracking the offset the
// chunk index records.
func (cw *ColumnarWriter) write(b []byte) error {
	n, err := cw.bw.Write(b)
	cw.off += int64(n)
	if err != nil {
		return fmt.Errorf("export: writing columnar corpus: %w", err)
	}
	return nil
}

// WriteChunk appends one collection chunk; it plugs directly into
// platform.CollectStream as the sink.
func (cw *ColumnarWriter) WriteChunk(c *platform.Chunk) error {
	if cw.enc != nil {
		if err := cw.enc.firstErr(); err != nil {
			return err
		}
		cw.enc.in <- colEncJob{seq: cw.enc.next, c: c}
		cw.enc.next++
	} else {
		sc := colScratchPool.Get().(*colScratch)
		cw.frame = appendChunkFrame(cw.frame[:0], c, sc)
		colScratchPool.Put(sc)
		cw.index = append(cw.index, ChunkIndexEntry{
			Offset: cw.off, Watermark: c.Watermark, Tests: len(c.Tests), Traces: len(c.Traces),
		})
		if err := cw.write(cw.frame); err != nil {
			return err
		}
	}
	cw.footer.Chunks++
	cw.footer.Tests += len(c.Tests)
	cw.footer.Traces += len(c.Traces)
	cw.footer.TestsWithoutTrace += c.TestsWithoutTrace
	cw.footer.Completeness.Merge(c.Completeness)
	return nil
}

// Sync drains every chunk submitted so far out of the encode pipeline
// and through the bufio layer, so the underlying writer holds a prefix
// ending exactly at a chunk-frame boundary; the checkpoint layer
// fsyncs behind it. The file stays open for more chunks.
func (cw *ColumnarWriter) Sync() error {
	if cw.enc != nil {
		if err := cw.enc.drain(cw.enc.next); err != nil {
			return err
		}
	}
	if err := cw.bw.Flush(); err != nil {
		return fmt.Errorf("export: writing columnar corpus: %w", err)
	}
	return nil
}

// ResumeColumnarWriter reopens a columnar writer over a file whose
// magic, header and first chunk frames are already durable: w must be
// positioned at the end of that prefix, offset is its byte length, and
// totals/index are the running footer state accumulated over it (as
// ReplayPrefix reports). The writer emits no header; the next
// WriteChunk appends the frame after the prefix.
func ResumeColumnarWriter(w io.Writer, totals StreamFooter, offset int64, index []ChunkIndexEntry, workers int) *ColumnarWriter {
	cw := &ColumnarWriter{
		bw:     bufio.NewWriterSize(w, 1<<20),
		off:    offset,
		footer: totals,
		index:  append([]ChunkIndexEntry(nil), index...),
	}
	cw.footer.Footer = true
	if workers > 1 {
		cw.attachEncoders(workers)
	}
	return cw
}

// Close seals the file with the footer frame, the chunk index, and the
// fixed-width tail. Without it the file reads as truncated.
func (cw *ColumnarWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	if cw.enc != nil {
		close(cw.enc.in)
		cw.enc.wg.Wait()
		cw.enc.ro.Close()
		<-cw.enc.done
		if err := cw.enc.firstErr(); err != nil {
			return err
		}
	}
	var payload []byte
	payload = binary.AppendUvarint(payload, uint64(cw.footer.Chunks))
	payload = binary.AppendUvarint(payload, uint64(cw.footer.Tests))
	payload = binary.AppendUvarint(payload, uint64(cw.footer.Traces))
	payload = binary.AppendUvarint(payload, uint64(cw.footer.TestsWithoutTrace))
	payload = appendCompleteness(payload, cw.footer.Completeness)
	prev := int64(0)
	for _, e := range cw.index {
		payload = binary.AppendUvarint(payload, uint64(e.Offset-prev))
		prev = e.Offset
		payload = binary.AppendUvarint(payload, uint64(e.Watermark))
		payload = binary.AppendUvarint(payload, uint64(e.Tests))
		payload = binary.AppendUvarint(payload, uint64(e.Traces))
	}
	var frame []byte
	frame = append(frame, frameFooter)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(frame)))
	frame = append(frame, columnarTail...)
	if err := cw.write(frame); err != nil {
		return err
	}
	return cw.bw.Flush()
}

// Abandon shuts the writer down without sealing the file: encode
// workers stop, but no footer frame is written, so the file stays a
// truncated (resumable) prefix — the interrupt path's counterpart to
// Close, mirroring StreamWriter.Abandon.
func (cw *ColumnarWriter) Abandon() {
	if cw.closed {
		return
	}
	cw.closed = true
	if cw.enc != nil {
		close(cw.enc.in)
		cw.enc.wg.Wait()
		cw.enc.ro.Close()
		<-cw.enc.done
	}
}

// Footer exposes the running totals (complete once Close has run).
func (cw *ColumnarWriter) Footer() StreamFooter { return cw.footer }
