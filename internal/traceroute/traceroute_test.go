package traceroute

import (
	"math/rand"
	"testing"

	"throughputlab/internal/topogen"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func TestTraceCleanPath(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	cli, ok := world.NewClient("Comcast", "nyc")
	if !ok {
		t.Fatal("no client")
	}
	tr := New(world.Topo, world.Resolver, Clean())
	trace, err := tr.Trace(srv, cli, 1, 600, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Reached {
		t.Error("clean trace should reach the destination")
	}
	if len(trace.Hops) < 3 {
		t.Fatalf("only %d hops", len(trace.Hops))
	}
	// Last hop is the destination address.
	last := trace.Hops[len(trace.Hops)-1]
	if last.Addr != cli.Addr {
		t.Errorf("last hop %v, want client %v", last.Addr, cli.Addr)
	}
	// TTLs are sequential from 1.
	for i, h := range trace.Hops {
		if h.TTL != i+1 {
			t.Errorf("hop %d has TTL %d", i, h.TTL)
		}
	}
	// RTTs are nondecreasing on a clean trace.
	for i := 1; i < len(trace.Hops); i++ {
		if trace.Hops[i].RTTms < trace.Hops[i-1].RTTms {
			t.Errorf("RTT decreased at hop %d", i)
		}
	}
	// Every responsive hop address resolves to a ground-truth interface
	// or the destination.
	for _, h := range trace.Hops[:len(trace.Hops)-1] {
		if h.NoReply() {
			continue
		}
		if world.Topo.IfaceByAddr[h.Addr] == nil {
			t.Errorf("hop address %v is not a known interface", h.Addr)
		}
	}
}

func TestTraceParisConsistency(t *testing.T) {
	// Same flow entropy → identical hop sequence (that is the point of
	// Paris traceroute).
	srv := world.MLabServers()[0].Endpoint
	cli, _ := world.NewClient("Cox", "atl")
	tr := New(world.Topo, world.Resolver, Clean())
	t1, err := tr.Trace(srv, cli, 42, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := tr.Trace(srv, cli, 42, 500, nil)
	if len(t1.Hops) != len(t2.Hops) {
		t.Fatal("same-flow traces differ in length")
	}
	for i := range t1.Hops {
		if t1.Hops[i].Addr != t2.Hops[i].Addr {
			t.Fatalf("same-flow traces diverge at hop %d", i)
		}
	}
}

func TestTraceFlowEntropyCanDiverge(t *testing.T) {
	// Cox has parallel links; across many flow IDs at least two traces
	// should cross different interdomain interfaces.
	srv := world.MLabServers()[0].Endpoint
	cli, _ := world.NewClient("Cox", "atl")
	tr := New(world.Topo, world.Resolver, Clean())
	seen := map[string]bool{}
	for e := uint32(0); e < 64; e++ {
		trace, err := tr.Trace(srv, cli, e, 100, nil)
		if err != nil {
			t.Fatal(err)
		}
		sig := ""
		for _, h := range trace.Hops {
			sig += h.Addr.String() + "|"
		}
		seen[sig] = true
	}
	if len(seen) < 2 {
		t.Log("no ECMP divergence observed on this pair (possible but unusual)")
	}
}

func TestArtifactsNoReply(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	cli, _ := world.NewClient("AT&T", "chi")
	tr := New(world.Topo, world.Resolver, Artifacts{NoReplyProb: 1})
	rng := rand.New(rand.NewSource(1))
	trace, err := tr.Trace(srv, cli, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace.Hops[:len(trace.Hops)-1] {
		if !h.NoReply() {
			t.Error("all router hops should be stars with NoReplyProb=1")
		}
	}
}

func TestArtifactsDstNoReply(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	cli, _ := world.NewClient("AT&T", "chi")
	tr := New(world.Topo, world.Resolver, Artifacts{DstNoReplyProb: 1})
	rng := rand.New(rand.NewSource(2))
	trace, _ := tr.Trace(srv, cli, 1, 0, rng)
	if trace.Reached {
		t.Error("destination should not reply")
	}
	if !trace.Hops[len(trace.Hops)-1].NoReply() {
		t.Error("final hop should be a star")
	}
}

func TestArtifactsThirdParty(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	cli, _ := world.NewClient("Comcast", "nyc")
	clean := New(world.Topo, world.Resolver, Clean())
	dirty := New(world.Topo, world.Resolver, Artifacts{ThirdPartyProb: 1})
	base, err := clean.Trace(srv, cli, 9, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	tp, _ := dirty.Trace(srv, cli, 9, 0, rng)
	diff := 0
	for i := range base.Hops[:len(base.Hops)-1] {
		if base.Hops[i].Addr != tp.Hops[i].Addr {
			diff++
			// Third-party address must still belong to the same router.
			b := world.Topo.IfaceByAddr[base.Hops[i].Addr]
			d := world.Topo.IfaceByAddr[tp.Hops[i].Addr]
			if b != nil && d != nil && b.Router.ID != d.Router.ID {
				t.Errorf("hop %d third-party address from a different router", i)
			}
		}
	}
	if diff == 0 {
		t.Error("ThirdPartyProb=1 should change some hop addresses")
	}
}

func TestResponsiveAddrs(t *testing.T) {
	tr := Trace{Hops: []Hop{
		{TTL: 1, Addr: 100},
		{TTL: 2},
		{TTL: 3, Addr: 100}, // consecutive duplicate after star collapses
		{TTL: 4, Addr: 200},
	}}
	got := tr.ResponsiveAddrs()
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Errorf("ResponsiveAddrs = %v", got)
	}
}

func BenchmarkTrace(b *testing.B) {
	srv := world.MLabServers()[0].Endpoint
	cli, _ := world.NewClient("Comcast", "nyc")
	tr := New(world.Topo, world.Resolver, DefaultArtifacts())
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Trace(srv, cli, uint32(i), i%1440, rng); err != nil {
			b.Fatal(err)
		}
	}
}
