// Package mapit implements the core of MAP-IT (Marder & Smith, IMC
// 2016): multipass inference of interdomain links from a corpus of
// already-collected traceroutes, using only public data — the
// prefix→AS mapping, IXP prefix lists, and AS→organization data.
//
// The central difficulty (§4.2 of the reproduced paper, and [25]) is
// that a point-to-point interdomain link between ASes A and B is
// numbered out of ONE of their address spaces, so the far-side
// interface — operated by B — carries an address that the prefix→AS
// mapping attributes to A. No single traceroute can resolve this;
// MAP-IT's premise is that collating many traces provides constraints:
// an interface whose predecessors predominantly belong to A but whose
// successors predominantly belong to B is B's ingress on an A–B link.
//
// This implementation performs the published algorithm's essential
// passes: per-interface neighbor-set construction, majority-vote
// operator inference with threshold f, IXP-prefix handling, and
// iterated refinement where votes use previously inferred operators
// rather than raw prefix origins. Vendor-specific special cases of the
// original are out of scope (DESIGN.md §7).
package mapit

import (
	"sort"
	"sync"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/obs"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// Opts supplies the public datasets.
type Opts struct {
	// Prefix2AS is the public origin lookup (CAIDA prefix→AS).
	Prefix2AS func(netaddr.Addr) (topology.ASN, bool)
	// IsIXP reports whether an address falls in a known IXP peering
	// LAN.
	IsIXP func(netaddr.Addr) bool
	// SameOrg collapses sibling ASes (CAIDA AS→organization).
	SameOrg func(a, b topology.ASN) bool
	// Threshold is the majority fraction f required to reassign an
	// interface's operator (MAP-IT's f; 0 → default 0.5).
	Threshold float64
	// Passes bounds refinement iterations (0 → default 3).
	Passes int
	// DisableFarSide turns off the far-side operator correction — the
	// ablation showing what breaks when point-to-point numbering is
	// taken at face value (links get attributed one hop late, inside
	// the neighbor).
	DisableFarSide bool
	// Workers parallelizes the per-trace passes (interface-graph
	// construction and link extraction) over goroutines; 0 or 1 runs
	// serially. The inference is identical for every worker count. The
	// Prefix2AS/IsIXP/SameOrg callbacks must be safe for concurrent
	// calls when Workers > 1.
	Workers int
	// Obs, when non-nil, receives inference counters (links classified,
	// majority-vote ties, far-side flips). Counters accumulate across
	// runs sharing one registry (the ablation experiments rerun the
	// inference); they never influence the inference itself.
	Obs *obs.Registry
}

func (o *Opts) withDefaults() {
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.Passes == 0 {
		o.Passes = 3
	}
	if o.SameOrg == nil {
		o.SameOrg = func(a, b topology.ASN) bool { return a == b }
	}
	if o.IsIXP == nil {
		o.IsIXP = func(netaddr.Addr) bool { return false }
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// traceChunks splits the corpus into at most workers contiguous
// chunks for the per-trace parallel passes.
func traceChunks(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunks := make([][2]int, 0, workers)
	for c := 0; c < workers; c++ {
		lo := c * n / workers
		hi := (c + 1) * n / workers
		if lo < hi {
			chunks = append(chunks, [2]int{lo, hi})
		}
	}
	return chunks
}

// Link is one inferred IP-level interdomain link, identified by the
// near (egress) and far (ingress) interface addresses.
type Link struct {
	Near, Far     netaddr.Addr
	NearAS, FarAS topology.ASN
	// Traces is how many traceroutes crossed this link.
	Traces int
}

// Inference is the result of a MAP-IT run.
type Inference struct {
	// Operator is the inferred operating AS per interface address.
	Operator map[netaddr.Addr]topology.ASN
	// Links are the inferred IP-level interdomain links, sorted by
	// descending trace count then address.
	Links []Link

	opts Opts
}

type ifaceStats struct {
	origin topology.ASN
	hasOrg bool
	isIXP  bool
	// prev/next neighbor addresses with multiplicity.
	prev map[netaddr.Addr]int
	next map[netaddr.Addr]int
}

// Builder accumulates traces incrementally and runs the vote passes
// once over the merged state. Feeding the corpus in any chunking —
// including one Add of everything, which is exactly what Run does —
// produces the identical Inference: pass 0 and the pair counts are
// additive merges, and every order-sensitive step (vote passes,
// far-side detection, link sorting) runs only at Finish over
// deterministically sorted state.
type Builder struct {
	opts Opts
	// stats/dsts are pass 0's merged neighbor sets and destination-host
	// addresses.
	stats map[netaddr.Addr]*ifaceStats
	dsts  map[netaddr.Addr]struct{}
	// pairCount counts every adjacent responsive pair. Unlike the old
	// single-pass extraction it is built before operators are known, so
	// it is unfiltered; Finish applies the operator/same-org filter.
	// Distinct pairs are bounded by the interface adjacency of the
	// topology, not by the trace count.
	pairCount map[[2]netaddr.Addr]int
}

// NewBuilder prepares an incremental MAP-IT run.
func NewBuilder(opts Opts) *Builder {
	opts.withDefaults()
	return &Builder{
		opts:      opts,
		stats:     make(map[netaddr.Addr]*ifaceStats),
		dsts:      make(map[netaddr.Addr]struct{}),
		pairCount: make(map[[2]netaddr.Addr]int),
	}
}

// Add folds one batch of traces into the builder. Safe to call many
// times; not safe for concurrent calls (it parallelizes internally over
// opts.Workers).
func (b *Builder) Add(traces []*traceroute.Trace) {
	reg := b.opts.Obs
	reg.Counter("mapit.traces").Add(uint64(len(traces)))
	// Degraded traces (fault-layer probe loss / rate limiting) are
	// excluded from every per-trace pass: their responsive hops can be
	// non-adjacent on the real path, and ingesting them would seed the
	// neighbor sets — and the link extraction — with false adjacencies.
	// Clean corpora carry no degraded traces, so the guard is free.
	skippedDegraded := reg.Counter("mapit.traces.skipped_degraded")
	for _, tr := range traces {
		if tr.Degraded {
			skippedDegraded.Inc()
		}
	}

	// Pass 0: neighbor sets, built in parallel over contiguous trace
	// chunks and merged by count addition — merge order cannot affect
	// the result. The destination hop of each trace is a host, not a
	// router interface; it contributes as a vote source for its
	// predecessor but gets no operator of its own. Adjacent pairs are
	// counted in the same sweep.
	chunks := traceChunks(len(traces), b.opts.Workers)
	partStats := make([]map[netaddr.Addr]*ifaceStats, len(chunks))
	partDsts := make([]map[netaddr.Addr]struct{}, len(chunks))
	partPairs := make([]map[[2]netaddr.Addr]int, len(chunks))
	var wg sync.WaitGroup
	for c, ch := range chunks {
		wg.Add(1)
		go func(c int, lo, hi int) {
			defer wg.Done()
			local := make(map[netaddr.Addr]*ifaceStats)
			get := func(a netaddr.Addr) *ifaceStats {
				s := local[a]
				if s == nil {
					s = &ifaceStats{prev: map[netaddr.Addr]int{}, next: map[netaddr.Addr]int{}}
					if origin, ok := b.opts.Prefix2AS(a); ok {
						s.origin, s.hasOrg = origin, true
					}
					s.isIXP = b.opts.IsIXP(a)
					local[a] = s
				}
				return s
			}
			dsts := map[netaddr.Addr]struct{}{}
			pairs := map[[2]netaddr.Addr]int{}
			for _, tr := range traces[lo:hi] {
				if tr.Degraded {
					continue
				}
				addrs := tr.ResponsiveAddrs()
				if tr.Reached && len(addrs) > 0 {
					dsts[addrs[len(addrs)-1]] = struct{}{}
				}
				end := len(addrs)
				if tr.Reached {
					end-- // final hop is the destination host
				}
				for i, a := range addrs {
					s := get(a)
					if i > 0 {
						s.prev[addrs[i-1]]++
					}
					if i+1 < len(addrs) {
						s.next[addrs[i+1]]++
					}
					if i >= 1 && i < end {
						pairs[[2]netaddr.Addr{addrs[i-1], a}]++
					}
				}
			}
			partStats[c], partDsts[c], partPairs[c] = local, dsts, pairs
		}(c, ch[0], ch[1])
	}
	wg.Wait()
	for c := 0; c < len(chunks); c++ {
		for a, s := range partStats[c] {
			dst := b.stats[a]
			if dst == nil {
				b.stats[a] = s
				continue
			}
			for n, k := range s.prev {
				dst.prev[n] += k
			}
			for n, k := range s.next {
				dst.next[n] += k
			}
		}
		for a := range partDsts[c] {
			b.dsts[a] = struct{}{}
		}
		for k, n := range partPairs[c] {
			b.pairCount[k] += n
		}
	}
}

// Run executes MAP-IT over the trace corpus.
func Run(traces []*traceroute.Trace, opts Opts) *Inference {
	b := NewBuilder(opts)
	b.Add(traces)
	return b.Finish()
}

// Finish runs the vote passes, the far-side correction, and the link
// extraction over everything added so far, and returns the Inference.
// The builder should not be used after Finish.
func (b *Builder) Finish() *Inference {
	opts := b.opts
	reg := opts.Obs
	ties := reg.Counter("mapit.majority.ties")
	stats, dsts := b.stats, b.dsts

	// originVote holds pure prefix-origin labels; voteOp additionally
	// accumulates IXP/unknown addresses resolved in earlier passes
	// (needed to chain through exchange LANs). Crucially, far-side
	// REASSIGNMENTS enter neither map, and the far-side pass votes over
	// originVote only: inferred labels cascading into votes would let
	// the relabeled far side of one link (or a resolved IXP port)
	// out-vote the genuine near-side interfaces of every other link on
	// a shared border router. This mirrors MAP-IT's half-link
	// constraints.
	originVote := make(map[netaddr.Addr]topology.ASN, len(stats))
	for a, s := range stats {
		if s.hasOrg && !s.isIXP {
			originVote[a] = s.origin
		}
	}
	voteOp := make(map[netaddr.Addr]topology.ASN, len(originVote))
	for a, v := range originVote {
		voteOp[a] = v
	}

	// Deterministic iteration order.
	addrs := make([]netaddr.Addr, 0, len(stats))
	for a := range stats {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	// Passes 1..n-1: resolve IXP ports and unknown-origin addresses by
	// successor majority (the replying router belongs to the member the
	// probe enters next). Multiple passes handle chains.
	for pass := 0; pass < opts.Passes; pass++ {
		changed := 0
		for _, a := range addrs {
			s := stats[a]
			if !s.isIXP && s.hasOrg {
				continue
			}
			succAS, succFrac := majority(s.next, voteOp, opts.SameOrg, dsts, ties)
			if succAS == 0 || succFrac < opts.Threshold {
				continue
			}
			if cur, ok := voteOp[a]; !ok || !opts.SameOrg(cur, succAS) {
				voteOp[a] = succAS
				changed++
			}
		}
		reg.Counter("mapit.vote.resolved").Add(uint64(changed))
		if changed == 0 {
			break
		}
	}

	// Final pass: far-side detection. An interface numbered from A
	// whose predecessors are A but whose successors are B is B's
	// ingress on an A–B point-to-point link; it is operated by B. The
	// signature is ambiguous in one corner: when an A–B link is
	// numbered from B's space, A's border-ingress interface shows the
	// same (preds=own, succs=foreign) pattern and gets flipped wrongly
	// if B dominates its observed successors. One-directional
	// traceroute corpora cannot break that tie (the /30 mate never
	// appears); this is part of why MAP-IT reports >90% rather than
	// 100% accuracy, and why §4.3 warns the algorithm "could fail or
	// produce an incorrect inference".
	op := make(map[netaddr.Addr]topology.ASN, len(voteOp))
	for a, v := range voteOp {
		op[a] = v
	}
	for _, a := range addrs {
		if opts.DisableFarSide {
			break
		}
		s := stats[a]
		cur, hasCur := originVote[a]
		if !hasCur || s.isIXP {
			continue
		}
		succAS, succFrac := majority(s.next, originVote, opts.SameOrg, dsts, ties)
		// Unanimity required: a genuine far side forwards into exactly
		// one foreign network. A mere majority would let the busiest
		// neighbor of a shared border router capture the router's
		// uplink interface, injecting a phantom third organization into
		// every other neighbor's paths.
		if succAS == 0 || opts.SameOrg(cur, succAS) || succFrac < 0.999 {
			continue
		}
		predAS, predFrac := majority(s.prev, originVote, opts.SameOrg, dsts, ties)
		if len(s.prev) == 0 {
			continue
		}
		if predAS != 0 && opts.SameOrg(predAS, cur) && predFrac >= opts.Threshold {
			op[a] = succAS
			reg.Counter("mapit.farside.flips").Inc()
		}
	}

	inf := &Inference{Operator: op, opts: opts}

	// Link extraction: adjacent responsive pairs whose operators belong
	// to different organizations. The pair counts were accumulated
	// during Add; the operator filter applies here, once op is final.
	for k, n := range b.pairCount {
		asA, okA := op[k[0]]
		asB, okB := op[k[1]]
		if !okA || !okB || opts.SameOrg(asA, asB) {
			continue
		}
		inf.Links = append(inf.Links, Link{
			Near: k[0], Far: k[1], NearAS: asA, FarAS: asB, Traces: n,
		})
	}
	sort.Slice(inf.Links, func(i, j int) bool {
		if inf.Links[i].Traces != inf.Links[j].Traces {
			return inf.Links[i].Traces > inf.Links[j].Traces
		}
		if inf.Links[i].Near != inf.Links[j].Near {
			return inf.Links[i].Near < inf.Links[j].Near
		}
		return inf.Links[i].Far < inf.Links[j].Far
	})
	reg.Counter("mapit.links.classified").Add(uint64(len(inf.Links)))
	reg.Counter("mapit.operators.labeled").Add(uint64(len(op)))
	return inf
}

// majority tallies operator votes over a neighbor SET (one vote per
// distinct neighbor interface, not per trace — MAP-IT reasons over the
// interface graph, and volume weighting would let one busy link
// out-vote the rest of a shared border router's neighbors), collapsing
// siblings onto the smallest ASN of the organization so the outcome
// never depends on map iteration order (the previous "first key seen
// wins" collapse made tie-breaks, and hence the whole inference,
// nondeterministic across runs). Destination-host neighbors are
// excluded (they are not router interfaces). It returns the winning
// ASN and its vote fraction (0 when no votes). A tie between distinct
// organizations for the top vote count — resolved by the smallest-ASN
// rule — is recorded on the ties counter (nil-safe), since ties are
// exactly where the deterministic tie-break is load-bearing.
func majority(neigh map[netaddr.Addr]int, op map[netaddr.Addr]topology.ASN,
	sameOrg func(a, b topology.ASN) bool, dsts map[netaddr.Addr]struct{},
	ties *obs.Counter) (topology.ASN, float64) {

	perAS := map[topology.ASN]int{}
	total := 0
	for a := range neigh {
		if _, isDst := dsts[a]; isDst {
			continue
		}
		asn, ok := op[a]
		if !ok {
			continue
		}
		perAS[asn]++
		total++
	}
	if total == 0 {
		return 0, 0
	}
	asns := make([]topology.ASN, 0, len(perAS))
	for asn := range perAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	votes := map[topology.ASN]int{}
	for _, asn := range asns {
		rep := asn
		for _, other := range asns {
			if other >= asn {
				break
			}
			if sameOrg(other, asn) {
				rep = other
				break
			}
		}
		votes[rep] += perAS[asn]
	}
	var best topology.ASN
	bestN := -1
	for asn, n := range votes {
		if n > bestN || (n == bestN && asn < best) {
			best, bestN = asn, n
		}
	}
	if ties != nil {
		atTop := 0
		for _, n := range votes {
			if n == bestN {
				atTop++
			}
		}
		if atTop > 1 {
			ties.Inc()
		}
	}
	return best, float64(bestN) / float64(total)
}

// ASPathOf maps a trace to the organization-collapsed AS-level path of
// its responsive router hops (unknown hops are skipped; consecutive
// same-org hops collapse). The destination's origin AS is appended
// when the trace reached it, since the client itself proves the final
// AS (§4.2's analysis counts AS hops between server and client).
// Degraded traces yield nil: hops lost to the fault layer would make
// the collapsed path skip organizations that were really crossed.
func (inf *Inference) ASPathOf(tr *traceroute.Trace) []topology.ASN {
	if tr.Degraded {
		return nil
	}
	var out []topology.ASN
	addrs := tr.ResponsiveAddrs()
	end := len(addrs)
	if tr.Reached {
		end--
	}
	push := func(asn topology.ASN) {
		if len(out) > 0 && inf.opts.SameOrg(out[len(out)-1], asn) {
			return
		}
		out = append(out, asn)
	}
	for _, a := range addrs[:end] {
		if asn, ok := inf.Operator[a]; ok {
			push(asn)
		}
	}
	if tr.Reached {
		if asn, ok := inf.opts.Prefix2AS(tr.DstAddr); ok {
			push(asn)
		}
	}
	return out
}

// LinksOf returns the inferred interdomain links a single trace
// crossed, in path order. Degraded traces yield nil — adjacency in a
// maimed trace does not imply adjacency on the path.
func (inf *Inference) LinksOf(tr *traceroute.Trace) []Link {
	if tr.Degraded {
		return nil
	}
	var out []Link
	addrs := tr.ResponsiveAddrs()
	end := len(addrs)
	if tr.Reached {
		end--
	}
	for i := 1; i < end; i++ {
		a, b := addrs[i-1], addrs[i]
		asA, okA := inf.Operator[a]
		asB, okB := inf.Operator[b]
		if !okA || !okB || inf.opts.SameOrg(asA, asB) {
			continue
		}
		out = append(out, Link{Near: a, Far: b, NearAS: asA, FarAS: asB})
	}
	return out
}
