package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"throughputlab/internal/obs"
)

// TestReorderOutOfOrderSingleProducer feeds sequences within the
// window in scrambled order and checks release order.
func TestReorderOutOfOrderSingleProducer(t *testing.T) {
	r := NewReorder[int](4)
	for _, seq := range []int{3, 1, 2, 0} {
		if !r.Put(seq, seq*10) {
			t.Fatalf("Put(%d) refused", seq)
		}
	}
	r.Close()
	for want := 0; want < 4; want++ {
		v, ok := r.Next()
		if !ok || v != want*10 {
			t.Fatalf("Next = %d,%v at position %d, want %d", v, ok, want, want*10)
		}
	}
}

// TestReorderOutOfOrder is the reorder buffer's core contract under
// the production shape: workers claim dense increasing sequence
// numbers from a shared counter (exactly how chunk producers claim
// chunk indices) but complete them in scheduler-dependent order; the
// consumer must still observe exact sequence order.
func TestReorderOutOfOrder(t *testing.T) {
	const n = 500
	const workers = 4
	r := NewReorder[int](workers) // window == workers: progress guaranteed
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				seq := int(next.Add(1)) - 1
				if seq >= n {
					return
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
				if !r.Put(seq, seq*10) {
					t.Errorf("Put(%d) reported dead buffer", seq)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); r.Close(); close(done) }()
	for want := 0; want < n; want++ {
		v, ok := r.Next()
		if !ok {
			t.Fatalf("Next reported done at %d, want %d items", want, n)
		}
		if v != want*10 {
			t.Fatalf("Next returned %d at position %d, want %d", v, want, want*10)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("Next after close returned an item")
	}
	<-done
}

// TestReorderWindowBound pins the backpressure bound: a Put window or
// more ahead of the cursor must block until the consumer advances.
func TestReorderWindowBound(t *testing.T) {
	r := NewReorder[string](2)
	if !r.Put(0, "a") || !r.Put(1, "b") {
		t.Fatal("in-window puts refused")
	}
	var unblocked atomic.Bool
	go func() {
		r.Put(2, "c") // seq 2 >= next(0)+window(2): must block
		unblocked.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if unblocked.Load() {
		t.Fatal("Put beyond the window did not block")
	}
	if v, ok := r.Next(); !ok || v != "a" {
		t.Fatalf("Next = %q,%v want a", v, ok)
	}
	for i := 0; i < 200 && !unblocked.Load(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !unblocked.Load() {
		t.Fatal("Put did not unblock after the cursor advanced")
	}
	r.Close()
	if v, ok := r.Next(); !ok || v != "b" {
		t.Fatalf("Next = %q,%v want b", v, ok)
	}
}

// TestReorderFail aborts blocked producers and the consumer.
func TestReorderFail(t *testing.T) {
	r := NewReorder[int](1)
	boom := errors.New("boom")
	if !r.Put(0, 0) {
		t.Fatal("first put refused")
	}
	var putDead atomic.Bool
	go func() {
		if !r.Put(1, 1) { // blocked: out of window
			putDead.Store(true)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	r.Fail(boom)
	for i := 0; i < 200 && !putDead.Load(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !putDead.Load() {
		t.Fatal("blocked Put not released by Fail")
	}
	if err := r.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want boom", err)
	}
	// The failed buffer still drains what reached it before the failure.
	if v, ok := r.Next(); !ok || v != 0 {
		t.Fatalf("Next = %d,%v want buffered item", v, ok)
	}
	if _, ok := r.Next(); ok {
		t.Error("Next returned an item after drain on a failed buffer")
	}
}

// TestPipelineBroadcastOrder checks every stage sees the identical
// stream in identical order, concurrently.
func TestPipelineBroadcastOrder(t *testing.T) {
	const n = 300
	var got [3][]int
	var stages []Stage[int]
	for s := 0; s < 3; s++ {
		s := s
		stages = append(stages, Stage[int]{
			Name: fmt.Sprintf("s%d", s),
			Fn: func(v int) error {
				got[s] = append(got[s], v)
				return nil
			},
		})
	}
	p := NewPipeline("test", 4, nil, stages...)
	for i := 0; i < n; i++ {
		if err := p.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for s := range got {
		if len(got[s]) != n {
			t.Fatalf("stage %d saw %d items, want %d", s, len(got[s]), n)
		}
		for i, v := range got[s] {
			if v != i {
				t.Fatalf("stage %d item %d = %d (out of order)", s, i, v)
			}
		}
	}
}

// TestPipelineStageError propagates the first stage failure to Send
// and Close without wedging the other stages.
func TestPipelineStageError(t *testing.T) {
	boom := errors.New("stage down")
	var other atomic.Int64
	p := NewPipeline("test", 1, nil,
		Stage[int]{Name: "bad", Fn: func(v int) error {
			if v == 3 {
				return boom
			}
			return nil
		}},
		Stage[int]{Name: "good", Fn: func(int) error { other.Add(1); return nil }},
	)
	var sendErr error
	for i := 0; i < 100; i++ {
		if sendErr = p.Send(i); sendErr != nil {
			break
		}
	}
	closeErr := p.Close()
	if sendErr == nil && closeErr == nil {
		t.Fatal("stage error never surfaced")
	}
	for _, err := range []error{sendErr, closeErr} {
		if err != nil && !errors.Is(err, boom) {
			t.Fatalf("unexpected error %v", err)
		}
	}
}

// TestPipelineObs checks the stage telemetry: spans under the pipeline
// span, item counters, and depth gauges.
func TestPipelineObs(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPipeline("pass", 2, reg,
		Stage[int]{Name: "match", Fn: func(int) error { return nil }},
		Stage[int]{Name: "export", Fn: func(int) error { return nil }},
	)
	for i := 0; i < 10; i++ {
		if err := p.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, st := range []string{"match", "export"} {
		if got := reg.Counter("pipeline.pass." + st + ".items").Value(); got != 10 {
			t.Errorf("stage %s items = %d, want 10", st, got)
		}
	}
	d := reg.Snapshot()
	var root *obs.SpanDump
	for i := range d.Spans {
		if d.Spans[i].Name == "pipeline.pass" {
			root = &d.Spans[i]
		}
	}
	if root == nil {
		t.Fatalf("missing pipeline.pass span: %+v", d.Spans)
	}
	names := map[string]bool{}
	for _, c := range root.Children {
		names[c.Name] = true
	}
	if !names["match"] || !names["export"] {
		t.Errorf("pipeline span children = %v, want match+export", names)
	}
}
