// Package faults is the pipeline's deterministic fault-injection
// layer. The paper's central theme is inference under an imperfect
// measurement plane — tests that never complete, traceroutes that lose
// probes to rate limiters, corpus rows that arrive mangled — and this
// package gives the simulator a controllable model of exactly those
// failures so the collection and analysis layers can be exercised (and
// benchmarked) under degradation instead of assuming perfection.
//
// Design rules, in order:
//
//   - Off is byte-invisible. A nil *Injector is the canonical disabled
//     injector: every method on it is a no-op that makes NO random
//     draws and perturbs NO state, so a campaign with faults disabled
//     is bit-for-bit the campaign before this layer existed (pinned by
//     the platform golden tests).
//   - Deterministic at any worker count. Every draw comes from a
//     SplitMix64 stream derived from (seed, fault kind, entity) —
//     never from a shared generator — so whichever goroutine asks, the
//     answer is the same, and a campaign under a fixed fault profile is
//     byte-identical at workers 1, 2, or 8.
//   - Observable. Each fault kind owns injected/retried/recovered/
//     abandoned counters (faults.<kind>.<outcome>) on the campaign's
//     obs registry, so a run can always account for what the fault
//     plane did to it.
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"

	"throughputlab/internal/obs"
	"throughputlab/internal/traceroute"
)

// Kind enumerates the modeled measurement-plane failures.
type Kind int

const (
	// ServerOutage is a per-(metro, day) window during which a metro's
	// M-Lab servers refuse tests (maintenance, power, uplink loss).
	ServerOutage Kind = iota
	// TestAbort is an NDT test attempt that dies before producing a
	// record (client gave up, server reset the control connection).
	TestAbort
	// TestTruncation is a test cut off mid-transfer: a record exists
	// but its web100 snapshot covers only the delivered prefix.
	TestTruncation
	// TraceProbeLoss is per-probe traceroute loss beyond the static
	// artifact rates: individual hops time out.
	TraceProbeLoss
	// TraceRateLimit is an ICMP rate limiter suppressing a run of
	// consecutive hop replies.
	TraceRateLimit
	// RowCorruption is a corpus row mangled between collection and
	// publication; the row is dropped.
	RowCorruption
	// ShardFailure is a transient collector-shard failure: the shard's
	// scheduling work is lost and redone.
	ShardFailure

	numKinds
	// retryStream keys the backoff-jitter draws; it is not a fault
	// kind and owns no counters.
	retryStream
)

var kindNames = [numKinds]string{
	"server_outage", "test_abort", "test_truncation",
	"trace_probe_loss", "trace_rate_limit", "row_corruption",
	"shard_failure",
}

// String returns the counter-name token of the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns all fault kinds in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Profile is one named set of fault rates plus the retry policy the
// collection layer applies against them. The zero Profile is fully
// disabled.
type Profile struct {
	Name string
	// OutageProb is the per-(metro, day) probability that an outage
	// window of OutageMinutes opens somewhere in that day.
	OutageProb    float64
	OutageMinutes int
	// AbortProb is the per-attempt probability an NDT test dies.
	AbortProb float64
	// TruncateProb is the probability a completed test was cut off
	// mid-transfer (partial web100 snapshot).
	TruncateProb float64
	// ProbeLossProb is the extra per-hop traceroute loss rate.
	ProbeLossProb float64
	// RateLimitProb is the per-trace probability an ICMP rate limiter
	// blanks a run of consecutive hops.
	RateLimitProb float64
	// RowCorruptProb is the probability a published test row is
	// corrupted and must be dropped.
	RowCorruptProb float64
	// ShardFailProb is the per-attempt probability a collector shard
	// fails transiently and redoes its scheduling work.
	ShardFailProb float64

	// MaxRetries bounds retry attempts beyond the first try for
	// launch-blocking faults (aborts, outages) and shard failures.
	MaxRetries int
	// BackoffBaseMin is the first retry delay in simulated minutes; it
	// doubles per attempt, with deterministic jitter in [d, 2d).
	BackoffBaseMin int
	// DeadlineMin is the per-test deadline: a retry that would land
	// more than DeadlineMin simulated minutes after the original
	// schedule abandons the test instead.
	DeadlineMin int
}

// Enabled reports whether any fault rate is nonzero.
func (p Profile) Enabled() bool {
	return p.OutageProb > 0 || p.AbortProb > 0 || p.TruncateProb > 0 ||
		p.ProbeLossProb > 0 || p.RateLimitProb > 0 || p.RowCorruptProb > 0 ||
		p.ShardFailProb > 0
}

// Off returns the disabled profile.
func Off() Profile { return Profile{Name: "off"} }

// Light returns occasional, mostly recoverable failures — a healthy
// production platform on a bad week.
func Light() Profile {
	return Profile{
		Name:       "light",
		OutageProb: 0.01, OutageMinutes: 60,
		AbortProb: 0.01, TruncateProb: 0.01,
		ProbeLossProb: 0.01, RateLimitProb: 0.02,
		RowCorruptProb: 0.002, ShardFailProb: 0.05,
		MaxRetries: 2, BackoffBaseMin: 2, DeadlineMin: 30,
	}
}

// Moderate returns sustained background failure — the regime the
// paper's M-Lab case study actually lived in (lost traceroutes,
// unresponsive hops, flaky servers).
func Moderate() Profile {
	return Profile{
		Name:       "moderate",
		OutageProb: 0.05, OutageMinutes: 120,
		AbortProb: 0.03, TruncateProb: 0.03,
		ProbeLossProb: 0.02, RateLimitProb: 0.05,
		RowCorruptProb: 0.01, ShardFailProb: 0.15,
		MaxRetries: 3, BackoffBaseMin: 2, DeadlineMin: 45,
	}
}

// Heavy returns an aggressively broken measurement plane, for
// robustness tests and race sweeps.
func Heavy() Profile {
	return Profile{
		Name:       "heavy",
		OutageProb: 0.15, OutageMinutes: 180,
		AbortProb: 0.08, TruncateProb: 0.08,
		ProbeLossProb: 0.05, RateLimitProb: 0.10,
		RowCorruptProb: 0.03, ShardFailProb: 0.35,
		MaxRetries: 3, BackoffBaseMin: 2, DeadlineMin: 45,
	}
}

// ByName resolves a named profile ("" and "off" are the disabled
// profile).
func ByName(name string) (Profile, error) {
	switch name {
	case "", "off":
		return Off(), nil
	case "light":
		return Light(), nil
	case "moderate":
		return Moderate(), nil
	case "heavy":
		return Heavy(), nil
	}
	return Profile{}, fmt.Errorf("unknown fault profile %q (valid: %v)", name, Names())
}

// Names lists the named profiles, sorted.
func Names() []string {
	out := []string{"off", "light", "moderate", "heavy"}
	sort.Strings(out)
	return out
}

// FaultSet is a bitmask of fault kinds, used to attribute one test
// attempt's failure to the kinds that caused it.
type FaultSet uint8

// Has reports whether the set contains k.
func (fs FaultSet) Has(k Kind) bool { return fs&(1<<uint(k)) != 0 }

func (fs FaultSet) with(k Kind) FaultSet { return fs | 1<<uint(k) }

// Injector draws fault decisions for one campaign. A nil Injector is
// the disabled fault plane: every method is a draw-free no-op. Build
// one with NewInjector; all methods are safe for concurrent use (the
// per-decision streams are derived locally, counters are atomic).
type Injector struct {
	seed uint64
	prof Profile
	c    [numKinds]kindCounters
	bus  *obs.Bus // progress events (nil when no bus is attached)
}

type kindCounters struct {
	injected, retried, recovered, abandoned *obs.Counter
}

// NewInjector builds the campaign's injector, registering per-kind
// counters on reg (a nil registry yields no-op counters). A disabled
// profile returns nil — the canonical off switch.
func NewInjector(seed int64, p Profile, reg *obs.Registry) *Injector {
	if !p.Enabled() {
		return nil
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffBaseMin < 1 {
		p.BackoffBaseMin = 1
	}
	in := &Injector{seed: uint64(seed), prof: p, bus: reg.Events()}
	for k := Kind(0); k < numKinds; k++ {
		base := "faults." + k.String() + "."
		in.c[k] = kindCounters{
			injected:  reg.Counter(base + "injected"),
			retried:   reg.Counter(base + "retried"),
			recovered: reg.Counter(base + "recovered"),
			abandoned: reg.Counter(base + "abandoned"),
		}
	}
	return in
}

// Enabled reports whether the fault plane is live.
func (in *Injector) Enabled() bool { return in != nil }

// Profile returns the injector's profile (the zero Profile when nil).
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.prof
}

// MaxRetries returns the retry bound (0 when nil).
func (in *Injector) MaxRetries() int {
	if in == nil {
		return 0
	}
	return in.prof.MaxRetries
}

// DeadlineMin returns the per-test retry deadline (0 when nil).
func (in *Injector) DeadlineMin() int {
	if in == nil {
		return 0
	}
	return in.prof.DeadlineMin
}

// splitmix is a SplitMix64 generator (one uint64 of state, no
// allocation) — the same decorrelation construction the platform's
// shardSeed and the DNS namer use.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (s *splitmix) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// stream derives the decision stream for (seed, kind, entity). The
// kind and entity each advance the state by a different odd constant,
// so streams for different kinds or entities never coincide and the
// identical stream is rebuilt wherever the decision is asked for.
func (in *Injector) stream(kind Kind, entity uint64) splitmix {
	s := in.seed
	s += (uint64(kind) + 1) * 0xBF58476D1CE4E5B9
	s += (entity + 1) * 0x9E3779B97F4A7C15
	return splitmix{state: s}
}

// hashString folds a string into a stream entity key.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// OutageAt reports whether the metro's servers sit inside an outage
// window at the given simulated minute. Windows are drawn per
// (metro, day): one draw decides whether that day has an outage, a
// second places the window inside the day. A hit counts as one
// injected server_outage fault (the caller asks once per attempt).
func (in *Injector) OutageAt(metro string, minute int) bool {
	if in == nil || in.prof.OutageProb <= 0 {
		return false
	}
	day := minute / 1440
	if day < 0 {
		day = 0
	}
	s := in.stream(ServerOutage, hashString(metro)+uint64(day)*0x9E3779B97F4A7C15)
	if s.Float64() >= in.prof.OutageProb {
		return false
	}
	span := in.prof.OutageMinutes
	if span < 1 {
		span = 1
	}
	if span > 1439 {
		span = 1439
	}
	start := day*1440 + int(s.next()%uint64(1440-span))
	if minute < start || minute >= start+span {
		return false
	}
	in.c[ServerOutage].injected.Inc()
	return true
}

// TestAttempt evaluates the launch-blocking faults for one test
// attempt: a server outage at the attempt's minute and a probabilistic
// abort. The returned set is empty when the attempt goes through;
// injected counters are bumped per fault hit.
func (in *Injector) TestAttempt(metro string, entity uint64, minute, attempt int) FaultSet {
	if in == nil {
		return 0
	}
	var fs FaultSet
	if in.OutageAt(metro, minute) {
		fs = fs.with(ServerOutage)
	}
	if in.prof.AbortProb > 0 {
		s := in.stream(TestAbort, entity+uint64(attempt)*0x9E3779B97F4A7C15)
		if s.Float64() < in.prof.AbortProb {
			in.c[TestAbort].injected.Inc()
			fs = fs.with(TestAbort)
		}
	}
	return fs
}

// RetryDelayMin returns the simulated-clock backoff before retry
// `attempt` (1-based): BackoffBaseMin doubling per attempt, with a
// deterministic jitter draw in [d, 2d) so synchronized failures do not
// retry in lockstep.
func (in *Injector) RetryDelayMin(entity uint64, attempt int) int {
	if in == nil {
		return 0
	}
	d := in.prof.BackoffBaseMin << uint(attempt-1)
	if d > 1440 {
		d = 1440
	}
	s := in.stream(retryStream, entity+uint64(attempt)*0xBF58476D1CE4E5B9)
	return d + int(s.next()%uint64(d))
}

// Retried records one retry caused by the faults in fs.
func (in *Injector) Retried(fs FaultSet) {
	in.count(fs, "fault.retry", func(c kindCounters) *obs.Counter { return c.retried })
}

// Recovered records that an entity eventually succeeded after having
// been failed by the faults in fs.
func (in *Injector) Recovered(fs FaultSet) {
	in.count(fs, "fault.recovered", func(c kindCounters) *obs.Counter { return c.recovered })
}

// Abandoned records that an entity was permanently lost to the faults
// in fs.
func (in *Injector) Abandoned(fs FaultSet) {
	in.count(fs, "fault.abandoned", func(c kindCounters) *obs.Counter { return c.abandoned })
}

func (in *Injector) count(fs FaultSet, event string, pick func(kindCounters) *obs.Counter) {
	if in == nil || fs == 0 {
		return
	}
	for k := Kind(0); k < numKinds; k++ {
		if fs.Has(k) {
			pick(in.c[k]).Inc()
			in.bus.Publish(event, k.String(), -1, 1)
		}
	}
}

// ShardAttempts returns how many times the given collector shard runs
// its scheduling work before it sticks: 1 plus the transient failures
// drawn for it (bounded by MaxRetries — shard failures are transient
// by definition, so the final attempt always succeeds). Counters:
// every failed attempt is injected+retried, and a shard that failed at
// least once counts one recovery.
func (in *Injector) ShardAttempts(shard int) int {
	if in == nil || in.prof.ShardFailProb <= 0 {
		return 1
	}
	attempts := 1
	for a := 0; a < in.prof.MaxRetries; a++ {
		s := in.stream(ShardFailure, uint64(shard)*0x9E3779B97F4A7C15+uint64(a))
		if s.Float64() >= in.prof.ShardFailProb {
			break
		}
		in.c[ShardFailure].injected.Inc()
		in.c[ShardFailure].retried.Inc()
		attempts++
	}
	if attempts > 1 {
		in.c[ShardFailure].recovered.Inc()
	}
	return attempts
}

// TruncatesTest reports whether the entity's test was cut off
// mid-transfer and, if so, the fraction of the transfer that completed
// (in [0.2, 0.8)).
func (in *Injector) TruncatesTest(entity uint64) (float64, bool) {
	if in == nil || in.prof.TruncateProb <= 0 {
		return 0, false
	}
	s := in.stream(TestTruncation, entity)
	if s.Float64() >= in.prof.TruncateProb {
		return 0, false
	}
	in.c[TestTruncation].injected.Inc()
	return 0.2 + 0.6*s.Float64(), true
}

// CorruptsRow reports whether the entity's published test row was
// corrupted and must be dropped (injected and abandoned: there is no
// retrying a mangled row).
func (in *Injector) CorruptsRow(entity uint64) bool {
	if in == nil || in.prof.RowCorruptProb <= 0 {
		return false
	}
	s := in.stream(RowCorruption, entity)
	if s.Float64() >= in.prof.RowCorruptProb {
		return false
	}
	in.c[RowCorruption].injected.Inc()
	in.c[RowCorruption].abandoned.Inc()
	return true
}

// PerturbTrace applies the traceroute-plane faults to a completed
// trace: independent per-probe loss and an ICMP rate-limit run
// suppressing consecutive hops. A trace that lost any reply is marked
// Degraded — lost hops make adjacent responsive hops look like
// neighbors, exactly the false-adjacency skew the inference layers
// must not ingest — and re-normalized so a destination hop lost here
// cannot remain counted as reached.
func (in *Injector) PerturbTrace(entity uint64, tr *traceroute.Trace) {
	if in == nil || tr == nil {
		return
	}
	lost := false
	if in.prof.ProbeLossProb > 0 {
		s := in.stream(TraceProbeLoss, entity)
		for i := range tr.Hops {
			if !tr.Hops[i].NoReply() && s.Float64() < in.prof.ProbeLossProb {
				tr.Hops[i] = traceroute.Hop{TTL: tr.Hops[i].TTL}
				in.c[TraceProbeLoss].injected.Inc()
				lost = true
			}
		}
	}
	if in.prof.RateLimitProb > 0 && len(tr.Hops) > 2 {
		s := in.stream(TraceRateLimit, entity)
		if s.Float64() < in.prof.RateLimitProb {
			start := 1 + int(s.next()%uint64(len(tr.Hops)-1))
			run := 2 + int(s.next()%3)
			hit := false
			for i := start; i < len(tr.Hops) && i < start+run; i++ {
				if !tr.Hops[i].NoReply() {
					tr.Hops[i] = traceroute.Hop{TTL: tr.Hops[i].TTL}
					hit = true
				}
			}
			if hit {
				in.c[TraceRateLimit].injected.Inc()
				lost = true
			}
		}
	}
	if lost {
		tr.Degraded = true
		tr.Normalize()
	}
}
