// Chunked append-only corpus format: one NDJSON line per record, so a
// campaign can persist while it collects and a report can replay it in
// bounded memory.
//
//	{"format":"tputlab-corpus/1", "public":{...}, "meta":{...}}   header
//	{"chunk":0, "watermark":…, "tests":[…], "traces":[…], …}      chunk ×N
//	{"footer":true, "chunks":N, "tests":…, …}                      footer
//
// The header carries everything inference needs before any record
// (public lookups, campaign metadata); chunks arrive in collection
// order with their scheduling watermark, so core.StreamMatcher can
// consume them directly; the footer totals double as a truncation
// check — a crash mid-campaign leaves a file Read refuses.
package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/traceroute"
)

// StreamFormat names the chunked corpus format version.
const StreamFormat = "tputlab-corpus/1"

// streamMagic is the byte prefix every stream file starts with; Read
// uses it to tell the two formats apart. streamHeader keeps Format
// first so Marshal emits exactly this prefix.
const streamMagic = `{"format":"` + StreamFormat + `"`

// StreamMeta describes the campaign a stream holds.
type StreamMeta struct {
	// Scale is the profile name the campaign ran under (e.g. "large").
	Scale string `json:"scale,omitempty"`
	// Seed is the campaign seed.
	Seed int64 `json:"seed"`
	// Tests is the scheduled test count.
	Tests int `json:"tests"`
}

type streamHeader struct {
	Format string     `json:"format"`
	Public Public     `json:"public"`
	Meta   StreamMeta `json:"meta"`
}

// StreamChunk is one persisted collection chunk.
type StreamChunk struct {
	Chunk             int                   `json:"chunk"`
	Watermark         int                   `json:"watermark"`
	Tests             []*ndt.Test           `json:"tests,omitempty"`
	Traces            []*traceroute.Trace   `json:"traces,omitempty"`
	TestsWithoutTrace int                   `json:"tests_without_trace,omitempty"`
	Completeness      platform.Completeness `json:"completeness,omitzero"`
}

// StreamFooter closes a stream with campaign totals.
type StreamFooter struct {
	Footer            bool                  `json:"footer"`
	Chunks            int                   `json:"chunks"`
	Tests             int                   `json:"tests"`
	Traces            int                   `json:"traces"`
	TestsWithoutTrace int                   `json:"tests_without_trace"`
	Completeness      platform.Completeness `json:"completeness,omitzero"`
}

// StreamWriter persists a campaign chunk by chunk. It buffers only the
// line being written, never the corpus.
type StreamWriter struct {
	bw     *bufio.Writer
	footer StreamFooter
	closed bool
	enc    *encodePipeline // non-nil only via NewStreamWriterWorkers
}

// NewStreamWriter writes the stream header and returns a writer ready
// for chunks. The public bundle is validated first — a conflicted
// bundle would poison every future replay of the file.
func NewStreamWriter(w io.Writer, public Public, meta StreamMeta) (*StreamWriter, error) {
	if err := public.Validate(); err != nil {
		return nil, err
	}
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 1<<20), footer: StreamFooter{Footer: true}}
	if err := sw.writeLine(streamHeader{Format: StreamFormat, Public: public, Meta: meta}); err != nil {
		return nil, err
	}
	return sw, nil
}

// writeLine encodes one record through a pooled buffer. Encoder.Encode
// emits exactly Marshal's bytes plus the trailing newline, so this and
// the worker path produce identical files.
func (sw *StreamWriter) writeLine(v any) error {
	buf := getLineBuf()
	defer putLineBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("export: encoding corpus stream: %w", err)
	}
	if _, err := sw.bw.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("export: writing corpus stream: %w", err)
	}
	return nil
}

// WriteChunk appends one collection chunk. It plugs directly into
// platform.CollectStream as the sink.
func (sw *StreamWriter) WriteChunk(c *platform.Chunk) error {
	line := StreamChunk{
		Chunk:             c.Index,
		Watermark:         c.Watermark,
		Tests:             c.Tests,
		Traces:            c.Traces,
		TestsWithoutTrace: c.TestsWithoutTrace,
		Completeness:      c.Completeness,
	}
	if sw.enc != nil {
		if err := sw.enc.firstErr(); err != nil {
			return err
		}
		sw.enc.in <- encJob{seq: sw.enc.next, line: line}
		sw.enc.next++
	} else if err := sw.writeLine(line); err != nil {
		return err
	}
	sw.footer.Chunks++
	sw.footer.Tests += len(c.Tests)
	sw.footer.Traces += len(c.Traces)
	sw.footer.TestsWithoutTrace += c.TestsWithoutTrace
	sw.footer.Completeness.Merge(c.Completeness)
	return nil
}

// Sync drains every chunk submitted so far out of the encode pipeline
// and through the bufio layer, so the underlying writer holds a prefix
// that ends exactly at a chunk boundary. It is the durability barrier
// the checkpoint layer fsyncs behind; the stream stays open for more
// chunks.
func (sw *StreamWriter) Sync() error {
	if sw.enc != nil {
		if err := sw.enc.drain(sw.enc.next); err != nil {
			return err
		}
	}
	if err := sw.bw.Flush(); err != nil {
		return fmt.Errorf("export: writing corpus stream: %w", err)
	}
	return nil
}

// ResumeStreamWriter reopens a stream writer over a file whose header
// and first chunks are already durable: w must be positioned at the
// end of that prefix and totals must be the running footer accumulated
// over it (as ReplayPrefix reports). The writer emits no header; the
// next WriteChunk appends the chunk after the prefix.
func ResumeStreamWriter(w io.Writer, totals StreamFooter, workers int) *StreamWriter {
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 1<<20), footer: totals}
	sw.footer.Footer = true
	if workers > 1 {
		sw.attachEncoders(workers)
	}
	return sw
}

// Close seals the stream with the footer. Without it the file reads as
// truncated — which is exactly right for a crashed campaign.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if sw.enc != nil {
		close(sw.enc.in)
		sw.enc.wg.Wait()
		sw.enc.ro.Close()
		<-sw.enc.done
		if err := sw.enc.firstErr(); err != nil {
			return err
		}
	}
	if err := sw.writeLine(sw.footer); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// Abandon shuts the writer down without sealing the stream: encode
// workers stop, but no footer is written, so the file stays readable
// only as a truncated (resumable) prefix. Used when a campaign is
// interrupted after a durable checkpoint — writing a footer there
// would make a partial corpus read as a complete smaller one.
func (sw *StreamWriter) Abandon() {
	if sw.closed {
		return
	}
	sw.closed = true
	if sw.enc != nil {
		close(sw.enc.in)
		sw.enc.wg.Wait()
		sw.enc.ro.Close()
		<-sw.enc.done
	}
}

// Footer exposes the running totals (complete once Close has run).
func (sw *StreamWriter) Footer() StreamFooter { return sw.footer }

// StreamReader replays a persisted corpus chunk by chunk, holding one
// chunk in memory at a time.
type StreamReader struct {
	br     *bufio.Reader
	header streamHeader
	footer *StreamFooter
	read   StreamFooter    // accumulated totals for the footer cross-check
	dp     *decodePipeline // non-nil only via OpenStreamWorkers
}

// OpenStream reads and validates the stream header. A columnar corpus
// fed to this NDJSON-only entry point is named as such instead of
// surfacing as a JSON syntax error.
func OpenStream(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{br: bufio.NewReaderSize(r, 1<<20)}
	if head, err := sr.br.Peek(len(columnarMagic)); err == nil && string(head) == columnarMagic {
		return nil, fmt.Errorf("export: corpus is a binary columnar corpus (%s), not an NDJSON stream: a columnar corpus requires the columnar reader — open it with OpenColumnar/OpenCorpus or -corpus-format columnar",
			ColumnarFormat)
	}
	line, err := sr.readLine()
	if err != nil {
		return nil, fmt.Errorf("export: corpus stream: missing header: %w", err)
	}
	if err := json.Unmarshal(line, &sr.header); err != nil {
		return nil, fmt.Errorf("export: corpus stream: invalid header: %w", err)
	}
	if sr.header.Format != StreamFormat {
		return nil, fmt.Errorf("export: corpus stream: unsupported format %q (want %q)",
			sr.header.Format, StreamFormat)
	}
	if err := sr.header.Public.Validate(); err != nil {
		return nil, err
	}
	return sr, nil
}

// readLine returns the next non-empty line without the newline.
func (sr *StreamReader) readLine() ([]byte, error) {
	for {
		line, err := sr.br.ReadBytes('\n')
		line = bytes.TrimRight(line, "\r\n")
		if len(line) > 0 {
			return line, nil
		}
		if err != nil {
			return nil, err // io.EOF or a real read failure
		}
	}
}

// Public returns the header's lookup bundle.
func (sr *StreamReader) Public() *Public { return &sr.header.Public }

// Meta returns the header's campaign metadata.
func (sr *StreamReader) Meta() StreamMeta { return sr.header.Meta }

// Next returns the next chunk, or io.EOF after the footer has been
// consumed and cross-checked. A stream that ends without a footer, a
// line that is not valid JSON, out-of-order chunk indices, and footer
// totals that contradict the chunks all surface as descriptive errors.
func (sr *StreamReader) Next() (*StreamChunk, error) {
	if sr.footer != nil {
		return nil, io.EOF
	}
	var d decoded
	if sr.dp != nil {
		var ok bool
		d, ok = sr.dp.ro.Next()
		if !ok {
			// The pipeline drained without producing this record: only
			// possible through Close (or a refused Put after it).
			if err := sr.dp.ro.Err(); err != nil {
				return nil, err
			}
			d = decoded{err: io.EOF, readFail: true}
		}
	} else {
		line, err := sr.readLine()
		d = decodeRecord(rawLine{seq: sr.read.Chunks, data: line, err: err})
	}
	return sr.consume(d)
}

// consume folds one classified record into the reader's running state:
// the in-order half of Next, shared by the serial and worker paths.
func (sr *StreamReader) consume(d decoded) (*StreamChunk, error) {
	switch {
	case d.readFail && d.err == io.EOF:
		return nil, fmt.Errorf("export: corpus stream truncated: no footer after %d chunks (%d tests)",
			sr.read.Chunks, sr.read.Tests)
	case d.readFail:
		return nil, fmt.Errorf("export: corpus stream: %w", d.err)
	case d.err != nil:
		return nil, d.err
	case d.footer != nil:
		f := *d.footer
		sr.read.Footer = true
		if f != sr.read {
			return nil, fmt.Errorf("export: corpus stream footer mismatch: footer says %d chunks / %d tests / %d traces, stream holds %d / %d / %d",
				f.Chunks, f.Tests, f.Traces, sr.read.Chunks, sr.read.Tests, sr.read.Traces)
		}
		sr.footer = d.footer
		return nil, io.EOF
	}
	c := d.chunk
	if c.Chunk != sr.read.Chunks {
		return nil, fmt.Errorf("export: corpus stream: chunk index %d where %d expected", c.Chunk, sr.read.Chunks)
	}
	sr.read.Chunks++
	sr.read.Tests += len(c.Tests)
	sr.read.Traces += len(c.Traces)
	sr.read.TestsWithoutTrace += c.TestsWithoutTrace
	sr.read.Completeness.Merge(c.Completeness)
	return c, nil
}

// Footer returns the stream totals; non-nil only after Next returned
// io.EOF.
func (sr *StreamReader) Footer() *StreamFooter { return sr.footer }

// ReadTotals snapshots the totals accumulated over the chunks consumed
// so far — the running footer a resumed writer continues from.
func (sr *StreamReader) ReadTotals() StreamFooter {
	t := sr.read
	t.Footer = true
	return t
}

// readStreamAll materializes a whole stream into a Dataset (the Read
// path for stream files).
func readStreamAll(r io.Reader) (*Dataset, error) {
	sr, err := OpenStream(r)
	if err != nil {
		return nil, err
	}
	return materializeCorpus(sr)
}
