package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v, want 8, 5", s.N, s.Mean)
	}
	// Sample stddev of this classic example is ~2.138.
	if math.Abs(s.Stddev-2.1380899) > 1e-6 {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize N = %d", z.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Stddev != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("single-element summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Out-of-range q clamps.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Error("q should clamp to [0,1]")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		q = math.Abs(math.Mod(q, 1))
		v := Quantile(xs, q)
		mn, mx := Quantile(xs, 0), Quantile(xs, 1)
		return v >= mn && v <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestQuantilesSorted(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	got := QuantilesSorted(sorted, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Errorf("QuantilesSorted = %v", got)
	}
}

func TestHourBins(t *testing.T) {
	var b HourBins
	b.Add(6.5, 10)
	b.Add(6.9, 20)
	b.Add(23.99, 5)
	b.Add(-1, 7)   // wraps to 23
	b.Add(24.5, 9) // wraps to 0

	if got := b.Bin(6); len(got) != 2 {
		t.Errorf("bin 6 has %d values", len(got))
	}
	if got := b.Bin(23); len(got) != 2 {
		t.Errorf("bin 23 has %d values, want 2 (one wrapped)", len(got))
	}
	if got := b.Bin(0); len(got) != 1 || got[0] != 9 {
		t.Errorf("bin 0 = %v", got)
	}
	if b.Total() != 5 {
		t.Errorf("Total = %d", b.Total())
	}
	c := b.Counts()
	if c[6] != 2 || c[23] != 2 || c[0] != 1 {
		t.Errorf("Counts = %v", c)
	}
	med := b.Medians()
	if med[6] != 15 {
		t.Errorf("median bin 6 = %v", med[6])
	}
	if !math.IsNaN(med[12]) {
		t.Error("empty bin median should be NaN")
	}
	means := b.Means()
	if means[6] != 15 {
		t.Errorf("mean bin 6 = %v", means[6])
	}
	sd := b.Stddevs()
	if math.Abs(sd[6]-math.Sqrt(50)) > 1e-9 {
		t.Errorf("stddev bin 6 = %v", sd[6])
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 50 + 5*rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, func(v []float64) float64 { return Summarize(v).Mean }, 0.95, 500, rng)
	if !(lo < 50 && 50 < hi) {
		t.Errorf("95%% CI [%v, %v] should contain true mean 50", lo, hi)
	}
	if hi-lo > 3 {
		t.Errorf("CI width %v too wide for n=200, sd=5", hi-lo)
	}
	lo, hi = BootstrapCI(nil, Median, 0.95, 100, rng)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty bootstrap should be NaN")
	}
}

func TestMannWhitneyUSeparatedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
		ys[i] = 20 + rng.NormFloat64()
	}
	_, p := MannWhitneyU(xs, ys)
	if p > 1e-6 {
		t.Errorf("clearly separated samples: p = %v, want tiny", p)
	}
}

func TestMannWhitneyUSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	reject := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		if _, p := MannWhitneyU(xs, ys); p < 0.05 {
			reject++
		}
	}
	// Expected false-positive rate ~5%; allow generous slack.
	if reject > trials/4 {
		t.Errorf("rejected %d/%d same-distribution pairs", reject, trials)
	}
}

func TestMannWhitneyUTinySamples(t *testing.T) {
	if _, p := MannWhitneyU([]float64{1, 2}, []float64{3}); p != 1 {
		t.Errorf("tiny-sample p = %v, want conservative 1", p)
	}
	if _, p := MannWhitneyU(nil, []float64{1}); p != 1 {
		t.Errorf("empty-sample p = %v, want 1", p)
	}
}

func TestMannWhitneyUHandlesTies(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 2, 2, 2}
	ys := []float64{1, 1, 2, 2, 2, 2, 2, 2}
	u, p := MannWhitneyU(xs, ys)
	if math.IsNaN(u) || math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("ties produced invalid result u=%v p=%v", u, p)
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(weights, rng)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight entries chosen: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[WeightedChoice([]float64{0, 0, 0}, rng)] = true
	}
	if len(seen) != 3 {
		t.Errorf("all-zero weights should fall back to uniform, saw %v", seen)
	}
}

func BenchmarkQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.5)
	}
}

func BenchmarkMannWhitneyU(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MannWhitneyU(xs, ys)
	}
}
