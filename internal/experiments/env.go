// Package experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// experiment consumes the shared Env — a generated world plus a
// collected NDT/traceroute corpus — and returns a typed result whose
// Render method prints the same rows or series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"

	"throughputlab/internal/core"
	"throughputlab/internal/mapit"
	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

// Options parameterizes an experiment environment.
type Options struct {
	Topo    topogen.Config
	Collect platform.CollectConfig
	// Workers bounds engine parallelism for corpus collection and
	// MAP-IT inference (0 or 1 = serial). Results are identical for
	// every worker count — see the determinism contract in DESIGN.md.
	Workers int
	// Obs, when non-nil, instruments the whole pipeline: NewEnv threads
	// it through world generation, corpus collection, and the shared
	// inference stages, and RunParallel records per-experiment spans on
	// it. Experiment output is byte-identical with and without it.
	Obs *obs.Registry
	// CorpusSink, when non-nil, receives the generated world before
	// collection begins and returns a per-chunk sink; collection then
	// streams every chunk through it (e.g. an export.StreamWriter
	// persisting the corpus as it is gathered). The materialized corpus
	// is byte-identical with or without a sink.
	CorpusSink func(*topogen.World) (func(*platform.Chunk) error, error)
}

// workers returns the effective worker count (at least 1).
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// DefaultOptions is the full-scale configuration used by cmd/tputlab.
func DefaultOptions() Options {
	return Options{Topo: topogen.DefaultConfig(), Collect: platform.DefaultCollect()}
}

// QuickOptions is a reduced configuration for tests and examples.
func QuickOptions() Options {
	cfg := platform.DefaultCollect()
	cfg.Tests = 8000
	cfg.PerPoolClients = 10
	return Options{Topo: topogen.SmallConfig(), Collect: cfg}
}

// Env is the shared state for all experiments.
type Env struct {
	Opts   Options
	World  *topogen.World
	Corpus *platform.Corpus
	// Inference is MAP-IT over the corpus traceroutes.
	Inference *mapit.Inference
	// Matching associates tests with traceroutes (10-minute window
	// after the test, the paper's primary method).
	Matching *core.Matching

	// vps caches the §5 per-VP analyses; vpsOnce guards the build so
	// concurrent experiments share one computation (Env must not be
	// copied).
	vpsOnce sync.Once
	vps     []*VPAnalysis
}

// NewEnv generates the world, collects the corpus, and runs the shared
// inference stages, using opts.Workers goroutines for the collection
// and inference phases. When opts.Obs is set, every phase is traced and
// the layers report their metrics to it.
func NewEnv(opts Options) (*Env, error) {
	return NewEnvCtx(context.Background(), opts)
}

// NewEnvCtx is NewEnv under cooperative cancellation: generation stops
// at its next phase boundary and collection at its next chunk boundary,
// returning an error that wraps the context's cause (ErrInterrupted
// when the CLI's signal handler cancelled).
func NewEnvCtx(ctx context.Context, opts Options) (*Env, error) {
	reg := opts.Obs
	opts.Topo.Obs = reg
	opts.Collect.Obs = reg
	w, err := topogen.GenerateCtx(ctx, opts.Topo)
	if err != nil {
		return nil, err
	}
	var corpus *platform.Corpus
	if opts.CorpusSink != nil {
		tee, err := opts.CorpusSink(w)
		if err != nil {
			return nil, err
		}
		// Collect through the chunk stream so the sink sees the corpus as
		// it is gathered; the materialized corpus is identical to the
		// CollectParallel result (CollectParallel is this same stream with
		// an append sink).
		c := &platform.Corpus{}
		st, err := platform.CollectStreamCtx(ctx, w, opts.Collect, opts.workers(), func(ch *platform.Chunk) error {
			c.Tests = append(c.Tests, ch.Tests...)
			c.Traces = append(c.Traces, ch.Traces...)
			c.TestsWithoutTrace += ch.TestsWithoutTrace
			return tee(ch)
		})
		if err != nil {
			return nil, err
		}
		c.Completeness = st.Completeness
		corpus = c
	} else {
		corpus, err = platform.CollectParallelCtx(ctx, w, opts.Collect, opts.workers())
		if err != nil {
			return nil, err
		}
	}
	return NewEnvWithCorpus(opts, w, corpus), nil
}

// NewEnvWithCorpus builds an Env over an already-collected corpus —
// the resume path, where the corpus is spliced together from a replayed
// prefix and a freshly collected suffix — running only the shared
// inference stages. The result is identical to NewEnv when the corpus
// is: inference is a pure function of (world, corpus).
func NewEnvWithCorpus(opts Options, w *topogen.World, corpus *platform.Corpus) *Env {
	reg := opts.Obs
	opts.Topo.Obs = reg
	opts.Collect.Obs = reg
	e := &Env{Opts: opts, World: w, Corpus: corpus}
	sp := reg.Span("mapit")
	e.Inference = mapit.Run(corpus.Traces, e.MapItOpts())
	sp.End()
	sp = reg.Span("match")
	e.Matching = core.MatchTraces(corpus.Tests, corpus.Traces, 10, core.WindowAfter)
	sp.End()
	reg.Gauge("match.pairs").Set(int64(e.Matching.Matched()))
	reg.Gauge("match.degraded").Set(int64(e.Matching.Degraded))
	return e
}

// MapItOpts builds the public-dataset options for this world.
func (e *Env) MapItOpts() mapit.Opts {
	w := e.World
	return mapit.Opts{
		Workers:   e.Opts.workers(),
		Obs:       e.Opts.Obs,
		Prefix2AS: w.Topo.OriginOf,
		IsIXP: func(a netaddr.Addr) bool {
			for _, p := range w.Topo.IXPPrefixes {
				if p.Contains(a) {
					return true
				}
			}
			return false
		},
		SameOrg: func(x, y topology.ASN) bool { return x == y || w.Topo.SameOrg(x, y) },
	}
}

// HourOf returns a test's client-local hour.
func (e *Env) HourOf(t *ndt.Test) float64 {
	return e.World.Topo.MustMetro(t.ClientMetro).LocalHour(t.StartMinute)
}

// OrgName returns the organization name for an ASN ("AS<n>" fallback).
func (e *Env) OrgName(asn topology.ASN) string {
	if as := e.World.Topo.AS(asn); as != nil {
		if as.Org != nil {
			return as.Org.Name
		}
		return as.Name
	}
	return fmt.Sprintf("AS%d", asn)
}

// table renders rows with tab alignment.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	fmt.Fprintln(tw, strings.Repeat("-", 4+8*len(header)))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return sb.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
