package export

import (
	"bytes"
	"strings"
	"testing"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/topology"
)

func mustPrefix(t *testing.T, s string) netaddr.Prefix {
	t.Helper()
	p, err := netaddr.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReadRejectsConflictingRels pins the Lookups bugfix: a bundle
// carrying contradictory relationships for one AS pair used to be
// resolved silently by whichever row came last; Read now refuses it
// with an error naming the pair.
func TestReadRejectsConflictingRels(t *testing.T) {
	d := &Dataset{Public: Public{Rels: []relRow{
		{A: 10, B: 20, Rel: "customer"},
		{A: 20, B: 10, Rel: "peer"}, // contradicts: should be provider
	}}}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Read(&buf)
	if err == nil {
		t.Fatal("conflicting relationship rows accepted")
	}
	if !strings.Contains(err.Error(), "(20,10)") && !strings.Contains(err.Error(), "(10,20)") {
		t.Fatalf("error does not name the conflicted pair: %v", err)
	}
	// The consistent encodings of one edge stay legal: duplicate rows
	// and the inverted orientation.
	ok := &Dataset{Public: Public{Rels: []relRow{
		{A: 10, B: 20, Rel: "customer"},
		{A: 10, B: 20, Rel: "customer"},
		{A: 20, B: 10, Rel: "provider"},
	}}}
	buf.Reset()
	if err := ok.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("consistent duplicate rows rejected: %v", err)
	}
}

// TestReadRejectsConflictingPrefixOrigins pins the other half of the
// fix: a prefix announced with two different origins is ambiguous, not
// last-write-wins.
func TestReadRejectsConflictingPrefixOrigins(t *testing.T) {
	p := mustPrefix(t, "16.0.4.0/22")
	d := &Dataset{Public: Public{Prefixes: []PrefixOrigin{
		{Prefix: p, ASN: 100},
		{Prefix: p, ASN: 200},
	}}}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Read(&buf)
	if err == nil {
		t.Fatal("conflicting prefix origins accepted")
	}
	if !strings.Contains(err.Error(), "AS100") || !strings.Contains(err.Error(), "AS200") {
		t.Fatalf("error does not name both origins: %v", err)
	}
	// An exact duplicate announcement is harmless.
	dup := &Dataset{Public: Public{Prefixes: []PrefixOrigin{
		{Prefix: p, ASN: 100},
		{Prefix: p, ASN: 100},
	}}}
	buf.Reset()
	if err := dup.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("duplicate announcement rejected: %v", err)
	}
}

// TestWithTracesDeepCopies pins the aliasing bugfix: mutating the
// copy's public tables must leave the original dataset untouched.
func TestWithTracesDeepCopies(t *testing.T) {
	d := FromWorld(world, nil)
	if len(d.Public.Prefixes) == 0 || len(d.Public.Rels) == 0 || len(d.Public.Orgs) == 0 {
		t.Fatal("fixture world exports empty public tables")
	}
	wantPrefix := d.Public.Prefixes[0]
	wantRel := d.Public.Rels[0]
	var orgName string
	for name := range d.Public.Orgs {
		if len(d.Public.Orgs[name]) > 0 {
			orgName = name
			break
		}
	}
	wantASN := d.Public.Orgs[orgName][0]
	wantIXPs := len(d.Public.IXPPrefixes)

	d2 := d.WithTraces(nil)
	d2.Public.Prefixes[0] = PrefixOrigin{Prefix: mustPrefix(t, "1.2.3.0/24"), ASN: 65000}
	d2.Public.Rels[0] = relRow{A: 1, B: 2, Rel: "peer"}
	d2.Public.Orgs[orgName][0] = topology.ASN(65001)
	d2.Public.IXPPrefixes = append(d2.Public.IXPPrefixes, mustPrefix(t, "9.9.9.0/24"))
	delete(d2.Public.Orgs, orgName)

	if d.Public.Prefixes[0] != wantPrefix {
		t.Error("prefix table aliased into the copy")
	}
	if d.Public.Rels[0] != wantRel {
		t.Error("relationship table aliased into the copy")
	}
	if d.Public.Orgs[orgName][0] != wantASN {
		t.Error("org member slice aliased into the copy")
	}
	if len(d.Public.IXPPrefixes) != wantIXPs {
		t.Error("IXP prefix slice aliased into the copy")
	}
}
