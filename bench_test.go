package throughputlab

// One benchmark per table and figure of the paper's evaluation, plus
// the in-text analyses (§4.1 matching, §5.4 snapshots, §6 statistics).
// Each benchmark regenerates its artifact from the shared environment;
// run with:
//
//	go test -bench=. -benchmem
//
// The per-iteration cost is the analysis cost; world generation and
// corpus collection are amortized through the shared environment
// (benchmarked separately as BenchmarkWorldGeneration and
// BenchmarkCorpusCollection).

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"throughputlab/internal/core"
	"throughputlab/internal/experiments"
	"throughputlab/internal/mapit"
	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/report"
	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		e, err := experiments.NewEnv(experiments.QuickOptions())
		if err != nil {
			panic(err)
		}
		benchEnv = e
	})
	return benchEnv
}

// BenchmarkWorldGeneration measures the substrate build: topology,
// BGP routes, routing indices. Sub-benchmarks sweep scale (small,
// medium) and generation worker count; the generated world is
// byte-identical at every worker count, so w4 vs w1 is pure speedup.
func BenchmarkWorldGeneration(b *testing.B) {
	for _, sc := range []struct {
		name string
		cfg  topogen.Config
	}{
		{"small", topogen.SmallConfig()},
		{"medium", topogen.DefaultConfig()},
	} {
		for _, workers := range []int{1, 4} {
			name := sc.name
			if workers != 1 {
				name = fmt.Sprintf("%s/w%d", sc.name, workers)
			}
			cfg := sc.cfg
			cfg.Workers = workers
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					topogen.MustGenerate(cfg)
				}
			})
		}
	}
}

// BenchmarkResolverResolve measures a warm-cache path resolution: one
// flow-hash pick over the memoized segment/interdomain/AS-path caches.
// The uncached variant recomputes every layer per call, quantifying
// what the memoization buys.
func BenchmarkResolverResolve(b *testing.B) {
	e := env(b)
	households := platform.BuildPopulation(e.World, 5, 8)
	servers := e.World.MLabServers()
	for _, mode := range []string{"warm", "uncached"} {
		rv := e.World.Resolver
		if mode == "uncached" {
			rv = routing.New(e.World.Topo, e.World.Routes)
			rv.DisableCache()
		}
		b.Run(mode, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := households[rng.Intn(len(households))]
				s := servers[rng.Intn(len(servers))]
				key := routing.FlowKey(s.Endpoint.Addr, h.Endpoint.Addr, uint32(i))
				if _, err := rv.Resolve(s.Endpoint, h.Endpoint, key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCorpusCollection measures a crowdsourced NDT campaign.
func BenchmarkCorpusCollection(b *testing.B) {
	e := env(b)
	cfg := platform.DefaultCollect()
	cfg.Tests = 2000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Collect(e.World, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusCollectionInstrumented is the same campaign with a
// live obs registry attached — the pair bounds the enabled-metrics
// overhead on the collection hot path (budget: ≤5% over the
// uninstrumented run).
func BenchmarkCorpusCollectionInstrumented(b *testing.B) {
	e := env(b)
	cfg := platform.DefaultCollect()
	cfg.Tests = 2000
	cfg.Obs = obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Collect(e.World, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusCollectionFullTelemetry runs the same campaign with
// the entire live-telemetry stack attached: registry metrics, the
// simulated-clock sampler, and the progress event bus with a
// discarding sink. Together with the pair above it pins the ≤5%
// telemetry-overhead budget on the collection hot path.
func BenchmarkCorpusCollectionFullTelemetry(b *testing.B) {
	e := env(b)
	cfg := platform.DefaultCollect()
	cfg.Tests = 2000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh registry per campaign (sampler state is cumulative);
		// construction and drain are per-campaign setup, not the
		// collection hot path the ≤5% budget covers.
		b.StopTimer()
		reg := obs.NewRegistry()
		reg.EnableTimeSeries(0, 0, nil)
		bus := reg.EnableEvents(4096)
		bus.AddSink(func(obs.Event) {})
		cfg.Obs = reg
		b.StartTimer()
		if _, err := platform.Collect(e.World, cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		bus.Close()
		b.StartTimer()
	}
}

// BenchmarkFig1ASHops regenerates Figure 1 (AS hops server→client per
// ISP) plus the §4.2 aggregate.
func BenchmarkFig1ASHops(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig1(e); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable1Providers regenerates Table 1.
func BenchmarkTable1Providers(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(e); len(r.Rows) != 12 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2LinkDiversity regenerates Table 2 (IP-level link
// diversity behind the Level3 Atlanta server).
func BenchmarkTable2LinkDiversity(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Table2(e); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable3Bdrmap regenerates one Table 3 row: a full bdrmap
// campaign and analysis from the bed-us vantage point. (The full table
// is 16 of these.)
func BenchmarkTable3Bdrmap(b *testing.B) {
	e := env(b)
	vp := e.World.ArkVPs[0]
	prefixTargets := platform.RoutedPrefixTargets(e.World)
	mlab := platform.HostTargets(e.World.MLabServers())
	speed := platform.HostTargets(e.World.Speedtest)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := experiments.AnalyzeVP(e, vp, prefixTargets, mlab, speed, int64(i))
		if va.Borders.ASCount == 0 {
			b.Fatal("no borders")
		}
	}
}

// BenchmarkFig2Coverage regenerates Figure 2 (per-VP interconnection
// coverage; per-VP campaigns are cached after the first build, so this
// measures the aggregation over all 16 VPs).
func BenchmarkFig2Coverage(b *testing.B) {
	e := env(b)
	experiments.Fig2(e) // warm the per-VP cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig2(e); len(r.Rows) != 16 {
			b.Fatal("bad coverage")
		}
	}
}

// BenchmarkFig3PeerCoverage regenerates Figure 3.
func BenchmarkFig3PeerCoverage(b *testing.B) {
	e := env(b)
	experiments.Fig3(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig3(e); len(r.Rows) != 16 {
			b.Fatal("bad coverage")
		}
	}
}

// BenchmarkFig4AlexaOverlap regenerates Figure 4.
func BenchmarkFig4AlexaOverlap(b *testing.B) {
	e := env(b)
	experiments.Fig4(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig4(e); len(r.Rows) != 16 {
			b.Fatal("bad overlap")
		}
	}
}

// BenchmarkFig5Diurnal regenerates Figure 5 (both panels).
func BenchmarkFig5Diurnal(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig5(e); len(r.Panels) != 2 {
			b.Fatal("bad panels")
		}
	}
}

// BenchmarkMatchingRates regenerates the §4.1 association analysis.
func BenchmarkMatchingRates(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Matching(e); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkThresholdSweep regenerates the §6.2 sensitivity analysis.
func BenchmarkThresholdSweep(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Thresholds(e); len(r.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkBiasDiagnostics regenerates the §6.1 diagnostics.
func BenchmarkBiasDiagnostics(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.BiasDiagnostics(e); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTomography regenerates the §3 comparison.
func BenchmarkTomography(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Tomography(e)
	}
}

// BenchmarkSnapshotDrift regenerates the §5.4 two-snapshot comparison
// (includes building the second world; this is the heavyweight one).
func BenchmarkSnapshotDrift(b *testing.B) {
	e := env(b)
	experiments.Fig2(e) // warm VP cache for snapshot A
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Snapshots(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignatures regenerates the §7-future-work congestion
// signature evaluation (E14).
func BenchmarkSignatures(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Signatures(e); r.Confusion.Total == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTSLPSurvey regenerates the §7 TSLP survey (E15).
func BenchmarkTSLPSurvey(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.TSLP(e); r.Links == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkPlacement regenerates the §7 placement comparison (E16).
func BenchmarkPlacement(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Placement(e); len(r.Greedy) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- Ablation benches: quantify the design choices DESIGN.md calls out ---

// BenchmarkAblationMatchingWindow contrasts the association windows of
// §4.1 (1 vs 10 minutes, after-only vs ±): the work is identical, the
// matched fraction is not — see EXPERIMENTS.md E9.
func BenchmarkAblationMatchingWindow(b *testing.B) {
	e := env(b)
	for _, w := range []int{1, 10} {
		b.Run(fmt.Sprintf("after-%dmin", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MatchTraces(e.Corpus.Tests, e.Corpus.Traces, w, core.WindowAfter)
			}
		})
	}
}

// BenchmarkAblationMapItPasses contrasts single-pass vs multipass
// MAP-IT refinement.
func BenchmarkAblationMapItPasses(b *testing.B) {
	e := env(b)
	for _, passes := range []int{1, 3} {
		b.Run(fmt.Sprintf("passes-%d", passes), func(b *testing.B) {
			b.ReportAllocs()
			opts := e.MapItOpts()
			opts.Passes = passes
			for i := 0; i < b.N; i++ {
				mapit.Run(e.Corpus.Traces, opts)
			}
		})
	}
}

// BenchmarkAblationBattleForNet contrasts single-site collection with
// the Battle-for-the-Net multi-server wrapper (§2.2): ~4-5x the tests
// for the same client population.
func BenchmarkAblationBattleForNet(b *testing.B) {
	e := env(b)
	for _, battle := range []bool{false, true} {
		b.Run(fmt.Sprintf("battle-%v", battle), func(b *testing.B) {
			b.ReportAllocs()
			cfg := platform.DefaultCollect()
			cfg.Tests = 500
			cfg.BattleForNet = battle
			for i := 0; i < b.N; i++ {
				if _, err := platform.Collect(e.World, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCongestionReport regenerates the §7-checklist report (the
// library's headline deliverable: every challenge check applied to
// every aggregate).
func BenchmarkCongestionReport(b *testing.B) {
	e := env(b)
	cfg := report.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := report.Build(e, cfg); len(r.Findings) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkStratified regenerates the §4.3-remedy stratification (E19).
func BenchmarkStratified(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Stratified(e)
	}
}

// BenchmarkBattleForNet regenerates the §2.2 collection-mode
// comparison (includes two fresh campaigns per iteration).
func BenchmarkBattleForNet(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BattleForNet(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponentAblation regenerates E18.
func BenchmarkComponentAblation(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Ablation(e)
	}
}

// --- Parallel engine benches: serial vs worker-pool sweeps ---
//
// The worker count comes from -engine.parallel (default GOMAXPROCS;
// the bare name "parallel" is taken by go test itself). Every result
// is byte-identical to the serial run — the knob only changes wall
// time.

var engineWorkers = flag.Int("engine.parallel", runtime.GOMAXPROCS(0),
	"worker count for the parallel engine benchmarks")

// BenchmarkRunAllSerial sweeps every registry experiment on one
// goroutine (the RunParallel baseline; the per-VP cache is warmed so
// both sweeps measure experiment cost, not cache build).
func BenchmarkRunAllSerial(b *testing.B) {
	e := env(b)
	experiments.Fig2(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, err := experiments.RunAll(e); err != nil || len(out) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel sweeps every registry experiment over the
// worker pool; output is byte-identical to BenchmarkRunAllSerial's.
func BenchmarkRunAllParallel(b *testing.B) {
	e := env(b)
	experiments.Fig2(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, _, err := experiments.RunParallel(e, *engineWorkers); err != nil || len(out) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusCollectionParallel measures the sharded campaign with
// the worker pool; the corpus is identical to the serial one.
func BenchmarkCorpusCollectionParallel(b *testing.B) {
	e := env(b)
	cfg := platform.DefaultCollect()
	cfg.Tests = 2000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.CollectParallel(e.World, cfg, *engineWorkers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapItParallel measures MAP-IT with parallel interface-graph
// construction and link extraction.
func BenchmarkMapItParallel(b *testing.B) {
	e := env(b)
	opts := e.MapItOpts()
	opts.Workers = *engineWorkers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inf := mapit.Run(e.Corpus.Traces, opts); len(inf.Links) == 0 {
			b.Fatal("no links")
		}
	}
}
