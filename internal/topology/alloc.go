package topology

import (
	"fmt"

	"throughputlab/internal/netaddr"
)

// Allocator hands out non-overlapping prefixes from a pool, naturally
// aligned. The topology generator uses one global allocator so no two
// ASes ever share address space (except deliberately-shared IXP LANs,
// which are allocated once and referenced by all members).
type Allocator struct {
	pool netaddr.Prefix
	// next is the offset (in addresses) of the first unallocated
	// address within pool.
	next uint64
}

// NewAllocator returns an allocator over the given pool.
func NewAllocator(pool netaddr.Prefix) *Allocator {
	return &Allocator{pool: pool}
}

// Alloc returns the next free prefix of the given length, aligned to
// its natural boundary. It returns an error when the pool is exhausted.
func (a *Allocator) Alloc(bits int) (netaddr.Prefix, error) {
	if bits < a.pool.Bits() || bits > 32 {
		return netaddr.Prefix{}, fmt.Errorf("topology: cannot allocate /%d from %v", bits, a.pool)
	}
	size := uint64(1) << (32 - bits)
	// Round next up to alignment.
	start := (a.next + size - 1) / size * size
	if start+size > a.pool.NumAddrs() {
		return netaddr.Prefix{}, fmt.Errorf("topology: pool %v exhausted allocating /%d", a.pool, bits)
	}
	a.next = start + size
	return netaddr.PrefixFrom(a.pool.Nth(start), bits), nil
}

// MustAlloc is Alloc that panics on exhaustion; the generator sizes its
// pool so exhaustion is a bug, not an input condition.
func (a *Allocator) MustAlloc(bits int) netaddr.Prefix {
	p, err := a.Alloc(bits)
	if err != nil {
		panic(err)
	}
	return p
}

// Used returns the number of addresses consumed so far (including
// alignment padding).
func (a *Allocator) Used() uint64 { return a.next }
