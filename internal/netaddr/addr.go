// Package netaddr provides compact IPv4 address and prefix types and a
// longest-prefix-match trie, used throughout throughputlab for address
// planning, prefix-to-AS mapping, and IXP prefix lookups.
//
// Addresses are stored as host-order uint32 values so they can be used
// directly as map keys and compared cheaply. The package is deliberately
// IPv4-only: the May 2015 M-Lab corpus analysed by the paper is
// IPv4-dominated (see DESIGN.md §7).
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation ("192.0.2.1").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: invalid address %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: invalid address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// MustParseAddr is ParseAddr that panics on error; for constants and tests.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Octets returns the four octets of the address.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// IsZero reports whether a is the zero address 0.0.0.0, used as "no address".
func (a Addr) IsZero() bool { return a == 0 }

// Prefix is an IPv4 CIDR prefix. The address is stored masked: all bits
// below Bits are zero.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom returns the prefix addr/bits with host bits cleared.
// It panics if bits > 32 (programming error, not input error).
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("netaddr: invalid prefix length %d", bits))
	}
	return Prefix{addr: addr.mask(bits), bits: uint8(bits)}
}

func (a Addr) mask(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return a & Addr(^uint32(0)<<(32-bits))
}

// ParsePrefix parses CIDR notation ("192.0.2.0/24"). The address part may
// have host bits set; they are cleared.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("netaddr: missing '/' in prefix %q", s)
	}
	addr, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix length in %q", s)
	}
	return PrefixFrom(addr, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the (masked) network address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether the prefix contains the address.
func (p Prefix) Contains(a Addr) bool { return a.mask(int(p.bits)) == p.addr }

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.bits) }

// Nth returns the i-th address within the prefix (0 = network address).
// It panics if i is out of range.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic(fmt.Sprintf("netaddr: address index %d out of range for %v", i, p))
	}
	return p.addr + Addr(i)
}

// Subnet carves the i-th subnet of length newBits out of p.
// It panics on invalid arguments.
func (p Prefix) Subnet(newBits int, i uint64) Prefix {
	if newBits < int(p.bits) || newBits > 32 {
		panic(fmt.Sprintf("netaddr: cannot subnet %v to /%d", p, newBits))
	}
	n := uint64(1) << (newBits - int(p.bits))
	if i >= n {
		panic(fmt.Sprintf("netaddr: subnet index %d out of range for %v -> /%d", i, p, newBits))
	}
	return Prefix{addr: p.addr + Addr(i<<(32-newBits)), bits: uint8(newBits)}
}

// String returns CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.addr, p.bits) }

// IsZero reports whether p is the zero Prefix (0.0.0.0/0 compares false;
// the zero value has bits==0 and addr==0 which equals 0.0.0.0/0, so callers
// that need an "unset" sentinel should track it separately; IsZero here
// means "the zero value").
func (p Prefix) IsZero() bool { return p == Prefix{} }
