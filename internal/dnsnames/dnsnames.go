// Package dnsnames assigns reverse-DNS (PTR) names to router
// interfaces and provides the parsing helpers the analysis uses to
// group parallel interdomain links by router.
//
// Interdomain interfaces follow the operator convention the paper
// leans on in §4.3: the interface an AS provisions for a peer is named
// "<PEER-TOKEN>.<router>.<as-domain>", e.g.
// "COX-COMMUNI.edge5.Dallas3.Level3.net" — twelve such names sharing
// the "edge5.Dallas3.Level3.net" suffix revealed twelve parallel links
// to Cox on one Level3 router in Dallas. Intra-domain interfaces are
// named "<router>.<as-domain>". A per-assignment fraction of
// interfaces gets no PTR record at all, as in the wild.
package dnsnames

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"throughputlab/internal/obs"
	"throughputlab/internal/topology"
)

// Domain derives a DNS domain for an organization name:
// "Level3 Communications" → "level3communications.net" is too long for
// the paper's flavor, so the first word is used: "level3.net".
func Domain(orgName string) string {
	fields := strings.FieldsFunc(orgName, func(r rune) bool {
		return r == ' ' || r == '.'
	})
	if len(fields) == 0 {
		return "unknown.net"
	}
	return sanitize(strings.ToLower(fields[0])) + ".net"
}

// PeerToken derives the uppercase peer tag used on interdomain
// interfaces: "Cox Communications" → "COX-COMMUNI" (11 characters, as
// in the paper's examples).
func PeerToken(orgName string) string {
	s := strings.ToUpper(orgName)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '&' || r == '.':
			if b.Len() > 0 && b.String()[b.Len()-1] != '-' {
				b.WriteByte('-')
			}
		}
	}
	tok := strings.Trim(b.String(), "-")
	if len(tok) > 11 {
		tok = tok[:11]
	}
	if tok == "" {
		tok = "PEER"
	}
	return tok
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

// Assign writes DNSName on every interface of the topology. noPTRFrac
// of interfaces get an empty name, simulating missing PTR records.
// Draws come from per-AS RNG streams derived from seed, so the result
// depends only on (topology, seed, noPTRFrac) — see AssignWorkers.
func Assign(t *topology.Topology, seed int64, noPTRFrac float64) {
	AssignWorkers(t, seed, noPTRFrac, 1, nil)
}

// AssignWorkers is Assign sharded per-AS over a worker pool. Each AS
// gets its own RNG stream derived splitmix-style from (seed, AS index)
// — the same scheme the platform's CollectParallel uses for shards —
// and every interface belongs to exactly one AS, so writes are
// disjoint and the assignment is byte-identical at any worker count.
// sp, when non-nil, receives one child span per worker.
func AssignWorkers(t *topology.Topology, seed int64, noPTRFrac float64, workers int, sp *obs.Span) {
	orgName := func(asn topology.ASN) string {
		as := t.AS(asn)
		if as == nil {
			return "unknown"
		}
		if as.Org != nil {
			return as.Org.Name
		}
		return as.Name
	}
	// Intern one domain and one peer token per AS up front; the old
	// per-interface Domain/PeerToken calls dominated the allocation
	// profile of world generation.
	asns := t.ASNs()
	domains := make(map[topology.ASN]string, len(asns))
	tokens := make(map[topology.ASN]string, len(asns))
	for _, asn := range asns {
		name := orgName(asn)
		domains[asn] = Domain(name)
		tokens[asn] = PeerToken(name)
	}

	assignAS := func(i int) {
		as := t.AS(asns[i])
		rng := splitmix{state: uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15}
		domain := domains[as.ASN]
		for _, r := range as.Routers {
			// All intra-domain interfaces on a router share one name;
			// interdomain ones share its suffix. Build it once.
			fqdn := r.Name + "." + domain
			for _, ifc := range r.Ifaces {
				if ifc.Addr.IsZero() {
					continue
				}
				if rng.Float64() < noPTRFrac {
					ifc.DNSName = ""
					continue
				}
				l := ifc.Link
				if l.Kind == topology.LinkInterdomain {
					var peer topology.ASN
					if l.A == ifc {
						peer = l.ASB()
					} else {
						peer = l.ASA()
					}
					tok, ok := tokens[peer]
					if !ok {
						tok = PeerToken(orgName(peer))
					}
					ifc.DNSName = tok + "." + fqdn
				} else {
					ifc.DNSName = fqdn
				}
			}
		}
	}

	if workers <= 1 {
		for i := range asns {
			assignAS(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sp.Child(fmt.Sprintf("dnsnames.worker.%02d", w))
			defer ws.End()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(asns) {
					return
				}
				assignAS(i)
			}
		}(w)
	}
	wg.Wait()
}

// splitmix is a SplitMix64 generator: one uint64 of state, no
// allocation. Each AS gets a state offset by the golden-ratio step
// from the master seed — the same derivation the platform package's
// shardSeed uses — so streams are decorrelated across ASes and from
// the master stream, and a worker picking up AS i always replays the
// identical draw sequence.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits, like
// math/rand's Float64.
func (s *splitmix) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// RouterFQDN strips the peer token off an interdomain interface name,
// returning the router's qualified name ("edge5.Dallas3.level3.net").
// For names without a peer token (intra-domain convention) it returns
// the name unchanged; for empty names it returns "".
func RouterFQDN(dnsName string) string {
	if dnsName == "" {
		return ""
	}
	i := strings.IndexByte(dnsName, '.')
	if i < 0 {
		return dnsName
	}
	first := dnsName[:i]
	// Peer tokens are all-caps; router labels are lower/mixed case.
	if first == strings.ToUpper(first) && strings.ContainsAny(first, "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
		return dnsName[i+1:]
	}
	return dnsName
}
