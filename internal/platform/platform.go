// Package platform models the measurement platforms of the paper: the
// M-Lab NDT service with its crowdsourced client population, server
// selection, and Paris traceroute collection (including the
// single-threaded-collector artifact that loses ~25% of traceroutes,
// §4.1); Speedtest-style server lists; and Ark-style vantage points
// that run topology campaigns (§5.1).
package platform

import (
	"math/rand"
	"sort"

	"throughputlab/internal/datasets"
	"throughputlab/internal/ndt"
	"throughputlab/internal/netsim"
	"throughputlab/internal/routing"
	"throughputlab/internal/stats"
	"throughputlab/internal/topogen"
	"throughputlab/internal/traceroute"
)

// Household is one crowdsourcing client: a home that may run NDT tests.
type Household struct {
	ISP      string
	Endpoint routing.Endpoint
	TierMbps float64
	// WiFiCapMbps is 0 for wired homes.
	WiFiCapMbps float64
}

// BuildPopulation creates households for every (ISP, metro) pool. Tier
// and Wi-Fi draws follow the ISP profiles; the same seed yields the
// same population.
func BuildPopulation(w *topogen.World, perPoolClients int, seed int64) []Household {
	rng := rand.New(rand.NewSource(seed))
	var out []Household
	for _, p := range datasets.AccessISPs() {
		for _, metro := range p.Metros {
			for i := 0; i < perPoolClients; i++ {
				ep, ok := w.NewClient(p.Name, metro)
				if !ok {
					continue
				}
				tw := make([]float64, len(p.Tiers))
				for ti, tier := range p.Tiers {
					tw[ti] = tier.Weight
				}
				tier := p.Tiers[stats.WeightedChoice(tw, rng)].DownMbps
				wifi := 0.0
				if rng.Float64() < p.WiFiDegradedFrac {
					wifi = 10 + 45*rng.Float64()
				}
				out = append(out, Household{
					ISP: p.Name, Endpoint: ep, TierMbps: tier, WiFiCapMbps: wifi,
				})
			}
		}
	}
	return out
}

// CollectConfig parameterizes a corpus collection campaign.
type CollectConfig struct {
	Seed int64
	// Days of simulated collection (the paper's case study is one
	// month, May 2015).
	Days int
	// Tests is the total number of NDT tests to run.
	Tests int
	// PerPoolClients sizes the household population.
	PerPoolClients int
	// BattleForNet makes each client test against up to five nearby
	// sites back-to-back instead of only the closest (§2.2).
	BattleForNet bool
	// TracerouteDurationMin is how long the single-threaded collector
	// is busy per traceroute; concurrent NDT arrivals at the same
	// server lose their traceroute (§4.1).
	TracerouteDurationMin int
	// Artifacts configures traceroute imperfections.
	Artifacts traceroute.Artifacts
}

// DefaultCollect returns the standard May-2015-style campaign.
func DefaultCollect() CollectConfig {
	return CollectConfig{
		Seed:                  7,
		Days:                  28,
		Tests:                 60000,
		PerPoolClients:        40,
		TracerouteDurationMin: 3,
		Artifacts:             traceroute.DefaultArtifacts(),
	}
}

// Corpus is everything the platform publishes: NDT test records and
// (unassociated) Paris traceroutes. Inference code must join them by
// endpoint and time window, exactly as §4.1 describes.
type Corpus struct {
	Tests  []*ndt.Test
	Traces []*traceroute.Trace
	// TestsWithoutTrace counts tests whose traceroute was skipped by
	// the busy collector (ground truth for the matching experiment).
	TestsWithoutTrace int
}

// testVolumeShape is the diurnal test-arrival profile: crowdsourced
// users run tests mostly in the evening, rarely at 4am (§6.1 "time of
// day bias").
func testVolumeShape(localHour float64) float64 {
	return 0.06 + 0.94*netsim.DiurnalShape(localHour)
}

// Collect runs a full crowdsourced campaign.
func Collect(w *topogen.World, cfg CollectConfig) (*Corpus, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	households := BuildPopulation(w, cfg.PerPoolClients, cfg.Seed+1)
	runner := ndt.NewRunner(w)
	tracer := traceroute.New(w.Topo, w.Resolver, cfg.Artifacts)

	// Weight households by ISP subscriber counts so the corpus mirrors
	// the real user base (Table 1).
	subs := map[string]float64{}
	for _, p := range datasets.AccessISPs() {
		s := p.SubscribersM
		if s == 0 {
			s = 0.4 // below-table ISPs still contribute a trickle
		}
		subs[p.Name] = s
	}
	hw := make([]float64, len(households))
	for i, h := range households {
		hw[i] = subs[h.ISP]
	}

	// Hour-of-day weights for arrivals, in client local time. Sampling:
	// pick household, then pick a local hour by volume, then convert to
	// a UTC minute on a random day.
	var hourW [24]float64
	for h := 0; h < 24; h++ {
		hourW[h] = testVolumeShape(float64(h) + 0.5)
	}

	// Schedule arrivals first, then execute in time order so the
	// single-threaded collector state is evaluated correctly.
	type arrival struct {
		hh      int
		minute  int
		site    *topogen.MLabSite
		entropy uint32
	}
	var schedule []arrival
	for n := 0; n < cfg.Tests; n++ {
		hi := stats.WeightedChoice(hw, rng)
		h := households[hi]
		metro := w.Topo.MustMetro(h.Endpoint.Metro)
		localH := stats.WeightedChoice(hourW[:], rng)
		day := rng.Intn(cfg.Days)
		utcH := ((localH-metro.UTCOffset)%24 + 24) % 24
		minute := day*1440 + utcH*60 + rng.Intn(60)

		sites := w.NearestMLabSite(h.Endpoint.Metro, 0)
		if cfg.BattleForNet {
			// The Battle-for-the-Net wrapper tests back-to-back against
			// up to five servers in the region (§2.2).
			sites = w.NearestMLabSite(h.Endpoint.Metro, 6)
			if len(sites) > 5 {
				sites = sites[:5]
			}
		} else if len(sites) > 1 {
			// The M-Lab backend picks one server near the client.
			i := rng.Intn(len(sites))
			sites = sites[i : i+1]
		}
		for _, site := range sites {
			schedule = append(schedule, arrival{
				hh: hi, minute: minute, site: site, entropy: rng.Uint32(),
			})
			minute += 2 + rng.Intn(3) // back-to-back tests (BattleForNet)
		}
	}
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].minute < schedule[j].minute })

	corpus := &Corpus{}
	// busyUntil tracks each server's single-threaded traceroute
	// collector.
	busyUntil := map[string]int{}
	for id, a := range schedule {
		h := households[a.hh]
		server := a.site.Servers[int(a.entropy)%len(a.site.Servers)]
		test, err := runner.Run(id, h.Endpoint, h.ISP, h.TierMbps, h.WiFiCapMbps,
			server, a.minute, a.entropy, rng)
		if err != nil {
			return nil, err
		}
		corpus.Tests = append(corpus.Tests, test)

		// Server-side Paris traceroute toward the client, if the
		// collector is idle (§4.1's single-threaded process).
		if busyUntil[server.Name] > a.minute {
			corpus.TestsWithoutTrace++
			continue
		}
		// Launch lag: the collector queues behind test teardown, and
		// recorded timestamps skew slightly, so a trace can carry a
		// timestamp up to ~2 minutes BEFORE its test and as much as ~10
		// minutes after — which is why the paper's ±window matching
		// recovers more pairs than the after-only window (§4.1).
		launch := a.minute - 2 + rng.Intn(13)
		if launch < 0 {
			launch = 0
		}
		busyUntil[server.Name] = launch + cfg.TracerouteDurationMin
		tr, err := tracer.Trace(server.Endpoint, h.Endpoint, a.entropy+1, launch, rng)
		if err != nil {
			return nil, err
		}
		corpus.Traces = append(corpus.Traces, tr)
	}
	return corpus, nil
}
