package routing

import (
	"testing"

	"throughputlab/internal/obs"
)

// TestCoreFallbackCounted pins the resolver stats counter for coreAt's
// any-router fallback: an AS asked for a metro it has no presence in
// must be visible in Stats, not silently absorbed.
func TestCoreFallbackCounted(t *testing.T) {
	n := buildTestNet(t)
	if got := n.rv.Stats().CoreFallbacks; got != 0 {
		t.Fatalf("fresh resolver CoreFallbacks = %d, want 0", got)
	}
	r, err := n.rv.coreAt(200, "no-such-metro")
	if err != nil || r == nil {
		t.Fatalf("coreAt fallback: %v, %v", r, err)
	}
	if r.ID != n.rv.anyRouter[200].ID {
		t.Errorf("fallback router = %d, want anyRouter %d", r.ID, n.rv.anyRouter[200].ID)
	}
	if got := n.rv.Stats().CoreFallbacks; got != 1 {
		t.Errorf("CoreFallbacks after fallback = %d, want 1", got)
	}
	// A metro the AS is present in must not count.
	if _, err := n.rv.coreAt(200, "atl"); err != nil {
		t.Fatal(err)
	}
	if got := n.rv.Stats().CoreFallbacks; got != 1 {
		t.Errorf("CoreFallbacks after present-metro lookup = %d, want 1", got)
	}
}

// TestObserveRebindsStats pins the Observe contract: after rebinding
// onto a shared registry, resolver activity lands on that registry
// under the resolver.* names, Stats() reads the same counters, and the
// hop/candidate histograms fill in.
func TestObserveRebindsStats(t *testing.T) {
	n := buildTestNet(t)
	reg := obs.NewRegistry()
	n.rv.Observe(reg)
	for i := 0; i < 5; i++ {
		if _, err := n.rv.Resolve(n.server, n.clientNYC, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := n.rv.Stats()
	if st.SegmentHits == 0 {
		t.Fatal("no segment hits recorded after rebind")
	}
	if got := reg.Counter("resolver.segment.hits").Value(); got != st.SegmentHits {
		t.Errorf("registry segment hits = %d, Stats() = %d; want equal", got, st.SegmentHits)
	}
	if got := reg.Counter("resolver.segment.misses").Value(); got != st.SegmentMisses {
		t.Errorf("registry segment misses = %d, Stats() = %d; want equal", got, st.SegmentMisses)
	}
	if h := reg.Histogram("resolver.resolve.hops", nil); h.Count() != 5 {
		t.Errorf("hop histogram count = %d, want 5", h.Count())
	}
	if h := reg.Histogram("resolver.inter.candidates", nil); h.Count() == 0 {
		t.Error("candidate-set histogram empty after resolves")
	}
	// Observe(nil) is a no-op, not a detach.
	n.rv.Observe(nil)
	if _, err := n.rv.Resolve(n.server, n.clientNYC, 99); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("resolver.segment.hits").Value(); got != n.rv.Stats().SegmentHits {
		t.Error("Observe(nil) detached the registry; want no-op")
	}
}

// TestSegmentCacheReused verifies that repeated resolution of one pair
// serves the intra-AS segment and interdomain choice from cache.
func TestSegmentCacheReused(t *testing.T) {
	n := buildTestNet(t)
	for i := 0; i < 5; i++ {
		if _, err := n.rv.Resolve(n.server, n.clientNYC, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := n.rv.Stats()
	if st.SegmentHits == 0 {
		t.Errorf("no segment cache hits after repeated resolves: %+v", st)
	}
	if st.InterHits == 0 {
		t.Errorf("no interdomain cache hits after repeated resolves: %+v", st)
	}
	if st.ASPathHits == 0 {
		t.Errorf("no AS-path cache hits after repeated resolves: %+v", st)
	}
}
