// Package geo models the geographic substrate of the synthetic Internet:
// metropolitan areas with coordinates and timezones, great-circle
// distances, and a distance-based propagation latency model.
//
// The paper's analyses are geography-sensitive in two ways: M-Lab selects
// the geographically closest server for each client (§2), and interdomain
// congestion shows regional effects (§3.1, §4.3), so interdomain links
// must live in specific metros.
package geo

import (
	"fmt"
	"math"
)

// Metro is a metropolitan area where routers, servers, and client
// populations are placed.
type Metro struct {
	// Code is a short airport-style identifier, e.g. "atl".
	Code string
	// Name is the human-readable city name.
	Name string
	// Lat and Lon are in degrees.
	Lat, Lon float64
	// UTCOffset is the offset of local time from simulation UTC, in hours.
	// Diurnal load and test-volume curves are driven by local time.
	UTCOffset int
	// Weight is the relative population weight used when distributing
	// clients and background traffic across metros.
	Weight float64
}

const (
	earthRadiusKm = 6371.0
	// kmPerMs is the propagation speed in fibre, ~2/3 c, expressed as
	// kilometres travelled per millisecond.
	kmPerMs = 200.0
	// routeInflation accounts for fibre paths not following great
	// circles; 1.0 would be a straight line.
	routeInflation = 1.4
)

// DistanceKm returns the great-circle distance between two metros.
func DistanceKm(a, b Metro) float64 {
	if a.Code == b.Code {
		return 0
	}
	lat1, lon1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	lat2, lon2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dlat, dlon := lat2-lat1, lon2-lon1
	h := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// PropagationDelayMs returns the one-way propagation delay between two
// metros in milliseconds, including route inflation. Within a metro it
// returns a small constant to model local fibre.
func PropagationDelayMs(a, b Metro) float64 {
	d := DistanceKm(a, b)
	if d == 0 {
		return 0.2
	}
	return d * routeInflation / kmPerMs
}

// LocalHour converts a simulation time, expressed in minutes since the
// start of the synthetic month (UTC), to the local hour-of-day [0,24) in
// the metro.
func (m Metro) LocalHour(minute int) float64 {
	h := math.Mod(float64(minute)/60+float64(m.UTCOffset), 24)
	if h < 0 {
		h += 24
	}
	return h
}

// String implements fmt.Stringer.
func (m Metro) String() string { return fmt.Sprintf("%s(%s)", m.Code, m.Name) }
