package core

import (
	"math"
	"testing"

	"throughputlab/internal/mapit"
	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

var (
	world  = topogen.MustGenerate(topogen.SmallConfig())
	corpus = func() *platform.Corpus {
		cfg := platform.DefaultCollect()
		cfg.Tests = 6000
		cfg.PerPoolClients = 8
		c, err := platform.Collect(world, cfg)
		if err != nil {
			panic(err)
		}
		return c
	}()
	worldInf = mapit.Run(corpus.Traces, mapitOpts())
)

func mapitOpts() mapit.Opts {
	return mapit.Opts{
		Prefix2AS: world.Topo.OriginOf,
		IsIXP: func(a netaddr.Addr) bool {
			for _, p := range world.Topo.IXPPrefixes {
				if p.Contains(a) {
					return true
				}
			}
			return false
		},
		SameOrg: func(x, y topology.ASN) bool { return x == y || world.Topo.SameOrg(x, y) },
	}
}

func hourOf(t *ndt.Test) float64 {
	return world.Topo.MustMetro(t.ClientMetro).LocalHour(t.StartMinute)
}

func TestMatchTracesRates(t *testing.T) {
	after := MatchTraces(corpus.Tests, corpus.Traces, 10, WindowAfter)
	around := MatchTraces(corpus.Tests, corpus.Traces, 10, WindowAround)
	if after.Total != len(corpus.Tests) {
		t.Fatalf("total %d != %d", after.Total, len(corpus.Tests))
	}
	// §4.1: the after-window method matched 71-76%; relaxing the window
	// raised it to 87%. Shapes: substantial but incomplete matching,
	// and Around ≥ After.
	ra, rr := after.Rate(), around.Rate()
	if ra < 0.5 || ra > 0.98 {
		t.Errorf("after-window rate %.3f outside plausible band", ra)
	}
	if rr < ra {
		t.Errorf("around-window rate %.3f below after-window %.3f", rr, ra)
	}
	// Matched traces really belong to their tests.
	checked := 0
	for _, ts := range corpus.Tests[:500] {
		tr := after.ByTest[ts.ID]
		if tr == nil {
			continue
		}
		checked++
		if tr.SrcAddr != ts.ServerAddr || tr.DstAddr != ts.ClientAddr {
			t.Fatal("matched trace endpoints differ from test")
		}
		if tr.LaunchMinute < ts.StartMinute || tr.LaunchMinute > ts.StartMinute+10 {
			t.Fatal("matched trace outside the window")
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestMatchConsumesEachTraceOnce(t *testing.T) {
	m := MatchTraces(corpus.Tests, corpus.Traces, 10, WindowAfter)
	seen := map[*traceroute.Trace]bool{}
	for _, tr := range m.ByTest {
		if seen[tr] {
			t.Fatal("trace matched to two tests")
		}
		seen[tr] = true
	}
}

func TestDiurnalSeriesAndDetectCongested(t *testing.T) {
	// AT&T clients against GTT Atlanta: the Figure 5a congested pair.
	var att, com []*ndt.Test
	for _, ts := range corpus.Tests {
		if ts.ServerNet != "GTT" || ts.ServerMetro != "atl" {
			continue
		}
		switch ts.ClientISP {
		case "AT&T":
			att = append(att, ts)
		case "Comcast":
			com = append(com, ts)
		}
	}
	if len(att) < 100 || len(com) < 100 {
		t.Skipf("thin GTT-atl groups: att=%d com=%d", len(att), len(com))
	}
	// Off-peak hours carry few crowdsourced samples (§6.1) — at this
	// corpus size the default 30-sample floor would refuse to decide,
	// which is itself the paper's point; lower it for the unit test.
	cfg := DefaultDetector()
	cfg.MinSamples = 10

	sa := BuildSeries(att, hourOf)
	va := Detect(sa, cfg)
	if va.InsufficientData {
		t.Fatalf("AT&T group undecidable: peak %d off %d", va.PeakN, va.OffN)
	}
	if !va.Congested {
		t.Errorf("AT&T-GTT should be detected congested: %+v", va)
	}
	if va.PeakMedian > 2 {
		t.Errorf("AT&T peak median %.2f Mbps, paper shows <1-2", va.PeakMedian)
	}

	sc := BuildSeries(com, hourOf)
	vc := Detect(sc, cfg)
	if vc.Congested {
		t.Errorf("Comcast-GTT should NOT be detected congested: drop=%.2f", vc.Drop)
	}
	// But Comcast still dips measurably (the §6.2 ambiguity).
	if !vc.InsufficientData && vc.Drop < 0.03 {
		t.Logf("note: Comcast dip %.2f very small", vc.Drop)
	}
	// Figure 5a vs 5b variance signature: congested peak has lower CV
	// than the healthy group's peak.
	if !vc.InsufficientData && va.PeakCV >= vc.PeakCV {
		t.Errorf("congested peak CV %.2f should be below busy-pair CV %.2f", va.PeakCV, vc.PeakCV)
	}
}

func TestDetectInsufficientData(t *testing.T) {
	s := &Series{}
	s.Add(21, &ndt.Test{DownMbps: 5})
	v := Detect(s, DefaultDetector())
	if !v.InsufficientData || v.Congested {
		t.Errorf("tiny sample must be undecided: %+v", v)
	}
}

func TestASHopDistributionShape(t *testing.T) {
	m := MatchTraces(corpus.Tests, corpus.Traces, 10, WindowAfter)
	dist := ASHopDistribution(corpus.Tests, m, worldInf, func(ts *ndt.Test) string { return ts.ClientISP })
	com := dist["Comcast"]
	wind := dist["Windstream"]
	if com == nil || com.Total() < 50 {
		t.Fatalf("Comcast bucket thin: %+v", com)
	}
	if com.FracOne() < 0.7 {
		t.Errorf("Comcast one-hop fraction %.2f, want high (Figure 1)", com.FracOne())
	}
	if wind != nil && wind.Total() >= 20 && wind.FracOne() > 0.5 {
		t.Errorf("Windstream one-hop fraction %.2f, want low (Figure 1)", wind.FracOne())
	}
}

func TestLinkDiversityShowsMultipleLinks(t *testing.T) {
	m := MatchTraces(corpus.Tests, corpus.Traces, 10, WindowAfter)
	// Table 2 style: one server network+metro, grouped by client ASN.
	div := LinkDiversity(corpus.Tests, m, worldInf,
		func(ts *ndt.Test, tr *traceroute.Trace) (string, bool) {
			if ts.ServerNet != "Level3" || ts.ServerMetro != "atl" {
				return "", false
			}
			return ts.ClientISP, true
		}, nil)
	if len(div) == 0 {
		t.Fatal("no groups")
	}
	multi := 0
	for isp, uses := range div {
		if len(uses) > 1 {
			multi++
		}
		// Sorted descending by tests.
		for i := 1; i < len(uses); i++ {
			if uses[i].Tests > uses[i-1].Tests {
				t.Errorf("%s link uses unsorted", isp)
			}
		}
	}
	if multi == 0 {
		t.Error("no ISP shows multiple IP-level links from one server (Assumption 3 would hold trivially)")
	}
}

func TestBiasReport(t *testing.T) {
	var att []*ndt.Test
	for _, ts := range corpus.Tests {
		if ts.ClientISP == "AT&T" {
			att = append(att, ts)
		}
	}
	rep := Bias(att, hourOf, 20)
	if rep.NightToEveningRatio >= 1 {
		t.Errorf("night/evening ratio %.2f, want < 1 (time-of-day bias)", rep.NightToEveningRatio)
	}
	if rep.TestsPerClientP90 <= 0 {
		t.Error("per-client p90 missing")
	}
	if rep.MaxHourCV <= 0 {
		t.Error("hourly CV missing")
	}
	if math.IsNaN(rep.TestsPerClientP90) {
		t.Error("NaN p90")
	}
}

func TestThresholdSweep(t *testing.T) {
	// Build labeled groups by (server net+metro, client ISP) with
	// ground truth from the simulator.
	type gkey struct{ net, metro, isp string }
	groups := map[gkey][]*ndt.Test{}
	sat := map[gkey]int{}
	for _, ts := range corpus.Tests {
		k := gkey{ts.ServerNet, ts.ServerMetro, ts.ClientISP}
		groups[k] = append(groups[k], ts)
		if ts.TruthSaturated {
			sat[k]++
		}
	}
	var labeled []LabeledGroup
	for k, tests := range groups {
		if len(tests) < 150 {
			continue
		}
		labeled = append(labeled, LabeledGroup{
			Name:           k.net + "/" + k.metro + "→" + k.isp,
			Series:         BuildSeries(tests, hourOf),
			TrulyCongested: float64(sat[k])/float64(len(tests)) > 0.05,
		})
	}
	if len(labeled) < 4 {
		t.Skipf("only %d labeled groups", len(labeled))
	}
	cfg := DefaultDetector()
	cfg.MinSamples = 10
	pts := ThresholdSweep(labeled, []float64{0.1, 0.3, 0.5, 0.7, 0.9}, cfg)
	if len(pts) != 5 {
		t.Fatal("wrong point count")
	}
	// Flag count decreases monotonically with threshold.
	for i := 1; i < len(pts); i++ {
		if pts[i].TruePos+pts[i].FalsePos > pts[i-1].TruePos+pts[i-1].FalsePos {
			t.Error("flagged count should not increase with threshold")
		}
	}
	// Very low threshold flags liberally (recall high, precision lower);
	// very high threshold flags nearly nothing.
	if pts[0].TruePos+pts[0].FalsePos == 0 {
		t.Error("threshold 0.1 flagged nothing")
	}
}

func BenchmarkMatchTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MatchTraces(corpus.Tests, corpus.Traces, 10, WindowAfter)
	}
}

func BenchmarkBuildSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BuildSeries(corpus.Tests, hourOf)
	}
}

// TestMatchTracesTieBreak pins the association semantics the binary-
// search implementation must preserve: each test takes the FIRST trace
// launched at or after its window's lower bound, earlier tests claim
// earlier traces, and a trace is consumed by at most one test — for
// both the after-only and the ± window (§4.1).
func TestMatchTracesTieBreak(t *testing.T) {
	srv, cli := netaddr.Addr(0x0a000001), netaddr.Addr(0x0a000002)
	mkTest := func(id, start int) *ndt.Test {
		return &ndt.Test{ID: id, ServerAddr: srv, ClientAddr: cli, StartMinute: start}
	}
	mkTrace := func(launch int) *traceroute.Trace {
		return &traceroute.Trace{SrcAddr: srv, DstAddr: cli, LaunchMinute: launch}
	}

	// Traces deliberately out of order to exercise the per-pair sort.
	tr3, tr5, tr8, tr98 := mkTrace(3), mkTrace(5), mkTrace(8), mkTrace(98)
	traces := []*traceroute.Trace{tr8, tr98, tr3, tr5}
	// Tests out of order too: processed by StartMinute, so the test at
	// minute 2 picks before the one at minute 4.
	tests := []*ndt.Test{mkTest(1, 4), mkTest(0, 2), mkTest(2, 90)}

	after := MatchTraces(tests, traces, 10, WindowAfter)
	// Test 0 (minute 2) claims the first trace at/after 2 → tr3.
	// Test 1 (minute 4) finds tr3 consumed → first at/after 4 → tr5.
	// Test 2 (minute 90) skips nothing → tr98.
	if after.ByTest[0] != tr3 || after.ByTest[1] != tr5 || after.ByTest[2] != tr98 {
		t.Errorf("after-window claims: got %v/%v/%v, want tr3/tr5/tr98",
			after.ByTest[0].LaunchMinute, after.ByTest[1].LaunchMinute, after.ByTest[2].LaunchMinute)
	}
	if after.Matched() != 3 {
		t.Errorf("after matched %d, want 3", after.Matched())
	}

	// WindowAround widens the lower bound to start-window: the test at
	// minute 4 would prefer tr3 (launched before it), but the earlier
	// test already consumed it — consumption is still exclusive.
	around := MatchTraces(tests, traces, 10, WindowAround)
	if around.ByTest[0] != tr3 || around.ByTest[1] != tr5 {
		t.Error("around-window: exclusive consumption violated")
	}

	// A trace before the lower bound is never claimed (after-only mode
	// must not look back).
	lateTests := []*ndt.Test{mkTest(7, 9)}
	lateAfter := MatchTraces(lateTests, []*traceroute.Trace{tr3, tr5, tr8}, 10, WindowAfter)
	if lateAfter.ByTest[7] != nil {
		t.Errorf("after-only claimed a trace launched at %d before test minute 9",
			lateAfter.ByTest[7].LaunchMinute)
	}
	lateAround := MatchTraces(lateTests, []*traceroute.Trace{tr8}, 10, WindowAround)
	if lateAround.ByTest[7] != tr8 {
		t.Error("around-window should reach back to a trace 1 minute before the test")
	}

	// Out-of-window traces on both sides are never matched.
	farTests := []*ndt.Test{mkTest(9, 50)}
	far := MatchTraces(farTests, []*traceroute.Trace{mkTrace(10), mkTrace(70)}, 10, WindowAround)
	if far.ByTest[9] != nil {
		t.Errorf("matched a trace %d minutes away", far.ByTest[9].LaunchMinute-50)
	}
}
