package experiments

import (
	"fmt"
	"strings"

	"throughputlab/internal/core"
	"throughputlab/internal/mapit"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/platform"
)

// BattleRow summarizes one collection mode.
type BattleRow struct {
	Mode string
	// Tests actually collected (BfN multiplies per-client volume).
	Tests int
	// ServerPairs is the number of distinct (server site, client ISP)
	// combinations observed — the "more paths" the wrapper was after.
	ServerPairs int
	// IPLinks is the number of distinct IP-level interdomain links the
	// matched traceroutes crossed.
	IPLinks int
	// MatchedFrac: the extra volume loads the single-threaded
	// collector, so association suffers.
	MatchedFrac float64
}

// BattleResult reproduces the §2.2 comparison: the Battle-for-the-Net
// wrapper ran back-to-back tests against up to five regional servers
// instead of one, trading per-test traceroute coverage for path
// diversity. (The May 2015 volume spike it caused is what prompted the
// updated M-Lab report the paper dissects.)
type BattleResult struct {
	Rows []BattleRow
}

// BattleForNet collects a fresh corpus in each mode over the shared
// world and compares observability.
func BattleForNet(e *Env) (*BattleResult, error) {
	cfg := e.Opts.Collect
	cfg.Tests = min(cfg.Tests/4, 8000) // fresh, smaller campaigns
	cfg.Seed += 5000

	res := &BattleResult{}
	for _, battle := range []bool{false, true} {
		c := cfg
		c.BattleForNet = battle
		corpus, err := platform.Collect(e.World, c)
		if err != nil {
			return nil, err
		}
		inf := mapit.Run(corpus.Traces, e.MapItOpts())
		matching := core.MatchTraces(corpus.Tests, corpus.Traces, 10, core.WindowAfter)

		pairs := map[string]bool{}
		for _, t := range corpus.Tests {
			pairs[t.ServerSite+"|"+t.ClientISP] = true
		}
		links := map[netaddr.Addr]bool{}
		for _, t := range corpus.Tests {
			tr := matching.ByTest[t.ID]
			if tr == nil {
				continue
			}
			for _, l := range inf.LinksOf(tr) {
				links[l.Far] = true
			}
		}
		mode := "single-server (NDT default)"
		if battle {
			mode = "battle-for-the-net (≤5 servers)"
		}
		res.Rows = append(res.Rows, BattleRow{
			Mode: mode, Tests: len(corpus.Tests),
			ServerPairs: len(pairs), IPLinks: len(links),
			MatchedFrac: matching.Rate(),
		})
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render prints the comparison.
func (r *BattleResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§2.2 — Battle-for-the-Net multi-server client vs the NDT default\n")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode, fmt.Sprintf("%d", row.Tests), fmt.Sprintf("%d", row.ServerPairs),
			fmt.Sprintf("%d", row.IPLinks), pct(row.MatchedFrac),
		})
	}
	sb.WriteString(table([]string{"mode", "tests", "(site,ISP) pairs", "IP links seen", "traced"}, rows))
	sb.WriteString("\nThe wrapper observes more paths and interconnections from the same client\n")
	sb.WriteString("population — at the cost of flooding the single-threaded traceroute\n")
	sb.WriteString("collector (§4.1), which is exactly the trade the paper documents.\n")
	return sb.String()
}
