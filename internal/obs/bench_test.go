package obs

import "testing"

// Benchmarks pinning the two contracts the rest of the pipeline builds
// on: the disabled (nil-handle) path is a branch — 0 allocs/op,
// sub-nanosecond — and the enabled path is one atomic op with 0
// allocs/op. BenchmarkCounterAddDisabled is the regression guard the
// ISSUE requires: the observability layer can never silently put
// allocations back on the PR-2 hot paths.

func BenchmarkCounterAddDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := NewRegistry().Counter("enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() == 0 {
		b.Fatal("counter not incremented")
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("disabled", Bounds(1, 2, 4, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 15))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("enabled", Bounds(1, 2, 4, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 15))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Span("phase")
		sp.End()
	}
}

// BenchmarkEventPublishDisabled pins the disabled event-bus path at 0
// allocs/op: emission sites (chunk sinks, pipeline stages, fault
// retries) publish unconditionally, so a run without -events must pay
// one nil check and nothing else.
func BenchmarkEventPublishDisabled(b *testing.B) {
	var r *Registry
	bus := r.Events()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish("collect.chunk", "", i, int64(i))
	}
}

// BenchmarkEventPublishEnabled measures the live publish path (a
// non-blocking channel send) with a draining consumer.
func BenchmarkEventPublishEnabled(b *testing.B) {
	bus := NewRegistry().EnableEvents(1024)
	bus.AddSink(func(Event) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish("collect.chunk", "", i, int64(i))
	}
	bus.Close()
}

// BenchmarkSamplerAdvanceNoBoundary measures the per-chunk cost of
// Advance when no step boundary is crossed — the common case on the
// streaming sink path.
func BenchmarkSamplerAdvanceNoBoundary(b *testing.B) {
	r := NewRegistry()
	r.Counter("collect.tests").Add(1)
	s := r.EnableTimeSeries(60, 0, nil)
	s.Advance(60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Advance(61)
	}
}
