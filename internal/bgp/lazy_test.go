package bgp

import (
	"math/rand"
	"sync"
	"testing"
)

// TestLazyMatchesEager pins the storage-mode equivalence: every
// accessor answers identically whether the trees were materialized up
// front or computed on demand, across random hierarchies.
func TestLazyMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		tp := randomHierarchy(rng)
		eager := Compute(tp)
		lazy := ComputeLazy(tp)
		if !lazy.Lazy() || eager.Lazy() {
			t.Fatal("mode flags wrong")
		}
		asns := tp.ASNs()
		for _, src := range asns {
			for _, dst := range asns {
				en, eok := eager.NextHop(src, dst)
				ln, lok := lazy.NextHop(src, dst)
				if en != ln || eok != lok {
					t.Fatalf("trial %d: NextHop(%v,%v) eager (%v,%v) lazy (%v,%v)",
						trial, src, dst, en, eok, ln, lok)
				}
				if eager.HasRoute(src, dst) != lazy.HasRoute(src, dst) {
					t.Fatalf("trial %d: HasRoute(%v,%v) differs", trial, src, dst)
				}
				if eager.Class(src, dst) != lazy.Class(src, dst) {
					t.Fatalf("trial %d: Class(%v,%v) differs", trial, src, dst)
				}
				if eager.PathLen(src, dst) != lazy.PathLen(src, dst) {
					t.Fatalf("trial %d: PathLen(%v,%v) differs", trial, src, dst)
				}
				ep, lp := eager.Path(src, dst), lazy.Path(src, dst)
				if len(ep) != len(lp) {
					t.Fatalf("trial %d: Path(%v,%v) %v vs %v", trial, src, dst, ep, lp)
				}
				for i := range ep {
					if ep[i] != lp[i] {
						t.Fatalf("trial %d: Path(%v,%v) %v vs %v", trial, src, dst, ep, lp)
					}
				}
			}
		}
		if got, want := lazy.ComputedTrees(), len(asns); got != want {
			t.Errorf("trial %d: lazy computed %d trees after full sweep, want %d", trial, got, want)
		}
	}
}

// TestLazyConcurrentFirstUse hammers one lazy table from many
// goroutines (run under -race): racing first-use computations must
// CAS-publish identical trees and agree with the eager answer.
func TestLazyConcurrentFirstUse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tp := randomHierarchy(rng)
	eager := Compute(tp)
	lazy := ComputeLazy(tp)
	asns := tp.ASNs()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, src := range asns {
				for _, dst := range asns {
					en, _ := eager.NextHop(src, dst)
					ln, _ := lazy.NextHop(src, dst)
					if en != ln {
						select {
						case errs <- "concurrent NextHop mismatch":
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got, want := lazy.ComputedTrees(), len(asns); got != want {
		t.Errorf("computed tree count %d, want %d (each tree published once)", got, want)
	}
}
