package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"throughputlab/internal/routing"
)

// ExperimentStat records the cost of one experiment inside a
// RunParallel sweep.
type ExperimentStat struct {
	Name string
	// Wall is the experiment's own wall time.
	Wall time.Duration
	// AllocBytes is the heap allocated while the experiment ran,
	// measured from the runtime's global counters — exact with one
	// worker, an attribution estimate when experiments overlap.
	AllocBytes uint64
}

// RunStats summarizes a RunParallel sweep.
type RunStats struct {
	Workers int
	// Wall is the end-to-end sweep time; with more than one worker it
	// is less than the sum of per-experiment wall times.
	Wall time.Duration
	// Experiments holds per-experiment costs in registry order.
	Experiments []ExperimentStat
	// Resolver is the world resolver's cumulative cache/fallback
	// counters at the end of the sweep (world generation, corpus
	// collection, and the experiments all resolve through it). A
	// nonzero CoreFallbacks means some AS was routed through a metro it
	// has no presence in — a topology bug the metro-keyed caches would
	// otherwise mask.
	Resolver routing.Stats
}

// Summary renders the stats as a small table, slowest experiment
// first.
func (s *RunStats) Summary() string {
	ordered := append([]ExperimentStat(nil), s.Experiments...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Wall > ordered[j-1].Wall; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	var sum time.Duration
	for _, st := range ordered {
		sum += st.Wall
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d experiments in %.2fs wall (%.2fs cpu-serial, %d workers)\n",
		len(ordered), s.Wall.Seconds(), sum.Seconds(), s.Workers)
	for _, st := range ordered {
		fmt.Fprintf(&sb, "  %-12s %8.3fs  %8.1f MB\n",
			st.Name, st.Wall.Seconds(), float64(st.AllocBytes)/(1<<20))
	}
	rs := s.Resolver
	hitRate := func(hits, misses uint64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(&sb, "resolver caches: segment %.1f%% inter %.1f%% aspath %.1f%% hit; core fallbacks %d\n",
		hitRate(rs.SegmentHits, rs.SegmentMisses),
		hitRate(rs.InterHits, rs.InterMisses),
		hitRate(rs.ASPathHits, rs.ASPathMisses),
		rs.CoreFallbacks)
	return sb.String()
}

// RunParallel executes every registry experiment over a worker pool
// and emits output in registry order, byte-identical to RunAll. When
// an experiment fails, the output of the registry entries before it is
// returned together with the error, matching RunAll's partial-output
// semantics. Per-experiment wall time and allocation are collected
// into RunStats.
//
// Experiments share the Env read-only (the §5 per-VP cache is built
// once under Env.vpsOnce), so any worker count is safe and the output
// deterministic.
func RunParallel(e *Env, workers int) (string, *RunStats, error) {
	entries := Registry()
	if workers < 1 {
		workers = 1
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	start := time.Now()

	type slot struct {
		out  string
		err  error
		stat ExperimentStat
	}
	slots := make([]slot, len(entries))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(entries) {
					return
				}
				entry := entries[i]
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				t0 := time.Now()
				r, err := entry.Run(e)
				wall := time.Since(t0)
				runtime.ReadMemStats(&after)
				slots[i].stat = ExperimentStat{
					Name: entry.Name, Wall: wall,
					AllocBytes: after.TotalAlloc - before.TotalAlloc,
				}
				if err != nil {
					slots[i].err = fmt.Errorf("experiment %s: %w", entry.Name, err)
					continue
				}
				slots[i].out = renderEntry(entry, r)
			}
		}()
	}
	wg.Wait()

	stats := &RunStats{Workers: workers, Resolver: e.World.Resolver.Stats()}
	var sb strings.Builder
	for i := range slots {
		stats.Experiments = append(stats.Experiments, slots[i].stat)
		if slots[i].err != nil {
			stats.Wall = time.Since(start)
			return sb.String(), stats, slots[i].err
		}
		sb.WriteString(slots[i].out)
	}
	stats.Wall = time.Since(start)
	return sb.String(), stats, nil
}
