package experiments

import (
	"fmt"
	"strings"

	"throughputlab/internal/core"
	"throughputlab/internal/datasets"
	"throughputlab/internal/ndt"
)

// Fig1Row is one bar of Figure 1: the AS-hop mix of matched tests
// toward one access ISP.
type Fig1Row struct {
	ISP              string
	Matched          int
	FracOne, FracTwo float64
	FracMore         float64
}

// Fig1Result reproduces Figure 1 plus the §4.2 in-text aggregate (82%
// of analyzed traces had directly connected endpoints).
type Fig1Result struct {
	Rows []Fig1Row
	// OverallDirect is the one-hop fraction across all analyzed traces.
	OverallDirect float64
}

// Fig1 buckets matched NDT traceroutes by AS hops between the server
// and client organizations (siblings collapsed, as in §4.2), for the
// nine ISPs of the figure.
func Fig1(e *Env) *Fig1Result {
	inFig := map[string]bool{}
	order := []string{}
	for _, p := range datasets.AccessISPs() {
		if p.InFig1 {
			inFig[p.Name] = true
			order = append(order, p.Name)
		}
	}
	dist := core.ASHopDistribution(e.Corpus.Tests, e.Matching, e.Inference,
		func(t *ndt.Test) string { return t.ClientISP })

	res := &Fig1Result{}
	totalOne, total := 0, 0
	for isp, b := range dist {
		totalOne += b.One
		total += b.Total()
		_ = isp
	}
	if total > 0 {
		res.OverallDirect = float64(totalOne) / float64(total)
	}
	for _, isp := range order {
		b := dist[isp]
		if b == nil {
			res.Rows = append(res.Rows, Fig1Row{ISP: isp})
			continue
		}
		n := float64(b.Total())
		res.Rows = append(res.Rows, Fig1Row{
			ISP: isp, Matched: b.Total(),
			FracOne:  float64(b.One) / n,
			FracTwo:  float64(b.Two) / n,
			FracMore: float64(b.More) / n,
		})
	}
	return res
}

// Render prints the figure's data as a table.
func (r *Fig1Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.ISP, fmt.Sprintf("%d", row.Matched),
			pct(row.FracOne), pct(row.FracTwo), pct(row.FracMore),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 1 — AS hops from M-Lab servers to access-ISP clients (matched traceroutes)\n")
	sb.WriteString(table([]string{"ISP", "traces", "1 hop", "2 hops", "2+ hops"}, rows))
	sb.WriteString(fmt.Sprintf("\nOverall directly-connected fraction (§4.2): %s\n", pct(r.OverallDirect)))
	return sb.String()
}

// Table1Result reproduces Table 1 (static data, also used to weight
// the client population).
type Table1Result struct {
	Rows []struct {
		ISP         string
		Subscribers int
	}
}

// Table1 returns the paper's Table 1.
func Table1(e *Env) *Table1Result {
	r := &Table1Result{}
	for _, row := range datasets.Table1() {
		r.Rows = append(r.Rows, struct {
			ISP         string
			Subscribers int
		}{row.ISP, row.Subscribers})
	}
	return r
}

// Render prints Table 1.
func (r *Table1Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.ISP, fmt.Sprintf("%d", row.Subscribers)})
	}
	return "Table 1 — U.S. broadband providers with >1M subscribers (Q3 2015)\n" +
		table([]string{"ISP", "Subscribers"}, rows)
}
