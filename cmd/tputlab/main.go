// Command tputlab regenerates the paper's tables and figures from the
// synthetic Internet.
//
// Usage:
//
//	tputlab list
//	tputlab run <experiment>|all [-scale small|default|large] [-seed N] [-tests N] [-parallel N]
//	tputlab bench [-out FILE] [-note TEXT]
//
// Example:
//
//	tputlab run fig5 -scale small
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"throughputlab/internal/bdrmap"
	"throughputlab/internal/datasets"
	"throughputlab/internal/experiments"
	"throughputlab/internal/export"
	"throughputlab/internal/faults"
	"throughputlab/internal/mapit"
	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/report"
	"throughputlab/internal/stream"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

// pipelineDepth bounds each report-pipeline stage's input channel: a
// stalled stage backpressures the producer after this many chunks.
// Depth 1 keeps stages overlapped while holding the fan-out's share of
// resident chunks to one queued plus one in-process per stage.
const pipelineDepth = 1

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Paper)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "report":
		if err := reportCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "bench":
		if err := benchCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tputlab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tputlab list                                  show available experiments
  tputlab run <name>|all [flags]                regenerate a table/figure
  tputlab report [flags]                        caveat-annotated congestion report (§7 checklist)
  tputlab bench [-out FILE] [-note TEXT]        write a BENCH_<date>.json performance baseline

flags for run/report:
  -scale NAME            topology/corpus scale: small, default, medium,
                         large (~50k ASes) or xlarge (~75k ASes, one
                         million scheduled tests); default "default"
  -json                  (run) emit the result struct as JSON
  -corpus-out FILE       persist the corpus to FILE as a chunked stream
                         while it is collected (bounded memory;
                         readable later by 'report -corpus')
  -corpus-format FORMAT  corpus file format: ndjson (the jq-able
                         tputlab-corpus/1 text stream, the default for
                         -corpus-out) or columnar (the tputlab-corpus/2
                         binary format, ~3x faster to reload and
                         smaller on disk); on 'report -corpus' the
                         format is auto-detected, and naming one
                         instead requires it
  -stream                (report) assemble the report through the
                         bounded-memory chunked pipeline instead of
                         materializing the corpus; output is
                         byte-identical to the batch path
  -corpus FILE           (report) report over a corpus previously
                         persisted with -corpus-out, without
                         re-collecting (no world generation)
  -seed N                generation seed (default 1)
  -tests N               NDT corpus size (0 = scale default)
  -parallel N            engine worker count (default GOMAXPROCS);
                         results are identical for every N
  -pipeline N            chunk-parallel streamed collection: workers
                         produce whole chunks concurrently and a
                         reorder buffer of depth N re-sequences them
                         (0 = per-chunk barrier, the default); the
                         corpus and report are byte-identical for
                         every value
  -genworkers N          world-generation worker count (default
                         GOMAXPROCS); the world is byte-identical
                         for every N
  -faults PROFILE        deterministic fault injection: off (default),
                         light, moderate or heavy; degraded data is
                         skipped by inference and accounted in the
                         report's data-completeness section
  -faultseed N           seed for the fault streams (default: -seed);
                         a fixed profile+seed yields a byte-identical
                         corpus at every -parallel value
  -metrics               print the phase-span tree and pipeline metrics
                         (cache hit rates, per-shard counts, fallbacks)
                         to stderr; stdout stays byte-identical
  -metrics-json FILE     write the metrics registry dump as JSON
  -events FILE           stream progress events (chunk publications,
                         pipeline stages, fault retries, report passes)
                         to FILE as NDJSON; ends with campaign.done
  -progress              render live progress events to stderr
  -trace-out FILE        write the phase-span tree as Chrome
                         trace_event JSON, loadable in Perfetto
  -telemetry-addr ADDR   serve live telemetry over HTTP while running:
                         /metrics (Prometheus text), /spans, /series,
                         /trace, /dump, /debug/pprof/
  -telemetry-linger DUR  keep the telemetry endpoint up DUR after the
                         run (e.g. 30s), for scrapes of the final state

telemetry never changes results: corpus and report bytes are identical
with every combination of the flags above on or off`)
}

// scaleOptions maps a -scale value to its environment options; unknown
// values are a usage error, and run and report accept the same set.
// large (~50k ASes) and xlarge (~75k ASes, a million scheduled tests)
// are sized for the streaming pipeline: run them with -stream or
// -corpus-out so the corpus never has to be resident all at once.
func scaleOptions(scale string) (experiments.Options, error) {
	switch scale {
	case "default":
		return experiments.DefaultOptions(), nil
	case "small":
		return experiments.QuickOptions(), nil
	case "medium":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.MediumScale()
		return opts, nil
	case "large":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.LargeScale()
		return opts, nil
	case "xlarge":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.XLargeScale()
		opts.Collect.Tests = 1_000_000
		return opts, nil
	default:
		return experiments.Options{}, fmt.Errorf("invalid -scale %q (valid: small, default, medium, large, xlarge)", scale)
	}
}

// commonFlags is the flag/Options-building block shared by runCmd and
// reportCmd (it was duplicated verbatim between them before).
type commonFlags struct {
	scale        *string
	seed         *int64
	tests        *int
	workers      *int
	pipeline     *int
	genWorkers   *int
	corpusFormat *string
	faults       *string
	faultSeed    *int64
	metrics      *bool
	metricsJSON  *string

	events        *string
	progress      *bool
	traceOut      *string
	telemetryAddr *string
	linger        *time.Duration

	// Runtime telemetry state built by options(): the -events file (nil
	// when unused) and the -telemetry-addr server (nil when unused).
	eventsFile *os.File
	server     *obs.TelemetryServer
}

// addCommonFlags registers the run/report flag set on fs.
func addCommonFlags(fs *flag.FlagSet) *commonFlags {
	return &commonFlags{
		scale:        fs.String("scale", "default", "small, default, medium, large or xlarge"),
		seed:         fs.Int64("seed", 1, "generation seed"),
		tests:        fs.Int("tests", 0, "NDT corpus size override"),
		workers:      fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker count"),
		pipeline:     fs.Int("pipeline", 0, "streamed chunk-pipeline reorder window, 0 = per-chunk barrier"),
		genWorkers:   fs.Int("genworkers", runtime.GOMAXPROCS(0), "world-generation worker count"),
		corpusFormat: fs.String("corpus-format", "", "corpus file format: ndjson or columnar (write default ndjson; read default auto-detect)"),
		faults:       fs.String("faults", "off", "fault-injection profile: off, light, moderate or heavy"),
		faultSeed:    fs.Int64("faultseed", 0, "fault-injection seed (0 = generation seed)"),
		metrics:      fs.Bool("metrics", false, "print phase spans and pipeline metrics to stderr"),
		metricsJSON:  fs.String("metrics-json", "", "write the metrics registry dump to this file as JSON"),

		events:        fs.String("events", "", "write the progress event stream to this file as NDJSON"),
		progress:      fs.Bool("progress", false, "render live progress events to stderr"),
		traceOut:      fs.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable)"),
		telemetryAddr: fs.String("telemetry-addr", "", "serve /metrics, /spans, /series, /trace and /debug/pprof on this address while running"),
		linger:        fs.Duration("telemetry-linger", 0, "keep the -telemetry-addr endpoint up this long after the run completes"),
	}
}

// validateWorkers rejects non-positive worker counts with a usage-style
// error naming the flag, instead of silently clamping (a -parallel 0
// passed by a wrapper script is a bug worth surfacing, not a request
// for serial execution).
func validateWorkers(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("-%s must be >= 1 (got %d)", flagName, n)
	}
	return nil
}

// options assembles the experiment Options from the parsed flags,
// attaching a fresh obs registry when metrics were requested (nil
// otherwise, which disables instrumentation throughout the pipeline).
func (cf *commonFlags) options() (experiments.Options, *obs.Registry, error) {
	opts, err := scaleOptions(*cf.scale)
	if err != nil {
		return experiments.Options{}, nil, err
	}
	if err := validateWorkers("parallel", *cf.workers); err != nil {
		return experiments.Options{}, nil, err
	}
	if err := validateWorkers("genworkers", *cf.genWorkers); err != nil {
		return experiments.Options{}, nil, err
	}
	if *cf.pipeline < 0 {
		return experiments.Options{}, nil, fmt.Errorf("-pipeline must be >= 0 (got %d)", *cf.pipeline)
	}
	switch *cf.corpusFormat {
	case "", "auto", "ndjson", "columnar":
	default:
		return experiments.Options{}, nil, fmt.Errorf("invalid -corpus-format %q (valid: ndjson, columnar)", *cf.corpusFormat)
	}
	prof, err := faults.ByName(*cf.faults)
	if err != nil {
		return experiments.Options{}, nil, err
	}
	opts.Topo.Seed = *cf.seed
	opts.Topo.Workers = *cf.genWorkers
	if *cf.tests > 0 {
		opts.Collect.Tests = *cf.tests
	}
	opts.Collect.Faults = prof
	opts.Collect.FaultSeed = *cf.faultSeed
	opts.Collect.PipelineChunks = *cf.pipeline
	opts.Workers = *cf.workers
	var reg *obs.Registry
	if *cf.metrics || *cf.metricsJSON != "" || *cf.events != "" || *cf.progress ||
		*cf.traceOut != "" || *cf.telemetryAddr != "" {
		reg = obs.NewRegistry()
		opts.Obs = reg
		// The simulated-clock sampler rides every instrumented run: one
		// point per simulated hour, skipping the per-shard and pipeline
		// plumbing gauges whose cardinality would drown a dashboard.
		reg.EnableTimeSeries(0, 0, func(name string) bool {
			return !strings.HasPrefix(name, "collect.shard.") && !strings.HasPrefix(name, "pipeline.")
		})
		if *cf.events != "" || *cf.progress {
			bus := reg.EnableEvents(4096)
			if *cf.events != "" {
				f, err := os.Create(*cf.events)
				if err != nil {
					return experiments.Options{}, nil, err
				}
				cf.eventsFile = f
				bus.AddSink(obs.NewNDJSONSink(f))
			}
			if *cf.progress {
				bus.AddSink(obs.NewProgressSink(os.Stderr, 0))
			}
		}
		if *cf.telemetryAddr != "" {
			srv, err := reg.ServeTelemetry(*cf.telemetryAddr)
			if err != nil {
				return experiments.Options{}, nil, err
			}
			cf.server = srv
			fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/ (metrics, spans, series, trace, pprof)\n", srv.Addr())
		}
	}
	return opts, reg, nil
}

// emitMetrics finishes the telemetry for a successful run: it publishes
// the terminal campaign.done event, drains and closes the event bus (so
// the -events NDJSON stream is complete before the file is sealed),
// renders the registry per the flags — the human summary to stderr
// (-metrics), the JSON dump to a file (-metrics-json), the Chrome trace
// to a file (-trace-out) — and finally lets the -telemetry-addr
// endpoint linger for scrapes before shutting it down. stdout is never
// touched, so experiment output stays byte-identical.
func (cf *commonFlags) emitMetrics(reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	if bus := reg.Events(); bus != nil {
		bus.Publish("campaign.done", "", -1, 1)
		bus.Close()
	}
	if *cf.metrics {
		fmt.Fprint(os.Stderr, reg.Summary())
	}
	if *cf.metricsJSON != "" {
		if err := writeFileWith(*cf.metricsJSON, reg.WriteJSON); err != nil {
			return err
		}
	}
	if *cf.traceOut != "" {
		if err := writeFileWith(*cf.traceOut, reg.WriteTrace); err != nil {
			return err
		}
	}
	if cf.eventsFile != nil {
		if err := cf.eventsFile.Close(); err != nil {
			return err
		}
	}
	if cf.server != nil {
		if *cf.linger > 0 {
			fmt.Fprintf(os.Stderr, "telemetry: lingering %s on http://%s/\n", *cf.linger, cf.server.Addr())
			time.Sleep(*cf.linger)
		}
		cf.server.Close()
	}
	return nil
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func reportCmd(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	cf := addCommonFlags(fs)
	streamed := fs.Bool("stream", false, "assemble the report through the bounded-memory chunked pipeline")
	corpusIn := fs.String("corpus", "", "report over a persisted corpus stream instead of collecting")
	corpusOut := fs.String("corpus-out", "", "persist the corpus to this file while collecting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, reg, err := cf.options()
	if err != nil {
		return err
	}
	var out string
	switch {
	case *corpusIn != "":
		if *corpusOut != "" {
			return fmt.Errorf("-corpus and -corpus-out are mutually exclusive (the stream already exists)")
		}
		out, err = reportFromCorpus(*corpusIn, *cf.corpusFormat, opts, reg)
	case *streamed:
		out, err = reportStreamed(opts, reg, *cf.scale, *corpusOut, *cf.corpusFormat)
	default:
		var sealCorpus func() error
		if *corpusOut != "" {
			sealCorpus = teeCorpus(*corpusOut, *cf.corpusFormat, &opts, *cf.scale)
		}
		var env *experiments.Env
		env, err = experiments.NewEnv(opts)
		if err == nil && sealCorpus != nil {
			err = sealCorpus()
		}
		if err == nil {
			sp := reg.Span("report")
			out = report.Build(env, report.DefaultConfig()).Render()
			sp.End()
		}
	}
	if err != nil {
		return err
	}
	fmt.Println(out)
	return cf.emitMetrics(reg)
}

// teeCorpus wires -corpus-out into an experiment environment: it
// installs opts.CorpusSink so the campaign is persisted chunk by chunk
// as it is collected — in the NDJSON stream or binary columnar format
// per -corpus-format — and returns the closer that seals the file's
// footer (call it once NewEnv succeeds; a file without a footer reads
// as truncated, which is the right outcome for a failed campaign).
func teeCorpus(path, format string, opts *experiments.Options, scale string) func() error {
	if format == "" || format == "auto" {
		format = "ndjson"
	}
	var f *os.File
	var sw export.CorpusWriter
	seed, tests, workers := opts.Topo.Seed, opts.Collect.Tests, opts.Workers
	opts.CorpusSink = func(w *topogen.World) (func(*platform.Chunk) error, error) {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return nil, err
		}
		sw, err = export.NewCorpusWriter(f, format, export.FromWorld(w, nil).Public,
			export.StreamMeta{Scale: scale, Seed: seed, Tests: tests}, workers)
		if err != nil {
			f.Close()
			return nil, err
		}
		return sw.WriteChunk, nil
	}
	return func() error {
		if sw == nil {
			return nil
		}
		if err := sw.Close(); err != nil {
			f.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "corpus: wrote %s (%d chunks, %d tests, %d traces)\n",
			path, sw.Footer().Chunks, sw.Footer().Tests, sw.Footer().Traces)
		return f.Close()
	}
}

// reportStreamed is `report -stream`: the two-pass chunked assembly
// over a live campaign, with the consumers of each pass fanned out on
// their own goroutines behind bounded channels. Pass 1 re-collects the
// deterministic stream for operator inference while (optionally)
// persisting it to corpusOut; pass 2 replays the identical stream with
// per-test aggregation, trace matching, and the bdrmap border
// accumulator overlapping. Peak memory is a few chunks plus the
// matcher's watermark window; the rendered report is byte-identical to
// the batch path at every -parallel/-pipeline value.
func reportStreamed(opts experiments.Options, reg *obs.Registry, scale, corpusOut, corpusFormat string) (string, error) {
	opts.Topo.Obs = reg
	opts.Collect.Obs = reg
	w, err := topogen.Generate(opts.Topo)
	if err != nil {
		return "", err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	mopts := export.FromWorld(w, nil).Lookups().MapItOpts()
	mopts.Workers = workers
	mopts.Obs = reg
	b := report.NewStreamBuilder(report.DefaultConfig(), report.MetroHourOf(), mopts)

	p1 := []stream.Stage[*platform.Chunk]{{
		Name: "mapit",
		Fn:   func(c *platform.Chunk) error { b.AddTraces(c.Traces); return nil },
	}}
	var seal func() error
	if corpusOut != "" {
		eo := opts
		seal = teeCorpus(corpusOut, corpusFormat, &eo, scale)
		tee, err := eo.CorpusSink(w)
		if err != nil {
			return "", err
		}
		p1 = append(p1, stream.Stage[*platform.Chunk]{Name: "export", Fn: tee})
	}
	pipe := stream.NewPipeline("pass1", pipelineDepth, reg, p1...)
	_, cErr := platform.CollectStream(w, opts.Collect, workers, pipe.Send)
	if err := pipe.Close(); cErr == nil {
		cErr = err
	}
	if cErr != nil {
		return "", cErr
	}
	if seal != nil {
		if err := seal(); err != nil {
			return "", err
		}
	}
	inf := b.FinishInference()

	// The border accumulator shares the sealed inference; its result
	// surfaces through gauges only, so stdout stays byte-identical to
	// the batch report.
	acc := bdrmapAccumulator(w, inf, mopts)
	pipe = stream.NewPipeline("pass2", pipelineDepth, reg,
		stream.Stage[*platform.Chunk]{Name: "aggregate",
			Fn: func(c *platform.Chunk) error { b.AddTests(c.Tests); return nil }},
		stream.Stage[*platform.Chunk]{Name: "match",
			Fn: func(c *platform.Chunk) error { b.AddMatch(c.Tests, c.Traces, c.Watermark); return nil }},
		stream.Stage[*platform.Chunk]{Name: "bdrmap",
			Fn: func(c *platform.Chunk) error { acc.Add(c.Traces); return nil }},
	)
	st, cErr := platform.CollectStream(w, opts.Collect, workers, pipe.Send)
	if err := pipe.Close(); cErr == nil {
		cErr = err
	}
	if cErr != nil {
		return "", cErr
	}
	if reg != nil {
		reg.Gauge("bdrmap.neighbors").Set(int64(len(acc.Result().Borders)))
	}
	sp := reg.Span("report")
	out := b.Finish(st.Completeness).Render()
	sp.End()
	return out, nil
}

// bdrmapAccumulator arms a border accumulator over the streamed
// campaign's inference from the M-Lab host networks' point of view —
// the VP-side org whose interconnects the paper's border analysis
// cares about.
func bdrmapAccumulator(w *topogen.World, inf *mapit.Inference, mopts mapit.Opts) *bdrmap.BorderAccumulator {
	seen := map[topology.ASN]bool{}
	var org []topology.ASN
	for _, srv := range w.MLabServers() {
		if asn, ok := w.Topo.OriginOf(srv.Endpoint.Addr); ok && !seen[asn] {
			seen[asn] = true
			org = append(org, asn)
		}
	}
	az := bdrmap.NewAnalyzerFromInference(inf, bdrmap.Opts{OrgASNs: org, MapIt: mopts})
	return az.NewBorderAccumulator()
}

// reportFromCorpus is `report -corpus FILE`: the same two-pass chunked
// assembly, but replaying a persisted corpus instead of collecting —
// no world is generated; the header's public bundle supplies the
// MAP-IT lookups, the static metro table supplies local hours, and the
// footer supplies the completeness ledger. The file format is
// auto-detected (NDJSON stream or binary columnar corpus) unless
// corpusFormat names one, in which case that format is required. Chunk
// decoding runs on -parallel workers, and pass 2's consumers overlap
// on a pipeline. Pass 1 only needs traces, so on a columnar corpus it
// opens with a traces-only projection and never parses a test stripe —
// the bulk of the reload win.
func reportFromCorpus(path, corpusFormat string, opts experiments.Options, reg *obs.Registry) (string, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// pass replays the whole corpus, a few decoded chunks resident at a
	// time: onHeader sees the parsed header before any chunk, fn sees
	// every chunk, and the returned reader carries the footer.
	pass := func(proj export.Projection, onHeader func(export.CorpusReader), fn func(*export.StreamChunk) error) (export.CorpusReader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var cr export.CorpusReader
		switch corpusFormat {
		case "ndjson":
			cr, err = export.OpenStreamWorkers(f, workers)
		case "columnar":
			cr, err = export.OpenColumnarProjected(f, workers, proj)
		default: // "" / "auto"
			cr, err = export.OpenCorpusProjected(f, workers, proj)
		}
		if err != nil {
			return nil, err
		}
		defer cr.Close()
		if onHeader != nil {
			onHeader(cr)
		}
		for {
			c, err := cr.Next()
			if err == io.EOF {
				return cr, nil
			}
			if err != nil {
				return nil, err
			}
			if err := fn(c); err != nil {
				return nil, err
			}
		}
	}

	// Pass 1: operator inference, with the builder armed from the
	// header's public bundle (the corpus's replacement for the world).
	var b *report.StreamBuilder
	if _, err := pass(export.Projection{Traces: true}, func(cr export.CorpusReader) {
		mopts := (&export.Dataset{Public: *cr.Public()}).Lookups().MapItOpts()
		mopts.Workers = workers
		mopts.Obs = reg
		b = report.NewStreamBuilder(report.DefaultConfig(), report.MetroHourOf(), mopts)
	}, func(c *export.StreamChunk) error {
		b.AddTraces(c.Traces)
		return nil
	}); err != nil {
		return "", err
	}
	b.FinishInference()

	// Pass 2: per-test aggregation and matching overlap on their own
	// goroutines, then the footer's campaign ledger closes the report.
	pipe := stream.NewPipeline("pass2", pipelineDepth, reg,
		stream.Stage[*export.StreamChunk]{Name: "aggregate",
			Fn: func(c *export.StreamChunk) error { b.AddTests(c.Tests); return nil }},
		stream.Stage[*export.StreamChunk]{Name: "match",
			Fn: func(c *export.StreamChunk) error { b.AddMatch(c.Tests, c.Traces, c.Watermark); return nil }},
	)
	sr, err := pass(export.EverythingProjection(), nil, pipe.Send)
	if cErr := pipe.Close(); err == nil {
		err = cErr
	}
	if err != nil {
		return "", err
	}
	sp := reg.Span("report")
	out := b.Finish(sr.Footer().Completeness).Render()
	sp.End()
	return out, nil
}

func runCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("run requires an experiment name (try 'tputlab list')")
	}
	name := args[0]
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cf := addCommonFlags(fs)
	asJSON := fs.Bool("json", false, "emit the result struct as JSON instead of a table")
	corpusOut := fs.String("corpus-out", "", "persist the corpus to this file while collecting")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opts, reg, err := cf.options()
	if err != nil {
		return err
	}
	var sealCorpus func() error
	if *corpusOut != "" {
		sealCorpus = teeCorpus(*corpusOut, *cf.corpusFormat, &opts, *cf.scale)
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating world (scale=%s seed=%d parallel=%d)...\n", *cf.scale, *cf.seed, *cf.workers)
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return err
	}
	if sealCorpus != nil {
		if err := sealCorpus(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "world: %s\n", env.World.Topo.CollectStats())
	fmt.Fprintf(os.Stderr, "platforms: %d M-Lab servers, %d Speedtest servers; corpus: %d tests, %d traces (%.1fs)\n",
		len(env.World.MLabServers()), len(env.World.Speedtest),
		len(env.Corpus.Tests), len(env.Corpus.Traces), time.Since(start).Seconds())

	if name == "all" {
		out, stats, err := experiments.RunParallel(env, *cf.workers)
		fmt.Print(out)
		fmt.Fprint(os.Stderr, stats.Summary())
		if err != nil {
			return err
		}
		return cf.emitMetrics(reg)
	}
	entry, ok := experiments.Find(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try 'tputlab list')", name)
	}
	sp := reg.Span("experiments")
	child := sp.Child(entry.Name)
	res, err := entry.Run(env)
	child.End()
	sp.End()
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		return cf.emitMetrics(reg)
	}
	fmt.Println(res.Render())
	return cf.emitMetrics(reg)
}
