package stats_test

import (
	"fmt"

	"throughputlab/internal/stats"
)

// Hour-of-day binning, the aggregation behind every diurnal analysis
// in the paper.
func ExampleHourBins() {
	var b stats.HourBins
	for i := 0; i < 10; i++ {
		b.Add(21.5, 1.0)  // peak-hour tests: collapsed throughput
		b.Add(10.2, 48.0) // off-peak tests: near plan rate
	}
	med := b.Medians()
	fmt.Printf("21h median %.1f Mbps over %d samples\n", med[21], b.Counts()[21])
	fmt.Printf("10h median %.1f Mbps over %d samples\n", med[10], b.Counts()[10])
	// Output:
	// 21h median 1.0 Mbps over 10 samples
	// 10h median 48.0 Mbps over 10 samples
}
