package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Chrome trace_event export: the span tree serialized as a JSON
// document loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Every span becomes one complete ("X") event with microsecond
// timestamps relative to the earliest root span; spans that overlap in
// wall time — concurrent Child spans from worker pools, pipeline stage
// lifetimes — are spread across synthetic "lanes" (trace tids) so the
// viewer renders them side by side instead of as corrupted nesting.
//
// Lane assignment: a span prefers its parent's lane and takes it when
// it does not overlap the sibling placed there before it (sequential
// phases collapse onto one track, exactly like the stderr summary
// tree); overlapping siblings spill to the first lane whose latest
// event ends before they start, or a fresh lane. The assignment is
// greedy and exists purely for rendering — timestamps and durations
// are the measured values either way.

// traceEvent is one trace_event entry (the subset Perfetto needs).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the emitted document.
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// spanNode is a locked copy of one span subtree with absolute times.
type spanNode struct {
	name       string
	start, end time.Time
	children   []spanNode
}

// snapshotSpan copies one span subtree under the span mutex; unended
// spans are clamped to now, so a live export (the telemetry endpoint)
// shows in-progress phases up to the present.
func snapshotSpan(s *Span, now time.Time) spanNode {
	s.mu.Lock()
	n := spanNode{name: s.name, start: s.start}
	if s.ended {
		n.end = s.start.Add(s.dur)
	} else {
		n.end = now
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.children = append(n.children, snapshotSpan(c, now))
	}
	return n
}

// lanes is the greedy lane allocator: one busy-until cursor per lane.
type lanes struct{ maxEnd []int64 }

// spill finds a lane free at start (its latest event ended by then) or
// opens a new one, and marks it busy through end.
func (l *lanes) spill(start, end int64) int {
	for i, e := range l.maxEnd {
		if e <= start {
			l.maxEnd[i] = end
			return i
		}
	}
	l.maxEnd = append(l.maxEnd, end)
	return len(l.maxEnd) - 1
}

// WriteTrace serializes the registry's span tree (complete and
// in-progress spans alike) as Chrome trace_event JSON. On a nil
// registry it writes an empty, still-loadable document.
func (r *Registry) WriteTrace(w io.Writer) error {
	doc := traceDoc{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "tputlab"},
	}}}
	if r != nil {
		now := time.Now()
		r.spanMu.Lock()
		roots := append([]*Span(nil), r.roots...)
		r.spanMu.Unlock()
		nodes := make([]spanNode, 0, len(roots))
		for _, s := range roots {
			nodes = append(nodes, snapshotSpan(s, now))
		}
		if len(nodes) > 0 {
			epoch := nodes[0].start
			for _, n := range nodes[1:] {
				if n.start.Before(epoch) {
					epoch = n.start
				}
			}
			la := &lanes{}
			for _, n := range nodes {
				emitSpanEvents(&doc.TraceEvents, n, epoch, la, -1, nil)
			}
		}
	}
	// Stable output: events sorted by (ts, tid, name) so identical span
	// trees serialize identically regardless of map/emit order.
	evs := doc.TraceEvents[1:]
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		if evs[i].Tid != evs[j].Tid {
			return evs[i].Tid < evs[j].Tid
		}
		return evs[i].Name < evs[j].Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// emitSpanEvents appends the "X" event for n and, recursively, its
// children. parentLane is the lane the parent occupies (-1 for roots);
// cursor tracks, per recursion level, when the previously placed
// sibling on the parent's lane ends.
func emitSpanEvents(out *[]traceEvent, n spanNode, epoch time.Time, la *lanes, parentLane int, cursor *int64) {
	start := n.start.Sub(epoch).Microseconds()
	end := n.end.Sub(epoch).Microseconds()
	if end < start {
		end = start
	}
	lane := -1
	if parentLane >= 0 && cursor != nil && start >= *cursor {
		// Fits after the previous sibling on the parent's track:
		// renders as proper nesting inside the parent event.
		lane = parentLane
		*cursor = end
	} else {
		lane = la.spill(start, end)
	}
	*out = append(*out, traceEvent{
		Name: n.name, Ph: "X", Ts: start, Dur: end - start,
		Pid: 1, Tid: lane, Cat: "phase",
	})
	var childCursor = start
	for _, c := range n.children {
		emitSpanEvents(out, c, epoch, la, lane, &childCursor)
	}
}
