package tomo_test

import (
	"fmt"

	"throughputlab/internal/tomo"
)

// Localizing a congested link from end-to-end verdicts plus path data:
// the good path through "shared" exonerates it, so the blame lands on
// the only remaining explanation.
func ExampleSmallestFailureSet() {
	obs := []tomo.Observation[string]{
		{Links: []string{"shared", "to-a"}, Bad: true},
		{Links: []string{"shared", "to-b"}, Bad: false},
		{Links: []string{"shared", "to-a", "a-leaf"}, Bad: true},
	}
	res := tomo.SmallestFailureSet(obs)
	fmt.Println(res.Bad, res.Consistent)
	// Output: [to-a] true
}

// Without path data, the M-Lab-style method can only flag endpoint
// pairs — even when the congested link is beyond the pair's adjacency.
func ExampleSimplifiedASLevel() {
	obs := []tomo.ASObservation{
		{ServerOrg: "GTT", ClientOrg: "AT&T", Bad: true},
		{ServerOrg: "GTT", ClientOrg: "AT&T", Bad: true},
		{ServerOrg: "GTT", ClientOrg: "Comcast", Bad: false},
		{ServerOrg: "GTT", ClientOrg: "Comcast", Bad: false},
	}
	for _, v := range tomo.SimplifiedASLevel(obs, 0.5, 2) {
		fmt.Printf("%s-%s congested=%v\n", v.ServerOrg, v.ClientOrg, v.Congested)
	}
	// Output:
	// GTT-AT&T congested=true
	// GTT-Comcast congested=false
}
