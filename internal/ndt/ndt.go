// Package ndt models the Network Diagnostic Test: a short bulk TCP
// transfer in each direction between a client and an M-Lab server,
// logging throughput, flow RTT and retransmission rate (§2.1). Each
// simulated test also records the ground-truth bottleneck so that
// inference quality can be scored — real NDT has no such field, and
// that gap is much of what the paper is about.
package ndt

import (
	"math/rand"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/netsim"
	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/web100"
)

// ndtDurationSec is NDT's per-direction transfer length.
const ndtDurationSec = 10

// Test is one NDT measurement record.
type Test struct {
	ID int

	// Client side (addresses are what the platform logs; ISP/metro are
	// ground-truth labels used only for scoring and stratified
	// reporting).
	ClientAddr  netaddr.Addr
	ClientASN   topology.ASN
	ClientISP   string
	ClientMetro string
	// TierMbps and WiFiCapMbps are ground truth the platform cannot see
	// (§6.1: service tier and home-network state are opaque).
	TierMbps    float64
	WiFiCapMbps float64

	// Server side.
	ServerAddr  netaddr.Addr
	ServerASN   topology.ASN
	ServerSite  string // e.g. "atl01.gtt"
	ServerNet   string // hosting network name, e.g. "GTT"
	ServerMetro string

	// StartMinute is the simulation time (minutes since month start,
	// UTC).
	StartMinute int
	// FlowEntropy identifies the TCP flow for ECMP purposes.
	FlowEntropy uint32

	// Measured values.
	DownMbps float64
	UpMbps   float64
	// RTTms is the mean flow RTT over the transfer (includes the flow's
	// own standing queue); RTTMinMs is the minimum RTT, seen by the
	// first packets before any self-induced queueing. NDT logs both,
	// and their ratio is the input to TCP congestion signatures [37].
	RTTms       float64
	RTTMinMs    float64
	RetransRate float64
	// Web100 is the server-side TCP counter snapshot for the download
	// direction (§2.1), synthesized consistently with the fields above.
	Web100 web100.Snapshot
	// Truncated marks a test cut off mid-transfer by the fault layer:
	// DownMbps is the partial-snapshot estimate and Web100 is
	// incomplete. Degradation-aware consumers (matching, signatures,
	// the report) exclude such records instead of letting them skew
	// aggregates. Clean collection never sets it.
	Truncated bool

	// Ground truth for scoring (not visible to inference).
	TruthKind       netsim.BottleneckKind
	TruthSaturated  bool
	TruthBottleneck topology.LinkID // 0 when bottleneck is not a link
	TruthInterLinks []topology.LinkID
	TruthASPath     []topology.ASN
}

// Runner executes NDT tests against a generated world.
type Runner struct {
	w *topogen.World
	// NoiseSigma is per-test multiplicative measurement noise.
	NoiseSigma float64
}

// NewRunner builds a Runner with default noise.
func NewRunner(w *topogen.World) *Runner {
	return &Runner{w: w, NoiseSigma: 0.10}
}

// Run performs one NDT test from client to server at the given minute.
func (r *Runner) Run(id int, client routing.Endpoint, clientISP string, tierMbps, wifiCap float64,
	server topogen.Host, minute int, entropy uint32, rng *rand.Rand) (*Test, error) {

	key := routing.FlowKey(server.Endpoint.Addr, client.Addr, entropy)
	down, err := r.w.Resolver.Resolve(server.Endpoint, client, key)
	if err != nil {
		return nil, err
	}
	upKey := routing.FlowKey(client.Addr, server.Endpoint.Addr, entropy)
	up, err := r.w.Resolver.Resolve(client, server.Endpoint, upKey)
	if err != nil {
		return nil, err
	}

	dres := r.w.Model.BulkFlow(down, minute, netsim.FlowOpts{
		TierMbps: tierMbps, WiFiCapMbps: wifiCap, NoiseSigma: r.NoiseSigma,
	}, rng)
	// Upstream plans are typically ~10x slower; Wi-Fi caps apply too.
	ures := r.w.Model.BulkFlow(up, minute, netsim.FlowOpts{
		TierMbps: tierMbps / 10, WiFiCapMbps: wifiCap, NoiseSigma: r.NoiseSigma,
	}, rng)

	test := &Test{
		ID:          id,
		ClientAddr:  client.Addr,
		ClientASN:   client.ASN,
		ClientISP:   clientISP,
		ClientMetro: client.Metro,
		TierMbps:    tierMbps,
		WiFiCapMbps: wifiCap,

		ServerAddr:  server.Endpoint.Addr,
		ServerASN:   server.Endpoint.ASN,
		ServerSite:  siteOf(server.Name),
		ServerNet:   server.Network,
		ServerMetro: server.Endpoint.Metro,

		StartMinute: minute,
		FlowEntropy: entropy,

		DownMbps:    dres.ThroughputMbps,
		UpMbps:      ures.ThroughputMbps,
		RTTms:       dres.RTTms,
		RTTMinMs:    dres.StartRTTms,
		RetransRate: dres.LossRate,
		Web100:      web100.Synthesize(dres, ndtDurationSec, rng),

		TruthKind:      dres.Kind,
		TruthSaturated: dres.BottleneckSaturated,
		TruthASPath:    down.ASPath,
	}
	if dres.Bottleneck != nil {
		test.TruthBottleneck = dres.Bottleneck.ID
	}
	// Collect interdomain link IDs directly (counting first) rather
	// than materializing the *Link slice InterdomainLinks would build.
	n := 0
	for _, l := range down.Links {
		if l.Kind == topology.LinkInterdomain {
			n++
		}
	}
	if n > 0 {
		test.TruthInterLinks = make([]topology.LinkID, 0, n)
		for _, l := range down.Links {
			if l.Kind == topology.LinkInterdomain {
				test.TruthInterLinks = append(test.TruthInterLinks, l.ID)
			}
		}
	}
	return test, nil
}

// Truncate rewrites the test as the record a mid-transfer cut leaves
// behind after frac of the transfer: the headline throughput becomes
// the partial-snapshot estimate and the web100 counters cover only the
// delivered prefix (Web100.Complete turns false).
func (t *Test) Truncate(frac float64) {
	t.Truncated = true
	t.DownMbps = netsim.PartialThroughput(t.DownMbps, frac)
	t.Web100.Truncate(frac)
}

// siteOf recovers the site name from a server name like
// "ndt-atl01.gtt-2".
func siteOf(serverName string) string {
	const prefix = "ndt-"
	s := serverName
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		s = s[len(prefix):]
	}
	// Strip the trailing "-<n>".
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '-' {
			return s[:i]
		}
	}
	return s
}
