// Package placement turns the paper's §7 recommendation — "strategic
// deployment of server infrastructure to maximize coverage" — into an
// algorithm, and quantifies how far the latency-first placement that
// M-Lab actually uses (§2: minimize RTT to clients) falls short of it.
//
// A candidate slot is a (host network, metro) pair that could host a
// measurement server. A slot "covers" an interconnection of an access
// ISP when a test from a client/VP in that ISP toward a server in the
// slot would traverse it. Maximizing the number of covered (ISP, peer)
// interconnections under a server budget is weighted set cover; the
// standard greedy algorithm gives the (1−1/e) approximation.
package placement

import (
	"sort"

	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

// Candidate is one feasible server slot.
type Candidate struct {
	Network string
	ASN     topology.ASN
	Metro   string
	// Endpoint is a host attached in the slot (used to resolve paths).
	Endpoint routing.Endpoint
}

// Candidates enumerates feasible slots: every metro of every transit
// network, plus regional/hosting networks (one slot per presence
// metro). Access ISPs themselves are excluded — a server inside the
// measured ISP observes none of its interconnections.
func Candidates(w *topogen.World) []Candidate {
	var out []Candidate
	for _, asn := range w.Topo.ASNs() {
		as := w.Topo.AS(asn)
		if as.Type == topology.ASTypeAccess || as.Type == topology.ASTypeIXP {
			continue
		}
		// Stubs other than hosting-capable ones are unrealistic hosts;
		// keep the roster manageable: transit + content + every 10th
		// stub (hosting companies).
		if as.Type == topology.ASTypeStub && asn%10 != 0 {
			continue
		}
		for _, metro := range as.Metros {
			core := coreAt(w, asn, metro)
			if core == nil {
				continue
			}
			out = append(out, Candidate{
				Network: as.Name, ASN: asn, Metro: metro,
				Endpoint: routing.Endpoint{
					Addr: standIn(core), ASN: asn, Metro: metro, Router: core.ID,
				},
			})
		}
	}
	return out
}

func coreAt(w *topogen.World, asn topology.ASN, metro string) *topology.Router {
	for _, r := range w.Topo.AS(asn).Routers {
		if r.Metro == metro && r.Kind == topology.RouterCore {
			return r
		}
	}
	for _, r := range w.Topo.AS(asn).Routers {
		if r.Metro == metro {
			return r
		}
	}
	return nil
}

// standIn returns an address usable for path resolution: the planner
// only needs flow-hash inputs, so the router's first interface address
// suffices as the hypothetical server's address.
func standIn(r *topology.Router) netaddr.Addr {
	for _, ifc := range r.Ifaces {
		if !ifc.Addr.IsZero() {
			return ifc.Addr
		}
	}
	return 0
}

// CoverKey identifies one AS-level interconnection of one access org.
type CoverKey struct {
	ISP      string
	Neighbor topology.ASN
}

// Matrix precomputes, for every candidate, the set of interconnections
// it would cover across the given vantage points.
type Matrix struct {
	Cands []Candidate
	// Covers[i] lists the keys candidate i covers.
	Covers [][]CoverKey
	// Universe is every coverable key (union over candidates) — the
	// reachable denominator.
	Universe map[CoverKey]bool
	// PeerUniverse restricts the universe to peer interconnections.
	PeerUniverse map[CoverKey]bool
}

// BuildMatrix resolves a path from every VP to every candidate and
// records the first interconnection out of the VP's network (ground
// truth — this is a planning tool run by someone who has bdrmap data).
func BuildMatrix(w *topogen.World, cands []Candidate) *Matrix {
	m := &Matrix{
		Cands:        cands,
		Covers:       make([][]CoverKey, len(cands)),
		Universe:     map[CoverKey]bool{},
		PeerUniverse: map[CoverKey]bool{},
	}
	for ci, c := range cands {
		seen := map[CoverKey]bool{}
		for _, vp := range w.ArkVPs {
			org := orgSet(w, vp.ISP)
			path, err := w.Resolver.Resolve(vp.Host.Endpoint, c.Endpoint,
				routing.FlowKey(vp.Host.Endpoint.Addr, c.Endpoint.Addr, 1))
			if err != nil {
				continue
			}
			for _, l := range path.InterdomainLinks() {
				var neighbor topology.ASN
				switch {
				case org[l.ASA()] && !org[l.ASB()]:
					neighbor = l.ASB()
				case org[l.ASB()] && !org[l.ASA()]:
					neighbor = l.ASA()
				default:
					continue
				}
				k := CoverKey{ISP: vp.ISP, Neighbor: neighbor}
				if seen[k] {
					continue
				}
				seen[k] = true
				m.Universe[k] = true
				if isPeer(w, vp.ISP, neighbor) {
					m.PeerUniverse[k] = true
				}
				m.Covers[ci] = append(m.Covers[ci], k)
				break // only the first crossing out of the VP network
			}
		}
	}
	return m
}

func orgSet(w *topogen.World, isp string) map[topology.ASN]bool {
	out := map[topology.ASN]bool{}
	for _, a := range w.Access[isp].Org.ASNs {
		out[a] = true
	}
	return out
}

func isPeer(w *topogen.World, isp string, n topology.ASN) bool {
	for _, o := range w.Access[isp].Org.ASNs {
		if w.Topo.RelOf(o, n) == topology.RelPeer {
			return true
		}
	}
	return false
}

// Plan is a chosen deployment and its coverage trajectory.
type Plan struct {
	Chosen []Candidate
	// CoveredAfter[i] is the number of covered keys after placing the
	// first i+1 servers.
	CoveredAfter []int
	// Universe is the coverable total under the same filter.
	Universe int
}

// Greedy picks k slots maximizing marginal coverage (peersOnly filters
// the objective to peer interconnections, the ones that matter for
// interdomain congestion per §5.2). Deterministic: ties break on the
// earlier candidate.
func (m *Matrix) Greedy(k int, peersOnly bool) Plan {
	keep := func(key CoverKey) bool {
		return !peersOnly || m.PeerUniverse[key]
	}
	universe := 0
	for key := range m.Universe {
		if keep(key) {
			universe++
		}
	}
	covered := map[CoverKey]bool{}
	used := make([]bool, len(m.Cands))
	plan := Plan{Universe: universe}
	for len(plan.Chosen) < k {
		best, bestGain := -1, 0
		for ci := range m.Cands {
			if used[ci] {
				continue
			}
			gain := 0
			for _, key := range m.Covers[ci] {
				if keep(key) && !covered[key] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = ci, gain
			}
		}
		if best < 0 {
			break // nothing adds coverage
		}
		used[best] = true
		for _, key := range m.Covers[best] {
			if keep(key) {
				covered[key] = true
			}
		}
		plan.Chosen = append(plan.Chosen, m.Cands[best])
		plan.CoveredAfter = append(plan.CoveredAfter, len(covered))
	}
	return plan
}

// LatencyFirst reproduces the latency-driven strategy (§2: place
// servers to minimize RTT to the client population): slots are ranked
// by population-weighted proximity, restricted to well-connected
// transit hosts, and coverage is whatever falls out.
func (m *Matrix) LatencyFirst(w *topogen.World, k int, peersOnly bool) Plan {
	type scored struct {
		ci   int
		cost float64
	}
	var list []scored
	for ci, c := range m.Cands {
		if w.Topo.AS(c.ASN).Type != topology.ASTypeTransit {
			continue
		}
		cm := w.Topo.MustMetro(c.Metro)
		cost := 0.0
		for _, metro := range w.Topo.Metros {
			cost += metro.Weight * geo.PropagationDelayMs(cm, metro)
		}
		list = append(list, scored{ci: ci, cost: cost})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].cost != list[j].cost {
			return list[i].cost < list[j].cost
		}
		return list[i].ci < list[j].ci
	})
	keep := func(key CoverKey) bool {
		return !peersOnly || m.PeerUniverse[key]
	}
	universe := 0
	for key := range m.Universe {
		if keep(key) {
			universe++
		}
	}
	covered := map[CoverKey]bool{}
	plan := Plan{Universe: universe}
	for _, s := range list {
		if len(plan.Chosen) == k {
			break
		}
		for _, key := range m.Covers[s.ci] {
			if keep(key) {
				covered[key] = true
			}
		}
		plan.Chosen = append(plan.Chosen, m.Cands[s.ci])
		plan.CoveredAfter = append(plan.CoveredAfter, len(covered))
	}
	return plan
}
