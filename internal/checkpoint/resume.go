package checkpoint

import (
	"fmt"
	"io"
	"os"
	"strings"

	"throughputlab/internal/export"
)

// Resume re-opens the partial corpus named by a manifest and returns a
// checkpointing writer positioned exactly after the last durable
// chunk, ready to keep appending. It refuses unless the current run's
// identity matches the manifest's fingerprint, then replays the
// durable prefix (feeding each chunk to onChunk so the caller can
// rebuild in-memory state), verifies its length and crc32c against the
// manifest, truncates any torn tail beyond the durable point, and
// splices a resumed corpus writer onto the end.
//
// fp is the current run's fingerprint with WorldCRC unset — Resume
// computes it from the regenerated world using the manifest's format.
// Collection must then be restarted with StartChunk =
// manifest.Durable.Chunks; determinism makes the appended suffix
// byte-identical to the chunks an uninterrupted run would have written.
func Resume(m *Manifest, public export.Public, meta export.StreamMeta, fp Fingerprint, workers int, opts Options, onChunk func(*export.StreamChunk) error) (*Writer, error) {
	worldCRC, err := export.HeaderFingerprint(m.Fingerprint.Format, public, meta)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	fp.WorldCRC = worldCRC
	fp.Format = m.Fingerprint.Format
	if diff := m.Fingerprint.Diff(fp); len(diff) > 0 {
		return nil, fmt.Errorf("checkpoint: refusing to resume: campaign identity mismatch:\n  %s", strings.Join(diff, "\n  "))
	}

	f, err := os.OpenFile(m.CorpusPartial, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening partial corpus: %w", err)
	}
	fail := func(err error) (*Writer, error) {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("checkpoint: partial corpus: %w", err))
	}
	if st.Size() < m.Durable.Bytes {
		return fail(fmt.Errorf("checkpoint: partial corpus %s is %d bytes, shorter than the %d-byte durable prefix the manifest records — the file was truncated after the last checkpoint",
			m.CorpusPartial, st.Size(), m.Durable.Bytes))
	}

	prefix, err := export.ReplayPrefix(f, m.Durable.Bytes, m.Durable.Chunks, workers, onChunk)
	if err != nil {
		return fail(fmt.Errorf("checkpoint: replaying durable prefix: %w", err))
	}
	if prefix.CRC != m.Durable.CRC32C {
		return fail(fmt.Errorf("checkpoint: durable prefix of %s is corrupt: crc32c %08x, manifest records %08x",
			m.CorpusPartial, prefix.CRC, m.Durable.CRC32C))
	}
	if prefix.Totals.Chunks != m.Durable.Chunks || prefix.Totals.Tests != m.Durable.Tests || prefix.Totals.Traces != m.Durable.Traces {
		return fail(fmt.Errorf("checkpoint: durable prefix of %s replayed to %d chunks / %d tests / %d traces, manifest records %d / %d / %d",
			m.CorpusPartial, prefix.Totals.Chunks, prefix.Totals.Tests, prefix.Totals.Traces,
			m.Durable.Chunks, m.Durable.Tests, m.Durable.Traces))
	}
	if prefix.Format != m.Fingerprint.Format {
		return fail(fmt.Errorf("checkpoint: partial corpus is %s, manifest records %s", prefix.Format, m.Fingerprint.Format))
	}

	// Drop any torn tail past the durable point — bytes a dying process
	// got into the page cache after the last checkpoint — and position
	// the append exactly at the boundary.
	if err := f.Truncate(m.Durable.Bytes); err != nil {
		return fail(fmt.Errorf("checkpoint: truncating torn tail: %w", err))
	}
	if _, err := f.Seek(m.Durable.Bytes, io.SeekStart); err != nil {
		return fail(fmt.Errorf("checkpoint: seeking to durable boundary: %w", err))
	}

	var sink io.Writer = f
	if opts.WrapWriter != nil {
		sink = opts.WrapWriter(f)
	}
	crc := &crcWriter{w: sink, n: m.Durable.Bytes, sum: m.Durable.CRC32C}
	cw, err := export.ResumeCorpusWriter(crc, prefix, workers)
	if err != nil {
		return fail(err)
	}
	return &Writer{
		f:     f,
		cw:    cw,
		crc:   crc,
		mpath: ManifestPath(m.CorpusFinal),
		every: opts.every(),
		m:     *m,
	}, nil
}
