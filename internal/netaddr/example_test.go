package netaddr_test

import (
	"fmt"

	"throughputlab/internal/netaddr"
)

// A longest-prefix-match table, as used for the CAIDA-style prefix→AS
// mapping.
func ExampleTable() {
	t := netaddr.NewTable[int]()
	t.Insert(netaddr.MustParsePrefix("10.0.0.0/8"), 3356)
	t.Insert(netaddr.MustParsePrefix("10.1.0.0/16"), 7922)
	asn, prefix, _ := t.Lookup(netaddr.MustParseAddr("10.1.2.3"))
	fmt.Println(asn, prefix)
	asn, prefix, _ = t.Lookup(netaddr.MustParseAddr("10.9.0.1"))
	fmt.Println(asn, prefix)
	// Output:
	// 7922 10.1.0.0/16
	// 3356 10.0.0.0/8
}
