package routing

import (
	"testing"

	"throughputlab/internal/topology"
)

// TestPathsLoopFree: no resolved path visits a router twice.
func TestPathsLoopFree(t *testing.T) {
	n := buildTestNet(t)
	clients := []Endpoint{n.clientATL, n.clientNYC, n.clientLAX}
	for _, cli := range clients {
		for entropy := uint64(0); entropy < 32; entropy++ {
			for _, pair := range [][2]Endpoint{{n.server, cli}, {cli, n.server}} {
				p, err := n.rv.Resolve(pair[0], pair[1], entropy)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[topology.RouterID]bool{}
				for _, h := range p.Hops {
					if seen[h.Router.ID] {
						t.Fatalf("router %d visited twice: %v", h.Router.ID, hopNames(p))
					}
					seen[h.Router.ID] = true
				}
			}
		}
	}
}

// TestLinksMatchHops: every non-first hop's InLink appears in Links,
// and interdomain links alternate with intra segments coherently:
// consecutive hops are endpoints of the connecting link.
func TestLinksMatchHops(t *testing.T) {
	n := buildTestNet(t)
	p, err := n.rv.Resolve(n.server, n.clientLAX, 5)
	if err != nil {
		t.Fatal(err)
	}
	inLinks := map[topology.LinkID]bool{}
	for _, h := range p.Hops[1:] {
		inLinks[h.InLink.ID] = true
		// The in-link must connect this router to the previous one.
		a, b := h.InLink.ASA(), h.InLink.ASB()
		if a != h.Router.AS && b != h.Router.AS {
			t.Fatalf("hop %s entered via link not touching its AS", h.Router.Name)
		}
	}
	for _, l := range p.Links {
		if l.Kind == topology.LinkAccessLine {
			continue
		}
		if !inLinks[l.ID] {
			t.Fatalf("link %d in Links but no hop entered through it", l.ID)
		}
	}
}

// TestASPathMatchesHopASes: the routers visited belong exactly to the
// ASes of the AS-level path, in order.
func TestASPathMatchesHopASes(t *testing.T) {
	n := buildTestNet(t)
	p, err := n.rv.Resolve(n.server, n.clientNYC, 9)
	if err != nil {
		t.Fatal(err)
	}
	var asSeq []topology.ASN
	for _, h := range p.Hops {
		if len(asSeq) == 0 || asSeq[len(asSeq)-1] != h.Router.AS {
			asSeq = append(asSeq, h.Router.AS)
		}
	}
	if len(asSeq) != len(p.ASPath) {
		t.Fatalf("hop AS sequence %v vs AS path %v", asSeq, p.ASPath)
	}
	for i := range asSeq {
		if asSeq[i] != p.ASPath[i] {
			t.Fatalf("hop AS sequence %v vs AS path %v", asSeq, p.ASPath)
		}
	}
}

// TestRTTSymmetry: base RTT is direction-independent for the same
// endpoints (propagation is symmetric; queueing asymmetry comes later
// in netsim).
func TestRTTSymmetry(t *testing.T) {
	n := buildTestNet(t)
	key := FlowKey(n.server.Addr, n.clientLAX.Addr, 1)
	down, err := n.rv.Resolve(n.server, n.clientLAX, key)
	if err != nil {
		t.Fatal(err)
	}
	up, err := n.rv.Resolve(n.clientLAX, n.server, key)
	if err != nil {
		t.Fatal(err)
	}
	d, u := n.rv.RTTms(down), n.rv.RTTms(up)
	if d <= 0 || u <= 0 {
		t.Fatal("non-positive RTT")
	}
	rel := (d - u) / d
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("asymmetric base RTT: down %.1f vs up %.1f", d, u)
	}
}

// TestResolveIsPure: resolving the same flow twice yields identical
// hop and link sequences (no hidden state).
func TestResolveIsPure(t *testing.T) {
	n := buildTestNet(t)
	for entropy := uint64(0); entropy < 16; entropy++ {
		p1, err := n.rv.Resolve(n.server, n.clientATL, entropy)
		if err != nil {
			t.Fatal(err)
		}
		p2, _ := n.rv.Resolve(n.server, n.clientATL, entropy)
		if len(p1.Hops) != len(p2.Hops) || len(p1.Links) != len(p2.Links) {
			t.Fatal("resolve not deterministic")
		}
		for i := range p1.Hops {
			if p1.Hops[i].Router.ID != p2.Hops[i].Router.ID {
				t.Fatal("hop mismatch across identical resolves")
			}
		}
		for i := range p1.Links {
			if p1.Links[i].ID != p2.Links[i].ID {
				t.Fatal("link mismatch across identical resolves")
			}
		}
	}
}
