package geo

// DelayMatrix is a precomputed metro-pair propagation-delay table.
// Path resolution scores every interdomain link candidate with two
// propagation delays and every hop of every RTT estimate with one, so
// at campaign scale the Haversine trigonometry in PropagationDelayMs
// dominates; the matrix computes each pair once and serves the exact
// same float64 afterwards, keeping cached and uncached resolution
// byte-identical.
type DelayMatrix struct {
	idx map[string]int
	n   int
	// d is the row-major n×n delay table; d[i*n+j] ==
	// PropagationDelayMs(metros[i], metros[j]).
	d []float64
}

// NewDelayMatrix builds the matrix over the given metros. Metro codes
// must be unique (the topology already guarantees this).
func NewDelayMatrix(metros []Metro) *DelayMatrix {
	n := len(metros)
	m := &DelayMatrix{
		idx: make(map[string]int, n),
		n:   n,
		d:   make([]float64, n*n),
	}
	for i, mt := range metros {
		m.idx[mt.Code] = i
	}
	for i := range metros {
		for j := range metros {
			m.d[i*n+j] = PropagationDelayMs(metros[i], metros[j])
		}
	}
	return m
}

// Len returns the number of metros covered.
func (m *DelayMatrix) Len() int { return m.n }

// Index returns the matrix index of a metro code.
func (m *DelayMatrix) Index(code string) (int, bool) {
	i, ok := m.idx[code]
	return i, ok
}

// At returns the one-way propagation delay between the metros at
// indices i and j, identical to PropagationDelayMs on the originals.
func (m *DelayMatrix) At(i, j int) float64 { return m.d[i*m.n+j] }
