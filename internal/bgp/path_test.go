package bgp

import (
	"math/rand"
	"reflect"
	"testing"

	"throughputlab/internal/topology"
)

// referencePath is the pre-optimization Path implementation: HasRoute
// then a NextHop walk, re-resolving both endpoints through the index
// maps at every step. AppendPath must return exactly this.
func referencePath(r *Routes, src, dst topology.ASN) []topology.ASN {
	if !r.HasRoute(src, dst) {
		return nil
	}
	path := []topology.ASN{src}
	cur := src
	for cur != dst {
		next, ok := r.NextHop(cur, dst)
		if !ok {
			return nil
		}
		path = append(path, next)
		cur = next
		if len(path) > maxDist {
			return nil
		}
	}
	return path
}

// TestPathMatchesReferenceWalk pins the single-walk Path against the
// NextHop reference on random hierarchies, including self-paths,
// unknown ASes, and the append-into-caller form.
func TestPathMatchesReferenceWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		tp := randomHierarchy(rng)
		r := Compute(tp)
		asns := tp.ASNs()
		for _, src := range asns {
			for _, dst := range asns {
				want := referencePath(r, src, dst)
				got := r.Path(src, dst)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: Path(%d,%d) = %v, want %v", trial, src, dst, got, want)
				}
				if want != nil {
					buf := make([]topology.ASN, 0, 8)
					appended := r.AppendPath(buf, src, dst)
					if !reflect.DeepEqual(appended, want) {
						t.Fatalf("trial %d: AppendPath(%d,%d) = %v, want %v", trial, src, dst, appended, want)
					}
				}
			}
		}
		// Unknown endpoints stay nil.
		if p := r.Path(asns[0], topology.ASN(999999)); p != nil {
			t.Fatalf("trial %d: path to unknown AS = %v", trial, p)
		}
		if p := r.Path(topology.ASN(999999), asns[0]); p != nil {
			t.Fatalf("trial %d: path from unknown AS = %v", trial, p)
		}
		// Self-path is the single-element path.
		if p := r.Path(asns[0], asns[0]); len(p) != 1 || p[0] != asns[0] {
			t.Fatalf("trial %d: self path = %v", trial, p)
		}
	}
}

// BenchmarkPath pins the allocation cost of Path: the distance table
// pre-sizes the slice, so each call is exactly one allocation.
func BenchmarkPath(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	asns := tp.ASNs()
	src, dst := asns[0], asns[len(asns)-1]
	if r.Path(src, dst) == nil {
		b.Fatal("no route between benchmark endpoints")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := r.Path(src, dst); len(p) == 0 {
			b.Fatal("empty path")
		}
	}
	b.StopTimer()
	// allocs/op is asserted by TestPathSingleAlloc; the benchmark keeps
	// the number visible in -bench output.
}

// TestPathSingleAlloc pins allocs/op for Path at one and AppendPath
// into spare capacity at zero.
func TestPathSingleAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	asns := tp.ASNs()
	src, dst := asns[0], asns[len(asns)-1]
	allocs := testing.AllocsPerRun(100, func() {
		if p := r.Path(src, dst); len(p) == 0 {
			t.Fatal("empty path")
		}
	})
	if allocs > 1 {
		t.Errorf("Path allocs/op = %.1f, want ≤ 1", allocs)
	}
	buf := make([]topology.ASN, 0, maxDist+1)
	allocs = testing.AllocsPerRun(100, func() {
		if p := r.AppendPath(buf[:0], src, dst); len(p) == 0 {
			t.Fatal("empty path")
		}
	})
	if allocs != 0 {
		t.Errorf("AppendPath into spare capacity allocs/op = %.1f, want 0", allocs)
	}
}
