// Columnar corpus decode: the read side of tputlab-corpus/2. Chunks
// decode into per-chunk slabs — one backing array per column family
// (tests, traces, hops, truth lists) instead of one allocation per
// row — and the column stripes write straight into the final structs,
// so nothing row-shaped is materialized in between. A Projection lets
// a pass that only needs one side of the corpus (report pass 1 reads
// traces only) skip the other side's stripes entirely: the bytes are
// never parsed and the slabs never allocated.
package export

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/netsim"
	"throughputlab/internal/platform"
	"throughputlab/internal/stream"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// Projection selects which column families a columnar reader decodes.
// The zero value decodes nothing useful; use EverythingProjection (or
// OpenColumnar, which defaults to it) for a full read.
type Projection struct {
	Tests  bool
	Traces bool
}

// EverythingProjection decodes both column families.
func EverythingProjection() Projection { return Projection{Tests: true, Traces: true} }

// colPreamble is the decoded chunk-frame preamble: everything the
// reader needs for ordering and footer cross-checks, independent of
// which stripes the projection decodes.
type colPreamble struct {
	chunk             int
	watermark         int
	testsWithoutTrace int
	completeness      platform.Completeness
	tests             int
	traces            int
	stripes           int
}

// decodeChunkPayload decodes one chunk frame payload into a
// StreamChunk, honoring the projection. Row counts are bounded against
// the payload size before any slab is allocated, so a hostile frame
// cannot force an allocation amplification past a small constant.
func decodeChunkPayload(payload []byte, proj Projection) (*StreamChunk, colPreamble, error) {
	r := &colReader{b: payload}
	pre, err := readPreamble(r)
	if err != nil {
		return nil, pre, err
	}
	if pre.tests > len(payload)/8+1 {
		return nil, pre, fmt.Errorf("chunk declares %d tests in a %d-byte payload", pre.tests, len(payload))
	}
	if pre.traces > len(payload)/4+1 {
		return nil, pre, fmt.Errorf("chunk declares %d traces in a %d-byte payload", pre.traces, len(payload))
	}
	if pre.stripes > len(payload)+1 {
		return nil, pre, fmt.Errorf("chunk declares %d stripes in a %d-byte payload", pre.stripes, len(payload))
	}

	c := &StreamChunk{
		Chunk:             pre.chunk,
		Watermark:         pre.watermark,
		TestsWithoutTrace: pre.testsWithoutTrace,
		Completeness:      pre.completeness,
	}
	d := &chunkDecoder{r: r, pre: pre, proj: proj}
	if proj.Tests {
		d.tests = make([]ndt.Test, pre.tests)
		c.Tests = make([]*ndt.Test, pre.tests)
		for i := range d.tests {
			c.Tests[i] = &d.tests[i]
		}
	}
	if proj.Traces {
		d.traces = make([]traceroute.Trace, pre.traces)
		c.Traces = make([]*traceroute.Trace, pre.traces)
		for i := range d.traces {
			c.Traces[i] = &d.traces[i]
		}
	}
	for s := 0; s < pre.stripes; s++ {
		st, err := readStripe(r)
		if err != nil {
			return nil, pre, err
		}
		if err := d.apply(st); err != nil {
			return nil, pre, fmt.Errorf("stripe %d (%s): %w", st.field, encName(st.enc), err)
		}
	}
	if r.remaining() != 0 {
		return nil, pre, fmt.Errorf("%d trailing bytes after last stripe", r.remaining())
	}
	if err := d.checkComplete(); err != nil {
		return nil, pre, err
	}
	return c, pre, nil
}

// readPreamble reads the 11-value preamble (chunk metadata, row
// counts, stripe count), with the checksum covering all of it.
func readPreamble(r *colReader) (colPreamble, error) {
	var p colPreamble
	start := r.off
	vals := [11]uint64{}
	for i := range vals {
		v, err := r.uvarint()
		if err != nil {
			return p, fmt.Errorf("preamble: %w", err)
		}
		vals[i] = v
	}
	end := r.off
	sum, err := r.take(4)
	if err != nil {
		return p, fmt.Errorf("preamble checksum: %w", err)
	}
	if got, want := crc32.Checksum(r.b[start:end], castagnoli), binary.LittleEndian.Uint32(sum); got != want {
		return p, fmt.Errorf("preamble checksum mismatch (%08x != %08x)", got, want)
	}
	p.chunk = int(vals[0])
	p.watermark = int(vals[1])
	p.testsWithoutTrace = int(vals[2])
	p.completeness = platform.Completeness{
		ScheduledTests: int(vals[3]), AbandonedTests: int(vals[4]),
		DroppedRows: int(vals[5]), TruncatedTests: int(vals[6]), DegradedTraces: int(vals[7]),
	}
	p.tests = int(vals[8])
	p.traces = int(vals[9])
	p.stripes = int(vals[10])
	if p.chunk < 0 || p.watermark < 0 || p.tests < 0 || p.traces < 0 || p.stripes < 0 {
		return p, fmt.Errorf("preamble value overflows int")
	}
	return p, nil
}

// chunkDecoder dispatches stripes into the chunk's slabs.
type chunkDecoder struct {
	r    *colReader
	pre  colPreamble
	proj Projection

	tests  []ndt.Test
	traces []traceroute.Trace
	hops   []traceroute.Hop

	seenTests  uint64
	seenTraces uint64
	hopsSized  bool
	interSized bool
	pathSized  bool
	interVals  []topology.LinkID
	pathVals   []topology.ASN
}

// apply decodes one stripe into its column, or skips it when the
// projection excludes its family (the checksum was still verified by
// readStripe, so a pruned read still detects corruption).
func (d *chunkDecoder) apply(st stripeHeader) error {
	if st.field < fTraceSrcAddr {
		if !d.proj.Tests {
			return nil
		}
		return d.applyTest(st)
	}
	if !d.proj.Traces {
		return nil
	}
	return d.applyTrace(st)
}

// mark records a stripe as seen, rejecting duplicates (a duplicated
// stripe would silently overwrite a column otherwise).
func mark(seen *uint64, bit uint) error {
	if *seen&(1<<bit) != 0 {
		return fmt.Errorf("duplicate stripe")
	}
	*seen |= 1 << bit
	return nil
}

func (d *chunkDecoder) applyTest(st stripeHeader) error {
	if st.field > uint64(numTestFields) {
		return nil // unknown test column from a newer writer: skip
	}
	if err := mark(&d.seenTests, uint(st.field)); err != nil {
		return err
	}
	n := len(d.tests)
	r := &colReader{b: st.body}
	var err error
	switch st.field {
	case fTestID:
		err = r.deltas(n, func(i int, v int64) { d.tests[i].ID = int(v) })
	case fTestClientAddr:
		err = r.uint32s(n, func(i int, v uint32) { d.tests[i].ClientAddr = netaddr.Addr(v) })
	case fTestClientASN:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].ClientASN = topology.ASN(v) })
	case fTestClientISP:
		err = r.stringDict(n, func(i int, s string) { d.tests[i].ClientISP = s })
	case fTestClientMetro:
		err = r.stringDict(n, func(i int, s string) { d.tests[i].ClientMetro = s })
	case fTestTierMbps:
		err = floatCol(r, st.enc, n, func(i int, v float64) { d.tests[i].TierMbps = v })
	case fTestWiFiCapMbps:
		err = floatCol(r, st.enc, n, func(i int, v float64) { d.tests[i].WiFiCapMbps = v })
	case fTestServerAddr:
		err = r.intDict(n, func(i int, v uint64) { d.tests[i].ServerAddr = netaddr.Addr(v) })
	case fTestServerASN:
		err = r.intDict(n, func(i int, v uint64) { d.tests[i].ServerASN = topology.ASN(v) })
	case fTestServerSite:
		err = r.stringDict(n, func(i int, s string) { d.tests[i].ServerSite = s })
	case fTestServerNet:
		err = r.stringDict(n, func(i int, s string) { d.tests[i].ServerNet = s })
	case fTestServerMetro:
		err = r.stringDict(n, func(i int, s string) { d.tests[i].ServerMetro = s })
	case fTestStartMinute:
		err = r.deltas(n, func(i int, v int64) { d.tests[i].StartMinute = int(v) })
	case fTestFlowEntropy:
		err = r.uint32s(n, func(i int, v uint32) { d.tests[i].FlowEntropy = v })
	case fTestDownMbps:
		err = r.floats(n, func(i int, v float64) { d.tests[i].DownMbps = v })
	case fTestUpMbps:
		err = r.floats(n, func(i int, v float64) { d.tests[i].UpMbps = v })
	case fTestRTTms:
		err = r.floats(n, func(i int, v float64) { d.tests[i].RTTms = v })
	case fTestRTTMinMs:
		err = r.floats(n, func(i int, v float64) { d.tests[i].RTTMinMs = v })
	case fTestRetransRate:
		err = r.floats(n, func(i int, v float64) { d.tests[i].RetransRate = v })
	case fTestW100DurationSec:
		err = floatCol(r, st.enc, n, func(i int, v float64) { d.tests[i].Web100.DurationSec = v })
	case fTestW100OctetsAcked:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].Web100.HCThruOctetsAcked = int64(v) })
	case fTestW100SegsOut:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].Web100.SegsOut = int64(v) })
	case fTestW100SegsRetrans:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].Web100.SegsRetrans = int64(v) })
	case fTestW100CongSignals:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].Web100.CongSignals = int(v) })
	case fTestW100MinRTTms:
		err = r.floats(n, func(i int, v float64) { d.tests[i].Web100.MinRTTms = v })
	case fTestW100SmoothedRTTms:
		err = r.floats(n, func(i int, v float64) { d.tests[i].Web100.SmoothedRTTms = v })
	case fTestW100CurCwndBytes:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].Web100.CurCwndBytes = int(v) })
	case fTestW100CwndFrac:
		err = floatCol(r, st.enc, n, func(i int, v float64) { d.tests[i].Web100.SndLimTimeCwndFrac = v })
	case fTestW100RwinFrac:
		err = floatCol(r, st.enc, n, func(i int, v float64) { d.tests[i].Web100.SndLimTimeRwinFrac = v })
	case fTestW100SenderFrac:
		err = floatCol(r, st.enc, n, func(i int, v float64) { d.tests[i].Web100.SndLimTimeSenderFrac = v })
	case fTestTruncated:
		err = r.bitmap(n, func(i int, v bool) { d.tests[i].Truncated = v })
	case fTestTruthKind:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].TruthKind = netsim.BottleneckKind(v) })
	case fTestTruthSaturated:
		err = r.bitmap(n, func(i int, v bool) { d.tests[i].TruthSaturated = v })
	case fTestTruthBottleneck:
		err = r.uvarints(n, func(i int, v uint64) { d.tests[i].TruthBottleneck = topology.LinkID(v) })
	case fTestTruthInterLens:
		var total uint64
		lens := make([]uint64, n)
		if err = r.uvarints(n, func(i int, v uint64) { lens[i] = v; total += v }); err != nil {
			break
		}
		if total > uint64(len(d.r.b)) {
			err = fmt.Errorf("list lengths total %d exceeds payload", total)
			break
		}
		d.interVals = make([]topology.LinkID, total)
		off := 0
		for i, l := range lens {
			if l > 0 {
				d.tests[i].TruthInterLinks = d.interVals[off : off+int(l) : off+int(l)]
				off += int(l)
			}
		}
		d.interSized = true
	case fTestTruthInterVals:
		if !d.interSized {
			err = fmt.Errorf("list values before lengths stripe")
			break
		}
		err = r.uvarints(len(d.interVals), func(i int, v uint64) { d.interVals[i] = topology.LinkID(v) })
	case fTestTruthASPathLens:
		var total uint64
		lens := make([]uint64, n)
		if err = r.uvarints(n, func(i int, v uint64) { lens[i] = v; total += v }); err != nil {
			break
		}
		if total > uint64(len(d.r.b)) {
			err = fmt.Errorf("list lengths total %d exceeds payload", total)
			break
		}
		d.pathVals = make([]topology.ASN, total)
		off := 0
		for i, l := range lens {
			if l > 0 {
				d.tests[i].TruthASPath = d.pathVals[off : off+int(l) : off+int(l)]
				off += int(l)
			}
		}
		d.pathSized = true
	case fTestTruthASPathVals:
		if !d.pathSized {
			err = fmt.Errorf("list values before lengths stripe")
			break
		}
		err = r.uvarints(len(d.pathVals), func(i int, v uint64) { d.pathVals[i] = topology.ASN(v) })
	}
	if err != nil {
		return err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing bytes in stripe", r.remaining())
	}
	return nil
}

// floatCol decodes a float column that the writer encoded adaptively
// (raw image or float dictionary, per the stripe's encoding byte).
func floatCol(r *colReader, enc byte, n int, fn func(i int, v float64)) error {
	switch enc {
	case encRaw:
		return r.floats(n, fn)
	case encDict:
		return r.floatDict(n, fn)
	}
	return fmt.Errorf("unexpected encoding for float column")
}

func (d *chunkDecoder) applyTrace(st stripeHeader) error {
	if st.field >= fTraceSrcAddr+uint64(numTraceFields) {
		return nil // unknown trace column from a newer writer: skip
	}
	if err := mark(&d.seenTraces, uint(st.field-fTraceSrcAddr)); err != nil {
		return err
	}
	n := len(d.traces)
	r := &colReader{b: st.body}
	var err error
	switch st.field {
	case fTraceSrcAddr:
		err = r.uint32s(n, func(i int, v uint32) { d.traces[i].SrcAddr = netaddr.Addr(v) })
	case fTraceDstAddr:
		err = r.uint32s(n, func(i int, v uint32) { d.traces[i].DstAddr = netaddr.Addr(v) })
	case fTraceLaunchMinute:
		err = r.deltas(n, func(i int, v int64) { d.traces[i].LaunchMinute = int(v) })
	case fTraceFlowEntropy:
		err = r.uint32s(n, func(i int, v uint32) { d.traces[i].FlowEntropy = v })
	case fTraceReached:
		err = r.bitmap(n, func(i int, v bool) { d.traces[i].Reached = v })
	case fTraceDegraded:
		err = r.bitmap(n, func(i int, v bool) { d.traces[i].Degraded = v })
	case fTraceHopLens:
		var total uint64
		lens := make([]uint64, n)
		if err = r.uvarints(n, func(i int, v uint64) { lens[i] = v; total += v }); err != nil {
			break
		}
		if total > uint64(len(d.r.b))/4+1 {
			err = fmt.Errorf("hop total %d exceeds payload budget", total)
			break
		}
		d.hops = make([]traceroute.Hop, total)
		off := 0
		for i, l := range lens {
			if l > 0 {
				d.traces[i].Hops = d.hops[off : off+int(l) : off+int(l)]
				off += int(l)
			}
		}
		d.hopsSized = true
	case fTraceHopTTL:
		if !d.hopsSized {
			err = fmt.Errorf("hop stripe before hop lengths")
			break
		}
		err = r.uvarints(len(d.hops), func(i int, v uint64) { d.hops[i].TTL = int(v) })
	case fTraceHopAddr:
		if !d.hopsSized {
			err = fmt.Errorf("hop stripe before hop lengths")
			break
		}
		err = r.uint32s(len(d.hops), func(i int, v uint32) { d.hops[i].Addr = netaddr.Addr(v) })
	case fTraceHopDNSName:
		if !d.hopsSized {
			err = fmt.Errorf("hop stripe before hop lengths")
			break
		}
		err = r.stringDict(len(d.hops), func(i int, s string) { d.hops[i].DNSName = s })
	case fTraceHopRTTms:
		if !d.hopsSized {
			err = fmt.Errorf("hop stripe before hop lengths")
			break
		}
		err = r.floats(len(d.hops), func(i int, v float64) { d.hops[i].RTTms = v })
	}
	if err != nil {
		return err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing bytes in stripe", r.remaining())
	}
	return nil
}

// checkComplete verifies every projected-in column arrived.
func (d *chunkDecoder) checkComplete() error {
	if d.proj.Tests {
		want := uint64(0)
		for f := fTestID; f <= uint64(numTestFields); f++ {
			want |= 1 << f
		}
		if d.seenTests != want {
			return fmt.Errorf("missing test stripes (seen %#x, want %#x)", d.seenTests, want)
		}
	}
	if d.proj.Traces {
		want := uint64(1)<<uint64(numTraceFields) - 1
		if d.seenTraces != want {
			return fmt.Errorf("missing trace stripes (seen %#x, want %#x)", d.seenTraces, want)
		}
	}
	return nil
}

// frameScanner is a byte-counting cursor over the file's frames,
// shared by the streaming reader and the seeking reader. It implements
// io.ByteReader so binary.ReadUvarint tracks offsets for free.
type frameScanner struct {
	br  *bufio.Reader
	off int64
}

func (s *frameScanner) ReadByte() (byte, error) {
	b, err := s.br.ReadByte()
	if err == nil {
		s.off++
	}
	return b, err
}

func (s *frameScanner) uvarint() (uint64, error) {
	return binary.ReadUvarint(s)
}

func (s *frameScanner) full(b []byte) error {
	n, err := io.ReadFull(s.br, b)
	s.off += int64(n)
	return err
}

// payload reads a declared-length frame payload into dst, growing it
// incrementally so a lying length cannot force an allocation larger
// than the bytes that actually exist (plus one step).
func (s *frameScanner) payload(n uint64, dst []byte) ([]byte, error) {
	if n > maxFramePayload {
		return nil, fmt.Errorf("frame payload of %d bytes exceeds the %d limit", n, maxFramePayload)
	}
	b := dst[:0]
	for rem := int(n); rem > 0; {
		step := min(rem, 1<<20)
		start := len(b)
		b = append(b, make([]byte, step)...)
		if err := s.full(b[start:]); err != nil {
			return nil, err
		}
		rem -= step
	}
	return b, nil
}

// readColumnarHeader consumes and validates the magic and header
// frame. A v1 NDJSON stream fed to the columnar reader is named as
// such instead of surfacing as a magic mismatch.
func readColumnarHeader(s *frameScanner) (streamHeader, error) {
	var hdr streamHeader
	var magic [8]byte
	if err := s.full(magic[:]); err != nil {
		return hdr, fmt.Errorf("export: columnar corpus: missing magic: %w", err)
	}
	if string(magic[:]) != columnarMagic {
		if bytes.HasPrefix([]byte(streamMagic), magic[:]) {
			return hdr, fmt.Errorf("export: corpus is an NDJSON stream (%s), not a columnar corpus: a columnar reader requires %s (magic %q); open it with OpenStream or -corpus-format ndjson",
				StreamFormat, ColumnarFormat, columnarMagic)
		}
		return hdr, fmt.Errorf("export: not a columnar corpus: magic %q (want %q)", magic, columnarMagic)
	}
	n, err := s.uvarint()
	if err != nil || n > maxFramePayload {
		return hdr, fmt.Errorf("export: columnar corpus: invalid header frame length")
	}
	payload, err := s.payload(n, nil)
	if err != nil {
		return hdr, fmt.Errorf("export: columnar corpus: truncated header: %w", err)
	}
	var sum [4]byte
	if err := s.full(sum[:]); err != nil {
		return hdr, fmt.Errorf("export: columnar corpus: truncated header checksum: %w", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(sum[:]); got != want {
		return hdr, fmt.Errorf("export: columnar corpus: header checksum mismatch (%08x != %08x)", got, want)
	}
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return hdr, fmt.Errorf("export: columnar corpus: invalid header: %w", err)
	}
	if hdr.Format != ColumnarFormat {
		return hdr, fmt.Errorf("export: columnar corpus: unsupported format %q (want %q)", hdr.Format, ColumnarFormat)
	}
	if err := hdr.Public.Validate(); err != nil {
		return hdr, err
	}
	return hdr, nil
}

// decodeFooterPayload parses the footer frame payload: campaign totals
// plus the chunk index.
func decodeFooterPayload(payload []byte) (StreamFooter, []ChunkIndexEntry, error) {
	r := &colReader{b: payload}
	f := StreamFooter{Footer: true}
	vals := [9]uint64{}
	for i := range vals {
		v, err := r.uvarint()
		if err != nil {
			return f, nil, fmt.Errorf("footer: %w", err)
		}
		vals[i] = v
	}
	f.Chunks, f.Tests, f.Traces, f.TestsWithoutTrace = int(vals[0]), int(vals[1]), int(vals[2]), int(vals[3])
	f.Completeness = platform.Completeness{
		ScheduledTests: int(vals[4]), AbandonedTests: int(vals[5]),
		DroppedRows: int(vals[6]), TruncatedTests: int(vals[7]), DegradedTraces: int(vals[8]),
	}
	if f.Chunks < 0 || f.Chunks > len(payload) {
		return f, nil, fmt.Errorf("footer declares %d chunks in a %d-byte payload", f.Chunks, len(payload))
	}
	index := make([]ChunkIndexEntry, f.Chunks)
	prev := int64(0)
	for i := range index {
		var row [4]uint64
		for j := range row {
			v, err := r.uvarint()
			if err != nil {
				return f, nil, fmt.Errorf("footer index entry %d: %w", i, err)
			}
			row[j] = v
		}
		prev += int64(row[0])
		index[i] = ChunkIndexEntry{Offset: prev, Watermark: int(row[1]), Tests: int(row[2]), Traces: int(row[3])}
	}
	if r.remaining() != 0 {
		return f, nil, fmt.Errorf("footer: %d trailing bytes after index", r.remaining())
	}
	return f, index, nil
}

// colRawFrame is one undecoded frame in flight to the decode workers.
type colRawFrame struct {
	seq  int
	off  int64
	kind byte
	buf  *[]byte // pooled payload; ownership passes to the decoder
	err  error   // read failure (io.EOF for clean end of input)
}

// colDecoded is one classified frame: exactly one of chunk, footer, or
// err is set. pre and off ride along for the in-order bookkeeping.
type colDecoded struct {
	chunk    *StreamChunk
	pre      colPreamble
	off      int64
	footer   *StreamFooter
	index    []ChunkIndexEntry
	err      error
	readFail bool
}

// decodeColFrame is the single decode routine shared by the serial and
// worker paths. The caller keeps ownership of rf.buf — the serial path
// reuses its long-lived scratch and must never leak it into the shared
// frame pool, so releasing pooled buffers is the worker loop's job.
func decodeColFrame(rf colRawFrame, proj Projection) colDecoded {
	if rf.err != nil {
		return colDecoded{err: rf.err, readFail: true}
	}
	switch rf.kind {
	case frameChunk:
		c, pre, err := decodeChunkPayload(*rf.buf, proj)
		if err != nil {
			return colDecoded{err: fmt.Errorf("export: columnar corpus: chunk %d: %w", rf.seq, err)}
		}
		return colDecoded{chunk: c, pre: pre, off: rf.off}
	case frameFooter:
		f, index, err := decodeFooterPayload(*rf.buf)
		if err != nil {
			return colDecoded{err: fmt.Errorf("export: columnar corpus: %w", err)}
		}
		return colDecoded{footer: &f, index: index}
	}
	return colDecoded{err: fmt.Errorf("export: columnar corpus: unknown frame kind %#02x at offset %d", rf.kind, rf.off)}
}

// colDecodePipeline mirrors decodePipeline for the columnar reader.
type colDecodePipeline struct {
	in       chan colRawFrame
	ro       *stream.Reorder[colDecoded]
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// ColumnarReader replays a columnar corpus chunk by chunk, the binary
// counterpart of StreamReader. Each chunk's rows live in per-chunk
// slabs, so a consumer may retain them after Next moves on.
type ColumnarReader struct {
	fs     frameScanner
	header streamHeader
	proj   Projection
	footer *StreamFooter
	read   StreamFooter      // accumulated totals for the footer cross-check
	seen   []ChunkIndexEntry // observed offsets for the index cross-check
	frame  []byte            // serial-path payload scratch
	dp     *colDecodePipeline
}

// OpenColumnar reads and validates the magic and header of a columnar
// corpus, decoding both column families.
func OpenColumnar(r io.Reader) (*ColumnarReader, error) {
	return OpenColumnarProjected(r, 1, EverythingProjection())
}

// OpenColumnarWorkers is OpenColumnar with worker-parallel chunk
// decoding. Next returns the same chunks, in the same order, with the
// same errors, at any worker count; call Close when abandoning the
// reader before EOF.
func OpenColumnarWorkers(r io.Reader, workers int) (*ColumnarReader, error) {
	return OpenColumnarProjected(r, workers, EverythingProjection())
}

// OpenColumnarProjected opens a columnar corpus decoding only the
// projected column families — the skipped side's stripes are checksum
// verified but never parsed, and its slabs never allocated. Chunk and
// footer bookkeeping (row counts, ordering, totals) is exact under any
// projection.
func OpenColumnarProjected(r io.Reader, workers int, proj Projection) (*ColumnarReader, error) {
	cr := &ColumnarReader{fs: frameScanner{br: bufio.NewReaderSize(r, 1<<20)}, proj: proj}
	hdr, err := readColumnarHeader(&cr.fs)
	if err != nil {
		return nil, err
	}
	cr.header = hdr
	if workers <= 1 {
		return cr, nil
	}
	dp := &colDecodePipeline{
		in:   make(chan colRawFrame, workers),
		ro:   stream.NewReorder[colDecoded](workers),
		stop: make(chan struct{}),
	}
	dp.wg.Add(1)
	go func() { // frame reader: the only goroutine touching cr.fs
		defer dp.wg.Done()
		defer close(dp.in)
		for seq := 0; ; seq++ {
			buf := getFrameBuf()
			kind, off, err := cr.readRawFrame(buf)
			rf := colRawFrame{seq: seq, off: off, kind: kind, buf: buf, err: err}
			select {
			case dp.in <- rf:
			case <-dp.stop:
				putFrameBuf(buf)
				return
			}
			if err != nil || kind == frameFooter {
				return
			}
		}
	}()
	for i := 0; i < workers; i++ {
		dp.wg.Add(1)
		go func() {
			defer dp.wg.Done()
			dead := false
			for rf := range dp.in {
				if dead {
					putFrameBuf(rf.buf)
					continue
				}
				d := decodeColFrame(rf, cr.proj)
				putFrameBuf(rf.buf)
				if !dp.ro.Put(rf.seq, d) {
					dead = true
				}
			}
		}()
	}
	go func() { dp.wg.Wait(); dp.ro.Close() }()
	cr.dp = dp
	return cr, nil
}

// readRawFrame reads the next frame's kind and payload into buf. For
// the footer frame it also consumes and verifies the frame checksum
// and the fixed-width tail, and confirms the file ends there. A clean
// end of input before any frame surfaces as io.EOF (the caller turns
// that into the truncation error).
func (cr *ColumnarReader) readRawFrame(buf *[]byte) (kind byte, off int64, err error) {
	off = cr.fs.off
	kind, err = cr.fs.ReadByte()
	if err != nil {
		return 0, off, io.EOF
	}
	if kind != frameChunk && kind != frameFooter {
		// Report through the decode path so serial and worker agree.
		return kind, off, nil
	}
	n, err := cr.fs.uvarint()
	if err != nil {
		return kind, off, fmt.Errorf("frame at offset %d: invalid length: %w", off, errTruncOK(err))
	}
	*buf, err = cr.fs.payload(n, *buf)
	if err != nil {
		return kind, off, fmt.Errorf("frame at offset %d: %w", off, errTruncOK(err))
	}
	if kind != frameFooter {
		return kind, off, nil
	}
	var sum [4]byte
	if err := cr.fs.full(sum[:]); err != nil {
		return kind, off, fmt.Errorf("footer checksum: %w", errTruncOK(err))
	}
	if got, want := crc32.Checksum(*buf, castagnoli), binary.LittleEndian.Uint32(sum[:]); got != want {
		return kind, off, fmt.Errorf("footer checksum mismatch (%08x != %08x)", got, want)
	}
	frameLen := cr.fs.off - off
	var tail [12]byte
	if err := cr.fs.full(tail[:]); err != nil {
		return kind, off, fmt.Errorf("footer tail: %w", errTruncOK(err))
	}
	if string(tail[4:]) != columnarTail {
		return kind, off, fmt.Errorf("footer tail magic %q (want %q)", tail[4:], columnarTail)
	}
	if got := int64(binary.LittleEndian.Uint32(tail[:4])); got != frameLen {
		return kind, off, fmt.Errorf("footer tail length %d does not match frame length %d", got, frameLen)
	}
	if _, err := cr.fs.ReadByte(); err != io.EOF {
		return kind, off, fmt.Errorf("trailing data after footer tail")
	}
	return kind, off, nil
}

// errTruncOK normalizes io.EOF / io.ErrUnexpectedEOF from a mid-frame
// read into one truncation error.
func errTruncOK(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("truncated")
	}
	return err
}

// Public returns the header's lookup bundle.
func (cr *ColumnarReader) Public() *Public { return &cr.header.Public }

// Meta returns the header's campaign metadata.
func (cr *ColumnarReader) Meta() StreamMeta { return cr.header.Meta }

// Next returns the next chunk, or io.EOF after the footer has been
// consumed and cross-checked against the chunks (totals and index).
func (cr *ColumnarReader) Next() (*StreamChunk, error) {
	if cr.footer != nil {
		return nil, io.EOF
	}
	var d colDecoded
	if cr.dp != nil {
		var ok bool
		d, ok = cr.dp.ro.Next()
		if !ok {
			if err := cr.dp.ro.Err(); err != nil {
				return nil, err
			}
			d = colDecoded{err: io.EOF, readFail: true}
		}
	} else {
		cr.frame = cr.frame[:0]
		kind, off, err := cr.readRawFrame(&cr.frame)
		d = decodeColFrame(colRawFrame{seq: cr.read.Chunks, off: off, kind: kind, buf: &cr.frame, err: err}, cr.proj)
	}
	return cr.consume(d)
}

// consume folds one classified frame into the reader's running state:
// the in-order half of Next, shared by the serial and worker paths.
func (cr *ColumnarReader) consume(d colDecoded) (*StreamChunk, error) {
	switch {
	case d.readFail && d.err == io.EOF:
		return nil, fmt.Errorf("export: columnar corpus truncated: no footer after %d chunks (%d tests)",
			cr.read.Chunks, cr.read.Tests)
	case d.readFail:
		return nil, fmt.Errorf("export: columnar corpus: %w", d.err)
	case d.err != nil:
		return nil, d.err
	case d.footer != nil:
		f := *d.footer
		cr.read.Footer = true
		if f != cr.read {
			return nil, fmt.Errorf("export: columnar corpus footer mismatch: footer says %d chunks / %d tests / %d traces, file holds %d / %d / %d",
				f.Chunks, f.Tests, f.Traces, cr.read.Chunks, cr.read.Tests, cr.read.Traces)
		}
		for i, e := range d.index {
			if e != cr.seen[i] {
				return nil, fmt.Errorf("export: columnar corpus: footer index entry %d (%+v) does not match chunk frame (%+v)",
					i, e, cr.seen[i])
			}
		}
		cr.footer = d.footer
		return nil, io.EOF
	}
	if d.pre.chunk != cr.read.Chunks {
		return nil, fmt.Errorf("export: columnar corpus: chunk index %d where %d expected", d.pre.chunk, cr.read.Chunks)
	}
	cr.read.Chunks++
	cr.read.Tests += d.pre.tests
	cr.read.Traces += d.pre.traces
	cr.read.TestsWithoutTrace += d.pre.testsWithoutTrace
	cr.read.Completeness.Merge(d.pre.completeness)
	cr.seen = append(cr.seen, ChunkIndexEntry{
		Offset: d.off, Watermark: d.pre.watermark, Tests: d.pre.tests, Traces: d.pre.traces,
	})
	return d.chunk, nil
}

// Footer returns the file totals; non-nil only after Next returned
// io.EOF.
func (cr *ColumnarReader) Footer() *StreamFooter { return cr.footer }

// ReadTotals snapshots the totals accumulated over the chunks consumed
// so far — the running footer a resumed writer continues from.
func (cr *ColumnarReader) ReadTotals() StreamFooter {
	t := cr.read
	t.Footer = true
	return t
}

// SeenIndex returns the chunk-index rows observed so far, in chunk
// order — the index prefix a resumed writer continues from.
func (cr *ColumnarReader) SeenIndex() []ChunkIndexEntry { return cr.seen }

// Close releases a worker-backed reader's decode goroutines; it is a
// no-op for serial readers and after a completed replay.
func (cr *ColumnarReader) Close() error {
	if cr.dp == nil {
		return nil
	}
	cr.dp.stopOnce.Do(func() {
		close(cr.dp.stop)
		cr.dp.ro.Fail(errReaderClosed)
	})
	cr.dp.wg.Wait()
	return nil
}

// ColumnarFile is random access over a columnar corpus through the
// footer's chunk index: the header and index are read once (one seek
// to the tail), then any chunk is one seek away.
type ColumnarFile struct {
	r      io.ReadSeeker
	header streamHeader
	footer StreamFooter
	index  []ChunkIndexEntry
}

// OpenColumnarAt opens a columnar corpus for indexed chunk access. The
// file must be sealed (footer written); an unsealed file fails here
// exactly like a truncated streaming read.
func OpenColumnarAt(r io.ReadSeeker) (*ColumnarFile, error) {
	fs := frameScanner{br: bufio.NewReaderSize(r, 1<<16)}
	hdr, err := readColumnarHeader(&fs)
	if err != nil {
		return nil, err
	}
	end, err := r.Seek(-12, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("export: columnar corpus: seeking tail: %w", err)
	}
	var tail [12]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("export: columnar corpus: reading tail: %w", err)
	}
	if string(tail[4:]) != columnarTail {
		return nil, fmt.Errorf("export: columnar corpus truncated: no footer tail (found %q, want %q)", tail[4:], columnarTail)
	}
	frameLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if frameLen <= 0 || frameLen > end {
		return nil, fmt.Errorf("export: columnar corpus: footer frame length %d out of range", frameLen)
	}
	if _, err := r.Seek(end-frameLen, io.SeekStart); err != nil {
		return nil, fmt.Errorf("export: columnar corpus: seeking footer: %w", err)
	}
	ffs := frameScanner{br: bufio.NewReaderSize(r, 1<<16)}
	kind, err := ffs.ReadByte()
	if err != nil || kind != frameFooter {
		return nil, fmt.Errorf("export: columnar corpus: footer frame not found at tail offset")
	}
	n, err := ffs.uvarint()
	if err != nil || n > maxFramePayload {
		return nil, fmt.Errorf("export: columnar corpus: invalid footer frame length")
	}
	payload, err := ffs.payload(n, nil)
	if err != nil {
		return nil, fmt.Errorf("export: columnar corpus: truncated footer: %w", err)
	}
	var sum [4]byte
	if err := ffs.full(sum[:]); err != nil {
		return nil, fmt.Errorf("export: columnar corpus: truncated footer checksum: %w", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("export: columnar corpus: footer checksum mismatch (%08x != %08x)", got, want)
	}
	footer, index, err := decodeFooterPayload(payload)
	if err != nil {
		return nil, fmt.Errorf("export: columnar corpus: %w", err)
	}
	return &ColumnarFile{r: r, header: hdr, footer: footer, index: index}, nil
}

// Public returns the header's lookup bundle.
func (cf *ColumnarFile) Public() *Public { return &cf.header.Public }

// Meta returns the header's campaign metadata.
func (cf *ColumnarFile) Meta() StreamMeta { return cf.header.Meta }

// Footer returns the campaign totals.
func (cf *ColumnarFile) Footer() StreamFooter { return cf.footer }

// Index returns the chunk index: one row per chunk, in file order.
func (cf *ColumnarFile) Index() []ChunkIndexEntry { return cf.index }

// ChunkAt decodes chunk i through the index — one seek, one frame
// read, no scanning.
func (cf *ColumnarFile) ChunkAt(i int, proj Projection) (*StreamChunk, error) {
	if i < 0 || i >= len(cf.index) {
		return nil, fmt.Errorf("export: columnar corpus: chunk %d out of range (file has %d)", i, len(cf.index))
	}
	if _, err := cf.r.Seek(cf.index[i].Offset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("export: columnar corpus: seeking chunk %d: %w", i, err)
	}
	fs := frameScanner{br: bufio.NewReaderSize(cf.r, 1<<20)}
	kind, err := fs.ReadByte()
	if err != nil || kind != frameChunk {
		return nil, fmt.Errorf("export: columnar corpus: no chunk frame at indexed offset %d", cf.index[i].Offset)
	}
	n, err := fs.uvarint()
	if err != nil {
		return nil, fmt.Errorf("export: columnar corpus: chunk %d: invalid frame length", i)
	}
	payload, err := fs.payload(n, nil)
	if err != nil {
		return nil, fmt.Errorf("export: columnar corpus: chunk %d: %w", i, errTruncOK(err))
	}
	c, pre, err := decodeChunkPayload(payload, proj)
	if err != nil {
		return nil, fmt.Errorf("export: columnar corpus: chunk %d: %w", i, err)
	}
	if pre.chunk != i {
		return nil, fmt.Errorf("export: columnar corpus: chunk at indexed offset %d says index %d, want %d",
			cf.index[i].Offset, pre.chunk, i)
	}
	return c, nil
}
