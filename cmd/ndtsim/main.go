// Command ndtsim generates a synthetic Internet, runs a crowdsourced
// NDT collection campaign against its M-Lab deployment, and writes the
// resulting dataset (public topology data + tests + Paris traceroutes)
// as JSON — the raw material for cmd/mapit and cmd/bdrmap.
//
// Usage:
//
//	ndtsim [-scale small|default] [-seed N] [-tests N] [-battle] [-o file]
//	ndtsim -campaign bed-us [-o file]   # Ark VP prefix campaign instead
package main

import (
	"flag"
	"fmt"
	"os"

	"throughputlab/internal/export"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/traceroute"
)

func main() {
	scale := flag.String("scale", "small", "small or default")
	seed := flag.Int64("seed", 1, "generation seed")
	tests := flag.Int("tests", 5000, "NDT corpus size")
	battle := flag.Bool("battle", false, "Battle-for-the-Net multi-server client")
	campaign := flag.String("campaign", "", "emit an Ark VP prefix campaign (VP label, e.g. bed-us) instead of an NDT corpus")
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()

	if err := run(*scale, *seed, *tests, *battle, *campaign, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ndtsim:", err)
		os.Exit(1)
	}
}

func run(scale string, seed int64, tests int, battle bool, campaign, out string) error {
	cfg := topogen.DefaultConfig()
	if scale == "small" {
		cfg = topogen.SmallConfig()
	}
	cfg.Seed = seed
	w, err := topogen.Generate(cfg)
	if err != nil {
		return err
	}

	var ds *export.Dataset
	if campaign != "" {
		var vp *topogen.ArkVP
		for i := range w.ArkVPs {
			if w.ArkVPs[i].Label == campaign {
				vp = &w.ArkVPs[i]
			}
		}
		if vp == nil {
			return fmt.Errorf("unknown VP %q (see DESIGN.md for the 16 labels)", campaign)
		}
		traces := platform.Campaign(w, vp.Host.Endpoint,
			platform.RoutedPrefixTargets(w), traceroute.DefaultArtifacts(), seed+100)
		ds = export.FromWorld(w, nil).WithTraces(traces)
		fmt.Fprintf(os.Stderr, "campaign from %s (%s): %d traces\n", vp.Label, vp.ISP, len(traces))
	} else {
		ccfg := platform.DefaultCollect()
		ccfg.Tests = tests
		ccfg.Seed = seed + 6
		ccfg.BattleForNet = battle
		corpus, err := platform.Collect(w, ccfg)
		if err != nil {
			return err
		}
		ds = export.FromWorld(w, corpus)
		fmt.Fprintf(os.Stderr, "corpus: %d tests, %d traces (%d lost to busy collector)\n",
			len(corpus.Tests), len(corpus.Traces), corpus.TestsWithoutTrace)
	}

	f := os.Stdout
	if out != "-" {
		var err error
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return ds.Write(f)
}
