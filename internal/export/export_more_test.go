package export

import (
	"bytes"
	"strings"
	"testing"

	"throughputlab/internal/topology"
)

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("garbage should fail to decode")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestReadRejectsBadAddresses(t *testing.T) {
	// A prefix row with an invalid CIDR must surface as an error, not a
	// zero value.
	bad := `{"public":{"prefixes":[{"prefix":"999.0.0.0/8","asn":1}],"orgs":{},"rels":null}}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("invalid prefix should fail to decode")
	}
}

func TestParseRelRoundTrip(t *testing.T) {
	for _, r := range []topology.Rel{topology.RelCustomer, topology.RelProvider,
		topology.RelPeer, topology.RelSibling} {
		if parseRel(r.String()) != r {
			t.Errorf("parseRel(%q) != %v", r.String(), r)
		}
	}
	if parseRel("bogus") != topology.RelNone {
		t.Error("unknown rel should parse to none")
	}
}

func TestLookupsRelSymmetry(t *testing.T) {
	d := FromWorld(world, nil)
	l := d.Lookups()
	// Every stored relationship inverts correctly.
	checked := 0
	for _, row := range d.Public.Rels[:min(200, len(d.Public.Rels))] {
		r := l.Rel(row.A, row.B)
		if l.Rel(row.B, row.A) != r.Invert() {
			t.Fatalf("rel asymmetry for %d-%d", row.A, row.B)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no relationships in export")
	}
}

func TestDatasetSizeSane(t *testing.T) {
	corpus := smallCorpus(t)
	d := FromWorld(world, corpus)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// A 400-test dataset should be well under 10 MB.
	if buf.Len() > 10<<20 {
		t.Errorf("dataset is %d bytes; serialization bloated", buf.Len())
	}
	// And the JSON must use dotted-quad addresses, not raw integers.
	if !bytes.Contains(buf.Bytes(), []byte(`"prefix": "`)) {
		t.Error("prefixes not serialized as strings")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
