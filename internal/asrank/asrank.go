// Package asrank infers AS business relationships from observed AS
// paths, in the style of CAIDA's AS-rank dataset (Gao's classic
// algorithm refined by Luckie et al.). The reproduced paper consumes
// exactly this dataset — "AS-relationship inferences from CAIDA's
// AS-rank algorithm" feed both bdrmap's annotations (§5.1) and the
// peer/customer split of Figure 3 — so the pipeline should be able to
// run end-to-end without ground-truth relationships.
//
// The algorithm, on a corpus of route-collector AS paths:
//
//  1. Degree: count distinct neighbors per AS across all paths.
//  2. Votes: each path has a "top" (its highest-degree AS). Edges
//     before the top point uphill (customer→provider), edges after
//     point downhill; each crossing votes for the implied
//     provider-customer orientation.
//  3. Peaks: the edge joining the path's two highest-degree members is
//     a peering candidate (valley-freeness puts a peer link only at
//     the top).
//  4. Classification: an edge that is a peak in most of its
//     appearances, between ASes of comparable degree, is a peer;
//     otherwise the vote majority sets the provider side; balanced
//     two-sided votes mean siblings.
package asrank

import (
	"sort"

	"throughputlab/internal/topology"
)

// Result holds the inferred relationships.
type Result struct {
	// Degree is the observed neighbor count per AS.
	Degree map[topology.ASN]int

	rels map[[2]topology.ASN]topology.Rel
}

// Config tunes the classifier.
type Config struct {
	// PeakFrac: minimum fraction of an edge's appearances at path
	// peaks to consider it a peering candidate.
	PeakFrac float64
	// MaxDegreeRatio: maximum degree ratio between peering candidates.
	MaxDegreeRatio float64
	// SiblingBalance: vote balance (minority/majority) above which a
	// two-sided edge is called sibling rather than provider-customer.
	SiblingBalance float64
}

// DefaultConfig returns the standard parameters.
func DefaultConfig() Config {
	return Config{PeakFrac: 0.8, MaxDegreeRatio: 60, SiblingBalance: 0.5}
}

type edge = [2]topology.ASN

func norm(a, b topology.ASN) edge {
	if a > b {
		a, b = b, a
	}
	return edge{a, b}
}

// Infer runs the algorithm over the path corpus.
func Infer(paths [][]topology.ASN, cfg Config) *Result {
	if cfg.PeakFrac == 0 {
		cfg = DefaultConfig()
	}
	res := &Result{
		Degree: map[topology.ASN]int{},
		rels:   map[edge]topology.Rel{},
	}

	// 1. Degrees from distinct adjacencies.
	neighbors := map[topology.ASN]map[topology.ASN]bool{}
	addAdj := func(a, b topology.ASN) {
		if neighbors[a] == nil {
			neighbors[a] = map[topology.ASN]bool{}
		}
		neighbors[a][b] = true
	}
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			addAdj(p[i-1], p[i])
			addAdj(p[i], p[i-1])
		}
	}
	for asn, ns := range neighbors {
		res.Degree[asn] = len(ns)
	}

	// 2+3. Votes and peak counts.
	// provVotes[e] counts paths asserting e[1] is the provider of e[0]
	// when the edge is stored as (customer, provider) in normalized
	// orientation bookkeeping below.
	type votes struct {
		// provHi: votes that the higher-ASN side is the provider.
		provHi, provLo int
		peak, total    int
	}
	tally := map[edge]*votes{}
	get := func(e edge) *votes {
		v := tally[e]
		if v == nil {
			v = &votes{}
			tally[e] = v
		}
		return v
	}
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		// Path top by degree.
		top := 0
		for i, a := range p {
			if res.Degree[a] > res.Degree[p[top]] {
				top = i
			}
		}
		// Peak edge: the top and its larger-degree neighbor.
		peakIdx := -1
		switch {
		case top == 0 && len(p) > 1:
			peakIdx = 0
		case top == len(p)-1:
			peakIdx = top - 1
		case res.Degree[p[top+1]] >= res.Degree[p[top-1]]:
			peakIdx = top
		default:
			peakIdx = top - 1
		}
		for i := 1; i < len(p); i++ {
			u, w := p[i-1], p[i]
			e := norm(u, w)
			v := get(e)
			v.total++
			if i-1 == peakIdx {
				v.peak++
			}
			// Uphill before the top: w is u's provider. Downhill after:
			// u is w's provider.
			var provider topology.ASN
			if i <= top {
				provider = w
			} else {
				provider = u
			}
			if provider == e[1] {
				v.provHi++
			} else {
				v.provLo++
			}
		}
	}

	// 4. Classification.
	for e, v := range tally {
		hiDeg, loDeg := res.Degree[e[1]], res.Degree[e[0]]
		ratio := float64(hiDeg) / float64(max(loDeg, 1))
		if ratio < 1 {
			ratio = 1 / ratio
		}
		isPeak := float64(v.peak)/float64(v.total) >= cfg.PeakFrac
		if isPeak && ratio <= cfg.MaxDegreeRatio {
			res.rels[e] = topology.RelPeer
			continue
		}
		maj, min := v.provHi, v.provLo
		if min > maj {
			maj, min = min, maj
		}
		if maj > 0 && float64(min)/float64(maj) >= cfg.SiblingBalance {
			res.rels[e] = topology.RelSibling
			continue
		}
		// One-sided: provider is the majority side. Stored from the
		// perspective of e[0] (the lower ASN).
		if v.provHi >= v.provLo {
			res.rels[e] = topology.RelProvider // e[1] is e[0]'s provider
		} else {
			res.rels[e] = topology.RelCustomer // e[1] is e[0]'s customer
		}
	}
	return res
}

// Rel returns the inferred relationship of b as seen from a (RelNone
// when the pair was never observed adjacent).
func (r *Result) Rel(a, b topology.ASN) topology.Rel {
	e := norm(a, b)
	rel, ok := r.rels[e]
	if !ok {
		return topology.RelNone
	}
	if rel == topology.RelPeer || rel == topology.RelSibling {
		return rel
	}
	if a == e[0] {
		return rel
	}
	return rel.Invert()
}

// Edges returns all classified adjacencies in deterministic order.
func (r *Result) Edges() []struct {
	A, B topology.ASN
	Rel  topology.Rel
} {
	out := make([]struct {
		A, B topology.ASN
		Rel  topology.Rel
	}, 0, len(r.rels))
	for e, rel := range r.rels {
		out = append(out, struct {
			A, B topology.ASN
			Rel  topology.Rel
		}{e[0], e[1], rel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
