package signatures_test

import (
	"fmt"

	"throughputlab/internal/signatures"
)

// Two slow tests, opposite causes: the first flow's RTT starts at
// propagation level and triples (it built the queue itself); the
// second starts high and stays flat with loss (someone else's queue).
func ExampleClassify() {
	selfLimited := signatures.Features{MinRTTms: 20, MeanRTTms: 65, LossRate: 1e-4}
	external := signatures.Features{MinRTTms: 140, MeanRTTms: 143, LossRate: 0.02}
	cfg := signatures.DefaultConfig()
	fmt.Println(signatures.Classify(selfLimited, cfg))
	fmt.Println(signatures.Classify(external, cfg))
	// Output:
	// self-induced
	// external-congestion
}
