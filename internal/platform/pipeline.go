// Chunk-parallel streamed production: the CollectConfig.PipelineChunks
// path of CollectStream. Instead of marching all workers through one
// chunk at a time (a barrier per chunk), each worker claims whole
// chunk indices from a dense atomic counter, executes its chunk
// serially against its own re-seeded RNG, and hands the published
// chunk to a sequence-numbered reorder buffer. The caller's goroutine
// releases chunks strictly in index order — so the sink observes the
// byte-identical stream the barrier path produces — while later chunks
// are already executing. The reorder window is the backpressure bound:
// a worker that sprints ahead of the release cursor blocks in Put, so
// resident records never exceed (window + workers + 1) chunks.
package platform

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"throughputlab/internal/faults"
	"throughputlab/internal/ndt"
	"throughputlab/internal/obs"
	"throughputlab/internal/stream"
	"throughputlab/internal/traceroute"
)

// pipelineRun bundles the per-campaign state the pipelined execution
// phase needs from CollectStream.
type pipelineRun struct {
	ctx        context.Context
	schedule   []arrival
	chunkTests int
	window     int
	workers    int
	workerRNGs []*rand.Rand
	startChunk int

	launches []int
	dropped  []bool
	inj      *faults.Injector

	perShardTraces []int64
	reg            *obs.Registry

	exec func(rng *rand.Rand, id int, tests []*ndt.Test, traces []*traceroute.Trace, i int) error
	sink func(*Chunk) error
	st   *StreamStats
}

// collectChunksPipelined is phase 3 of CollectStream with chunk-level
// parallelism. Determinism: a chunk's records depend only on the
// schedule and each arrival's pre-seeded RNG, never on which worker
// executes it or when; the reorder buffer restores index order before
// the sink sees anything.
func collectChunksPipelined(pr *pipelineRun) error {
	if pr.ctx == nil {
		pr.ctx = context.Background()
	}
	n := len(pr.schedule)
	nChunks := (n + pr.chunkTests - 1) / pr.chunkTests
	workers := pr.workers
	if workers > nChunks-pr.startChunk {
		workers = nChunks - pr.startChunk
	}
	if workers < 1 {
		workers = 1
	}
	ro := stream.NewReorder[*Chunk](pr.window)
	bus := pr.reg.Events()
	// A producer that sprints ahead of the release cursor blocks in
	// Put — surface those backpressure stalls as progress events so a
	// live viewer can tell "window too small" from "workers starved".
	ro.OnStall(func(seq int) {
		bus.Publish("stream.stall", "collect.reorder", -1, int64(seq))
	})
	var (
		nextChunk    = int64(pr.startChunk)
		inFlight     int64
		peakInFlight int64
		wg           sync.WaitGroup
	)
	if pr.reg != nil {
		pr.reg.Gauge("collect.stream.pipelined").Set(1)
		pr.reg.Gauge("collect.stream.pipeline_window").Set(int64(pr.window))
		pr.reg.Gauge("collect.stream.pipeline_workers").Set(int64(workers))
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Label the producer goroutine so pprof profiles scraped off
			// the telemetry endpoint attribute samples to the pool.
			defer pprof.SetGoroutineLabels(context.Background())
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("tputlab.pool", "collect.producer", "tputlab.worker", fmt.Sprint(worker))))
			rng := pr.workerRNGs[worker]
			for {
				// Cooperative cancellation: stop claiming new chunks, but
				// finish (and Put) the one already in hand — the consumer
				// keeps draining, so everything claimed gets published.
				if pr.ctx.Err() != nil {
					return
				}
				ci := int(atomic.AddInt64(&nextChunk, 1)) - 1
				if ci >= nChunks {
					return
				}
				lo := ci * pr.chunkTests
				hi := lo + pr.chunkTests
				if hi > n {
					hi = n
				}
				// Track resident scheduled tests: claimed here, released
				// after the sink has consumed the chunk. The high-water
				// mark is the pipelined memory envelope.
				v := atomic.AddInt64(&inFlight, int64(hi-lo))
				for {
					p := atomic.LoadInt64(&peakInFlight)
					if v <= p || atomic.CompareAndSwapInt64(&peakInFlight, p, v) {
						break
					}
				}
				tests := make([]*ndt.Test, hi-lo)
				traces := make([]*traceroute.Trace, hi-lo)
				for i := 0; i < hi-lo; i++ {
					if err := pr.exec(rng, lo+i, tests, traces, i); err != nil {
						ro.Fail(err)
						return
					}
				}
				chunk := publishChunk(ci, lo, hi, pr.schedule, tests, traces,
					pr.launches, pr.dropped, pr.inj)
				// Per-shard trace accounting is a pure sum — atomics keep
				// the totals identical at any completion order.
				for i, tr := range traces {
					if tr != nil {
						atomic.AddInt64(&pr.perShardTraces[pr.schedule[lo+i].shard], 1)
					}
				}
				// The reorder buffer releases from sequence 0; a resumed
				// campaign's first chunk is startChunk, so sequence numbers
				// are chunk indices rebased onto the resume point.
				if !ro.Put(ci-pr.startChunk, chunk) {
					return // campaign failed elsewhere; stop producing
				}
			}
		}(w)
	}
	closed := make(chan struct{})
	go func() { wg.Wait(); ro.Close(); close(closed) }()

	var sinkErr error
	for {
		c, ok := ro.Next()
		if !ok {
			break
		}
		scheduled := pr.chunkTests
		if c.FirstID+scheduled > n {
			scheduled = n - c.FirstID
		}
		pr.st.addChunk(c, 0) // peak accounting is the atomic high-water mark
		if pr.reg != nil {
			pr.reg.Counter("collect.tests").Add(uint64(len(c.Tests)))
			pr.reg.Counter("collect.traces").Add(uint64(len(c.Traces)))
			pr.reg.Counter("collect.chunks").Inc()
		}
		if err := pr.sink(c); err != nil {
			sinkErr = fmt.Errorf("platform: corpus sink at chunk %d: %w", c.Index, err)
			ro.Fail(sinkErr)
			break
		}
		// Same serial-sink telemetry as the barrier path: the reorder
		// buffer restored index order, so watermarks are monotone here.
		bus.Publish("collect.chunk", "", c.Watermark, int64(c.Index))
		pr.reg.TimeSeries().Advance(c.Watermark)
		atomic.AddInt64(&inFlight, -int64(scheduled))
	}
	<-closed // all producers exited (Put returns false on a failed buffer)
	pr.st.PeakInFlight = int(atomic.LoadInt64(&peakInFlight))
	if sinkErr != nil {
		return sinkErr
	}
	if err := ro.Err(); err != nil {
		return err
	}
	// Producers stop claiming on cancellation; if that left chunks
	// unproduced the campaign is incomplete — report the interrupt. A
	// cancellation that raced the natural end of the stream is a
	// complete campaign and not an error.
	if pr.startChunk+pr.st.Chunks < nChunks {
		if err := ctxErr(pr.ctx); err != nil {
			return err
		}
	}
	return nil
}
