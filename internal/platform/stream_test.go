package platform

import (
	"errors"
	"testing"

	"throughputlab/internal/obs"
)

// collectViaStream materializes a streamed campaign through a plain
// appending sink, returning the corpus plus the stream stats.
func collectViaStream(t *testing.T, cfg CollectConfig, workers int) (*Corpus, *StreamStats) {
	t.Helper()
	corpus := &Corpus{}
	lastID := -1
	lastWatermark := -1
	st, err := CollectStream(world, cfg, workers, func(c *Chunk) error {
		if c.FirstID <= lastID {
			t.Errorf("chunk %d FirstID %d not after previous id %d", c.Index, c.FirstID, lastID)
		}
		if c.Watermark < lastWatermark {
			t.Errorf("chunk %d watermark %d below previous %d", c.Index, c.Watermark, lastWatermark)
		}
		lastID = c.FirstID
		lastWatermark = c.Watermark
		corpus.Tests = append(corpus.Tests, c.Tests...)
		corpus.Traces = append(corpus.Traces, c.Traces...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus.TestsWithoutTrace = st.TestsWithoutTrace
	corpus.Completeness = st.Completeness
	return corpus, st
}

// TestCollectStreamMatchesBatch pins the tentpole determinism claim:
// streamed collection concatenates to the byte-identical batch corpus
// at workers 1/2/8 and at chunk sizes from pathological (1) through
// larger than the campaign.
func TestCollectStreamMatchesBatch(t *testing.T) {
	base := smallCollect()
	batch, err := Collect(world, base)
	if err != nil {
		t.Fatal(err)
	}
	want := corpusHash(batch)
	for _, workers := range []int{1, 2, 8} {
		for _, chunk := range []int{0, 1, 97, 100000} {
			cfg := base
			cfg.ChunkTests = chunk
			c, st := collectViaStream(t, cfg, workers)
			if got := corpusHash(c); got != want {
				t.Errorf("streamed corpus (workers=%d chunk=%d) hash %#x, want batch %#x",
					workers, chunk, got, want)
			}
			if st.Tests != len(batch.Tests) || st.Traces != len(batch.Traces) {
				t.Errorf("stream stats %d/%d records, want %d/%d",
					st.Tests, st.Traces, len(batch.Tests), len(batch.Traces))
			}
			if st.TestsWithoutTrace != batch.TestsWithoutTrace {
				t.Errorf("streamed TestsWithoutTrace %d, want %d", st.TestsWithoutTrace, batch.TestsWithoutTrace)
			}
			wantChunks := (len(batch.Tests) + effectiveChunk(chunk) - 1) / effectiveChunk(chunk)
			if st.Chunks != wantChunks {
				t.Errorf("chunk=%d produced %d chunks, want %d", chunk, st.Chunks, wantChunks)
			}
			if st.PeakInFlight > effectiveChunk(chunk) {
				t.Errorf("peak in-flight %d exceeds chunk size %d", st.PeakInFlight, effectiveChunk(chunk))
			}
		}
	}
}

func effectiveChunk(chunk int) int {
	if chunk <= 0 {
		return DefaultChunkTests
	}
	return chunk
}

// TestCollectStreamMatchesBatchUnderFaults extends parity to the fault
// plane: per-chunk completeness deltas must sum to the batch ledger and
// the surviving records must hash identically.
func TestCollectStreamMatchesBatchUnderFaults(t *testing.T) {
	base := heavyCollect()
	batch, err := Collect(world, base)
	if err != nil {
		t.Fatal(err)
	}
	want := faultedCorpusHash(batch)
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.ChunkTests = 128
		c, _ := collectViaStream(t, cfg, workers)
		if got := faultedCorpusHash(c); got != want {
			t.Errorf("faulted streamed corpus (workers=%d) hash %#x, want %#x", workers, got, want)
		}
		if c.Completeness != batch.Completeness {
			t.Errorf("merged completeness %+v, want %+v", c.Completeness, batch.Completeness)
		}
	}
}

// TestCollectStreamObsGauges checks the streaming metrics land in the
// registry without disturbing the existing collection metrics.
func TestCollectStreamObsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallCollect()
	cfg.ChunkTests = 200
	cfg.Obs = reg
	_, st := collectViaStream(t, cfg, 4)
	if got := reg.Counter("collect.chunks").Value(); got != uint64(st.Chunks) {
		t.Errorf("collect.chunks = %d, want %d", got, st.Chunks)
	}
	if got := reg.Gauge("collect.stream.peak_inflight").Value(); got != int64(st.PeakInFlight) {
		t.Errorf("peak_inflight gauge = %d, want %d", got, st.PeakInFlight)
	}
	if got := reg.Counter("collect.tests").Value(); got != uint64(st.Tests) {
		t.Errorf("collect.tests = %d, want %d", got, st.Tests)
	}
	if st.TestsPerSec <= 0 {
		t.Error("streamed tests/sec not recorded")
	}
}

// TestCollectStreamSinkError aborts the campaign on the first sink
// failure and surfaces the error.
func TestCollectStreamSinkError(t *testing.T) {
	boom := errors.New("disk full")
	cfg := smallCollect()
	cfg.ChunkTests = 100
	calls := 0
	_, err := CollectStream(world, cfg, 2, func(c *Chunk) error {
		calls++
		if c.Index == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
	if calls != 2 {
		t.Errorf("sink called %d times, want 2 (abort after failure)", calls)
	}
}
