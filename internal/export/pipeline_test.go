package export

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"throughputlab/internal/platform"
)

// writeStreamedWorkers is writeStreamed through the worker-encoded
// writer.
func writeStreamedWorkers(t *testing.T, cfg platform.CollectConfig, collectW, encodeW int) *bytes.Buffer {
	t.Helper()
	pub := FromWorld(world, nil).Public
	var buf bytes.Buffer
	sw, err := NewStreamWriterWorkers(&buf, pub, StreamMeta{Scale: "small", Seed: cfg.Seed, Tests: cfg.Tests}, encodeW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := platform.CollectStream(world, cfg, collectW, sw.WriteChunk); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestStreamWriterWorkersByteIdentical pins the parallel-encode
// contract: the file produced by worker-encoded chunks is the same
// byte sequence as the serial writer's, at any worker count.
func TestStreamWriterWorkersByteIdentical(t *testing.T) {
	cfg := streamCfg(400, 64)
	serial, _ := writeStreamed(t, cfg, 2)
	for _, workers := range []int{1, 2, 8} {
		got := writeStreamedWorkers(t, cfg, 2, workers)
		if !bytes.Equal(got.Bytes(), serial.Bytes()) {
			t.Errorf("worker-encoded stream (workers=%d) differs from serial bytes", workers)
		}
	}
}

// TestOpenStreamWorkersMatchesSerial replays the same file through the
// serial and worker-decoded readers and requires identical chunks,
// totals, and footer.
func TestOpenStreamWorkersMatchesSerial(t *testing.T) {
	buf, st := writeStreamed(t, streamCfg(400, 64), 2)
	raw := buf.Bytes()
	for _, workers := range []int{1, 2, 8} {
		sr, err := OpenStreamWorkers(bytes.NewReader(raw), workers)
		if err != nil {
			t.Fatal(err)
		}
		want, err := OpenStream(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		for {
			c, cErr := sr.Next()
			w, wErr := want.Next()
			if (cErr == nil) != (wErr == nil) {
				t.Fatalf("workers=%d: reader errors diverge: %v vs %v", workers, cErr, wErr)
			}
			if cErr != nil {
				if cErr != io.EOF {
					t.Fatal(cErr)
				}
				break
			}
			if c.Chunk != w.Chunk || c.Watermark != w.Watermark ||
				len(c.Tests) != len(w.Tests) || len(c.Traces) != len(w.Traces) {
				t.Fatalf("workers=%d: chunk %d differs from serial replay", workers, w.Chunk)
			}
		}
		f := sr.Footer()
		if f == nil || f.Tests != st.Tests || f.Chunks != st.Chunks {
			t.Fatalf("workers=%d: footer %+v, writer recorded %d chunks / %d tests", workers, f, st.Chunks, st.Tests)
		}
		if err := sr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenStreamWorkersErrors keeps the descriptive failure modes of
// the serial reader: garbage lines and truncation surface with the
// same messages through the decode workers.
func TestOpenStreamWorkersErrors(t *testing.T) {
	buf, _ := writeStreamed(t, streamCfg(200, 50), 2)
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))

	garbage := append([][]byte{}, lines...)
	garbage[2] = []byte(`{"chunk": 1, "tests": [{"broken`)
	sr, err := OpenStreamWorkers(bytes.NewReader(bytes.Join(garbage, []byte("\n"))), 4)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err = sr.Next(); err != nil {
			break
		}
	}
	if err == io.EOF || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("garbage chunk not rejected through decode workers: %v", err)
	}
	sr.Close()

	cut := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	sr, err = OpenStreamWorkers(bytes.NewReader(append(cut, '\n')), 4)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err = sr.Next(); err != nil {
			break
		}
	}
	if err == io.EOF || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream not rejected through decode workers: %v", err)
	}
	sr.Close()
}

// TestStreamReaderCloseEarly abandons a worker-backed replay mid-file:
// Close must release the decode goroutines without hanging, and the
// reader must refuse further progress.
func TestStreamReaderCloseEarly(t *testing.T) {
	buf, _ := writeStreamed(t, streamCfg(400, 50), 2)
	sr, err := OpenStreamWorkers(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	sr.Close() // idempotent
}

// TestReadWorkers routes both on-disk formats through the parallel
// entry point.
func TestReadWorkers(t *testing.T) {
	cfg := streamCfg(300, 64)
	buf, _ := writeStreamed(t, cfg, 2)
	want, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkers(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tests) != len(want.Tests) || len(got.Traces) != len(want.Traces) ||
		got.Completeness != want.Completeness {
		t.Fatalf("ReadWorkers returned %d/%d records, Read returned %d/%d",
			len(got.Tests), len(got.Traces), len(want.Tests), len(want.Traces))
	}

	var blob bytes.Buffer
	if err := FromWorld(world, smallCorpus(t)).Write(&blob); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWorkers(&blob, 4); err != nil {
		t.Fatalf("ReadWorkers on single-blob format: %v", err)
	}
}

// benchChunk captures one representative chunk for the codec
// benchmarks.
func benchChunk(b *testing.B) *platform.Chunk {
	b.Helper()
	cfg := streamCfg(1024, 1024)
	var chunk *platform.Chunk
	if _, err := platform.CollectStream(world, cfg, 2, func(c *platform.Chunk) error {
		if chunk == nil {
			chunk = c
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return chunk
}

// BenchmarkStreamChunkEncode pins the pooled-buffer encode cost: the
// per-chunk allocation count must stay flat as chunks flow.
func BenchmarkStreamChunkEncode(b *testing.B) {
	chunk := benchChunk(b)
	pub := FromWorld(world, nil).Public
	sw, err := NewStreamWriter(io.Discard, pub, StreamMeta{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sw.WriteChunk(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamChunkDecode pins the per-line decode cost that the
// worker path amortizes across cores.
func BenchmarkStreamChunkDecode(b *testing.B) {
	chunk := benchChunk(b)
	pub := FromWorld(world, nil).Public
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, pub, StreamMeta{})
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.WriteChunk(chunk); err != nil {
		b.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}
	lines := bytes.SplitN(buf.Bytes(), []byte("\n"), 3)
	line := lines[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := decodeRecord(rawLine{seq: 0, data: line}); d.err != nil {
			b.Fatal(d.err)
		}
	}
}
