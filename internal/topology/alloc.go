package topology

import (
	"fmt"

	"throughputlab/internal/netaddr"
)

// Allocator hands out non-overlapping prefixes from a pool, naturally
// aligned. The topology generator uses one global allocator so no two
// ASes ever share address space (except deliberately-shared IXP LANs,
// which are allocated once and referenced by all members).
type Allocator struct {
	pool netaddr.Prefix
	// next is the offset (in addresses) of the first unallocated
	// address within pool.
	next uint64
}

// NewAllocator returns an allocator over the given pool.
func NewAllocator(pool netaddr.Prefix) *Allocator {
	return &Allocator{pool: pool}
}

// Alloc returns the next free prefix of the given length, aligned to
// its natural boundary. It returns an error when the pool is exhausted.
func (a *Allocator) Alloc(bits int) (netaddr.Prefix, error) {
	if bits < a.pool.Bits() || bits > 32 {
		return netaddr.Prefix{}, fmt.Errorf("topology: cannot allocate /%d from %v", bits, a.pool)
	}
	size := uint64(1) << (32 - bits)
	// Round next up to alignment.
	start := (a.next + size - 1) / size * size
	if start+size > a.pool.NumAddrs() {
		return netaddr.Prefix{}, fmt.Errorf("topology: pool %v exhausted allocating /%d", a.pool, bits)
	}
	a.next = start + size
	return netaddr.PrefixFrom(a.pool.Nth(start), bits), nil
}

// MustAlloc is Alloc that panics on exhaustion; the generator sizes its
// pool so exhaustion is a bug, not an input condition.
func (a *Allocator) MustAlloc(bits int) netaddr.Prefix {
	p, err := a.Alloc(bits)
	if err != nil {
		panic(err)
	}
	return p
}

// Used returns the number of addresses consumed so far (including
// alignment padding).
func (a *Allocator) Used() uint64 { return a.next }

// slab is a chunked arena for the topology's node types (routers,
// links, interfaces). Objects are appended into fixed chunks and
// referenced by pointer, so one chunk allocation amortizes hundreds of
// per-object allocations and keeps objects of one kind contiguous for
// the generation-time scans (Validate, dnsnames, BGP adjacency).
// Pointers into a chunk stay valid forever: chunks are never resized,
// only abandoned when full.
type slab[T any] struct {
	chunk []T
	// chunkSize is the capacity of the next chunk; Reserve raises the
	// first chunk's size to the expected population so steady-state
	// generation allocates O(population / chunkSize) times.
	chunkSize int
}

const defaultSlabChunk = 512

// alloc returns a pointer to a zeroed T from the arena.
func (s *slab[T]) alloc() *T {
	if len(s.chunk) == cap(s.chunk) {
		n := s.chunkSize
		if n <= 0 {
			n = defaultSlabChunk
		}
		s.chunk = make([]T, 0, n)
		s.chunkSize = defaultSlabChunk
	}
	var zero T
	s.chunk = append(s.chunk, zero)
	return &s.chunk[len(s.chunk)-1]
}

// reserve sizes the next chunk (only effective before first use or
// after the current chunk fills).
func (s *slab[T]) reserve(n int) {
	if n > s.chunkSize {
		s.chunkSize = n
	}
}
