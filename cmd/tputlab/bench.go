package main

// The benchmark baseline emitter: `tputlab bench` measures the hot
// paths that dominate campaign collection — path resolution, AS-path
// computation, world generation, and end-to-end corpus collection at
// small and medium scale — and writes a BENCH_<date>.json snapshot.
// Committing one snapshot per performance PR gives the repo a
// comparable trajectory (ns/op, allocs/op, wall time) instead of
// ad-hoc numbers in commit messages; `benchstat` compares the raw
// `go test -bench` output between two checkouts when a statistical
// comparison is needed.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"throughputlab/internal/checkpoint"
	"throughputlab/internal/experiments"
	"throughputlab/internal/export"
	"throughputlab/internal/faults"
	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
)

// BenchResult is one measured benchmark in the emitted baseline.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// CollectionResult is one end-to-end corpus-collection measurement.
type CollectionResult struct {
	Scale       string  `json:"scale"`
	Tests       int     `json:"tests"`
	Traces      int     `json:"traces"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	TestsPerSec float64 `json:"tests_per_second"`
}

// FaultOverhead compares corpus collection with the fault plane off
// and under the heavy profile on the same world and config. The off
// number is the cost of the disabled path — the nil-injector branches —
// and must track CorpusCollection/small across baselines (disabled
// faults are designed to cost ~0); the ratio is what a heavy profile's
// retry planning and perturbation add.
type FaultOverhead struct {
	OffNsPerOp   float64 `json:"off_ns_per_op"`
	HeavyNsPerOp float64 `json:"heavy_ns_per_op"`
	HeavyOverOff float64 `json:"heavy_over_off_ratio"`
}

// StreamingResult measures one chunked CollectStream campaign: the
// streamed-collection envelope (chunk count, peak in-flight records)
// next to its throughput, so perf PRs can see both the memory bound
// and the records-per-second cost of streaming.
type StreamingResult struct {
	Scale        string `json:"scale"`
	Tests        int    `json:"tests"`
	Traces       int    `json:"traces"`
	Chunks       int    `json:"chunks"`
	ChunkTests   int    `json:"chunk_tests"`
	PeakInFlight int    `json:"peak_in_flight"`
	Workers      int    `json:"workers"`
	// Pipelined marks chunk-parallel production (PipelineChunks > 0);
	// PipelineWindow is the reorder-window depth that bounded it. The
	// corpus is byte-identical either way — these rows measure cost.
	Pipelined      bool    `json:"pipelined"`
	PipelineWindow int     `json:"pipeline_window,omitempty"`
	WallSeconds    float64 `json:"wall_seconds"`
	TestsPerSec    float64 `json:"tests_per_second"`
}

// CorpusFormatResult is one persisted-corpus format measurement: the
// same campaign encoded to disk as NDJSON and as the binary columnar
// corpus, then decoded and finally reloaded through the full
// report-over-corpus path. EncodeSeconds is the persist pass minus a
// discard-sink collection baseline on the same warm world, so it
// prices the codec rather than the collection; ReportSHA256 lets the
// baseline itself prove the two formats render identical reports.
type CorpusFormatResult struct {
	Scale   string `json:"scale"`
	Format  string `json:"format"`
	Tests   int    `json:"tests"`
	Traces  int    `json:"traces"`
	Chunks  int    `json:"chunks"`
	Workers int    `json:"workers"`
	// Bytes is the on-disk corpus size.
	Bytes int64 `json:"bytes"`
	// EncodeSeconds is persist wall minus the discard baseline;
	// DecodeSeconds drains every chunk through the worker reader;
	// ReloadSeconds is the end-to-end two-pass report from the file.
	EncodeSeconds float64 `json:"encode_seconds"`
	DecodeSeconds float64 `json:"decode_seconds"`
	ReloadSeconds float64 `json:"reload_seconds"`
	// ReloadPeakHeapMB is the sampled peak heap-in-use over the reload
	// (runtime.ReadMemStats after a pre-reload GC) — the in-process
	// stand-in for the reload rows of the EXPERIMENTS.md RSS table.
	ReloadPeakHeapMB float64 `json:"reload_peak_heap_mb"`
	ReportSHA256     string  `json:"report_sha256"`
}

// heapWatch samples heap-in-use in the background until stopped.
type heapWatch struct {
	stop chan struct{}
	done chan uint64
}

func startHeapWatch() *heapWatch {
	runtime.GC()
	hw := &heapWatch{stop: make(chan struct{}), done: make(chan uint64)}
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-hw.stop:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
				hw.done <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
			}
		}
	}()
	return hw
}

// peakMB stops the watch and returns the peak in MiB.
func (hw *heapWatch) peakMB() float64 {
	close(hw.stop)
	return float64(<-hw.done) / (1 << 20)
}

// corpusFormatRows runs the NDJSON-vs-columnar comparison on one warm
// world: a discard-sink collection baseline, then per format a persist
// pass, a decode drain, and the full report reload. The corpus files
// live in a temp dir and are deleted before returning.
func corpusFormatRows(w *topogen.World, cfg platform.CollectConfig, scaleName string, workers int) ([]CorpusFormatResult, error) {
	dir, err := os.MkdirTemp("", "tputlab-bench-corpus")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	pub := export.FromWorld(w, nil).Public
	meta := export.StreamMeta{Scale: scaleName, Seed: cfg.Seed, Tests: cfg.Tests}

	fmt.Fprintf(os.Stderr, "bench: corpus formats (%s): discard-sink collection baseline...\n", scaleName)
	base, err := platform.CollectStream(w, cfg, workers, func(*platform.Chunk) error { return nil })
	if err != nil {
		return nil, err
	}

	var rows []CorpusFormatResult
	for _, format := range []string{"ndjson", "columnar"} {
		path := filepath.Join(dir, "corpus."+format)
		fmt.Fprintf(os.Stderr, "bench: corpus formats (%s): persisting %s...\n", scaleName, format)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		cw, err := export.NewCorpusWriter(f, format, pub, meta, workers)
		if err != nil {
			f.Close()
			return nil, err
		}
		start := time.Now()
		st, err := platform.CollectStream(w, cfg, workers, cw.WriteChunk)
		if err == nil {
			err = cw.Close()
		}
		if cErr := f.Close(); err == nil {
			err = cErr
		}
		if err != nil {
			return nil, err
		}
		encode := time.Since(start).Seconds() - base.WallSeconds
		if encode < 0 {
			encode = 0
		}
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}

		fmt.Fprintf(os.Stderr, "bench: corpus formats (%s): decoding %s (%d MB)...\n",
			scaleName, format, fi.Size()>>20)
		start = time.Now()
		in, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		cr, err := export.OpenCorpusWorkers(in, workers)
		if err != nil {
			in.Close()
			return nil, err
		}
		for {
			if _, err = cr.Next(); err != nil {
				break
			}
		}
		cr.Close()
		in.Close()
		if err != io.EOF {
			return nil, fmt.Errorf("bench: draining %s corpus: %w", format, err)
		}
		decode := time.Since(start).Seconds()

		fmt.Fprintf(os.Stderr, "bench: corpus formats (%s): report reload from %s...\n", scaleName, format)
		hw := startHeapWatch()
		start = time.Now()
		out, err := reportFromCorpus(path, format, experiments.Options{Workers: workers}, nil)
		reload := time.Since(start).Seconds()
		peak := hw.peakMB()
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256([]byte(out))
		rows = append(rows, CorpusFormatResult{
			Scale: scaleName, Format: format,
			Tests: st.Tests, Traces: st.Traces, Chunks: st.Chunks, Workers: workers,
			Bytes:         fi.Size(),
			EncodeSeconds: encode, DecodeSeconds: decode, ReloadSeconds: reload,
			ReloadPeakHeapMB: peak,
			ReportSHA256:     hex.EncodeToString(sum[:]),
		})
	}
	return rows, nil
}

// CheckpointOverhead compares persisting one streamed campaign through
// a plain corpus writer against the crash-safe checkpointing writer —
// partial-file indirection, chunk-boundary encode-pipeline drains,
// fsync and atomic manifest rewrites at the default cadence, then the
// rename publication — on the same warm world. The corpus bytes are
// identical; the ratio is the durability tax, budgeted at <= 3% and
// held there by CI.
type CheckpointOverhead struct {
	PlainSeconds        float64 `json:"plain_seconds"`
	CheckpointSeconds   float64 `json:"checkpoint_seconds"`
	CheckpointOverPlain float64 `json:"checkpoint_over_plain_ratio"`
}

// checkpointOverheadRow measures the plain-vs-checkpointed persist pair
// (median of three alternating rounds, so one background hiccup cannot
// swing the ratio).
func checkpointOverheadRow(w *topogen.World, cfg platform.CollectConfig, scaleName string, workers int) (*CheckpointOverhead, error) {
	dir, err := os.MkdirTemp("", "tputlab-bench-ckpt")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	pub := export.FromWorld(w, nil).Public
	meta := export.StreamMeta{Scale: scaleName, Seed: cfg.Seed, Tests: cfg.Tests}
	fp := checkpoint.Fingerprint{
		Scale: scaleName, Seed: cfg.Seed, Tests: cfg.Tests,
		Shards: cfg.Shards, ChunkTests: cfg.ChunkTests,
		Faults: cfg.Faults.Name, FaultSeed: cfg.FaultSeed, Format: "ndjson",
	}

	plainOnce := func() (float64, error) {
		path := filepath.Join(dir, "plain.corpus")
		f, err := os.Create(path)
		if err != nil {
			return 0, err
		}
		cw, err := export.NewCorpusWriter(f, "ndjson", pub, meta, workers)
		if err != nil {
			f.Close()
			return 0, err
		}
		start := time.Now()
		_, err = platform.CollectStream(w, cfg, workers, cw.WriteChunk)
		if err == nil {
			err = cw.Close()
		}
		if cErr := f.Close(); err == nil {
			err = cErr
		}
		return time.Since(start).Seconds(), err
	}
	ckptOnce := func() (float64, error) {
		path := filepath.Join(dir, "ckpt.corpus")
		cw, err := checkpoint.Create(path, "ndjson", pub, meta, fp, workers, checkpoint.Options{})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		_, err = platform.CollectStream(w, cfg, workers, cw.WriteChunk)
		if err == nil {
			err = cw.Close()
		} else {
			cw.Discard()
		}
		return time.Since(start).Seconds(), err
	}

	var plains, ckpts []float64
	for i := 0; i < 3; i++ {
		p, err := plainOnce()
		if err != nil {
			return nil, err
		}
		c, err := ckptOnce()
		if err != nil {
			return nil, err
		}
		plains = append(plains, p)
		ckpts = append(ckpts, c)
	}
	co := &CheckpointOverhead{
		PlainSeconds:      medianFloat(plains),
		CheckpointSeconds: medianFloat(ckpts),
	}
	if co.PlainSeconds > 0 {
		co.CheckpointOverPlain = co.CheckpointSeconds / co.PlainSeconds
	}
	return co, nil
}

// medianFloat returns the median of a small sample.
func medianFloat(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// medianResult picks the result with the median per-op wall time.
func medianResult(rs []testing.BenchmarkResult) testing.BenchmarkResult {
	sorted := append([]testing.BenchmarkResult(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NsPerOp() < sorted[j].NsPerOp() })
	return sorted[len(sorted)/2]
}

// TelemetryOverhead compares corpus collection with telemetry off
// (nil registry) and fully on (registry + simulated-clock sampler +
// event bus) on the same world and config. The corpus is byte-identical
// either way; the ratio is the live-telemetry tax, budgeted at <= 5%.
type TelemetryOverhead struct {
	PlainNsPerOp          float64 `json:"plain_ns_per_op"`
	InstrumentedNsPerOp   float64 `json:"instrumented_ns_per_op"`
	InstrumentedOverPlain float64 `json:"instrumented_over_plain_ratio"`
}

// Baseline is the full emitted document.
type Baseline struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Note       string             `json:"note,omitempty"`
	Benchmarks []BenchResult      `json:"benchmarks"`
	Collection []CollectionResult `json:"collection"`
	// Streaming measures chunked (bounded-memory) collection on the same
	// scales as Collection; present in -quick mode too, so CI can assert
	// the streamed tests/sec and chunk metrics exist.
	Streaming []StreamingResult `json:"streaming"`
	// CorpusFormats compares the persisted corpus formats (NDJSON vs
	// binary columnar) on encode, decode, on-disk size and full report
	// reload; present in -quick mode too (small scale), so CI can
	// assert the reload rows exist and the per-format reports agree.
	CorpusFormats []CorpusFormatResult `json:"corpus_formats,omitempty"`
	// FaultOverhead is the clean-vs-heavy fault-profile collection pair
	// (absent in -quick mode).
	FaultOverhead *FaultOverhead `json:"fault_overhead,omitempty"`
	// TelemetryOverhead is the plain-vs-fully-instrumented collection
	// pair (present in -quick mode too, so CI can hold the budget).
	TelemetryOverhead *TelemetryOverhead `json:"telemetry_overhead,omitempty"`
	// CheckpointOverhead is the plain-vs-checkpointed corpus-persist
	// pair on the last in-memory scale (present in -quick mode too, so
	// CI can hold the <= 3% durability budget).
	CheckpointOverhead *CheckpointOverhead `json:"checkpoint_overhead,omitempty"`
	// ResolverCacheHitRates records the resolver cache efficiency over
	// the medium-scale collection run, as percentages.
	ResolverCacheHitRates map[string]float64 `json:"resolver_cache_hit_rates"`
	// Observability is the obs registry snapshot of the instrumented
	// end-to-end run (medium scale, or small in -quick mode): the
	// generation/collection phase-span tree, cache and fallback
	// counters, per-shard collection gauges, the simulated-clock time
	// series of the collect counters, and the progress-event totals. It
	// gives future perf PRs per-phase attribution next to the raw
	// numbers.
	Observability *obs.Dump `json:"observability,omitempty"`
}

// benchStreamWindow is the reorder-window depth the pipelined
// streaming rows run at; it matches the CI streaming smoke.
const benchStreamWindow = 4

// resolverRates snapshots a world resolver's cache efficiency as
// percentages.
func resolverRates(r *routing.Resolver) map[string]float64 {
	st := r.Stats()
	rate := func(h, m uint64) float64 {
		if h+m == 0 {
			return 0
		}
		return 100 * float64(h) / float64(h+m)
	}
	return map[string]float64{
		"segment": rate(st.SegmentHits, st.SegmentMisses),
		"inter":   rate(st.InterHits, st.InterMisses),
		"aspath":  rate(st.ASPathHits, st.ASPathMisses),
	}
}

// parseWorkerList parses a "1,2,8"-style -stream-workers value.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -stream-workers entry %q (want positive integers, e.g. 1,2,8)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func record(name string, r testing.BenchmarkResult) BenchResult {
	return BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "output path (default BENCH_<date>.json)")
	note := fs.String("note", "", "free-form note embedded in the baseline")
	mediumTests := fs.Int("medium-tests", 8000, "corpus size for the medium-scale collection measurement")
	workers := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count for the parallel collection measurement")
	genWorkers := fs.Int("genworkers", runtime.GOMAXPROCS(0), "world-generation worker count for the parallel generation measurement")
	quick := fs.Bool("quick", false, "CI smoke mode: small-scale measurements only")
	streamScale := fs.String("stream-scale", "", "also measure streamed collection at this -scale profile (e.g. large, xlarge)")
	streamWorkers := fs.String("stream-workers", "", "comma-separated worker counts for pipelined -stream-scale rows (e.g. 1,2,8)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers("parallel", *workers); err != nil {
		return err
	}
	if err := validateWorkers("genworkers", *genWorkers); err != nil {
		return err
	}
	date := time.Now().UTC().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	b := &Baseline{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
	}

	// World generation at one worker (comparable with earlier
	// baselines) and at -genworkers; medium scale tracks scaling
	// behaviour and is skipped in -quick mode.
	genScales := []struct {
		name string
		cfg  topogen.Config
	}{{"small", topogen.SmallConfig()}}
	if !*quick {
		genScales = append(genScales, struct {
			name string
			cfg  topogen.Config
		}{"medium", topogen.DefaultConfig()})
	}
	genCounts := []int{1}
	if *genWorkers > 1 {
		genCounts = append(genCounts, *genWorkers)
	}
	for _, gs := range genScales {
		for _, n := range genCounts {
			name := "WorldGeneration/" + gs.name
			if n != 1 {
				name = fmt.Sprintf("%s/w%d", name, n)
			}
			cfg := gs.cfg
			cfg.Workers = n
			fmt.Fprintf(os.Stderr, "bench: world generation (%s, %d workers)...\n", gs.name, n)
			b.Benchmarks = append(b.Benchmarks, record(name, testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					topogen.MustGenerate(cfg)
				}
			})))
		}
	}

	w := topogen.MustGenerate(topogen.SmallConfig())
	households := platform.BuildPopulation(w, 10, 8)
	servers := w.MLabServers()

	fmt.Fprintln(os.Stderr, "bench: resolver (warm cache)...")
	b.Benchmarks = append(b.Benchmarks, record("ResolverResolve/warm", testing.Benchmark(func(tb *testing.B) {
		rng := rand.New(rand.NewSource(1))
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			h := households[rng.Intn(len(households))]
			s := servers[rng.Intn(len(servers))]
			key := routing.FlowKey(s.Endpoint.Addr, h.Endpoint.Addr, uint32(i))
			if _, err := w.Resolver.Resolve(s.Endpoint, h.Endpoint, key); err != nil {
				tb.Fatal(err)
			}
		}
	})))

	fmt.Fprintln(os.Stderr, "bench: resolver (cache disabled)...")
	uncached := routing.New(w.Topo, w.Routes)
	uncached.DisableCache()
	b.Benchmarks = append(b.Benchmarks, record("ResolverResolve/uncached", testing.Benchmark(func(tb *testing.B) {
		rng := rand.New(rand.NewSource(1))
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			h := households[rng.Intn(len(households))]
			s := servers[rng.Intn(len(servers))]
			key := routing.FlowKey(s.Endpoint.Addr, h.Endpoint.Addr, uint32(i))
			if _, err := uncached.Resolve(s.Endpoint, h.Endpoint, key); err != nil {
				tb.Fatal(err)
			}
		}
	})))

	fmt.Fprintln(os.Stderr, "bench: AS-path computation...")
	asns := w.Topo.ASNs()
	b.Benchmarks = append(b.Benchmarks, record("BGPPath", testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			src := asns[i%len(asns)]
			dst := asns[(i*7+3)%len(asns)]
			w.Routes.Path(src, dst)
		}
	})))

	if !*quick {
		fmt.Fprintln(os.Stderr, "bench: corpus collection (small, serial)...")
		smallCfg := platform.DefaultCollect()
		smallCfg.Tests = 2000
		smallCfg.PerPoolClients = 10
		b.Benchmarks = append(b.Benchmarks, record("CorpusCollection/small", testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if _, err := platform.Collect(w, smallCfg); err != nil {
					tb.Fatal(err)
				}
			}
		})))

		// Fault-profile pair on the same world/config: the off leg is
		// the disabled (nil-injector) path, the heavy leg adds retry
		// planning, truncation and trace perturbation.
		fmt.Fprintln(os.Stderr, "bench: corpus collection fault overhead (off vs heavy)...")
		heavyCfg := smallCfg
		heavyCfg.Faults = faults.Heavy()
		rOff := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if _, err := platform.Collect(w, smallCfg); err != nil {
					tb.Fatal(err)
				}
			}
		})
		rHeavy := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if _, err := platform.Collect(w, heavyCfg); err != nil {
					tb.Fatal(err)
				}
			}
		})
		b.Benchmarks = append(b.Benchmarks,
			record("CorpusCollection/faults-off", rOff),
			record("CorpusCollection/faults-heavy", rHeavy))
		fo := &FaultOverhead{
			OffNsPerOp:   float64(rOff.T.Nanoseconds()) / float64(rOff.N),
			HeavyNsPerOp: float64(rHeavy.T.Nanoseconds()) / float64(rHeavy.N),
		}
		if fo.OffNsPerOp > 0 {
			fo.HeavyOverOff = fo.HeavyNsPerOp / fo.OffNsPerOp
		}
		b.FaultOverhead = fo
	}

	// Telemetry-overhead pair on the same small world: a plain run (nil
	// registry, the disabled no-op path) against a fully telemetered one
	// (registry + simulated-clock sampler + event bus with a discarding
	// sink). The corpus bytes are identical; the ratio is the cost of
	// watching, held to the <= 5% budget by CI.
	fmt.Fprintln(os.Stderr, "bench: corpus collection telemetry overhead (plain vs instrumented)...")
	tCfg := platform.DefaultCollect()
	tCfg.Tests = 2000
	tCfg.PerPoolClients = 10
	if *quick {
		tCfg.Tests = 500
	}
	benchPlain := func() testing.BenchmarkResult {
		return testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if _, err := platform.Collect(w, tCfg); err != nil {
					tb.Fatal(err)
				}
			}
		})
	}
	benchInstr := func() testing.BenchmarkResult {
		return testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				// Registry construction and bus drain are per-campaign
				// setup, not the collection hot path the budget covers.
				tb.StopTimer()
				reg := obs.NewRegistry()
				reg.EnableTimeSeries(0, 0, nil)
				bus := reg.EnableEvents(4096)
				bus.AddSink(func(obs.Event) {})
				cfg := tCfg
				cfg.Obs = reg
				tb.StartTimer()
				if _, err := platform.Collect(w, cfg); err != nil {
					tb.Fatal(err)
				}
				tb.StopTimer()
				bus.Close()
				tb.StartTimer()
			}
		})
	}
	// One draw of each is too noisy to hold a 5% budget against on a
	// shared box: alternate three rounds and keep the median ns/op of
	// each side.
	var plains, instrs []testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		plains = append(plains, benchPlain())
		instrs = append(instrs, benchInstr())
	}
	rPlain := medianResult(plains)
	rInstr := medianResult(instrs)
	b.Benchmarks = append(b.Benchmarks,
		record("CorpusCollection/telemetry-off", rPlain),
		record("CorpusCollection/telemetry-on", rInstr))
	to := &TelemetryOverhead{
		PlainNsPerOp:        float64(rPlain.T.Nanoseconds()) / float64(rPlain.N),
		InstrumentedNsPerOp: float64(rInstr.T.Nanoseconds()) / float64(rInstr.N),
	}
	if to.PlainNsPerOp > 0 {
		to.InstrumentedOverPlain = to.InstrumentedNsPerOp / to.PlainNsPerOp
	}
	b.TelemetryOverhead = to

	// End-to-end wall-time measurements on fresh worlds, so cold-cache
	// warm-up is included exactly once per scale.
	scales := []struct {
		name  string
		cfg   topogen.Config
		tests int
	}{
		{"small", topogen.SmallConfig(), 2000},
	}
	if *quick {
		scales[0].tests = 500
	} else {
		scales = append(scales, struct {
			name  string
			cfg   topogen.Config
			tests int
		}{"medium", topogen.DefaultConfig(), *mediumTests})
	}
	for i, scale := range scales {
		fmt.Fprintf(os.Stderr, "bench: end-to-end collection (%s, %d tests, %d workers)...\n",
			scale.name, scale.tests, *workers)
		// The last scale (medium, or small in -quick mode) carries a
		// fully telemetered obs registry, so every baseline — CI smoke
		// included — embeds the phase-span tree, pipeline counters, the
		// simulated-clock time series, and the event totals.
		var reg *obs.Registry
		var bus *obs.Bus
		if i == len(scales)-1 {
			reg = obs.NewRegistry()
			// Allowlist the campaign-level collect series; the per-shard
			// gauges would bloat the committed baseline without adding a
			// trajectory worth tracking.
			reg.EnableTimeSeries(0, 0, func(name string) bool {
				return strings.HasPrefix(name, "collect.") && !strings.HasPrefix(name, "collect.shard.")
			})
			bus = reg.EnableEvents(4096)
			scale.cfg.Obs = reg
		}
		scale.cfg.Workers = *genWorkers
		fw := topogen.MustGenerate(scale.cfg)
		cfg := platform.DefaultCollect()
		cfg.Tests = scale.tests
		cfg.Obs = reg
		start := time.Now()
		corpus, err := platform.CollectParallel(fw, cfg, *workers)
		if err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		b.Collection = append(b.Collection, CollectionResult{
			Scale: scale.name, Tests: len(corpus.Tests), Traces: len(corpus.Traces),
			Workers: *workers, WallSeconds: wall,
			TestsPerSec: float64(len(corpus.Tests)) / wall,
		})
		// Streamed leg on the same (now warm) world: the chunk size is
		// picked to cut the campaign into ~8 chunks so the chunk metrics
		// are non-trivial even at -quick scale.
		scfg := cfg
		scfg.ChunkTests = scale.tests / 8
		if scfg.ChunkTests < 1 {
			scfg.ChunkTests = 1
		}
		fmt.Fprintf(os.Stderr, "bench: streamed collection (%s, chunk size %d)...\n", scale.name, scfg.ChunkTests)
		sst, err := platform.CollectStream(fw, scfg, *workers, func(*platform.Chunk) error { return nil })
		if err != nil {
			return err
		}
		b.Streaming = append(b.Streaming, StreamingResult{
			Scale: scale.name, Tests: sst.Tests, Traces: sst.Traces,
			Chunks: sst.Chunks, ChunkTests: scfg.ChunkTests, PeakInFlight: sst.PeakInFlight,
			Workers: *workers, WallSeconds: sst.WallSeconds, TestsPerSec: sst.TestsPerSec,
		})
		// Pipelined leg on the same config: chunk-parallel production
		// behind the reorder window, so every baseline carries a
		// barrier-vs-pipelined pair per scale.
		pcfg := scfg
		pcfg.PipelineChunks = benchStreamWindow
		fmt.Fprintf(os.Stderr, "bench: streamed collection (%s, pipelined, window %d)...\n", scale.name, pcfg.PipelineChunks)
		pst, err := platform.CollectStream(fw, pcfg, *workers, func(*platform.Chunk) error { return nil })
		if err != nil {
			return err
		}
		b.Streaming = append(b.Streaming, StreamingResult{
			Scale: scale.name, Tests: pst.Tests, Traces: pst.Traces,
			Chunks: pst.Chunks, ChunkTests: pcfg.ChunkTests, PeakInFlight: pst.PeakInFlight,
			Workers: *workers, Pipelined: true, PipelineWindow: pcfg.PipelineChunks,
			WallSeconds: pst.WallSeconds, TestsPerSec: pst.TestsPerSec,
		})
		if reg != nil {
			b.ResolverCacheHitRates = resolverRates(fw.Resolver)
			bus.Close() // drain so the event totals are final
			b.Observability = reg.Snapshot()
		}
		// The streamed legs exercised the resolver either way: in -quick
		// mode (no medium run) snapshot the cache efficiency here so the
		// baseline never carries a null rate table.
		if b.ResolverCacheHitRates == nil {
			b.ResolverCacheHitRates = resolverRates(fw.Resolver)
		}
		// Corpus-format comparison on the last (largest) in-memory scale
		// — medium, or small in -quick mode, so CI always has reload
		// rows to assert against.
		if i == len(scales)-1 {
			rows, err := corpusFormatRows(fw, scfg, scale.name, *workers)
			if err != nil {
				return err
			}
			b.CorpusFormats = append(b.CorpusFormats, rows...)
			fmt.Fprintf(os.Stderr, "bench: checkpoint overhead (%s, plain vs checkpointed persist)...\n", scale.name)
			co, err := checkpointOverheadRow(fw, scfg, scale.name, *workers)
			if err != nil {
				return err
			}
			b.CheckpointOverhead = co
		}
	}

	// Optional extra streamed-collection measurement at a named scale
	// profile — this is how the large/xlarge campaigns get their
	// streamed tests/sec into the baseline without ever materializing
	// the corpus.
	if *streamScale != "" {
		opts, err := scaleOptions(*streamScale)
		if err != nil {
			return err
		}
		opts.Topo.Workers = *genWorkers
		fmt.Fprintf(os.Stderr, "bench: generating %s world (%d workers)...\n", *streamScale, *genWorkers)
		sw := topogen.MustGenerate(opts.Topo)
		cfg := opts.Collect
		chunk := cfg.ChunkTests
		if chunk <= 0 {
			chunk = platform.DefaultChunkTests
		}
		// One barrier row for continuity with earlier baselines, then
		// (with -stream-workers) pipelined rows across worker counts on
		// the same warm world — the corpus is identical in every row.
		fmt.Fprintf(os.Stderr, "bench: streamed collection (%s, %d tests, %d workers, chunk size %d)...\n",
			*streamScale, cfg.Tests, *workers, chunk)
		sst, err := platform.CollectStream(sw, cfg, *workers, func(*platform.Chunk) error { return nil })
		if err != nil {
			return err
		}
		b.Streaming = append(b.Streaming, StreamingResult{
			Scale: *streamScale, Tests: sst.Tests, Traces: sst.Traces,
			Chunks: sst.Chunks, ChunkTests: chunk, PeakInFlight: sst.PeakInFlight,
			Workers: *workers, WallSeconds: sst.WallSeconds, TestsPerSec: sst.TestsPerSec,
		})
		if *streamWorkers != "" {
			counts, err := parseWorkerList(*streamWorkers)
			if err != nil {
				return err
			}
			for _, n := range counts {
				pcfg := cfg
				pcfg.PipelineChunks = benchStreamWindow
				fmt.Fprintf(os.Stderr, "bench: streamed collection (%s, pipelined, %d workers, window %d)...\n",
					*streamScale, n, pcfg.PipelineChunks)
				pst, err := platform.CollectStream(sw, pcfg, n, func(*platform.Chunk) error { return nil })
				if err != nil {
					return err
				}
				b.Streaming = append(b.Streaming, StreamingResult{
					Scale: *streamScale, Tests: pst.Tests, Traces: pst.Traces,
					Chunks: pst.Chunks, ChunkTests: chunk, PeakInFlight: pst.PeakInFlight,
					Workers: n, Pipelined: true, PipelineWindow: pcfg.PipelineChunks,
					WallSeconds: pst.WallSeconds, TestsPerSec: pst.TestsPerSec,
				})
			}
		}
		if b.ResolverCacheHitRates == nil {
			b.ResolverCacheHitRates = resolverRates(sw.Resolver)
		}
		// Corpus-format comparison at the named scale: at xlarge this is
		// the headline reload row — the columnar report-over-corpus path
		// against the NDJSON stream on the same million-test campaign.
		rows, err := corpusFormatRows(sw, cfg, *streamScale, *workers)
		if err != nil {
			return err
		}
		b.CorpusFormats = append(b.CorpusFormats, rows...)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	return nil
}
