// Package stats provides the statistical primitives used by the
// congestion-inference pipeline: summary statistics, quantiles,
// hour-of-day binning, bootstrap confidence intervals, and the
// Mann–Whitney U test used to compare peak vs off-peak throughput
// samples (§6 of the paper).
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/numpy default).
// It returns NaN for an empty sample. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantilesSorted returns the quantiles qs of a pre-sorted sample,
// avoiding repeated copies when many quantiles of the same data are
// needed.
func QuantilesSorted(sorted []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// HourBins groups (hour, value) observations into 24 hour-of-day bins.
// This is the aggregation underlying Figure 5 and the diurnal analysis.
type HourBins struct {
	bins [24][]float64
}

// Add records a value observed at local hour h (fractional hours
// allowed; binned by floor). Hours outside [0,24) are wrapped.
func (b *HourBins) Add(hour float64, v float64) {
	h := int(math.Floor(math.Mod(hour, 24)))
	if h < 0 {
		h += 24
	}
	b.bins[h] = append(b.bins[h], v)
}

// Bin returns the raw values in hour bin h.
func (b *HourBins) Bin(h int) []float64 { return b.bins[((h%24)+24)%24] }

// Counts returns the number of samples per hour.
func (b *HourBins) Counts() [24]int {
	var c [24]int
	for h := range b.bins {
		c[h] = len(b.bins[h])
	}
	return c
}

// Series applies f to each hour bin and returns the 24 results; empty
// bins yield NaN.
func (b *HourBins) Series(f func([]float64) float64) [24]float64 {
	var out [24]float64
	for h := range b.bins {
		if len(b.bins[h]) == 0 {
			out[h] = math.NaN()
			continue
		}
		out[h] = f(b.bins[h])
	}
	return out
}

// Medians returns the per-hour median series.
func (b *HourBins) Medians() [24]float64 { return b.Series(Median) }

// Means returns the per-hour mean series.
func (b *HourBins) Means() [24]float64 {
	return b.Series(func(xs []float64) float64 { return Summarize(xs).Mean })
}

// Stddevs returns the per-hour sample standard deviation series.
func (b *HourBins) Stddevs() [24]float64 {
	return b.Series(func(xs []float64) float64 { return Summarize(xs).Stddev })
}

// Total returns the total number of samples across all hours.
func (b *HourBins) Total() int {
	n := 0
	for h := range b.bins {
		n += len(b.bins[h])
	}
	return n
}

// BootstrapCI returns a percentile bootstrap confidence interval for
// statistic f of xs at the given confidence level (e.g. 0.95), using
// iters resamples drawn from rng. It returns (lo, hi). For N == 0 it
// returns NaNs.
func BootstrapCI(xs []float64, f func([]float64) float64, level float64, iters int, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 || iters <= 0 {
		return math.NaN(), math.NaN()
	}
	est := make([]float64, iters)
	resample := make([]float64, len(xs))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		est[i] = f(resample)
	}
	sort.Float64s(est)
	alpha := (1 - level) / 2
	return quantileSorted(est, alpha), quantileSorted(est, 1-alpha)
}

// MannWhitneyU performs a two-sided Mann–Whitney U test of whether
// samples xs and ys come from the same distribution, returning the U
// statistic (for xs) and an approximate two-sided p-value using the
// normal approximation with tie correction. The approximation is
// appropriate for the sample sizes the pipeline feeds it (tens+); tiny
// samples return p = 1 conservatively.
func MannWhitneyU(xs, ys []float64) (u float64, p float64) {
	nx, ny := len(xs), len(ys)
	if nx == 0 || ny == 0 {
		return 0, 1
	}
	type obs struct {
		v    float64
		isX  bool
		rank float64
	}
	all := make([]obs, 0, nx+ny)
	for _, v := range xs {
		all = append(all, obs{v: v, isX: true})
	}
	for _, v := range ys {
		all = append(all, obs{v: v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie-correction term.
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			all[k].rank = r
		}
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	var rx float64
	for _, o := range all {
		if o.isX {
			rx += o.rank
		}
	}
	u = rx - float64(nx)*float64(nx+1)/2
	if nx < 5 || ny < 5 {
		return u, 1
	}
	n := float64(nx + ny)
	mu := float64(nx) * float64(ny) / 2
	sigma2 := float64(nx) * float64(ny) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return u, 1
	}
	z := (u - mu) / math.Sqrt(sigma2)
	// Continuity correction toward the mean.
	if z > 0 {
		z = (u - mu - 0.5) / math.Sqrt(sigma2)
	} else if z < 0 {
		z = (u - mu + 0.5) / math.Sqrt(sigma2)
	}
	p = 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return u, p
}

// normalSF is the standard normal survival function 1 - Φ(x).
func normalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// WeightedChoice returns an index in [0, len(weights)) sampled with
// probability proportional to weights[i]. Zero or negative total weight
// falls back to uniform. Used for metro/ISP/tier sampling.
func WeightedChoice(weights []float64, rng *rand.Rand) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// WeightedSampler is WeightedChoice with the total precomputed, for
// hot loops that draw many times from one fixed weight vector (e.g.
// household selection during campaign scheduling). Pick consumes the
// same RNG draws and performs the same left-to-right subtraction scan
// as WeightedChoice, so the two are draw-for-draw identical; the
// sampler only skips re-summing the weights on every call.
type WeightedSampler struct {
	weights []float64
	total   float64
}

// NewWeightedSampler captures the weight vector (not copied; the
// caller must not mutate it).
func NewWeightedSampler(weights []float64) *WeightedSampler {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	return &WeightedSampler{weights: weights, total: total}
}

// Pick returns an index sampled like WeightedChoice(weights, rng).
func (s *WeightedSampler) Pick(rng *rand.Rand) int {
	if s.total <= 0 {
		return rng.Intn(len(s.weights))
	}
	r := rng.Float64() * s.total
	for i, w := range s.weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(s.weights) - 1
}
