// Unified corpus access across the two persisted formats: the NDJSON
// stream (tputlab-corpus/1, debuggable and jq-able) and the binary
// columnar corpus (tputlab-corpus/2, built for repeated re-analysis).
// Callers that replay a corpus — report, platform reload, the future
// campaign server — open through here and never care which format is
// on disk; format-specific entry points stay available for callers
// that require one (and fail with an error naming both the detected
// and the expected format when handed the other).
package export

import (
	"bufio"
	"fmt"
	"io"

	"throughputlab/internal/platform"
)

// CorpusWriter persists a campaign chunk by chunk; StreamWriter and
// ColumnarWriter both satisfy it, so a collection sink can pick the
// on-disk format at runtime. Sync is the chunk-boundary durability
// barrier: it drains every submitted chunk through the encode pipeline
// and the bufio layer, after which the underlying writer holds a
// well-formed prefix the checkpoint layer can fsync and record.
// Abandon stops the writer without sealing the file (no footer) — the
// interrupt path, where the on-disk prefix must stay visibly partial.
type CorpusWriter interface {
	WriteChunk(c *platform.Chunk) error
	Sync() error
	Close() error
	Abandon()
	Footer() StreamFooter
}

// CorpusReader replays a persisted corpus chunk by chunk; StreamReader
// and ColumnarReader both satisfy it.
type CorpusReader interface {
	Public() *Public
	Meta() StreamMeta
	Next() (*StreamChunk, error)
	Footer() *StreamFooter
	Close() error
}

var (
	_ CorpusWriter = (*StreamWriter)(nil)
	_ CorpusWriter = (*ColumnarWriter)(nil)
	_ CorpusReader = (*StreamReader)(nil)
	_ CorpusReader = (*ColumnarReader)(nil)
)

// NewCorpusWriter opens a chunked corpus writer in the named format
// ("ndjson" or "columnar"), with worker-parallel encode when workers
// is greater than one.
func NewCorpusWriter(w io.Writer, format string, public Public, meta StreamMeta, workers int) (CorpusWriter, error) {
	switch format {
	case "", "ndjson":
		return NewStreamWriterWorkers(w, public, meta, workers)
	case "columnar":
		return NewColumnarWriterWorkers(w, public, meta, workers)
	}
	return nil, fmt.Errorf("export: unknown corpus format %q (want ndjson or columnar)", format)
}

// OpenCorpus opens a persisted corpus of either format, detected by
// its magic bytes.
func OpenCorpus(r io.Reader) (CorpusReader, error) {
	return OpenCorpusProjected(r, 1, EverythingProjection())
}

// OpenCorpusWorkers is OpenCorpus with worker-parallel chunk decoding.
func OpenCorpusWorkers(r io.Reader, workers int) (CorpusReader, error) {
	return OpenCorpusProjected(r, workers, EverythingProjection())
}

// OpenCorpusProjected opens a persisted corpus of either format with a
// column projection. Only the columnar format can act on it — skipping
// the stripes of a projected-out family is the big lever behind the
// fast report-over-corpus path — but the projection is honored
// logically by both: chunks from an NDJSON stream simply carry the
// full rows.
func OpenCorpusProjected(r io.Reader, workers int, proj Projection) (CorpusReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(columnarMagic))
	if err == nil && string(head) == columnarMagic {
		return OpenColumnarProjected(br, workers, proj)
	}
	return OpenStreamWorkers(br, workers)
}

// materializeCorpus drains an open reader into a Dataset.
func materializeCorpus(cr CorpusReader) (*Dataset, error) {
	d := &Dataset{Public: *cr.Public()}
	for {
		c, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		d.Tests = append(d.Tests, c.Tests...)
		d.Traces = append(d.Traces, c.Traces...)
	}
	f := cr.Footer()
	d.TestsWithoutTrace = f.TestsWithoutTrace
	d.Completeness = f.Completeness
	return d, nil
}
