// Package traceroute simulates Paris traceroute over resolved
// router-level paths. Paris traceroute holds the header fields that
// load balancers hash constant within a trace, so one trace sees one
// consistent path (§3); across traces, different flow identifiers may
// legitimately take different ECMP members.
//
// The simulator reproduces the artifacts that make interdomain-link
// inference hard (§4.2, [25]):
//   - point-to-point interfaces numbered out of either AS's space (this
//     comes from the topology itself);
//   - third-party addresses: a router may reply with an interface that
//     is not the one the probe entered on;
//   - unresponsive hops ("*");
//   - unresponsive destinations (NAT/firewalled clients).
package traceroute

import (
	"math/rand"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/routing"
	"throughputlab/internal/topology"
)

// Hop is one TTL step of a trace.
type Hop struct {
	TTL int
	// Addr is the replying interface address; zero means no reply.
	Addr netaddr.Addr
	// DNSName is the PTR record of the replying interface ("" if none).
	DNSName string
	// RTTms is the probe round-trip time.
	RTTms float64
}

// NoReply reports whether the hop timed out.
func (h Hop) NoReply() bool { return h.Addr.IsZero() }

// Trace is one Paris traceroute.
type Trace struct {
	SrcAddr, DstAddr netaddr.Addr
	// LaunchMinute is the simulation time the trace started.
	LaunchMinute int
	// FlowEntropy is the Paris flow identifier (kept constant within
	// the trace).
	FlowEntropy uint32
	Hops        []Hop
	// Reached reports whether the destination replied. The invariant —
	// enforced by Normalize — is that Reached implies the final hop is
	// a reply from DstAddr; a no-reply final hop is never a reached
	// destination, no matter how the hops were perturbed.
	Reached bool
	// Degraded marks a trace maimed after collection by the fault
	// layer (probe loss, ICMP rate limiting): its responsive hops may
	// be non-adjacent on the real path, so inference layers skip it
	// rather than ingest false adjacencies. Artifact draws at
	// collection time (Artifacts) never set it.
	Degraded bool
}

// Normalize enforces the trace's structural invariant: Reached stays
// true only while the final hop actually replied with the destination
// address. Collection sets Reached and the final hop together, but
// post-collection perturbation (the fault layer) can blank the
// destination hop — anything that rewrites Hops must route through
// Normalize so a NoReply final hop cannot be counted as a reached
// destination.
func (t *Trace) Normalize() {
	if len(t.Hops) == 0 {
		t.Reached = false
		return
	}
	if last := t.Hops[len(t.Hops)-1]; last.NoReply() || last.Addr != t.DstAddr {
		t.Reached = false
	}
}

// Artifacts configures measurement imperfections.
type Artifacts struct {
	// ThirdPartyProb is the chance a router replies with an interface
	// other than the in-path ingress.
	ThirdPartyProb float64
	// NoReplyProb is the chance a router hop times out.
	NoReplyProb float64
	// DstNoReplyProb is the chance the destination host never replies.
	DstNoReplyProb float64
}

// DefaultArtifacts returns rates typical of wide-area campaigns.
func DefaultArtifacts() Artifacts {
	return Artifacts{ThirdPartyProb: 0.05, NoReplyProb: 0.03, DstNoReplyProb: 0.12}
}

// Clean returns artifact-free settings (useful for unit tests).
func Clean() Artifacts { return Artifacts{} }

// Tracer issues simulated traceroutes.
type Tracer struct {
	topo *topology.Topology
	rv   *routing.Resolver
	art  Artifacts
}

// New builds a Tracer.
func New(t *topology.Topology, rv *routing.Resolver, art Artifacts) *Tracer {
	return &Tracer{topo: t, rv: rv, art: art}
}

// canonicalIface returns the interface a router tends to reply with
// when not using the ingress (its first addressed interface).
func canonicalIface(r *topology.Router) *topology.Interface {
	for _, ifc := range r.Ifaces {
		if !ifc.Addr.IsZero() {
			return ifc
		}
	}
	return nil
}

// Trace performs one Paris traceroute from src to dst at the given
// simulation minute. rng drives the artifact draws; it must not be nil
// unless all artifact probabilities are zero.
func (tr *Tracer) Trace(src, dst routing.Endpoint, entropy uint32, minute int, rng *rand.Rand) (*Trace, error) {
	key := routing.FlowKey(src.Addr, dst.Addr, entropy)
	path, err := tr.rv.Resolve(src, dst, key)
	if err != nil {
		return nil, err
	}
	out := &Trace{
		SrcAddr: src.Addr, DstAddr: dst.Addr,
		LaunchMinute: minute, FlowEntropy: entropy,
		Hops: make([]Hop, 0, len(path.Hops)+1),
	}
	// Cumulative RTT per hop approximated by scaling the full-path base
	// RTT by hop position (queueing noise added per probe).
	fullRTT := tr.rv.RTTms(path)
	nHops := len(path.Hops) + 1 // + destination

	for i, h := range path.Hops {
		// The source's own attachment router does not appear in a
		// traceroute (TTL=1 is the first router beyond the host only
		// when the host is directly attached; M-Lab servers sit on the
		// site switch, so hop 1 IS the attachment router).
		hop := Hop{TTL: i + 1}
		if rng != nil && rng.Float64() < tr.art.NoReplyProb {
			out.Hops = append(out.Hops, hop)
			continue
		}
		ifc := h.Ingress
		if ifc == nil {
			ifc = canonicalIface(h.Router)
		}
		if rng != nil && tr.art.ThirdPartyProb > 0 && rng.Float64() < tr.art.ThirdPartyProb {
			// Third-party address: reply sourced from another interface
			// of the same router.
			if alt := pickOtherIface(h.Router, ifc, rng); alt != nil {
				ifc = alt
			}
		}
		if ifc != nil {
			hop.Addr = ifc.Addr
			hop.DNSName = ifc.DNSName
		}
		hop.RTTms = fullRTT * float64(i+1) / float64(nHops)
		if rng != nil {
			hop.RTTms *= 1 + 0.05*rng.Float64()
		}
		out.Hops = append(out.Hops, hop)
	}

	// Destination hop.
	dstHop := Hop{TTL: len(path.Hops) + 1, Addr: dst.Addr, RTTms: fullRTT}
	if rng != nil && rng.Float64() < tr.art.DstNoReplyProb {
		dstHop.Addr = 0
		out.Reached = false
	} else {
		out.Reached = true
	}
	out.Hops = append(out.Hops, dstHop)
	out.Normalize()
	return out, nil
}

// pickOtherIface selects the interface a router answers with when not
// using the in-path ingress. Routers overwhelmingly source replies from
// an interface numbered out of their own AS's space (the egress toward
// the probe source), so own-space candidates are strongly preferred;
// occasionally the reply comes from a borrowed-space interface — the
// case that genuinely confuses AS-boundary identification [25].
func pickOtherIface(r *topology.Router, current *topology.Interface, rng *rand.Rand) *topology.Interface {
	// Constant caps keep the candidate slices off the heap for typical
	// router degrees; append still grows them when a router has more.
	own := make([]*topology.Interface, 0, 8)
	foreign := make([]*topology.Interface, 0, 8)
	for _, ifc := range r.Ifaces {
		if ifc == current || ifc.Addr.IsZero() {
			continue
		}
		if ifc.AddrOwner == r.AS {
			own = append(own, ifc)
		} else {
			foreign = append(foreign, ifc)
		}
	}
	if len(own) > 0 && (len(foreign) == 0 || rng.Float64() < 0.9) {
		return own[rng.Intn(len(own))]
	}
	if len(foreign) > 0 {
		return foreign[rng.Intn(len(foreign))]
	}
	return nil
}

// ResponsiveAddrs returns the non-star hop addresses in order,
// deduplicating consecutive repeats.
func (t *Trace) ResponsiveAddrs() []netaddr.Addr {
	out := make([]netaddr.Addr, 0, len(t.Hops))
	for _, h := range t.Hops {
		if h.NoReply() {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == h.Addr {
			continue
		}
		out = append(out, h.Addr)
	}
	return out
}
