package tslp

import (
	"math/rand"
	"testing"

	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func prober() *Prober {
	return &Prober{Model: world.Model, BasePathRTTms: 18, NoiseMs: 0.4}
}

func localHourOf(l *topology.Link, minute int) float64 {
	return world.Topo.MustMetro(l.Metro).LocalHour(minute)
}

// congestedLink returns a GTT-AT&T link (saturated at peak by the
// default scenario) and a healthy interdomain link.
func testLinks(t *testing.T) (congested, healthy *topology.Link) {
	t.Helper()
	att := world.Access["AT&T"]
	for _, a := range att.Org.ASNs {
		for _, l := range world.Topo.InterdomainLinks(3257, a) {
			if l.PeakUtil >= 1.2 {
				congested = l
			}
		}
	}
	for _, l := range world.Topo.InterdomainLinks(0, 0) {
		if l.PeakUtil < 0.8 {
			healthy = l
			break
		}
	}
	if congested == nil || healthy == nil {
		t.Fatal("scenario links missing")
	}
	return congested, healthy
}

func TestProbeShape(t *testing.T) {
	congested, _ := testLinks(t)
	p := prober()
	rng := rand.New(rand.NewSource(1))
	// Peak local hour in the link's metro.
	m := world.Topo.MustMetro(congested.Metro)
	peakMinute := ((21 - m.UTCOffset) % 24) * 60
	offMinute := ((10 - m.UTCOffset + 24) % 24) * 60
	sPeak := p.Probe(congested, peakMinute, rng)
	sOff := p.Probe(congested, offMinute, rng)
	if sPeak.Diff() <= sOff.Diff() {
		t.Errorf("peak diff %.1f not above off-peak %.1f on saturated link", sPeak.Diff(), sOff.Diff())
	}
	if sPeak.Diff() < 50 {
		t.Errorf("saturated-link peak diff %.1f ms, want bufferbloat-scale", sPeak.Diff())
	}
	if sPeak.NearRTTms > 25 {
		t.Errorf("near probe %.1f should not include the link queue", sPeak.NearRTTms)
	}
}

func TestAnalyzeSeparatesLinks(t *testing.T) {
	congested, healthy := testLinks(t)
	p := prober()
	rng := rand.New(rand.NewSource(2))

	sc := p.Collect(congested, 7, 10, rng)
	rc := Analyze(sc, func(m int) float64 { return localHourOf(congested, m) }, DefaultConfig())
	if !rc.Congested {
		t.Errorf("saturated link not detected: %+v", rc)
	}
	if rc.ElevationMs < 20 {
		t.Errorf("elevation %.1f ms small for a saturated link", rc.ElevationMs)
	}

	sh := p.Collect(healthy, 7, 10, rng)
	rh := Analyze(sh, func(m int) float64 { return localHourOf(healthy, m) }, DefaultConfig())
	if rh.Congested {
		t.Errorf("healthy link flagged: %+v", rh)
	}
}

func TestAnalyzeEmptyWindows(t *testing.T) {
	r := Analyze(nil, func(int) float64 { return 0 }, DefaultConfig())
	if r.Congested || r.Samples != 0 {
		t.Errorf("empty analysis = %+v", r)
	}
	// Zero config defaults.
	r = Analyze([]Sample{{Minute: 0}}, func(int) float64 { return 3 }, Config{})
	if r.Congested {
		t.Error("single off-window sample cannot be congested")
	}
}

func TestSurveyFindsExactlyTheSaturatedLinks(t *testing.T) {
	// Probe every interdomain link of the world; the flagged set must
	// align with ground truth (PeakUtil >= 1) with high accuracy.
	links := world.Topo.InterdomainLinks(0, 0)
	p := prober()
	rng := rand.New(rand.NewSource(3))
	results := Survey(p, links, localHourOf, 5, 15, DefaultConfig(), rng)
	if len(results) != len(links) {
		t.Fatalf("%d results for %d links", len(results), len(links))
	}
	tp, fp, fn, tn := 0, 0, 0, 0
	for _, l := range links {
		r := results[l.ID]
		truth := l.PeakUtil >= 1
		switch {
		case r.Congested && truth:
			tp++
		case r.Congested && !truth:
			fp++
		case !r.Congested && truth:
			fn++
		default:
			tn++
		}
	}
	if tp == 0 {
		t.Fatal("no saturated links detected")
	}
	if fn > 0 {
		t.Errorf("%d saturated links missed", fn)
	}
	// Busy-but-unsaturated links can elevate by a few ms; allow a small
	// false-positive rate (they're the §6.2 gray zone).
	if fp > (tp+tn)/10 {
		t.Errorf("too many false positives: %d (tp=%d tn=%d)", fp, tp, tn)
	}
}

func TestCollectCadence(t *testing.T) {
	congested, _ := testLinks(t)
	p := prober()
	samples := p.Collect(congested, 2, 30, nil)
	if len(samples) != 2*24*2 {
		t.Errorf("%d samples, want %d", len(samples), 2*24*2)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Minute-samples[i-1].Minute != 30 {
			t.Fatal("cadence broken")
		}
	}
}

func BenchmarkSurvey(b *testing.B) {
	links := world.Topo.InterdomainLinks(0, 0)
	if len(links) > 100 {
		links = links[:100]
	}
	p := prober()
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Survey(p, links, localHourOf, 2, 30, DefaultConfig(), rng)
	}
}
