package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"throughputlab/internal/export"
	"throughputlab/internal/faults"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func testCfg(faultProfile faults.Profile) platform.CollectConfig {
	cfg := platform.DefaultCollect()
	cfg.Tests = 360
	cfg.PerPoolClients = 4
	cfg.ChunkTests = 64
	cfg.Faults = faultProfile
	return cfg
}

func testMeta(cfg platform.CollectConfig) export.StreamMeta {
	return export.StreamMeta{Scale: "small", Seed: cfg.Seed, Tests: cfg.Tests}
}

func testFingerprint(cfg platform.CollectConfig, format string) Fingerprint {
	return Fingerprint{
		Scale:      "small",
		Seed:       cfg.Seed,
		Tests:      cfg.Tests,
		ChunkTests: cfg.ChunkTests,
		Faults:     cfg.Faults.Name,
		FaultSeed:  cfg.FaultSeed,
		Format:     format,
	}
}

// reference collects the full campaign uninterrupted through a plain
// corpus writer and returns the corpus bytes.
func reference(t *testing.T, cfg platform.CollectConfig, format string, workers int) []byte {
	t.Helper()
	pub := export.FromWorld(world, nil).Public
	var buf bytes.Buffer
	cw, err := export.NewCorpusWriter(&buf, format, pub, testMeta(cfg), workers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := platform.CollectStream(world, cfg, workers, cw.WriteChunk); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPublishAtomicAndByteIdentical pins the publication contract: the
// corpus shows up on its final path only after Close, byte-identical
// to a plain uninterrupted writer, with no partial file or manifest
// left behind.
func TestPublishAtomicAndByteIdentical(t *testing.T) {
	for _, format := range []string{"ndjson", "columnar"} {
		t.Run(format, func(t *testing.T) {
			cfg := testCfg(faults.Off())
			final := filepath.Join(t.TempDir(), "corpus.bin")
			pub := export.FromWorld(world, nil).Public
			w, err := Create(final, format, pub, testMeta(cfg), testFingerprint(cfg, format), 4, Options{SyncEveryChunks: 2})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(final); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("final path exists before Close (err=%v)", err)
			}
			if _, err := os.Stat(w.ManifestPathName()); err != nil {
				t.Fatalf("manifest should exist from Create on: %v", err)
			}
			if _, err := platform.CollectStream(world, cfg, 4, w.WriteChunk); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(final); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("final path exists before Close")
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(final)
			if err != nil {
				t.Fatal(err)
			}
			if want := reference(t, cfg, format, 4); !bytes.Equal(got, want) {
				t.Fatalf("published corpus differs from plain writer: %d vs %d bytes", len(got), len(want))
			}
			if _, err := os.Stat(PartialPath(final)); !errors.Is(err, os.ErrNotExist) {
				t.Error("partial file survived Close")
			}
			if _, err := os.Stat(w.ManifestPathName()); !errors.Is(err, os.ErrNotExist) {
				t.Error("manifest survived Close")
			}
		})
	}
}

// failAfter injects a write failure once n bytes have passed through —
// the disk-full simulation.
type failAfter struct {
	w io.Writer
	n int
}

var errDiskFull = errors.New("injected: no space left on device")

func (fa *failAfter) Write(p []byte) (int, error) {
	if fa.n <= 0 {
		return 0, errDiskFull
	}
	if len(p) > fa.n {
		n, _ := fa.w.Write(p[:fa.n])
		fa.n = 0
		return n, errDiskFull
	}
	n, err := fa.w.Write(p)
	fa.n -= n
	return n, err
}

// TestWriteFailureNeverPublishes pins the disk-full contract: the
// first write failure propagates out of the corpus sink, Close returns
// it again, and nothing is published — no final corpus, and the
// partial file and manifest are cleaned up.
func TestWriteFailureNeverPublishes(t *testing.T) {
	for _, format := range []string{"ndjson", "columnar"} {
		t.Run(format, func(t *testing.T) {
			cfg := testCfg(faults.Off())
			final := filepath.Join(t.TempDir(), "corpus.bin")
			pub := export.FromWorld(world, nil).Public
			w, err := Create(final, format, pub, testMeta(cfg), testFingerprint(cfg, format), 1, Options{
				SyncEveryChunks: 1,
				// Past the ~57K header, short of either format's full
				// size — the failure lands mid-collection.
				WrapWriter: func(w io.Writer) io.Writer { return &failAfter{w: w, n: 100 << 10} },
			})
			if err != nil {
				t.Fatal(err)
			}
			_, cerr := platform.CollectStream(world, cfg, 1, w.WriteChunk)
			if cerr == nil {
				// Small corpora can fit 4096 bytes of header; force the
				// flush path to surface the failure.
				cerr = w.Checkpoint()
			}
			if !errors.Is(cerr, errDiskFull) {
				t.Fatalf("collection error = %v, want the injected disk-full error", cerr)
			}
			if err := w.Close(); !errors.Is(err, errDiskFull) {
				t.Fatalf("Close error = %v, want the injected disk-full error", err)
			}
			for _, p := range []string{final, PartialPath(final), w.ManifestPathName()} {
				if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
					t.Errorf("%s exists after failed campaign (err=%v)", p, err)
				}
			}
		})
	}
}

// TestFingerprintDiff pins that every identity field participates in
// resume validation and mismatches name their flag.
func TestFingerprintDiff(t *testing.T) {
	base := Fingerprint{Scale: "small", Seed: 7, Tests: 360, Shards: 4,
		ChunkTests: 64, Faults: "off", FaultSeed: 0, Format: "ndjson", WorldCRC: 0xabcd}
	cases := []struct {
		name   string
		mutate func(*Fingerprint)
		flag   string
	}{
		{"scale", func(fp *Fingerprint) { fp.Scale = "large" }, "-scale"},
		{"seed", func(fp *Fingerprint) { fp.Seed = 8 }, "-seed"},
		{"tests", func(fp *Fingerprint) { fp.Tests = 100 }, "-tests"},
		{"shards", func(fp *Fingerprint) { fp.Shards = 8 }, "-shards"},
		{"chunk_tests", func(fp *Fingerprint) { fp.ChunkTests = 32 }, "-chunk-tests"},
		{"faults", func(fp *Fingerprint) { fp.Faults = "heavy" }, "-faults"},
		{"fault_seed", func(fp *Fingerprint) { fp.FaultSeed = 3 }, "-faultseed"},
		{"format", func(fp *Fingerprint) { fp.Format = "columnar" }, "-corpus-format"},
		{"world", func(fp *Fingerprint) { fp.WorldCRC = 1 }, "-world"},
	}
	if d := base.Diff(base); len(d) != 0 {
		t.Fatalf("identical fingerprints diff: %v", d)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			other := base
			tc.mutate(&other)
			d := base.Diff(other)
			if len(d) != 1 {
				t.Fatalf("Diff = %v, want exactly one mismatch", d)
			}
			if !bytes.Contains([]byte(d[0]), []byte(tc.flag)) {
				t.Fatalf("mismatch %q does not name flag %s", d[0], tc.flag)
			}
		})
	}
}

// interruptAfter runs a campaign through a checkpointing writer and
// kills it (graceful-interrupt style) once k chunks are durable,
// returning the manifest path.
func interruptAfter(t *testing.T, final, format string, cfg platform.CollectConfig, workers, k int) string {
	t.Helper()
	pub := export.FromWorld(world, nil).Public
	w, err := Create(final, format, pub, testMeta(cfg), testFingerprint(cfg, format), workers, Options{SyncEveryChunks: 1})
	if err != nil {
		t.Fatal(err)
	}
	errStop := errors.New("stop")
	seen := 0
	_, cerr := platform.CollectStream(world, cfg, workers, func(c *platform.Chunk) error {
		if seen == k {
			return errStop
		}
		seen++
		return w.WriteChunk(c)
	})
	if k > 0 && !errors.Is(cerr, errStop) {
		t.Fatalf("collection should have been stopped at chunk %d: %v", k, cerr)
	}
	mpath, err := w.Interrupt()
	if err != nil {
		t.Fatal(err)
	}
	if d := w.Durable(); d.Chunks != k {
		t.Fatalf("durable chunks after interrupt = %d, want %d", d.Chunks, k)
	}
	return mpath
}

// resumeAndFinish reloads a manifest, resumes the writer, continues
// collection from the first non-durable chunk, and publishes.
func resumeAndFinish(t *testing.T, mpath string, cfg platform.CollectConfig, workers int) {
	t.Helper()
	m, err := LoadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	pub := export.FromWorld(world, nil).Public
	replayed := 0
	w, err := Resume(m, pub, testMeta(cfg), testFingerprint(cfg, m.Fingerprint.Format), workers, Options{SyncEveryChunks: 1},
		func(*export.StreamChunk) error { replayed++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if replayed != m.Durable.Chunks {
		t.Fatalf("replayed %d chunks, manifest records %d durable", replayed, m.Durable.Chunks)
	}
	cfg.StartChunk = m.Durable.Chunks
	if _, err := platform.CollectStream(world, cfg, workers, w.WriteChunk); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillAtEveryChunkBoundary is the crash-safety property test: for
// every durable chunk count k, a campaign interrupted after k chunks
// and resumed publishes a corpus byte-identical to the uninterrupted
// run — across both formats, clean and heavy fault profiles, and
// worker counts 1 and 8.
func TestKillAtEveryChunkBoundary(t *testing.T) {
	for _, format := range []string{"ndjson", "columnar"} {
		for _, fp := range []faults.Profile{faults.Off(), faults.Heavy()} {
			for _, workers := range []int{1, 8} {
				name := fmt.Sprintf("%s/%s/w%d", format, fp.Name, workers)
				t.Run(name, func(t *testing.T) {
					cfg := testCfg(fp)
					want := reference(t, cfg, format, workers)
					nChunks := (cfg.Tests + cfg.ChunkTests - 1) / cfg.ChunkTests
					dir := t.TempDir()
					for k := 0; k < nChunks; k++ {
						final := filepath.Join(dir, fmt.Sprintf("corpus-%d.bin", k))
						mpath := interruptAfter(t, final, format, cfg, workers, k)
						resumeAndFinish(t, mpath, cfg, workers)
						got, err := os.ReadFile(final)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("k=%d: resumed corpus differs from uninterrupted (%d vs %d bytes)", k, len(got), len(want))
						}
						if _, err := os.Stat(mpath); !errors.Is(err, os.ErrNotExist) {
							t.Fatalf("k=%d: manifest survived publication", k)
						}
					}
				})
			}
		}
	}
}

// TestResumeTruncatesTornTail pins recovery from a crash mid-write:
// garbage past the durable boundary (a torn chunk the dying process
// half-flushed) is discarded and the resumed corpus still comes out
// byte-identical.
func TestResumeTruncatesTornTail(t *testing.T) {
	cfg := testCfg(faults.Off())
	want := reference(t, cfg, "columnar", 4)
	final := filepath.Join(t.TempDir(), "corpus.bin")
	mpath := interruptAfter(t, final, "columnar", cfg, 4, 3)
	f, err := os.OpenFile(PartialPath(final), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x01torn half-written chunk frame garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	resumeAndFinish(t, mpath, cfg, 4)
	got, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed corpus differs from uninterrupted (%d vs %d bytes)", len(got), len(want))
	}
}

// TestResumeRefusals pins the fail-fast paths: corrupted durable
// prefix, shrunken partial file, and identity mismatch all refuse with
// a descriptive error instead of splicing garbage.
func TestResumeRefusals(t *testing.T) {
	cfg := testCfg(faults.Off())
	pub := export.FromWorld(world, nil).Public

	setup := func(t *testing.T) (*Manifest, string) {
		final := filepath.Join(t.TempDir(), "corpus.bin")
		mpath := interruptAfter(t, final, "ndjson", cfg, 1, 3)
		m, err := LoadManifest(mpath)
		if err != nil {
			t.Fatal(err)
		}
		return m, PartialPath(final)
	}

	t.Run("seed_mismatch", func(t *testing.T) {
		m, _ := setup(t)
		bad := testFingerprint(cfg, "ndjson")
		bad.Seed++
		_, err := Resume(m, pub, testMeta(cfg), bad, 1, Options{}, func(*export.StreamChunk) error { return nil })
		if err == nil || !bytes.Contains([]byte(err.Error()), []byte("-seed")) {
			t.Fatalf("err = %v, want identity mismatch naming -seed", err)
		}
	})
	t.Run("corrupt_prefix", func(t *testing.T) {
		m, partial := setup(t)
		data, err := os.ReadFile(partial)
		if err != nil {
			t.Fatal(err)
		}
		data[m.Durable.Bytes/2] ^= 0xff
		if err := os.WriteFile(partial, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Resume(m, pub, testMeta(cfg), testFingerprint(cfg, "ndjson"), 1, Options{}, func(*export.StreamChunk) error { return nil })
		if err == nil {
			t.Fatal("resume accepted a corrupted durable prefix")
		}
	})
	t.Run("truncated_below_durable", func(t *testing.T) {
		m, partial := setup(t)
		if err := os.Truncate(partial, m.Durable.Bytes-1); err != nil {
			t.Fatal(err)
		}
		_, err := Resume(m, pub, testMeta(cfg), testFingerprint(cfg, "ndjson"), 1, Options{}, func(*export.StreamChunk) error { return nil })
		if err == nil || !bytes.Contains([]byte(err.Error()), []byte("shorter")) {
			t.Fatalf("err = %v, want shorter-than-durable refusal", err)
		}
	})
}

// TestManifestRoundTrip pins Store/Load including the atomic-rewrite
// guarantee that a valid manifest is always on disk.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.manifest.json")
	m := &Manifest{
		Format:        ManifestFormat,
		CorpusFinal:   filepath.Join(dir, "c"),
		CorpusPartial: filepath.Join(dir, "c.partial"),
		Fingerprint:   Fingerprint{Seed: 42, Tests: 100, Format: "columnar", WorldCRC: 7},
		Durable:       Durable{Chunks: 3, Bytes: 4096, CRC32C: 99, Tests: 96, Traces: 90},
	}
	if err := m.Store(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *m {
		t.Fatalf("manifest round trip: got %+v want %+v", back, m)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("manifest temp file left behind")
	}

	t.Run("rejects_wrong_format", func(t *testing.T) {
		bad := *m
		bad.Format = "tputlab-checkpoint/999"
		p2 := filepath.Join(dir, "bad.manifest.json")
		if err := bad.Store(p2); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadManifest(p2); err == nil {
			t.Fatal("loaded a manifest with an unsupported format")
		}
	})
}
