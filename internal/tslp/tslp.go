// Package tslp implements time-series latency probing (Luckie et al.,
// "Challenges in Inferring Internet Interdomain Congestion", IMC 2014 —
// reference [25]), the technique the reproduced paper recommends
// measurement platforms adopt (§7): instead of bandwidth-hungry
// throughput tests, send tiny periodic probes to the NEAR and FAR
// interfaces of an interdomain link and watch the far−near RTT
// difference over days. A link whose buffer fills during peak hours
// shows a sustained diurnal elevation of that difference; an idle or
// merely busy link does not. TSLP needs path/interface knowledge (from
// bdrmap/MAP-IT) but only bytes per probe — which is why Ark, BISmark
// and RIPE Atlas can run it while they cannot host NDT (§7).
package tslp

import (
	"math"
	"math/rand"

	"throughputlab/internal/netsim"
	"throughputlab/internal/stats"
	"throughputlab/internal/topology"
)

// Sample is one probe round: RTTs to both sides of the link.
type Sample struct {
	Minute    int
	NearRTTms float64
	FarRTTms  float64
}

// Diff returns the far−near difference, the congestion-sensitive part.
func (s Sample) Diff() float64 { return s.FarRTTms - s.NearRTTms }

// Prober collects samples against the fluid link model.
type Prober struct {
	Model *netsim.Model
	// BasePathRTTms is the probe RTT from the vantage point to the
	// link's near interface at idle.
	BasePathRTTms float64
	// NoiseMs is per-probe jitter (standard deviation).
	NoiseMs float64
}

// Probe measures both sides of the link at the given minute.
func (p *Prober) Probe(l *topology.Link, minute int, rng *rand.Rand) Sample {
	noise := func() float64 {
		if p.NoiseMs <= 0 || rng == nil {
			return 0
		}
		return math.Abs(rng.NormFloat64() * p.NoiseMs)
	}
	near := p.BasePathRTTms + noise()
	// The far probe crosses the link: serialization + the link's queue.
	far := p.BasePathRTTms + 0.2 + p.Model.LinkQueueMs(l, minute) + noise()
	return Sample{Minute: minute, NearRTTms: near, FarRTTms: far}
}

// Collect runs a campaign: one probe round every intervalMin minutes
// for the given number of days.
func (p *Prober) Collect(l *topology.Link, days, intervalMin int, rng *rand.Rand) []Sample {
	var out []Sample
	for m := 0; m < days*24*60; m += intervalMin {
		out = append(out, p.Probe(l, m, rng))
	}
	return out
}

// Result is the level-shift analysis of one link's sample series.
type Result struct {
	// PeakDiffMs and OffDiffMs are the median far−near differences in
	// the local peak (19–23h) and off-peak (7–15h) windows.
	PeakDiffMs, OffDiffMs float64
	// ElevationMs = peak − off.
	ElevationMs float64
	// Congested is the verdict: sustained diurnal elevation above the
	// threshold.
	Congested bool
	// Samples analyzed.
	Samples int
}

// Config holds analysis parameters.
type Config struct {
	// ElevationThresholdMs is the minimum diurnal far−near elevation
	// treated as evidence of a saturated buffer. It must sit above the
	// few-millisecond queueing that busy-but-healthy links build at
	// peak (the §6.2 gray zone) and below bufferbloat scale; Luckie et
	// al. look for sustained level shifts well above noise.
	ElevationThresholdMs float64
}

// DefaultConfig returns the standard threshold.
func DefaultConfig() Config { return Config{ElevationThresholdMs: 20} }

// Analyze performs the diurnal level-shift comparison. localHour maps a
// sample's minute to the link's local hour.
func Analyze(samples []Sample, localHour func(minute int) float64, cfg Config) Result {
	if cfg.ElevationThresholdMs == 0 {
		cfg = DefaultConfig()
	}
	var peak, off []float64
	for _, s := range samples {
		h := localHour(s.Minute)
		switch {
		case h >= 19 && h < 23:
			peak = append(peak, s.Diff())
		case h >= 7 && h < 15:
			off = append(off, s.Diff())
		}
	}
	r := Result{Samples: len(samples)}
	if len(peak) == 0 || len(off) == 0 {
		return r
	}
	r.PeakDiffMs = stats.Median(peak)
	r.OffDiffMs = stats.Median(off)
	r.ElevationMs = r.PeakDiffMs - r.OffDiffMs
	r.Congested = r.ElevationMs >= cfg.ElevationThresholdMs
	return r
}

// Survey probes every given link and returns per-link results, the
// batch mode a platform-side deployment would run across all
// interconnections found by bdrmap.
func Survey(p *Prober, links []*topology.Link, localHourOf func(*topology.Link, int) float64,
	days, intervalMin int, cfg Config, rng *rand.Rand) map[topology.LinkID]Result {

	out := make(map[topology.LinkID]Result, len(links))
	for _, l := range links {
		samples := p.Collect(l, days, intervalMin, rng)
		out[l.ID] = Analyze(samples, func(m int) float64 { return localHourOf(l, m) }, cfg)
	}
	return out
}
