package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches one path from the telemetry server and returns the body.
func get(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestTelemetryServerEndpoints spins the endpoint on a loopback port
// and smoke-tests every route the CI job curls.
func TestTelemetryServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("collect.tests").Add(42)
	r.Gauge("collect.stream.chunks").Set(8)
	r.Histogram("resolver.hops", Bounds(4, 8)).Observe(6)
	sp := r.Span("collect")
	sp.End()
	s := r.EnableTimeSeries(60, 0, nil)
	s.Advance(60)

	srv, err := r.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	metrics := get(t, addr, "/metrics")
	for _, want := range []string{
		"# TYPE collect_tests counter", "collect_tests 42",
		"# TYPE collect_stream_chunks gauge", "collect_stream_chunks 8",
		"# TYPE resolver_hops histogram",
		`resolver_hops_bucket{le="8"} 1`, `resolver_hops_bucket{le="+Inf"} 1`,
		"resolver_hops_sum 6", "resolver_hops_count 1",
		"span_ms_collect",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var spans []SpanDump
	if err := json.Unmarshal([]byte(get(t, addr, "/spans")), &spans); err != nil {
		t.Fatalf("/spans not valid JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "collect" {
		t.Errorf("/spans = %+v", spans)
	}

	var series map[string]SeriesDump
	if err := json.Unmarshal([]byte(get(t, addr, "/series")), &series); err != nil {
		t.Fatalf("/series not valid JSON: %v", err)
	}
	if d := series["collect.tests"]; len(d.Points) != 1 || d.Points[0].Value != 42 {
		t.Errorf("/series collect.tests = %+v", d)
	}

	var dump Dump
	if err := json.Unmarshal([]byte(get(t, addr, "/dump")), &dump); err != nil {
		t.Fatalf("/dump not valid JSON: %v", err)
	}
	if dump.Counters["collect.tests"] != 42 {
		t.Errorf("/dump counters = %+v", dump.Counters)
	}

	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get(t, addr, "/trace")), &trace); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) < 2 {
		t.Errorf("/trace has %d events, want >= 2", len(trace.TraceEvents))
	}

	if idx := get(t, addr, "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.300s", idx)
	}
	if root := get(t, addr, "/"); !strings.Contains(root, "/metrics") {
		t.Errorf("index page missing route list:\n%s", root)
	}
}

// TestTelemetryServerNilRegistry asserts the endpoint refuses a
// disabled registry instead of serving empty pages forever.
func TestTelemetryServerNilRegistry(t *testing.T) {
	var r *Registry
	if _, err := r.ServeTelemetry("127.0.0.1:0"); err == nil {
		t.Fatal("nil registry ServeTelemetry did not error")
	}
	var srv *TelemetryServer
	if srv.Addr() != "" || srv.Close() != nil {
		t.Error("nil server handle not inert")
	}
}

// TestPromNameSanitizes pins the Prometheus name mapping.
func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"collect.shard.00.tests": "collect_shard_00_tests",
		"faults.test-abort.hit":  "faults_test_abort_hit",
		"0leading":               "_leading",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
