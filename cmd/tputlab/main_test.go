package main

import (
	"testing"
)

func TestRunCmdUnknownExperiment(t *testing.T) {
	if err := runCmd([]string{"nosuch", "-scale", "small", "-tests", "50"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := runCmd(nil); err == nil {
		t.Error("missing experiment name should error")
	}
}

func TestScaleValidation(t *testing.T) {
	// run and report accept the same scale set and reject anything
	// else with a usage error, before any world is built.
	for _, scale := range []string{"small", "default", "large"} {
		if _, err := scaleOptions(scale); err != nil {
			t.Errorf("scale %q rejected: %v", scale, err)
		}
	}
	for _, scale := range []string{"tiny", "huge", "", "Default"} {
		if _, err := scaleOptions(scale); err == nil {
			t.Errorf("scale %q accepted, want usage error", scale)
		}
	}
	if err := runCmd([]string{"table1", "-scale", "tiny"}); err == nil {
		t.Error("run with invalid -scale should error")
	}
	if err := reportCmd([]string{"-scale", "tiny"}); err == nil {
		t.Error("report with invalid -scale should error")
	}
}

func TestRunCmdSmokeTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	// table1 is the cheapest experiment; a tiny corpus keeps this fast.
	if err := runCmd([]string{"table1", "-scale", "small", "-tests", "200"}); err != nil {
		t.Fatalf("runCmd table1: %v", err)
	}
}

func TestReportCmdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	if err := reportCmd([]string{"-scale", "small", "-tests", "1500"}); err != nil {
		t.Fatalf("reportCmd: %v", err)
	}
}
