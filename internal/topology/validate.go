package topology

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"throughputlab/internal/obs"
)

// Validate checks structural invariants of the topology and returns all
// violations found. The topology generator's tests require an empty
// result; it is also a useful debugging aid for hand-built topologies.
//
// Invariants checked:
//   - every relationship references known ASes and is symmetric
//     (RelOf(a,b) == RelOf(b,a).Invert());
//   - sibling relationships connect ASes of the same organization;
//   - every router belongs to a known AS and a known metro;
//   - interdomain links connect border routers of different ASes, and
//     both interface addresses are owned by one of the two ASes or an
//     IXP;
//   - intra-AS links connect routers of the same AS;
//   - every non-zero interface address is unique and resolvable via
//     IfaceByAddr;
//   - every client pool prefix is originated by its AS;
//   - the link's metro matches both routers' metros for interdomain
//     links (interdomain interconnection is physically local, §4.3).
func (t *Topology) Validate() []error { return t.ValidateWorkers(1, nil) }

// checkShard is one independently-checkable slice of the topology; its
// position in the shard list fixes where its errors land in the merged
// result, so the output is identical for every worker count.
type checkShard func() []error

// ValidateWorkers is Validate with the per-AS and per-link checks
// sharded over a worker pool. Shards are fixed work slices (AS ranges,
// link ranges) checked in deterministic iteration order, and their
// error lists are concatenated in shard order — the result is
// byte-identical to the serial Validate regardless of workers or
// scheduling. sp, when non-nil, receives one child span per worker.
func (t *Topology) ValidateWorkers(workers int, sp *obs.Span) []error {
	if workers < 1 {
		workers = 1
	}
	// Shard the AS-indexed checks (relationships, client pools) over
	// t.order ranges and the link checks over index ranges. Chunks are
	// sized for a few shards per worker so stragglers even out.
	var shards []checkShard
	chunk := func(n int) int {
		c := (n + workers*4 - 1) / (workers * 4)
		if c < 1 {
			c = 1
		}
		return c
	}
	for lo, step := 0, chunk(len(t.order)); lo < len(t.order); lo += step {
		hi := min(lo+step, len(t.order))
		asns := t.order[lo:hi]
		shards = append(shards, func() []error { return t.checkRelationships(asns) })
	}
	shards = append(shards, t.checkDanglingRels)
	for lo, step := 0, chunk(len(t.routers)); lo < len(t.routers); lo += step {
		hi := min(lo+step, len(t.routers))
		rs, base := t.routers[lo:hi], lo
		shards = append(shards, func() []error { return t.checkRouters(rs, base) })
	}
	for lo, step := 0, chunk(len(t.links)); lo < len(t.links); lo += step {
		hi := min(lo+step, len(t.links))
		ls := t.links[lo:hi]
		shards = append(shards, func() []error { return t.checkLinks(ls) })
	}
	shards = append(shards, t.checkIfaceIndex)
	for lo, step := 0, chunk(len(t.order)); lo < len(t.order); lo += step {
		hi := min(lo+step, len(t.order))
		asns := t.order[lo:hi]
		shards = append(shards, func() []error { return t.checkClientPools(asns) })
	}

	out := make([][]error, len(shards))
	if workers == 1 {
		for i, s := range shards {
			out[i] = s()
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := sp.Child(fmt.Sprintf("validate.worker.%02d", w))
				defer ws.End()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(shards) {
						return
					}
					out[i] = shards[i]()
				}
			}(w)
		}
		wg.Wait()
	}

	var errs []error
	for _, e := range out {
		errs = append(errs, e...)
	}
	return errs
}

// checkRelationships validates the relationship entries whose first AS
// is in asns, in (t.order, neighbor-ASN) order.
func (t *Topology) checkRelationships(asns []ASN) []error {
	var errs []error
	for _, a := range asns {
		adj := append([]ASN(nil), t.adj[a]...)
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		for _, b := range adj {
			r := t.rel[[2]ASN{a, b}]
			if r == RelNone {
				continue
			}
			if t.ases[b] == nil {
				errs = append(errs, fmt.Errorf("relationship %v-%v references unknown AS", a, b))
				continue
			}
			if inv := t.rel[[2]ASN{b, a}]; inv != r.Invert() {
				errs = append(errs, fmt.Errorf("asymmetric relationship %v-%v: %v vs %v", a, b, r, inv))
			}
			if r == RelSibling && !t.SameOrg(a, b) {
				errs = append(errs, fmt.Errorf("sibling relationship %v-%v across organizations", a, b))
			}
		}
	}
	return errs
}

// checkDanglingRels reports relationships recorded for ASes that were
// never registered (their entries are invisible to the per-AS pass,
// which walks registered ASes only).
func (t *Topology) checkDanglingRels() []error {
	var unknown []ASN
	for a := range t.adj {
		if t.ases[a] == nil {
			unknown = append(unknown, a)
		}
	}
	sort.Slice(unknown, func(i, j int) bool { return unknown[i] < unknown[j] })
	var errs []error
	for _, a := range unknown {
		adj := append([]ASN(nil), t.adj[a]...)
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		for _, b := range adj {
			if t.rel[[2]ASN{a, b}] == RelNone {
				continue
			}
			errs = append(errs, fmt.Errorf("relationship %v-%v references unknown AS", a, b))
		}
	}
	return errs
}

// checkRouters validates a contiguous router range starting at ID base.
func (t *Topology) checkRouters(rs []*Router, base int) []error {
	var errs []error
	for i, r := range rs {
		if r.ID != RouterID(base+i) {
			errs = append(errs, fmt.Errorf("router slot %d != ID %d", base+i, r.ID))
		}
		if t.ases[r.AS] == nil {
			errs = append(errs, fmt.Errorf("router %d in unknown AS %d", r.ID, r.AS))
		}
		if _, ok := t.metroByID[r.Metro]; !ok {
			errs = append(errs, fmt.Errorf("router %d in unknown metro %q", r.ID, r.Metro))
		}
	}
	return errs
}

// checkLinks validates a contiguous link range.
func (t *Topology) checkLinks(ls []*Link) []error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	for _, l := range ls {
		switch l.Kind {
		case LinkInterdomain:
			if l.B == nil {
				add("interdomain link %d missing B end", l.ID)
				continue
			}
			if l.ASA() == l.ASB() {
				add("interdomain link %d connects %d to itself", l.ID, l.ASA())
			}
			if l.A.Router.Kind != RouterBorder || l.B.Router.Kind != RouterBorder {
				add("interdomain link %d has non-border endpoint", l.ID)
			}
			if l.A.Router.Metro != l.Metro || l.B.Router.Metro != l.Metro {
				add("interdomain link %d metro %q does not match routers (%q, %q)",
					l.ID, l.Metro, l.A.Router.Metro, l.B.Router.Metro)
			}
			for _, ifc := range []*Interface{l.A, l.B} {
				ok := ifc.AddrOwner == l.ASA() || ifc.AddrOwner == l.ASB()
				if l.IXP != nil && l.IXP.Prefix.Contains(ifc.Addr) {
					ok = true
				}
				if !ok {
					add("interdomain link %d interface %v numbered from uninvolved AS %d",
						l.ID, ifc.Addr, ifc.AddrOwner)
				}
			}
		case LinkIntra:
			if l.B == nil {
				add("intra link %d missing B end", l.ID)
				continue
			}
			if l.ASA() != l.ASB() {
				add("intra link %d spans ASes %d and %d", l.ID, l.ASA(), l.ASB())
			}
		case LinkAccessLine:
			if l.B != nil {
				add("access line %d should have nil B end", l.ID)
			}
			if l.A.Router.Kind != RouterAccess {
				add("access line %d not on an access router", l.ID)
			}
		}
		if l.CapacityMbps <= 0 {
			add("link %d has non-positive capacity", l.ID)
		}
		if l.BaseUtil < 0 || l.PeakUtil < l.BaseUtil {
			add("link %d has inconsistent utilization (base %v, peak %v)",
				l.ID, l.BaseUtil, l.PeakUtil)
		}
	}
	return errs
}

// checkIfaceIndex validates the address index. The map scan stays in
// one shard: the invariant is per-entry and violations are impossible
// to order deterministically across a split map anyway.
func (t *Topology) checkIfaceIndex() []error {
	var errs []error
	for addr, ifc := range t.IfaceByAddr {
		if ifc.Addr != addr {
			errs = append(errs, fmt.Errorf("IfaceByAddr[%v] has address %v", addr, ifc.Addr))
		}
	}
	return errs
}

// checkClientPools validates client pool origination for the given
// ASes, with per-AS metros visited in sorted order.
func (t *Topology) checkClientPools(asns []ASN) []error {
	var errs []error
	for _, asn := range asns {
		a := t.ases[asn]
		metros := make([]string, 0, len(a.ClientPools))
		for m := range a.ClientPools {
			metros = append(metros, m)
		}
		sort.Strings(metros)
		for _, metro := range metros {
			pool := a.ClientPools[metro]
			if _, ok := t.metroByID[metro]; !ok {
				errs = append(errs, fmt.Errorf("AS %d client pool in unknown metro %q", asn, metro))
			}
			origin, _, ok := t.Origin.Lookup(pool.Addr())
			if !ok {
				errs = append(errs, fmt.Errorf("AS %d client pool %v not originated", asn, pool))
			} else if origin != asn && !t.SameOrg(origin, asn) {
				errs = append(errs, fmt.Errorf("AS %d client pool %v originated by unrelated AS %d", asn, pool, origin))
			}
		}
	}
	return errs
}
