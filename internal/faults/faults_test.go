package faults

import (
	"testing"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/obs"
	"throughputlab/internal/traceroute"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"", "off", "light", "moderate", "heavy"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		wantEnabled := name != "" && name != "off"
		if p.Enabled() != wantEnabled {
			t.Errorf("ByName(%q).Enabled() = %v, want %v", name, p.Enabled(), wantEnabled)
		}
	}
	if _, err := ByName("catastrophic"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestNilInjectorIsNoOp pins the off-switch contract: every method on
// the nil injector returns the zero decision and perturbs nothing.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Enabled() || in.MaxRetries() != 0 || in.DeadlineMin() != 0 {
		t.Error("nil injector reports enabled state")
	}
	if in.OutageAt("atl", 100) {
		t.Error("nil injector draws outages")
	}
	if fs := in.TestAttempt("atl", 1, 100, 0); fs != 0 {
		t.Errorf("nil injector fails attempts: %v", fs)
	}
	if in.ShardAttempts(3) != 1 {
		t.Error("nil injector retries shards")
	}
	if _, ok := in.TruncatesTest(1); ok {
		t.Error("nil injector truncates")
	}
	if in.CorruptsRow(1) {
		t.Error("nil injector corrupts rows")
	}
	tr := &traceroute.Trace{
		DstAddr: netaddr.Addr(9),
		Hops:    []traceroute.Hop{{TTL: 1, Addr: netaddr.Addr(5)}, {TTL: 2, Addr: netaddr.Addr(9)}},
		Reached: true,
	}
	in.PerturbTrace(1, tr)
	if tr.Degraded || !tr.Reached || tr.Hops[0].NoReply() {
		t.Error("nil injector perturbed a trace")
	}
	// Counting on the nil injector must not panic either.
	in.Retried(1)
	in.Recovered(1)
	in.Abandoned(1)
	if NewInjector(7, Off(), nil) != nil {
		t.Error("disabled profile built a live injector")
	}
}

// TestDrawDeterminism pins the per-(seed, kind, entity) stream
// contract: repeated asks give the same answer, and seed, kind or
// entity changes decorrelate the streams.
func TestDrawDeterminism(t *testing.T) {
	a := NewInjector(42, Heavy(), nil)
	b := NewInjector(42, Heavy(), nil)
	differs := 0
	for e := uint64(0); e < 200; e++ {
		fa, oka := a.TruncatesTest(e)
		fb, okb := b.TruncatesTest(e)
		if oka != okb || fa != fb {
			t.Fatalf("entity %d: draw not reproducible", e)
		}
		if a.CorruptsRow(e) != b.CorruptsRow(e) {
			t.Fatalf("entity %d: corruption draw not reproducible", e)
		}
		if a.CorruptsRow(e) != a.TruncatesTestHit(e) { // distinct kinds must not mirror
			differs++
		}
	}
	if differs == 0 {
		t.Error("row-corruption and truncation streams coincide across 200 entities")
	}
	other := NewInjector(43, Heavy(), nil)
	same := 0
	for e := uint64(0); e < 200; e++ {
		if a.CorruptsRow(e) == other.CorruptsRow(e) {
			same++
		}
	}
	if same == 200 {
		t.Error("fault draws insensitive to seed")
	}
}

// TruncatesTestHit is a test helper exposing just the hit bit.
func (in *Injector) TruncatesTestHit(e uint64) bool {
	_, ok := in.TruncatesTest(e)
	return ok
}

func TestTruncationFractionRange(t *testing.T) {
	in := NewInjector(7, Heavy(), nil)
	hits := 0
	for e := uint64(0); e < 2000; e++ {
		frac, ok := in.TruncatesTest(e)
		if !ok {
			continue
		}
		hits++
		if frac < 0.2 || frac >= 0.8 {
			t.Fatalf("truncation fraction %v out of [0.2, 0.8)", frac)
		}
	}
	if hits == 0 {
		t.Error("heavy profile never truncated in 2000 draws")
	}
}

func TestRetryDelayBounds(t *testing.T) {
	in := NewInjector(7, Moderate(), nil)
	base := Moderate().BackoffBaseMin
	for attempt := 1; attempt <= 3; attempt++ {
		d := base << uint(attempt-1)
		for e := uint64(0); e < 100; e++ {
			got := in.RetryDelayMin(e, attempt)
			if got < d || got >= 2*d {
				t.Fatalf("attempt %d entity %d: delay %d out of [%d, %d)", attempt, e, got, d, 2*d)
			}
		}
	}
}

func TestOutageWindowConfinedToDay(t *testing.T) {
	p := Heavy()
	p.OutageProb = 1 // every (metro, day) has a window
	in := NewInjector(7, p, nil)
	for day := 0; day < 5; day++ {
		inWin := 0
		for m := day * 1440; m < (day+1)*1440; m++ {
			if in.OutageAt("atl", m) {
				inWin++
			}
		}
		if inWin == 0 {
			t.Fatalf("day %d: OutageProb=1 but no outage minute", day)
		}
		if inWin > p.OutageMinutes {
			t.Fatalf("day %d: window %d minutes, profile says %d", day, inWin, p.OutageMinutes)
		}
	}
}

func TestShardAttemptsBounded(t *testing.T) {
	p := Heavy()
	p.ShardFailProb = 1 // always fails until retries run out
	in := NewInjector(7, p, nil)
	if got := in.ShardAttempts(0); got != 1+p.MaxRetries {
		t.Errorf("ShardAttempts = %d, want %d (transient failures exhaust MaxRetries then succeed)",
			got, 1+p.MaxRetries)
	}
}

// TestPerturbTraceNormalizes pins the satellite invariant end to end: a
// destination hop lost to probe loss may not leave Reached standing.
func TestPerturbTraceNormalizes(t *testing.T) {
	p := Off()
	p.ProbeLossProb = 1 // every responsive hop is lost
	in := NewInjector(7, p, nil)
	tr := &traceroute.Trace{
		DstAddr: netaddr.Addr(9),
		Hops: []traceroute.Hop{
			{TTL: 1, Addr: netaddr.Addr(5)},
			{TTL: 2, Addr: netaddr.Addr(7)},
			{TTL: 3, Addr: netaddr.Addr(9)},
		},
		Reached: true,
	}
	in.PerturbTrace(1, tr)
	if !tr.Degraded {
		t.Error("total probe loss did not mark the trace degraded")
	}
	if tr.Reached {
		t.Error("trace with blanked destination hop still counted as reached")
	}
}

func TestCountersRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInjector(7, Heavy(), reg)
	for e := uint64(0); e < 500; e++ {
		in.TruncatesTest(e)
		in.CorruptsRow(e)
	}
	if got := reg.Counter("faults.test_truncation.injected").Value(); got == 0 {
		t.Error("truncation hits not counted")
	}
	inj := reg.Counter("faults.row_corruption.injected").Value()
	ab := reg.Counter("faults.row_corruption.abandoned").Value()
	if inj == 0 || inj != ab {
		t.Errorf("row corruption injected=%d abandoned=%d, want equal and nonzero", inj, ab)
	}
	if cs := reg.CountersWithPrefix("faults."); len(cs) != 4*len(Kinds()) {
		t.Errorf("registered %d fault counters, want %d", len(cs), 4*len(Kinds()))
	}
}
