package alias

import (
	"math/rand"
	"testing"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/topogen"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

// borderAddrs collects some interdomain interface addresses.
func borderAddrs(n int) []netaddr.Addr {
	var out []netaddr.Addr
	for _, l := range world.Topo.InterdomainLinks(0, 0) {
		out = append(out, l.A.Addr, l.B.Addr)
		if len(out) >= n {
			break
		}
	}
	return out
}

func TestPerfectGrouping(t *testing.T) {
	addrs := borderAddrs(200)
	groups := Perfect(world.Topo).Group(addrs, nil)
	// Perfect resolution: groups exactly match ground-truth routers.
	for _, g := range groups {
		first := world.Topo.IfaceByAddr[g[0]]
		for _, a := range g[1:] {
			ifc := world.Topo.IfaceByAddr[a]
			if ifc.Router.ID != first.Router.ID {
				t.Fatalf("group mixes routers %d and %d", first.Router.ID, ifc.Router.ID)
			}
		}
	}
	// And no router is split.
	groupOf := map[netaddr.Addr]int{}
	for gi, g := range groups {
		for _, a := range g {
			groupOf[a] = gi
		}
	}
	for i, a := range addrs {
		for _, b := range addrs[i+1:] {
			ia, ib := world.Topo.IfaceByAddr[a], world.Topo.IfaceByAddr[b]
			if ia.Router.ID == ib.Router.ID && groupOf[a] != groupOf[b] {
				t.Fatalf("same router split: %v vs %v", a, b)
			}
		}
	}
}

func TestImperfectGroupingDegradesGracefully(t *testing.T) {
	addrs := borderAddrs(300)
	r := New(world.Topo)
	rng := rand.New(rand.NewSource(1))
	groups := r.Group(addrs, rng)
	perfect := Perfect(world.Topo).Group(addrs, nil)
	// Imperfect probing splits some groups: at least as many groups.
	if len(groups) < len(perfect) {
		t.Errorf("imperfect grouping has %d groups < perfect %d", len(groups), len(perfect))
	}
	// But not catastrophically: within 40%.
	if float64(len(groups)) > 1.4*float64(len(perfect)) {
		t.Errorf("imperfect grouping exploded: %d vs perfect %d", len(groups), len(perfect))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	addrs := borderAddrs(150)
	r := New(world.Topo)
	g1 := r.Group(addrs, rand.New(rand.NewSource(7)))
	g2 := r.Group(addrs, rand.New(rand.NewSource(7)))
	if len(g1) != len(g2) {
		t.Fatalf("group counts differ: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if len(g1[i]) != len(g2[i]) || g1[i][0] != g2[i][0] {
			t.Fatalf("group %d differs", i)
		}
	}
}

func TestUnknownAddressesAreSingletons(t *testing.T) {
	unknown := netaddr.MustParseAddr("203.0.113.99")
	groups := Perfect(world.Topo).Group([]netaddr.Addr{unknown}, nil)
	if len(groups) != 1 || len(groups[0]) != 1 || groups[0][0] != unknown {
		t.Errorf("unknown address grouping = %v", groups)
	}
}

func TestDuplicateInputCollapsed(t *testing.T) {
	a := borderAddrs(2)[0]
	groups := Perfect(world.Topo).Group([]netaddr.Addr{a, a, a}, nil)
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 1 {
		t.Errorf("duplicates not collapsed: %d members", total)
	}
}
