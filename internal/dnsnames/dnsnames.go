// Package dnsnames assigns reverse-DNS (PTR) names to router
// interfaces and provides the parsing helpers the analysis uses to
// group parallel interdomain links by router.
//
// Interdomain interfaces follow the operator convention the paper
// leans on in §4.3: the interface an AS provisions for a peer is named
// "<PEER-TOKEN>.<router>.<as-domain>", e.g.
// "COX-COMMUNI.edge5.Dallas3.Level3.net" — twelve such names sharing
// the "edge5.Dallas3.Level3.net" suffix revealed twelve parallel links
// to Cox on one Level3 router in Dallas. Intra-domain interfaces are
// named "<router>.<as-domain>". A per-assignment fraction of
// interfaces gets no PTR record at all, as in the wild.
package dnsnames

import (
	"math/rand"
	"strings"

	"throughputlab/internal/topology"
)

// Domain derives a DNS domain for an organization name:
// "Level3 Communications" → "level3communications.net" is too long for
// the paper's flavor, so the first word is used: "level3.net".
func Domain(orgName string) string {
	fields := strings.FieldsFunc(orgName, func(r rune) bool {
		return r == ' ' || r == '.'
	})
	if len(fields) == 0 {
		return "unknown.net"
	}
	return sanitize(strings.ToLower(fields[0])) + ".net"
}

// PeerToken derives the uppercase peer tag used on interdomain
// interfaces: "Cox Communications" → "COX-COMMUNI" (11 characters, as
// in the paper's examples).
func PeerToken(orgName string) string {
	s := strings.ToUpper(orgName)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '&' || r == '.':
			if b.Len() > 0 && b.String()[b.Len()-1] != '-' {
				b.WriteByte('-')
			}
		}
	}
	tok := strings.Trim(b.String(), "-")
	if len(tok) > 11 {
		tok = tok[:11]
	}
	if tok == "" {
		tok = "PEER"
	}
	return tok
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

// Assign writes DNSName on every interface of the topology. noPTRFrac
// of interfaces (drawn with rng) get an empty name, simulating missing
// PTR records.
func Assign(t *topology.Topology, rng *rand.Rand, noPTRFrac float64) {
	orgName := func(asn topology.ASN) string {
		as := t.AS(asn)
		if as == nil {
			return "unknown"
		}
		if as.Org != nil {
			return as.Org.Name
		}
		return as.Name
	}
	for _, l := range t.Links() {
		ifaces := []*topology.Interface{l.A, l.B}
		for _, ifc := range ifaces {
			if ifc == nil || ifc.Addr.IsZero() {
				continue
			}
			if rng.Float64() < noPTRFrac {
				ifc.DNSName = ""
				continue
			}
			domain := Domain(orgName(ifc.Router.AS))
			switch l.Kind {
			case topology.LinkInterdomain:
				var peerASN topology.ASN
				if l.A == ifc {
					peerASN = l.ASB()
				} else {
					peerASN = l.ASA()
				}
				ifc.DNSName = PeerToken(orgName(peerASN)) + "." + ifc.Router.Name + "." + domain
			default:
				ifc.DNSName = ifc.Router.Name + "." + domain
			}
		}
	}
}

// RouterFQDN strips the peer token off an interdomain interface name,
// returning the router's qualified name ("edge5.Dallas3.level3.net").
// For names without a peer token (intra-domain convention) it returns
// the name unchanged; for empty names it returns "".
func RouterFQDN(dnsName string) string {
	if dnsName == "" {
		return ""
	}
	i := strings.IndexByte(dnsName, '.')
	if i < 0 {
		return dnsName
	}
	first := dnsName[:i]
	// Peer tokens are all-caps; router labels are lower/mixed case.
	if first == strings.ToUpper(first) && strings.ContainsAny(first, "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
		return dnsName[i+1:]
	}
	return dnsName
}
