// Package alias models alias resolution: grouping interface addresses
// that belong to the same physical router. bdrmap's collection phase
// runs alias resolution from the vantage point (§5.1); the technique
// (Ally/MIDAR-style shared IP-ID counters) is imperfect, so the
// simulated resolver splits some true groups and occasionally merges
// unrelated interfaces, at configurable rates.
//
// The resolver consults ground truth only to know which interfaces
// truly share a router — exactly what the real probing measures — and
// its output is then degraded; inference code never sees router IDs.
package alias

import (
	"math/rand"
	"sort"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/topology"
)

// Resolver groups interface addresses into inferred routers.
type Resolver struct {
	topo *topology.Topology
	// MergeProb is the chance a true co-router pair is detected (MIDAR
	// validates >90%).
	MergeProb float64
	// FalseMergeProb is the chance two distinct same-metro routers are
	// wrongly merged.
	FalseMergeProb float64
}

// New builds a Resolver with the paper-reported accuracy regime.
func New(t *topology.Topology) *Resolver {
	return &Resolver{topo: t, MergeProb: 0.93, FalseMergeProb: 0.01}
}

// Perfect returns a Resolver with no measurement error, for tests.
func Perfect(t *topology.Topology) *Resolver {
	return &Resolver{topo: t, MergeProb: 1, FalseMergeProb: 0}
}

// Group partitions the addresses into inferred routers. Unknown
// addresses (no interface) become singletons. Output order is
// deterministic for a given rng state: groups sorted by their lowest
// address.
func (r *Resolver) Group(addrs []netaddr.Addr, rng *rand.Rand) [][]netaddr.Addr {
	// Partition by true router first.
	byRouter := make(map[topology.RouterID][]netaddr.Addr)
	var orphans []netaddr.Addr
	seen := map[netaddr.Addr]bool{}
	for _, a := range addrs {
		if seen[a] {
			continue
		}
		seen[a] = true
		ifc := r.topo.IfaceByAddr[a]
		if ifc == nil {
			orphans = append(orphans, a)
			continue
		}
		byRouter[ifc.Router.ID] = append(byRouter[ifc.Router.ID], a)
	}

	var groups [][]netaddr.Addr
	routerIDs := make([]topology.RouterID, 0, len(byRouter))
	for id := range byRouter {
		routerIDs = append(routerIDs, id)
	}
	sort.Slice(routerIDs, func(i, j int) bool { return routerIDs[i] < routerIDs[j] })

	for _, id := range routerIDs {
		members := byRouter[id]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		// Probabilistically split members the probing failed to merge.
		cur := []netaddr.Addr{members[0]}
		for _, a := range members[1:] {
			if rng != nil && rng.Float64() > r.MergeProb {
				groups = append(groups, cur)
				cur = []netaddr.Addr{a}
				continue
			}
			cur = append(cur, a)
		}
		groups = append(groups, cur)
	}
	for _, a := range orphans {
		groups = append(groups, []netaddr.Addr{a})
	}

	// Rare false merges between groups in the same metro.
	if rng != nil && r.FalseMergeProb > 0 {
		metroOf := func(g []netaddr.Addr) string {
			if ifc := r.topo.IfaceByAddr[g[0]]; ifc != nil {
				return ifc.Router.Metro
			}
			return ""
		}
		for i := 0; i+1 < len(groups); i++ {
			if rng.Float64() < r.FalseMergeProb && metroOf(groups[i]) != "" &&
				metroOf(groups[i]) == metroOf(groups[i+1]) {
				groups[i] = append(groups[i], groups[i+1]...)
				groups = append(groups[:i+1], groups[i+2:]...)
			}
		}
	}

	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}
