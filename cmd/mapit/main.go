// Command mapit runs the MAP-IT interdomain-link inference over a
// dataset produced by cmd/ndtsim, printing the inferred IP-level
// interdomain links sorted by traceroute count.
//
// Usage:
//
//	ndtsim -tests 5000 -o corpus.json
//	mapit -in corpus.json [-top 30] [-threshold 0.5]
package main

import (
	"flag"
	"fmt"
	"os"

	"throughputlab/internal/export"
	"throughputlab/internal/mapit"
)

func main() {
	in := flag.String("in", "-", "input dataset (- = stdin)")
	top := flag.Int("top", 30, "how many links to print (0 = all)")
	threshold := flag.Float64("threshold", 0.5, "MAP-IT majority threshold f")
	flag.Parse()

	if err := run(*in, *top, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "mapit:", err)
		os.Exit(1)
	}
}

func run(in string, top int, threshold float64) error {
	f := os.Stdin
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	ds, err := export.Read(f)
	if err != nil {
		return err
	}
	if len(ds.Traces) == 0 {
		return fmt.Errorf("dataset has no traceroutes")
	}
	opts := ds.Lookups().MapItOpts()
	opts.Threshold = threshold
	inf := mapit.Run(ds.Traces, opts)

	fmt.Printf("interfaces labeled: %d; interdomain IP links inferred: %d\n\n",
		len(inf.Operator), len(inf.Links))
	fmt.Printf("%-18s %-18s %-10s %-10s %s\n", "near", "far", "nearAS", "farAS", "traces")
	n := len(inf.Links)
	if top > 0 && top < n {
		n = top
	}
	for _, l := range inf.Links[:n] {
		fmt.Printf("%-18v %-18v AS%-8d AS%-8d %d\n", l.Near, l.Far, l.NearAS, l.FarAS, l.Traces)
	}
	return nil
}
