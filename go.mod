module throughputlab

go 1.22
