package platform

import (
	"math"
	"testing"

	"throughputlab/internal/datasets"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/stats"
	"throughputlab/internal/topogen"
	"throughputlab/internal/traceroute"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func smallCollect() CollectConfig {
	cfg := DefaultCollect()
	cfg.Tests = 1500
	cfg.PerPoolClients = 5
	return cfg
}

func TestBuildPopulation(t *testing.T) {
	hh := BuildPopulation(world, 4, 3)
	if len(hh) == 0 {
		t.Fatal("no households")
	}
	byISP := map[string]int{}
	wifi := 0
	for _, h := range hh {
		byISP[h.ISP]++
		if h.TierMbps <= 0 {
			t.Fatalf("household without tier: %+v", h)
		}
		if h.Endpoint.AccessLine == nil {
			t.Fatal("household without access line")
		}
		if h.WiFiCapMbps > 0 {
			wifi++
		}
	}
	if len(byISP) != len(datasets.AccessISPs()) {
		t.Errorf("population covers %d ISPs, want %d", len(byISP), len(datasets.AccessISPs()))
	}
	frac := float64(wifi) / float64(len(hh))
	if frac < 0.08 || frac > 0.5 {
		t.Errorf("wifi-degraded fraction %.2f implausible", frac)
	}
	// Deterministic for the same seed — compare two FRESH worlds (the
	// shared package world's pool cursors advance as other tests draw
	// clients, so it cannot be the baseline).
	hh1 := BuildPopulation(topogen.MustGenerate(topogen.SmallConfig()), 4, 3)
	hh2 := BuildPopulation(topogen.MustGenerate(topogen.SmallConfig()), 4, 3)
	if len(hh2) != len(hh1) || hh2[0].Endpoint.Addr != hh1[0].Endpoint.Addr || hh2[0].TierMbps != hh1[0].TierMbps {
		t.Error("population not deterministic")
	}
}

func TestCollectCorpus(t *testing.T) {
	corpus, err := Collect(world, smallCollect())
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Tests) < 1500 {
		t.Fatalf("only %d tests", len(corpus.Tests))
	}
	// Tests are in time order.
	for i := 1; i < len(corpus.Tests); i++ {
		if corpus.Tests[i].StartMinute < corpus.Tests[i-1].StartMinute {
			t.Fatal("tests out of time order")
		}
	}
	// Traceroute loss from the single-threaded collector: some but not
	// most (paper matched 71-87%).
	total := len(corpus.Tests)
	missing := corpus.TestsWithoutTrace
	if missing == 0 {
		t.Error("expected some tests to lose their traceroute (busy collector)")
	}
	if missing > total/2 {
		t.Errorf("%d/%d tests lost traceroutes; too many", missing, total)
	}
	if len(corpus.Traces)+missing != total {
		t.Errorf("traces (%d) + missing (%d) != tests (%d)", len(corpus.Traces), missing, total)
	}
	// Measured values are sane.
	for _, ts := range corpus.Tests[:100] {
		if ts.DownMbps <= 0 || ts.DownMbps > 1000 {
			t.Errorf("test %d throughput %v", ts.ID, ts.DownMbps)
		}
		if ts.RTTms <= 0 || ts.RTTms > 1000 {
			t.Errorf("test %d RTT %v", ts.ID, ts.RTTms)
		}
		if ts.UpMbps > ts.TierMbps {
			t.Errorf("test %d upstream %v exceeds tier %v", ts.ID, ts.UpMbps, ts.TierMbps)
		}
		if len(ts.TruthASPath) < 2 {
			t.Errorf("test %d has trivial AS path", ts.ID)
		}
	}
}

func TestCollectDiurnalVolume(t *testing.T) {
	corpus, err := Collect(world, smallCollect())
	if err != nil {
		t.Fatal(err)
	}
	var bins stats.HourBins
	for _, ts := range corpus.Tests {
		m := world.Topo.MustMetro(ts.ClientMetro)
		bins.Add(m.LocalHour(ts.StartMinute), 1)
	}
	c := bins.Counts()
	night := c[3] + c[4] + c[5]
	evening := c[19] + c[20] + c[21]
	if evening <= 3*night {
		t.Errorf("evening tests (%d) should dwarf 3-6am tests (%d): time-of-day bias", evening, night)
	}
}

func TestCollectISPWeighting(t *testing.T) {
	corpus, err := Collect(world, smallCollect())
	if err != nil {
		t.Fatal(err)
	}
	byISP := map[string]int{}
	for _, ts := range corpus.Tests {
		byISP[ts.ClientISP]++
	}
	if byISP["Comcast"] <= byISP["Windstream"] {
		t.Errorf("Comcast tests (%d) should exceed Windstream (%d): subscriber weighting",
			byISP["Comcast"], byISP["Windstream"])
	}
}

func TestBattleForNetMultipliesTests(t *testing.T) {
	cfg := smallCollect()
	cfg.Tests = 300
	base, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BattleForNet = true
	bfn, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bfn.Tests) <= len(base.Tests) {
		t.Errorf("BattleForNet corpus (%d) should exceed single-site (%d)",
			len(bfn.Tests), len(base.Tests))
	}
	// And each client should observe more distinct sites (that was the
	// wrapper's point: observe more paths, §2.2).
	perClient := func(c *Corpus) float64 {
		sites := map[string]map[string]bool{}
		for _, ts := range c.Tests {
			k := ts.ClientAddr.String()
			if sites[k] == nil {
				sites[k] = map[string]bool{}
			}
			sites[k][ts.ServerSite] = true
		}
		total := 0
		for _, s := range sites {
			total += len(s)
		}
		return float64(total) / float64(len(sites))
	}
	if perClient(bfn) <= perClient(base) {
		t.Errorf("BattleForNet sites/client %.2f not above baseline %.2f",
			perClient(bfn), perClient(base))
	}
}

func TestCongestedPairShowsDiurnalDrop(t *testing.T) {
	// The full pipeline reproduces the Figure 5a signal: AT&T clients
	// testing against GTT Atlanta collapse at peak.
	cfg := smallCollect()
	cfg.Tests = 4000
	corpus, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var peak, off []float64
	for _, ts := range corpus.Tests {
		if ts.ClientISP != "AT&T" || ts.ServerNet != "GTT" || ts.ServerMetro != "atl" {
			continue
		}
		h := world.Topo.MustMetro(ts.ClientMetro).LocalHour(ts.StartMinute)
		switch {
		case h >= 20 && h < 23:
			peak = append(peak, ts.DownMbps)
		case h >= 8 && h < 12:
			off = append(off, ts.DownMbps)
		}
	}
	if len(peak) < 5 || len(off) < 5 {
		t.Skipf("not enough AT&T/GTT-atl samples (peak %d, off %d)", len(peak), len(off))
	}
	mp, mo := stats.Median(peak), stats.Median(off)
	if mp > mo*0.5 {
		t.Errorf("peak median %.2f not far below off-peak %.2f on congested pair", mp, mo)
	}
}

func TestEndpointForAddr(t *testing.T) {
	// Client pool address attaches at the access router.
	cli, _ := world.NewClient("Comcast", "nyc")
	ep, ok := EndpointForAddr(world, cli.Addr)
	if !ok {
		t.Fatal("client addr should resolve")
	}
	if ep.Metro != "nyc" {
		t.Errorf("client endpoint metro %s, want nyc", ep.Metro)
	}
	if world.Topo.Router(ep.Router).Kind.String() != "access" {
		t.Errorf("client endpoint attaches at %v router", world.Topo.Router(ep.Router).Kind)
	}
	// Unrouted space fails.
	if _, ok := EndpointForAddr(world, netaddr.MustParseAddr("203.0.113.7")); ok {
		t.Error("unrouted address should not resolve")
	}
}

func TestRoutedPrefixTargets(t *testing.T) {
	targets := RoutedPrefixTargets(world)
	if len(targets) < world.Topo.NumASes() {
		t.Errorf("only %d targets for %d ASes", len(targets), world.Topo.NumASes())
	}
	seen := map[netaddr.Addr]bool{}
	for _, tg := range targets {
		if seen[tg.Addr] {
			t.Fatalf("duplicate target %v", tg.Addr)
		}
		seen[tg.Addr] = true
	}
}

func TestCampaign(t *testing.T) {
	vp := world.ArkVPs[0]
	targets := HostTargets(world.MLabServers())
	traces := Campaign(world, vp.Host.Endpoint, targets, traceroute.Clean(), 5)
	if len(traces) != len(targets) {
		t.Errorf("campaign produced %d/%d traces", len(traces), len(targets))
	}
	for _, tr := range traces {
		if tr.SrcAddr != vp.Host.Endpoint.Addr {
			t.Fatal("trace source mismatch")
		}
		if !tr.Reached {
			t.Error("clean campaign trace should reach the server")
		}
	}
}

func TestAlexaTargets(t *testing.T) {
	t1 := AlexaTargets(world, "nyc")
	t2 := AlexaTargets(world, "lax")
	if len(t1) < 20 || len(t2) < 20 {
		t.Fatalf("too few alexa targets: %d / %d", len(t1), len(t2))
	}
	// Per-metro resolution should differ for at least one CDN domain.
	set1 := map[netaddr.Addr]bool{}
	for _, e := range t1 {
		set1[e.Addr] = true
	}
	diff := 0
	for _, e := range t2 {
		if !set1[e.Addr] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("alexa resolution identical from nyc and lax; regional CDN replicas missing")
	}
}

func TestTestVolumeShape(t *testing.T) {
	if testVolumeShape(21) <= testVolumeShape(4) {
		t.Error("evening test volume should exceed 4am volume")
	}
	for h := 0.0; h < 24; h += 0.5 {
		v := testVolumeShape(h)
		if v <= 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("volume(%v) = %v", h, v)
		}
	}
}

func BenchmarkCollect(b *testing.B) {
	cfg := smallCollect()
	cfg.Tests = 500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(world, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
