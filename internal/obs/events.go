package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The progress event bus. Metrics answer "how much"; events answer
// "what just happened": a chunk was published, a pipeline stage
// consumed an item, a reorder window stalled a producer, a fault retry
// fired, a report pass sealed. The bus is the pipeline's live feed of
// those moments, with the same contracts as the rest of the registry:
//
//   - Disabled is free. A nil *Bus (what Registry.Events returns when
//     no bus is attached) ignores Publish without allocating — pinned
//     by BenchmarkEventPublishDisabled — so emission sites cost one
//     branch when nobody is listening.
//   - Bounded and lossy, never blocking. Publish does a non-blocking
//     send into a fixed buffer; when the consumer falls behind, events
//     are counted as dropped instead of backpressuring the pipeline.
//     Telemetry must never change how fast the campaign runs, so
//     losing progress lines beats slowing collection.
//   - Ordered per publisher. Events are delivered to every sink from
//     one consumer goroutine in arrival order; Seq exposes global
//     publication order, and gaps in Seq are exactly the drops.

// Event is one progress notification.
type Event struct {
	// Seq is the global publication sequence number (1-based); a gap
	// between consecutive delivered events means the bus dropped the
	// events in between.
	Seq uint64 `json:"seq"`
	// WallMS is milliseconds since the bus was created.
	WallMS float64 `json:"wall_ms"`
	// Kind names the event family, dotted like metric names:
	// "collect.chunk", "pipeline.stage", "stream.stall",
	// "fault.retry", "report.pass", "campaign.done".
	Kind string `json:"kind"`
	// Name qualifies the kind (stage name, fault kind); may be empty.
	Name string `json:"name,omitempty"`
	// SimMinute is the simulated-clock stamp when the event is tied to
	// campaign time (chunk watermarks), else -1.
	SimMinute int `json:"sim_minute"`
	// N is the event's magnitude: chunk index, item count, retry wave —
	// whatever the kind documents.
	N int64 `json:"n"`
}

// EventStats summarizes a bus after (or during) a run.
type EventStats struct {
	Published uint64 `json:"published"`
	Dropped   uint64 `json:"dropped"`
	// ByKind counts delivered events per kind (dropped events are not
	// attributed — they were never decoded).
	ByKind map[string]uint64 `json:"by_kind,omitempty"`
}

// Bus is a bounded, drop-counting progress event bus. Build one with
// Registry.EnableEvents; the nil bus is the disabled path.
type Bus struct {
	ch    chan Event
	start time.Time

	seq       atomic.Uint64
	published atomic.Uint64
	dropped   atomic.Uint64
	done      atomic.Bool

	mu      sync.Mutex
	sinks   []func(Event)
	byKind  map[string]uint64
	closing chan struct{}
	drained chan struct{}
	closed  sync.Once
}

// EnableEvents attaches a progress bus with the given buffer size
// (minimum 1) to the registry and returns it; the first call wins. On
// a nil registry it returns nil. Attach sinks before the instrumented
// work starts — events delivered while no sink is registered are
// counted but go nowhere.
func (r *Registry) EnableEvents(buffer int) *Bus {
	if r == nil {
		return nil
	}
	if buffer < 1 {
		buffer = 1
	}
	b := &Bus{
		ch: make(chan Event, buffer), start: time.Now(),
		byKind:  make(map[string]uint64),
		closing: make(chan struct{}), drained: make(chan struct{}),
	}
	if !r.bus.CompareAndSwap(nil, b) {
		return r.bus.Load()
	}
	go b.consume()
	return b
}

// Events returns the attached bus (nil when none, or on a nil
// registry).
func (r *Registry) Events() *Bus {
	if r == nil {
		return nil
	}
	return r.bus.Load()
}

// AddSink registers a delivery function. Sinks run on the bus's single
// consumer goroutine, in registration order, one event at a time — a
// slow sink makes the bus drop, never block.
func (b *Bus) AddSink(fn func(Event)) {
	if b == nil || fn == nil {
		return
	}
	b.mu.Lock()
	b.sinks = append(b.sinks, fn)
	b.mu.Unlock()
}

// Publish emits one event. It never blocks: when the buffer is full
// (or the bus is already closed) the event is counted as dropped and
// forgotten. simMinute < 0 means "not tied to the simulated clock".
// The nil bus ignores the call without allocating.
func (b *Bus) Publish(kind, name string, simMinute int, n int64) {
	if b == nil {
		return
	}
	e := Event{
		Seq:       b.seq.Add(1),
		WallMS:    float64(time.Since(b.start).Microseconds()) / 1000,
		Kind:      kind,
		Name:      name,
		SimMinute: simMinute,
		N:         n,
	}
	if simMinute < 0 {
		e.SimMinute = -1
	}
	if b.done.Load() {
		// Closed: the buffer would hold the event forever (the channel
		// is deliberately never closed), so count it as dropped.
		b.dropped.Add(1)
		return
	}
	select {
	case b.ch <- e:
		b.published.Add(1)
	default:
		b.dropped.Add(1)
	}
}

// consume is the single delivery goroutine.
func (b *Bus) consume() {
	deliver := func(e Event) {
		b.mu.Lock()
		b.byKind[e.Kind]++
		sinks := b.sinks
		b.mu.Unlock()
		for _, fn := range sinks {
			fn(e)
		}
	}
	for {
		select {
		case e := <-b.ch:
			deliver(e)
		case <-b.closing:
			for {
				select {
				case e := <-b.ch:
					deliver(e)
				default:
					close(b.drained)
					return
				}
			}
		}
	}
}

// Close drains buffered events through the sinks and stops delivery.
// It returns once every buffered event has been delivered. Publish
// after Close is safe and counts as dropped. The nil bus ignores it.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.closed.Do(func() {
		b.done.Store(true)
		close(b.closing)
	})
	<-b.drained
}

// Stats snapshots the bus counters (zero on the nil bus). ByKind is
// complete only after Close.
func (b *Bus) Stats() EventStats {
	if b == nil {
		return EventStats{}
	}
	st := EventStats{
		Published: b.published.Load(),
		Dropped:   b.dropped.Load(),
	}
	b.mu.Lock()
	if len(b.byKind) > 0 {
		st.ByKind = make(map[string]uint64, len(b.byKind))
		for k, v := range b.byKind {
			st.ByKind[k] = v
		}
	}
	b.mu.Unlock()
	return st
}

// NewNDJSONSink returns a sink that writes each event as one JSON line
// to w — the `-events FILE` stream. The caller owns buffering and
// flushing of w; writes happen on the bus consumer goroutine only.
func NewNDJSONSink(w io.Writer) func(Event) {
	enc := json.NewEncoder(w)
	return func(e Event) {
		_ = enc.Encode(e) // a full disk must not kill the campaign
	}
}

// NewProgressSink returns a sink that renders a live progress line to
// w (stderr in the CLI). It is rate-limited to one line per interval
// per kind-family so a fast campaign does not scroll the terminal off
// the planet; terminal events ("campaign.done", "report.pass") always
// print.
func NewProgressSink(w io.Writer, interval time.Duration) func(Event) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	var last time.Time
	return func(e Event) {
		always := e.Kind == "campaign.done" || e.Kind == "report.pass" || e.Kind == "collect.done"
		now := time.Now()
		if !always && now.Sub(last) < interval {
			return
		}
		last = now
		switch {
		case e.SimMinute >= 0:
			fmt.Fprintf(w, "progress: %-16s %-12s n=%-8d sim day %.2f (wall %.1fs)\n",
				e.Kind, e.Name, e.N, float64(e.SimMinute)/1440, e.WallMS/1000)
		default:
			fmt.Fprintf(w, "progress: %-16s %-12s n=%-8d (wall %.1fs)\n",
				e.Kind, e.Name, e.N, e.WallMS/1000)
		}
	}
}
