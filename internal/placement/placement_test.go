package placement

import (
	"testing"

	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

var (
	world  = topogen.MustGenerate(topogen.SmallConfig())
	matrix = BuildMatrix(world, Candidates(world))
)

func TestCandidatesExcludeAccessISPs(t *testing.T) {
	cands := Candidates(world)
	if len(cands) < 50 {
		t.Fatalf("only %d candidates", len(cands))
	}
	for _, c := range cands {
		if world.Topo.AS(c.ASN).Type == topology.ASTypeAccess {
			t.Fatalf("access ISP %s among candidates", c.Network)
		}
		if c.Endpoint.Addr.IsZero() {
			t.Fatalf("candidate %s/%s has no address", c.Network, c.Metro)
		}
	}
}

func TestMatrixCoversSomething(t *testing.T) {
	if len(matrix.Universe) < 20 {
		t.Fatalf("universe only %d keys", len(matrix.Universe))
	}
	if len(matrix.PeerUniverse) == 0 {
		t.Fatal("no peer keys")
	}
	if len(matrix.PeerUniverse) >= len(matrix.Universe) {
		t.Error("peer universe should be a strict subset")
	}
	nonEmpty := 0
	for _, cov := range matrix.Covers {
		if len(cov) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(matrix.Cands)/2 {
		t.Errorf("only %d/%d candidates cover anything", nonEmpty, len(matrix.Cands))
	}
}

func TestGreedyMonotoneAndDiminishing(t *testing.T) {
	plan := matrix.Greedy(12, true)
	if len(plan.Chosen) == 0 {
		t.Fatal("greedy chose nothing")
	}
	prev := 0
	prevGain := 1 << 30
	for i, c := range plan.CoveredAfter {
		if c <= prev && i > 0 {
			t.Errorf("step %d added no coverage (greedy should stop instead)", i)
		}
		gain := c - prev
		if gain > prevGain {
			t.Errorf("marginal gain increased at step %d (%d > %d)", i, gain, prevGain)
		}
		prev, prevGain = c, gain
	}
	if plan.CoveredAfter[len(plan.CoveredAfter)-1] > plan.Universe {
		t.Error("covered more than the universe")
	}
}

func TestGreedyBeatsLatencyFirst(t *testing.T) {
	// The paper's point quantified: at the same server budget,
	// topology-aware placement covers more peer interconnections than
	// latency-driven placement.
	const k = 10
	greedy := matrix.Greedy(k, true)
	latency := matrix.LatencyFirst(world, k, true)
	if len(greedy.CoveredAfter) == 0 || len(latency.CoveredAfter) == 0 {
		t.Fatal("empty plans")
	}
	g := greedy.CoveredAfter[len(greedy.CoveredAfter)-1]
	l := latency.CoveredAfter[len(latency.CoveredAfter)-1]
	if g <= l {
		t.Errorf("greedy covers %d, latency-first %d of %d; topology-awareness should win",
			g, l, greedy.Universe)
	}
	// Both strategies are well below full coverage at small k with
	// per-ISP duplication in the universe.
	if g > greedy.Universe {
		t.Error("overcount")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	p1 := matrix.Greedy(6, false)
	p2 := matrix.Greedy(6, false)
	if len(p1.Chosen) != len(p2.Chosen) {
		t.Fatal("nondeterministic plan length")
	}
	for i := range p1.Chosen {
		if p1.Chosen[i] != p2.Chosen[i] {
			t.Fatal("nondeterministic choice")
		}
	}
}

func TestGreedyStopsWhenExhausted(t *testing.T) {
	plan := matrix.Greedy(1000000, false)
	if len(plan.Chosen) >= len(matrix.Cands) {
		t.Error("greedy should stop when no candidate adds coverage")
	}
	final := plan.CoveredAfter[len(plan.CoveredAfter)-1]
	if final != plan.Universe {
		t.Errorf("unbounded greedy covered %d != universe %d", final, plan.Universe)
	}
}

func TestLatencyFirstPrefersCentralTransit(t *testing.T) {
	plan := matrix.LatencyFirst(world, 5, false)
	for _, c := range plan.Chosen {
		if world.Topo.AS(c.ASN).Type != topology.ASTypeTransit {
			t.Errorf("latency-first picked non-transit host %s", c.Network)
		}
	}
}

func BenchmarkBuildMatrix(b *testing.B) {
	cands := Candidates(world)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildMatrix(world, cands)
	}
}

func BenchmarkGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		matrix.Greedy(20, true)
	}
}
