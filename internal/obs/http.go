package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// The live-telemetry HTTP endpoint: the seed of the tputlabd campaign
// server's monitoring surface (ROADMAP item 4). While a campaign runs,
// `-telemetry-addr` serves:
//
//	/metrics        Prometheus text exposition of the registry
//	/spans          the live span tree as JSON (in-progress spans
//	                report elapsed time so far)
//	/series         the simulated-clock time series as JSON
//	/trace          the span tree as Chrome trace_event JSON
//	/dump           the full registry dump (the -metrics-json document)
//	/debug/pprof/   net/http/pprof (profiles with the goroutine labels
//	                the pipeline workers carry)
//
// Everything is read-only and lock-bounded: a scrape snapshots the
// registry exactly like -metrics-json does, so scraping can never
// perturb results (the determinism contract extends to the endpoint).

// TelemetryServer is a running telemetry endpoint. Create with
// Registry.ServeTelemetry; stop with Close.
type TelemetryServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeTelemetry starts the telemetry endpoint on addr (host:port;
// ":0" picks a free port — read it back with Addr). The server runs on
// its own goroutine until Close. On a nil registry it returns an
// error: an endpoint over a disabled registry would serve nothing.
func (r *Registry) ServeTelemetry(addr string) (*TelemetryServer, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: telemetry endpoint needs an enabled registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "tputlab telemetry\n\n/metrics\n/spans\n/series\n/trace\n/dump\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot().Spans)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.TimeSeries().DumpSeries())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteTrace(w)
	})
	mux.HandleFunc("/dump", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ts := &TelemetryServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = ts.srv.Serve(ln) }()
	return ts, nil
}

// Addr returns the listening address (useful with ":0").
func (t *TelemetryServer) Addr() string {
	if t == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Close stops the endpoint. Safe on nil.
func (t *TelemetryServer) Close() error {
	if t == nil {
		return nil
	}
	return t.srv.Close()
}

// promName sanitizes a dotted metric name into the Prometheus
// charset: dots and any other illegal rune become underscores.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// writePrometheus renders a dump in the Prometheus text exposition
// format, names sorted, histogram buckets cumulative per the format.
func writePrometheus(w http.ResponseWriter, d *Dump) {
	for _, name := range sortedKeys(d.Counters) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, d.Counters[name])
	}
	for _, name := range sortedKeys(d.Gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, d.Gauges[name])
	}
	for _, name := range sortedKeys(d.Histograms) {
		h := d.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.Upper, 1) {
				le = fmt.Sprintf("%g", b.Upper)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	// Span roots as info gauges: phase wall time is live telemetry too.
	var walk func(prefix string, s SpanDump)
	names := map[string]float64{}
	var order []string
	walk = func(prefix string, s SpanDump) {
		full := s.Name
		if prefix != "" {
			full = prefix + "." + s.Name
		}
		key := promName("span_ms_" + full)
		if _, seen := names[key]; !seen {
			order = append(order, key)
		}
		names[key] += s.Millis
		for _, c := range s.Children {
			walk(full, c)
		}
	}
	for _, s := range d.Spans {
		walk("", s)
	}
	sort.Strings(order)
	for _, key := range order {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", key, key, names[key])
	}
}
