package experiments

import (
	"testing"
)

// TestRunParallelGolden asserts the engine's core contract: RunParallel
// output is byte-identical to serial RunAll for every worker count.
func TestRunParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry four times")
	}
	want, err := RunAll(env)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(want) < 1000 {
		t.Fatalf("RunAll output suspiciously small (%d bytes)", len(want))
	}
	for _, workers := range []int{1, 2, 8} {
		got, stats, err := RunParallel(env, workers)
		if err != nil {
			t.Fatalf("RunParallel(%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("RunParallel(%d) output differs from RunAll (%d vs %d bytes)",
				workers, len(got), len(want))
		}
		if stats == nil {
			t.Fatalf("RunParallel(%d): nil stats", workers)
		}
		entries := Registry()
		if len(stats.Experiments) != len(entries) {
			t.Fatalf("RunParallel(%d): %d stats, want %d", workers, len(stats.Experiments), len(entries))
		}
		for i, st := range stats.Experiments {
			if st.Name != entries[i].Name {
				t.Errorf("stats[%d] = %q, want registry order %q", i, st.Name, entries[i].Name)
			}
			if st.Wall <= 0 {
				t.Errorf("experiment %s has non-positive wall time", st.Name)
			}
		}
		if stats.Wall <= 0 {
			t.Errorf("RunParallel(%d): non-positive sweep wall time", workers)
		}
		if s := stats.Summary(); len(s) < 100 {
			t.Errorf("stats summary too short: %q", s)
		}
	}
}

// TestNewEnvWorkerIndependence asserts that the worker knob never
// changes the environment: corpus sizes, inference, and matching are
// identical for serial and parallel construction.
func TestNewEnvWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an extra world")
	}
	opts := QuickOptions()
	opts.Collect.Tests = 2000
	serial, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Corpus.Tests) != len(serial.Corpus.Tests) ||
		len(par.Corpus.Traces) != len(serial.Corpus.Traces) ||
		par.Corpus.TestsWithoutTrace != serial.Corpus.TestsWithoutTrace {
		t.Fatalf("corpus differs: %d/%d/%d vs %d/%d/%d",
			len(par.Corpus.Tests), len(par.Corpus.Traces), par.Corpus.TestsWithoutTrace,
			len(serial.Corpus.Tests), len(serial.Corpus.Traces), serial.Corpus.TestsWithoutTrace)
	}
	for i := range serial.Corpus.Tests {
		a, b := serial.Corpus.Tests[i], par.Corpus.Tests[i]
		if a.ClientAddr != b.ClientAddr || a.StartMinute != b.StartMinute || a.DownMbps != b.DownMbps {
			t.Fatalf("test %d differs between worker counts", i)
		}
	}
	if len(par.Inference.Links) != len(serial.Inference.Links) {
		t.Fatalf("inference differs: %d vs %d links",
			len(par.Inference.Links), len(serial.Inference.Links))
	}
	for i := range serial.Inference.Links {
		if par.Inference.Links[i] != serial.Inference.Links[i] {
			t.Fatalf("link %d differs between worker counts", i)
		}
	}
	if par.Matching.Matched() != serial.Matching.Matched() {
		t.Fatalf("matching differs: %d vs %d", par.Matching.Matched(), serial.Matching.Matched())
	}
}
