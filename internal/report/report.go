// Package report assembles the paper's recommendations (§7) into a
// congestion report generator: the M-Lab-style per-interconnection
// analysis, but with every §3–§6 challenge checked and surfaced as a
// machine-readable caveat, and a final confidence grade that degrades
// when the underlying assumptions do not hold.
//
// This is the shape the paper argues such reports should have had:
// "claims about congestion at interconnects should acknowledge that
// those interconnects may not be on the path from the most popular
// content to users", "analysis of throughput measurements should not
// aggregate across router-level links", "every throughput-based test
// must include a traceroute", and so on — each becomes a concrete
// check against the corpus.
package report

import (
	"fmt"
	"sort"
	"strings"

	"throughputlab/internal/core"
	"throughputlab/internal/experiments"
	"throughputlab/internal/mapit"
	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/signatures"
	"throughputlab/internal/traceroute"
)

// Grade is the final confidence in a congestion claim.
type Grade int

const (
	// Insufficient: not enough well-distributed samples to say anything
	// (§6.1).
	Insufficient Grade = iota
	// NotCongested: no meaningful peak-hour degradation.
	NotCongested
	// Ambiguous: a measurable dip that cannot be distinguished from
	// busy-but-healthy behaviour (§6.2's gray zone), or a clear dip
	// whose localization assumptions fail.
	Ambiguous
	// CongestedLowConfidence: strong dip, but one or more challenge
	// checks failed — the WHERE is unreliable.
	CongestedLowConfidence
	// CongestedHighConfidence: strong dip, assumptions validated,
	// congestion-signature evidence concurs.
	CongestedHighConfidence
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	switch g {
	case Insufficient:
		return "insufficient-data"
	case NotCongested:
		return "not-congested"
	case Ambiguous:
		return "ambiguous"
	case CongestedLowConfidence:
		return "congested (low confidence)"
	case CongestedHighConfidence:
		return "congested (high confidence)"
	}
	return fmt.Sprintf("Grade(%d)", int(g))
}

// Finding is the report row for one (server network+metro, client ISP)
// aggregate.
type Finding struct {
	ServerNet, ServerMetro, ClientISP string

	Tests int
	// MatchedFrac is the fraction of the group's tests with an
	// associated traceroute (§4.1 / §7: "every throughput-based test
	// must include a traceroute").
	MatchedFrac float64
	// OneHopFrac is the fraction of matched tests whose server and
	// client organizations are directly connected (Assumption 2).
	OneHopFrac float64
	// IPLinks is the number of distinct IP-level interdomain links the
	// group's tests crossed when first leaving the server network — the
	// interconnection the aggregate nominally measures (Assumption 3:
	// >1 means the aggregate mixes links).
	IPLinks int

	Detector core.Verdict
	Bias     core.BiasReport
	// ExternalSigFrac is the fraction of determinate peak-hour
	// congestion-signature verdicts that say "external congestion" —
	// corroborating evidence independent of the diurnal comparison.
	ExternalSigFrac float64

	Grade   Grade
	Caveats []string
}

// Config tunes the grading.
type Config struct {
	MinTests int
	Detector core.DetectorConfig
	// MinOneHop is the Assumption-2 bar below which localization
	// caveats apply.
	MinOneHop float64
	// MaxIPLinks is the Assumption-3 bar.
	MaxIPLinks int
	// Signature thresholds.
	Signature signatures.Config
}

// DefaultConfig returns the grading used by cmd/tputlab.
func DefaultConfig() Config {
	det := core.DefaultDetector()
	det.MinSamples = 20
	return Config{
		MinTests:   150,
		Detector:   det,
		MinOneHop:  0.8,
		MaxIPLinks: 1,
		Signature:  signatures.DefaultConfig(),
	}
}

// Report is the full output.
type Report struct {
	Findings []Finding
	// Congested lists findings graded congested (either confidence).
	Congested int
	Ambiguous int
	// Completeness is the corpus's fault-plane ledger (zero on clean
	// campaigns) and MatchedDegraded the matched pairs excluded from
	// path analyses — §6.1's demand that a claim acknowledge the
	// integrity of the data behind it, extended to the fault plane.
	Completeness    platform.Completeness
	MatchedDegraded int
}

// Build assembles the report from an experiment environment.
func Build(e *experiments.Env, cfg Config) *Report {
	if cfg.MinTests == 0 {
		cfg = DefaultConfig()
	}
	type gkey struct{ net, metro, isp string }
	groups := map[gkey][]*ndt.Test{}
	for _, t := range e.Corpus.Tests {
		k := gkey{t.ServerNet, t.ServerMetro, t.ClientISP}
		groups[k] = append(groups[k], t)
	}
	keys := make([]gkey, 0, len(groups))
	for k := range groups {
		if len(groups[k]) >= cfg.MinTests {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.net != b.net {
			return a.net < b.net
		}
		if a.metro != b.metro {
			return a.metro < b.metro
		}
		return a.isp < b.isp
	})

	rep := &Report{
		Completeness:    e.Corpus.Completeness,
		MatchedDegraded: e.Matching.Degraded,
	}
	for _, k := range keys {
		tests := groups[k]
		f := buildFinding(e, cfg, k.net, k.metro, k.isp, tests)
		grade(&f, cfg)
		switch f.Grade {
		case CongestedHighConfidence, CongestedLowConfidence:
			rep.Congested++
		case Ambiguous:
			rep.Ambiguous++
		}
		rep.Findings = append(rep.Findings, f)
	}
	e.Opts.Obs.Events().Publish("report.pass", "final", -1, int64(len(rep.Findings)))
	return rep
}

func buildFinding(e *experiments.Env, cfg Config, net, metro, isp string, tests []*ndt.Test) Finding {
	f := Finding{ServerNet: net, ServerMetro: metro, ClientISP: isp, Tests: len(tests)}

	// Traceroute association and Assumption 2.
	matched, oneHop, pathKnown := 0, 0, 0
	linkSet := map[uint32]bool{}
	for _, t := range tests {
		tr := e.Matching.ByTest[t.ID]
		if tr == nil {
			continue
		}
		matched++
		p := e.Inference.ASPathOf(tr)
		if len(p) >= 2 {
			pathKnown++
			if len(p) == 2 {
				oneHop++
			}
		}
		for _, l := range firstOrgCrossings(e, tr) {
			linkSet[uint32(l.Far)] = true
		}
	}
	f.MatchedFrac = frac(matched, len(tests))
	f.OneHopFrac = frac(oneHop, pathKnown)
	f.IPLinks = len(linkSet)

	// Detector + bias.
	s := core.BuildSeries(tests, e.HourOf)
	f.Detector = core.Detect(s, cfg.Detector)
	f.Bias = core.Bias(tests, e.HourOf, cfg.Detector.MinSamples)

	// Congestion signatures on peak-hour tests.
	det, ext := 0, 0
	for _, t := range tests {
		h := e.HourOf(t)
		if h < 19 || h >= 23 {
			continue
		}
		switch signatures.Classify(signatures.Extract(t), cfg.Signature) {
		case signatures.ExternalCongestion:
			det++
			ext++
		case signatures.SelfInduced:
			det++
		}
	}
	f.ExternalSigFrac = frac(ext, det)
	return f
}

// firstOrgCrossings returns the inferred links between the trace's
// first and last organizations (the interconnection the aggregate is
// nominally about).
func firstOrgCrossings(e *experiments.Env, tr *traceroute.Trace) []mapit.Link {
	links := e.Inference.LinksOf(tr)
	if len(links) == 0 {
		return nil
	}
	// Keep only the first crossing: the interconnection out of the
	// server network.
	return links[:1]
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// grade applies the §3–§6 checklist.
func grade(f *Finding, cfg Config) {
	v := f.Detector
	if v.InsufficientData {
		f.Grade = Insufficient
		f.Caveats = append(f.Caveats,
			fmt.Sprintf("too few samples per window (peak %d, off-peak %d) — §6.1", v.PeakN, v.OffN))
		return
	}

	// Challenge checks (recorded regardless of verdict).
	localizable := true
	if f.MatchedFrac < 0.5 {
		f.Caveats = append(f.Caveats,
			fmt.Sprintf("only %.0f%% of tests have an associated traceroute — §4.1", 100*f.MatchedFrac))
		localizable = false
	}
	if f.OneHopFrac < cfg.MinOneHop {
		f.Caveats = append(f.Caveats,
			fmt.Sprintf("only %.0f%% of paths are one AS hop: Assumption 2 fails, any interdomain link on the path could be the cause — §4.2", 100*f.OneHopFrac))
		localizable = false
	}
	if f.IPLinks > cfg.MaxIPLinks {
		f.Caveats = append(f.Caveats,
			fmt.Sprintf("aggregate spans %d IP-level interconnections: Assumption 3 fails, stratify per link — §4.3", f.IPLinks))
		localizable = false
	}
	if f.Bias.NightToEveningRatio < 0.25 {
		f.Caveats = append(f.Caveats,
			fmt.Sprintf("night/evening sample ratio %.2f: off-peak baseline rests on few tests — §6.1", f.Bias.NightToEveningRatio))
	}
	if f.Bias.MaxHourCV > 1.0 {
		f.Caveats = append(f.Caveats,
			fmt.Sprintf("hourly CV up to %.2f: plan/home-network variance dominates — §6.1", f.Bias.MaxHourCV))
	}

	switch {
	case !v.Congested && v.Drop < 0.15 && v.MeanDrop < 0.15:
		f.Grade = NotCongested
	case !v.Congested:
		f.Grade = Ambiguous
		f.Caveats = append(f.Caveats,
			fmt.Sprintf("measurable dip (median %.0f%%, mean %.0f%%) below the congestion threshold: busy or congested? — §6.2", 100*v.Drop, 100*v.MeanDrop))
	default:
		// Congested by the detector. Corroboration and localization
		// decide the confidence — and active contradiction by the
		// congestion signatures (the peak flows built their own queues)
		// demotes the claim entirely: the dip is the clients' own
		// bottlenecks at peak, not an upstream link.
		switch {
		case f.ExternalSigFrac < 0.25:
			f.Grade = Ambiguous
			f.Caveats = append(f.Caveats,
				fmt.Sprintf("congestion signatures attribute only %.0f%% of peak flows to an external bottleneck: the dip looks self-induced — [37]", 100*f.ExternalSigFrac))
		case f.ExternalSigFrac < 0.5:
			f.Grade = CongestedLowConfidence
			f.Caveats = append(f.Caveats,
				fmt.Sprintf("congestion signatures corroborate only %.0f%% of peak flows — [37]", 100*f.ExternalSigFrac))
		case localizable && v.PeakCV < 0.5:
			f.Grade = CongestedHighConfidence
		default:
			f.Grade = CongestedLowConfidence
		}
	}
}

// Render prints the report.
func (r *Report) Render() string {
	var sb strings.Builder
	sb.WriteString("Interconnection congestion report (per §7's checklist)\n")
	sb.WriteString(fmt.Sprintf("groups analyzed: %d; congested: %d; ambiguous: %d\n",
		len(r.Findings), r.Congested, r.Ambiguous))
	// The completeness section appears only when the fault plane cost
	// the campaign data, so clean reports are byte-identical to the
	// pre-fault-layer output.
	if c := r.Completeness; c.Degraded() {
		sb.WriteString("data completeness:\n")
		sb.WriteString(fmt.Sprintf("  tests: %d collected of %d scheduled (%d abandoned after retries, %d rows dropped corrupt)\n",
			c.ScheduledTests-c.AbandonedTests-c.DroppedRows, c.ScheduledTests,
			c.AbandonedTests, c.DroppedRows))
		sb.WriteString(fmt.Sprintf("  partial records: %d truncated tests retained (excluded from path-sensitive analyses)\n",
			c.TruncatedTests))
		sb.WriteString(fmt.Sprintf("  traces: %d degraded by probe loss / rate limiting (skipped by inference)\n",
			c.DegradedTraces))
		sb.WriteString(fmt.Sprintf("  matching: %d associated pairs excluded as degraded\n",
			r.MatchedDegraded))
	}
	sb.WriteString("\n")
	for _, f := range r.Findings {
		if f.Grade == NotCongested || f.Grade == Insufficient {
			continue
		}
		sb.WriteString(fmt.Sprintf("%s/%s → %s: %s\n", f.ServerNet, f.ServerMetro, f.ClientISP, f.Grade))
		sb.WriteString(fmt.Sprintf("  %d tests; peak median %.2f vs off-peak %.2f Mbps (drop %.0f%%); peak CV %.2f; ext-signature %.0f%%\n",
			f.Tests, f.Detector.PeakMedian, f.Detector.OffMedian, 100*f.Detector.Drop, f.Detector.PeakCV, 100*f.ExternalSigFrac))
		sb.WriteString(fmt.Sprintf("  paths: %.0f%% traced, %.0f%% one-hop, %d IP link(s)\n",
			100*f.MatchedFrac, 100*f.OneHopFrac, f.IPLinks))
		for _, c := range f.Caveats {
			sb.WriteString("  ⚠ " + c + "\n")
		}
		sb.WriteString("\n")
	}
	notable := 0
	for _, f := range r.Findings {
		if f.Grade != NotCongested && f.Grade != Insufficient {
			notable++
		}
	}
	if notable == 0 {
		sb.WriteString("(no congested or ambiguous interconnections)\n")
	}
	if recs := r.Recommendations(); len(recs) > 0 {
		sb.WriteString("recommendations (§7):\n")
		for _, rec := range recs {
			sb.WriteString("  • " + rec + "\n")
		}
	}
	return sb.String()
}

// Recommendations maps the report's aggregate statistics onto the
// paper's §7 deployment guidance: each recommendation appears only
// when the corpus actually exhibits the problem it addresses, with the
// numbers that justify it.
func (r *Report) Recommendations() []string {
	if len(r.Findings) == 0 {
		return nil
	}
	var (
		total          = len(r.Findings)
		lowTrace       int
		multiHop       int
		multiLink      int
		thinOffPeak    int
		sigContradicts int
	)
	for _, f := range r.Findings {
		if f.MatchedFrac < 0.8 {
			lowTrace++
		}
		if f.OneHopFrac < 0.8 && f.OneHopFrac > 0 {
			multiHop++
		}
		if f.IPLinks > 1 {
			multiLink++
		}
		if f.Bias.NightToEveningRatio < 0.25 {
			thinOffPeak++
		}
		if f.Detector.Congested && f.ExternalSigFrac < 0.25 {
			sigContradicts++
		}
	}
	var out []string
	if lowTrace > 0 {
		out = append(out, fmt.Sprintf(
			"pair every test with a traceroute taken close in time — %d/%d aggregates fall below 80%% trace coverage (§7)",
			lowTrace, total))
	}
	if multiHop > 0 {
		out = append(out, fmt.Sprintf(
			"restrict server selection to directly connected servers or discard multi-hop tests — %d/%d aggregates are not predominantly one-hop (§7)",
			multiHop, total))
	}
	if multiLink > 0 {
		out = append(out, fmt.Sprintf(
			"do not aggregate across router-level links: stratify per IP link — %d/%d aggregates span several interconnections (§4.3, §7)",
			multiLink, total))
	}
	if thinOffPeak > 0 {
		out = append(out, fmt.Sprintf(
			"complement crowdsourcing with scheduled platform tests (Ark/BISmark/Atlas, e.g. TSLP) — %d/%d aggregates have starved off-peak baselines (§6.1, §7)",
			thinOffPeak, total))
	}
	if sigContradicts > 0 {
		out = append(out, fmt.Sprintf(
			"report congestion signatures alongside throughput — they overturned %d diurnal verdicts here ([37], §7)",
			sigContradicts))
	}
	return out
}
