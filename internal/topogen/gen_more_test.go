package topogen

import (
	"strings"
	"testing"

	"throughputlab/internal/datasets"
	"throughputlab/internal/topology"
)

// TestManySeedsValidate: the generator must produce a structurally
// valid world for any seed (the Validate invariants are the contract).
func TestManySeedsValidate(t *testing.T) {
	for seed := int64(2); seed <= 6; seed++ {
		cfg := SmallConfig()
		cfg.Seed = seed
		w, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if errs := w.Topo.Validate(); len(errs) != 0 {
			t.Fatalf("seed %d: %d invariant violations, first: %v", seed, len(errs), errs[0])
		}
		// Full reachability between access backbones and M-Lab hosts
		// must hold for every seed, or Figure 1 is meaningless.
		for _, p := range datasets.AccessISPs() {
			for _, tr := range datasets.Transits() {
				if len(tr.MLabMetros) > 0 && !w.Routes.HasRoute(p.BackboneASN, tr.ASN) {
					t.Fatalf("seed %d: %s cannot reach %s", seed, p.Name, tr.Name)
				}
			}
		}
	}
}

// TestEmptyCongestionMeansHealthy: passing an explicit empty scenario
// leaves no saturated interdomain links.
func TestEmptyCongestionMeansHealthy(t *testing.T) {
	cfg := SmallConfig()
	cfg.Congestion = []CongestionSpec{}
	w := MustGenerate(cfg)
	for _, l := range w.Topo.InterdomainLinks(0, 0) {
		if l.PeakUtil >= 1 {
			t.Fatalf("healthy world has saturated link %d (%v)", l.ID, l.Metro)
		}
	}
}

// TestCustomCongestionSpec: a user-supplied scenario lands on the
// requested interconnection.
func TestCustomCongestionSpec(t *testing.T) {
	cfg := SmallConfig()
	cfg.Congestion = []CongestionSpec{
		{Transit: "Level3", Access: "Cox", Metro: "", BaseUtil: 0.5, PeakUtil: 1.4, CapacityMbps: 1500},
	}
	w := MustGenerate(cfg)
	found := 0
	for _, a := range w.Access["Cox"].Org.ASNs {
		for _, ta := range []topology.ASN{3356, 3549} {
			for _, l := range w.Topo.InterdomainLinks(ta, a) {
				if l.PeakUtil == 1.4 && l.CapacityMbps == 1500 {
					found++
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("custom congestion spec not applied")
	}
	// And nothing else saturated.
	for _, l := range w.Topo.InterdomainLinks(0, 0) {
		level3Side := l.ASA() == 3356 || l.ASB() == 3356 || l.ASA() == 3549 || l.ASB() == 3549
		if l.PeakUtil >= 1 && !level3Side {
			t.Fatalf("unexpected saturated link %d", l.ID)
		}
	}
}

// TestBorderRouterRolesSeparate: upstream-facing and customer-facing
// links terminate on different routers, so transit THROUGH an AS
// always crosses its core (the traceroute-visibility property Figure 1
// depends on).
func TestBorderRouterRolesSeparate(t *testing.T) {
	w := MustGenerate(SmallConfig())
	// For each transit AS and metro: collect routers terminating peer
	// links and routers terminating customer links; the sets must be
	// disjoint.
	type key struct {
		asn   topology.ASN
		metro string
	}
	up := map[key]map[topology.RouterID]bool{}
	down := map[key]map[topology.RouterID]bool{}
	record := func(m map[key]map[topology.RouterID]bool, k key, id topology.RouterID) {
		if m[k] == nil {
			m[k] = map[topology.RouterID]bool{}
		}
		m[k][id] = true
	}
	for _, l := range w.Topo.InterdomainLinks(0, 0) {
		relFromA := w.Topo.RelOf(l.ASA(), l.ASB())
		switch relFromA {
		case topology.RelCustomer: // A sells to B: A-side down, B-side up
			record(down, key{l.ASA(), l.Metro}, l.A.Router.ID)
			record(up, key{l.ASB(), l.Metro}, l.B.Router.ID)
		case topology.RelProvider:
			record(up, key{l.ASA(), l.Metro}, l.A.Router.ID)
			record(down, key{l.ASB(), l.Metro}, l.B.Router.ID)
		case topology.RelPeer:
			record(up, key{l.ASA(), l.Metro}, l.A.Router.ID)
			record(up, key{l.ASB(), l.Metro}, l.B.Router.ID)
		}
	}
	violations := 0
	for k, ups := range up {
		for id := range ups {
			if down[k][id] {
				violations++
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d routers terminate both peer/provider and customer links", violations)
	}
}

// TestRouterNamingConvention: upstream edges are named bbN.*, customer
// edges edgeN.*, cores core1.* — the DNS-based analyses depend on
// stable stems.
func TestRouterNamingConvention(t *testing.T) {
	w := MustGenerate(SmallConfig())
	for _, asn := range w.Topo.ASNs()[:40] {
		for _, r := range w.Topo.AS(asn).Routers {
			switch r.Kind {
			case topology.RouterCore:
				if !strings.HasPrefix(r.Name, "core") {
					t.Fatalf("core router named %q", r.Name)
				}
			case topology.RouterAccess:
				if !strings.HasPrefix(r.Name, "agg") {
					t.Fatalf("access router named %q", r.Name)
				}
			case topology.RouterBorder:
				if !strings.HasPrefix(r.Name, "edge") && !strings.HasPrefix(r.Name, "bb") {
					t.Fatalf("border router named %q", r.Name)
				}
			}
		}
	}
}

// TestMLabSitesStableAcrossSpeedtestFactor: §5.4's premise — the
// factor touches only the Speedtest fleet.
func TestMLabSitesStableAcrossSpeedtestFactor(t *testing.T) {
	a := MustGenerate(SmallConfig())
	cfg := SmallConfig()
	cfg.SpeedtestFactor = 2
	b := MustGenerate(cfg)
	if len(a.MLabSites) != len(b.MLabSites) {
		t.Fatal("M-Lab site count changed with speedtest factor")
	}
	for i := range a.MLabSites {
		if a.MLabSites[i].Name != b.MLabSites[i].Name {
			t.Fatal("M-Lab site identity changed with speedtest factor")
		}
	}
}

// TestClientPoolsDontOverlapInfrastructure: no client address collides
// with a router interface.
func TestClientPoolsDontOverlapInfrastructure(t *testing.T) {
	w := MustGenerate(SmallConfig())
	for isp, an := range w.Access {
		for metro := range an.PoolByMetro {
			for i := 0; i < 5; i++ {
				ep, ok := w.NewClient(isp, metro)
				if !ok {
					t.Fatalf("%s/%s pool exhausted", isp, metro)
				}
				if w.Topo.IfaceByAddr[ep.Addr] != nil {
					t.Fatalf("client address %v collides with an interface", ep.Addr)
				}
			}
		}
	}
}

// TestScenarios: named scenarios generate the promised link states.
func TestScenarios(t *testing.T) {
	if got := len(Scenario("healthy")); got != 0 {
		t.Errorf("healthy scenario has %d specs", got)
	}
	if got := Scenario("bogus"); len(got) != len(DefaultCongestion()) {
		t.Error("unknown scenario should fall back to paper default")
	}
	cfg := SmallConfig()
	cfg.Congestion = Scenario("widespread")
	w := MustGenerate(cfg)
	saturated := 0
	for _, l := range w.Topo.InterdomainLinks(0, 0) {
		if l.PeakUtil >= 1 {
			saturated++
		}
	}
	if saturated < 8 {
		t.Errorf("widespread scenario saturated only %d links", saturated)
	}

	cfg.Congestion = Scenario("regional")
	w = MustGenerate(cfg)
	metros := map[string]bool{}
	for _, l := range w.Topo.InterdomainLinks(0, 0) {
		if l.PeakUtil >= 1 {
			metros[l.Metro] = true
		}
	}
	if len(metros) != 1 || !metros["chi"] {
		t.Errorf("regional scenario saturates metros %v, want {chi}", metros)
	}
}
