package datasets

import (
	"testing"

	"throughputlab/internal/topology"
)

func TestUSMetrosWellFormed(t *testing.T) {
	ms := USMetros()
	if len(ms) < 15 {
		t.Fatalf("only %d metros", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Code == "" || m.Name == "" {
			t.Errorf("metro missing code/name: %+v", m)
		}
		if seen[m.Code] {
			t.Errorf("duplicate metro code %q", m.Code)
		}
		seen[m.Code] = true
		if m.Weight <= 0 {
			t.Errorf("metro %s has non-positive weight", m.Code)
		}
		if m.Lat < 20 || m.Lat > 50 || m.Lon > -60 || m.Lon < -130 {
			t.Errorf("metro %s has implausible US coordinates (%v, %v)", m.Code, m.Lat, m.Lon)
		}
		if m.UTCOffset < -8 || m.UTCOffset > -5 {
			t.Errorf("metro %s has non-US UTC offset %d", m.Code, m.UTCOffset)
		}
	}
}

func TestTransitsWellFormed(t *testing.T) {
	metroSet := map[string]bool{}
	for _, m := range USMetros() {
		metroSet[m.Code] = true
	}
	asns := map[topology.ASN]bool{}
	mlabHosts := 0
	for _, tr := range Transits() {
		if tr.Name == "" || tr.ASN == 0 {
			t.Errorf("transit missing name/ASN: %+v", tr)
		}
		if asns[tr.ASN] {
			t.Errorf("duplicate transit ASN %d", tr.ASN)
		}
		asns[tr.ASN] = true
		for _, m := range tr.MLabMetros {
			if !metroSet[m] {
				t.Errorf("transit %s M-Lab metro %q unknown", tr.Name, m)
			}
		}
		if len(tr.MLabMetros) > 0 {
			mlabHosts++
		}
	}
	if mlabHosts < 4 {
		t.Errorf("only %d M-Lab host networks; need several for Figure 1 diversity", mlabHosts)
	}
}

func TestAccessISPsWellFormed(t *testing.T) {
	metroSet := map[string]bool{}
	for _, m := range USMetros() {
		metroSet[m.Code] = true
	}
	transitNames := map[string]bool{}
	for _, tr := range Transits() {
		transitNames[tr.Name] = true
	}
	ispNames := map[string]bool{}
	for _, p := range AccessISPs() {
		ispNames[p.Name] = true
	}

	asns := map[topology.ASN]bool{}
	fig1 := 0
	vps := 0
	for _, p := range AccessISPs() {
		if p.Name == "" || p.BackboneASN == 0 || p.OrgName == "" {
			t.Errorf("ISP missing identity: %+v", p.Name)
		}
		for _, a := range append([]topology.ASN{p.BackboneASN}, p.SiblingASNs...) {
			if asns[a] {
				t.Errorf("ASN %d used twice", a)
			}
			asns[a] = true
		}
		if len(p.Metros) == 0 {
			t.Errorf("%s has no metros", p.Name)
		}
		for _, m := range p.Metros {
			if !metroSet[m] {
				t.Errorf("%s metro %q unknown", p.Name, m)
			}
		}
		for _, tr := range append(append([]string{}, p.TransitPeers...), p.TransitProviders...) {
			if !transitNames[tr] {
				t.Errorf("%s references unknown transit %q", p.Name, tr)
			}
		}
		for _, ap := range p.AccessPeers {
			if !ispNames[ap] {
				t.Errorf("%s references unknown access peer %q", p.Name, ap)
			}
		}
		if len(p.ArkVPMetros) != len(p.ArkVPLabels) {
			t.Errorf("%s VP metros/labels mismatched", p.Name)
		}
		for _, m := range p.ArkVPMetros {
			if !metroSet[m] {
				t.Errorf("%s VP metro %q unknown", p.Name, m)
			}
			vps++
		}
		if len(p.ArkVPMetros) > 0 && p.FigureLabel == "" {
			t.Errorf("%s has VPs but no figure label", p.Name)
		}
		if p.InFig1 {
			fig1++
		}
		var w float64
		for _, tier := range p.Tiers {
			if tier.DownMbps <= 0 || tier.Weight <= 0 {
				t.Errorf("%s has invalid tier %+v", p.Name, tier)
			}
			w += tier.Weight
		}
		if w < 0.99 || w > 1.01 {
			t.Errorf("%s tier weights sum to %v, want 1", p.Name, w)
		}
		if p.WiFiDegradedFrac < 0 || p.WiFiDegradedFrac > 1 {
			t.Errorf("%s WiFiDegradedFrac out of range", p.Name)
		}
	}
	if fig1 != 9 {
		t.Errorf("Figure 1 covers %d ISPs, want 9", fig1)
	}
	// The paper's §5.1: 16 Ark VPs in 9 access ISPs.
	if vps != 16 {
		t.Errorf("%d Ark VPs, want 16", vps)
	}
}

func TestArkVPsMatchPaperRoster(t *testing.T) {
	// §5.1: 5 in Comcast, 3 in TWC, 2 in Cox, one each in Verizon,
	// CenturyLink, Sonic, RCN, Frontier, AT&T.
	want := map[string]int{
		"Comcast": 5, "Time Warner Cable": 3, "Cox": 2,
		"Verizon": 1, "CenturyLink": 1, "Sonic": 1, "RCN": 1,
		"Frontier": 1, "AT&T": 1,
	}
	got := map[string]int{}
	for _, p := range AccessISPs() {
		if len(p.ArkVPMetros) > 0 {
			got[p.Name] = len(p.ArkVPMetros)
		}
	}
	for isp, n := range want {
		if got[isp] != n {
			t.Errorf("%s has %d VPs, want %d", isp, got[isp], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("VPs in %d ISPs, want %d", len(got), len(want))
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	if len(tbl) != 12 {
		t.Fatalf("Table 1 has %d rows, want 12", len(tbl))
	}
	if tbl[0].ISP != "Comcast" || tbl[0].Subscribers != 23329000 {
		t.Errorf("row 0 = %+v", tbl[0])
	}
	if tbl[11].ISP != "Mediacom" || tbl[11].Subscribers != 1085000 {
		t.Errorf("row 11 = %+v", tbl[11])
	}
	for i := 1; i < len(tbl); i++ {
		if tbl[i].Subscribers > tbl[i-1].Subscribers {
			t.Errorf("Table 1 not sorted at row %d", i)
		}
	}
	for _, row := range tbl {
		if row.Subscribers < 1000000 {
			t.Errorf("%s below the one-million cut", row.ISP)
		}
	}
	// Every Table 1 ISP has a profile with matching subscriber count.
	profiles := map[string]AccessProfile{}
	for _, p := range AccessISPs() {
		profiles[p.Name] = p
	}
	for _, row := range tbl {
		p, ok := profiles[row.ISP]
		if !ok {
			t.Errorf("Table 1 ISP %s has no profile", row.ISP)
			continue
		}
		if int(p.SubscribersM*1e6+0.5) != row.Subscribers {
			t.Errorf("%s profile subscribers %.4fM != table %d", row.ISP, p.SubscribersM, row.Subscribers)
		}
	}
}

func TestFig1PeeringDiversity(t *testing.T) {
	// The Figure 1 mechanism requires the top-5 ISPs to be adjacent to
	// most M-Lab host networks, and Charter/Cox/Frontier/Windstream to
	// miss most of them.
	hosts := map[string]bool{}
	for _, tr := range Transits() {
		if len(tr.MLabMetros) > 0 {
			hosts[tr.Name] = true
		}
	}
	adjacency := func(p AccessProfile) int {
		n := 0
		for _, tr := range append(append([]string{}, p.TransitPeers...), p.TransitProviders...) {
			if hosts[tr] {
				n++
			}
		}
		return n
	}
	byName := map[string]AccessProfile{}
	for _, p := range AccessISPs() {
		byName[p.Name] = p
	}
	for _, big := range []string{"Comcast", "AT&T", "Verizon", "CenturyLink"} {
		if adjacency(byName[big]) < 4 {
			t.Errorf("%s adjacent to only %d M-Lab hosts", big, adjacency(byName[big]))
		}
	}
	for _, small := range []string{"Charter", "Cox", "Windstream"} {
		if adjacency(byName[small]) > 2 {
			t.Errorf("%s adjacent to %d M-Lab hosts, want ≤2", small, adjacency(byName[small]))
		}
	}
}

func TestContentNetworks(t *testing.T) {
	metroSet := map[string]bool{}
	for _, m := range USMetros() {
		metroSet[m.Code] = true
	}
	asns := map[topology.ASN]bool{}
	names := map[string]bool{}
	for _, c := range ContentNetworks() {
		if c.Name == "" || c.ASN == 0 || len(c.Metros) == 0 {
			t.Errorf("bad content profile %+v", c)
		}
		if asns[c.ASN] || names[c.Name] {
			t.Errorf("duplicate content identity %s/%d", c.Name, c.ASN)
		}
		asns[c.ASN], names[c.Name] = true, true
		for _, m := range c.Metros {
			if !metroSet[m] {
				t.Errorf("content %s metro %q unknown", c.Name, m)
			}
		}
		if c.DomainShare <= 0 {
			t.Errorf("content %s has no domain share", c.Name)
		}
	}
	if len(ContentNetworks()) < 20 {
		t.Errorf("want ≥20 content networks, got %d", len(ContentNetworks()))
	}
}

func TestPopularDomainList(t *testing.T) {
	domains := PopularDomainList()
	if len(domains) < 100 {
		t.Fatalf("only %d domains", len(domains))
	}
	orgs := map[string]bool{}
	for _, c := range ContentNetworks() {
		orgs[c.Name] = true
	}
	names := map[string]bool{}
	hosted := 0
	for _, d := range domains {
		if names[d.Name] {
			t.Errorf("duplicate domain %q", d.Name)
		}
		names[d.Name] = true
		if d.ContentOrg == "" {
			hosted++
		} else if !orgs[d.ContentOrg] {
			t.Errorf("domain %s references unknown org %q", d.Name, d.ContentOrg)
		}
	}
	frac := float64(hosted) / float64(len(domains))
	if frac < 0.1 || frac > 0.4 {
		t.Errorf("hosted-domain fraction %.2f outside [0.1, 0.4]", frac)
	}
}

func TestIXPSites(t *testing.T) {
	metroSet := map[string]bool{}
	for _, m := range USMetros() {
		metroSet[m.Code] = true
	}
	for _, x := range IXPSites() {
		if !metroSet[x.Metro] {
			t.Errorf("IXP %s in unknown metro %q", x.Name, x.Metro)
		}
	}
	if len(IXPSites()) < 3 {
		t.Error("want ≥3 IXPs")
	}
}

func TestScaleConfigs(t *testing.T) {
	for _, sc := range []ScaleConfig{DefaultScale(), SmallScale()} {
		if sc.StubASes <= 0 || sc.RegionalISPs <= 0 || sc.ServersPerMLabSite <= 0 ||
			sc.ClientsPerISPMetro <= 0 || sc.SpeedtestStubServers < 0 {
			t.Errorf("invalid scale %+v", sc)
		}
		if sc.HostingFrac <= 0 || sc.HostingFrac >= 1 {
			t.Errorf("HostingFrac %v out of (0,1)", sc.HostingFrac)
		}
	}
	if DefaultScale().StubASes <= SmallScale().StubASes {
		t.Error("default scale should exceed small scale")
	}
}
