package topogen

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"throughputlab/internal/obs"
	"throughputlab/internal/routing"
	"throughputlab/internal/topology"
)

// smallWorldHash pins the full SmallConfig world digest — topology,
// DNS names, BGP routes, and resolver output. Generate must produce
// this exact world at EVERY worker count; a change here means the
// generated universe changed and every downstream golden result moves.
const smallWorldHash uint64 = 0xe77a2ccee97d56e0

// worldHasher accumulates a 64-bit FNV-1a digest of world fields.
type worldHasher struct {
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
}

func newWorldHasher() *worldHasher { return &worldHasher{h: fnv.New64a()} }

func (w *worldHasher) str(s string) {
	w.h.Write([]byte(s))
	w.h.Write([]byte{0})
}

func (w *worldHasher) i64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	w.h.Write(b[:])
}

func (w *worldHasher) f64(v float64) { w.i64(int64(math.Float64bits(v))) }

// worldHash digests everything generation produces that downstream
// code can observe: the topology graph (routers, links, addresses,
// utilization), DNS names, the BGP route tables, and a sample of
// resolved forwarding paths.
func worldHash(w *World) uint64 {
	h := newWorldHasher()

	// Topology: ASes in insertion order, then routers and links in ID
	// order (both are ground-truth-stable).
	for _, asn := range w.Topo.ASNs() {
		as := w.Topo.AS(asn)
		h.i64(int64(asn))
		h.str(as.Name)
		if as.Org != nil {
			h.str(as.Org.Name)
		}
		h.i64(int64(as.Type))
		for _, m := range as.Metros {
			h.str(m)
		}
		for _, p := range as.Originated {
			h.str(p.String())
		}
	}
	for _, r := range w.Topo.Routers() {
		h.i64(int64(r.ID))
		h.i64(int64(r.AS))
		h.str(r.Metro)
		h.i64(int64(r.Kind))
		h.str(r.Name)
	}
	for _, l := range w.Topo.Links() {
		h.i64(int64(l.ID))
		h.i64(int64(l.Kind))
		h.str(l.Metro)
		h.f64(l.CapacityMbps)
		h.f64(l.BaseUtil)
		h.f64(l.PeakUtil)
		for _, ifc := range []*topology.Interface{l.A, l.B} {
			if ifc == nil {
				continue
			}
			h.str(ifc.Addr.String())
			h.i64(int64(ifc.AddrOwner))
			h.str(ifc.DNSName)
		}
		if l.IXP != nil {
			h.str(l.IXP.Name)
		}
	}

	// Routes: next hop and class for every ordered AS pair.
	asns := w.Topo.ASNs()
	for _, src := range asns {
		for _, dst := range asns {
			nh, ok := w.Routes.NextHop(src, dst)
			if !ok {
				h.i64(-1)
				continue
			}
			h.i64(int64(nh))
			h.i64(int64(w.Routes.Class(src, dst)))
			h.i64(int64(w.Routes.PathLen(src, dst)))
		}
	}

	// Resolver output: forwarding paths for a deterministic sample of
	// server→client flows (hop routers, ingress addresses, AS path).
	servers := w.MLabServers()
	for vi, vp := range w.ArkVPs {
		if vi >= 4 || len(servers) == 0 {
			break
		}
		s := servers[vi%len(servers)]
		key := routing.FlowKey(s.Endpoint.Addr, vp.Host.Endpoint.Addr, uint32(vi))
		p, err := w.Resolver.Resolve(s.Endpoint, vp.Host.Endpoint, key)
		if err != nil {
			h.str("resolve-error:" + err.Error())
			continue
		}
		for _, hop := range p.Hops {
			h.i64(int64(hop.Router.ID))
			if hop.Ingress != nil {
				h.str(hop.Ingress.Addr.String())
			}
		}
		for _, a := range p.ASPath {
			h.i64(int64(a))
		}
	}
	return h.h.Sum64()
}

// TestGenerateWorkerCountInvariance is the tentpole's determinism
// contract: the same Config must yield a byte-identical world whether
// generation runs serial or sharded over any worker pool.
func TestGenerateWorkerCountInvariance(t *testing.T) {
	hashes := map[int]uint64{}
	for _, workers := range []int{1, 2, 8} {
		cfg := SmallConfig()
		cfg.Workers = workers
		w := MustGenerate(cfg)
		hashes[workers] = worldHash(w)
	}
	for _, workers := range []int{2, 8} {
		if hashes[workers] != hashes[1] {
			t.Errorf("workers=%d world hash %#x != serial %#x", workers, hashes[workers], hashes[1])
		}
	}
	if hashes[1] != smallWorldHash {
		t.Errorf("small world hash = %#x, want pinned %#x (the generated universe changed)", hashes[1], smallWorldHash)
	}
}

// TestGenerateParallelRace generates with a full worker fan-out and an
// attached obs registry (live per-worker child spans); it exists to
// run under -race in CI.
func TestGenerateParallelRace(t *testing.T) {
	cfg := SmallConfig()
	cfg.Workers = 8
	cfg.Obs = obs.NewRegistry()
	w := MustGenerate(cfg)
	if w.Topo.NumRouters() == 0 {
		t.Fatal("empty world")
	}
}
