package datasets

import "throughputlab/internal/topology"

// ContentProfile describes a content/CDN network serving popular web
// content (the destinations behind the Alexa-style target list, §5.1).
type ContentProfile struct {
	Name string
	ASN  topology.ASN
	// Metros with CDN replicas; DNS resolves domains to the replica
	// nearest the resolver.
	Metros []string
	// DomainShare is the relative share of popular domains served by
	// this network.
	DomainShare float64
	// SpeedtestServers hosted in this network (some CDNs host them).
	SpeedtestServers int
}

// ContentNetworks returns the content/CDN roster. Names of the largest
// real networks are kept recognizable; the tail is synthetic.
func ContentNetworks() []ContentProfile {
	wide := []string{"nyc", "lax", "chi", "dfw", "wdc", "atl", "sea", "mia", "sjc", "den"}
	mid := []string{"nyc", "lax", "chi", "dfw", "atl"}
	narrow := []string{"nyc", "sjc"}
	out := []ContentProfile{
		{Name: "SearchCo", ASN: 15169, Metros: wide, DomainShare: 16, SpeedtestServers: 2},
		{Name: "VideoFlix", ASN: 2906, Metros: wide, DomainShare: 6},
		{Name: "AkamCDN", ASN: 20940, Metros: wide, DomainShare: 14, SpeedtestServers: 1},
		{Name: "FaceNet", ASN: 32934, Metros: wide, DomainShare: 7},
		{Name: "RainforestCloud", ASN: 16509, Metros: wide, DomainShare: 12, SpeedtestServers: 2},
		{Name: "CloudShield", ASN: 13335, Metros: wide, DomainShare: 9, SpeedtestServers: 1},
		{Name: "FastEdge", ASN: 54113, Metros: mid, DomainShare: 5},
		{Name: "ChirpSocial", ASN: 13414, Metros: mid, DomainShare: 3},
		{Name: "FruitCo", ASN: 714, Metros: wide, DomainShare: 4},
		{Name: "RedmondCloud", ASN: 8075, Metros: wide, DomainShare: 6},
		{Name: "PortalCo", ASN: 10310, Metros: mid, DomainShare: 3},
		{Name: "LimeCDN", ASN: 22822, Metros: mid, DomainShare: 2},
		{Name: "EdgePost", ASN: 15133, Metros: mid, DomainShare: 2},
	}
	// Synthetic tail of smaller content networks.
	tailNames := []string{
		"NewsWire", "StreamBox", "AdGrid", "PhotoPile", "GameHub",
		"MapsNow", "ShopRail", "WikiVale", "TubeLine", "PinDeck", "BlogForge",
	}
	asn := topology.ASN(39000)
	for i, n := range tailNames {
		metros := narrow
		if i%3 == 0 {
			metros = mid
		}
		out = append(out, ContentProfile{
			Name: n, ASN: asn, Metros: metros, DomainShare: 1,
		})
		asn++
	}
	return out
}

// PopularDomains returns the synthetic stand-in for the Alexa US
// top-500 (§5.1): domain names with the network that serves each. A
// fraction of domains is served from hosting companies (stub networks)
// rather than content networks; the generator assigns those to concrete
// hosting ASes, which is how paths to popular content come to traverse
// access-ISP *customer* interconnections (Figure 4 discussion).
type PopularDomain struct {
	Name string
	// ContentOrg is the serving ContentProfile name, or "" when the
	// domain is hosted at a generic hosting company.
	ContentOrg string
}

// PopularDomainList builds a ~120-domain list: each content network
// gets domains in proportion to DomainShare, and hostedFrac of the
// total is assigned to hosting companies (ContentOrg == "").
func PopularDomainList() []PopularDomain {
	const total = 120
	const hostedFrac = 0.25
	nets := ContentNetworks()
	var shareSum float64
	for _, c := range nets {
		shareSum += c.DomainShare
	}
	var out []PopularDomain
	cdnTotal := int(float64(total) * (1 - hostedFrac))
	for _, c := range nets {
		n := int(float64(cdnTotal)*c.DomainShare/shareSum + 0.5)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, PopularDomain{
				Name:       domainName(c.Name, i),
				ContentOrg: c.Name,
			})
		}
	}
	for i := 0; len(out) < total; i++ {
		out = append(out, PopularDomain{Name: domainName("hosted", i)})
	}
	return out
}

func domainName(stem string, i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	name := "www" + string(letters[i%len(letters)])
	if i >= len(letters) {
		name += string(letters[(i/len(letters))%len(letters)])
	}
	return name + "." + stem + ".example"
}

// IXPSite names an exchange point and its metro; the generator carves a
// peering-LAN prefix for each.
type IXPSite struct {
	Name  string
	Metro string
}

// IXPSites returns the synthetic exchange points.
func IXPSites() []IXPSite {
	return []IXPSite{
		{Name: "NYIX", Metro: "nyc"},
		{Name: "ChiIX", Metro: "chi"},
		{Name: "BayIX", Metro: "sjc"},
		{Name: "TexIX", Metro: "dfw"},
		{Name: "SoFloIX", Metro: "mia"},
	}
}

// ScaleConfig collects the generator's population knobs. DefaultScale
// yields ~2,000 ASes: every paper mechanism appears while the full
// pipeline stays fast (DESIGN.md §2 discusses the scaling).
type ScaleConfig struct {
	// StubASes is the number of stub edge networks (enterprises,
	// hosting companies, small ISPs buying transit).
	StubASes int
	// HostingFrac is the fraction of stubs that are hosting companies
	// (candidates to host Speedtest servers and hosted popular domains).
	HostingFrac float64
	// RegionalISPs is the number of mid-tier regional networks (peer at
	// IXPs, buy transit, host Speedtest servers).
	RegionalISPs int
	// SpeedtestStubServers is the number of Speedtest servers placed in
	// hosting/regional networks, beyond those pinned in profiles.
	SpeedtestStubServers int
	// ServersPerMLabSite is how many NDT servers each M-Lab site runs.
	ServersPerMLabSite int
	// ClientsPerISPMetro is the number of distinct simulated households
	// per (access ISP, metro) that may run NDT tests.
	ClientsPerISPMetro int
	// CustomerScale multiplies each access ISP's CustomerTarget
	// (0 means 1.0), so larger worlds grow border sets proportionally.
	CustomerScale float64
}

// DefaultScale returns the standard scale used by experiments.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		StubASes:             1400,
		HostingFrac:          0.18,
		RegionalISPs:         50,
		SpeedtestStubServers: 260,
		ServersPerMLabSite:   3,
		ClientsPerISPMetro:   40,
	}
}

// MediumScale returns the ~3k-AS configuration for users who want the
// full DESIGN.md scale (slower generation and campaigns).
func MediumScale() ScaleConfig {
	return ScaleConfig{
		StubASes:             2800,
		HostingFrac:          0.18,
		RegionalISPs:         90,
		SpeedtestStubServers: 420,
		ServersPerMLabSite:   4,
		ClientsPerISPMetro:   60,
		CustomerScale:        2,
	}
}

// LargeScale returns the ~50k-AS configuration for internet-scale
// campaigns. Worlds this big require lazy route computation (the
// generator switches automatically) and are meant to be collected with
// the streaming corpus path: a full n×n route table would need tens of
// GB, and a materialized million-test corpus several more.
//
// RegionalISPs must stay below 3000: regional ASNs are assigned from
// 36000 upward and must not collide with the content tail at 39000.
func LargeScale() ScaleConfig {
	return ScaleConfig{
		StubASes:             49000,
		HostingFrac:          0.18,
		RegionalISPs:         700,
		SpeedtestStubServers: 1200,
		ServersPerMLabSite:   4,
		ClientsPerISPMetro:   60,
		CustomerScale:        4,
	}
}

// XLargeScale returns the ~75k-AS configuration used for the ≥1M-test
// streamed campaigns (the M-Lab-scale regime of §4.1). Everything said
// about LargeScale applies, more so.
func XLargeScale() ScaleConfig {
	return ScaleConfig{
		StubASes:             74000,
		HostingFrac:          0.18,
		RegionalISPs:         900,
		SpeedtestStubServers: 1600,
		ServersPerMLabSite:   6,
		ClientsPerISPMetro:   80,
		CustomerScale:        6,
	}
}

// SmallScale returns a reduced scale for unit tests and examples.
func SmallScale() ScaleConfig {
	return ScaleConfig{
		StubASes:             120,
		HostingFrac:          0.2,
		RegionalISPs:         10,
		SpeedtestStubServers: 30,
		ServersPerMLabSite:   1,
		ClientsPerISPMetro:   6,
	}
}
