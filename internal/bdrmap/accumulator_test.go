package bdrmap

import (
	"testing"

	"throughputlab/internal/mapit"
)

func resultEqual(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.ASCount != want.ASCount || got.RouterCount != want.RouterCount {
		t.Fatalf("%s: counts AS=%d router=%d, want AS=%d router=%d",
			label, got.ASCount, got.RouterCount, want.ASCount, want.RouterCount)
	}
	if len(got.Borders) != len(want.Borders) {
		t.Fatalf("%s: %d borders, want %d", label, len(got.Borders), len(want.Borders))
	}
	for i := range want.Borders {
		if got.Borders[i] != want.Borders[i] {
			t.Fatalf("%s: border %d = %+v, want %+v", label, i, got.Borders[i], want.Borders[i])
		}
	}
	for rel, e := range want.ByRel {
		if got.ByRel[rel] != e {
			t.Fatalf("%s: ByRel[%v] = %+v, want %+v", label, rel, got.ByRel[rel], e)
		}
	}
}

// TestBorderAccumulatorChunkedMatchesBorders pins the incremental
// contract: folding the campaign through Add in chunks of any size
// yields the identical border map to one batch Borders call.
func TestBorderAccumulatorChunkedMatchesBorders(t *testing.T) {
	traces, isp := campaignFor(t, "bed-us")
	az := NewAnalyzer(traces, optsFor(isp))
	want := az.Borders(traces)
	for _, chunk := range []int{1, 13, 500, 100000} {
		acc := az.NewBorderAccumulator()
		for lo := 0; lo < len(traces); lo += chunk {
			hi := lo + chunk
			if hi > len(traces) {
				hi = len(traces)
			}
			acc.Add(traces[lo:hi])
		}
		resultEqual(t, "chunked", want, acc.Result())
	}
}

// TestNewAnalyzerFromInference pins that wrapping a pre-built inference
// — the streamed path, where mapit.Builder already folded the corpus —
// reproduces the from-scratch analyzer's border map without re-running
// MAP-IT.
func TestNewAnalyzerFromInference(t *testing.T) {
	traces, isp := campaignFor(t, "bed-us")
	opts := optsFor(isp)
	want := Run(traces, opts)

	b := mapit.NewBuilder(opts.MapIt)
	for lo := 0; lo < len(traces); lo += 700 {
		hi := lo + 700
		if hi > len(traces) {
			hi = len(traces)
		}
		b.Add(traces[lo:hi])
	}
	az := NewAnalyzerFromInference(b.Finish(), opts)
	resultEqual(t, "from-inference", want, az.Borders(traces))
}
