package export

import (
	"bytes"
	"testing"

	"throughputlab/internal/mapit"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/traceroute"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func smallCorpus(t testing.TB) *platform.Corpus {
	t.Helper()
	cfg := platform.DefaultCollect()
	cfg.Tests = 400
	cfg.PerPoolClients = 4
	c, err := platform.Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	corpus := smallCorpus(t)
	d := FromWorld(world, corpus)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tests) != len(d.Tests) || len(back.Traces) != len(d.Traces) {
		t.Fatalf("corpus sizes changed: %d/%d vs %d/%d",
			len(back.Tests), len(back.Traces), len(d.Tests), len(d.Traces))
	}
	if len(back.Public.Prefixes) != len(d.Public.Prefixes) {
		t.Error("prefix table size changed")
	}
	if back.Tests[0].ClientAddr != d.Tests[0].ClientAddr {
		t.Error("test addresses corrupted")
	}
	if back.Traces[0].Hops[0].Addr != d.Traces[0].Hops[0].Addr {
		t.Error("trace hops corrupted")
	}
}

func TestLookupsMatchWorld(t *testing.T) {
	d := FromWorld(world, nil)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, _ := Read(&buf)
	l := back.Lookups()

	// Origin lookups agree with the world.
	cli, _ := world.NewClient("Comcast", "nyc")
	wantASN, _ := world.Topo.OriginOf(cli.Addr)
	gotASN, ok := l.OriginOf(cli.Addr)
	if !ok || gotASN != wantASN {
		t.Errorf("origin %d (ok=%v), want %d", gotASN, ok, wantASN)
	}
	// Sibling collapse agrees.
	com := world.Access["Comcast"].Org.ASNs
	if len(com) > 1 && !l.SameOrg(com[0], com[1]) {
		t.Error("sibling ASNs not same-org after round trip")
	}
	if l.SameOrg(com[0], 3356) {
		t.Error("Comcast and Level3 are not siblings")
	}
	// Relationships agree.
	if l.Rel(3356, com[0]) != world.Topo.RelOf(3356, com[0]) {
		t.Error("relationship mismatch after round trip")
	}
	// IXP prefixes survive.
	if len(world.Topo.IXPPrefixes) > 0 && !l.IsIXP(world.Topo.IXPPrefixes[0].Nth(1)) {
		t.Error("IXP prefix lost")
	}
}

func TestMapItOverExportedData(t *testing.T) {
	// The exported public data must be sufficient to run MAP-IT with
	// the same quality as the in-process lookups.
	corpus := smallCorpus(t)
	d := FromWorld(world, corpus)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, _ := Read(&buf)
	inf := mapit.Run(back.Traces, back.Lookups().MapItOpts())
	if len(inf.Links) == 0 {
		t.Fatal("no links inferred from exported dataset")
	}
	// Spot-check operator accuracy against ground truth.
	total, correct := 0, 0
	for a, got := range inf.Operator {
		ifc := world.Topo.IfaceByAddr[a]
		if ifc == nil {
			continue
		}
		total++
		if got == ifc.Router.AS || world.Topo.SameOrg(got, ifc.Router.AS) {
			correct++
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.85 {
		t.Errorf("accuracy %d/%d too low over exported data", correct, total)
	}
}

func TestWithTraces(t *testing.T) {
	d := FromWorld(world, nil)
	vp := world.ArkVPs[0]
	traces := platform.Campaign(world, vp.Host.Endpoint,
		platform.HostTargets(world.MLabServers()), traceroute.Clean(), 1)
	d2 := d.WithTraces(traces)
	if len(d2.Traces) != len(traces) || d2.Tests != nil {
		t.Error("WithTraces wrong")
	}
	if len(d.Traces) != 0 {
		t.Error("original mutated")
	}
}
