package topology

import (
	"fmt"
)

// Validate checks structural invariants of the topology and returns all
// violations found. The topology generator's tests require an empty
// result; it is also a useful debugging aid for hand-built topologies.
//
// Invariants checked:
//   - every relationship references known ASes and is symmetric
//     (RelOf(a,b) == RelOf(b,a).Invert());
//   - sibling relationships connect ASes of the same organization;
//   - every router belongs to a known AS and a known metro;
//   - interdomain links connect border routers of different ASes, and
//     both interface addresses are owned by one of the two ASes or an
//     IXP;
//   - intra-AS links connect routers of the same AS;
//   - every non-zero interface address is unique and resolvable via
//     IfaceByAddr;
//   - every client pool prefix is originated by its AS;
//   - the link's metro matches both routers' metros for interdomain
//     links (interdomain interconnection is physically local, §4.3).
func (t *Topology) Validate() []error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	for k, r := range t.rel {
		a, b := k[0], k[1]
		if t.ases[a] == nil || t.ases[b] == nil {
			add("relationship %v-%v references unknown AS", a, b)
			continue
		}
		if inv := t.rel[[2]ASN{b, a}]; inv != r.Invert() {
			add("asymmetric relationship %v-%v: %v vs %v", a, b, r, inv)
		}
		if r == RelSibling && !t.SameOrg(a, b) {
			add("sibling relationship %v-%v across organizations", a, b)
		}
	}

	for id, r := range t.routers {
		if r.ID != id {
			add("router map key %d != ID %d", id, r.ID)
		}
		if t.ases[r.AS] == nil {
			add("router %d in unknown AS %d", r.ID, r.AS)
		}
		if _, ok := t.metroByID[r.Metro]; !ok {
			add("router %d in unknown metro %q", r.ID, r.Metro)
		}
	}

	for _, l := range t.links {
		switch l.Kind {
		case LinkInterdomain:
			if l.B == nil {
				add("interdomain link %d missing B end", l.ID)
				continue
			}
			if l.ASA() == l.ASB() {
				add("interdomain link %d connects %d to itself", l.ID, l.ASA())
			}
			if l.A.Router.Kind != RouterBorder || l.B.Router.Kind != RouterBorder {
				add("interdomain link %d has non-border endpoint", l.ID)
			}
			if l.A.Router.Metro != l.Metro || l.B.Router.Metro != l.Metro {
				add("interdomain link %d metro %q does not match routers (%q, %q)",
					l.ID, l.Metro, l.A.Router.Metro, l.B.Router.Metro)
			}
			for _, ifc := range []*Interface{l.A, l.B} {
				ok := ifc.AddrOwner == l.ASA() || ifc.AddrOwner == l.ASB()
				if l.IXP != nil && l.IXP.Prefix.Contains(ifc.Addr) {
					ok = true
				}
				if !ok {
					add("interdomain link %d interface %v numbered from uninvolved AS %d",
						l.ID, ifc.Addr, ifc.AddrOwner)
				}
			}
		case LinkIntra:
			if l.B == nil {
				add("intra link %d missing B end", l.ID)
				continue
			}
			if l.ASA() != l.ASB() {
				add("intra link %d spans ASes %d and %d", l.ID, l.ASA(), l.ASB())
			}
		case LinkAccessLine:
			if l.B != nil {
				add("access line %d should have nil B end", l.ID)
			}
			if l.A.Router.Kind != RouterAccess {
				add("access line %d not on an access router", l.ID)
			}
		}
		if l.CapacityMbps <= 0 {
			add("link %d has non-positive capacity", l.ID)
		}
		if l.BaseUtil < 0 || l.PeakUtil < l.BaseUtil {
			add("link %d has inconsistent utilization (base %v, peak %v)",
				l.ID, l.BaseUtil, l.PeakUtil)
		}
	}

	for addr, ifc := range t.IfaceByAddr {
		if ifc.Addr != addr {
			add("IfaceByAddr[%v] has address %v", addr, ifc.Addr)
		}
	}

	for _, asn := range t.order {
		a := t.ases[asn]
		for metro, pool := range a.ClientPools {
			if _, ok := t.metroByID[metro]; !ok {
				add("AS %d client pool in unknown metro %q", asn, metro)
			}
			origin, _, ok := t.Origin.Lookup(pool.Addr())
			if !ok {
				add("AS %d client pool %v not originated", asn, pool)
			} else if origin != asn && !t.SameOrg(origin, asn) {
				add("AS %d client pool %v originated by unrelated AS %d", asn, pool, origin)
			}
		}
	}

	return errs
}
