package core

import (
	"sort"

	"throughputlab/internal/ndt"
	"throughputlab/internal/traceroute"
)

// DefaultTraceLead is the platform's scheduling contract: a traceroute
// may launch at most this many minutes before the scheduled minute of
// the test it accompanies (the platform's launch lag is in [-2, +10]
// minutes). StreamMatcher uses it to decide when a buffered test can no
// longer gain a better match from traces that have not arrived yet.
const DefaultTraceLead = 2

type pairKey struct{ src, dst uint32 }

type pendingTest struct {
	t   *ndt.Test
	seq int
}

// StreamMatcher reproduces MatchTraces incrementally over a chunked
// corpus in bounded memory. Chunks must arrive in publication (test-ID)
// order, each with a watermark W guaranteeing that every future test
// starts at minute >= W and every future traceroute launches at minute
// >= W - DefaultTraceLead — exactly what platform.Chunk.Watermark
// provides. Tests are buffered until no future trace can fall inside
// their association window, then finalized in (StartMinute, arrival)
// order — the same total order the batch matcher's stable sort
// produces — so Finish returns a Matching identical to running
// MatchTraces over the concatenated corpus. Traces drop out of the
// buffer once they are behind every live window, which bounds resident
// state to a few minutes of campaign activity regardless of corpus
// size.
type StreamMatcher struct {
	// OnPair, when set before the first Add, is invoked once per test in
	// finalization order with its associated trace (nil when unmatched),
	// and ByTest is left empty so the caller controls retention. Leave
	// nil to accumulate the full ByTest map as MatchTraces does.
	OnPair func(*ndt.Test, *traceroute.Trace)

	windowMin int
	mode      MatchMode
	lead      int

	seq     int
	pending []pendingTest
	byPair  map[pairKey][]*traceroute.Trace
	used    map[*traceroute.Trace]bool
	result  *Matching
}

// NewStreamMatcher returns a matcher equivalent to
// MatchTraces(…, windowMin, mode) applied to the full corpus.
func NewStreamMatcher(windowMin int, mode MatchMode) *StreamMatcher {
	return &StreamMatcher{
		windowMin: windowMin,
		mode:      mode,
		lead:      DefaultTraceLead,
		byPair:    map[pairKey][]*traceroute.Trace{},
		used:      map[*traceroute.Trace]bool{},
		result:    &Matching{ByTest: map[int]*traceroute.Trace{}},
	}
}

// Add feeds one chunk. watermark is the scheduled minute of the last
// test in the chunk (platform.Chunk.Watermark); it must not decrease
// across calls.
func (sm *StreamMatcher) Add(tests []*ndt.Test, traces []*traceroute.Trace, watermark int) {
	for _, t := range tests {
		sm.pending = append(sm.pending, pendingTest{t, sm.seq})
		sm.seq++
	}
	var touched map[pairKey]bool
	for _, tr := range traces {
		k := pairKey{uint32(tr.SrcAddr), uint32(tr.DstAddr)}
		sm.byPair[k] = append(sm.byPair[k], tr)
		if touched == nil {
			touched = map[pairKey]bool{}
		}
		touched[k] = true
	}
	// Re-sort only the pair lists this chunk touched. New arrivals all
	// carry later publication order than what is already buffered, so a
	// stable sort by launch minute keeps the batch matcher's tie-break
	// (publication order within a minute).
	for k := range touched {
		list := sm.byPair[k]
		sort.SliceStable(list, func(i, j int) bool {
			return list[i].LaunchMinute < list[j].LaunchMinute
		})
	}
	// Same argument for tests: buffered tests all precede this chunk's in
	// publication order, so a stable sort by start minute orders the
	// whole buffer by (StartMinute, arrival).
	sort.SliceStable(sm.pending, func(i, j int) bool {
		return sm.pending[i].t.StartMinute < sm.pending[j].t.StartMinute
	})
	// A buffered test is final once even the earliest future trace
	// (launching at watermark - lead) would fall past its window.
	cut := watermark - sm.lead - sm.windowMin
	n := 0
	for n < len(sm.pending) && sm.pending[n].t.StartMinute < cut {
		sm.finalize(sm.pending[n].t)
		n++
	}
	if n > 0 {
		rest := copy(sm.pending, sm.pending[n:])
		for i := rest; i < len(sm.pending); i++ {
			sm.pending[i] = pendingTest{}
		}
		sm.pending = sm.pending[:rest]
	}
	sm.evict(watermark)
}

// finalize runs the batch matcher's per-test step: claim the first
// unused trace launched inside the window.
func (sm *StreamMatcher) finalize(t *ndt.Test) {
	sm.result.Total++
	k := pairKey{uint32(t.ServerAddr), uint32(t.ClientAddr)}
	lo := t.StartMinute
	if sm.mode == WindowAround {
		lo = t.StartMinute - sm.windowMin
	}
	hi := t.StartMinute + sm.windowMin
	list := sm.byPair[k]
	var match *traceroute.Trace
	for i := sort.Search(len(list), func(i int) bool {
		return list[i].LaunchMinute >= lo
	}); i < len(list); i++ {
		tr := list[i]
		if sm.used[tr] {
			continue
		}
		if tr.LaunchMinute > hi {
			break
		}
		sm.used[tr] = true
		match = tr
		break
	}
	if match != nil {
		if PairDegraded(t, match) {
			sm.result.Degraded++
		}
		if sm.OnPair == nil {
			sm.result.ByTest[t.ID] = match
		}
	}
	if sm.OnPair != nil {
		sm.OnPair(t, match)
	}
}

// evict drops traces that no buffered or future test can claim: their
// launch minute sits before the lower window bound of every window
// still alive.
func (sm *StreamMatcher) evict(watermark int) {
	minStart := watermark
	if len(sm.pending) > 0 && sm.pending[0].t.StartMinute < minStart {
		minStart = sm.pending[0].t.StartMinute
	}
	evictBefore := minStart
	if sm.mode == WindowAround {
		evictBefore -= sm.windowMin
	}
	for k, list := range sm.byPair {
		n := 0
		for n < len(list) && list[n].LaunchMinute < evictBefore {
			delete(sm.used, list[n])
			n++
		}
		if n == 0 {
			continue
		}
		if n == len(list) {
			delete(sm.byPair, k)
			continue
		}
		rest := copy(list, list[n:])
		for i := rest; i < len(list); i++ {
			list[i] = nil
		}
		sm.byPair[k] = list[:rest]
	}
}

// InFlight reports the buffered state — the streaming memory envelope —
// as (pending tests, buffered traces).
func (sm *StreamMatcher) InFlight() (tests, traces int) {
	for _, list := range sm.byPair {
		traces += len(list)
	}
	return len(sm.pending), traces
}

// Finish drains the buffer and returns the completed Matching. The
// matcher must not be used afterwards.
func (sm *StreamMatcher) Finish() *Matching {
	for i := range sm.pending {
		sm.finalize(sm.pending[i].t)
	}
	sm.pending = nil
	sm.byPair = nil
	sm.used = nil
	m := sm.result
	sm.result = nil
	return m
}
