package core

// LabeledGroup pairs a diurnal series with its ground-truth congestion
// label (available only in simulation — which is exactly why §6.2 calls
// threshold selection an open problem on the real Internet).
type LabeledGroup struct {
	Name   string
	Series *Series
	// TrulyCongested: the dominant path for this group crosses a link
	// whose offered load exceeds capacity at peak.
	TrulyCongested bool
}

// ThresholdPoint is one row of the §6.2 sensitivity analysis.
type ThresholdPoint struct {
	Threshold         float64
	TruePos, FalsePos int
	TrueNeg, FalseNeg int
	Undecided         int
}

// Precision returns TP/(TP+FP), or 0 when nothing was flagged.
func (p ThresholdPoint) Precision() float64 {
	if p.TruePos+p.FalsePos == 0 {
		return 0
	}
	return float64(p.TruePos) / float64(p.TruePos+p.FalsePos)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (p ThresholdPoint) Recall() float64 {
	if p.TruePos+p.FalseNeg == 0 {
		return 0
	}
	return float64(p.TruePos) / float64(p.TruePos+p.FalseNeg)
}

// ThresholdSweep evaluates the detector across drop thresholds,
// scoring each group's verdict against its ground-truth label. Groups
// with insufficient data count as Undecided at every threshold.
func ThresholdSweep(groups []LabeledGroup, thresholds []float64, cfg DetectorConfig) []ThresholdPoint {
	if len(cfg.PeakHours) == 0 {
		cfg = DefaultDetector()
	}
	out := make([]ThresholdPoint, 0, len(thresholds))
	for _, th := range thresholds {
		c := cfg
		c.DropThreshold = th
		pt := ThresholdPoint{Threshold: th}
		for _, g := range groups {
			v := Detect(g.Series, c)
			switch {
			case v.InsufficientData:
				pt.Undecided++
			case v.Congested && g.TrulyCongested:
				pt.TruePos++
			case v.Congested && !g.TrulyCongested:
				pt.FalsePos++
			case !v.Congested && g.TrulyCongested:
				pt.FalseNeg++
			default:
				pt.TrueNeg++
			}
		}
		out = append(out, pt)
	}
	return out
}
