// Package routing resolves router-level forwarding paths over the
// topology, using the AS-level decisions from package bgp.
//
// Within an AS the path follows the ingress router → metro core →
// egress-metro core → egress border router structure the generator
// builds. Between ASes, when several interdomain links realize one AS
// adjacency (the common case for large networks, §4.3), the egress link
// is chosen to minimize propagation delay through the link toward the
// destination ("latency-greedy", a hot/cold-potato compromise), with
// near-ties and parallel links broken by a per-flow hash — the
// load-balancing behaviour Paris traceroute is designed to hold fixed
// within one trace (§3).
//
// Resolution is memoized (see cache.go): intra-AS segments, scored
// interdomain near-tie sets, and AS-level paths are each computed once
// per key and shared afterwards, so repeated resolution over one world
// is near-free. The caches never change results — only their cost.
package routing

import (
	"fmt"
	"sort"

	"throughputlab/internal/bgp"
	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/obs"
	"throughputlab/internal/topology"
)

// Endpoint is one end of a measured path: a host (client or server)
// attached to a router.
type Endpoint struct {
	Addr  netaddr.Addr
	ASN   topology.ASN
	Metro string
	// Router is the attachment router (access router for clients, a
	// core/border router for servers).
	Router topology.RouterID
	// AccessLine is the shared last-mile link for clients (nil for
	// servers).
	AccessLine *topology.Link
}

// Hop is one router visited by a path.
type Hop struct {
	Router *topology.Router
	// InLink is the link over which the path entered this router (nil
	// for the first router, which the source host attaches to).
	InLink *topology.Link
	// Ingress is the interface on InLink owned by this router (nil when
	// InLink is nil).
	Ingress *topology.Interface
}

// Path is a resolved router-level path.
type Path struct {
	Src, Dst Endpoint
	Hops     []Hop
	// Links are all capacity-bearing links traversed in order,
	// including the endpoints' access lines when present.
	Links []*topology.Link
	// ASPath is the AS-level path from bgp. The slice is shared with
	// the resolver's AS-path cache and must not be mutated.
	ASPath []topology.ASN
}

// InterdomainLinks returns the interdomain links the path traverses, in
// order.
func (p *Path) InterdomainLinks() []*topology.Link {
	n := 0
	for _, l := range p.Links {
		if l.Kind == topology.LinkInterdomain {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]*topology.Link, 0, n)
	for _, l := range p.Links {
		if l.Kind == topology.LinkInterdomain {
			out = append(out, l)
		}
	}
	return out
}

// Resolver resolves router-level paths. It precomputes link indices
// from the topology; the topology must not be mutated afterwards.
type Resolver struct {
	topo   *topology.Topology
	routes *bgp.Routes

	// interLinks indexes interdomain links by ordered (fromAS, toAS).
	interLinks map[[2]topology.ASN][]*topology.Link
	// intraLinks indexes intra-AS links by unordered router pair.
	intraLinks map[[2]topology.RouterID][]*topology.Link
	// cores maps AS → metro → core router (with fallback described in
	// coreAt).
	cores map[topology.ASN]map[string]*topology.Router
	// anyRouter is a deterministic fallback router per AS.
	anyRouter map[topology.ASN]*topology.Router

	// delays is the precomputed metro-pair propagation-delay matrix;
	// routerMetro maps dense router IDs to matrix indices (-1 when the
	// router's metro is unknown, which MustMetro then reports).
	delays      *geo.DelayMatrix
	routerMetro []int32

	// cache memoizes segments, interdomain choices, and AS paths;
	// noCache (set by DisableCache) routes every lookup through the
	// compute path, for A/B identity tests.
	cache    *resolverCache
	counters resolverCounters
	noCache  bool
}

// New builds a Resolver over the topology and its routes.
func New(t *topology.Topology, r *bgp.Routes) *Resolver {
	rv := &Resolver{
		topo:       t,
		routes:     r,
		interLinks: make(map[[2]topology.ASN][]*topology.Link),
		intraLinks: make(map[[2]topology.RouterID][]*topology.Link),
		cores:      make(map[topology.ASN]map[string]*topology.Router),
		anyRouter:  make(map[topology.ASN]*topology.Router),
		delays:     geo.NewDelayMatrix(t.Metros),
		cache:      newResolverCache(),
	}
	// Counters live on a private always-on registry so Stats works out
	// of the box; Observe rebinds them onto a shared pipeline registry.
	rv.bindObs(obs.NewRegistry())
	maxID := topology.RouterID(-1)
	for _, l := range t.Links() {
		switch l.Kind {
		case topology.LinkInterdomain:
			a, b := l.ASA(), l.ASB()
			rv.interLinks[[2]topology.ASN{a, b}] = append(rv.interLinks[[2]topology.ASN{a, b}], l)
			rv.interLinks[[2]topology.ASN{b, a}] = append(rv.interLinks[[2]topology.ASN{b, a}], l)
		case topology.LinkIntra:
			k := routerPair(l.A.Router.ID, l.B.Router.ID)
			rv.intraLinks[k] = append(rv.intraLinks[k], l)
		}
	}
	for _, asn := range t.ASNs() {
		as := t.AS(asn)
		m := make(map[string]*topology.Router)
		for _, rt := range as.Routers {
			if rv.anyRouter[asn] == nil {
				rv.anyRouter[asn] = rt
			}
			if rt.ID > maxID {
				maxID = rt.ID
			}
			if rt.Kind == topology.RouterCore {
				if _, ok := m[rt.Metro]; !ok {
					m[rt.Metro] = rt
				}
			}
		}
		// Fallback: in metros without a core, use the first border
		// router there (single-router stubs).
		for _, rt := range as.Routers {
			if _, ok := m[rt.Metro]; !ok {
				m[rt.Metro] = rt
			}
		}
		rv.cores[asn] = m
	}
	rv.routerMetro = make([]int32, maxID+1)
	for i := range rv.routerMetro {
		rv.routerMetro[i] = -1
	}
	for _, asn := range t.ASNs() {
		for _, rt := range t.AS(asn).Routers {
			if mi, ok := rv.delays.Index(rt.Metro); ok {
				rv.routerMetro[rt.ID] = int32(mi)
			}
		}
	}
	return rv
}

// DisableCache turns memoization off for this resolver, forcing every
// Resolve through the compute path. Results are byte-identical either
// way; this exists so tests can A/B the two. Must be called before the
// resolver is shared across goroutines.
func (rv *Resolver) DisableCache() { rv.noCache = true }

func routerPair(a, b topology.RouterID) [2]topology.RouterID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.RouterID{a, b}
}

// metroIdx returns the delay-matrix index of a metro code, with
// MustMetro's panic semantics for unknown codes.
func (rv *Resolver) metroIdx(code string) int32 {
	mi, ok := rv.delays.Index(code)
	if !ok {
		rv.topo.MustMetro(code) // panics with the canonical message
	}
	return int32(mi)
}

// routerMetroIdx returns the delay-matrix index of a router's metro.
func (rv *Resolver) routerMetroIdx(r *topology.Router) int32 {
	mi := rv.routerMetro[r.ID]
	if mi < 0 {
		rv.topo.MustMetro(r.Metro) // panics with the canonical message
	}
	return mi
}

// coreAt returns the AS's core router in the metro, or any router of
// the AS when it has no presence there. The fallback is counted in
// Stats: metro-keyed cache entries would otherwise silently absorb a
// topology bug that leaves an AS without presence in a metro its
// routes cross.
func (rv *Resolver) coreAt(asn topology.ASN, metro string) (*topology.Router, error) {
	if r, ok := rv.cores[asn][metro]; ok {
		return r, nil
	}
	if r := rv.anyRouter[asn]; r != nil {
		rv.counters.coreFallbacks.Add(1)
		return r, nil
	}
	return nil, fmt.Errorf("routing: AS %d has no routers", asn)
}

// FlowKey derives the deterministic per-flow ECMP key from the flow's
// addresses and an entropy value (ports / Paris flow identifier).
// Distinct entropy values model distinct transport flows: an NDT test
// and its companion Paris traceroute hash differently, so on balanced
// parallel links they may take different members — one of the
// association caveats of §4.
func FlowKey(src, dst netaddr.Addr, entropy uint32) uint64 {
	// FNV-1a over the 12 bytes.
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	mix(uint32(src))
	mix(uint32(dst))
	mix(entropy)
	return h
}

// Resolve computes the router-level path from src to dst for the given
// flow key.
func (rv *Resolver) Resolve(src, dst Endpoint, flowKey uint64) (*Path, error) {
	asPath := rv.asPath(src.ASN, dst.ASN)
	if asPath == nil {
		return nil, fmt.Errorf("routing: no AS route %d -> %d", src.ASN, dst.ASN)
	}
	p := &Path{Src: src, Dst: dst, ASPath: asPath}
	// Size for the common shape: ≤4 hops per AS segment plus one
	// ingress per crossing; links additionally carry up to two access
	// lines.
	capHint := 4*len(asPath) + 2
	p.Hops = make([]Hop, 0, capHint)
	p.Links = make([]*topology.Link, 0, capHint+2)

	if src.AccessLine != nil {
		p.Links = append(p.Links, src.AccessLine)
	}

	cur := rv.topo.Router(src.Router)
	if cur == nil {
		return nil, fmt.Errorf("routing: unknown source router %d", src.Router)
	}
	p.Hops = append(p.Hops, Hop{Router: cur})

	var dstMetro int32
	if len(asPath) > 1 {
		dstMetro = rv.metroIdx(dst.Metro)
	}
	for i := 1; i < len(asPath); i++ {
		fromAS, toAS := asPath[i-1], asPath[i]
		link, err := rv.pickInterLink(fromAS, toAS, rv.routerMetroIdx(cur), dstMetro, flowKey)
		if err != nil {
			return nil, err
		}
		// Walk inside fromAS to the egress border router.
		egress, ingress := link.A, link.B
		if link.ASA() != fromAS {
			egress, ingress = link.B, link.A
		}
		if err := rv.appendIntra(p, cur, egress.Router); err != nil {
			return nil, err
		}
		// Cross the interdomain link.
		p.Links = append(p.Links, link)
		p.Hops = append(p.Hops, Hop{Router: ingress.Router, InLink: link, Ingress: ingress})
		cur = ingress.Router
	}

	// Inside the destination AS, walk to the destination's attachment
	// router.
	dstRouter := rv.topo.Router(dst.Router)
	if dstRouter == nil {
		return nil, fmt.Errorf("routing: unknown destination router %d", dst.Router)
	}
	if err := rv.appendIntra(p, cur, dstRouter); err != nil {
		return nil, err
	}
	if dst.AccessLine != nil {
		p.Links = append(p.Links, dst.AccessLine)
	}
	rv.counters.resolveHops.Observe(float64(len(p.Hops)))
	return p, nil
}

// pickInterLink chooses the interdomain link used to go from fromAS to
// toAS, given the current metro and the final destination metro. The
// scored near-tie set comes from the cache, so a hit reduces to one
// flow-hash modulus with zero allocations.
func (rv *Resolver) pickInterLink(fromAS, toAS topology.ASN, curMetro, dstMetro int32, flowKey uint64) (*topology.Link, error) {
	eq, err := rv.interChoices(interKey{from: fromAS, to: toAS, curMetro: curMetro, dstMetro: dstMetro})
	if err != nil {
		return nil, err
	}
	return eq[int(flowKey%uint64(len(eq)))], nil
}

// computeInterChoices scores every interdomain link realizing the AS
// adjacency and returns the near-tie set, sorted by link ID.
func (rv *Resolver) computeInterChoices(k interKey) ([]*topology.Link, error) {
	links := rv.interLinks[[2]topology.ASN{k.from, k.to}]
	if len(links) == 0 {
		return nil, fmt.Errorf("routing: no interdomain link %d -> %d", k.from, k.to)
	}
	cost := make([]float64, len(links))
	best := -1.0
	for i, l := range links {
		lm := rv.metroIdx(l.Metro)
		c := rv.delays.At(int(k.curMetro), int(lm)) + rv.delays.At(int(lm), int(k.dstMetro))
		cost[i] = c
		if best < 0 || c < best {
			best = c
		}
	}
	// Keep near-ties (parallel links in one metro always tie exactly).
	const epsilonMs = 0.5
	eq := make([]*topology.Link, 0, len(links))
	for i, l := range links {
		if cost[i] <= best+epsilonMs {
			eq = append(eq, l)
		}
	}
	sort.Slice(eq, func(i, j int) bool { return eq[i].ID < eq[j].ID })
	rv.counters.interCandidates.Observe(float64(len(eq)))
	return eq, nil
}

// appendIntra extends the path from router cur to router dst within one
// AS, via the metro cores. The hop sequence comes from the segment
// cache; appending it is the only per-call work.
func (rv *Resolver) appendIntra(p *Path, cur, dst *topology.Router) error {
	steps, err := rv.segment(cur, dst)
	if err != nil {
		return err
	}
	for i := range steps {
		p.Links = append(p.Links, steps[i].InLink)
		p.Hops = append(p.Hops, steps[i])
	}
	return nil
}

// computeSegment walks from router cur to router dst within one AS and
// returns the hops appended past cur (empty when cur == dst).
func (rv *Resolver) computeSegment(cur, dst *topology.Router) ([]Hop, error) {
	if cur.AS != dst.AS {
		return nil, fmt.Errorf("routing: intra walk across ASes %d -> %d", cur.AS, dst.AS)
	}
	var steps []Hop
	step := func(next *topology.Router) error {
		if next.ID == cur.ID {
			return nil
		}
		ls := rv.intraLinks[routerPair(cur.ID, next.ID)]
		if len(ls) == 0 {
			return fmt.Errorf("routing: no intra link between routers %d and %d (AS %d)", cur.ID, next.ID, cur.AS)
		}
		l := ls[0]
		ingress := l.A
		if ingress.Router.ID != next.ID {
			ingress = l.B
		}
		steps = append(steps, Hop{Router: next, InLink: l, Ingress: ingress})
		cur = next
		return nil
	}

	if cur.ID == dst.ID {
		return []Hop{}, nil
	}
	// Direct link (border and access routers link to their local core;
	// cores mesh between metros)?
	if len(rv.intraLinks[routerPair(cur.ID, dst.ID)]) > 0 {
		if err := step(dst); err != nil {
			return nil, err
		}
		return steps, nil
	}
	// Otherwise go via cores: local core, then destination-metro core.
	if cur.Kind != topology.RouterCore {
		c, err := rv.coreAt(cur.AS, cur.Metro)
		if err != nil {
			return nil, err
		}
		if c.ID != cur.ID {
			if err := step(c); err != nil {
				return nil, err
			}
		}
	}
	if cur.Metro != dst.Metro {
		c, err := rv.coreAt(cur.AS, dst.Metro)
		if err != nil {
			return nil, err
		}
		if c.ID != cur.ID {
			if err := step(c); err != nil {
				return nil, err
			}
		}
	}
	if cur.ID != dst.ID {
		if err := step(dst); err != nil {
			return nil, err
		}
	}
	return steps, nil
}

// RTTms computes the base (uncongested) round-trip time of a path in
// milliseconds: twice the sum of per-hop propagation delays plus a
// small per-hop processing cost and the access line's serialization
// slack.
func (rv *Resolver) RTTms(p *Path) float64 {
	oneWay := 0.0
	if len(p.Hops) > 0 {
		prev := rv.routerMetroIdx(p.Hops[0].Router)
		for i := 1; i < len(p.Hops); i++ {
			mi := rv.routerMetroIdx(p.Hops[i].Router)
			oneWay += rv.delays.At(int(prev), int(mi)) + 0.05
			prev = mi
		}
	}
	// Host attachment segments.
	oneWay += 0.2
	if p.Src.AccessLine != nil {
		oneWay += 2.0 // DSL/cable access serialization and interleaving
	}
	if p.Dst.AccessLine != nil {
		oneWay += 2.0
	}
	return 2 * oneWay
}
