// Command tputlab regenerates the paper's tables and figures from the
// synthetic Internet.
//
// Usage:
//
//	tputlab list
//	tputlab run <experiment>|all [-scale small|default|large] [-seed N] [-tests N] [-parallel N]
//	tputlab bench [-out FILE] [-note TEXT]
//
// Example:
//
//	tputlab run fig5 -scale small
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"throughputlab/internal/datasets"
	"throughputlab/internal/experiments"
	"throughputlab/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Paper)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "report":
		if err := reportCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "bench":
		if err := benchCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tputlab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tputlab list                                  show available experiments
  tputlab run <name>|all [flags]                regenerate a table/figure
  tputlab report [flags]                        caveat-annotated congestion report (§7 checklist)
  tputlab bench [-out FILE] [-note TEXT]        write a BENCH_<date>.json performance baseline

flags for run/report:
  -scale small|default|large   topology/corpus scale (default "default")
  -json                  (run) emit the result struct as JSON
  -seed N                generation seed (default 1)
  -tests N               NDT corpus size (0 = scale default)
  -parallel N            engine worker count (default GOMAXPROCS);
                         results are identical for every N`)
}

// scaleOptions maps a -scale value to its environment options; unknown
// values are a usage error, and run and report accept the same set.
func scaleOptions(scale string) (experiments.Options, error) {
	switch scale {
	case "default":
		return experiments.DefaultOptions(), nil
	case "small":
		return experiments.QuickOptions(), nil
	case "large":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.LargeScale()
		return opts, nil
	default:
		return experiments.Options{}, fmt.Errorf("invalid -scale %q (valid: small, default, large)", scale)
	}
}

func reportCmd(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	scale := fs.String("scale", "default", "small, default or large")
	seed := fs.Int64("seed", 1, "generation seed")
	tests := fs.Int("tests", 0, "NDT corpus size override")
	workers := fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := scaleOptions(*scale)
	if err != nil {
		return err
	}
	opts.Topo.Seed = *seed
	if *tests > 0 {
		opts.Collect.Tests = *tests
	}
	opts.Workers = *workers
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return err
	}
	fmt.Println(report.Build(env, report.DefaultConfig()).Render())
	return nil
}

func runCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("run requires an experiment name (try 'tputlab list')")
	}
	name := args[0]
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scale := fs.String("scale", "default", "small, default or large")
	seed := fs.Int64("seed", 1, "generation seed")
	tests := fs.Int("tests", 0, "NDT corpus size override")
	asJSON := fs.Bool("json", false, "emit the result struct as JSON instead of a table")
	workers := fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker count")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	opts, err := scaleOptions(*scale)
	if err != nil {
		return err
	}
	opts.Topo.Seed = *seed
	if *tests > 0 {
		opts.Collect.Tests = *tests
	}
	opts.Workers = *workers

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating world (scale=%s seed=%d parallel=%d)...\n", *scale, *seed, *workers)
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "world: %s\n", env.World.Topo.CollectStats())
	fmt.Fprintf(os.Stderr, "platforms: %d M-Lab servers, %d Speedtest servers; corpus: %d tests, %d traces (%.1fs)\n",
		len(env.World.MLabServers()), len(env.World.Speedtest),
		len(env.Corpus.Tests), len(env.Corpus.Traces), time.Since(start).Seconds())

	if name == "all" {
		out, stats, err := experiments.RunParallel(env, *workers)
		fmt.Print(out)
		fmt.Fprint(os.Stderr, stats.Summary())
		return err
	}
	entry, ok := experiments.Find(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try 'tputlab list')", name)
	}
	r, err := entry.Run(env)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(r)
	}
	fmt.Println(r.Render())
	return nil
}
