package netaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"192.0.2.1", AddrFrom4(192, 0, 2, 1), true},
		{"10.1.2.3", AddrFrom4(10, 1, 2, 3), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"1.2.3.a", 0, false},
		{"01.2.3.4", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := MustParseAddr("203.0.113.77")
	o1, o2, o3, o4 := a.Octets()
	if o1 != 203 || o2 != 0 || o3 != 113 || o4 != 77 {
		t.Errorf("Octets() = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("192.0.2.77/24")
	if p.Addr() != MustParseAddr("192.0.2.0") {
		t.Errorf("host bits not cleared: %v", p)
	}
	if p.Bits() != 24 {
		t.Errorf("Bits() = %d", p.Bits())
	}
	if p.String() != "192.0.2.0/24" {
		t.Errorf("String() = %q", p.String())
	}
	for _, bad := range []string{"192.0.2.0", "192.0.2.0/33", "192.0.2.0/-1", "x/24", "192.0.2.0/"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.8.0.0/14")
	if !p.Contains(MustParseAddr("10.11.255.255")) {
		t.Error("10.11.255.255 should be in 10.8.0.0/14")
	}
	if p.Contains(MustParseAddr("10.12.0.0")) {
		t.Error("10.12.0.0 should not be in 10.8.0.0/14")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.255.255.255")) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// Every prefix contains its own Nth addresses and nothing adjacent.
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := PrefixFrom(Addr(v), bits)
		if !p.Contains(p.Addr()) {
			return false
		}
		last := p.Nth(p.NumAddrs() - 1)
		if !p.Contains(last) {
			return false
		}
		if bits > 0 && uint32(last) != 0xFFFFFFFF && p.Contains(last+1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("10/8 and 10.5/16 overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("10/8 and 11/8 do not overlap")
	}
}

func TestPrefixSubnet(t *testing.T) {
	p := MustParsePrefix("172.16.0.0/12")
	s0 := p.Subnet(16, 0)
	if s0.String() != "172.16.0.0/16" {
		t.Errorf("Subnet(16,0) = %v", s0)
	}
	s5 := p.Subnet(16, 5)
	if s5.String() != "172.21.0.0/16" {
		t.Errorf("Subnet(16,5) = %v", s5)
	}
	s15 := p.Subnet(16, 15)
	if s15.String() != "172.31.0.0/16" {
		t.Errorf("Subnet(16,15) = %v", s15)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range subnet index should panic")
		}
	}()
	p.Subnet(16, 16)
}

func TestSubnetsDisjointProperty(t *testing.T) {
	// Sibling subnets never overlap, and each is contained in the parent.
	f := func(v uint32, extraRaw, iRaw, jRaw uint8) bool {
		parentBits := int(v % 25) // 0..24
		extra := 1 + int(extraRaw%6)
		newBits := parentBits + extra
		p := PrefixFrom(Addr(v), parentBits)
		n := uint64(1) << extra
		i, j := uint64(iRaw)%n, uint64(jRaw)%n
		si, sj := p.Subnet(newBits, i), p.Subnet(newBits, j)
		if !p.Contains(si.Addr()) || !p.Contains(sj.Addr()) {
			return false
		}
		if i != j && si.Overlaps(sj) {
			return false
		}
		return i != j || si == sj
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableLookup(t *testing.T) {
	tb := NewTable[string]()
	tb.Insert(MustParsePrefix("10.0.0.0/8"), "big")
	tb.Insert(MustParsePrefix("10.1.0.0/16"), "mid")
	tb.Insert(MustParsePrefix("10.1.2.0/24"), "small")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "small", true},
		{"10.1.3.3", "mid", true},
		{"10.2.0.1", "big", true},
		{"11.0.0.1", "", false},
	}
	for _, c := range cases {
		got, _, ok := tb.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = (%q, %v), want (%q, %v)", c.addr, got, ok, c.want, c.ok)
		}
	}
	if tb.Len() != 3 {
		t.Errorf("Len() = %d, want 3", tb.Len())
	}
}

func TestTableDefaultRoute(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(MustParsePrefix("0.0.0.0/0"), 42)
	v, _, ok := tb.Lookup(MustParseAddr("198.51.100.9"))
	if !ok || v != 42 {
		t.Errorf("default route lookup = (%d, %v)", v, ok)
	}
}

func TestTableGetExact(t *testing.T) {
	tb := NewTable[int]()
	p := MustParsePrefix("192.168.0.0/16")
	tb.Insert(p, 7)
	if v, ok := tb.Get(p); !ok || v != 7 {
		t.Errorf("Get = (%d, %v)", v, ok)
	}
	if _, ok := tb.Get(MustParsePrefix("192.168.0.0/17")); ok {
		t.Error("Get of unstored more-specific should miss")
	}
	if _, ok := tb.Get(MustParsePrefix("192.0.0.0/8")); ok {
		t.Error("Get of unstored less-specific should miss")
	}
}

func TestTableInsertReplace(t *testing.T) {
	tb := NewTable[int]()
	p := MustParsePrefix("10.0.0.0/8")
	tb.Insert(p, 1)
	tb.Insert(p, 2)
	if tb.Len() != 1 {
		t.Errorf("Len() = %d after replace, want 1", tb.Len())
	}
	if v, _ := tb.Get(p); v != 2 {
		t.Errorf("replaced value = %d, want 2", v)
	}
}

func TestTableWalkOrderAndCompleteness(t *testing.T) {
	tb := NewTable[int]()
	ins := []string{"10.0.0.0/8", "10.0.0.0/16", "9.0.0.0/8", "10.128.0.0/9", "0.0.0.0/0"}
	for i, s := range ins {
		tb.Insert(MustParsePrefix(s), i)
	}
	var seen []Prefix
	tb.Walk(func(p Prefix, _ int) bool {
		seen = append(seen, p)
		return true
	})
	if len(seen) != len(ins) {
		t.Fatalf("walk saw %d prefixes, want %d", len(seen), len(ins))
	}
	for i := 1; i < len(seen); i++ {
		a, b := seen[i-1], seen[i]
		if a.Addr() > b.Addr() || (a.Addr() == b.Addr() && a.Bits() >= b.Bits()) {
			t.Errorf("walk order violated: %v before %v", a, b)
		}
	}
}

func TestTableWalkEarlyStop(t *testing.T) {
	tb := NewTable[int]()
	for i := 0; i < 10; i++ {
		tb.Insert(MustParsePrefix("10.0.0.0/8").Subnet(16, uint64(i)), i)
	}
	n := 0
	tb.Walk(func(Prefix, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("walk visited %d, want 3 (early stop)", n)
	}
}

// TestTableLookupMatchesLinearScan cross-checks the trie against a naive
// implementation on random inputs.
func TestTableLookupMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := NewTable[int]()
	var prefixes []Prefix
	for i := 0; i < 300; i++ {
		bits := 4 + rng.Intn(25)
		p := PrefixFrom(Addr(rng.Uint32()), bits)
		tb.Insert(p, i)
		prefixes = append(prefixes, p)
	}
	naive := func(a Addr) (int, bool) {
		best, bestBits, found := 0, -1, false
		for i, p := range prefixes {
			if p.Contains(a) && p.Bits() > bestBits {
				best, bestBits, found = i, p.Bits(), true
			}
		}
		// Later inserts replace earlier equal prefixes; emulate by
		// scanning backwards for the same (addr,bits).
		if found {
			for i := len(prefixes) - 1; i >= 0; i-- {
				if prefixes[i].Bits() == bestBits && prefixes[i].Contains(a) {
					best = i
					break
				}
			}
		}
		return best, found
	}
	for i := 0; i < 2000; i++ {
		a := Addr(rng.Uint32())
		wantV, wantOK := naive(a)
		gotV, _, gotOK := tb.Lookup(a)
		if gotOK != wantOK || (gotOK && gotV != wantV) {
			t.Fatalf("Lookup(%v) = (%d,%v), naive (%d,%v)", a, gotV, gotOK, wantV, wantOK)
		}
	}
}

func BenchmarkTableLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tb := NewTable[int]()
	for i := 0; i < 20000; i++ {
		tb.Insert(PrefixFrom(Addr(rng.Uint32()), 8+rng.Intn(17)), i)
	}
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(addrs[i%len(addrs)])
	}
}

func TestAddrTextMarshal(t *testing.T) {
	a := MustParseAddr("192.0.2.9")
	b, err := a.MarshalText()
	if err != nil || string(b) != "192.0.2.9" {
		t.Errorf("MarshalText = %q, %v", b, err)
	}
	var back Addr
	if err := back.UnmarshalText(b); err != nil || back != a {
		t.Errorf("UnmarshalText round trip failed: %v %v", back, err)
	}
	if err := back.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("bogus address should fail")
	}
}

func TestPrefixTextMarshal(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/14")
	b, err := p.MarshalText()
	if err != nil || string(b) != "10.0.0.0/14" {
		t.Errorf("MarshalText = %q, %v", b, err)
	}
	var back Prefix
	if err := back.UnmarshalText(b); err != nil || back != p {
		t.Errorf("UnmarshalText round trip failed: %v %v", back, err)
	}
	if err := back.UnmarshalText([]byte("10.0.0.0")); err == nil {
		t.Error("missing length should fail")
	}
}
