package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}

// Entry describes one runnable experiment.
type Entry struct {
	Name  string
	Paper string // which table/figure/section it regenerates
	Run   func(*Env) (Renderer, error)
}

// Registry lists every experiment, keyed by the name used on the
// tputlab command line.
func Registry() []Entry {
	wrap := func(f func(*Env) Renderer) func(*Env) (Renderer, error) {
		return func(e *Env) (Renderer, error) { return f(e), nil }
	}
	return []Entry{
		{"fig1", "Figure 1 + §4.2 (AS hops server→client)", wrap(func(e *Env) Renderer { return Fig1(e) })},
		{"table1", "Table 1 (broadband providers)", wrap(func(e *Env) Renderer { return Table1(e) })},
		{"table2", "Table 2 (IP-link diversity from Level3 Atlanta)", wrap(func(e *Env) Renderer { return Table2(e) })},
		{"table3", "Table 3 (bdrmap borders per Ark VP)", wrap(func(e *Env) Renderer { return Table3(e) })},
		{"fig2", "Figure 2 (coverage of interconnections)", wrap(func(e *Env) Renderer { return Fig2(e) })},
		{"fig3", "Figure 3 (coverage of peer interconnections)", wrap(func(e *Env) Renderer { return Fig3(e) })},
		{"fig4", "Figure 4 (platform vs popular-content paths)", wrap(func(e *Env) Renderer { return Fig4(e) })},
		{"fig5", "Figure 5 (diurnal throughput, GTT Atlanta)", wrap(func(e *Env) Renderer { return Fig5(e) })},
		{"matching", "§4.1 (NDT↔traceroute association)", wrap(func(e *Env) Renderer { return Matching(e) })},
		{"thresholds", "§6.2 (congestion-threshold sensitivity)", wrap(func(e *Env) Renderer { return Thresholds(e) })},
		{"bias", "§6.1 (crowdsourcing bias diagnostics)", wrap(func(e *Env) Renderer { return BiasDiagnostics(e) })},
		{"tomography", "§3 (full vs simplified tomography)", wrap(func(e *Env) Renderer { return Tomography(e) })},
		{"snapshots", "§5.4 (coverage change over time)",
			func(e *Env) (Renderer, error) { return Snapshots(e) }},
		{"signatures", "§7 future work: TCP congestion signatures [37]", wrap(func(e *Env) Renderer { return Signatures(e) })},
		{"tslp", "§7 recommendation: TSLP latency survey [25]", wrap(func(e *Env) Renderer { return TSLP(e) })},
		{"placement", "§7 recommendation: topology-aware server placement", wrap(func(e *Env) Renderer { return Placement(e) })},
		{"battlefornet", "§2.2 (multi-server client vs NDT default)",
			func(e *Env) (Renderer, error) { return BattleForNet(e) }},
		{"ablation", "component ablations (far-side correction, alias resolution)",
			wrap(func(e *Env) Renderer { return Ablation(e) })},
		{"stratified", "§4.3 remedy: per-IP-link stratification of aggregates",
			wrap(func(e *Env) Renderer { return Stratified(e) })},
	}
}

// Find returns the registry entry with the given name.
func Find(name string) (Entry, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names returns all experiment names, sorted.
func Names() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment serially and concatenates the
// rendered output. RunParallel produces byte-identical output with any
// worker count.
func RunAll(e *Env) (string, error) {
	var sb strings.Builder
	for _, entry := range Registry() {
		r, err := entry.Run(e)
		if err != nil {
			return sb.String(), fmt.Errorf("experiment %s: %w", entry.Name, err)
		}
		sb.WriteString(renderEntry(entry, r))
	}
	return sb.String(), nil
}

// renderEntry formats one experiment's contribution to the all-
// experiments output; RunAll and RunParallel share it so their outputs
// stay byte-identical.
func renderEntry(entry Entry, r Renderer) string {
	return "=== " + entry.Name + " — " + entry.Paper + " ===\n" + r.Render() + "\n"
}
