package main

import (
	"os"
	"path/filepath"
	"testing"

	"throughputlab/internal/export"
)

func TestRunCorpusToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	out := filepath.Join(t.TempDir(), "corpus.json")
	if err := run("small", 1, 300, false, "", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := export.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Tests) < 300 || len(ds.Traces) == 0 {
		t.Fatalf("dataset has %d tests, %d traces", len(ds.Tests), len(ds.Traces))
	}
	if len(ds.Public.Prefixes) == 0 || len(ds.Public.Orgs) == 0 {
		t.Error("public data missing")
	}
}

func TestRunCampaignToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	out := filepath.Join(t.TempDir(), "bed.json")
	if err := run("small", 1, 0, false, "bed-us", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := export.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) < 100 || len(ds.Tests) != 0 {
		t.Fatalf("campaign dataset has %d traces, %d tests", len(ds.Traces), len(ds.Tests))
	}
}

func TestRunUnknownVP(t *testing.T) {
	if err := run("small", 1, 0, false, "nosuch-vp", "-"); err == nil {
		t.Error("unknown VP should error")
	}
}
