// Asrank: infer AS business relationships from route-collector feeds —
// the CAIDA dataset the paper's tooling consumes (bdrmap's relationship
// annotations, Figure 3's peer split) — and score the inference against
// the generator's ground truth.
package main

import (
	"fmt"

	"throughputlab/internal/asrank"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

func main() {
	world := topogen.MustGenerate(topogen.SmallConfig())

	// Route collectors: full AS-path tables from a sample of vantage
	// networks (what RouteViews/RIPE RIS publish and AS-rank consumes).
	asns := world.Topo.ASNs()
	var paths [][]topology.ASN
	vantages := 0
	for vi := 0; vi < len(asns); vi += len(asns)/20 + 1 {
		vantages++
		for _, origin := range asns {
			if p := world.Routes.Path(asns[vi], origin); len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	}
	fmt.Printf("collector feeds: %d AS paths from %d vantage networks\n", len(paths), vantages)

	res := asrank.Infer(paths, asrank.DefaultConfig())
	edges := res.Edges()

	// Score against ground truth.
	byTruth := map[topology.Rel][2]int{} // [correct, total]
	for _, e := range edges {
		truth := world.Topo.RelOf(e.A, e.B)
		c := byTruth[truth]
		c[1]++
		if e.Rel == truth {
			c[0]++
		}
		byTruth[truth] = c
	}
	fmt.Printf("\nclassified %d adjacencies:\n", len(edges))
	total, correct := 0, 0
	for _, rel := range []topology.Rel{topology.RelCustomer, topology.RelProvider,
		topology.RelPeer, topology.RelSibling} {
		c := byTruth[rel]
		if c[1] == 0 {
			continue
		}
		fmt.Printf("  truly %-9s %5d edges, %5.1f%% inferred correctly\n",
			rel, c[1], 100*float64(c[0])/float64(c[1]))
		total += c[1]
		correct += c[0]
	}
	fmt.Printf("  overall: %.1f%%\n", 100*float64(correct)/float64(total))

	// Spot checks on recognizable pairs.
	fmt.Println("\nspot checks:")
	pairs := []struct {
		a, b topology.ASN
		la   string
	}{
		{3356, 3257, "Level3–GTT (transit mesh)"},
		{3356, 7922, "Level3–Comcast"},
		{3257, 7018, "GTT–AT&T"},
	}
	for _, p := range pairs {
		fmt.Printf("  %-28s inferred %-9v truth %v\n",
			p.la, res.Rel(p.a, p.b), world.Topo.RelOf(p.a, p.b))
	}
	fmt.Println("\nWith inferred (not ground-truth) relationships, bdrmap's Table 3 split and")
	fmt.Println("Figure 3's peer filter run exactly as the paper ran them against CAIDA data.")
}
