// Coverage: the §5 question for a single vantage point — what fraction
// of my ISP's interconnections can I actually test with M-Lab or
// Speedtest servers, and do the tested ones overlap with the paths my
// traffic to popular content really takes?
package main

import (
	"fmt"

	"throughputlab/internal/alias"
	"throughputlab/internal/bdrmap"
	"throughputlab/internal/mapit"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

func main() {
	world := topogen.MustGenerate(topogen.SmallConfig())
	var vp topogen.ArkVP
	for _, v := range world.ArkVPs {
		if v.Label == "mnz-us" { // the Verizon VP
			vp = v
		}
	}
	fmt.Printf("VP %s (%s, %s)\n", vp.Label, vp.ISP, vp.Host.Endpoint.Metro)

	art := traceroute.DefaultArtifacts()
	art.DstNoReplyProb = 0.05
	campaign := platform.Campaign(world, vp.Host.Endpoint, platform.RoutedPrefixTargets(world), art, 1)
	mlab := platform.Campaign(world, vp.Host.Endpoint, platform.HostTargets(world.MLabServers()), art, 2)
	speed := platform.Campaign(world, vp.Host.Endpoint, platform.HostTargets(world.Speedtest), art, 3)
	alexa := platform.Campaign(world, vp.Host.Endpoint,
		platform.AlexaTargets(world, vp.Host.Endpoint.Metro), art, 4)

	orgASNs := world.Access[vp.ISP].Org.ASNs
	opts := bdrmap.Opts{
		OrgASNs: orgASNs,
		MapIt: mapit.Opts{
			Prefix2AS: world.Topo.OriginOf,
			IsIXP: func(a netaddr.Addr) bool {
				for _, p := range world.Topo.IXPPrefixes {
					if p.Contains(a) {
						return true
					}
				}
				return false
			},
			SameOrg: func(x, y topology.ASN) bool { return x == y || world.Topo.SameOrg(x, y) },
		},
		Rel: func(n topology.ASN) topology.Rel {
			for _, o := range orgASNs {
				if r := world.Topo.RelOf(o, n); r != topology.RelNone {
					return r
				}
			}
			return topology.RelNone
		},
		Alias:     alias.New(world.Topo),
		AliasSeed: 5,
	}
	all := append(append(append(append([]*traceroute.Trace{}, campaign...), mlab...), speed...), alexa...)
	az := bdrmap.NewAnalyzer(all, opts)

	borders := az.Borders(campaign)
	mlabAS, _ := az.CoverageSets(mlab)
	speedAS, _ := az.CoverageSets(speed)
	alexaAS, _ := az.CoverageSets(alexa)

	fmt.Printf("\nbdrmap finds %d AS-level interconnections (%d router-level)\n",
		borders.ASCount, borders.RouterCount)
	fmt.Printf("  testable via M-Lab servers:     %3d  (%.1f%%)\n",
		len(mlabAS), 100*float64(len(mlabAS))/float64(borders.ASCount))
	fmt.Printf("  testable via Speedtest servers: %3d  (%.1f%%)\n",
		len(speedAS), 100*float64(len(speedAS))/float64(borders.ASCount))
	fmt.Printf("  on paths to popular content:    %3d\n", len(alexaAS))

	// Figure 4 in miniature.
	notCovered := 0
	for a := range alexaAS {
		if !mlabAS[a] {
			notCovered++
		}
	}
	fmt.Printf("\ncontent-path interconnections NOT testable via M-Lab: %d/%d (%.0f%%)\n",
		notCovered, len(alexaAS), 100*float64(notCovered)/float64(len(alexaAS)))
	fmt.Println("\n→ §7's recommendation: place servers topology-aware, not just latency-aware,")
	fmt.Println("  or congestion claims only speak for a thin slice of the interconnection fabric.")
}
