package topogen

import (
	"testing"

	"throughputlab/internal/datasets"
	"throughputlab/internal/topology"
)

// smallWorld is shared across tests (generation is the expensive part).
var smallWorld = MustGenerate(SmallConfig())

func TestGeneratedTopologyValid(t *testing.T) {
	// Generate validates internally; double-check here explicitly.
	if errs := smallWorld.Topo.Validate(); len(errs) != 0 {
		for i, e := range errs {
			if i > 10 {
				break
			}
			t.Error(e)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w1 := MustGenerate(SmallConfig())
	w2 := MustGenerate(SmallConfig())
	if w1.Topo.NumASes() != w2.Topo.NumASes() {
		t.Fatalf("AS counts differ: %d vs %d", w1.Topo.NumASes(), w2.Topo.NumASes())
	}
	if len(w1.Topo.Links()) != len(w2.Topo.Links()) {
		t.Fatalf("link counts differ: %d vs %d", len(w1.Topo.Links()), len(w2.Topo.Links()))
	}
	l1, l2 := w1.Topo.Links(), w2.Topo.Links()
	for i := range l1 {
		if l1[i].A.Addr != l2[i].A.Addr || l1[i].Metro != l2[i].Metro ||
			l1[i].CapacityMbps != l2[i].CapacityMbps {
			t.Fatalf("link %d differs between identical seeds", i)
		}
	}
	ms1, ms2 := w1.MLabServers(), w2.MLabServers()
	for i := range ms1 {
		if ms1[i].Endpoint.Addr != ms2[i].Endpoint.Addr {
			t.Fatalf("M-Lab server %d differs between identical seeds", i)
		}
	}
}

func TestSeedChangesWorld(t *testing.T) {
	cfg := SmallConfig()
	cfg.Seed = 99
	w2 := MustGenerate(cfg)
	l1, l2 := smallWorld.Topo.Links(), w2.Topo.Links()
	if len(l1) == len(l2) {
		same := true
		for i := range l1 {
			if l1[i].A.Addr != l2[i].A.Addr {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical worlds")
		}
	}
}

func TestAccessISPsPresent(t *testing.T) {
	for _, p := range datasets.AccessISPs() {
		an := smallWorld.Access[p.Name]
		if an == nil {
			t.Errorf("%s missing from world", p.Name)
			continue
		}
		if len(an.PoolByMetro) != len(p.Metros) {
			t.Errorf("%s has %d pools, want %d", p.Name, len(an.PoolByMetro), len(p.Metros))
		}
		for m, pi := range an.PoolByMetro {
			if pi.AccessLine == nil || pi.AccessLine.Kind != topology.LinkAccessLine {
				t.Errorf("%s/%s pool lacks access line", p.Name, m)
			}
			if smallWorld.Topo.AS(pi.ASN) == nil {
				t.Errorf("%s/%s pool ASN %d unknown", p.Name, m, pi.ASN)
			}
			// Pool ASN belongs to the ISP's org.
			if !containsASN(an.Org.ASNs, pi.ASN) {
				t.Errorf("%s/%s pool ASN %d not in org", p.Name, m, pi.ASN)
			}
		}
	}
}

func containsASN(xs []topology.ASN, v topology.ASN) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestTransitAccessAdjacency(t *testing.T) {
	// Every profiled transit peer/provider must be realized as at least
	// one interdomain link between the orgs.
	topo := smallWorld.Topo
	for _, p := range datasets.AccessISPs() {
		an := smallWorld.Access[p.Name]
		for _, tn := range append(append([]string{}, p.TransitPeers...), p.TransitProviders...) {
			found := false
			for _, tr := range datasets.Transits() {
				if tr.Name != tn {
					continue
				}
				tASNs := []topology.ASN{tr.ASN}
				if tr.SiblingASN != 0 {
					tASNs = append(tASNs, tr.SiblingASN)
				}
				for _, ta := range tASNs {
					for _, aa := range an.Org.ASNs {
						if len(topo.InterdomainLinks(ta, aa)) > 0 {
							found = true
						}
					}
				}
			}
			if !found {
				t.Errorf("%s: no interdomain link to %s", p.Name, tn)
			}
		}
	}
}

func TestCongestionApplied(t *testing.T) {
	// The GTT-AT&T Atlanta interconnect must exist and saturate at peak.
	topo := smallWorld.Topo
	att := smallWorld.Access["AT&T"]
	var found bool
	for _, aa := range att.Org.ASNs {
		for _, l := range topo.InterdomainLinks(3257, aa) {
			if l.Metro == "atl" && l.PeakUtil >= 1.2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("GTT-AT&T atl congested link missing (Figure 5a driver)")
	}
	// GTT-Comcast atl busy but not saturated.
	com := smallWorld.Access["Comcast"]
	var busy bool
	for _, aa := range com.Org.ASNs {
		for _, l := range topo.InterdomainLinks(3257, aa) {
			if l.Metro == "atl" && l.PeakUtil > 0.8 && l.PeakUtil < 1.0 {
				busy = true
			}
		}
	}
	if !busy {
		t.Error("GTT-Comcast atl busy link missing (Figure 5b driver)")
	}
}

func TestMLabPlacement(t *testing.T) {
	if len(smallWorld.MLabSites) < 15 {
		t.Fatalf("only %d M-Lab sites", len(smallWorld.MLabSites))
	}
	hosts := map[string]bool{}
	for _, s := range smallWorld.MLabSites {
		hosts[s.HostNet] = true
		if len(s.Servers) != smallWorld.Cfg.Scale.ServersPerMLabSite {
			t.Errorf("site %s has %d servers", s.Name, len(s.Servers))
		}
		for _, srv := range s.Servers {
			if srv.Endpoint.Metro != s.Metro {
				t.Errorf("server %s in wrong metro", srv.Name)
			}
			// Server address must resolve to the host network via the
			// public origin table.
			origin, ok := smallWorld.Topo.OriginOf(srv.Endpoint.Addr)
			if !ok || origin != srv.Endpoint.ASN {
				t.Errorf("server %s address origin = %d (ok=%v), want %d", srv.Name, origin, ok, srv.Endpoint.ASN)
			}
		}
	}
	// GTT Atlanta must exist (Figure 5 case study).
	var gttAtl bool
	for _, s := range smallWorld.MLabSites {
		if s.HostNet == "GTT" && s.Metro == "atl" {
			gttAtl = true
		}
	}
	if !gttAtl {
		t.Error("no GTT Atlanta M-Lab site")
	}
	if len(hosts) < 4 {
		t.Errorf("M-Lab hosted in only %d networks", len(hosts))
	}
}

func TestSpeedtestLargerThanMLab(t *testing.T) {
	if len(smallWorld.Speedtest) <= len(smallWorld.MLabServers()) {
		t.Errorf("speedtest fleet (%d) should exceed M-Lab (%d), as in §5.4",
			len(smallWorld.Speedtest), len(smallWorld.MLabServers()))
	}
	nets := map[string]bool{}
	for _, h := range smallWorld.Speedtest {
		nets[h.Network] = true
	}
	if len(nets) < 25 {
		t.Errorf("speedtest servers spread across only %d networks", len(nets))
	}
}

func TestSpeedtestFactorGrowsFleet(t *testing.T) {
	cfg := SmallConfig()
	cfg.SpeedtestFactor = 1.45
	w2 := MustGenerate(cfg)
	if len(w2.Speedtest) <= len(smallWorld.Speedtest) {
		t.Errorf("factor 1.45 fleet %d not larger than baseline %d",
			len(w2.Speedtest), len(smallWorld.Speedtest))
	}
	// M-Lab stays flat (§5.4: exactly the same server count).
	if len(w2.MLabServers()) != len(smallWorld.MLabServers()) {
		t.Error("M-Lab fleet should not change with the speedtest factor")
	}
}

func TestArkVPs(t *testing.T) {
	if len(smallWorld.ArkVPs) != 16 {
		t.Fatalf("%d Ark VPs, want 16", len(smallWorld.ArkVPs))
	}
	labels := map[string]bool{}
	for _, vp := range smallWorld.ArkVPs {
		if labels[vp.Label] {
			t.Errorf("duplicate VP label %s", vp.Label)
		}
		labels[vp.Label] = true
		if vp.Host.Endpoint.AccessLine == nil {
			t.Errorf("VP %s should sit behind an access line", vp.Label)
		}
		origin, ok := smallWorld.Topo.OriginOf(vp.Host.Endpoint.Addr)
		if !ok || !containsASN(smallWorld.Access[vp.ISP].Org.ASNs, origin) {
			t.Errorf("VP %s address not in its ISP's space", vp.Label)
		}
	}
	if !labels["bed-us"] || !labels["san6-us"] {
		t.Error("paper VP labels missing")
	}
}

func TestNewClientDrawsDistinctAddresses(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		ep, ok := smallWorld.NewClient("Comcast", "nyc")
		if !ok {
			t.Fatal("no Comcast nyc pool")
		}
		if seen[ep.Addr.String()] {
			t.Fatalf("duplicate client address %v", ep.Addr)
		}
		seen[ep.Addr.String()] = true
		origin, _ := smallWorld.Topo.OriginOf(ep.Addr)
		if origin != ep.ASN {
			t.Errorf("client origin %d != endpoint ASN %d", origin, ep.ASN)
		}
	}
	if _, ok := smallWorld.NewClient("Comcast", "zzz"); ok {
		t.Error("unknown metro should fail")
	}
	if _, ok := smallWorld.NewClient("NoSuchISP", "nyc"); ok {
		t.Error("unknown ISP should fail")
	}
}

func TestResolveDomain(t *testing.T) {
	var cdn, hosted datasets.PopularDomain
	for _, d := range smallWorld.Domains {
		if d.ContentOrg != "" && cdn.Name == "" {
			cdn = d
		}
		if d.ContentOrg == "" && hosted.Name == "" {
			hosted = d
		}
	}
	// CDN domain resolves to the nearest replica per metro.
	hNYC, ok := smallWorld.ResolveDomain(cdn, "nyc")
	if !ok {
		t.Fatalf("cannot resolve %s", cdn.Name)
	}
	hLAX, _ := smallWorld.ResolveDomain(cdn, "lax")
	if hNYC.Endpoint.Metro == hLAX.Endpoint.Metro {
		t.Logf("CDN %s resolves to same metro from nyc and lax (narrow footprint)", cdn.ContentOrg)
	}
	// Hosted domain resolves to a fixed host regardless of metro.
	h1, ok := smallWorld.ResolveDomain(hosted, "nyc")
	if !ok {
		t.Fatalf("cannot resolve hosted domain %s", hosted.Name)
	}
	h2, _ := smallWorld.ResolveDomain(hosted, "lax")
	if h1.Endpoint.Addr != h2.Endpoint.Addr {
		t.Error("hosted domain should resolve identically everywhere")
	}
}

func TestNearestMLabSite(t *testing.T) {
	sites := smallWorld.NearestMLabSite("atl", 0)
	if len(sites) == 0 {
		t.Fatal("no nearest site")
	}
	for _, s := range sites {
		if s.Metro != "atl" {
			t.Errorf("nearest site to atl is in %s", s.Metro)
		}
	}
	// With slack, more sites qualify (the Battle-for-the-Net variant).
	wide := smallWorld.NearestMLabSite("atl", 8)
	if len(wide) <= len(sites) {
		t.Error("slack should widen the candidate set")
	}
}

func TestRoutesReachability(t *testing.T) {
	// Every access backbone reaches every M-Lab server host network.
	for _, p := range datasets.AccessISPs() {
		for _, tr := range datasets.Transits() {
			if len(tr.MLabMetros) == 0 {
				continue
			}
			if !smallWorld.Routes.HasRoute(p.BackboneASN, tr.ASN) {
				t.Errorf("%s cannot reach %s", p.Name, tr.Name)
			}
		}
	}
}

func TestEndToEndPathResolution(t *testing.T) {
	// A full NDT-like path: GTT Atlanta server to an AT&T client.
	var server Host
	for _, s := range smallWorld.MLabSites {
		if s.HostNet == "GTT" && s.Metro == "atl" {
			server = s.Servers[0]
		}
	}
	client, ok := smallWorld.NewClient("AT&T", "atl")
	if !ok {
		t.Fatal("no AT&T atl client")
	}
	path, err := smallWorld.Resolver.Resolve(server.Endpoint, client, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.InterdomainLinks()) == 0 {
		t.Fatal("no interdomain links on server->client path")
	}
	if path.Links[len(path.Links)-1].Kind != topology.LinkAccessLine {
		t.Error("path should end at the client's access line")
	}
}

func TestWorldScaleDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale generation in -short mode")
	}
	w := MustGenerate(DefaultConfig())
	if w.Topo.NumASes() < 1200 {
		t.Errorf("default world has only %d ASes", w.Topo.NumASes())
	}
	if len(w.Topo.Links()) < 4000 {
		t.Errorf("default world has only %d links", len(w.Topo.Links()))
	}
	if len(w.Topo.InterdomainLinks(0, 0)) < 1500 {
		t.Errorf("default world has only %d interdomain links", len(w.Topo.InterdomainLinks(0, 0)))
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGenerate(SmallConfig())
	}
}
