package export

import (
	"bytes"
	"io"
	"testing"
)

// FuzzColumnarDecode throws arbitrary bytes at every columnar entry
// point. The decoder's contract under hostile input is: a descriptive
// error, never a panic, and never an allocation proportional to a
// length field the payload cannot back (truncated stripes, corrupted
// checksums, oversized varints, and footer/index mismatches all land
// here). Valid prefixes come from a real campaign so the fuzzer starts
// deep inside the frame grammar rather than at the magic check.
func FuzzColumnarDecode(f *testing.F) {
	buf, _ := writeColumnar(f, streamCfg(60, 20), 1)
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:len(raw)-5])
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/3] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte(columnarMagic))
	f.Add([]byte(columnarMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")) // oversized header varint
	f.Add([]byte(streamMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, workers := range []int{1, 2} {
			cr, err := OpenColumnarProjected(bytes.NewReader(data), workers, EverythingProjection())
			if err != nil {
				continue
			}
			for {
				_, err := cr.Next()
				if err != nil {
					break
				}
			}
			cr.Close()
		}
		if cf, err := OpenColumnarAt(bytes.NewReader(data)); err == nil {
			if len(cf.Index()) > 0 {
				_, _ = cf.ChunkAt(0, EverythingProjection())
				_, _ = cf.ChunkAt(len(cf.Index())-1, Projection{Traces: true})
			}
		}
		// The unified front door must classify or reject, never panic.
		if cr, err := OpenCorpus(bytes.NewReader(data)); err == nil {
			for {
				if _, err := cr.Next(); err != nil {
					break
				}
			}
			cr.Close()
		}
	})
}

// TestColumnarFuzzRegression replays a handful of shapes the fuzz
// target is designed around, so the invariants hold even in -short
// runs that never invoke the fuzzer.
func TestColumnarFuzzRegression(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("tputcol"),
		[]byte(columnarMagic),
		[]byte(columnarMagic + "\x00"),
		// Header frame with a length varint far beyond the file.
		[]byte(columnarMagic + "\xff\xff\xff\x7f"),
		// 10-byte varint with a continuation bit in every byte: oversized.
		[]byte(columnarMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"),
		// Chunk frame claiming a huge payload after a valid header is
		// covered by TestColumnarTruncated; here, a bare unknown frame.
		[]byte(columnarMagic + "\x03{}\x00\x00\x00\x00\x7f"),
	}
	for i, data := range cases {
		cr, err := OpenColumnar(bytes.NewReader(data))
		if err != nil {
			continue
		}
		for {
			_, err = cr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF || err == nil {
			t.Errorf("case %d: malformed input read to completion", i)
		}
	}
}
