package routing

import "testing"

// TestCoreFallbackCounted pins the resolver stats counter for coreAt's
// any-router fallback: an AS asked for a metro it has no presence in
// must be visible in Stats, not silently absorbed.
func TestCoreFallbackCounted(t *testing.T) {
	n := buildTestNet(t)
	if got := n.rv.Stats().CoreFallbacks; got != 0 {
		t.Fatalf("fresh resolver CoreFallbacks = %d, want 0", got)
	}
	r, err := n.rv.coreAt(200, "no-such-metro")
	if err != nil || r == nil {
		t.Fatalf("coreAt fallback: %v, %v", r, err)
	}
	if r.ID != n.rv.anyRouter[200].ID {
		t.Errorf("fallback router = %d, want anyRouter %d", r.ID, n.rv.anyRouter[200].ID)
	}
	if got := n.rv.Stats().CoreFallbacks; got != 1 {
		t.Errorf("CoreFallbacks after fallback = %d, want 1", got)
	}
	// A metro the AS is present in must not count.
	if _, err := n.rv.coreAt(200, "atl"); err != nil {
		t.Fatal(err)
	}
	if got := n.rv.Stats().CoreFallbacks; got != 1 {
		t.Errorf("CoreFallbacks after present-metro lookup = %d, want 1", got)
	}
}

// TestSegmentCacheReused verifies that repeated resolution of one pair
// serves the intra-AS segment and interdomain choice from cache.
func TestSegmentCacheReused(t *testing.T) {
	n := buildTestNet(t)
	for i := 0; i < 5; i++ {
		if _, err := n.rv.Resolve(n.server, n.clientNYC, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := n.rv.Stats()
	if st.SegmentHits == 0 {
		t.Errorf("no segment cache hits after repeated resolves: %+v", st)
	}
	if st.InterHits == 0 {
		t.Errorf("no interdomain cache hits after repeated resolves: %+v", st)
	}
	if st.ASPathHits == 0 {
		t.Errorf("no AS-path cache hits after repeated resolves: %+v", st)
	}
}
