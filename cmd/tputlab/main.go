// Command tputlab regenerates the paper's tables and figures from the
// synthetic Internet.
//
// Usage:
//
//	tputlab list
//	tputlab run <experiment>|all [-scale small|default|large] [-seed N] [-tests N] [-parallel N]
//	tputlab bench [-out FILE] [-note TEXT]
//
// Example:
//
//	tputlab run fig5 -scale small
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"throughputlab/internal/bdrmap"
	"throughputlab/internal/checkpoint"
	"throughputlab/internal/datasets"
	"throughputlab/internal/experiments"
	"throughputlab/internal/export"
	"throughputlab/internal/faults"
	"throughputlab/internal/mapit"
	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/report"
	"throughputlab/internal/stream"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

// pipelineDepth bounds each report-pipeline stage's input channel: a
// stalled stage backpressures the producer after this many chunks.
// Depth 1 keeps stages overlapped while holding the fan-out's share of
// resident chunks to one queued plus one in-process per stage.
const pipelineDepth = 1

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Paper)
		}
	case "run":
		exitOn(runCmd(os.Args[2:]))
	case "report":
		exitOn(reportCmd(os.Args[2:]))
	case "bench":
		if err := benchCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tputlab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

// exitOn maps a command's error to the process exit code: 0 success,
// 3 for a graceful interrupt (the campaign checkpointed and can be
// resumed — distinct from 1 so wrapper scripts can tell "retry with
// -resume" from "broken"), 1 for everything else. A second signal
// hard-exits 130 from the handler itself.
func exitOn(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "tputlab:", err)
	if errors.Is(err, platform.ErrInterrupted) {
		os.Exit(3)
	}
	os.Exit(1)
}

// signalContext arms cooperative cancellation: the first SIGINT or
// SIGTERM cancels the returned context with platform.ErrInterrupted as
// the cause — generation stops at its next phase boundary, collection
// drains the chunks already claimed and checkpoints — and a second
// signal hard-exits 130 without waiting for the drain.
func signalContext() (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "tputlab: interrupt — draining in-flight chunks and checkpointing (interrupt again to abort hard)")
		cancel(platform.ErrInterrupted)
		if _, ok := <-ch; ok {
			os.Exit(130)
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		close(ch)
		cancel(nil)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tputlab list                                  show available experiments
  tputlab run <name>|all [flags]                regenerate a table/figure
  tputlab report [flags]                        caveat-annotated congestion report (§7 checklist)
  tputlab bench [-out FILE] [-note TEXT]        write a BENCH_<date>.json performance baseline

flags for run/report:
  -scale NAME            topology/corpus scale: small, default, medium,
                         large (~50k ASes) or xlarge (~75k ASes, one
                         million scheduled tests); default "default"
  -json                  (run) emit the result struct as JSON
  -corpus-out FILE       persist the corpus to FILE as a chunked stream
                         while it is collected (bounded memory;
                         readable later by 'report -corpus')
  -corpus-format FORMAT  corpus file format: ndjson (the jq-able
                         tputlab-corpus/1 text stream, the default for
                         -corpus-out) or columnar (the tputlab-corpus/2
                         binary format, ~3x faster to reload and
                         smaller on disk); on 'report -corpus' the
                         format is auto-detected, and naming one
                         instead requires it
  -stream                (report) assemble the report through the
                         bounded-memory chunked pipeline instead of
                         materializing the corpus; output is
                         byte-identical to the batch path
  -corpus FILE           (report) report over a corpus previously
                         persisted with -corpus-out, without
                         re-collecting (no world generation)
  -resume MANIFEST       continue an interrupted -corpus-out campaign
                         from its checkpoint manifest: the identity
                         flags (scale/seed/tests/faults/...) come from
                         the manifest and may not be repeated; the
                         published corpus and report are byte-identical
                         to an uninterrupted run
  -chunk-tests N         streamed-collection chunk size in scheduled
                         tests (0 = platform default); not part of the
                         corpus identity, but checkpoints land on chunk
                         boundaries
  -checkpoint-every N    with -corpus-out, chunks between durability
                         barriers (fsync + manifest update); default 8,
                         1 checkpoints at every chunk boundary
  -seed N                generation seed (default 1)
  -tests N               NDT corpus size (0 = scale default)
  -parallel N            engine worker count (default GOMAXPROCS);
                         results are identical for every N
  -pipeline N            chunk-parallel streamed collection: workers
                         produce whole chunks concurrently and a
                         reorder buffer of depth N re-sequences them
                         (0 = per-chunk barrier, the default); the
                         corpus and report are byte-identical for
                         every value
  -genworkers N          world-generation worker count (default
                         GOMAXPROCS); the world is byte-identical
                         for every N
  -faults PROFILE        deterministic fault injection: off (default),
                         light, moderate or heavy; degraded data is
                         skipped by inference and accounted in the
                         report's data-completeness section
  -faultseed N           seed for the fault streams (default: -seed);
                         a fixed profile+seed yields a byte-identical
                         corpus at every -parallel value
  -metrics               print the phase-span tree and pipeline metrics
                         (cache hit rates, per-shard counts, fallbacks)
                         to stderr; stdout stays byte-identical
  -metrics-json FILE     write the metrics registry dump as JSON
  -events FILE           stream progress events (chunk publications,
                         pipeline stages, fault retries, report passes)
                         to FILE as NDJSON; ends with campaign.done
  -progress              render live progress events to stderr
  -trace-out FILE        write the phase-span tree as Chrome
                         trace_event JSON, loadable in Perfetto
  -telemetry-addr ADDR   serve live telemetry over HTTP while running:
                         /metrics (Prometheus text), /spans, /series,
                         /trace, /dump, /debug/pprof/
  -telemetry-linger DUR  keep the telemetry endpoint up DUR after the
                         run (e.g. 30s), for scrapes of the final state

telemetry never changes results: corpus and report bytes are identical
with every combination of the flags above on or off

exit codes: 0 success; 1 error; 2 usage; 3 interrupted after a durable
checkpoint (resume with -resume); 130 hard abort (second signal)`)
}

// scaleOptions maps a -scale value to its environment options; unknown
// values are a usage error, and run and report accept the same set.
// large (~50k ASes) and xlarge (~75k ASes, a million scheduled tests)
// are sized for the streaming pipeline: run them with -stream or
// -corpus-out so the corpus never has to be resident all at once.
func scaleOptions(scale string) (experiments.Options, error) {
	switch scale {
	case "default":
		return experiments.DefaultOptions(), nil
	case "small":
		return experiments.QuickOptions(), nil
	case "medium":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.MediumScale()
		return opts, nil
	case "large":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.LargeScale()
		return opts, nil
	case "xlarge":
		opts := experiments.DefaultOptions()
		opts.Topo.Scale = datasets.XLargeScale()
		opts.Collect.Tests = 1_000_000
		return opts, nil
	default:
		return experiments.Options{}, fmt.Errorf("invalid -scale %q (valid: small, default, medium, large, xlarge)", scale)
	}
}

// commonFlags is the flag/Options-building block shared by runCmd and
// reportCmd (it was duplicated verbatim between them before).
type commonFlags struct {
	scale        *string
	seed         *int64
	tests        *int
	workers      *int
	pipeline     *int
	genWorkers   *int
	corpusFormat *string
	faults       *string
	faultSeed    *int64
	chunkTests   *int
	resume       *string
	ckptEvery    *int
	metrics      *bool
	metricsJSON  *string

	events        *string
	progress      *bool
	traceOut      *string
	telemetryAddr *string
	linger        *time.Duration

	// Runtime telemetry state built by options(): the -events file (nil
	// when unused) and the -telemetry-addr server (nil when unused).
	eventsFile *os.File
	server     *obs.TelemetryServer
}

// addCommonFlags registers the run/report flag set on fs.
func addCommonFlags(fs *flag.FlagSet) *commonFlags {
	return &commonFlags{
		scale:        fs.String("scale", "default", "small, default, medium, large or xlarge"),
		seed:         fs.Int64("seed", 1, "generation seed"),
		tests:        fs.Int("tests", 0, "NDT corpus size override"),
		workers:      fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker count"),
		pipeline:     fs.Int("pipeline", 0, "streamed chunk-pipeline reorder window, 0 = per-chunk barrier"),
		genWorkers:   fs.Int("genworkers", runtime.GOMAXPROCS(0), "world-generation worker count"),
		corpusFormat: fs.String("corpus-format", "", "corpus file format: ndjson or columnar (write default ndjson; read default auto-detect)"),
		faults:       fs.String("faults", "off", "fault-injection profile: off, light, moderate or heavy"),
		faultSeed:    fs.Int64("faultseed", 0, "fault-injection seed (0 = generation seed)"),
		chunkTests:   fs.Int("chunk-tests", 0, "streamed-collection chunk size in scheduled tests (0 = platform default)"),
		resume:       fs.String("resume", "", "continue an interrupted campaign from this checkpoint manifest"),
		ckptEvery:    fs.Int("checkpoint-every", 0, "chunks between -corpus-out durability barriers (0 = default 8)"),
		metrics:      fs.Bool("metrics", false, "print phase spans and pipeline metrics to stderr"),
		metricsJSON:  fs.String("metrics-json", "", "write the metrics registry dump to this file as JSON"),

		events:        fs.String("events", "", "write the progress event stream to this file as NDJSON"),
		progress:      fs.Bool("progress", false, "render live progress events to stderr"),
		traceOut:      fs.String("trace-out", "", "write the span tree as Chrome trace_event JSON (Perfetto-loadable)"),
		telemetryAddr: fs.String("telemetry-addr", "", "serve /metrics, /spans, /series, /trace and /debug/pprof on this address while running"),
		linger:        fs.Duration("telemetry-linger", 0, "keep the -telemetry-addr endpoint up this long after the run completes"),
	}
}

// validateWorkers rejects non-positive worker counts with a usage-style
// error naming the flag, instead of silently clamping (a -parallel 0
// passed by a wrapper script is a bug worth surfacing, not a request
// for serial execution).
func validateWorkers(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("-%s must be >= 1 (got %d)", flagName, n)
	}
	return nil
}

// options assembles the experiment Options from the parsed flags,
// attaching a fresh obs registry when metrics were requested (nil
// otherwise, which disables instrumentation throughout the pipeline).
func (cf *commonFlags) options() (experiments.Options, *obs.Registry, error) {
	opts, err := scaleOptions(*cf.scale)
	if err != nil {
		return experiments.Options{}, nil, err
	}
	if err := validateWorkers("parallel", *cf.workers); err != nil {
		return experiments.Options{}, nil, err
	}
	if err := validateWorkers("genworkers", *cf.genWorkers); err != nil {
		return experiments.Options{}, nil, err
	}
	if *cf.pipeline < 0 {
		return experiments.Options{}, nil, fmt.Errorf("-pipeline must be >= 0 (got %d)", *cf.pipeline)
	}
	switch *cf.corpusFormat {
	case "", "auto", "ndjson", "columnar":
	default:
		return experiments.Options{}, nil, fmt.Errorf("invalid -corpus-format %q (valid: ndjson, columnar)", *cf.corpusFormat)
	}
	if *cf.chunkTests < 0 {
		return experiments.Options{}, nil, fmt.Errorf("-chunk-tests must be >= 0 (got %d)", *cf.chunkTests)
	}
	if *cf.ckptEvery < 0 {
		return experiments.Options{}, nil, fmt.Errorf("-checkpoint-every must be >= 0 (got %d)", *cf.ckptEvery)
	}
	prof, err := faults.ByName(*cf.faults)
	if err != nil {
		return experiments.Options{}, nil, err
	}
	opts.Topo.Seed = *cf.seed
	opts.Topo.Workers = *cf.genWorkers
	if *cf.tests > 0 {
		opts.Collect.Tests = *cf.tests
	}
	opts.Collect.Faults = prof
	opts.Collect.FaultSeed = *cf.faultSeed
	opts.Collect.ChunkTests = *cf.chunkTests
	opts.Collect.PipelineChunks = *cf.pipeline
	opts.Workers = *cf.workers
	var reg *obs.Registry
	if *cf.metrics || *cf.metricsJSON != "" || *cf.events != "" || *cf.progress ||
		*cf.traceOut != "" || *cf.telemetryAddr != "" {
		reg = obs.NewRegistry()
		opts.Obs = reg
		// The simulated-clock sampler rides every instrumented run: one
		// point per simulated hour, skipping the per-shard and pipeline
		// plumbing gauges whose cardinality would drown a dashboard.
		reg.EnableTimeSeries(0, 0, func(name string) bool {
			return !strings.HasPrefix(name, "collect.shard.") && !strings.HasPrefix(name, "pipeline.")
		})
		if *cf.events != "" || *cf.progress {
			bus := reg.EnableEvents(4096)
			if *cf.events != "" {
				f, err := os.Create(*cf.events)
				if err != nil {
					return experiments.Options{}, nil, err
				}
				cf.eventsFile = f
				bus.AddSink(obs.NewNDJSONSink(f))
			}
			if *cf.progress {
				bus.AddSink(obs.NewProgressSink(os.Stderr, 0))
			}
		}
		if *cf.telemetryAddr != "" {
			srv, err := reg.ServeTelemetry(*cf.telemetryAddr)
			if err != nil {
				return experiments.Options{}, nil, err
			}
			cf.server = srv
			fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/ (metrics, spans, series, trace, pprof)\n", srv.Addr())
		}
	}
	return opts, reg, nil
}

// emitMetrics finishes the telemetry for a run: it publishes the
// terminal event — campaign.done, or campaign.interrupted when the run
// was cancelled after a durable checkpoint — drains and closes the
// event bus (so the -events NDJSON stream is complete before the file
// is sealed), renders the registry per the flags — the human summary
// to stderr (-metrics), the JSON dump to a file (-metrics-json), the
// Chrome trace to a file (-trace-out) — and finally lets the
// -telemetry-addr endpoint linger for scrapes before shutting it down.
// stdout is never touched, so experiment output stays byte-identical.
func (cf *commonFlags) emitMetrics(reg *obs.Registry, runErr error) error {
	if reg == nil {
		return nil
	}
	if bus := reg.Events(); bus != nil {
		if errors.Is(runErr, platform.ErrInterrupted) {
			bus.Publish("campaign.interrupted", "", -1, 1)
		} else if runErr == nil {
			bus.Publish("campaign.done", "", -1, 1)
		}
		bus.Close()
	}
	if *cf.metrics {
		fmt.Fprint(os.Stderr, reg.Summary())
	}
	if *cf.metricsJSON != "" {
		if err := writeFileWith(*cf.metricsJSON, reg.WriteJSON); err != nil {
			return err
		}
	}
	if *cf.traceOut != "" {
		if err := writeFileWith(*cf.traceOut, reg.WriteTrace); err != nil {
			return err
		}
	}
	if cf.eventsFile != nil {
		if err := cf.eventsFile.Close(); err != nil {
			return err
		}
	}
	if cf.server != nil {
		if *cf.linger > 0 {
			fmt.Fprintf(os.Stderr, "telemetry: lingering %s on http://%s/\n", *cf.linger, cf.server.Addr())
			time.Sleep(*cf.linger)
		}
		cf.server.Close()
	}
	return nil
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func reportCmd(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	cf := addCommonFlags(fs)
	streamed := fs.Bool("stream", false, "assemble the report through the bounded-memory chunked pipeline")
	corpusIn := fs.String("corpus", "", "report over a persisted corpus stream instead of collecting")
	corpusOut := fs.String("corpus-out", "", "persist the corpus to this file while collecting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stopSignals := signalContext()
	defer stopSignals()

	var out string
	var reg *obs.Registry
	var err error
	switch {
	case *cf.resume != "":
		if err := checkResumeFlags(fs); err != nil {
			return err
		}
		if *corpusIn != "" || *corpusOut != "" || *streamed {
			return fmt.Errorf("-resume is incompatible with -corpus, -corpus-out and -stream (the corpus path and assembly come from the manifest)")
		}
		var env *experiments.Env
		env, reg, err = resumeCampaign(ctx, cf)
		if err == nil {
			sp := reg.Span("report")
			out = report.Build(env, report.DefaultConfig()).Render()
			sp.End()
		}
	case *corpusIn != "":
		if *corpusOut != "" {
			return fmt.Errorf("-corpus and -corpus-out are mutually exclusive (the stream already exists)")
		}
		var opts experiments.Options
		opts, reg, err = cf.options()
		if err != nil {
			return err
		}
		out, err = reportFromCorpus(*corpusIn, *cf.corpusFormat, opts, reg)
	case *streamed:
		var opts experiments.Options
		opts, reg, err = cf.options()
		if err != nil {
			return err
		}
		out, err = reportStreamed(ctx, opts, reg, *cf.scale, *corpusOut, *cf.corpusFormat, *cf.ckptEvery)
	default:
		var opts experiments.Options
		opts, reg, err = cf.options()
		if err != nil {
			return err
		}
		seal := func(runErr error) error { return runErr }
		if *corpusOut != "" {
			seal = teeCorpus(*corpusOut, *cf.corpusFormat, &opts, *cf.scale, *cf.ckptEvery)
		}
		var env *experiments.Env
		env, err = experiments.NewEnvCtx(ctx, opts)
		err = seal(err)
		if err == nil {
			sp := reg.Span("report")
			out = report.Build(env, report.DefaultConfig()).Render()
			sp.End()
		}
	}
	if err != nil {
		return finish(cf, reg, err)
	}
	fmt.Println(out)
	return finish(cf, reg, nil)
}

// finish folds telemetry emission into a command's return: the run
// error (nil, interrupted, or failed) picks the terminal event, and an
// emission failure only surfaces when the run itself succeeded.
func finish(cf *commonFlags, reg *obs.Registry, runErr error) error {
	if err := cf.emitMetrics(reg, runErr); runErr == nil {
		runErr = err
	}
	return runErr
}

// fingerprintFromOpts assembles the campaign-identity fingerprint the
// checkpoint manifest pins a partial corpus to.
func fingerprintFromOpts(scale string, opts experiments.Options, format string) checkpoint.Fingerprint {
	return checkpoint.Fingerprint{
		Scale:      scale,
		Seed:       opts.Topo.Seed,
		Tests:      opts.Collect.Tests,
		Shards:     opts.Collect.Shards,
		ChunkTests: opts.Collect.ChunkTests,
		Faults:     opts.Collect.Faults.Name,
		FaultSeed:  opts.Collect.FaultSeed,
		Format:     format,
	}
}

// resumeFlagConflicts returns the campaign-identity flags that were
// explicitly set alongside -resume, in lexical order. Those values are
// pinned by the manifest; repeating them is either redundant or a
// silent request for a different corpus, so both fail fast with every
// offending flag named.
func resumeFlagConflicts(fs *flag.FlagSet) []string {
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "scale", "seed", "tests", "faults", "faultseed", "corpus-format", "chunk-tests":
			bad = append(bad, "-"+f.Name)
		}
	})
	return bad
}

// checkResumeFlags rejects a -resume invocation that also sets
// identity flags.
func checkResumeFlags(fs *flag.FlagSet) error {
	if bad := resumeFlagConflicts(fs); len(bad) > 0 {
		return fmt.Errorf("-resume pins the campaign identity from the manifest; drop the conflicting flag(s): %s",
			strings.Join(bad, ", "))
	}
	return nil
}

// teeCorpus wires -corpus-out through the checkpoint layer: it
// installs opts.CorpusSink so the campaign is persisted chunk by chunk
// into path+".partial" with periodic chunk-boundary checkpoints
// (encode-pipeline drain, fsync, atomic manifest rewrite), and the
// corpus appears at path only through the footer-then-rename in the
// returned seal — so the readable path is always absent, a complete
// prior corpus, or a complete current one.
//
// The seal must be called exactly once with the campaign's error: nil
// publishes atomically and removes the manifest; an interrupt flushes
// a final checkpoint and keeps the partial corpus plus manifest for
// -resume (printing the hint); any other error discards both so the
// first failure propagates with nothing half-written left behind.
func teeCorpus(path, format string, opts *experiments.Options, scale string, every int) func(error) error {
	if format == "" || format == "auto" {
		format = "ndjson"
	}
	var w *checkpoint.Writer
	eopts := *opts
	opts.CorpusSink = func(world *topogen.World) (func(*platform.Chunk) error, error) {
		var err error
		w, err = checkpoint.Create(path, format, export.FromWorld(world, nil).Public,
			export.StreamMeta{Scale: scale, Seed: eopts.Topo.Seed, Tests: eopts.Collect.Tests},
			fingerprintFromOpts(scale, eopts, format), eopts.Workers,
			checkpoint.Options{SyncEveryChunks: every})
		if err != nil {
			return nil, err
		}
		return w.WriteChunk, nil
	}
	return func(runErr error) error {
		if w == nil {
			return runErr // campaign died before the sink was armed
		}
		switch {
		case runErr == nil:
			ft := w.Footer()
			if err := w.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "corpus: wrote %s (%d chunks, %d tests, %d traces)\n",
				path, ft.Chunks, ft.Tests, ft.Traces)
			return nil
		case errors.Is(runErr, platform.ErrInterrupted):
			mpath, err := w.Interrupt()
			if err != nil {
				fmt.Fprintln(os.Stderr, "tputlab: checkpoint flush on interrupt failed:", err)
				return runErr
			}
			d := w.Durable()
			fmt.Fprintf(os.Stderr, "corpus: interrupted with %d chunks (%d tests) durable; continue with:\n  tputlab report -resume %s\n",
				d.Chunks, d.Tests, mpath)
			return runErr
		default:
			w.Discard()
			return runErr
		}
	}
}

// resumeCampaign is `-resume MANIFEST`: it rebuilds the interrupted
// campaign end to end — identity flags adopted from the manifest's
// fingerprint, world regenerated and verified against the recorded
// world hash, the durable corpus prefix replayed off disk into memory,
// collection restarted at the first non-durable chunk with the suffix
// appended to the partial file, and the corpus published atomically on
// completion. The returned Env carries the spliced corpus; inference
// over it is byte-identical to an uninterrupted run. A second
// interrupt mid-resume checkpoints again and keeps the manifest, so
// resume composes with itself.
func resumeCampaign(ctx context.Context, cf *commonFlags) (*experiments.Env, *obs.Registry, error) {
	m, err := checkpoint.LoadManifest(*cf.resume)
	if err != nil {
		return nil, nil, err
	}
	// Adopt the manifest's identity before building Options, so scale
	// defaults, fault profiles and telemetry wiring all flow through the
	// one flag path. Conflicting explicit flags were rejected already.
	fp := m.Fingerprint
	*cf.scale = fp.Scale
	*cf.seed = fp.Seed
	*cf.tests = fp.Tests
	*cf.faults = fp.Faults
	if fp.Faults == "" {
		*cf.faults = "off"
	}
	*cf.faultSeed = fp.FaultSeed
	*cf.chunkTests = fp.ChunkTests
	*cf.corpusFormat = fp.Format
	opts, reg, err := cf.options()
	if err != nil {
		return nil, reg, err
	}
	opts.Collect.Shards = fp.Shards
	opts.Topo.Obs = reg
	opts.Collect.Obs = reg

	fmt.Fprintf(os.Stderr, "resuming campaign from %s: %d of %d tests durable, regenerating world (scale=%s seed=%d)...\n",
		*cf.resume, m.Durable.Tests, fp.Tests, fp.Scale, fp.Seed)
	w, err := topogen.GenerateCtx(ctx, opts.Topo)
	if err != nil {
		return nil, reg, err
	}

	corpus := &platform.Corpus{}
	cw, err := checkpoint.Resume(m, export.FromWorld(w, nil).Public,
		export.StreamMeta{Scale: fp.Scale, Seed: fp.Seed, Tests: opts.Collect.Tests},
		fingerprintFromOpts(fp.Scale, opts, fp.Format), opts.Workers,
		checkpoint.Options{SyncEveryChunks: *cf.ckptEvery},
		func(c *export.StreamChunk) error {
			corpus.Tests = append(corpus.Tests, c.Tests...)
			corpus.Traces = append(corpus.Traces, c.Traces...)
			corpus.TestsWithoutTrace += c.TestsWithoutTrace
			corpus.Completeness.Merge(c.Completeness)
			return nil
		})
	if err != nil {
		return nil, reg, err
	}

	cfg := opts.Collect
	cfg.StartChunk = m.Durable.Chunks
	_, cerr := platform.CollectStreamCtx(ctx, w, cfg, opts.Workers, func(c *platform.Chunk) error {
		if err := cw.WriteChunk(c); err != nil {
			return err
		}
		corpus.Tests = append(corpus.Tests, c.Tests...)
		corpus.Traces = append(corpus.Traces, c.Traces...)
		corpus.TestsWithoutTrace += c.TestsWithoutTrace
		corpus.Completeness.Merge(c.Completeness)
		return nil
	})
	if cerr != nil {
		if errors.Is(cerr, platform.ErrInterrupted) {
			mpath, ierr := cw.Interrupt()
			if ierr != nil {
				fmt.Fprintln(os.Stderr, "tputlab: checkpoint flush on interrupt failed:", ierr)
			} else {
				d := cw.Durable()
				fmt.Fprintf(os.Stderr, "corpus: interrupted with %d chunks (%d tests) durable; continue with:\n  tputlab report -resume %s\n",
					d.Chunks, d.Tests, mpath)
			}
		} else {
			cw.Discard()
		}
		return nil, reg, cerr
	}
	ft := cw.Footer()
	if err := cw.Close(); err != nil {
		return nil, reg, err
	}
	fmt.Fprintf(os.Stderr, "corpus: wrote %s (%d chunks, %d tests, %d traces)\n",
		m.CorpusFinal, ft.Chunks, ft.Tests, ft.Traces)
	return experiments.NewEnvWithCorpus(opts, w, corpus), reg, nil
}

// reportStreamed is `report -stream`: the two-pass chunked assembly
// over a live campaign, with the consumers of each pass fanned out on
// their own goroutines behind bounded channels. Pass 1 re-collects the
// deterministic stream for operator inference while (optionally)
// persisting it to corpusOut; pass 2 replays the identical stream with
// per-test aggregation, trace matching, and the bdrmap border
// accumulator overlapping. Peak memory is a few chunks plus the
// matcher's watermark window; the rendered report is byte-identical to
// the batch path at every -parallel/-pipeline value.
func reportStreamed(ctx context.Context, opts experiments.Options, reg *obs.Registry, scale, corpusOut, corpusFormat string, ckptEvery int) (string, error) {
	opts.Topo.Obs = reg
	opts.Collect.Obs = reg
	w, err := topogen.GenerateCtx(ctx, opts.Topo)
	if err != nil {
		return "", err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	mopts := export.FromWorld(w, nil).Lookups().MapItOpts()
	mopts.Workers = workers
	mopts.Obs = reg
	b := report.NewStreamBuilder(report.DefaultConfig(), report.MetroHourOf(), mopts)

	p1 := []stream.Stage[*platform.Chunk]{{
		Name: "mapit",
		Fn:   func(c *platform.Chunk) error { b.AddTraces(c.Traces); return nil },
	}}
	seal := func(runErr error) error { return runErr }
	if corpusOut != "" {
		eo := opts
		seal = teeCorpus(corpusOut, corpusFormat, &eo, scale, ckptEvery)
		tee, err := eo.CorpusSink(w)
		if err != nil {
			return "", err
		}
		p1 = append(p1, stream.Stage[*platform.Chunk]{Name: "export", Fn: tee})
	}
	pipe := stream.NewPipeline("pass1", pipelineDepth, reg, p1...)
	_, cErr := platform.CollectStreamCtx(ctx, w, opts.Collect, workers, pipe.Send)
	if err := pipe.Close(); cErr == nil {
		cErr = err
	}
	if cErr = seal(cErr); cErr != nil {
		return "", cErr
	}
	inf := b.FinishInference()

	// The border accumulator shares the sealed inference; its result
	// surfaces through gauges only, so stdout stays byte-identical to
	// the batch report.
	acc := bdrmapAccumulator(w, inf, mopts)
	pipe = stream.NewPipeline("pass2", pipelineDepth, reg,
		stream.Stage[*platform.Chunk]{Name: "aggregate",
			Fn: func(c *platform.Chunk) error { b.AddTests(c.Tests); return nil }},
		stream.Stage[*platform.Chunk]{Name: "match",
			Fn: func(c *platform.Chunk) error { b.AddMatch(c.Tests, c.Traces, c.Watermark); return nil }},
		stream.Stage[*platform.Chunk]{Name: "bdrmap",
			Fn: func(c *platform.Chunk) error { acc.Add(c.Traces); return nil }},
	)
	st, cErr := platform.CollectStreamCtx(ctx, w, opts.Collect, workers, pipe.Send)
	if err := pipe.Close(); cErr == nil {
		cErr = err
	}
	if cErr != nil {
		return "", cErr
	}
	if reg != nil {
		reg.Gauge("bdrmap.neighbors").Set(int64(len(acc.Result().Borders)))
	}
	sp := reg.Span("report")
	out := b.Finish(st.Completeness).Render()
	sp.End()
	return out, nil
}

// bdrmapAccumulator arms a border accumulator over the streamed
// campaign's inference from the M-Lab host networks' point of view —
// the VP-side org whose interconnects the paper's border analysis
// cares about.
func bdrmapAccumulator(w *topogen.World, inf *mapit.Inference, mopts mapit.Opts) *bdrmap.BorderAccumulator {
	seen := map[topology.ASN]bool{}
	var org []topology.ASN
	for _, srv := range w.MLabServers() {
		if asn, ok := w.Topo.OriginOf(srv.Endpoint.Addr); ok && !seen[asn] {
			seen[asn] = true
			org = append(org, asn)
		}
	}
	az := bdrmap.NewAnalyzerFromInference(inf, bdrmap.Opts{OrgASNs: org, MapIt: mopts})
	return az.NewBorderAccumulator()
}

// reportFromCorpus is `report -corpus FILE`: the same two-pass chunked
// assembly, but replaying a persisted corpus instead of collecting —
// no world is generated; the header's public bundle supplies the
// MAP-IT lookups, the static metro table supplies local hours, and the
// footer supplies the completeness ledger. The file format is
// auto-detected (NDJSON stream or binary columnar corpus) unless
// corpusFormat names one, in which case that format is required. Chunk
// decoding runs on -parallel workers, and pass 2's consumers overlap
// on a pipeline. Pass 1 only needs traces, so on a columnar corpus it
// opens with a traces-only projection and never parses a test stripe —
// the bulk of the reload win.
func reportFromCorpus(path, corpusFormat string, opts experiments.Options, reg *obs.Registry) (string, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// pass replays the whole corpus, a few decoded chunks resident at a
	// time: onHeader sees the parsed header before any chunk, fn sees
	// every chunk, and the returned reader carries the footer.
	pass := func(proj export.Projection, onHeader func(export.CorpusReader), fn func(*export.StreamChunk) error) (export.CorpusReader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var cr export.CorpusReader
		switch corpusFormat {
		case "ndjson":
			cr, err = export.OpenStreamWorkers(f, workers)
		case "columnar":
			cr, err = export.OpenColumnarProjected(f, workers, proj)
		default: // "" / "auto"
			cr, err = export.OpenCorpusProjected(f, workers, proj)
		}
		if err != nil {
			return nil, err
		}
		defer cr.Close()
		if onHeader != nil {
			onHeader(cr)
		}
		for {
			c, err := cr.Next()
			if err == io.EOF {
				return cr, nil
			}
			if err != nil {
				return nil, err
			}
			if err := fn(c); err != nil {
				return nil, err
			}
		}
	}

	// Pass 1: operator inference, with the builder armed from the
	// header's public bundle (the corpus's replacement for the world).
	var b *report.StreamBuilder
	if _, err := pass(export.Projection{Traces: true}, func(cr export.CorpusReader) {
		mopts := (&export.Dataset{Public: *cr.Public()}).Lookups().MapItOpts()
		mopts.Workers = workers
		mopts.Obs = reg
		b = report.NewStreamBuilder(report.DefaultConfig(), report.MetroHourOf(), mopts)
	}, func(c *export.StreamChunk) error {
		b.AddTraces(c.Traces)
		return nil
	}); err != nil {
		return "", err
	}
	b.FinishInference()

	// Pass 2: per-test aggregation and matching overlap on their own
	// goroutines, then the footer's campaign ledger closes the report.
	pipe := stream.NewPipeline("pass2", pipelineDepth, reg,
		stream.Stage[*export.StreamChunk]{Name: "aggregate",
			Fn: func(c *export.StreamChunk) error { b.AddTests(c.Tests); return nil }},
		stream.Stage[*export.StreamChunk]{Name: "match",
			Fn: func(c *export.StreamChunk) error { b.AddMatch(c.Tests, c.Traces, c.Watermark); return nil }},
	)
	sr, err := pass(export.EverythingProjection(), nil, pipe.Send)
	if cErr := pipe.Close(); err == nil {
		err = cErr
	}
	if err != nil {
		return "", err
	}
	sp := reg.Span("report")
	out := b.Finish(sr.Footer().Completeness).Render()
	sp.End()
	return out, nil
}

func runCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("run requires an experiment name (try 'tputlab list')")
	}
	name := args[0]
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cf := addCommonFlags(fs)
	asJSON := fs.Bool("json", false, "emit the result struct as JSON instead of a table")
	corpusOut := fs.String("corpus-out", "", "persist the corpus to this file while collecting")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	ctx, stopSignals := signalContext()
	defer stopSignals()

	var env *experiments.Env
	var reg *obs.Registry
	start := time.Now()
	if *cf.resume != "" {
		if err := checkResumeFlags(fs); err != nil {
			return err
		}
		if *corpusOut != "" {
			return fmt.Errorf("-resume is incompatible with -corpus-out (the corpus path comes from the manifest)")
		}
		var err error
		env, reg, err = resumeCampaign(ctx, cf)
		if err != nil {
			return finish(cf, reg, err)
		}
	} else {
		opts, r, err := cf.options()
		reg = r
		if err != nil {
			return err
		}
		seal := func(runErr error) error { return runErr }
		if *corpusOut != "" {
			seal = teeCorpus(*corpusOut, *cf.corpusFormat, &opts, *cf.scale, *cf.ckptEvery)
		}
		fmt.Fprintf(os.Stderr, "generating world (scale=%s seed=%d parallel=%d)...\n", *cf.scale, *cf.seed, *cf.workers)
		env, err = experiments.NewEnvCtx(ctx, opts)
		if err = seal(err); err != nil {
			return finish(cf, reg, err)
		}
	}
	fmt.Fprintf(os.Stderr, "world: %s\n", env.World.Topo.CollectStats())
	fmt.Fprintf(os.Stderr, "platforms: %d M-Lab servers, %d Speedtest servers; corpus: %d tests, %d traces (%.1fs)\n",
		len(env.World.MLabServers()), len(env.World.Speedtest),
		len(env.Corpus.Tests), len(env.Corpus.Traces), time.Since(start).Seconds())

	if name == "all" {
		out, stats, err := experiments.RunParallelCtx(ctx, env, *cf.workers)
		fmt.Print(out)
		fmt.Fprint(os.Stderr, stats.Summary())
		return finish(cf, reg, err)
	}
	entry, ok := experiments.Find(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try 'tputlab list')", name)
	}
	sp := reg.Span("experiments")
	child := sp.Child(entry.Name)
	res, err := entry.Run(env)
	child.End()
	sp.End()
	if err != nil {
		return finish(cf, reg, err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		return finish(cf, reg, nil)
	}
	fmt.Println(res.Render())
	return finish(cf, reg, nil)
}
