package obs

import (
	"strings"
	"testing"
)

// TestSamplerAdvanceStampsStepGrid asserts the core cadence contract:
// Advance stamps one sample at every step boundary crossed since the
// previous call, on a fixed simulated-time grid, no matter how the
// watermarks chunk the clock.
func TestSamplerAdvanceStampsStepGrid(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("collect.tests")
	s := r.EnableTimeSeries(60, 0, nil)
	if got := r.TimeSeries(); got != s {
		t.Fatal("TimeSeries did not return the attached sampler")
	}

	c.Add(10)
	s.Advance(59) // before the first boundary: nothing stamped
	if sr := s.Series("collect.tests"); sr != nil {
		t.Fatalf("sample before first boundary: %+v", sr.Points())
	}
	c.Add(5)
	s.Advance(60) // exactly on the boundary
	c.Add(100)
	s.Advance(61)  // same step: no new sample
	s.Advance(350) // jumps steps 120, 180, 240, 300 in one watermark
	c.Add(1)
	s.Finalize(350) // between boundaries: one closing stamp

	pts := s.Series("collect.tests").Points()
	wantMinutes := []int{60, 120, 180, 240, 300, 350}
	if len(pts) != len(wantMinutes) {
		t.Fatalf("points = %+v, want minutes %v", pts, wantMinutes)
	}
	for i, m := range wantMinutes {
		if pts[i].Minute != m {
			t.Errorf("point %d minute = %d, want %d", i, pts[i].Minute, m)
		}
	}
	// Counter samples are cumulative: 15 at minute 60, 115 from 120 on,
	// 116 at the finalize stamp.
	wantValues := []float64{15, 115, 115, 115, 115, 116}
	for i, v := range wantValues {
		if pts[i].Value != v {
			t.Errorf("point %d value = %g, want %g", i, pts[i].Value, v)
		}
	}

	// Regressing watermarks (possible in no case today, but cheap to
	// pin) and a stale Finalize are ignored.
	s.Advance(100)
	s.Finalize(200)
	if got := len(s.Series("collect.tests").Points()); got != len(wantMinutes) {
		t.Errorf("regressing watermark added samples: %d points", got)
	}
}

// TestSamplerDeltasAndWindow asserts the windowed Fig-5-style views:
// Deltas turns a cumulative series into per-step increments and Window
// slices by simulated time.
func TestSamplerDeltasAndWindow(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("collect.tests")
	s := r.EnableTimeSeries(60, 0, nil)
	for i := 1; i <= 4; i++ {
		c.Add(uint64(10 * i)) // 10, 30, 60, 100 cumulative
		s.Advance(60 * i)
	}
	sr := s.Series("collect.tests")
	deltas := sr.Deltas()
	want := []float64{20, 30, 40}
	if len(deltas) != len(want) {
		t.Fatalf("deltas = %+v, want %v", deltas, want)
	}
	for i, v := range want {
		if deltas[i].Value != v || deltas[i].Minute != 60*(i+2) {
			t.Errorf("delta %d = %+v, want {%d %g}", i, deltas[i], 60*(i+2), v)
		}
	}
	win := sr.Window(120, 240)
	if len(win) != 2 || win[0].Minute != 120 || win[1].Minute != 180 {
		t.Errorf("window [120,240) = %+v, want minutes 120,180", win)
	}
}

// TestSamplerRingEviction asserts the bounded-memory contract: a series
// past its capacity drops its oldest points and counts them as evicted.
func TestSamplerRingEviction(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("collect.stream.chunks")
	s := r.EnableTimeSeries(60, 4, nil)
	for i := 1; i <= 10; i++ {
		g.Set(int64(i))
		s.Advance(60 * i)
	}
	sr := s.Series("collect.stream.chunks")
	pts := sr.Points()
	if len(pts) != 4 {
		t.Fatalf("retained = %d points, want 4", len(pts))
	}
	if pts[0].Minute != 420 || pts[3].Minute != 600 {
		t.Errorf("retained window = [%d, %d], want [420, 600]", pts[0].Minute, pts[3].Minute)
	}
	if sr.Evicted() != 6 {
		t.Errorf("evicted = %d, want 6", sr.Evicted())
	}
	dump := s.DumpSeries()["collect.stream.chunks"]
	if dump.Evicted != 6 || dump.Kind != "gauge" || dump.StepMinutes != 60 || len(dump.Points) != 4 {
		t.Errorf("series dump = %+v", dump)
	}
}

// TestSamplerFilterAndKinds asserts the name filter and the per-kind
// sampling semantics (counter and histogram sample cumulative counts,
// gauges sample levels).
func TestSamplerFilterAndKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("collect.tests").Add(7)
	r.Gauge("collect.shard.00.tests").Set(3)
	r.Histogram("resolver.hops", Bounds(4, 8)).Observe(6)
	s := r.EnableTimeSeries(60, 0, func(name string) bool {
		return !strings.HasPrefix(name, "collect.shard.")
	})
	s.Advance(60)
	dump := s.DumpSeries()
	if _, ok := dump["collect.shard.00.tests"]; ok {
		t.Error("filtered name was sampled")
	}
	if d := dump["collect.tests"]; d.Kind != "counter" || d.Points[0].Value != 7 {
		t.Errorf("counter series = %+v", d)
	}
	if d := dump["resolver.hops"]; d.Kind != "histogram" || d.Points[0].Value != 1 {
		t.Errorf("histogram series = %+v", d)
	}
}

// TestSamplerFirstEnableWins pins the CAS attachment contract shared
// with the event bus.
func TestSamplerFirstEnableWins(t *testing.T) {
	r := NewRegistry()
	a := r.EnableTimeSeries(60, 0, nil)
	b := r.EnableTimeSeries(30, 0, nil)
	if a != b {
		t.Error("second EnableTimeSeries returned a different sampler")
	}
	if b.StepMinutes() != 60 {
		t.Errorf("second enable changed the step to %d", b.StepMinutes())
	}
}

// TestSamplerNilDisabled asserts the disabled layer: a nil registry
// yields a nil sampler and every method on it is a safe no-op.
func TestSamplerNilDisabled(t *testing.T) {
	var r *Registry
	if s := r.EnableTimeSeries(60, 0, nil); s != nil {
		t.Fatal("nil registry returned a sampler")
	}
	s := r.TimeSeries()
	s.Advance(120)
	s.Finalize(500)
	if s.Series("x") != nil || s.DumpSeries() != nil || s.StepMinutes() != 0 {
		t.Error("nil sampler not inert")
	}
	if n := testing.AllocsPerRun(100, func() { s.Advance(60) }); n != 0 {
		t.Errorf("disabled Advance allocates %v allocs/op, want 0", n)
	}
}

// TestHistogramQuantile asserts the bucket-interpolation estimator.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", Bounds(10, 20, 40))
	// 10 observations ≤10, 10 in (10,20], none in (20,40], 5 overflow.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	for i := 0; i < 5; i++ {
		h.Observe(100)
	}
	// p50: rank 12.5 of 25 → 2.5 into the (10,20] bucket of mass 10.
	if got := h.Quantile(0.5); got != 12.5 {
		t.Errorf("p50 = %g, want 12.5", got)
	}
	// p20: rank 5 of 25 → halfway up the [0,10] bucket.
	if got := h.Quantile(0.2); got != 5 {
		t.Errorf("p20 = %g, want 5", got)
	}
	// p99: rank 24.75 lands in the overflow bucket → clamped to 40.
	if got := h.Quantile(0.99); got != 40 {
		t.Errorf("p99 = %g, want 40 (overflow clamp)", got)
	}
	// Out-of-range p clamps; empty and nil histograms return 0.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Error("p<0 not clamped")
	}
	empty := r.Histogram("empty", Bounds(1))
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
}

// TestSnapshotPercentiles asserts the dump carries the p50/p90/p99
// estimates and the Summary prints them.
func TestSnapshotPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", Bounds(10, 100))
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	d := r.Snapshot()
	hd := d.Histograms["lat"]
	if hd.P50 != 5 || hd.P90 != 9 || hd.P99 != 9.9 {
		t.Errorf("percentiles = p50=%g p90=%g p99=%g, want 5/9/9.9", hd.P50, hd.P90, hd.P99)
	}
	sum := r.Summary()
	for _, want := range []string{"p50=", "p90=", "p99="} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
