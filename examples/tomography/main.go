// Tomography: demonstrate why the simplified AS-level tomography of
// the M-Lab reports can mislocalize congestion (§3), using a tiny
// hand-built scenario, then show full binary tomography getting it
// right when path data is available.
package main

import (
	"fmt"

	"throughputlab/internal/tomo"
)

func main() {
	// Scenario: server AS S reaches access ASes A and B through transit
	// T (so S and A are NOT directly connected — Assumption 2 fails).
	// The congested link is T→A.
	//
	//      S ──s-t── T ──t-a── A   (t-a congested)
	//                 └──t-b── B
	fmt.Println("scenario: S→T→A (link t-a congested), S→T→B healthy")
	fmt.Println()

	// What the platform sees: end-to-end verdicts per test. (Raw test
	// verdicts are noisy; real pipelines aggregate per path — peak
	// median vs off-peak median — before calling a path "bad". These
	// are the aggregated per-path verdicts.)
	asObs := []tomo.ASObservation{}
	for i := 0; i < 40; i++ {
		asObs = append(asObs, tomo.ASObservation{ServerOrg: "S", ClientOrg: "A", Bad: true})
		asObs = append(asObs, tomo.ASObservation{ServerOrg: "S", ClientOrg: "B", Bad: i%10 == 0})
	}

	fmt.Println("1) simplified AS-level tomography (no path data, M-Lab method):")
	for _, v := range tomo.SimplifiedASLevel(asObs, 0.5, 10) {
		state := "ok"
		if v.Congested {
			state = "CONGESTED"
		}
		fmt.Printf("   %s–%s interconnection: %s (%d/%d bad)\n",
			v.ServerOrg, v.ClientOrg, state, v.BadTests, v.Tests)
	}
	fmt.Println("   → it blames the 'S–A interconnection', a link that does not exist:")
	fmt.Println("     S and A are two AS hops apart. Assumption 2 (§3.1) failed silently.")
	fmt.Println()

	// With traceroute-derived paths, binary tomography can localize.
	// Each client's home network is a pseudo-link so that occasional
	// bad tests on the healthy pair (B's 10%: Wi-Fi trouble) have
	// somewhere to land without framing a backbone link (Assumption 1
	// handled explicitly rather than assumed).
	var obs []tomo.Observation[string]
	for i := 0; i < 40; i++ {
		obs = append(obs, tomo.Observation[string]{
			Links: []string{"s-t", "t-a", fmt.Sprintf("home-a%d", i)}, Bad: true,
		})
		obs = append(obs, tomo.Observation[string]{
			Links: []string{"s-t", "t-b", fmt.Sprintf("home-b%d", i)}, Bad: i%10 == 0,
		})
	}
	fmt.Println("2) binary tomography over link-level paths (Duffield/SCFS):")
	res := tomo.SmallestFailureSet(obs)
	fmt.Printf("   inferred bad links: %v (consistent=%v, unexplained=%d)\n",
		res.Bad, res.Consistent, res.Uncovered)
	fmt.Println("   → with path data, the shared s-t link is exonerated by B's good tests")
	fmt.Println("     and the blame lands on t-a, where the congestion actually is.")
	fmt.Println()
	fmt.Println("Recommendation (§7): every throughput test should carry a traceroute taken")
	fmt.Println("close in time, so exactly this discrimination becomes possible.")
}
