package core

import (
	"math/rand"
	"testing"

	"throughputlab/internal/ndt"
)

// benchSeries builds one dense diurnal series, the shape Detect sees
// per report row on a large campaign.
func benchSeries(n int) *Series {
	rng := rand.New(rand.NewSource(9))
	s := &Series{}
	for i := 0; i < n; i++ {
		s.Add(float64(rng.Intn(24)), &ndt.Test{
			DownMbps:    5 + rng.Float64()*95,
			RTTms:       10 + rng.Float64()*40,
			RetransRate: rng.Float64() * 0.02,
		})
	}
	return s
}

// BenchmarkDetect tracks the report hot path: one verdict over a dense
// series. The quantile step sorts each window once in place instead of
// letting every quantile call copy and re-sort the full sample, so
// allocations stay flat in the window size.
func BenchmarkDetect(b *testing.B) {
	s := benchSeries(20000)
	cfg := DefaultDetector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(s, cfg)
	}
}

// TestDetectAllocsPinned pins the allocation budget of one Detect call:
// building the two windows plus the rank buffers of the significance
// test — no per-quantile copies of the full windows.
func TestDetectAllocsPinned(t *testing.T) {
	s := benchSeries(20000)
	cfg := DefaultDetector()
	allocs := testing.AllocsPerRun(20, func() { Detect(s, cfg) })
	if allocs > 64 {
		t.Fatalf("Detect allocated %.0f objects per run, budget 64", allocs)
	}
}
