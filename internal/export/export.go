// Package export serializes measurement datasets — the public topology
// data (prefix→AS, AS relationships, AS→organization, IXP prefixes)
// plus NDT tests and Paris traceroutes — as JSON, so the stand-alone
// tools (cmd/ndtsim, cmd/mapit, cmd/bdrmap) can interoperate the way
// the real M-Lab/CAIDA pipelines exchange files.
package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"throughputlab/internal/mapit"
	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// PrefixOrigin is one prefix→AS row.
type PrefixOrigin struct {
	Prefix netaddr.Prefix `json:"prefix"`
	ASN    topology.ASN   `json:"asn"`
}

// relRow is one AS-relationship row (rel of B as seen from A).
type relRow struct {
	A   topology.ASN `json:"a"`
	B   topology.ASN `json:"b"`
	Rel string       `json:"rel"`
}

// Public is the CAIDA-style public dataset bundle.
type Public struct {
	Prefixes    []PrefixOrigin   `json:"prefixes"`
	IXPPrefixes []netaddr.Prefix `json:"ixp_prefixes"`
	// Orgs maps organization name → member ASNs (AS→org data).
	Orgs map[string][]topology.ASN `json:"orgs"`
	// Rels holds relationships in wire form.
	Rels []relRow `json:"rels"`
}

// Dataset bundles everything one collection campaign publishes.
type Dataset struct {
	Public Public              `json:"public"`
	Tests  []*ndt.Test         `json:"tests,omitempty"`
	Traces []*traceroute.Trace `json:"traces,omitempty"`
	// TestsWithoutTrace and Completeness carry the corpus bookkeeping a
	// persisted campaign needs for degradation-aware reporting. Both
	// stay zero for datasets written before they existed.
	TestsWithoutTrace int                   `json:"tests_without_trace,omitempty"`
	Completeness      platform.Completeness `json:"completeness,omitzero"`
}

// FromWorld snapshots a world's public data and an optional corpus.
func FromWorld(w *topogen.World, corpus *platform.Corpus) *Dataset {
	d := &Dataset{Public: Public{Orgs: map[string][]topology.ASN{}}}
	w.Topo.Origin.Walk(func(p netaddr.Prefix, asn topology.ASN) bool {
		d.Public.Prefixes = append(d.Public.Prefixes, PrefixOrigin{Prefix: p, ASN: asn})
		return true
	})
	d.Public.IXPPrefixes = append(d.Public.IXPPrefixes, w.Topo.IXPPrefixes...)
	for _, org := range w.Topo.Orgs {
		if len(org.ASNs) > 0 {
			d.Public.Orgs[org.Name] = org.ASNs
		}
	}
	seen := map[[2]topology.ASN]bool{}
	for _, a := range w.Topo.ASNs() {
		for _, b := range w.Topo.Neighbors(a) {
			if seen[[2]topology.ASN{b, a}] || seen[[2]topology.ASN{a, b}] {
				continue
			}
			seen[[2]topology.ASN{a, b}] = true
			d.Public.Rels = append(d.Public.Rels, relRow{A: a, B: b, Rel: w.Topo.RelOf(a, b).String()})
		}
	}
	if corpus != nil {
		d.Tests = corpus.Tests
		d.Traces = corpus.Traces
		d.TestsWithoutTrace = corpus.TestsWithoutTrace
		d.Completeness = corpus.Completeness
	}
	return d
}

// WithTraces returns a copy carrying the given traces (for exporting a
// VP campaign against the same public data). The public tables are
// deep-copied: the copy is an independent dataset, so callers may
// extend or edit its bundle without corrupting the original.
func (d *Dataset) WithTraces(traces []*traceroute.Trace) *Dataset {
	out := *d
	out.Public = d.Public.clone()
	out.Tests = nil
	out.TestsWithoutTrace = 0
	out.Completeness = platform.Completeness{}
	out.Traces = traces
	return &out
}

// clone deep-copies the public bundle's mutable tables.
func (p Public) clone() Public {
	out := p
	out.Prefixes = append([]PrefixOrigin(nil), p.Prefixes...)
	out.IXPPrefixes = append([]netaddr.Prefix(nil), p.IXPPrefixes...)
	out.Rels = append([]relRow(nil), p.Rels...)
	if p.Orgs != nil {
		out.Orgs = make(map[string][]topology.ASN, len(p.Orgs))
		for name, asns := range p.Orgs {
			out.Orgs[name] = append([]topology.ASN(nil), asns...)
		}
	}
	return out
}

// Validate rejects public bundles whose tables are ambiguous: a prefix
// announced with two different origins, or an AS pair carrying
// contradictory relationships (in either row orientation). Lookups
// would otherwise resolve such conflicts silently by whichever row
// happened to come last.
func (p *Public) Validate() error {
	origins := make(map[netaddr.Prefix]topology.ASN, len(p.Prefixes))
	for _, row := range p.Prefixes {
		if prev, dup := origins[row.Prefix]; dup && prev != row.ASN {
			return fmt.Errorf("export: prefix %v announced with conflicting origins AS%d and AS%d",
				row.Prefix, prev, row.ASN)
		}
		origins[row.Prefix] = row.ASN
	}
	rels := make(map[[2]topology.ASN]topology.Rel, 2*len(p.Rels))
	for _, r := range p.Rels {
		rel := parseRel(r.Rel)
		for _, e := range [...]struct {
			k [2]topology.ASN
			v topology.Rel
		}{
			{[2]topology.ASN{r.A, r.B}, rel},
			{[2]topology.ASN{r.B, r.A}, rel.Invert()},
		} {
			if prev, dup := rels[e.k]; dup && prev != e.v {
				return fmt.Errorf("export: AS pair (%d,%d) carries conflicting relationships %v and %v",
					e.k[0], e.k[1], prev, e.v)
			}
			rels[e.k] = e.v
		}
	}
	return nil
}

// Write encodes the dataset as indented JSON (the original single-blob
// format). For corpora too large to hold in memory, use StreamWriter.
func (d *Dataset) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Read decodes a dataset, auto-detecting the format: the original
// single JSON blob, the chunked NDJSON corpus stream, or the binary
// columnar corpus (streams are materialized fully, with the footer's
// completeness ledger folded in). The public bundle is validated
// either way.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if head, err := br.Peek(len(streamMagic)); err == nil && bytes.HasPrefix(head, []byte(streamMagic)) {
		return readStreamAll(br)
	}
	if head, err := br.Peek(len(columnarMagic)); err == nil && string(head) == columnarMagic {
		cr, err := OpenColumnar(br)
		if err != nil {
			return nil, err
		}
		return materializeCorpus(cr)
	}
	var d Dataset
	if err := json.NewDecoder(br).Decode(&d); err != nil {
		return nil, fmt.Errorf("export: decoding dataset: %w", err)
	}
	if err := d.Public.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Lookups builds the runtime lookup structures from the public data.
type Lookups struct {
	Origin *netaddr.Table[topology.ASN]
	ixps   []netaddr.Prefix
	orgOf  map[topology.ASN]string
	rels   map[[2]topology.ASN]topology.Rel
}

// Lookups materializes the dataset's public bundle.
func (d *Dataset) Lookups() *Lookups {
	l := &Lookups{
		Origin: netaddr.NewTable[topology.ASN](),
		orgOf:  map[topology.ASN]string{},
		rels:   map[[2]topology.ASN]topology.Rel{},
	}
	for _, row := range d.Public.Prefixes {
		l.Origin.Insert(row.Prefix, row.ASN)
	}
	l.ixps = d.Public.IXPPrefixes
	for name, asns := range d.Public.Orgs {
		for _, a := range asns {
			l.orgOf[a] = name
		}
	}
	for _, r := range d.Public.Rels {
		rel := parseRel(r.Rel)
		l.rels[[2]topology.ASN{r.A, r.B}] = rel
		l.rels[[2]topology.ASN{r.B, r.A}] = rel.Invert()
	}
	return l
}

func parseRel(s string) topology.Rel {
	switch s {
	case "customer":
		return topology.RelCustomer
	case "provider":
		return topology.RelProvider
	case "peer":
		return topology.RelPeer
	case "sibling":
		return topology.RelSibling
	}
	return topology.RelNone
}

// OriginOf is the prefix→AS lookup.
func (l *Lookups) OriginOf(a netaddr.Addr) (topology.ASN, bool) {
	asn, _, ok := l.Origin.Lookup(a)
	return asn, ok
}

// IsIXP reports whether the address is in an IXP peering LAN.
func (l *Lookups) IsIXP(a netaddr.Addr) bool {
	for _, p := range l.ixps {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// SameOrg reports shared organization membership.
func (l *Lookups) SameOrg(a, b topology.ASN) bool {
	if a == b {
		return true
	}
	oa, ok := l.orgOf[a]
	return ok && oa == l.orgOf[b]
}

// Rel returns the relationship of b as seen from a.
func (l *Lookups) Rel(a, b topology.ASN) topology.Rel {
	return l.rels[[2]topology.ASN{a, b}]
}

// MapItOpts assembles MAP-IT options from the lookups.
func (l *Lookups) MapItOpts() mapit.Opts {
	return mapit.Opts{
		Prefix2AS: l.OriginOf,
		IsIXP:     l.IsIXP,
		SameOrg:   l.SameOrg,
	}
}
