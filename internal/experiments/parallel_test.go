package experiments

import (
	"strings"
	"testing"
	"time"

	"throughputlab/internal/obs"
)

// TestRunParallelGolden asserts the engine's core contract: RunParallel
// output is byte-identical to serial RunAll for every worker count.
func TestRunParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry four times")
	}
	want, err := RunAll(env)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(want) < 1000 {
		t.Fatalf("RunAll output suspiciously small (%d bytes)", len(want))
	}
	for _, workers := range []int{1, 2, 8} {
		got, stats, err := RunParallel(env, workers)
		if err != nil {
			t.Fatalf("RunParallel(%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("RunParallel(%d) output differs from RunAll (%d vs %d bytes)",
				workers, len(got), len(want))
		}
		if stats == nil {
			t.Fatalf("RunParallel(%d): nil stats", workers)
		}
		entries := Registry()
		if len(stats.Experiments) != len(entries) {
			t.Fatalf("RunParallel(%d): %d stats, want %d", workers, len(stats.Experiments), len(entries))
		}
		for i, st := range stats.Experiments {
			if st.Name != entries[i].Name {
				t.Errorf("stats[%d] = %q, want registry order %q", i, st.Name, entries[i].Name)
			}
			if st.Wall <= 0 {
				t.Errorf("experiment %s has non-positive wall time", st.Name)
			}
		}
		if stats.Wall <= 0 {
			t.Errorf("RunParallel(%d): non-positive sweep wall time", workers)
		}
		if s := stats.Summary(); len(s) < 100 {
			t.Errorf("stats summary too short: %q", s)
		}
	}
}

// TestSummaryDeterministicTieBreak pins the Summary ordering contract:
// slowest experiment first, and equal wall times break ties by name so
// two renderings of the same stats are always byte-identical.
func TestSummaryDeterministicTieBreak(t *testing.T) {
	s := &RunStats{
		Workers: 2,
		Wall:    2 * time.Second,
		Experiments: []ExperimentStat{
			{Name: "fig5", Wall: time.Second},
			{Name: "ablation", Wall: time.Second},
			{Name: "table1", Wall: 2 * time.Second},
			{Name: "coverage", Wall: time.Second},
		},
	}
	out := s.Summary()
	want := []string{"table1", "ablation", "coverage", "fig5"}
	pos := make([]int, len(want))
	for i, name := range want {
		pos[i] = strings.Index(out, name)
		if pos[i] < 0 {
			t.Fatalf("summary missing %q:\n%s", name, out)
		}
	}
	for i := 1; i < len(pos); i++ {
		if pos[i] < pos[i-1] {
			t.Errorf("summary order wrong: want %v (slowest first, ties by name), got:\n%s", want, out)
			break
		}
	}
	if s.Summary() != out {
		t.Error("Summary not deterministic across calls")
	}
}

// TestRunParallelGoldenWithObs pins the observability invariance
// guarantee on the experiment sweep: running with a live registry
// attached produces output byte-identical to the uninstrumented serial
// baseline, and the registry ends up holding one child span per
// experiment under the "experiments" phase.
func TestRunParallelGoldenWithObs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry three times")
	}
	want, err := RunAll(env)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	defer func() { env.Opts.Obs = nil }()
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		env.Opts.Obs = reg
		got, stats, err := RunParallel(env, workers)
		if err != nil {
			t.Fatalf("RunParallel(%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("instrumented RunParallel(%d) output differs from RunAll (%d vs %d bytes)",
				workers, len(got), len(want))
		}
		d := reg.Snapshot()
		if len(d.Spans) != 1 || d.Spans[0].Name != "experiments" {
			t.Fatalf("want one experiments root span, got %+v", d.Spans)
		}
		entries := Registry()
		if len(d.Spans[0].Children) != len(entries) {
			t.Fatalf("experiments span has %d children, want %d", len(d.Spans[0].Children), len(entries))
		}
		seen := map[string]bool{}
		for _, c := range d.Spans[0].Children {
			seen[c.Name] = true
		}
		for _, e := range entries {
			if !seen[e.Name] {
				t.Errorf("no span recorded for experiment %q", e.Name)
			}
			if g := reg.Gauge("experiments." + e.Name + ".alloc_bytes"); g.Value() < 0 {
				t.Errorf("negative alloc gauge for %q", e.Name)
			}
		}
		// The stats table is a view over the same registry.
		for _, st := range stats.Experiments {
			if st.Wall <= 0 {
				t.Errorf("experiment %s span recorded no duration", st.Name)
			}
		}
	}
}

// TestRunParallelFullyInstrumented wires the registry the way the CLI
// does — before NewEnv, so world generation, collection, and the
// sub-environments some experiments rebuild are all traced — and runs
// the sweep with several workers. Sub-environment experiments push
// phase spans on the shared registry stack concurrently; under -race
// this asserts that is safe, and the output must still match an
// uninstrumented serial run of the same environment.
func TestRunParallelFullyInstrumented(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an extra world and runs the registry twice")
	}
	reg := obs.NewRegistry()
	opts := QuickOptions()
	opts.Obs = reg
	instrumented, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunAll(instrumented)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	got, _, err := RunParallel(instrumented, 4)
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if got != want {
		t.Errorf("fully instrumented parallel output differs from serial (%d vs %d bytes)",
			len(got), len(want))
	}
	d := reg.Snapshot()
	names := map[string]bool{}
	for _, s := range d.Spans {
		names[s.Name] = true
	}
	for _, wantRoot := range []string{"generate", "collect", "mapit", "match", "experiments"} {
		if !names[wantRoot] {
			t.Errorf("missing root phase span %q (have %+v)", wantRoot, d.Spans)
		}
	}
	if reg.Counter("collect.tests").Value() == 0 {
		t.Error("collect.tests counter empty on instrumented env")
	}
	if reg.Counter("resolver.segment.hits").Value() == 0 {
		t.Error("resolver counters not rebound onto the pipeline registry")
	}
}

// TestNewEnvWorkerIndependence asserts that the worker knob never
// changes the environment: corpus sizes, inference, and matching are
// identical for serial and parallel construction.
func TestNewEnvWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an extra world")
	}
	opts := QuickOptions()
	opts.Collect.Tests = 2000
	serial, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Corpus.Tests) != len(serial.Corpus.Tests) ||
		len(par.Corpus.Traces) != len(serial.Corpus.Traces) ||
		par.Corpus.TestsWithoutTrace != serial.Corpus.TestsWithoutTrace {
		t.Fatalf("corpus differs: %d/%d/%d vs %d/%d/%d",
			len(par.Corpus.Tests), len(par.Corpus.Traces), par.Corpus.TestsWithoutTrace,
			len(serial.Corpus.Tests), len(serial.Corpus.Traces), serial.Corpus.TestsWithoutTrace)
	}
	for i := range serial.Corpus.Tests {
		a, b := serial.Corpus.Tests[i], par.Corpus.Tests[i]
		if a.ClientAddr != b.ClientAddr || a.StartMinute != b.StartMinute || a.DownMbps != b.DownMbps {
			t.Fatalf("test %d differs between worker counts", i)
		}
	}
	if len(par.Inference.Links) != len(serial.Inference.Links) {
		t.Fatalf("inference differs: %d vs %d links",
			len(par.Inference.Links), len(serial.Inference.Links))
	}
	for i := range serial.Inference.Links {
		if par.Inference.Links[i] != serial.Inference.Links[i] {
			t.Fatalf("link %d differs between worker counts", i)
		}
	}
	if par.Matching.Matched() != serial.Matching.Matched() {
		t.Fatalf("matching differs: %d vs %d", par.Matching.Matched(), serial.Matching.Matched())
	}
}
