package main

import (
	"os"
	"path/filepath"
	"testing"

	"throughputlab/internal/export"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/traceroute"
)

func writeCampaign(t *testing.T) string {
	t.Helper()
	w := topogen.MustGenerate(topogen.SmallConfig())
	var vpIdx int
	for i, vp := range w.ArkVPs {
		if vp.Label == "bed-us" {
			vpIdx = i
		}
	}
	traces := platform.Campaign(w, w.ArkVPs[vpIdx].Host.Endpoint,
		platform.RoutedPrefixTargets(w), traceroute.DefaultArtifacts(), 3)
	out := filepath.Join(t.TempDir(), "bed.json")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := export.FromWorld(w, nil).WithTraces(traces).Write(f); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunOverCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	in := writeCampaign(t)
	if err := run(in, "Comcast Cable Communications", 10); err != nil {
		t.Fatalf("bdrmap run: %v", err)
	}
}

func TestRunRequiresOrg(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	in := writeCampaign(t)
	if err := run(in, "", 10); err == nil {
		t.Error("missing org should error")
	}
	if err := run(in, "No Such Org", 10); err == nil {
		t.Error("unknown org should error")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent/x.json", "Comcast Cable Communications", 10); err == nil {
		t.Error("missing file should error")
	}
}
