package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace parses an emitted trace document back into its events.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []traceEvent {
	t.Helper()
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

// TestWriteTraceShape asserts the Chrome trace_event document shape:
// a process_name metadata record, one complete ("X") event per span
// with non-negative microsecond timestamps, and an epoch at the
// earliest root.
func TestWriteTraceShape(t *testing.T) {
	r := NewRegistry()
	gen := r.Span("generate")
	gen.Child("generate.bgp").End()
	gen.End()
	col := r.Span("collect")
	time.Sleep(time.Millisecond)
	col.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, &buf)
	if evs[0].Ph != "M" || evs[0].Name != "process_name" {
		t.Fatalf("first event = %+v, want process_name metadata", evs[0])
	}
	byName := map[string]traceEvent{}
	for _, e := range evs[1:] {
		if e.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative ts/dur: %+v", e.Name, e)
		}
		byName[e.Name] = e
	}
	for _, want := range []string{"generate", "generate.bgp", "collect"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace missing span %q (have %v)", want, byName)
		}
	}
	if byName["generate"].Ts != 0 {
		t.Errorf("earliest root ts = %d, want 0 (epoch)", byName["generate"].Ts)
	}
	if byName["collect"].Ts < byName["generate"].Ts+byName["generate"].Dur {
		t.Error("sequential roots overlap in the trace")
	}
	if byName["collect"].Dur < 1000 {
		t.Errorf("collect dur = %dus, want >= 1000 (slept 1ms)", byName["collect"].Dur)
	}
}

// TestWriteTraceNesting asserts lane assignment: a child contained in
// its parent's interval shares the parent's lane (rendering as
// nesting), while overlapping concurrent children spill to distinct
// lanes so the viewer never sees corrupted nesting.
func TestWriteTraceNesting(t *testing.T) {
	r := NewRegistry()
	root := r.Span("pipeline.pass2")
	a := root.Child("aggregate")
	b := root.Child("match") // overlaps a: concurrent stages
	time.Sleep(time.Millisecond)
	a.End()
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, &buf)[1:]
	byName := map[string]traceEvent{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	rootEv, aEv, bEv := byName["pipeline.pass2"], byName["aggregate"], byName["match"]
	if aEv.Tid == rootEv.Tid && bEv.Tid == rootEv.Tid {
		t.Errorf("overlapping children share the root lane: a=%+v b=%+v", aEv, bEv)
	}
	if aEv.Tid == bEv.Tid {
		t.Errorf("overlapping siblings share lane %d", aEv.Tid)
	}
	// The first child fits on the parent's lane (it starts inside the
	// parent and nothing else occupies it yet).
	if aEv.Tid != rootEv.Tid {
		t.Errorf("first child on lane %d, parent on %d — expected shared", aEv.Tid, rootEv.Tid)
	}
}

// TestWriteTraceNilAndLive asserts a nil registry writes an empty but
// loadable document, and an in-progress span exports with its elapsed
// duration so the live endpoint can serve a mid-campaign trace.
func TestWriteTraceNilAndLive(t *testing.T) {
	var nilReg *Registry
	var buf bytes.Buffer
	if err := nilReg.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if evs := decodeTrace(t, &buf); len(evs) != 1 || evs[0].Ph != "M" {
		t.Errorf("nil registry trace = %+v, want metadata only", evs)
	}

	r := NewRegistry()
	r.Span("running") // never ended
	time.Sleep(time.Millisecond)
	buf.Reset()
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, &buf)
	if len(evs) != 2 || evs[1].Name != "running" {
		t.Fatalf("live trace = %+v", evs)
	}
	if evs[1].Dur < 1000 {
		t.Errorf("in-progress span dur = %dus, want >= 1000 (clamped to now)", evs[1].Dur)
	}
}
