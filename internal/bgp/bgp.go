// Package bgp computes AS-level routes over the topology using the
// standard Gao–Rexford policy model: routes learned from customers are
// preferred over routes from peers, which are preferred over routes
// from providers; ties break on AS-path length, then on lowest next-hop
// ASN (deterministic). Export rules make every path valley-free: a
// customer route is exported to everyone, while peer and provider
// routes are exported only to customers. Sibling links (same
// organization) propagate routes of any class in both directions, with
// the class preserved and the hop counted.
//
// The AS-hop distributions of Figure 1, the interconnection each NDT
// test traverses (Table 2), and the coverage sets of Figures 2–4 are
// all consequences of these routing decisions.
package bgp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"throughputlab/internal/obs"
	"throughputlab/internal/topology"
)

// RouteClass orders route preference (higher is better).
type RouteClass uint8

const (
	// ClassNone means no route.
	ClassNone RouteClass = iota
	// ClassProvider is a route learned from a provider.
	ClassProvider
	// ClassPeer is a route learned from a peer.
	ClassPeer
	// ClassCustomer is a route learned from a customer (or self).
	ClassCustomer
)

// String implements fmt.Stringer.
func (c RouteClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassProvider:
		return "provider"
	case ClassPeer:
		return "peer"
	case ClassCustomer:
		return "customer"
	}
	return fmt.Sprintf("RouteClass(%d)", uint8(c))
}

const maxDist = 64

// Routes holds the computed routing trees: for every destination AS,
// the best next hop from every source AS. Two storage modes share the
// same tree computation:
//
//   - eager (Compute/ComputeWorkers): every destination tree is
//     materialized up front into flat n×n tables. O(n²) memory — the
//     right trade below ~10k ASes, where the whole table is touched.
//   - lazy (ComputeLazy): only the adjacency is built up front; a
//     destination's tree is computed on first use and published via an
//     atomic pointer. NDT campaigns resolve paths toward a few dozen
//     server/client ASes, so at 50k+ ASes this replaces tens of GB of
//     tables with a handful of 450KB trees.
//
// Both modes serve reads through the same accessors and compute each
// tree with the same pure function, so they are observably identical.
type Routes struct {
	topo *topology.Topology
	idx  map[topology.ASN]int
	asns []topology.ASN

	// adjacency, grouped by how routes flow.
	neigh [][]adj

	// eager mode: per destination (first index), per source (second index):
	nextHop [][]int32 // -1 = none/self
	dist    [][]uint8
	class   [][]RouteClass

	// lazy mode: per-destination trees, CAS-published on first use.
	lazy     bool
	trees    []atomic.Pointer[routeTree]
	scratch  sync.Pool // *treeScratch
	computed atomic.Int64
}

// routeTree is one destination's routing tree in lazy mode.
type routeTree struct {
	nextHop []int32
	dist    []uint8
	class   []RouteClass
}

type adj struct {
	j   int32
	rel topology.Rel // relationship of j as seen from i
}

// newRoutes builds the index and adjacency shared by both modes.
func newRoutes(t *topology.Topology) *Routes {
	asns := t.ASNs()
	n := len(asns)
	r := &Routes{
		topo:  t,
		idx:   make(map[topology.ASN]int, n),
		asns:  asns,
		neigh: make([][]adj, n),
	}
	for i, a := range asns {
		r.idx[a] = i
	}
	for i, a := range asns {
		nbs := t.Neighbors(a)
		row := make([]adj, 0, len(nbs))
		for _, b := range nbs {
			j, ok := r.idx[b]
			if !ok {
				continue
			}
			row = append(row, adj{j: int32(j), rel: t.RelOf(a, b)})
		}
		r.neigh[i] = row
	}
	return r
}

// Compute builds routing trees for every AS in the topology.
func Compute(t *topology.Topology) *Routes { return ComputeWorkers(t, 1, nil) }

// ComputeWorkers is Compute with the per-destination tree computation
// fanned out over a worker pool. Every destination's tree is a pure
// function of the (read-only) adjacency, and each worker writes only
// its destination's rows, so the result is byte-identical for every
// worker count and scheduling. sp, when non-nil, receives one child
// span per worker goroutine.
func ComputeWorkers(t *topology.Topology, workers int, sp *obs.Span) *Routes {
	r := newRoutes(t)
	n := len(r.asns)
	r.nextHop = make([][]int32, n)
	r.dist = make([][]uint8, n)
	r.class = make([][]RouteClass, n)
	// One flat backing array per table: row d is the slice [d*n, d*n+n).
	// Same bytes as n separate rows, but 3 allocations instead of 3n,
	// and destination-major locality for the sweep below.
	nhAll := make([]int32, n*n)
	distAll := make([]uint8, n*n)
	classAll := make([]RouteClass, n*n)
	for d := 0; d < n; d++ {
		r.nextHop[d] = nhAll[d*n : (d+1)*n : (d+1)*n]
		r.dist[d] = distAll[d*n : (d+1)*n : (d+1)*n]
		r.class[d] = classAll[d*n : (d+1)*n : (d+1)*n]
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		var sc treeScratch
		for d := 0; d < n; d++ {
			r.computeTree(d, &sc, r.nextHop[d], r.dist[d], r.class[d])
		}
		return r
	}
	// Workers claim destinations in fixed-size batches off a shared
	// cursor; writes are disjoint per destination, so the merge "order"
	// is the array layout itself.
	const batch = 16
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sp.Child(fmt.Sprintf("bgp.worker.%02d", w))
			defer ws.End()
			var sc treeScratch
			for {
				lo := int(next.Add(batch)) - batch
				if lo >= n {
					return
				}
				for d := lo; d < lo+batch && d < n; d++ {
					r.computeTree(d, &sc, r.nextHop[d], r.dist[d], r.class[d])
				}
			}
		}(w)
	}
	wg.Wait()
	return r
}

// ComputeLazy builds only the adjacency; destination trees are computed
// on demand by the accessors and cached. Safe for concurrent use: a tree
// is published with a compare-and-swap, and because computeTree is a
// pure function of the adjacency, racing computations produce identical
// trees and either winner is correct.
func ComputeLazy(t *topology.Topology) *Routes {
	r := newRoutes(t)
	r.lazy = true
	r.trees = make([]atomic.Pointer[routeTree], len(r.asns))
	r.scratch.New = func() any { return new(treeScratch) }
	return r
}

// Lazy reports whether trees are computed on demand.
func (r *Routes) Lazy() bool { return r.lazy }

// ComputedTrees returns the number of destination trees materialized so
// far: n for eager mode, the on-demand count for lazy mode.
func (r *Routes) ComputedTrees() int {
	if !r.lazy {
		return len(r.asns)
	}
	return int(r.computed.Load())
}

// rows returns destination di's next-hop/distance/class rows, computing
// and publishing the tree first in lazy mode.
func (r *Routes) rows(di int) (nh []int32, dist []uint8, class []RouteClass) {
	if !r.lazy {
		return r.nextHop[di], r.dist[di], r.class[di]
	}
	if t := r.trees[di].Load(); t != nil {
		return t.nextHop, t.dist, t.class
	}
	n := len(r.asns)
	t := &routeTree{
		nextHop: make([]int32, n),
		dist:    make([]uint8, n),
		class:   make([]RouteClass, n),
	}
	sc := r.scratch.Get().(*treeScratch)
	r.computeTree(di, sc, t.nextHop, t.dist, t.class)
	r.scratch.Put(sc)
	if r.trees[di].CompareAndSwap(nil, t) {
		r.computed.Add(1)
		return t.nextHop, t.dist, t.class
	}
	w := r.trees[di].Load() // lost the race; the winner's tree is identical
	return w.nextHop, w.dist, w.class
}

// treeScratch is the per-worker reusable state of computeTree: the BFS
// queues, the peer candidate table, and the distance buckets. Reusing
// it across destinations removes the dominant per-tree allocations.
type treeScratch struct {
	queue   []int32
	peer    []cand
	buckets [][]int32
}

// cand is a peer-route candidate (phase 2 of computeTree).
type cand struct {
	dist uint8
	nh   int32
}

// computeTree fills the routing tree for destination index d into the
// caller-supplied rows using the three-phase propagation described in
// the package comment. It is a pure function of the adjacency: it reads
// only immutable state and writes only nh/dist/class, which makes it
// safe for both the eager worker pool and the lazy on-demand path.
func (r *Routes) computeTree(d int, sc *treeScratch, nh []int32, dist []uint8, class []RouteClass) {
	n := len(r.asns)
	for i := range nh {
		nh[i] = -1
		dist[i] = maxDist
		class[i] = ClassNone
	}

	// Phase 1: customer routes. BFS from d across edges that carry an
	// announcement "upward": from a node y to x when y is x's customer
	// or sibling.
	dist[d], class[d] = 0, ClassCustomer
	queue := append(sc.queue[:0], int32(d))
	for qi := 0; qi < len(queue); qi++ {
		y := queue[qi]
		for _, a := range r.neigh[y] {
			// a.rel is the relationship of a.j as seen from y. y exports
			// its customer route to a.j when a.j is y's provider or
			// sibling; a.j then holds a customer-class route (next hop
			// y is its customer / sibling).
			if a.rel != topology.RelProvider && a.rel != topology.RelSibling {
				continue
			}
			x := a.j
			nd := dist[y] + 1
			if class[x] == ClassCustomer && dist[x] <= nd {
				if dist[x] == nd && nh[x] >= 0 && r.asns[y] < r.asns[nh[x]] {
					nh[x] = y // deterministic lowest-ASN tie-break
				}
				continue
			}
			if class[x] == ClassCustomer && dist[x] > nd || class[x] != ClassCustomer {
				class[x], dist[x], nh[x] = ClassCustomer, nd, y
				queue = append(queue, x)
			}
		}
	}

	// Phase 2: peer routes. A node x with no customer route may use a
	// direct peer y that has a customer route (or is d). Then propagate
	// peer-class routes across sibling edges.
	if cap(sc.peer) < n {
		sc.peer = make([]cand, n)
	}
	peer := sc.peer[:n]
	for i := range peer {
		peer[i] = cand{dist: maxDist, nh: -1}
	}
	for x := 0; x < n; x++ {
		for _, a := range r.neigh[x] {
			if a.rel != topology.RelPeer {
				continue
			}
			y := a.j
			if class[y] != ClassCustomer {
				continue
			}
			nd := dist[y] + 1
			if nd < peer[x].dist || (nd == peer[x].dist && peer[x].nh >= 0 && r.asns[y] < r.asns[peer[x].nh]) {
				peer[x] = cand{dist: nd, nh: y}
			}
		}
	}
	// Sibling relay of peer routes (bounded BFS; phase 1 is done with
	// the queue, so its backing array is reused).
	queue = queue[:0]
	for x := 0; x < n; x++ {
		if peer[x].nh >= 0 {
			queue = append(queue, int32(x))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		y := queue[qi]
		for _, a := range r.neigh[y] {
			if a.rel != topology.RelSibling {
				continue
			}
			x := a.j
			nd := peer[y].dist + 1
			if nd < peer[x].dist {
				peer[x] = cand{dist: nd, nh: y}
				queue = append(queue, x)
			}
		}
	}
	for x := 0; x < n; x++ {
		if class[x] == ClassCustomer {
			continue
		}
		if peer[x].nh >= 0 {
			class[x], dist[x], nh[x] = ClassPeer, peer[x].dist, peer[x].nh
		}
	}

	// Phase 3: provider routes. Any node with a route exports it to its
	// customers and siblings. Multi-source shortest path with unit
	// edges and heterogeneous source distances: bucket BFS by distance.
	if sc.buckets == nil {
		sc.buckets = make([][]int32, maxDist+1)
	}
	buckets := sc.buckets
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for x := 0; x < n; x++ {
		if class[x] != ClassNone {
			buckets[dist[x]] = append(buckets[dist[x]], int32(x))
		}
	}
	for dcur := 0; dcur <= maxDist; dcur++ {
		for qi := 0; qi < len(buckets[dcur]); qi++ {
			y := buckets[dcur][qi]
			if int(dist[y]) != dcur {
				continue // stale entry
			}
			if dcur+1 > maxDist {
				continue
			}
			for _, a := range r.neigh[y] {
				// y exports to a.j when a.j is y's customer or sibling.
				if a.rel != topology.RelCustomer && a.rel != topology.RelSibling {
					continue
				}
				x := a.j
				if class[x] == ClassCustomer || class[x] == ClassPeer {
					continue
				}
				nd := uint8(dcur + 1)
				switch {
				case class[x] == ClassNone || dist[x] > nd:
					class[x], dist[x], nh[x] = ClassProvider, nd, y
					buckets[nd] = append(buckets[nd], x)
				case dist[x] == nd && nh[x] >= 0 && r.asns[y] < r.asns[nh[x]]:
					nh[x] = y
				}
			}
		}
	}

	nh[d] = -1
	class[d] = ClassCustomer
	sc.queue = queue[:0]
}

// NextHop returns the next AS from src toward dst. ok is false when src
// has no route (or src == dst).
func (r *Routes) NextHop(src, dst topology.ASN) (topology.ASN, bool) {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 || si == di {
		return 0, false
	}
	row, _, _ := r.rows(di)
	nh := row[si]
	if nh < 0 {
		return 0, false
	}
	return r.asns[nh], true
}

// HasRoute reports whether src can reach dst.
func (r *Routes) HasRoute(src, dst topology.ASN) bool {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 {
		return false
	}
	if si == di {
		return true
	}
	_, _, class := r.rows(di)
	return class[si] != ClassNone
}

// Class returns the route class at src for destination dst.
func (r *Routes) Class(src, dst topology.ASN) RouteClass {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 {
		return ClassNone
	}
	if si == di {
		return ClassCustomer
	}
	_, _, class := r.rows(di)
	return class[si]
}

// PathLen returns the AS-path length (number of AS hops) from src to
// dst; 0 when src == dst, -1 when unreachable.
func (r *Routes) PathLen(src, dst topology.ASN) int {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 {
		return -1
	}
	if si == di {
		return 0
	}
	_, dist, class := r.rows(di)
	if class[si] == ClassNone {
		return -1
	}
	return int(dist[si])
}

// Path returns the AS-level path from src to dst inclusive, or nil when
// unreachable. The result is exactly one allocation: PathLen's distance
// table already knows the hop count, so the walk sizes the slice up
// front and follows the next-hop rows directly instead of re-resolving
// both endpoints through NextHop at every step.
func (r *Routes) Path(src, dst topology.ASN) []topology.ASN {
	return r.AppendPath(nil, src, dst)
}

// AppendPath appends the AS-level path from src to dst inclusive to
// buf and returns the extended slice, or nil when unreachable. A nil
// buf allocates exactly once, pre-sized from the distance table.
func (r *Routes) AppendPath(buf []topology.ASN, src, dst topology.ASN) []topology.ASN {
	si, ok1 := r.idx[src]
	di, ok2 := r.idx[dst]
	if !ok1 || !ok2 {
		return nil
	}
	if si == di {
		return append(buf, src)
	}
	row, dist, class := r.rows(di)
	if class[si] == ClassNone {
		return nil
	}
	if buf == nil {
		buf = make([]topology.ASN, 0, int(dist[si])+1)
	}
	out := append(buf, src)
	for cur := si; cur != di; {
		nh := row[cur]
		if nh < 0 {
			return nil
		}
		out = append(out, r.asns[nh])
		cur = int(nh)
		if len(out) > maxDist {
			return nil // defensive: should be impossible
		}
	}
	return out
}
