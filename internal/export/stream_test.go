package export

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"throughputlab/internal/platform"
)

// writeStreamed persists a campaign through the chunked writer via
// platform.CollectStream and returns the bytes plus the stream stats.
func writeStreamed(t *testing.T, cfg platform.CollectConfig, workers int) (*bytes.Buffer, *platform.StreamStats) {
	t.Helper()
	pub := FromWorld(world, nil).Public
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, pub, StreamMeta{Scale: "small", Seed: cfg.Seed, Tests: cfg.Tests})
	if err != nil {
		t.Fatal(err)
	}
	st, err := platform.CollectStream(world, cfg, workers, sw.WriteChunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, st
}

func streamCfg(tests, chunk int) platform.CollectConfig {
	cfg := platform.DefaultCollect()
	cfg.Tests = tests
	cfg.PerPoolClients = 4
	cfg.ChunkTests = chunk
	return cfg
}

// TestStreamRoundTrip pins the persisted-corpus contract across both
// Read paths: the generic Read (format auto-detection) and the chunked
// StreamReader reproduce the batch corpus record for record, and the
// footer carries the campaign ledger.
func TestStreamRoundTrip(t *testing.T) {
	cfg := streamCfg(400, 64)
	batch, err := platform.Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf, st := writeStreamed(t, cfg, 4)
	raw := buf.Bytes()

	// Path 1: generic Read materializes the stream.
	back, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tests) != len(batch.Tests) || len(back.Traces) != len(batch.Traces) {
		t.Fatalf("stream Read returned %d/%d records, batch has %d/%d",
			len(back.Tests), len(back.Traces), len(batch.Tests), len(batch.Traces))
	}
	for i, tt := range batch.Tests {
		got := back.Tests[i]
		if got.ID != tt.ID || got.ClientAddr != tt.ClientAddr || got.ServerAddr != tt.ServerAddr ||
			got.StartMinute != tt.StartMinute || got.DownMbps != tt.DownMbps || got.RTTms != tt.RTTms {
			t.Fatalf("test %d differs after stream round trip", i)
		}
	}
	if back.TestsWithoutTrace != batch.TestsWithoutTrace {
		t.Errorf("TestsWithoutTrace %d, want %d", back.TestsWithoutTrace, batch.TestsWithoutTrace)
	}
	if back.Completeness != batch.Completeness {
		t.Errorf("Completeness %+v, want %+v", back.Completeness, batch.Completeness)
	}

	// Path 2: chunk-by-chunk replay sees the same totals and watermarks.
	sr, err := OpenStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Meta().Tests != cfg.Tests || sr.Meta().Scale != "small" {
		t.Errorf("meta %+v not preserved", sr.Meta())
	}
	tests, traces, chunks, lastWM := 0, 0, 0, -1
	for {
		c, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if c.Watermark < lastWM {
			t.Fatalf("chunk %d watermark %d regressed below %d", c.Chunk, c.Watermark, lastWM)
		}
		lastWM = c.Watermark
		tests += len(c.Tests)
		traces += len(c.Traces)
		chunks++
	}
	if chunks != st.Chunks || tests != st.Tests || traces != st.Traces {
		t.Fatalf("replay saw %d chunks / %d tests / %d traces, writer recorded %d / %d / %d",
			chunks, tests, traces, st.Chunks, st.Tests, st.Traces)
	}
	if sr.Footer() == nil || sr.Footer().Tests != st.Tests {
		t.Fatal("footer missing or wrong after replay")
	}
}

// TestReadOldFormatStillWorks pins backward compatibility: the original
// single-blob format round-trips through the same Read entry point.
func TestReadOldFormatStillWorks(t *testing.T) {
	corpus := smallCorpus(t)
	d := FromWorld(world, corpus)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tests) != len(d.Tests) || back.Completeness != d.Completeness {
		t.Fatal("old-format round trip lost records or ledger")
	}
}

// TestStreamTruncated rejects a stream whose footer never arrived — the
// signature of a crashed campaign.
func TestStreamTruncated(t *testing.T) {
	buf, _ := writeStreamed(t, streamCfg(200, 50), 2)
	raw := buf.Bytes()
	// Drop the footer line (the last non-empty line).
	cut := bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '\n')
	sr, err := OpenStream(bytes.NewReader(raw[:cut+1]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = sr.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF || err == nil {
		t.Fatal("truncated stream read to completion")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation error not descriptive: %v", err)
	}
}

// TestStreamGarbageChunk rejects a corrupted line with a descriptive
// error instead of silently skipping records.
func TestStreamGarbageChunk(t *testing.T) {
	buf, _ := writeStreamed(t, streamCfg(200, 50), 2)
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("stream too short: %d lines", len(lines))
	}
	lines[2] = []byte(`{"chunk": 1, "tests": [{"broken`)
	sr, err := OpenStream(bytes.NewReader(bytes.Join(lines, []byte("\n"))))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = sr.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF || err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("garbage chunk not rejected descriptively: %v", err)
	}
}

// TestStreamFooterMismatch rejects a footer whose totals contradict the
// chunks actually present.
func TestStreamFooterMismatch(t *testing.T) {
	buf, _ := writeStreamed(t, streamCfg(200, 50), 2)
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	// Delete one mid-stream chunk and renumber nothing: the footer now
	// over-claims. (Removing line 2 also breaks index ordering, which
	// is itself a reportable corruption.)
	mut := append(append([][]byte{}, lines[:2]...), lines[3:]...)
	sr, err := OpenStream(bytes.NewReader(bytes.Join(mut, []byte("\n"))))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = sr.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF || err == nil {
		t.Fatal("stream with missing chunk read to completion")
	}
}

// TestStreamWriterRejectsConflictedPublic refuses to start a stream
// from an ambiguous public bundle.
func TestStreamWriterRejectsConflictedPublic(t *testing.T) {
	pub := FromWorld(world, nil).Public
	pub.Rels = append(pub.Rels, relRow{A: pub.Rels[0].A, B: pub.Rels[0].B, Rel: "sibling"})
	if pub.Rels[0].Rel == "sibling" {
		pub.Rels[len(pub.Rels)-1].Rel = "peer"
	}
	var buf bytes.Buffer
	if _, err := NewStreamWriter(&buf, pub, StreamMeta{}); err == nil {
		t.Fatal("conflicted public bundle accepted")
	}
}
