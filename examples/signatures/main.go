// Signatures: the paper's §6.2 open question — "is there a more direct
// way to identify whether a flow was congested by an already busy link
// or whether the flow itself drove congestion?" — answered with the TCP
// congestion signatures technique of its companion paper [37], on a
// simulated corpus where the ground truth is knowable.
package main

import (
	"fmt"
	"log"

	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/signatures"
	"throughputlab/internal/topogen"
)

func main() {
	world := topogen.MustGenerate(topogen.SmallConfig())
	cfg := platform.DefaultCollect()
	cfg.Tests = 6000
	corpus, err := platform.Collect(world, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Two individual tests, one from each regime.
	var ext, self *ndt.Test
	for _, t := range corpus.Tests {
		if ext == nil && t.TruthSaturated {
			ext = t
		}
		if self == nil && !t.TruthSaturated && t.TruthKind.String() == "access-plan" && t.DownMbps > 10 {
			self = t
		}
		if ext != nil && self != nil {
			break
		}
	}
	if ext == nil || self == nil {
		log.Fatal("corpus lacks one of the regimes")
	}

	show := func(label string, t *ndt.Test) {
		f := signatures.Extract(t)
		fmt.Printf("%s:\n", label)
		fmt.Printf("  %s → %s server, %.1f Mbps\n", t.ClientISP, t.ServerNet, t.DownMbps)
		fmt.Printf("  minRTT %.1f ms, meanRTT %.1f ms → self-inflation %.0f%%; loss %.3f%%\n",
			f.MinRTTms, f.MeanRTTms, 100*f.SelfInflation(), 100*f.LossRate)
		fmt.Printf("  verdict: %v (truth: %v)\n\n",
			signatures.Classify(f, signatures.DefaultConfig()), signatures.Truth(t))
	}
	fmt.Println("Two speed tests with similar-looking 'slow' outcomes can have opposite causes:")
	fmt.Println()
	show("flow crossing an ALREADY-CONGESTED interconnection", ext)
	show("flow that FILLED ITS OWN access bottleneck", self)

	// Corpus-wide evaluation.
	var peak []*ndt.Test
	for _, t := range corpus.Tests {
		h := world.Topo.MustMetro(t.ClientMetro).LocalHour(t.StartMinute)
		if h >= 18 && h < 23 {
			peak = append(peak, t)
		}
	}
	c := signatures.Evaluate(peak, signatures.DefaultConfig())
	fmt.Printf("evaluated %d peak-hour tests: accuracy %.1f%% on the %.0f%% that got a verdict\n",
		c.Total, 100*c.Accuracy(), 100*c.DeterminateFrac())
	fmt.Println()
	fmt.Println("The classifier uses only minRTT, meanRTT and the retransmission rate —")
	fmt.Println("fields NDT already logs. §7 proposes deploying exactly this on M-Lab, so")
	fmt.Println("speed tests could report not just 'how fast' but 'who owned the queue'.")
}
