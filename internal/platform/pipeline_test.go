package platform

import (
	"errors"
	"testing"

	"throughputlab/internal/obs"
)

// TestCollectStreamPipelinedMatchesBatch is the pipelined-production
// determinism pin: chunk-parallel collection with a reorder window
// publishes the byte-identical stream at workers 1/2/8 and at several
// window depths, equal to the batch corpus.
func TestCollectStreamPipelinedMatchesBatch(t *testing.T) {
	base := smallCollect()
	batch, err := Collect(world, base)
	if err != nil {
		t.Fatal(err)
	}
	want := corpusHash(batch)
	for _, workers := range []int{1, 2, 8} {
		for _, window := range []int{1, 3, 16} {
			cfg := base
			cfg.ChunkTests = 97
			cfg.PipelineChunks = window
			c, st := collectViaStream(t, cfg, workers)
			if got := corpusHash(c); got != want {
				t.Errorf("pipelined corpus (workers=%d window=%d) hash %#x, want batch %#x",
					workers, window, got, want)
			}
			if st.Tests != len(batch.Tests) || st.TestsWithoutTrace != batch.TestsWithoutTrace {
				t.Errorf("pipelined stats %d tests / %d missing, want %d / %d",
					st.Tests, st.TestsWithoutTrace, len(batch.Tests), batch.TestsWithoutTrace)
			}
			// The envelope bound: claimed-but-unreleased chunks cannot
			// exceed the reorder window plus the producing workers plus
			// the chunk at the sink.
			if limit := (window + workers + 1) * 97; st.PeakInFlight > limit {
				t.Errorf("pipelined peak in-flight %d exceeds bound %d (workers=%d window=%d)",
					st.PeakInFlight, limit, workers, window)
			}
			if st.PeakInFlight == 0 {
				t.Error("pipelined peak in-flight not recorded")
			}
		}
	}
}

// TestCollectStreamPipelinedUnderFaults extends pipelined parity to a
// heavily faulted campaign: retry-shifted execution minutes, dropped
// rows, truncation and trace perturbation all flow through the
// chunk-parallel path unchanged.
func TestCollectStreamPipelinedUnderFaults(t *testing.T) {
	base := heavyCollect()
	batch, err := Collect(world, base)
	if err != nil {
		t.Fatal(err)
	}
	want := faultedCorpusHash(batch)
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.ChunkTests = 128
		cfg.PipelineChunks = 4
		c, _ := collectViaStream(t, cfg, workers)
		if got := faultedCorpusHash(c); got != want {
			t.Errorf("faulted pipelined corpus (workers=%d) hash %#x, want %#x", workers, got, want)
		}
		if c.Completeness != batch.Completeness {
			t.Errorf("pipelined completeness %+v, want %+v", c.Completeness, batch.Completeness)
		}
	}
}

// TestCollectStreamPipelinedSinkError aborts production on a sink
// failure: the error surfaces, and no chunk after the failing one is
// delivered.
func TestCollectStreamPipelinedSinkError(t *testing.T) {
	boom := errors.New("disk full")
	cfg := smallCollect()
	cfg.ChunkTests = 100
	cfg.PipelineChunks = 4
	lastIndex := -1
	_, err := CollectStream(world, cfg, 4, func(c *Chunk) error {
		if c.Index != lastIndex+1 {
			t.Errorf("chunk %d delivered after %d (out of order)", c.Index, lastIndex)
		}
		lastIndex = c.Index
		if c.Index == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
	if lastIndex != 2 {
		t.Errorf("delivery continued to chunk %d after the failure at 2", lastIndex)
	}
}

// TestCollectStreamPipelinedObs checks the pipelined path reports its
// gauges and keeps the shared collection counters coherent.
func TestCollectStreamPipelinedObs(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallCollect()
	cfg.ChunkTests = 200
	cfg.PipelineChunks = 3
	cfg.Obs = reg
	_, st := collectViaStream(t, cfg, 4)
	if got := reg.Gauge("collect.stream.pipelined").Value(); got != 1 {
		t.Errorf("collect.stream.pipelined = %d, want 1", got)
	}
	if got := reg.Gauge("collect.stream.pipeline_window").Value(); got != 3 {
		t.Errorf("pipeline_window gauge = %d, want 3", got)
	}
	if got := reg.Counter("collect.chunks").Value(); got != uint64(st.Chunks) {
		t.Errorf("collect.chunks = %d, want %d", got, st.Chunks)
	}
	if got := reg.Counter("collect.tests").Value(); got != uint64(st.Tests) {
		t.Errorf("collect.tests = %d, want %d", got, st.Tests)
	}
	if got := reg.Gauge("collect.stream.peak_inflight").Value(); got != int64(st.PeakInFlight) {
		t.Errorf("peak_inflight gauge = %d, want %d", got, st.PeakInFlight)
	}
}
