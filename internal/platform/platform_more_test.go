package platform

import (
	"testing"

	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
)

// TestCollectDeterministic: identical seeds produce identical corpora.
func TestCollectDeterministic(t *testing.T) {
	cfg := smallCollect()
	cfg.Tests = 400
	w1 := topogen.MustGenerate(topogen.SmallConfig())
	w2 := topogen.MustGenerate(topogen.SmallConfig())
	c1, err := Collect(w1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Collect(w2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Tests) != len(c2.Tests) || len(c1.Traces) != len(c2.Traces) {
		t.Fatalf("corpus sizes differ: %d/%d vs %d/%d",
			len(c1.Tests), len(c1.Traces), len(c2.Tests), len(c2.Traces))
	}
	for i := range c1.Tests {
		a, b := c1.Tests[i], c2.Tests[i]
		if a.ClientAddr != b.ClientAddr || a.StartMinute != b.StartMinute ||
			a.DownMbps != b.DownMbps || a.ServerAddr != b.ServerAddr {
			t.Fatalf("test %d differs across identical seeds", i)
		}
	}
}

// TestCollectSeedChangesCorpus: different seeds differ.
func TestCollectSeedChangesCorpus(t *testing.T) {
	cfg := smallCollect()
	cfg.Tests = 300
	c1, _ := Collect(world, cfg)
	cfg.Seed += 17
	c2, _ := Collect(world, cfg)
	same := len(c1.Tests) == len(c2.Tests)
	if same {
		for i := range c1.Tests {
			if c1.Tests[i].ClientAddr != c2.Tests[i].ClientAddr ||
				c1.Tests[i].StartMinute != c2.Tests[i].StartMinute {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

// TestTracesLagTheirTests: every traceroute launches within the
// modeled collector lag of some test to the same client.
func TestTracesLagTheirTests(t *testing.T) {
	cfg := smallCollect()
	cfg.Tests = 400
	corpus, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ s, c uint32 }
	testMinutes := map[key][]int{}
	for _, ts := range corpus.Tests {
		k := key{uint32(ts.ServerAddr), uint32(ts.ClientAddr)}
		testMinutes[k] = append(testMinutes[k], ts.StartMinute)
	}
	for _, tr := range corpus.Traces {
		k := key{uint32(tr.SrcAddr), uint32(tr.DstAddr)}
		ok := false
		for _, m := range testMinutes[k] {
			d := tr.LaunchMinute - m
			if d >= -2 && d <= 10 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("trace at minute %d has no nearby test (pair %v)", tr.LaunchMinute, k)
		}
	}
}

// TestCampaignDeterministic: campaigns repeat exactly for a seed.
func TestCampaignDeterministic(t *testing.T) {
	vp := world.ArkVPs[1]
	targets := HostTargets(world.MLabServers())
	import1 := Campaign(world, vp.Host.Endpoint, targets, DefaultCollect().Artifacts, 42)
	import2 := Campaign(world, vp.Host.Endpoint, targets, DefaultCollect().Artifacts, 42)
	if len(import1) != len(import2) {
		t.Fatal("campaign lengths differ")
	}
	for i := range import1 {
		a, b := import1[i], import2[i]
		if len(a.Hops) != len(b.Hops) {
			t.Fatalf("trace %d hop counts differ", i)
		}
		for j := range a.Hops {
			if a.Hops[j].Addr != b.Hops[j].Addr {
				t.Fatalf("trace %d hop %d differs", i, j)
			}
		}
	}
}

// TestCampaignSkipsSelfTarget: probing one's own address is skipped.
func TestCampaignSkipsSelfTarget(t *testing.T) {
	vp := world.ArkVPs[0]
	traces := Campaign(world, vp.Host.Endpoint,
		[]routing.Endpoint{vp.Host.Endpoint}, DefaultCollect().Artifacts, 1)
	if len(traces) != 0 {
		t.Errorf("self-target produced %d traces", len(traces))
	}
}
