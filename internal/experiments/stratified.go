package experiments

import (
	"fmt"
	"sort"
	"strings"

	"throughputlab/internal/core"
	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
)

// StratifiedRow is one IP-level link's verdict within an AS-level
// aggregate.
type StratifiedRow struct {
	Far     netaddr.Addr
	Metro   string // ground-truth link metro, for the regional reading
	Tests   int
	Verdict core.Verdict
}

// StratifiedGroup is one AS-level aggregate split per IP link.
type StratifiedGroup struct {
	ServerNet, ServerMetro, ClientISP string
	Aggregate                         core.Verdict
	AggregateTests                    int
	Links                             []StratifiedRow
	// Heterogeneous is true when the per-link verdicts disagree —
	// exactly the case where the AS-level aggregate is misleading
	// (§4.3: links "could vary widely in terms of diurnal throughput
	// patterns").
	Heterogeneous bool
}

// StratifiedResult implements the §4.3 Summary's remedy: "separate the
// NDT tests according to the IP link traversed, and evaluate whether
// different IP links comprising an AS-level aggregate do indeed show
// similar behavior" (E19).
type StratifiedResult struct {
	Groups []StratifiedGroup
}

// Stratified re-runs the detector per IP-level interconnection for the
// largest aggregates.
func Stratified(e *Env) *StratifiedResult {
	type gkey struct{ net, metro, isp string }
	groups := map[gkey][]*ndt.Test{}
	for _, t := range e.Corpus.Tests {
		k := gkey{t.ServerNet, t.ServerMetro, t.ClientISP}
		groups[k] = append(groups[k], t)
	}
	keys := make([]gkey, 0, len(groups))
	for k := range groups {
		if len(groups[k]) >= 400 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return len(groups[keys[i]]) > len(groups[keys[j]]) })
	if len(keys) > 8 {
		keys = keys[:8]
	}

	cfg := core.DefaultDetector()
	cfg.MinSamples = 12
	res := &StratifiedResult{}
	for _, k := range keys {
		tests := groups[k]
		g := StratifiedGroup{
			ServerNet: k.net, ServerMetro: k.metro, ClientISP: k.isp,
			AggregateTests: len(tests),
			Aggregate:      core.Detect(core.BuildSeries(tests, e.HourOf), cfg),
		}

		// Split per first-crossing IP link (far interface address).
		perLink := map[netaddr.Addr][]*ndt.Test{}
		for _, t := range tests {
			tr := e.Matching.ByTest[t.ID]
			if tr == nil {
				continue
			}
			links := e.Inference.LinksOf(tr)
			if len(links) == 0 {
				continue
			}
			perLink[links[0].Far] = append(perLink[links[0].Far], t)
		}
		fars := make([]netaddr.Addr, 0, len(perLink))
		for far := range perLink {
			if len(perLink[far]) >= 60 {
				fars = append(fars, far)
			}
		}
		sort.Slice(fars, func(i, j int) bool { return len(perLink[fars[i]]) > len(perLink[fars[j]]) })

		congested, healthy := 0, 0
		for _, far := range fars {
			lt := perLink[far]
			v := core.Detect(core.BuildSeries(lt, e.HourOf), cfg)
			metro := ""
			if ifc := e.World.Topo.IfaceByAddr[far]; ifc != nil && ifc.Link != nil {
				metro = ifc.Link.Metro
			}
			g.Links = append(g.Links, StratifiedRow{
				Far: far, Metro: metro, Tests: len(lt), Verdict: v,
			})
			if v.InsufficientData {
				continue
			}
			if v.Congested {
				congested++
			} else {
				healthy++
			}
		}
		g.Heterogeneous = congested > 0 && healthy > 0
		res.Groups = append(res.Groups, g)
	}
	return res
}

// HeterogeneousCount returns how many aggregates mix congested and
// healthy links.
func (r *StratifiedResult) HeterogeneousCount() int {
	n := 0
	for _, g := range r.Groups {
		if g.Heterogeneous {
			n++
		}
	}
	return n
}

// Render prints per-link verdicts under each aggregate.
func (r *StratifiedResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§4.3 remedy — per-IP-link stratification of AS-level aggregates\n")
	for _, g := range r.Groups {
		state := "uniform"
		if g.Heterogeneous {
			state = "HETEROGENEOUS (aggregation misleads)"
		}
		sb.WriteString(fmt.Sprintf("\n%s/%s → %s: aggregate drop %s over %d tests — %s\n",
			g.ServerNet, g.ServerMetro, g.ClientISP, pct(g.Aggregate.Drop), g.AggregateTests, state))
		var rows [][]string
		for _, l := range g.Links {
			verdict := "insufficient"
			if !l.Verdict.InsufficientData {
				verdict = fmt.Sprintf("drop %s congested=%v", pct(l.Verdict.Drop), l.Verdict.Congested)
			}
			rows = append(rows, []string{l.Far.String(), l.Metro, fmt.Sprintf("%d", l.Tests), verdict})
		}
		sb.WriteString(table([]string{"link (far iface)", "metro", "tests", "verdict"}, rows))
	}
	sb.WriteString(fmt.Sprintf("\n%d of %d aggregates mix congested and healthy IP links.\n",
		r.HeterogeneousCount(), len(r.Groups)))
	return sb.String()
}
