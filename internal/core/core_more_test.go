package core

import (
	"testing"

	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/traceroute"
)

// mkTest builds a minimal synthetic test record for matcher unit tests.
func mkTest(id int, server, client string, minute int) *ndt.Test {
	return &ndt.Test{
		ID:          id,
		ServerAddr:  netaddr.MustParseAddr(server),
		ClientAddr:  netaddr.MustParseAddr(client),
		StartMinute: minute,
	}
}

func mkTrace(server, client string, minute int) *traceroute.Trace {
	return &traceroute.Trace{
		SrcAddr:      netaddr.MustParseAddr(server),
		DstAddr:      netaddr.MustParseAddr(client),
		LaunchMinute: minute,
		Reached:      true,
	}
}

func TestMatchWindowBoundaries(t *testing.T) {
	tests := []*ndt.Test{mkTest(1, "10.0.0.1", "20.0.0.1", 100)}
	cases := []struct {
		launch int
		mode   MatchMode
		want   bool
	}{
		{100, WindowAfter, true},  // exactly at test start
		{110, WindowAfter, true},  // exactly at window edge
		{111, WindowAfter, false}, // one past
		{99, WindowAfter, false},  // before start
		{99, WindowAround, true},  // before start, ± window
		{90, WindowAround, true},  // exactly at lower edge
		{89, WindowAround, false}, // one before lower edge
	}
	for _, c := range cases {
		m := MatchTraces(tests, []*traceroute.Trace{mkTrace("10.0.0.1", "20.0.0.1", c.launch)}, 10, c.mode)
		got := m.ByTest[1] != nil
		if got != c.want {
			t.Errorf("launch %d mode %v: matched=%v, want %v", c.launch, c.mode, got, c.want)
		}
	}
}

func TestMatchWrongEndpointsNeverMatch(t *testing.T) {
	tests := []*ndt.Test{mkTest(1, "10.0.0.1", "20.0.0.1", 100)}
	traces := []*traceroute.Trace{
		mkTrace("10.0.0.2", "20.0.0.1", 101), // wrong server
		mkTrace("10.0.0.1", "20.0.0.2", 101), // wrong client
	}
	m := MatchTraces(tests, traces, 10, WindowAfter)
	if m.Matched() != 0 {
		t.Error("mismatched endpoints matched")
	}
}

func TestMatchEarlierTestClaimsEarlierTrace(t *testing.T) {
	// Two tests to the same client; one trace each. The first test must
	// take the first trace.
	tests := []*ndt.Test{
		mkTest(2, "10.0.0.1", "20.0.0.1", 105), // deliberately out of slice order
		mkTest(1, "10.0.0.1", "20.0.0.1", 100),
	}
	traces := []*traceroute.Trace{
		mkTrace("10.0.0.1", "20.0.0.1", 102),
		mkTrace("10.0.0.1", "20.0.0.1", 107),
	}
	m := MatchTraces(tests, traces, 10, WindowAfter)
	if m.Matched() != 2 {
		t.Fatalf("matched %d of 2", m.Matched())
	}
	if m.ByTest[1].LaunchMinute != 102 || m.ByTest[2].LaunchMinute != 107 {
		t.Errorf("greedy time-order assignment violated: test1→%d test2→%d",
			m.ByTest[1].LaunchMinute, m.ByTest[2].LaunchMinute)
	}
}

func TestMatchEmptyInputs(t *testing.T) {
	m := MatchTraces(nil, nil, 10, WindowAfter)
	if m.Total != 0 || m.Matched() != 0 || m.Rate() != 0 {
		t.Errorf("empty matching = %+v", m)
	}
}

func TestDetectZeroOffMedian(t *testing.T) {
	// All-zero throughput should not divide by zero.
	s := &Series{}
	for h := 0.0; h < 24; h++ {
		for i := 0; i < 40; i++ {
			s.Add(h, &ndt.Test{DownMbps: 0})
		}
	}
	v := Detect(s, DefaultDetector())
	if v.InsufficientData {
		t.Fatal("plenty of samples")
	}
	if v.Drop != 0 || v.MeanDrop != 0 {
		t.Errorf("zero baseline produced drop %v/%v", v.Drop, v.MeanDrop)
	}
}

func TestDetectZeroConfigDefaults(t *testing.T) {
	s := &Series{}
	for h := 0.0; h < 24; h++ {
		for i := 0; i < 40; i++ {
			s.Add(h, &ndt.Test{DownMbps: 50})
		}
	}
	v := Detect(s, DetectorConfig{})
	if v.InsufficientData || v.Congested {
		t.Errorf("flat series misjudged: %+v", v)
	}
}

func TestHopBucketsAccessors(t *testing.T) {
	b := HopBuckets{One: 6, Two: 3, More: 1}
	if b.Total() != 10 {
		t.Errorf("Total = %d", b.Total())
	}
	if b.FracOne() != 0.6 {
		t.Errorf("FracOne = %v", b.FracOne())
	}
	if (HopBuckets{}).FracOne() != 0 {
		t.Error("empty buckets FracOne should be 0")
	}
}

func TestBiasEmptyInput(t *testing.T) {
	rep := Bias(nil, func(*ndt.Test) float64 { return 0 }, 10)
	if rep.NightToEveningRatio != 0 {
		t.Error("empty bias ratio should be 0")
	}
	if len(rep.ThinHours) != 24 {
		t.Errorf("all 24 hours should be thin, got %d", len(rep.ThinHours))
	}
}

func TestThresholdSweepEmptyGroups(t *testing.T) {
	pts := ThresholdSweep(nil, []float64{0.5}, DefaultDetector())
	if len(pts) != 1 || pts[0].TruePos+pts[0].FalsePos+pts[0].TrueNeg+pts[0].FalseNeg+pts[0].Undecided != 0 {
		t.Errorf("empty sweep = %+v", pts)
	}
	if pts[0].Precision() != 0 || pts[0].Recall() != 0 {
		t.Error("empty precision/recall should be 0, not NaN")
	}
}

func TestDetectRequiresSignificance(t *testing.T) {
	// A deep-looking drop built on overlapping noisy samples must not
	// be called congested without statistical significance.
	s := &Series{}
	vals := []float64{5, 80, 6, 75, 7, 70, 8, 85} // wildly mixed
	for h := 0.0; h < 24; h++ {
		for i := 0; i < 5; i++ {
			s.Add(h, &ndt.Test{DownMbps: vals[(int(h)+i)%len(vals)]})
		}
	}
	cfg := DefaultDetector()
	cfg.MinSamples = 10
	v := Detect(s, cfg)
	if v.Congested {
		t.Errorf("indistinguishable distributions flagged congested (p=%.3f drop=%.2f)", v.PValue, v.Drop)
	}
	// A cleanly separated series is both deep and significant.
	s2 := &Series{}
	for h := 0.0; h < 24; h++ {
		val := 50.0
		if h >= 19 && h < 23 {
			val = 1.0
		}
		for i := 0; i < 40; i++ {
			s2.Add(h, &ndt.Test{DownMbps: val + float64(i%5)})
		}
	}
	v2 := Detect(s2, cfg)
	if !v2.Congested || v2.PValue >= 0.05 {
		t.Errorf("separated series not flagged: p=%v drop=%v", v2.PValue, v2.Drop)
	}
}
