package topology

import (
	"testing"

	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
)

func testMetros() []geo.Metro {
	return []geo.Metro{
		{Code: "atl", Name: "Atlanta", Lat: 33.7, Lon: -84.4, UTCOffset: -5, Weight: 1},
		{Code: "nyc", Name: "New York", Lat: 40.7, Lon: -74.0, UTCOffset: -5, Weight: 2},
	}
}

// buildTiny builds a two-AS topology with one interdomain link, used by
// several tests.
func buildTiny(t *testing.T) (*Topology, *Link) {
	t.Helper()
	tp := New(testMetros())
	org1 := &Org{Name: "TransitCo", ASNs: []ASN{100}}
	org2 := &Org{Name: "AccessCo", ASNs: []ASN{200}}
	tp.Orgs = append(tp.Orgs, org1, org2)
	tp.AddAS(&AS{ASN: 100, Name: "TransitCo", Org: org1, Type: ASTypeTransit, Metros: []string{"atl"}})
	tp.AddAS(&AS{ASN: 200, Name: "AccessCo", Org: org2, Type: ASTypeAccess, Metros: []string{"atl"}})
	tp.SetRel(100, 200, RelPeer)

	b1 := tp.AddRouter(100, "atl", RouterBorder, "edge1.Atlanta1")
	b2 := tp.AddRouter(200, "atl", RouterBorder, "bb1.Atlanta")

	p2p := netaddr.MustParsePrefix("4.68.0.0/30")
	tp.Originate(100, netaddr.MustParsePrefix("4.68.0.0/16"))
	link := tp.AddLink(b1, b2, LinkSpec{
		Kind:         LinkInterdomain,
		Metro:        "atl",
		CapacityMbps: 10000,
		BaseUtil:     0.3,
		PeakUtil:     0.7,
		AddrA:        p2p.Nth(1),
		AddrB:        p2p.Nth(2),
		AddrOwnerA:   100,
		AddrOwnerB:   100, // far side numbered out of AS100's space
	})

	pool := netaddr.MustParsePrefix("24.0.0.0/16")
	tp.Originate(200, pool)
	tp.AS(200).ClientPools["atl"] = pool
	return tp, link
}

func TestBuildTinyValid(t *testing.T) {
	tp, _ := buildTiny(t)
	if errs := tp.Validate(); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}

func TestRelSymmetry(t *testing.T) {
	tp, _ := buildTiny(t)
	if tp.RelOf(100, 200) != RelPeer || tp.RelOf(200, 100) != RelPeer {
		t.Error("peer relationship should be symmetric")
	}
	tp.SetRel(100, 200, RelCustomer)
	if tp.RelOf(100, 200) != RelCustomer {
		t.Error("SetRel did not update")
	}
	if tp.RelOf(200, 100) != RelProvider {
		t.Error("inverse relationship should be provider")
	}
	if tp.RelOf(100, 999) != RelNone {
		t.Error("unknown pair should be RelNone")
	}
}

func TestRelInvert(t *testing.T) {
	cases := []struct{ in, want Rel }{
		{RelCustomer, RelProvider},
		{RelProvider, RelCustomer},
		{RelPeer, RelPeer},
		{RelSibling, RelSibling},
		{RelNone, RelNone},
	}
	for _, c := range cases {
		if got := c.in.Invert(); got != c.want {
			t.Errorf("%v.Invert() = %v, want %v", c.in, got, c.want)
		}
	}
	// Invert is an involution.
	for _, r := range []Rel{RelNone, RelCustomer, RelProvider, RelPeer, RelSibling} {
		if r.Invert().Invert() != r {
			t.Errorf("Invert not involutive for %v", r)
		}
	}
}

func TestNeighbors(t *testing.T) {
	tp, _ := buildTiny(t)
	n := tp.Neighbors(100)
	if len(n) != 1 || n[0] != 200 {
		t.Errorf("Neighbors(100) = %v", n)
	}
	if len(tp.Neighbors(999)) != 0 {
		t.Error("unknown AS should have no neighbors")
	}
}

func TestSameOrg(t *testing.T) {
	tp, _ := buildTiny(t)
	org := tp.AS(100).Org
	tp.AddAS(&AS{ASN: 101, Name: "TransitCo-East", Org: org, Type: ASTypeTransit})
	org.ASNs = append(org.ASNs, 101)
	if !tp.SameOrg(100, 101) {
		t.Error("100 and 101 share an org")
	}
	if tp.SameOrg(100, 200) {
		t.Error("100 and 200 do not share an org")
	}
	if tp.SameOrg(100, 999) {
		t.Error("unknown AS never shares an org")
	}
}

func TestOriginLookup(t *testing.T) {
	tp, _ := buildTiny(t)
	asn, ok := tp.OriginOf(netaddr.MustParseAddr("24.0.5.9"))
	if !ok || asn != 200 {
		t.Errorf("OriginOf client addr = (%d, %v)", asn, ok)
	}
	asn, ok = tp.OriginOf(netaddr.MustParseAddr("4.68.0.1"))
	if !ok || asn != 100 {
		t.Errorf("OriginOf p2p addr = (%d, %v), want AS100", asn, ok)
	}
	if _, ok := tp.OriginOf(netaddr.MustParseAddr("99.99.99.99")); ok {
		t.Error("unannounced space should not resolve")
	}
}

func TestIfaceByAddr(t *testing.T) {
	tp, link := buildTiny(t)
	ifc := tp.IfaceByAddr[link.A.Addr]
	if ifc == nil || ifc.Router.AS != 100 {
		t.Fatalf("IfaceByAddr[%v] = %v", link.A.Addr, ifc)
	}
	// The B end is numbered from AS100's space but operated by AS200:
	// the MAP-IT challenge in miniature.
	ifb := tp.IfaceByAddr[link.B.Addr]
	if ifb.Router.AS != 200 {
		t.Errorf("B end operated by %d, want 200", ifb.Router.AS)
	}
	if ifb.AddrOwner != 100 {
		t.Errorf("B end address owner %d, want 100", ifb.AddrOwner)
	}
	origin, _ := tp.OriginOf(ifb.Addr)
	if origin != 100 {
		t.Errorf("public origin of B end = %d; the prefix→AS view disagrees with operation", origin)
	}
}

func TestInterdomainLinksFilter(t *testing.T) {
	tp, link := buildTiny(t)
	all := tp.InterdomainLinks(0, 0)
	if len(all) != 1 || all[0] != link {
		t.Fatalf("InterdomainLinks(0,0) = %v", all)
	}
	if got := tp.InterdomainLinks(200, 100); len(got) != 1 {
		t.Error("filter should be order-insensitive")
	}
	if got := tp.InterdomainLinks(100, 999); len(got) != 0 {
		t.Error("no links to unknown AS")
	}
}

func TestDuplicateASNPanics(t *testing.T) {
	tp, _ := buildTiny(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate ASN should panic")
		}
	}()
	tp.AddAS(&AS{ASN: 100})
}

func TestDuplicateIfaceAddrPanics(t *testing.T) {
	tp, link := buildTiny(t)
	r1 := tp.AddRouter(100, "atl", RouterCore, "core1.Atlanta")
	r2 := tp.AddRouter(100, "atl", RouterCore, "core2.Atlanta")
	defer func() {
		if recover() == nil {
			t.Error("duplicate interface address should panic")
		}
	}()
	tp.AddLink(r1, r2, LinkSpec{
		Kind: LinkIntra, Metro: "atl", CapacityMbps: 1,
		AddrA: link.A.Addr, AddrOwnerA: 100,
	})
}

func TestValidateCatchesBadInterdomainLink(t *testing.T) {
	tp, _ := buildTiny(t)
	// A border-to-border link whose interfaces are numbered from an
	// uninvolved AS must be flagged.
	tp.AddAS(&AS{ASN: 300, Name: "Other", Type: ASTypeStub, Metros: []string{"atl"}})
	tp.SetRel(100, 300, RelCustomer)
	b1 := tp.AddRouter(100, "atl", RouterBorder, "edge2.Atlanta1")
	b3 := tp.AddRouter(300, "atl", RouterBorder, "gw.Other")
	tp.AddLink(b1, b3, LinkSpec{
		Kind: LinkInterdomain, Metro: "atl", CapacityMbps: 1000,
		AddrA: netaddr.MustParseAddr("203.0.113.1"), AddrOwnerA: 555,
		AddrB: netaddr.MustParseAddr("203.0.113.2"), AddrOwnerB: 555,
	})
	errs := tp.Validate()
	if len(errs) == 0 {
		t.Fatal("Validate should flag interfaces numbered from uninvolved AS")
	}
}

func TestValidateCatchesMetroMismatch(t *testing.T) {
	tp, _ := buildTiny(t)
	b1 := tp.AddRouter(100, "atl", RouterBorder, "edge3.Atlanta1")
	b2 := tp.AddRouter(200, "nyc", RouterBorder, "bb2.NewYork")
	tp.AddLink(b1, b2, LinkSpec{
		Kind: LinkInterdomain, Metro: "atl", CapacityMbps: 1000,
		AddrA: netaddr.MustParseAddr("4.68.1.1"), AddrOwnerA: 100,
		AddrB: netaddr.MustParseAddr("4.68.1.2"), AddrOwnerB: 100,
	})
	if errs := tp.Validate(); len(errs) == 0 {
		t.Fatal("Validate should flag interdomain link spanning metros")
	}
}

func TestValidateCatchesAsymmetricRel(t *testing.T) {
	tp, _ := buildTiny(t)
	// Break symmetry by writing the raw map entry.
	tp.rel[[2]ASN{100, 200}] = RelCustomer
	if errs := tp.Validate(); len(errs) == 0 {
		t.Fatal("Validate should flag asymmetric relationships")
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator(netaddr.MustParsePrefix("10.0.0.0/8"))
	p1 := a.MustAlloc(16)
	if p1.String() != "10.0.0.0/16" {
		t.Errorf("first /16 = %v", p1)
	}
	p2 := a.MustAlloc(24)
	if p2.String() != "10.1.0.0/24" {
		t.Errorf("next /24 = %v", p2)
	}
	// A /16 now must skip ahead to alignment.
	p3 := a.MustAlloc(16)
	if p3.String() != "10.2.0.0/16" {
		t.Errorf("aligned /16 = %v", p3)
	}
	if p1.Overlaps(p2) || p2.Overlaps(p3) || p1.Overlaps(p3) {
		t.Error("allocations overlap")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(netaddr.MustParsePrefix("192.0.2.0/24"))
	if _, err := a.Alloc(25); err != nil {
		t.Fatalf("first /25: %v", err)
	}
	if _, err := a.Alloc(25); err != nil {
		t.Fatalf("second /25: %v", err)
	}
	if _, err := a.Alloc(25); err == nil {
		t.Fatal("third /25 should exhaust the /24")
	}
	if _, err := a.Alloc(8); err == nil {
		t.Fatal("allocating larger than pool should fail")
	}
}

func TestAllocatorNoOverlapProperty(t *testing.T) {
	a := NewAllocator(netaddr.MustParsePrefix("10.0.0.0/8"))
	var allocs []netaddr.Prefix
	sizes := []int{30, 24, 16, 30, 20, 28, 18, 30, 31, 32, 12}
	for _, bits := range sizes {
		p := a.MustAlloc(bits)
		for _, q := range allocs {
			if p.Overlaps(q) {
				t.Fatalf("%v overlaps %v", p, q)
			}
		}
		allocs = append(allocs, p)
	}
}

func TestASTypeAndKindStrings(t *testing.T) {
	if ASTypeAccess.String() != "access" || ASTypeIXP.String() != "ixp" {
		t.Error("ASType strings wrong")
	}
	if RouterBorder.String() != "border" {
		t.Error("RouterKind string wrong")
	}
	if RelPeer.String() != "peer" {
		t.Error("Rel string wrong")
	}
	if ASType(99).String() == "" || RouterKind(99).String() == "" || Rel(99).String() == "" {
		t.Error("unknown values should still stringify")
	}
}

func TestMustMetro(t *testing.T) {
	tp, _ := buildTiny(t)
	if m := tp.MustMetro("atl"); m.Code != "atl" {
		t.Errorf("MustMetro = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown metro should panic")
		}
	}()
	tp.MustMetro("zzz")
}

func TestCollectStats(t *testing.T) {
	tp, _ := buildTiny(t)
	s := tp.CollectStats()
	if s.ASes != 2 || s.ByType[ASTypeTransit] != 1 || s.ByType[ASTypeAccess] != 1 {
		t.Errorf("AS stats wrong: %+v", s)
	}
	if s.Routers != 2 || s.ByKind[RouterBorder] != 2 {
		t.Errorf("router stats wrong: %+v", s)
	}
	if s.Links != 1 || s.ByLink[LinkInterdomain] != 1 {
		t.Errorf("link stats wrong: %+v", s)
	}
	if s.SaturatedLinks != 0 {
		t.Errorf("no link saturates in the tiny topology: %+v", s)
	}
	if s.Prefixes != 2 {
		t.Errorf("prefix count %d, want 2", s.Prefixes)
	}
	if s.String() == "" {
		t.Error("banner empty")
	}
}
