package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestBusDeliversInOrder asserts the basic contract: published events
// reach every sink, in order, with dense sequence numbers, and Stats
// accounts for them by kind after Close.
func TestBusDeliversInOrder(t *testing.T) {
	r := NewRegistry()
	bus := r.EnableEvents(64)
	if r.Events() != bus {
		t.Fatal("Events did not return the attached bus")
	}
	var got []Event
	bus.AddSink(func(e Event) { got = append(got, e) })
	bus.Publish("collect.chunk", "", 120, 0)
	bus.Publish("fault.retry", "test_abort", -1, 1)
	bus.Publish("campaign.done", "", -1, 1)
	bus.Close()

	if len(got) != 3 {
		t.Fatalf("delivered %d events, want 3: %+v", len(got), got)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if got[0].Kind != "collect.chunk" || got[0].SimMinute != 120 {
		t.Errorf("first event = %+v", got[0])
	}
	if got[1].Name != "test_abort" || got[1].SimMinute != -1 {
		t.Errorf("second event = %+v", got[1])
	}
	st := bus.Stats()
	if st.Published != 3 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.ByKind["collect.chunk"] != 1 || st.ByKind["fault.retry"] != 1 || st.ByKind["campaign.done"] != 1 {
		t.Errorf("by-kind = %+v", st.ByKind)
	}
}

// TestBusOverflowDrops pins the bounded lossy semantics: with the
// consumer wedged, publishes beyond the buffer are counted as dropped,
// never block, and the drops show as sequence gaps in what is
// delivered.
func TestBusOverflowDrops(t *testing.T) {
	r := NewRegistry()
	bus := r.EnableEvents(4)
	block := make(chan struct{})
	var mu sync.Mutex
	var delivered []uint64
	bus.AddSink(func(e Event) {
		<-block
		mu.Lock()
		delivered = append(delivered, e.Seq)
		mu.Unlock()
	})
	// One event is pulled into the wedged sink, four fill the buffer;
	// everything after that must drop without blocking this goroutine.
	for i := 0; i < 50; i++ {
		bus.Publish("collect.chunk", "", i, int64(i))
	}
	close(block)
	bus.Close()

	st := bus.Stats()
	if st.Published+st.Dropped != 50 {
		t.Fatalf("published %d + dropped %d != 50", st.Published, st.Dropped)
	}
	if st.Dropped == 0 {
		t.Fatal("wedged consumer dropped nothing — Publish must have blocked")
	}
	mu.Lock()
	defer mu.Unlock()
	if uint64(len(delivered)) != st.Published {
		t.Errorf("delivered %d events, stats say %d", len(delivered), st.Published)
	}
	// Delivered seqs are strictly increasing; the gaps are the drops.
	for i := 1; i < len(delivered); i++ {
		if delivered[i] <= delivered[i-1] {
			t.Fatalf("seqs not increasing: %v", delivered)
		}
	}
}

// TestBusPublishAfterCloseSafe asserts a late producer cannot panic the
// bus: Publish after Close counts as dropped.
func TestBusPublishAfterCloseSafe(t *testing.T) {
	r := NewRegistry()
	bus := r.EnableEvents(4)
	bus.Close()
	bus.Close() // double Close is a no-op
	bus.Publish("collect.chunk", "", 0, 0)
	if st := bus.Stats(); st.Dropped != 1 || st.Published != 0 {
		t.Errorf("stats after post-close publish = %+v", st)
	}
}

// TestBusFirstEnableWins pins the CAS attachment contract.
func TestBusFirstEnableWins(t *testing.T) {
	r := NewRegistry()
	a := r.EnableEvents(8)
	b := r.EnableEvents(16)
	if a != b {
		t.Error("second EnableEvents returned a different bus")
	}
	a.Close()
}

// TestNDJSONSink asserts the -events FILE format: one JSON object per
// line with the documented keys, ending with the terminal
// campaign.done event — the shape the CI telemetry smoke validates
// with jq.
func TestNDJSONSink(t *testing.T) {
	r := NewRegistry()
	bus := r.EnableEvents(64)
	var buf bytes.Buffer
	bus.AddSink(NewNDJSONSink(&buf))
	bus.Publish("collect.chunk", "", 60, 0)
	bus.Publish("report.pass", "final", -1, 12)
	bus.Publish("campaign.done", "", -1, 1)
	bus.Close()

	var lines []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d NDJSON lines, want 3", len(lines))
	}
	last := lines[len(lines)-1]
	if last.Kind != "campaign.done" {
		t.Errorf("terminal event kind = %q, want campaign.done", last.Kind)
	}
	if lines[1].Kind != "report.pass" || lines[1].Name != "final" || lines[1].N != 12 {
		t.Errorf("report.pass line = %+v", lines[1])
	}
}

// TestProgressSink asserts the stderr renderer prints terminal events
// unconditionally and stamps simulated-clock events with the sim day.
func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewProgressSink(&buf, 0)
	sink(Event{Seq: 1, Kind: "collect.chunk", SimMinute: 2880, N: 3})
	sink(Event{Seq: 2, Kind: "campaign.done", SimMinute: -1, N: 1})
	out := buf.String()
	if !strings.Contains(out, "collect.chunk") || !strings.Contains(out, "sim day 2.00") {
		t.Errorf("progress output missing chunk line:\n%s", out)
	}
	if !strings.Contains(out, "campaign.done") {
		t.Errorf("progress output missing terminal line:\n%s", out)
	}
}

// TestNilBusDisabled asserts the disabled path end to end: a nil bus
// ignores every call, and the snapshot of a bus-less registry carries
// no events block.
func TestNilBusDisabled(t *testing.T) {
	var r *Registry
	if b := r.EnableEvents(8); b != nil {
		t.Fatal("nil registry returned a bus")
	}
	b := r.Events()
	b.Publish("collect.chunk", "", 0, 0)
	b.AddSink(func(Event) {})
	b.Close()
	if st := b.Stats(); st.Published != 0 || st.Dropped != 0 || st.ByKind != nil {
		t.Errorf("nil bus stats = %+v", st)
	}
	enabled := NewRegistry()
	if d := enabled.Snapshot(); d.Events != nil {
		t.Error("bus-less registry snapshot has an events block")
	}
}
