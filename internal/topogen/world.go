// Package topogen generates the synthetic Internet: it instantiates the
// dataset profiles into a concrete topology (organizations, sibling
// ASNs, routers, interdomain links with metro placement and parallel
// members, IXPs, client pools), computes BGP routes, and places the
// measurement infrastructure (M-Lab sites, Speedtest servers, Ark
// vantage points, content replicas and hosted domains).
//
// Generation is fully deterministic for a given Config.
package topogen

import (
	"math/rand"

	"throughputlab/internal/bgp"
	"throughputlab/internal/datasets"
	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/netsim"
	"throughputlab/internal/obs"
	"throughputlab/internal/routing"
	"throughputlab/internal/topology"
)

// CongestionSpec marks one interconnection as congested (or busy): all
// interdomain links between the transit and the access org in the given
// metro get the specified utilization profile.
type CongestionSpec struct {
	Transit string // transit profile name, e.g. "GTT"
	Access  string // access profile name, e.g. "AT&T"
	Metro   string // "" = all metros of that interconnection
	// BaseUtil/PeakUtil override the healthy defaults; PeakUtil ≥ 1
	// saturates the link at peak hours.
	BaseUtil, PeakUtil float64
	// CapacityMbps optionally overrides capacity (0 keeps default).
	CapacityMbps float64
}

// DefaultCongestion reproduces the paper's Figure 5 case study: the
// GTT–AT&T interconnection in Atlanta saturates at peak (NDT throughput
// collapses below 1 Mbps), while GTT–Comcast stays merely busy. Two
// further congested interconnections add variety for the tomography and
// threshold experiments.
func DefaultCongestion() []CongestionSpec {
	return []CongestionSpec{
		// The M-Lab 2015 update saw AT&T degradation "across measurement
		// points", most notably GTT: saturate the whole GTT-AT&T
		// interconnection (every metro).
		{Transit: "GTT", Access: "AT&T", Metro: "atl", BaseUtil: 0.45, PeakUtil: 1.30, CapacityMbps: 2000},
		{Transit: "GTT", Access: "AT&T", Metro: "", BaseUtil: 0.45, PeakUtil: 1.30, CapacityMbps: 2000},
		{Transit: "GTT", Access: "Comcast", Metro: "atl", BaseUtil: 0.35, PeakUtil: 0.85},
		{Transit: "Cogent", Access: "Verizon", Metro: "nyc", BaseUtil: 0.40, PeakUtil: 1.15, CapacityMbps: 3000},
		{Transit: "Tata", Access: "Time Warner Cable", Metro: "lax", BaseUtil: 0.40, PeakUtil: 1.10, CapacityMbps: 2000},
	}
}

// Scenario returns a named congestion scenario:
//
//   - "paper": DefaultCongestion — the Figure 5 case study plus two
//     more saturated interconnections.
//   - "healthy": no saturated links anywhere (the null hypothesis the
//     detector must not reject).
//   - "widespread": every GTT and Cogent interconnection with the big
//     four access ISPs saturates — the Battle-for-the-Net-era claim of
//     broad transit congestion.
//   - "regional": the paper's [14] regional-effects case — one ISP
//     congested at a single metro only.
//
// Unknown names fall back to "paper".
func Scenario(name string) []CongestionSpec {
	switch name {
	case "healthy":
		return []CongestionSpec{}
	case "widespread":
		var out []CongestionSpec
		for _, tr := range []string{"GTT", "Cogent"} {
			for _, isp := range []string{"Comcast", "AT&T", "Verizon", "Time Warner Cable"} {
				out = append(out, CongestionSpec{
					Transit: tr, Access: isp, Metro: "",
					BaseUtil: 0.45, PeakUtil: 1.2, CapacityMbps: 2500,
				})
			}
		}
		return out
	case "regional":
		return []CongestionSpec{
			{Transit: "Level3", Access: "Comcast", Metro: "chi", BaseUtil: 0.5, PeakUtil: 1.25, CapacityMbps: 2000},
		}
	default:
		return DefaultCongestion()
	}
}

// Config parameterizes generation.
type Config struct {
	Seed  int64
	Scale datasets.ScaleConfig
	// Congestion defaults to DefaultCongestion when nil; pass an empty
	// non-nil slice for a fully healthy Internet.
	Congestion []CongestionSpec
	// NoPTRFrac is the fraction of interfaces without reverse DNS.
	NoPTRFrac float64
	// SpeedtestFactor scales the number of Speedtest servers (§5.4's
	// later snapshot grew the fleet ~1.45x while M-Lab stayed flat).
	SpeedtestFactor float64
	// Workers sets the parallelism of the generation phases that fan
	// out (BGP route computation, DNS naming, validation). Values < 1
	// mean serial. The generated world is byte-identical at any worker
	// count: parallel phases shard deterministically and derive per-shard
	// RNG streams from Seed rather than sharing the master stream.
	Workers int
	// LazyRoutes computes per-destination BGP trees on first use instead
	// of materializing the full n×n tables at generation time. Routing
	// answers are identical either way (bgp.ComputeLazy); only memory
	// and generation time change. Worlds with ≥ lazyRouteThreshold ASes
	// switch to lazy mode regardless, since their eager tables would
	// need tens of GB.
	LazyRoutes bool
	// Obs, when non-nil, receives generation phase spans and
	// produced-entity gauges, and the world's resolver reports its cache
	// counters there. Instrumentation never changes the generated world.
	Obs *obs.Registry
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Scale:           datasets.DefaultScale(),
		NoPTRFrac:       0.12,
		SpeedtestFactor: 1,
	}
}

// SmallConfig returns a reduced configuration for tests and examples.
func SmallConfig() Config {
	return Config{
		Seed:            1,
		Scale:           datasets.SmallScale(),
		NoPTRFrac:       0.12,
		SpeedtestFactor: 1,
	}
}

// Host is a measurement endpoint placed in the topology (server, VP, or
// content replica).
type Host struct {
	Name string
	// Network is the name of the hosting organization.
	Network  string
	Endpoint routing.Endpoint
}

// MLabSite is one M-Lab site: a few NDT servers in one host network and
// metro, like the paper's "atl01 (Level 3)".
type MLabSite struct {
	Name    string // e.g. "atl01.gtt"
	HostNet string // transit profile name
	Metro   string
	Servers []Host
}

// ArkVP is an Ark vantage point inside an access ISP (§5.1).
type ArkVP struct {
	Label string // paper VP label, e.g. "bed-us"
	ISP   string // access profile name
	Host  Host
}

// AccessNet collects the generated footprint of one access ISP.
type AccessNet struct {
	Profile datasets.AccessProfile
	Org     *topology.Org
	// PoolByMetro maps metro → the endpoint template for clients there:
	// ASN (backbone or regional sibling), access router and access
	// line. Client addresses are drawn from the pool prefix.
	PoolByMetro map[string]*PoolInfo
}

// PoolInfo describes one metro's client pool.
type PoolInfo struct {
	ASN        topology.ASN
	Metro      string
	Prefix     netaddr.Prefix
	Router     topology.RouterID
	AccessLine *topology.Link
	// next is the per-pool client address cursor.
	next uint64
}

// World is the generated universe plus derived routing/model state.
type World struct {
	Cfg      Config
	Topo     *topology.Topology
	Routes   *bgp.Routes
	Resolver *routing.Resolver
	Model    *netsim.Model

	MLabSites []MLabSite
	Speedtest []Host
	ArkVPs    []ArkVP

	// ContentReplicas maps content org name → its replicas.
	ContentReplicas map[string][]Host
	// DomainHosts pins hosted (non-CDN) popular domains to a hosting
	// company host.
	DomainHosts map[string]Host
	// Domains is the popular-domain list in effect.
	Domains []datasets.PopularDomain

	// Access maps access ISP name → its generated footprint.
	Access map[string]*AccessNet

	rng *rand.Rand
}

// MLabServers flattens all NDT servers across sites.
func (w *World) MLabServers() []Host {
	var out []Host
	for _, s := range w.MLabSites {
		out = append(out, s.Servers...)
	}
	return out
}

// NewClient draws a fresh client endpoint from the ISP's pool in the
// given metro, advancing the pool's shared cursor. ok is false when
// the ISP has no pool there. NewClient mutates the World and must not
// be called concurrently; pure callers (corpus collection) use
// ClientAt instead.
func (w *World) NewClient(isp, metro string) (routing.Endpoint, bool) {
	an := w.Access[isp]
	if an == nil {
		return routing.Endpoint{}, false
	}
	pi := an.PoolByMetro[metro]
	if pi == nil {
		return routing.Endpoint{}, false
	}
	pi.next++
	return w.clientEndpoint(pi, metro, pi.next), true
}

// ClientAt returns the nth client endpoint of the ISP's pool in the
// given metro without touching the shared pool cursor, so concurrent
// callers are safe and repeated campaigns see identical households.
// ClientAt(isp, metro, 0) equals the first NewClient draw on a fresh
// world.
func (w *World) ClientAt(isp, metro string, n uint64) (routing.Endpoint, bool) {
	an := w.Access[isp]
	if an == nil {
		return routing.Endpoint{}, false
	}
	pi := an.PoolByMetro[metro]
	if pi == nil {
		return routing.Endpoint{}, false
	}
	return w.clientEndpoint(pi, metro, n+1), true
}

// clientEndpoint materializes pool draw number cursor (1-based),
// skipping the network address and wrapping within the pool.
func (w *World) clientEndpoint(pi *PoolInfo, metro string, cursor uint64) routing.Endpoint {
	n := cursor%(pi.Prefix.NumAddrs()-2) + 1
	return routing.Endpoint{
		Addr:       pi.Prefix.Nth(n),
		ASN:        pi.ASN,
		Metro:      metro,
		Router:     pi.Router,
		AccessLine: pi.AccessLine,
	}
}

// ResolveDomain emulates a DNS lookup of a popular domain from a
// resolver in the given metro: CDN-served domains resolve to the
// geographically nearest replica of the serving org; hosted domains
// resolve to their fixed hosting company (§5.1 "the resolved IP
// addresses differ per VP").
func (w *World) ResolveDomain(d datasets.PopularDomain, clientMetro string) (Host, bool) {
	if d.ContentOrg == "" {
		h, ok := w.DomainHosts[d.Name]
		return h, ok
	}
	replicas := w.ContentReplicas[d.ContentOrg]
	if len(replicas) == 0 {
		return Host{}, false
	}
	cm := w.Topo.MustMetro(clientMetro)
	best, bestD := replicas[0], -1.0
	for _, r := range replicas {
		d := geo.DistanceKm(cm, w.Topo.MustMetro(r.Endpoint.Metro))
		if bestD < 0 || d < bestD {
			best, bestD = r, d
		}
	}
	return best, true
}

// NearestMLabSite returns the site with the lowest propagation delay to
// the metro — M-Lab's proximity-based server selection (§2.1). The
// returned slice view of candidate sites within slackMs of the best
// supports the "Battle for the Net" multi-server variant (§2.2).
func (w *World) NearestMLabSite(metro string, slackMs float64) []*MLabSite {
	cm := w.Topo.MustMetro(metro)
	best := -1.0
	dist := make([]float64, len(w.MLabSites))
	for i := range w.MLabSites {
		d := geo.PropagationDelayMs(cm, w.Topo.MustMetro(w.MLabSites[i].Metro))
		dist[i] = d
		if best < 0 || d < best {
			best = d
		}
	}
	var out []*MLabSite
	for i := range w.MLabSites {
		if dist[i] <= best+slackMs {
			out = append(out, &w.MLabSites[i])
		}
	}
	return out
}
