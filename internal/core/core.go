// Package core is the paper's primary contribution turned into a
// library: a rigorous pipeline for inferring interdomain congestion
// from crowdsourced throughput measurements, together with the
// *challenge diagnostics* the paper argues any such analysis must run —
// NDT↔traceroute association (§4.1), AS-adjacency validation of
// Assumption 2 (§4.2), IP-level interconnection diversity behind an
// AS-level aggregate for Assumption 3 (§4.3), and the statistical
// health checks of §6 (time-of-day sample bias, variance, and
// congestion-threshold sensitivity).
package core

import (
	"sort"

	"throughputlab/internal/mapit"
	"throughputlab/internal/ndt"
	"throughputlab/internal/stats"
	"throughputlab/internal/traceroute"
)

// ---- §4.1: associating NDT tests with Paris traceroutes ----

// MatchMode selects the association window shape.
type MatchMode int

const (
	// WindowAfter matches the first traceroute launched within the
	// window AFTER the test (the paper's primary method: 71%).
	WindowAfter MatchMode = iota
	// WindowAround also accepts traceroutes shortly before the test
	// (the relaxed method: 87%).
	WindowAround
)

// PairDegraded reports whether a matched (test, trace) pair is unfit
// for path-sensitive analysis: the trace was maimed by the fault layer,
// or the test record is a truncated transfer whose web100 snapshot is
// incomplete. Clean campaigns never produce such pairs, so degradation
// awareness costs them nothing.
func PairDegraded(t *ndt.Test, tr *traceroute.Trace) bool {
	if tr != nil && tr.Degraded {
		return true
	}
	return t != nil && (t.Truncated || !t.Web100.Complete())
}

// Matching is the result of associating tests with traceroutes.
type Matching struct {
	// ByTest maps test ID → its associated traceroute.
	ByTest map[int]*traceroute.Trace
	// Total is the number of tests considered.
	Total int
	// Degraded counts matched pairs that PairDegraded rejects:
	// associated, but unusable for path-sensitive analysis. Always 0 on
	// clean corpora.
	Degraded int
}

// Matched returns the number of associated tests.
func (m *Matching) Matched() int { return len(m.ByTest) }

// Rate returns the matched fraction.
func (m *Matching) Rate() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Matched()) / float64(m.Total)
}

// MatchTraces associates each NDT test with a server-to-client Paris
// traceroute, since the platform does not record the association
// explicitly (§4.1): the first trace from the same server host to the
// same client within windowMin minutes of the test. Each traceroute is
// consumed by at most one test.
func MatchTraces(tests []*ndt.Test, traces []*traceroute.Trace, windowMin int, mode MatchMode) *Matching {
	type key struct {
		src, dst uint32
	}
	byPair := map[key][]*traceroute.Trace{}
	for _, tr := range traces {
		k := key{uint32(tr.SrcAddr), uint32(tr.DstAddr)}
		byPair[k] = append(byPair[k], tr)
	}
	for _, list := range byPair {
		// Stable: traces sharing a launch minute keep publication order,
		// so batch and streamed matching agree on tie-breaks.
		sort.SliceStable(list, func(i, j int) bool { return list[i].LaunchMinute < list[j].LaunchMinute })
	}

	used := map[*traceroute.Trace]bool{}
	m := &Matching{ByTest: map[int]*traceroute.Trace{}, Total: len(tests)}
	// Process tests in time order so earlier tests claim earlier
	// traceroutes.
	ordered := append([]*ndt.Test(nil), tests...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].StartMinute < ordered[j].StartMinute })
	for _, t := range ordered {
		k := key{uint32(t.ServerAddr), uint32(t.ClientAddr)}
		lo := t.StartMinute
		if mode == WindowAround {
			lo = t.StartMinute - windowMin
		}
		hi := t.StartMinute + windowMin
		list := byPair[k]
		// Binary-search the window's lower bound instead of scanning
		// the pair's whole history; the tie-break stays "first trace at
		// or after lo, each trace consumed at most once".
		for i := sort.Search(len(list), func(i int) bool {
			return list[i].LaunchMinute >= lo
		}); i < len(list); i++ {
			tr := list[i]
			if used[tr] {
				continue
			}
			if tr.LaunchMinute > hi {
				break
			}
			used[tr] = true
			m.ByTest[t.ID] = tr
			if PairDegraded(t, tr) {
				m.Degraded++
			}
			break
		}
	}
	return m
}

// ---- §2.2 / Figure 5: diurnal aggregation ----

// Series is the hour-of-day aggregation of one test group — the data
// behind each Figure 5 panel.
type Series struct {
	Throughput stats.HourBins
	RTT        stats.HourBins
	Retrans    stats.HourBins
}

// Add records one test at the given local hour.
func (s *Series) Add(localHour float64, t *ndt.Test) {
	s.Throughput.Add(localHour, t.DownMbps)
	s.RTT.Add(localHour, t.RTTms)
	s.Retrans.Add(localHour, t.RetransRate)
}

// BuildSeries aggregates tests into a Series; hourOf supplies the
// client-local hour of each test.
func BuildSeries(tests []*ndt.Test, hourOf func(*ndt.Test) float64) *Series {
	s := &Series{}
	for _, t := range tests {
		s.Add(hourOf(t), t)
	}
	return s
}

// ---- §6.2: congestion detection and its threshold problem ----

// DetectorConfig parameterizes the peak/off-peak comparison.
type DetectorConfig struct {
	// PeakHours and OffHours are local hour bins (defaults 19–23 and
	// 8–14).
	PeakHours, OffHours []int
	// DropThreshold is the relative median drop treated as evidence of
	// congestion (the §6.2 open question is precisely how to pick it).
	DropThreshold float64
	// MinSamples is the minimum per-window sample count before any
	// verdict is issued (§6.1's statistical validity guard).
	MinSamples int
}

// DefaultDetector returns the configuration used by the experiments.
func DefaultDetector() DetectorConfig {
	return DetectorConfig{
		PeakHours:     []int{19, 20, 21, 22, 23},
		OffHours:      []int{8, 9, 10, 11, 12, 13, 14},
		DropThreshold: 0.4,
		MinSamples:    30,
	}
}

// Verdict is the detector's output for one test group.
type Verdict struct {
	PeakMedian, OffMedian float64
	// PeakMean and OffMean support the Figure 5 style of reporting:
	// a busy shared medium dips the mean (high tiers get clipped) while
	// barely moving the median.
	PeakMean, OffMean float64
	// Drop is 1 - peak/off medians (0 when off-peak median is 0).
	Drop float64
	// MeanDrop is 1 - peak/off means.
	MeanDrop float64
	// PeakCV is the coefficient of variation at peak: near-zero CV with
	// a deep drop is the saturation signature of Figure 5a; a shallow
	// drop with high CV is the busy-but-fine regime of Figure 5b.
	PeakCV float64
	// PValue is the two-sided Mann–Whitney U p-value for peak vs
	// off-peak throughput samples — §6's demand that the comparison be
	// statistically significant, not just visually diurnal. A Congested
	// verdict requires both the drop threshold and significance.
	PValue float64
	// Samples in each window.
	PeakN, OffN int
	// Congested is the binary verdict.
	Congested bool
	// InsufficientData is set when either window misses MinSamples; no
	// Congested verdict is issued then.
	InsufficientData bool
}

// Detect compares peak and off-peak throughput for one series.
func Detect(s *Series, cfg DetectorConfig) Verdict {
	if len(cfg.PeakHours) == 0 {
		cfg = DefaultDetector()
	}
	var peak, off []float64
	for _, h := range cfg.PeakHours {
		peak = append(peak, s.Throughput.Bin(h)...)
	}
	for _, h := range cfg.OffHours {
		off = append(off, s.Throughput.Bin(h)...)
	}
	v := Verdict{PeakN: len(peak), OffN: len(off)}
	if len(peak) < cfg.MinSamples || len(off) < cfg.MinSamples {
		v.InsufficientData = true
		return v
	}
	// Moments first: Summarize folds the samples in bin order, and the
	// float summation order must not depend on the sort below.
	sum := stats.Summarize(peak)
	offSum := stats.Summarize(off)
	// Sort each window once and take quantiles of the sorted data, rather
	// than letting every quantile call copy and re-sort (the windows are
	// freshly built above, so sorting in place is safe).
	sort.Float64s(peak)
	sort.Float64s(off)
	v.PeakMedian = stats.QuantilesSorted(peak, 0.5)[0]
	v.OffMedian = stats.QuantilesSorted(off, 0.5)[0]
	if v.OffMedian > 0 {
		v.Drop = 1 - v.PeakMedian/v.OffMedian
	}
	v.PeakMean, v.OffMean = sum.Mean, offSum.Mean
	if v.OffMean > 0 {
		v.MeanDrop = 1 - v.PeakMean/v.OffMean
	}
	if sum.Mean > 0 {
		v.PeakCV = sum.Stddev / sum.Mean
	}
	_, v.PValue = stats.MannWhitneyU(peak, off)
	v.Congested = v.Drop >= cfg.DropThreshold && v.PValue < 0.05
	return v
}

// ---- §4.2: Assumption 2 — AS hops between server and client ----

// HopBuckets is the Figure 1 row for one client ISP: the number of
// matched tests whose org-collapsed AS path from server to client has
// 1, 2, or more hops.
type HopBuckets struct {
	One, Two, More int
}

// Total returns the number of bucketed tests.
func (h HopBuckets) Total() int { return h.One + h.Two + h.More }

// FracOne returns the one-hop fraction (0 for empty).
func (h HopBuckets) FracOne() float64 {
	if h.Total() == 0 {
		return 0
	}
	return float64(h.One) / float64(h.Total())
}

// ASHopDistribution buckets matched tests by AS hop count between the
// server and client organizations, keyed by a caller-supplied group
// label (Figure 1 groups by client ISP). Tests without a matched trace,
// degraded pairs (a maimed trace's hop count would be an artifact of
// probe loss, not topology), or traces yielding fewer than two org hops
// are skipped.
func ASHopDistribution(tests []*ndt.Test, m *Matching, inf *mapit.Inference,
	groupOf func(*ndt.Test) string) map[string]*HopBuckets {

	out := map[string]*HopBuckets{}
	for _, t := range tests {
		tr := m.ByTest[t.ID]
		if tr == nil || PairDegraded(t, tr) {
			continue
		}
		path := inf.ASPathOf(tr)
		if len(path) < 2 {
			continue
		}
		g := groupOf(t)
		b := out[g]
		if b == nil {
			b = &HopBuckets{}
			out[g] = b
		}
		switch hops := len(path) - 1; {
		case hops == 1:
			b.One++
		case hops == 2:
			b.Two++
		default:
			b.More++
		}
	}
	return out
}

// ---- §4.3: Assumption 3 — IP-level link diversity ----

// LinkUse counts the tests that crossed one inferred IP-level
// interdomain link.
type LinkUse struct {
	Link  mapit.Link
	Tests int
}

// LinkDiversity groups matched tests by a caller-supplied label
// (Table 2 uses the client ASN as seen by the inference) and, within
// each group, counts tests per distinct IP-level interdomain link
// crossed. A link is identified by its FAR interface address — the
// neighbor's ingress, which names the physical link uniquely — since
// third-party replies make the near-side address unstable across
// traces. An optional keepLink filter restricts which inferred links
// count (Table 2 keeps only links between the server org and the
// client org). Results per group are sorted by descending test count.
func LinkDiversity(tests []*ndt.Test, m *Matching, inf *mapit.Inference,
	groupOf func(t *ndt.Test, tr *traceroute.Trace) (string, bool),
	keepLink func(mapit.Link) bool) map[string][]LinkUse {

	agg := map[string]map[uint32]*LinkUse{}
	for _, t := range tests {
		tr := m.ByTest[t.ID]
		// Degraded pairs are excluded: a rate-limited trace joins hops
		// across the suppressed run, manufacturing interdomain crossings
		// that do not exist.
		if tr == nil || PairDegraded(t, tr) {
			continue
		}
		g, ok := groupOf(t, tr)
		if !ok {
			continue
		}
		links := inf.LinksOf(tr)
		if len(links) == 0 {
			continue
		}
		byLink := agg[g]
		if byLink == nil {
			byLink = map[uint32]*LinkUse{}
			agg[g] = byLink
		}
		for _, l := range links {
			if keepLink != nil && !keepLink(l) {
				continue
			}
			k := uint32(l.Far)
			u := byLink[k]
			if u == nil {
				u = &LinkUse{Link: l}
				byLink[k] = u
			}
			u.Tests++
		}
	}
	out := map[string][]LinkUse{}
	for g, byLink := range agg {
		var list []LinkUse
		for _, u := range byLink {
			list = append(list, *u)
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Tests != list[j].Tests {
				return list[i].Tests > list[j].Tests
			}
			if list[i].Link.Near != list[j].Link.Near {
				return list[i].Link.Near < list[j].Link.Near
			}
			return list[i].Link.Far < list[j].Link.Far
		})
		out[g] = list
	}
	return out
}

// ---- §6.1: crowdsourcing bias diagnostics ----

// BiasReport summarizes the statistical health of one test group.
type BiasReport struct {
	// NightToEveningRatio compares 3–6am to 19–22 sample counts; values
	// far below 1 mean off-peak verdicts rest on few samples.
	NightToEveningRatio float64
	// MaxHourCV is the largest per-hour coefficient of variation —
	// service-plan and home-network variance surfaces here.
	MaxHourCV float64
	// TestsPerClientP90 is the 90th percentile of per-client test
	// counts; crowdsourced clients typically contribute only one or a
	// few samples.
	TestsPerClientP90 float64
	// ThinHours lists local hours with fewer than minSamples tests.
	ThinHours []int
}

// Bias computes the §6.1 diagnostics for a set of tests.
func Bias(tests []*ndt.Test, hourOf func(*ndt.Test) float64, minSamples int) BiasReport {
	var bins stats.HourBins
	perClient := map[uint32]int{}
	for _, t := range tests {
		bins.Add(hourOf(t), t.DownMbps)
		perClient[uint32(t.ClientAddr)]++
	}
	return BiasFromBins(&bins, perClient, minSamples)
}

// BiasFromBins computes the §6.1 diagnostics from pre-aggregated state:
// hour-binned download throughput plus per-client test counts. The
// streaming report path aggregates these incrementally and shares this
// reduction with Bias, so both paths render identical diagnostics.
func BiasFromBins(bins *stats.HourBins, perClient map[uint32]int, minSamples int) BiasReport {
	c := bins.Counts()
	night := c[3] + c[4] + c[5]
	evening := c[19] + c[20] + c[21]
	rep := BiasReport{}
	if evening > 0 {
		rep.NightToEveningRatio = float64(night) / float64(evening)
	}
	for h := 0; h < 24; h++ {
		if c[h] < minSamples {
			rep.ThinHours = append(rep.ThinHours, h)
		}
		sum := stats.Summarize(bins.Bin(h))
		if sum.N > 1 && sum.Mean > 0 {
			if cv := sum.Stddev / sum.Mean; cv > rep.MaxHourCV {
				rep.MaxHourCV = cv
			}
		}
	}
	counts := make([]float64, 0, len(perClient))
	for _, n := range perClient {
		counts = append(counts, float64(n))
	}
	rep.TestsPerClientP90 = stats.Quantile(counts, 0.9)
	return rep
}
