package traceroute

import (
	"math/rand"
	"testing"

	"throughputlab/internal/netaddr"
)

// TestNormalizeAllArtifactTail is the regression test for the
// Reached/final-hop invariant: a trace whose tail is nothing but
// artifacts — every hop from some point on a NoReply star, including
// the destination slot — must never be counted as a reached
// destination, even if Reached was set before the hops were rewritten.
// Consumers decrement their path end by one when Reached (treating the
// last responsive address as the destination host); a stale Reached on
// an all-artifact tail would instead strip the last responsive ROUTER,
// misattributing the AS path and link extraction.
func TestNormalizeAllArtifactTail(t *testing.T) {
	tr := &Trace{
		DstAddr: netaddr.Addr(90),
		Hops: []Hop{
			{TTL: 1, Addr: netaddr.Addr(10)},
			{TTL: 2, Addr: netaddr.Addr(20)},
			{TTL: 3}, // artifact tail starts here
			{TTL: 4},
			{TTL: 5}, // destination slot: NoReply
		},
		Reached: true, // stale: set before the tail was blanked
	}
	tr.Normalize()
	if tr.Reached {
		t.Error("all-artifact tail still counted as reached destination")
	}

	// A final hop that replied, but not with the destination address
	// (e.g. a third-party artifact in the destination slot), is not a
	// reached destination either.
	tr2 := &Trace{
		DstAddr: netaddr.Addr(90),
		Hops:    []Hop{{TTL: 1, Addr: netaddr.Addr(10)}, {TTL: 2, Addr: netaddr.Addr(33)}},
		Reached: true,
	}
	tr2.Normalize()
	if tr2.Reached {
		t.Error("non-destination final hop counted as reached destination")
	}

	// Hopless traces are trivially unreached.
	tr3 := &Trace{DstAddr: netaddr.Addr(90), Reached: true}
	tr3.Normalize()
	if tr3.Reached {
		t.Error("empty trace counted as reached")
	}

	// And a genuine destination reply survives normalization.
	tr4 := &Trace{
		DstAddr: netaddr.Addr(90),
		Hops:    []Hop{{TTL: 1, Addr: netaddr.Addr(10)}, {TTL: 2, Addr: netaddr.Addr(90)}},
		Reached: true,
	}
	tr4.Normalize()
	if !tr4.Reached {
		t.Error("genuine destination reply lost to normalization")
	}
}

// TestTraceUpholdsReachedInvariant drives the real tracer under maximal
// artifact rates and asserts the collection-time invariant Normalize
// enforces: Reached if and only if the final hop is a reply from the
// destination address.
func TestTraceUpholdsReachedInvariant(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	cli, ok := world.NewClient("Comcast", "nyc")
	if !ok {
		t.Fatal("no client")
	}
	for _, art := range []Artifacts{
		{DstNoReplyProb: 1},
		{NoReplyProb: 1, DstNoReplyProb: 1},
		{NoReplyProb: 0.5, ThirdPartyProb: 0.5, DstNoReplyProb: 0.5},
	} {
		tr := New(world.Topo, world.Resolver, art)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 50; i++ {
			trace, err := tr.Trace(srv, cli, uint32(i), 600, rng)
			if err != nil {
				t.Fatal(err)
			}
			last := trace.Hops[len(trace.Hops)-1]
			wantReached := !last.NoReply() && last.Addr == trace.DstAddr
			if trace.Reached != wantReached {
				t.Fatalf("artifacts %+v: Reached=%v but final hop %v (dst %v)",
					art, trace.Reached, last.Addr, trace.DstAddr)
			}
		}
	}
}
