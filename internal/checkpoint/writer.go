package checkpoint

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"throughputlab/internal/export"
	"throughputlab/internal/platform"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a checkpointing writer.
type Options struct {
	// SyncEveryChunks is how many chunks may accumulate between
	// durability barriers (Sync + fsync + manifest rewrite). Zero means
	// the default of 8; 1 checkpoints at every chunk boundary.
	SyncEveryChunks int
	// WrapWriter, when set, wraps the partial-corpus file before the
	// corpus writer is attached. Tests use it to inject write failures
	// (disk full) and assert the error propagates and nothing publishes.
	WrapWriter func(io.Writer) io.Writer
}

func (o Options) every() int {
	if o.SyncEveryChunks <= 0 {
		return 8
	}
	return o.SyncEveryChunks
}

// crcWriter counts and checksums everything flushed toward the file,
// so the manifest's (bytes, crc32c) pair describes exactly the durable
// prefix without re-reading it.
type crcWriter struct {
	w   io.Writer
	n   int64
	sum uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.sum = crc32.Update(cw.sum, castagnoli, p[:n])
	return n, err
}

// Writer is a crash-safe corpus sink: bytes land in a .partial temp
// file with periodic chunk-boundary checkpoints (drain, fsync, atomic
// manifest rewrite), and the corpus appears on its publication path
// only via the footer-then-rename in Close. It is not safe for
// concurrent use — like the export writers it wraps, it is fed from
// the single sequencer side of collection.
type Writer struct {
	f        *os.File
	cw       export.CorpusWriter
	crc      *crcWriter
	m        Manifest
	mpath    string
	every    int
	unsynced int
	firstErr error
	finished bool
}

// Create opens a checkpointing writer publishing to finalPath. The
// world hash is computed from (format, public, meta) and stamped into
// the fingerprint; an initial checkpoint runs immediately, so the
// manifest exists (and the header is durable) before any chunk does.
func Create(finalPath, format string, public export.Public, meta export.StreamMeta, fp Fingerprint, workers int, opts Options) (*Writer, error) {
	worldCRC, err := export.HeaderFingerprint(format, public, meta)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	fp.WorldCRC = worldCRC
	partial := PartialPath(finalPath)
	f, err := os.Create(partial)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: creating partial corpus: %w", err)
	}
	var sink io.Writer = f
	if opts.WrapWriter != nil {
		sink = opts.WrapWriter(f)
	}
	crc := &crcWriter{w: sink}
	cw, err := export.NewCorpusWriter(crc, format, public, meta, workers)
	if err != nil {
		f.Close()
		os.Remove(partial)
		return nil, err
	}
	w := &Writer{
		f:     f,
		cw:    cw,
		crc:   crc,
		mpath: ManifestPath(finalPath),
		every: opts.every(),
		m: Manifest{
			Format:        ManifestFormat,
			CorpusFinal:   finalPath,
			CorpusPartial: partial,
			Fingerprint:   fp,
		},
	}
	if err := w.Checkpoint(); err != nil {
		w.Discard()
		return nil, err
	}
	return w, nil
}

// WriteChunk appends one collection chunk, checkpointing every
// SyncEveryChunks chunks. The first failure is sticky: it is returned
// here and again from Close, and nothing publishes after it.
func (w *Writer) WriteChunk(c *platform.Chunk) error {
	if w.firstErr != nil {
		return w.firstErr
	}
	if err := w.cw.WriteChunk(c); err != nil {
		w.firstErr = err
		return err
	}
	w.unsynced++
	if w.unsynced >= w.every {
		return w.Checkpoint()
	}
	return nil
}

// Checkpoint forces a durability barrier at the current chunk
// boundary: every submitted chunk is drained through the encode
// pipeline and the OS page cache to disk, then the manifest is
// atomically rewritten to record the new durable prefix.
func (w *Writer) Checkpoint() error {
	if w.firstErr != nil {
		return w.firstErr
	}
	if err := w.cw.Sync(); err != nil {
		w.firstErr = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.firstErr = fmt.Errorf("checkpoint: fsync partial corpus: %w", err)
		return w.firstErr
	}
	ft := w.cw.Footer()
	w.m.Durable = Durable{
		Chunks:            ft.Chunks,
		Bytes:             w.crc.n,
		CRC32C:            w.crc.sum,
		Tests:             ft.Tests,
		Traces:            ft.Traces,
		TestsWithoutTrace: ft.TestsWithoutTrace,
		Completeness:      ft.Completeness,
	}
	if err := w.m.Store(w.mpath); err != nil {
		w.firstErr = err
		return err
	}
	w.unsynced = 0
	return nil
}

// Close seals and publishes the corpus: footer written, partial file
// fsynced and renamed onto the publication path, directory fsynced,
// manifest removed. On any error — including a sticky earlier one —
// the partial file and manifest are removed and the publication path
// is left untouched, so a half-written corpus is never observable.
func (w *Writer) Close() error {
	if w.finished {
		return w.firstErr
	}
	if w.firstErr != nil {
		w.Discard()
		return w.firstErr
	}
	w.finished = true
	fail := func(err error) error {
		w.firstErr = err
		w.cw = nil // already closed or dead; Discard must not touch it
		w.f.Close()
		os.Remove(w.m.CorpusPartial)
		os.Remove(w.mpath)
		return err
	}
	if err := w.cw.Close(); err != nil {
		return fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return fail(fmt.Errorf("checkpoint: fsync partial corpus: %w", err))
	}
	if err := w.f.Close(); err != nil {
		return fail(fmt.Errorf("checkpoint: closing partial corpus: %w", err))
	}
	if err := os.Rename(w.m.CorpusPartial, w.m.CorpusFinal); err != nil {
		w.cw = nil
		w.firstErr = fmt.Errorf("checkpoint: publishing corpus: %w", err)
		os.Remove(w.m.CorpusPartial)
		os.Remove(w.mpath)
		return w.firstErr
	}
	if err := syncDir(filepath.Dir(w.m.CorpusFinal)); err != nil {
		return err
	}
	os.Remove(w.mpath)
	return nil
}

// Interrupt is the graceful-cancellation exit: it checkpoints whatever
// chunks have been submitted, abandons the corpus writer without
// writing a footer (the partial file must stay visibly incomplete),
// and keeps both the partial corpus and the manifest on disk for a
// later -resume. It returns the manifest path to hint at.
func (w *Writer) Interrupt() (string, error) {
	if w.finished {
		return w.mpath, w.firstErr
	}
	w.finished = true
	err := w.Checkpoint()
	w.cw.Abandon()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("checkpoint: closing partial corpus: %w", cerr)
	}
	return w.mpath, err
}

// Discard tears the writer down and removes both the partial corpus
// and the manifest — the error path, where nothing should survive.
func (w *Writer) Discard() {
	w.finished = true
	if w.cw != nil {
		w.cw.Abandon()
		w.cw = nil
	}
	w.f.Close()
	os.Remove(w.m.CorpusPartial)
	os.Remove(w.mpath)
}

// Footer exposes the wrapped corpus writer's running totals.
func (w *Writer) Footer() export.StreamFooter { return w.cw.Footer() }

// Durable returns the last checkpointed durable prefix.
func (w *Writer) Durable() Durable { return w.m.Durable }

// ManifestPathName returns where this writer keeps its manifest.
func (w *Writer) ManifestPathName() string { return w.mpath }
