package export

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"reflect"
	"slices"
	"strings"
	"testing"

	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/traceroute"
	"throughputlab/internal/web100"
)

// writeColumnar persists a campaign through the columnar writer via
// platform.CollectStream and returns the bytes plus the stream stats.
func writeColumnar(t testing.TB, cfg platform.CollectConfig, workers int) (*bytes.Buffer, *platform.StreamStats) {
	t.Helper()
	pub := FromWorld(world, nil).Public
	var buf bytes.Buffer
	cw, err := NewColumnarWriterWorkers(&buf, pub, StreamMeta{Scale: "small", Seed: cfg.Seed, Tests: cfg.Tests}, workers)
	if err != nil {
		t.Fatal(err)
	}
	st, err := platform.CollectStream(world, cfg, 2, cw.WriteChunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, st
}

// testEqual compares every field of two tests, treating nil and empty
// slices as equal (the columnar decoder leaves empty lists nil).
func testEqual(a, b *ndt.Test) bool {
	ca, cb := *a, *b
	ca.TruthInterLinks, cb.TruthInterLinks = nil, nil
	ca.TruthASPath, cb.TruthASPath = nil, nil
	return reflect.DeepEqual(ca, cb) && slices.Equal(a.TruthInterLinks, b.TruthInterLinks) &&
		slices.Equal(a.TruthASPath, b.TruthASPath)
}

// traceEqual compares every field of two traces the same way.
func traceEqual(a, b *traceroute.Trace) bool {
	ca, cb := *a, *b
	ca.Hops, cb.Hops = nil, nil
	return reflect.DeepEqual(ca, cb) && slices.Equal(a.Hops, b.Hops)
}

// TestColumnarFieldCoverage pins the stripe count to the record shape:
// adding a field to ndt.Test, web100.Snapshot, traceroute.Trace or
// traceroute.Hop without teaching the columnar codec about it fails
// here, not at a customer's corpus.
func TestColumnarFieldCoverage(t *testing.T) {
	// One stripe per scalar test field; Web100 flattens to one stripe
	// per snapshot field; each truth list costs two (lengths + values).
	testFields := reflect.TypeFor[ndt.Test]().NumField() - 3 // Web100, TruthInterLinks, TruthASPath
	testFields += reflect.TypeFor[web100.Snapshot]().NumField()
	testFields += 2 * 2
	if testFields != numTestFields {
		t.Errorf("ndt.Test flattens to %d columns, codec has %d: update the columnar stripes", testFields, numTestFields)
	}
	// One stripe per scalar trace field; hops cost a lengths stripe plus
	// one stripe per Hop field.
	traceFields := reflect.TypeFor[traceroute.Trace]().NumField() - 1 // Hops
	traceFields += 1 + reflect.TypeFor[traceroute.Hop]().NumField()
	if traceFields != numTraceFields {
		t.Errorf("traceroute.Trace flattens to %d columns, codec has %d: update the columnar stripes", traceFields, numTraceFields)
	}
}

// TestColumnarRoundTrip pins the core contract: a campaign persisted
// through the columnar writer decodes back record for record — every
// field — through both the streaming reader and the generic Read
// auto-detection.
func TestColumnarRoundTrip(t *testing.T) {
	cfg := streamCfg(400, 64)
	batch, err := platform.Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf, st := writeColumnar(t, cfg, 4)
	raw := buf.Bytes()

	// Path 1: generic Read materializes the columnar corpus.
	back, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tests) != len(batch.Tests) || len(back.Traces) != len(batch.Traces) {
		t.Fatalf("columnar Read returned %d/%d records, batch has %d/%d",
			len(back.Tests), len(back.Traces), len(batch.Tests), len(batch.Traces))
	}
	for i := range batch.Tests {
		if !testEqual(back.Tests[i], batch.Tests[i]) {
			t.Fatalf("test %d differs after columnar round trip:\n got %+v\nwant %+v",
				i, back.Tests[i], batch.Tests[i])
		}
	}
	for i := range batch.Traces {
		if !traceEqual(back.Traces[i], batch.Traces[i]) {
			t.Fatalf("trace %d differs after columnar round trip:\n got %+v\nwant %+v",
				i, back.Traces[i], batch.Traces[i])
		}
	}
	if back.TestsWithoutTrace != batch.TestsWithoutTrace || back.Completeness != batch.Completeness {
		t.Errorf("corpus ledger lost: %d/%+v, want %d/%+v",
			back.TestsWithoutTrace, back.Completeness, batch.TestsWithoutTrace, batch.Completeness)
	}
	if len(back.Public.Prefixes) == 0 || len(back.Public.Rels) == 0 {
		t.Error("public bundle lost in columnar header")
	}

	// Path 2: chunk-by-chunk replay sees the same totals and watermarks.
	cr, err := OpenColumnar(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cr.Meta().Tests != cfg.Tests || cr.Meta().Scale != "small" {
		t.Errorf("meta %+v not preserved", cr.Meta())
	}
	tests, traces, chunks, lastWM := 0, 0, 0, -1
	for {
		c, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if c.Watermark < lastWM {
			t.Fatalf("chunk %d watermark %d regressed below %d", c.Chunk, c.Watermark, lastWM)
		}
		lastWM = c.Watermark
		tests += len(c.Tests)
		traces += len(c.Traces)
		chunks++
	}
	if chunks != st.Chunks || tests != st.Tests || traces != st.Traces {
		t.Fatalf("replay saw %d chunks / %d tests / %d traces, writer recorded %d / %d / %d",
			chunks, tests, traces, st.Chunks, st.Tests, st.Traces)
	}
	if cr.Footer() == nil || cr.Footer().Tests != st.Tests {
		t.Fatal("footer missing or wrong after replay")
	}
}

// TestColumnarSmallerThanNDJSON pins the size claim: the same campaign
// persists smaller in columnar form than as the NDJSON stream.
func TestColumnarSmallerThanNDJSON(t *testing.T) {
	cfg := streamCfg(400, 64)
	nd, _ := writeStreamed(t, cfg, 1)
	col, _ := writeColumnar(t, cfg, 1)
	if col.Len() >= nd.Len() {
		t.Errorf("columnar corpus is %d bytes, NDJSON is %d: columnar should be smaller", col.Len(), nd.Len())
	}
}

// TestColumnarWriterWorkersByteIdentical pins encode determinism: the
// file bytes are a pure function of the campaign, independent of the
// writer's worker count.
func TestColumnarWriterWorkersByteIdentical(t *testing.T) {
	cfg := streamCfg(300, 50)
	base, _ := writeColumnar(t, cfg, 1)
	for _, workers := range []int{2, 8} {
		got, _ := writeColumnar(t, cfg, workers)
		if !bytes.Equal(base.Bytes(), got.Bytes()) {
			t.Errorf("columnar bytes differ between workers=1 and workers=%d", workers)
		}
	}
}

// TestOpenColumnarWorkersMatchesSerial pins decode equivalence: the
// worker-parallel reader returns the same chunks, in the same order,
// with the same footer, as the serial reader.
func TestOpenColumnarWorkersMatchesSerial(t *testing.T) {
	buf, _ := writeColumnar(t, streamCfg(300, 50), 2)
	raw := buf.Bytes()
	drain := func(workers int) ([]*StreamChunk, *StreamFooter) {
		cr, err := OpenColumnarWorkers(bytes.NewReader(raw), workers)
		if err != nil {
			t.Fatal(err)
		}
		defer cr.Close()
		var out []*StreamChunk
		for {
			c, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, c)
		}
		return out, cr.Footer()
	}
	serial, sf := drain(1)
	for _, workers := range []int{2, 8} {
		par, pf := drain(workers)
		if len(par) != len(serial) || *pf != *sf {
			t.Fatalf("workers=%d: %d chunks / footer %+v, serial %d / %+v", workers, len(par), pf, len(serial), sf)
		}
		for i := range serial {
			if par[i].Chunk != serial[i].Chunk || len(par[i].Tests) != len(serial[i].Tests) {
				t.Fatalf("workers=%d chunk %d shape differs", workers, i)
			}
			for j := range serial[i].Tests {
				if !testEqual(par[i].Tests[j], serial[i].Tests[j]) {
					t.Fatalf("workers=%d chunk %d test %d differs", workers, i, j)
				}
			}
			for j := range serial[i].Traces {
				if !traceEqual(par[i].Traces[j], serial[i].Traces[j]) {
					t.Fatalf("workers=%d chunk %d trace %d differs", workers, i, j)
				}
			}
		}
	}
}

// TestColumnarProjection pins the fast-path contract: a traces-only
// open returns every trace and no tests, with footer bookkeeping
// (which counts both families) still exact.
func TestColumnarProjection(t *testing.T) {
	buf, st := writeColumnar(t, streamCfg(300, 50), 2)
	raw := buf.Bytes()
	full, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := OpenColumnarProjected(bytes.NewReader(raw), 2, Projection{Traces: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Close()
	var traces []*traceroute.Trace
	for {
		c, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Tests) != 0 {
			t.Fatalf("traces-only projection returned %d tests in chunk %d", len(c.Tests), c.Chunk)
		}
		traces = append(traces, c.Traces...)
	}
	if cr.Footer() == nil || cr.Footer().Tests != st.Tests {
		t.Fatalf("projected read lost footer bookkeeping: %+v (want %d tests)", cr.Footer(), st.Tests)
	}
	if len(traces) != len(full.Traces) {
		t.Fatalf("projection returned %d traces, corpus has %d", len(traces), len(full.Traces))
	}
	for i := range traces {
		if !traceEqual(traces[i], full.Traces[i]) {
			t.Fatalf("trace %d differs under projection", i)
		}
	}
}

// TestColumnarSeek pins the footer index: OpenColumnarAt reaches any
// chunk in one seek and the indexed rows match a sequential replay.
func TestColumnarSeek(t *testing.T) {
	buf, st := writeColumnar(t, streamCfg(300, 50), 2)
	raw := buf.Bytes()
	cf, err := OpenColumnarAt(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.Index()) != st.Chunks {
		t.Fatalf("index has %d rows, campaign wrote %d chunks", len(cf.Index()), st.Chunks)
	}
	if cf.Footer().Tests != st.Tests {
		t.Errorf("seek footer says %d tests, want %d", cf.Footer().Tests, st.Tests)
	}
	cr, err := OpenColumnar(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		want, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := cf.ChunkAt(i, EverythingProjection())
		if err != nil {
			t.Fatalf("ChunkAt(%d): %v", i, err)
		}
		if got.Chunk != want.Chunk || len(got.Tests) != len(want.Tests) || len(got.Traces) != len(want.Traces) {
			t.Fatalf("ChunkAt(%d) shape differs from sequential chunk", i)
		}
		if len(want.Tests) > 0 && !testEqual(got.Tests[0], want.Tests[0]) {
			t.Fatalf("ChunkAt(%d) first test differs", i)
		}
		if e := cf.Index()[i]; e.Tests != len(want.Tests) || e.Traces != len(want.Traces) || e.Watermark != want.Watermark {
			t.Fatalf("index row %d (%+v) does not describe its chunk", i, e)
		}
	}
	if _, err := cf.ChunkAt(len(cf.Index()), EverythingProjection()); err == nil {
		t.Error("ChunkAt past the end should error")
	}
	if _, err := cf.ChunkAt(-1, EverythingProjection()); err == nil {
		t.Error("ChunkAt(-1) should error")
	}
}

// TestCorpusFormatCrossErrors pins the auto-detection satellite: each
// format fed to the other's dedicated entry point fails with an error
// naming the detected and required formats, not a parse error.
func TestCorpusFormatCrossErrors(t *testing.T) {
	colBuf, _ := writeColumnar(t, streamCfg(120, 60), 1)
	ndBuf, _ := writeStreamed(t, streamCfg(120, 60), 1)

	if _, err := OpenStream(bytes.NewReader(colBuf.Bytes())); err == nil {
		t.Error("OpenStream accepted a columnar corpus")
	} else if !strings.Contains(err.Error(), "columnar corpus") || !strings.Contains(err.Error(), ColumnarFormat) {
		t.Errorf("OpenStream error on a columnar file does not name the formats: %v", err)
	}
	if _, err := OpenColumnar(bytes.NewReader(ndBuf.Bytes())); err == nil {
		t.Error("OpenColumnar accepted an NDJSON stream")
	} else if !strings.Contains(err.Error(), "NDJSON") || !strings.Contains(err.Error(), StreamFormat) {
		t.Errorf("OpenColumnar error on an NDJSON file does not name the formats: %v", err)
	}

	// The unified entry point takes both.
	for _, raw := range [][]byte{colBuf.Bytes(), ndBuf.Bytes()} {
		cr, err := OpenCorpus(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("OpenCorpus: %v", err)
		}
		n := 0
		for {
			c, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n += len(c.Tests)
		}
		if n == 0 {
			t.Error("OpenCorpus replay returned no tests")
		}
	}
}

// TestColumnarTruncated rejects a file whose footer never arrived, at
// several cut points (mid-header, mid-chunk, mid-footer, missing tail).
func TestColumnarTruncated(t *testing.T) {
	buf, _ := writeColumnar(t, streamCfg(200, 50), 1)
	raw := buf.Bytes()
	for _, cut := range []int{4, 100, len(raw) / 2, len(raw) - 13, len(raw) - 1} {
		cr, err := OpenColumnar(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue // failed in the header: also an acceptable rejection
		}
		for {
			_, err = cr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF || err == nil {
			t.Errorf("file cut at %d read to completion", cut)
		}
	}
}

// TestColumnarCorruption rejects checksum damage anywhere in the body
// with a descriptive error, never a panic.
func TestColumnarCorruption(t *testing.T) {
	buf, _ := writeColumnar(t, streamCfg(200, 50), 1)
	raw := buf.Bytes()
	// Flip one byte at several depths (past the header JSON, which has
	// its own checksum; and inside chunk stripes).
	for _, pos := range []int{len(raw) / 4, len(raw) / 2, 3 * len(raw) / 4} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x5a
		cr, err := OpenColumnar(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		for {
			_, err = cr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF || err == nil {
			t.Errorf("byte flip at %d went undetected", pos)
		}
	}
}

// TestColumnarFooterMismatch rejects a footer (checksum-valid) whose
// totals or index contradict the chunks actually present.
func TestColumnarFooterMismatch(t *testing.T) {
	bufA, _ := writeColumnar(t, streamCfg(300, 50), 1)
	bufB, _ := writeColumnar(t, streamCfg(100, 50), 1)
	footerStart := func(raw []byte) int {
		frameLen := int(binary.LittleEndian.Uint32(raw[len(raw)-12 : len(raw)-8]))
		return len(raw) - 12 - frameLen
	}
	a, b := bufA.Bytes(), bufB.Bytes()
	// A's chunks with B's (smaller but internally consistent) footer.
	spliced := append(append([]byte(nil), a[:footerStart(a)]...), b[footerStart(b):]...)
	cr, err := OpenColumnar(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = cr.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF || err == nil || !strings.Contains(err.Error(), "footer") {
		t.Fatalf("spliced footer not rejected descriptively: %v", err)
	}

	// Same totals, one index row perturbed: rebuild A's footer frame
	// with a valid checksum but a wrong offset delta.
	payloadOf := func(raw []byte) []byte {
		r := &colReader{b: raw[footerStart(raw):]}
		if k, _ := r.take(1); k[0] != frameFooter {
			t.Fatal("no footer frame at tail offset")
		}
		n, err := r.uvarint()
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.take(int(n))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	payload := append([]byte(nil), payloadOf(a)...)
	payload[len(payload)-1] ^= 0x01 // last index row's trace count
	var frame []byte
	frame = append(frame, frameFooter)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(frame)))
	frame = append(frame, columnarTail...)
	mut := append(append([]byte(nil), a[:footerStart(a)]...), frame...)
	cr, err = OpenColumnar(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = cr.Next()
		if err != nil {
			break
		}
	}
	if err == io.EOF || err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("perturbed footer index not rejected descriptively: %v", err)
	}
}

// TestColumnarReaderCloseEarly pins that abandoning a worker-backed
// reader mid-stream releases its goroutines without deadlock.
func TestColumnarReaderCloseEarly(t *testing.T) {
	buf, _ := writeColumnar(t, streamCfg(300, 30), 2)
	cr, err := OpenColumnarWorkers(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cr.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestColumnarWriterRejectsConflictedPublic mirrors the NDJSON
// writer's validation gate.
func TestColumnarWriterRejectsConflictedPublic(t *testing.T) {
	pub := FromWorld(world, nil).Public
	pub.Rels = append(pub.Rels, relRow{A: pub.Rels[0].A, B: pub.Rels[0].B, Rel: "sibling"})
	if pub.Rels[0].Rel == "sibling" {
		pub.Rels[len(pub.Rels)-1].Rel = "peer"
	}
	var buf bytes.Buffer
	if _, err := NewColumnarWriter(&buf, pub, StreamMeta{}); err == nil {
		t.Fatal("conflicted public bundle accepted")
	}
}
