package platform

import "testing"

// seedCorpusHash is the corpus FNV hash of the small-scale campaign
// (SmallConfig world, smallCollect config) measured before the
// resolver memoization layer landed. The caches, the delay matrix, the
// weighted samplers, and every hot-path allocation cut must leave the
// corpus byte-identical, so this constant must never change for
// performance work; it moves only when the model itself intentionally
// changes.
const seedCorpusHash = 0x62321200631590a1

// TestCorpusGoldenSeedHash pins the collected corpus — with the cached
// resolver, at several worker counts — to the pre-caching seed hash.
func TestCorpusGoldenSeedHash(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c, err := CollectParallel(world, smallCollect(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := corpusHash(c); got != seedCorpusHash {
			t.Errorf("corpus hash with %d workers = %#x, want seed %#x", workers, got, seedCorpusHash)
		}
	}
}
