// Package platform models the measurement platforms of the paper: the
// M-Lab NDT service with its crowdsourced client population, server
// selection, and Paris traceroute collection (including the
// single-threaded-collector artifact that loses ~25% of traceroutes,
// §4.1); Speedtest-style server lists; and Ark-style vantage points
// that run topology campaigns (§5.1).
package platform

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"throughputlab/internal/datasets"
	"throughputlab/internal/faults"
	"throughputlab/internal/ndt"
	"throughputlab/internal/netsim"
	"throughputlab/internal/obs"
	"throughputlab/internal/routing"
	"throughputlab/internal/stats"
	"throughputlab/internal/topogen"
	"throughputlab/internal/traceroute"
)

// Household is one crowdsourcing client: a home that may run NDT tests.
type Household struct {
	ISP      string
	Endpoint routing.Endpoint
	TierMbps float64
	// WiFiCapMbps is 0 for wired homes.
	WiFiCapMbps float64
}

// BuildPopulation creates households for every (ISP, metro) pool. Tier
// and Wi-Fi draws follow the ISP profiles; the same seed yields the
// same population. Addresses come from the pure ClientAt accessor, so
// building a population never mutates the World and repeated campaigns
// over one world see the same homes.
func BuildPopulation(w *topogen.World, perPoolClients int, seed int64) []Household {
	rng := rand.New(rand.NewSource(seed))
	var out []Household
	for _, p := range datasets.AccessISPs() {
		for _, metro := range p.Metros {
			for i := 0; i < perPoolClients; i++ {
				ep, ok := w.ClientAt(p.Name, metro, uint64(i))
				if !ok {
					continue
				}
				tw := make([]float64, len(p.Tiers))
				for ti, tier := range p.Tiers {
					tw[ti] = tier.Weight
				}
				tier := p.Tiers[stats.WeightedChoice(tw, rng)].DownMbps
				wifi := 0.0
				if rng.Float64() < p.WiFiDegradedFrac {
					wifi = 10 + 45*rng.Float64()
				}
				out = append(out, Household{
					ISP: p.Name, Endpoint: ep, TierMbps: tier, WiFiCapMbps: wifi,
				})
			}
		}
	}
	return out
}

// popCache memoizes the most recent BuildPopulation result.
// BuildPopulation is pure, so repeated campaigns over one world
// (ablation sweeps, the Battle-for-the-Net comparison, benchmarks)
// can share the slice; it is read-only during collection. One entry
// bounds the retained memory to a single population.
var popCache struct {
	sync.Mutex
	w       *topogen.World
	clients int
	seed    int64
	pop     []Household
}

func population(w *topogen.World, perPoolClients int, seed int64) []Household {
	popCache.Lock()
	defer popCache.Unlock()
	if popCache.w == w && popCache.clients == perPoolClients && popCache.seed == seed {
		return popCache.pop
	}
	pop := BuildPopulation(w, perPoolClients, seed)
	popCache.w, popCache.clients, popCache.seed, popCache.pop = w, perPoolClients, seed, pop
	return pop
}

// DefaultShards is the number of RNG shards a campaign is split into
// when CollectConfig.Shards is zero. The shard count is part of the
// corpus identity: (Seed, Shards) fully determine the corpus, and the
// worker count never does.
const DefaultShards = 16

// CollectConfig parameterizes a corpus collection campaign.
type CollectConfig struct {
	Seed int64
	// Days of simulated collection (the paper's case study is one
	// month, May 2015).
	Days int
	// Tests is the total number of NDT tests to run.
	Tests int
	// PerPoolClients sizes the household population.
	PerPoolClients int
	// Shards splits arrival scheduling into independent RNG streams
	// (seed + shard), merged deterministically; 0 means DefaultShards.
	// Together with Seed it defines the corpus — see the determinism
	// contract in DESIGN.md.
	Shards int
	// BattleForNet makes each client test against up to five nearby
	// sites back-to-back instead of only the closest (§2.2).
	BattleForNet bool
	// TracerouteDurationMin is how long the single-threaded collector
	// is busy per traceroute; concurrent NDT arrivals at the same
	// server lose their traceroute (§4.1).
	TracerouteDurationMin int
	// Artifacts configures traceroute imperfections.
	Artifacts traceroute.Artifacts
	// Faults is the measurement-plane fault profile (zero/Off =
	// disabled). Together with FaultSeed it extends the corpus
	// identity: a disabled profile leaves the corpus byte-identical to
	// a build without the fault layer, and a fixed profile yields a
	// byte-identical corpus at every worker count.
	Faults faults.Profile
	// FaultSeed seeds the fault-injection streams; 0 means reuse Seed.
	FaultSeed int64
	// ChunkTests bounds how many executed tests are resident at once
	// during streamed collection: CollectStream publishes the corpus in
	// contiguous chunks of at most this many scheduled tests. 0 means
	// DefaultChunkTests. The chunk size is NOT part of the corpus
	// identity — concatenating the chunks yields the identical corpus
	// at any value.
	ChunkTests int
	// PipelineChunks, when > 0, switches streamed collection to
	// chunk-parallel production: each worker executes whole chunks
	// concurrently (claimed in dense index order) and a sequence-
	// numbered reorder buffer of this many chunks publishes them to the
	// sink strictly in index order. The value is the reorder window —
	// the backpressure bound on chunks completed but not yet released —
	// so resident records stay under (PipelineChunks + workers + 1)
	// chunks. 0 keeps the per-chunk barrier path (all workers inside
	// one chunk at a time). Like ChunkTests, this is NOT part of the
	// corpus identity: the published stream is byte-identical at every
	// (workers, PipelineChunks) setting.
	PipelineChunks int
	// Obs, when non-nil, receives collection phase spans, per-shard
	// test/trace gauges, busy-collector rejection counters, and the
	// fault layer's injected/retried/recovered/abandoned counters. It
	// is not part of the corpus identity: the corpus is byte-identical
	// with and without it (see the golden tests).
	Obs *obs.Registry
	// StartChunk resumes a streamed campaign mid-stream: chunks with
	// index below it are never executed or published — the resume path
	// replays them from a persisted corpus prefix instead. Scheduling,
	// retry planning and the collector sweep still cover the whole
	// campaign (cheap, deterministic bookkeeping), so chunk StartChunk
	// onward is byte-identical to the same chunks of a full run. Like
	// ChunkTests it is NOT part of the corpus identity; it only selects
	// which suffix of the identical stream is produced.
	StartChunk int
}

// DefaultChunkTests is the streamed-collection chunk size when
// CollectConfig.ChunkTests is zero. At ~1KB per test record plus its
// trace, an 8k chunk keeps the in-flight window around 20MB no matter
// how many tests the campaign schedules.
const DefaultChunkTests = 8192

// DefaultCollect returns the standard May-2015-style campaign.
func DefaultCollect() CollectConfig {
	return CollectConfig{
		Seed:                  7,
		Days:                  28,
		Tests:                 60000,
		PerPoolClients:        40,
		TracerouteDurationMin: 3,
		Artifacts:             traceroute.DefaultArtifacts(),
	}
}

// Corpus is everything the platform publishes: NDT test records and
// (unassociated) Paris traceroutes. Inference code must join them by
// endpoint and time window, exactly as §4.1 describes.
type Corpus struct {
	Tests  []*ndt.Test
	Traces []*traceroute.Trace
	// TestsWithoutTrace counts tests whose traceroute was skipped by
	// the busy collector (ground truth for the matching experiment).
	TestsWithoutTrace int
	// Completeness accounts for what the fault plane cost the campaign.
	// It stays the zero value when faults are disabled.
	Completeness Completeness
}

// Completeness is the campaign's data-loss ledger under fault
// injection: how many scheduled tests were permanently lost, how many
// published records are partial, and how many traces were maimed. The
// report surfaces it so every inference result can be read against the
// integrity of the data it came from.
type Completeness struct {
	// ScheduledTests is the campaign's intended test count.
	ScheduledTests int
	// AbandonedTests were given up after exhausting retries or the
	// per-test deadline.
	AbandonedTests int
	// DroppedRows are published test rows lost to corruption.
	DroppedRows int
	// TruncatedTests are retained records with partial web100 snapshots.
	TruncatedTests int
	// DegradedTraces are retained traces maimed by probe loss or ICMP
	// rate limiting.
	DegradedTraces int
}

// Merge folds another ledger into this one (chunk → campaign totals).
func (c *Completeness) Merge(o Completeness) {
	c.ScheduledTests += o.ScheduledTests
	c.AbandonedTests += o.AbandonedTests
	c.DroppedRows += o.DroppedRows
	c.TruncatedTests += o.TruncatedTests
	c.DegradedTraces += o.DegradedTraces
}

// Degraded reports whether the campaign lost or maimed any data.
func (c Completeness) Degraded() bool {
	return c.AbandonedTests > 0 || c.DroppedRows > 0 ||
		c.TruncatedTests > 0 || c.DegradedTraces > 0
}

// testVolumeShape is the diurnal test-arrival profile: crowdsourced
// users run tests mostly in the evening, rarely at 4am (§6.1 "time of
// day bias").
func testVolumeShape(localHour float64) float64 {
	return 0.06 + 0.94*netsim.DiurnalShape(localHour)
}

// arrival is one scheduled NDT test, fully determined at scheduling
// time: every random draw its execution needs (entropy, collector
// launch lag, the per-arrival RNG stream) is made by the shard RNG, so
// executing arrivals in parallel cannot perturb the corpus.
type arrival struct {
	shard, ord int // scheduling position, for deterministic tie-breaks
	hh         int
	minute     int
	site       *topogen.MLabSite
	entropy    uint32
	// lag is the traceroute launch offset relative to the test start,
	// in [-2, +10] minutes (§4.1 timestamp skew).
	lag int
	// rngSeed seeds the arrival-private RNG that drives the test's
	// noise draws and the traceroute's artifact draws.
	rngSeed int64
}

// arrivalEntity is the arrival's stable fault-stream key. The
// arrival-private RNG seed is drawn once from the shard stream at
// scheduling time, so it identifies the arrival identically at every
// worker count — exactly the property fault draws need.
func arrivalEntity(a arrival) uint64 { return uint64(a.rngSeed) }

// shardSeed derives the RNG seed of one scheduling shard. A
// golden-ratio stride keeps shard streams away from each other and
// from the population stream at Seed+1.
func shardSeed(seed int64, shard int) int64 {
	return int64(uint64(seed) + uint64(shard+1)*0x9E3779B97F4A7C15)
}

// scheduleCtx is the shared read-only state of one campaign's
// scheduling phase: the household population with its precomputed
// samplers, and the per-metro nearest-site lists (NearestMLabSite
// re-sorted all sites per arrival before; every shard now reads the
// same precomputed slices).
type scheduleCtx struct {
	households  []Household
	hhSampler   *stats.WeightedSampler
	hourSampler *stats.WeightedSampler
	// sites maps a metro to its candidate M-Lab sites under the
	// campaign's selection mode (slack 6 ms for BattleForNet, the
	// single nearest tier otherwise).
	sites map[string][]*topogen.MLabSite
}

// newScheduleCtx precomputes the campaign's scheduling state. The
// per-metro site lists are exactly NearestMLabSite's output, so the
// schedule draws are unchanged.
func newScheduleCtx(w *topogen.World, cfg CollectConfig, households []Household,
	hw []float64, hourW *[24]float64) *scheduleCtx {

	ctx := &scheduleCtx{
		households:  households,
		hhSampler:   stats.NewWeightedSampler(hw),
		hourSampler: stats.NewWeightedSampler(hourW[:]),
		sites:       make(map[string][]*topogen.MLabSite),
	}
	slack := 0.0
	if cfg.BattleForNet {
		slack = 6
	}
	for _, h := range households {
		m := h.Endpoint.Metro
		if _, ok := ctx.sites[m]; !ok {
			ctx.sites[m] = w.NearestMLabSite(m, slack)
		}
	}
	return ctx
}

// scheduleShard draws the arrivals of one shard: tests [first,
// first+count) of the campaign, scheduled from the shard's own RNG
// stream.
func scheduleShard(w *topogen.World, cfg CollectConfig, ctx *scheduleCtx,
	shard, count int) []arrival {

	rng := rand.New(rand.NewSource(shardSeed(cfg.Seed, shard)))
	out := make([]arrival, 0, count)
	for n := 0; n < count; n++ {
		hi := ctx.hhSampler.Pick(rng)
		h := ctx.households[hi]
		metro := w.Topo.MustMetro(h.Endpoint.Metro)
		localH := ctx.hourSampler.Pick(rng)
		day := rng.Intn(cfg.Days)
		utcH := ((localH-metro.UTCOffset)%24 + 24) % 24
		minute := day*1440 + utcH*60 + rng.Intn(60)

		sites := ctx.sites[h.Endpoint.Metro]
		if cfg.BattleForNet {
			// The Battle-for-the-Net wrapper tests back-to-back against
			// up to five servers in the region (§2.2).
			if len(sites) > 5 {
				sites = sites[:5]
			}
		} else if len(sites) > 1 {
			// The M-Lab backend picks one server near the client.
			i := rng.Intn(len(sites))
			sites = sites[i : i+1]
		}
		for _, site := range sites {
			out = append(out, arrival{
				shard: shard, ord: len(out), hh: hi, minute: minute, site: site,
				entropy: rng.Uint32(),
				lag:     -2 + rng.Intn(13),
				rngSeed: rng.Int63(),
			})
			minute += 2 + rng.Intn(3) // back-to-back tests (BattleForNet)
		}
	}
	return out
}

// Chunk is one contiguous slice of a streamed campaign: the published
// records of schedule ids [FirstID, FirstID+scheduled). Chunks arrive
// at the sink in id order, and concatenating their Tests and Traces
// reproduces the batch Corpus byte-for-byte.
type Chunk struct {
	// Index is the chunk's position in the stream (0-based).
	Index int
	// FirstID is the schedule id of the chunk's first arrival.
	FirstID int
	Tests   []*ndt.Test
	Traces  []*traceroute.Trace
	// TestsWithoutTrace counts this chunk's busy-collector losses; the
	// campaign total is the sum over chunks.
	TestsWithoutTrace int
	// Completeness is this chunk's slice of the fault ledger (zero when
	// faults are off); the campaign ledger is the field-wise sum.
	Completeness Completeness
	// Watermark is the largest scheduled minute covered by the chunk.
	// Every later chunk's tests start at minute ≥ Watermark, and every
	// later trace launches at minute ≥ Watermark−2 (the most negative
	// collector lag) — the bound streaming consumers use to finalize
	// time-windowed state.
	Watermark int
}

// StreamStats summarizes a streamed campaign: the totals a batch
// Corpus would carry, plus the streaming envelope.
type StreamStats struct {
	Chunks            int
	Tests             int
	Traces            int
	TestsWithoutTrace int
	Completeness      Completeness
	// PeakInFlight is the largest number of scheduled tests resident in
	// one chunk — the memory high-water mark of the record window.
	PeakInFlight int
	// WallSeconds and TestsPerSec time the whole collection (schedule
	// through last chunk published).
	WallSeconds float64
	TestsPerSec float64
}

// addChunk folds one chunk into the running totals.
func (st *StreamStats) addChunk(c *Chunk, scheduled int) {
	st.Chunks++
	st.Tests += len(c.Tests)
	st.Traces += len(c.Traces)
	st.TestsWithoutTrace += c.TestsWithoutTrace
	st.Completeness.Merge(c.Completeness)
	if scheduled > st.PeakInFlight {
		st.PeakInFlight = scheduled
	}
}

// Collect runs a full crowdsourced campaign serially. The corpus is
// identical to CollectParallel with any worker count.
func Collect(w *topogen.World, cfg CollectConfig) (*Corpus, error) {
	return CollectParallel(w, cfg, 1)
}

// ErrInterrupted marks a campaign stopped early by cooperative
// cancellation: in-flight chunks were drained and published, nothing
// was torn, and the work is resumable from the last durable chunk.
// Callers detect it with errors.Is.
var ErrInterrupted = errors.New("campaign interrupted")

// ctxErr folds cooperative cancellation into the collection error
// chain: nil while ctx lives, otherwise the context's cause (the
// interrupt sentinel the CLI cancels with, or context.Canceled).
func ctxErr(ctx context.Context) error {
	if ctx.Err() != nil {
		return fmt.Errorf("platform: collection interrupted: %w", context.Cause(ctx))
	}
	return nil
}

// CollectParallel runs a full crowdsourced campaign with the given
// worker count, materializing the whole corpus in memory. It is
// CollectStream with an appending sink, so batch and streamed
// collection are byte-identical by construction.
//
// Determinism contract: the corpus depends only on (World, cfg) —
// scheduling is split into cfg.Shards independent RNG streams that are
// merged in (minute, shard, ord) order, the single-threaded-collector
// state is evaluated in one deterministic sequential sweep over the
// merged schedule, and each arrival then executes against its own
// pre-seeded RNG. Workers only change how the scheduling and execution
// phases are spread over goroutines, never which draws are made.
func CollectParallel(w *topogen.World, cfg CollectConfig, workers int) (*Corpus, error) {
	return CollectParallelCtx(context.Background(), w, cfg, workers)
}

// CollectParallelCtx is CollectParallel under cooperative cancellation:
// a cancelled ctx stops the campaign at the next chunk boundary with an
// error wrapping the context's cause.
func CollectParallelCtx(ctx context.Context, w *topogen.World, cfg CollectConfig, workers int) (*Corpus, error) {
	corpus := &Corpus{}
	st, err := CollectStreamCtx(ctx, w, cfg, workers, func(c *Chunk) error {
		corpus.Tests = append(corpus.Tests, c.Tests...)
		corpus.Traces = append(corpus.Traces, c.Traces...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	corpus.TestsWithoutTrace = st.TestsWithoutTrace
	corpus.Completeness = st.Completeness
	return corpus, nil
}

// CollectStream runs the campaign and hands the corpus to sink one
// bounded chunk at a time instead of materializing it. Scheduling, the
// fault retry plan, and the busy-collector sweep are unchanged — they
// hold O(Tests) of small per-arrival bookkeeping (~100 bytes each) —
// but the heavy records (tests with web100 snapshots, traces with hop
// lists) exist only for the chunk currently executing, so memory stays
// flat at ChunkTests records regardless of campaign size.
//
// The sink is called serially, in chunk order. A sink error aborts the
// campaign and is returned. The chunk's slices are not reused; the sink
// may retain them.
func CollectStream(w *topogen.World, cfg CollectConfig, workers int, sink func(*Chunk) error) (*StreamStats, error) {
	return CollectStreamCtx(context.Background(), w, cfg, workers, sink)
}

// CollectStreamCtx is CollectStream under cooperative cancellation.
// Cancellation is honored at phase and chunk boundaries: chunks already
// claimed by pipeline producers are drained through the sink (nothing
// published is ever torn), no new chunks start, and the error wraps the
// context's cause — ErrInterrupted when the CLI's signal handler
// cancelled, so callers can tell a resumable interrupt from a failure.
func CollectStreamCtx(ctx context.Context, w *topogen.World, cfg CollectConfig, workers int, sink func(*Chunk) error) (*StreamStats, error) {
	started := time.Now()
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if workers < 1 {
		workers = 1
	}
	reg := cfg.Obs
	collectSpan := reg.Span("collect")
	defer collectSpan.End()

	// The fault plane. A disabled profile yields a nil injector — the
	// draw-free no-op — so every fault branch below is byte-invisible
	// when faults are off.
	faultSeed := cfg.FaultSeed
	if faultSeed == 0 {
		faultSeed = cfg.Seed
	}
	inj := faults.NewInjector(faultSeed, cfg.Faults, reg)

	popSpan := reg.Span("collect.population")
	households := population(w, cfg.PerPoolClients, cfg.Seed+1)
	popSpan.End()
	reg.Gauge("collect.households").Set(int64(len(households)))
	runner := ndt.NewRunner(w)
	tracer := traceroute.New(w.Topo, w.Resolver, cfg.Artifacts)

	// Weight households by ISP subscriber counts so the corpus mirrors
	// the real user base (Table 1).
	subs := map[string]float64{}
	for _, p := range datasets.AccessISPs() {
		s := p.SubscribersM
		if s == 0 {
			s = 0.4 // below-table ISPs still contribute a trickle
		}
		subs[p.Name] = s
	}
	hw := make([]float64, len(households))
	for i, h := range households {
		hw[i] = subs[h.ISP]
	}

	// Hour-of-day weights for arrivals, in client local time. Sampling:
	// pick household, then pick a local hour by volume, then convert to
	// a UTC minute on a random day.
	var hourW [24]float64
	for h := 0; h < 24; h++ {
		hourW[h] = testVolumeShape(float64(h) + 0.5)
	}

	// Phase 1 — scheduling, parallel over shards. Shard s draws
	// Tests/shards arrivals (the first Tests%shards shards draw one
	// more) from its own stream.
	schedSpan := reg.Span("collect.schedule")
	sctx := newScheduleCtx(w, cfg, households, hw, &hourW)
	perShard := make([][]arrival, shards)
	runIndexed(shards, workers, func(s int) {
		count := cfg.Tests / shards
		if s < cfg.Tests%shards {
			count++
		}
		// Transient shard failures lose the shard's scheduling work;
		// the retry redoes it. scheduleShard is pure, so the surviving
		// attempt is identical to a first-try success and the corpus is
		// unchanged — only the work (and the fault counters) differ.
		for attempt := inj.ShardAttempts(s); attempt > 0; attempt-- {
			perShard[s] = scheduleShard(w, cfg, sctx, s, count)
		}
	})
	total := 0
	for _, sh := range perShard {
		total += len(sh)
	}
	if reg != nil {
		for s, sh := range perShard {
			reg.Gauge(fmt.Sprintf("collect.shard.%02d.tests", s)).Set(int64(len(sh)))
		}
	}
	schedule := make([]arrival, 0, total)
	for _, sh := range perShard {
		schedule = append(schedule, sh...)
	}
	// Ties on minute resolve by (shard, ord) — the concatenation order —
	// so the merge is a total order independent of worker count.
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].minute < schedule[j].minute })
	schedSpan.End()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Phase 1.5 — retry planning (fault plane only). Launch-blocking
	// faults (server outages, test aborts) are evaluated per attempt and
	// retried on a simulated clock: exponential backoff with
	// deterministic jitter, bounded by MaxRetries and the per-test
	// deadline. The whole phase is a serial sweep over pure per-entity
	// streams, so it is identical at every worker count. execMinute and
	// dropped stay nil when faults are off — no branch below them can
	// then perturb the clean path.
	var (
		execMinute []int
		dropped    []bool
	)
	if inj != nil {
		retrySpan := reg.Span("collect.retries")
		execMinute = make([]int, len(schedule))
		dropped = make([]bool, len(schedule))
		lastFail := make([]faults.FaultSet, len(schedule))
		cumFail := make([]faults.FaultSet, len(schedule))
		pending := make([]int, 0, len(schedule)/8+1)
		for id, a := range schedule {
			execMinute[id] = a.minute
			if fs := inj.TestAttempt(a.site.Metro, arrivalEntity(a), a.minute, 0); fs != 0 {
				lastFail[id], cumFail[id] = fs, fs
				pending = append(pending, id)
			}
		}
		for wave := 1; wave <= inj.MaxRetries() && len(pending) > 0; wave++ {
			waveSpan := retrySpan.Child(fmt.Sprintf("wave.%d", wave))
			// Filter in place: the write index never passes the read
			// index, so pending doubles as next wave's worklist.
			next := pending[:0]
			for _, id := range pending {
				a := schedule[id]
				entity := arrivalEntity(a)
				m := execMinute[id] + inj.RetryDelayMin(entity, wave)
				if m > a.minute+inj.DeadlineMin() {
					dropped[id] = true
					inj.Abandoned(cumFail[id])
					continue
				}
				inj.Retried(lastFail[id])
				execMinute[id] = m
				if fs := inj.TestAttempt(a.site.Metro, entity, m, wave); fs != 0 {
					lastFail[id] = fs
					cumFail[id] |= fs
					next = append(next, id)
					continue
				}
				inj.Recovered(cumFail[id])
			}
			pending = next
			waveSpan.End()
		}
		for _, id := range pending { // out of retries
			dropped[id] = true
			inj.Abandoned(cumFail[id])
		}
		retrySpan.End()
	}

	// Phase 2 — the single-threaded traceroute collector (§4.1) is
	// global sequential state: sweep the merged schedule once in time
	// order, deciding per arrival whether its traceroute launches and
	// when. This is pure integer bookkeeping and stays serial.
	launches := make([]int, len(schedule)) // launch minute, -1 = collector busy
	// The busy table is dense: site pointers index into one slot per
	// server (all sites live in w.MLabSites, so the pointer map is
	// exact), replacing a per-arrival string-keyed map lookup.
	siteOff := make(map[*topogen.MLabSite]int, len(w.MLabSites))
	nServers := 0
	for i := range w.MLabSites {
		siteOff[&w.MLabSites[i]] = nServers
		nServers += len(w.MLabSites[i].Servers)
	}
	sweepSpan := reg.Span("collect.sweep")
	busyRejected := reg.Counter("collect.trace.rejected_busy")
	busyUntil := make([]int, nServers)
	// Under faults, retries move tests off their scheduled minute, so
	// the sweep re-sorts surviving arrivals by execution time (ties by
	// id, i.e. the clean merge order) and abandoned tests never reach
	// the collector. Clean runs keep the identity order — the loop below
	// is then exactly the pre-fault sweep.
	order := make([]int, 0, len(schedule))
	for id := range schedule {
		if dropped != nil && dropped[id] {
			launches[id] = -1
			continue
		}
		order = append(order, id)
	}
	if inj != nil {
		sort.SliceStable(order, func(i, j int) bool {
			return execMinute[order[i]] < execMinute[order[j]]
		})
	}
	for _, id := range order {
		a := schedule[id]
		minute := a.minute
		if execMinute != nil {
			minute = execMinute[id]
		}
		srv := siteOff[a.site] + int(a.entropy)%len(a.site.Servers)
		if busyUntil[srv] > minute {
			launches[id] = -1
			busyRejected.Inc()
			continue
		}
		// Launch lag: the collector queues behind test teardown, and
		// recorded timestamps skew slightly, so a trace can carry a
		// timestamp up to ~2 minutes BEFORE its test and as much as ~10
		// minutes after — which is why the paper's ±window matching
		// recovers more pairs than the after-only window (§4.1).
		launch := minute + a.lag
		if launch < 0 {
			launch = 0
		}
		busyUntil[srv] = launch + cfg.TracerouteDurationMin
		launches[id] = launch
	}
	sweepSpan.End()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Phase 3 — execution, parallel over arrivals, chunked. Each
	// arrival runs its NDT test and (when scheduled) its traceroute
	// against a private RNG seeded during scheduling, so results land in
	// fixed slots regardless of which worker computes them. Each worker
	// owns one Rand and re-Seeds it per arrival: Seed(s) leaves the
	// generator in exactly the NewSource(s) state, so the draws are
	// unchanged but the ~5 KB source allocation happens once per worker
	// instead of once per arrival (it was the campaign's largest
	// allocation site). Chunking changes only which ids execute
	// together, never the draws: the per-arrival RNG makes every id's
	// result independent of its neighbors, and ids publish in order
	// within and across chunks, so the concatenated stream is the batch
	// corpus.
	chunkTests := cfg.ChunkTests
	if chunkTests <= 0 {
		chunkTests = DefaultChunkTests
	}
	startChunk := cfg.StartChunk
	if startChunk < 0 {
		startChunk = 0
	}
	execSpan := reg.Span("collect.execute")
	workerRNGs := make([]*rand.Rand, workers)
	for i := range workerRNGs {
		workerRNGs[i] = rand.New(rand.NewSource(0))
	}
	st := &StreamStats{}
	perShardTraces := make([]int64, shards)
	// execArrival runs one scheduled test (and its traceroute, when the
	// collector launched one) against the arrival's pre-seeded private
	// RNG, writing the records into slot i. Which goroutine runs it —
	// a per-chunk barrier worker or a whole-chunk pipeline producer —
	// can never perturb the draws.
	execArrival := func(rng *rand.Rand, id int, tests []*ndt.Test, traces []*traceroute.Trace, i int) error {
		if dropped != nil && dropped[id] {
			return nil // abandoned by the retry planner; never ran
		}
		a := schedule[id]
		minute := a.minute
		if execMinute != nil {
			minute = execMinute[id]
		}
		h := households[a.hh]
		server := a.site.Servers[int(a.entropy)%len(a.site.Servers)]
		rng.Seed(a.rngSeed)
		test, err := runner.Run(id, h.Endpoint, h.ISP, h.TierMbps, h.WiFiCapMbps,
			server, minute, a.entropy, rng)
		if err != nil {
			return err
		}
		if inj != nil {
			if frac, ok := inj.TruncatesTest(arrivalEntity(a)); ok {
				test.Truncate(frac)
			}
		}
		tests[i] = test
		if launches[id] < 0 {
			return nil
		}
		tr, err := tracer.Trace(server.Endpoint, h.Endpoint, a.entropy+1, launches[id], rng)
		if err != nil {
			return err
		}
		inj.PerturbTrace(arrivalEntity(a), tr)
		traces[i] = tr
		return nil
	}
	if cfg.PipelineChunks > 0 {
		err := collectChunksPipelined(&pipelineRun{
			ctx:      ctx,
			schedule: schedule, chunkTests: chunkTests, window: cfg.PipelineChunks,
			workers: workers, workerRNGs: workerRNGs, startChunk: startChunk,
			launches: launches, dropped: dropped, inj: inj,
			perShardTraces: perShardTraces, reg: reg,
			exec: execArrival, sink: sink, st: st,
		})
		execSpan.End()
		if err != nil {
			return nil, err
		}
	} else {
		for lo := startChunk * chunkTests; lo < len(schedule); lo += chunkTests {
			if err := ctxErr(ctx); err != nil {
				execSpan.End()
				return nil, err
			}
			hi := lo + chunkTests
			if hi > len(schedule) {
				hi = len(schedule)
			}
			tests := make([]*ndt.Test, hi-lo)
			traces := make([]*traceroute.Trace, hi-lo)
			errs := make([]error, hi-lo)
			runIndexedWorkers(hi-lo, workers, func(worker, i int) {
				if err := execArrival(workerRNGs[worker], lo+i, tests, traces, i); err != nil {
					errs[i] = err
				}
			})
			for _, err := range errs {
				if err != nil {
					execSpan.End()
					return nil, err
				}
			}
			chunk := publishChunk(lo/chunkTests, lo, hi, schedule, tests, traces, launches, dropped, inj)
			for i, tr := range traces {
				if tr != nil {
					perShardTraces[schedule[lo+i].shard]++
				}
			}
			st.addChunk(chunk, hi-lo)
			if reg != nil {
				reg.Counter("collect.tests").Add(uint64(len(chunk.Tests)))
				reg.Counter("collect.traces").Add(uint64(len(chunk.Traces)))
				reg.Counter("collect.chunks").Inc()
			}
			if err := sink(chunk); err != nil {
				execSpan.End()
				return nil, fmt.Errorf("platform: corpus sink at chunk %d: %w", chunk.Index, err)
			}
			// Live telemetry rides the serial sink side: chunk watermarks
			// arrive in schedule order here, so the sampler observes a
			// monotone simulated clock. Both calls are nil-safe no-ops on
			// an unattached registry.
			reg.Events().Publish("collect.chunk", "", chunk.Watermark, int64(chunk.Index))
			reg.TimeSeries().Advance(chunk.Watermark)
		}
		execSpan.End()
	}

	st.WallSeconds = time.Since(started).Seconds()
	if st.WallSeconds > 0 {
		st.TestsPerSec = float64(st.Tests) / st.WallSeconds
	}
	if reg != nil {
		for s, n := range perShardTraces {
			reg.Gauge(fmt.Sprintf("collect.shard.%02d.traces", s)).Set(n)
		}
		reg.Gauge("collect.stream.chunks").Set(int64(st.Chunks))
		reg.Gauge("collect.stream.peak_inflight").Set(int64(st.PeakInFlight))
		reg.Gauge("collect.stream.tests_per_sec").Set(int64(st.TestsPerSec))
	}
	finalMinute := -1
	if len(schedule) > 0 {
		finalMinute = schedule[len(schedule)-1].minute
	}
	reg.TimeSeries().Finalize(finalMinute)
	reg.Events().Publish("collect.done", "", finalMinute, int64(st.Tests))
	return st, nil
}

// publishChunk turns the executed slots of schedule ids [lo, hi) into
// one published Chunk. It is the batch publication logic applied to an
// id range: clean campaigns publish every test in id order and the
// launched traces in id order; under faults, abandoned tests vanish,
// corrupt rows drop, and the chunk's completeness delta accounts for
// each loss.
func publishChunk(index, lo, hi int, schedule []arrival, tests []*ndt.Test,
	traces []*traceroute.Trace, launches []int, dropped []bool, inj *faults.Injector) *Chunk {

	chunk := &Chunk{Index: index, FirstID: lo, Watermark: schedule[hi-1].minute}
	if inj == nil {
		chunk.Tests = tests
		nTraces := 0
		for _, tr := range traces {
			if tr != nil {
				nTraces++
			}
		}
		chunk.Traces = make([]*traceroute.Trace, 0, nTraces)
		for i, tr := range traces {
			if tr != nil {
				chunk.Traces = append(chunk.Traces, tr)
			} else if launches[lo+i] < 0 {
				chunk.TestsWithoutTrace++
			}
		}
		return chunk
	}
	// Publication under faults: abandoned tests never produced records,
	// corrupted rows are dropped at publication time (their traces
	// survive — the trace feed is a separate pipeline), and the
	// completeness ledger accounts for every loss.
	comp := Completeness{ScheduledTests: hi - lo}
	chunk.Tests = make([]*ndt.Test, 0, hi-lo)
	chunk.Traces = make([]*traceroute.Trace, 0, hi-lo)
	for i, test := range tests {
		if dropped[lo+i] {
			comp.AbandonedTests++
			continue
		}
		if test == nil {
			continue
		}
		if inj.CorruptsRow(arrivalEntity(schedule[lo+i])) {
			comp.DroppedRows++
			continue
		}
		if test.Truncated {
			comp.TruncatedTests++
		}
		chunk.Tests = append(chunk.Tests, test)
	}
	for i, tr := range traces {
		if tr == nil {
			if !dropped[lo+i] && launches[lo+i] < 0 {
				chunk.TestsWithoutTrace++
			}
			continue
		}
		if tr.Degraded {
			comp.DegradedTraces++
		}
		chunk.Traces = append(chunk.Traces, tr)
	}
	chunk.Completeness = comp
	return chunk
}

// runIndexed invokes fn(i) for every i in [0, n), spread over up to
// workers goroutines. With one worker it runs inline.
func runIndexed(n, workers int, fn func(i int)) {
	runIndexedWorkers(n, workers, func(_, i int) { fn(i) })
}

// runIndexedWorkers is runIndexed with the executing worker's index
// passed through, so callers can reuse per-worker scratch state (each
// worker index runs on exactly one goroutine at a time).
func runIndexedWorkers(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
