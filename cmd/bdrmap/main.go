// Command bdrmap infers the interdomain borders of a vantage-point
// network from a prefix-campaign dataset (cmd/ndtsim -campaign), the
// analysis behind Table 3.
//
// Usage:
//
//	ndtsim -campaign bed-us -o bed.json
//	bdrmap -in bed.json -org "Comcast Cable Communications"
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"throughputlab/internal/bdrmap"
	"throughputlab/internal/export"
	"throughputlab/internal/topology"
)

func main() {
	in := flag.String("in", "-", "input campaign dataset (- = stdin)")
	org := flag.String("org", "", "VP organization name (as in the dataset's org table)")
	top := flag.Int("top", 20, "borders to print per relationship class (0 = all)")
	flag.Parse()

	if err := run(*in, *org, *top); err != nil {
		fmt.Fprintln(os.Stderr, "bdrmap:", err)
		os.Exit(1)
	}
}

func run(in, orgName string, top int) error {
	f := os.Stdin
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	ds, err := export.Read(f)
	if err != nil {
		return err
	}
	if orgName == "" {
		return fmt.Errorf("-org is required; available orgs: %d entries in the dataset", len(ds.Public.Orgs))
	}
	orgASNs := ds.Public.Orgs[orgName]
	if len(orgASNs) == 0 {
		names := make([]string, 0, len(ds.Public.Orgs))
		for n := range ds.Public.Orgs {
			names = append(names, n)
		}
		sort.Strings(names)
		hint := ""
		if len(names) > 0 {
			hint = fmt.Sprintf(" (e.g. %q)", names[0])
		}
		return fmt.Errorf("unknown org %q%s", orgName, hint)
	}
	lk := ds.Lookups()
	res := bdrmap.Run(ds.Traces, bdrmap.Opts{
		OrgASNs: orgASNs,
		MapIt:   lk.MapItOpts(),
		Rel: func(n topology.ASN) topology.Rel {
			for _, o := range orgASNs {
				if r := lk.Rel(o, n); r != topology.RelNone {
					return r
				}
			}
			return topology.RelNone
		},
		// No alias resolver without a live VP: router-level counts fall
		// back to distinct interface pairs.
	})

	fmt.Printf("org %s (ASNs %v)\n", orgName, orgASNs)
	fmt.Printf("AS-level borders: %d; router/interface-level: %d\n", res.ASCount, res.RouterCount)
	for _, rel := range []topology.Rel{topology.RelCustomer, topology.RelProvider, topology.RelPeer, topology.RelNone} {
		e := res.ByRel[rel]
		if e.AS == 0 {
			continue
		}
		fmt.Printf("  %-9s AS=%d router=%d\n", rel, e.AS, e.Router)
	}
	fmt.Println("\nborders by traceroute volume:")
	borders := append([]bdrmap.Border(nil), res.Borders...)
	sort.Slice(borders, func(i, j int) bool { return borders[i].Traces > borders[j].Traces })
	n := len(borders)
	if top > 0 && top < n {
		n = top
	}
	for _, b := range borders[:n] {
		fmt.Printf("  AS%-8d %-9s routers=%d traces=%d\n", b.Neighbor, b.Rel, b.RouterPairs, b.Traces)
	}
	return nil
}
