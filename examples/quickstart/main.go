// Quickstart: generate a synthetic Internet, run a handful of NDT
// tests from one household, and ask the congestion detector what it
// sees — the core loop of the whole library in ~80 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"throughputlab/internal/core"
	"throughputlab/internal/ndt"
	"throughputlab/internal/topogen"
)

func main() {
	// 1. A synthetic Internet: access ISPs, transit providers, content
	// networks, M-Lab sites — with the GTT–AT&T interconnection
	// saturated at peak hours (the paper's Figure 5a case).
	world := topogen.MustGenerate(topogen.SmallConfig())
	fmt.Printf("world: %d ASes, %d links, %d M-Lab servers\n",
		world.Topo.NumASes(), len(world.Topo.Links()), len(world.MLabServers()))

	// 2. One AT&T household in Atlanta on an 18 Mbps plan.
	client, ok := world.NewClient("AT&T", "atl")
	if !ok {
		log.Fatal("no AT&T pool in atl")
	}
	// M-Lab would pick the nearest site; several tie in Atlanta, and
	// WHICH one the client lands on decides what it can observe (§5).
	// Take the GTT-hosted one, whose interconnection to AT&T is the
	// congested link.
	var server topogen.Host
	for _, site := range world.NearestMLabSite("atl", 1) {
		if site.HostNet == "GTT" {
			server = site.Servers[0]
		}
	}
	if server.Name == "" {
		log.Fatal("no GTT site in atl")
	}
	fmt.Printf("client %v (AT&T, atl) → server %s in %s\n\n",
		client.Addr, server.Name, server.Network)

	// 3. Run NDT tests across the day and collect the series.
	runner := ndt.NewRunner(world)
	rng := rand.New(rand.NewSource(42))
	series := &core.Series{}
	fmt.Println("hour  down Mbps  RTT ms  retrans")
	for hour := 0; hour < 24; hour += 3 {
		minute := ((hour + 5) % 24) * 60 // convert atl local → UTC
		for rep := 0; rep < 12; rep++ {
			test, err := runner.Run(hour*100+rep, client, "AT&T", 18, 0,
				server, minute+rep, uint32(rep), rng)
			if err != nil {
				log.Fatal(err)
			}
			series.Add(float64(hour), test)
			if rep == 0 {
				fmt.Printf("%4d  %9.2f  %6.1f  %.4f\n",
					hour, test.DownMbps, test.RTTms, test.RetransRate)
			}
		}
	}

	// 4. Peak vs off-peak verdict.
	cfg := core.DefaultDetector()
	cfg.PeakHours = []int{21}
	cfg.OffHours = []int{9, 12}
	cfg.MinSamples = 10
	v := core.Detect(series, cfg)
	fmt.Printf("\npeak median %.2f Mbps, off-peak %.2f Mbps, drop %.0f%%\n",
		v.PeakMedian, v.OffMedian, 100*v.Drop)
	if v.Congested {
		fmt.Println("verdict: path shows peak-hour congestion " +
			"(but WHERE it is congested needs path data — see examples/tomography)")
	} else {
		fmt.Println("verdict: no peak-hour congestion evidence")
	}
}
