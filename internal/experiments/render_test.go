package experiments

import (
	"strings"
	"testing"
)

// TestRenderedArtifactsCarryKeyContent pins the rendered output of each
// experiment to the headers and rows the paper's artifacts carry, so a
// refactor cannot silently drop a column.
func TestRenderedArtifactsCarryKeyContent(t *testing.T) {
	cases := []struct {
		name string
		want []string
	}{
		{"fig1", []string{"1 hop", "2+ hops", "Windstream", "directly-connected"}},
		{"table1", []string{"Comcast", "23329000", "Mediacom", "1085000"}},
		{"table2", []string{"#links", "tests/link", "router groups"}},
		{"table3", []string{"bed-us", "san6-us", "CUST", "PEER", "rtr"}},
		{"fig2", []string{"bdrmap AS", "M-Lab %", "Speedtest %"}},
		{"fig3", []string{"PEER", "bdrmap AS"}},
		{"fig4", []string{"Alexa", "Mlab−Alexa", "uncovered"}},
		{"fig5", []string{"GTT atl", "AT&T", "Comcast", "RTT ms", "retrans %", "samples", "congested=true"}},
		{"matching", []string{"window", "after-only", "±window", "single-threaded"}},
		{"thresholds", []string{"drop thr", "precision", "recall"}},
		{"bias", []string{"night/evening", "tests/client"}},
		{"tomography", []string{"bad IP links", "AS-level verdicts", "mislocalized"}},
		{"signatures", []string{"self-induced", "external", "accuracy"}},
		{"tslp", []string{"probes/link/day", "diurnal elevation", "TP="}},
		{"placement", []string{"topology-aware", "latency-first", "greedy pick"}},
		{"battlefornet", []string{"battle-for-the-net", "IP links seen", "traced"}},
	}
	for _, c := range cases {
		entry, ok := Find(c.name)
		if !ok {
			t.Fatalf("experiment %q missing", c.name)
		}
		r, err := entry.Run(env)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out := r.Render()
		for _, want := range c.want {
			if !strings.Contains(out, want) {
				t.Errorf("%s render missing %q", c.name, want)
			}
		}
	}
}

// TestSnapshotsRender separately (it builds a second world).
func TestSnapshotsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a world")
	}
	r, err := Snapshots(env)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"M-Lab servers", "flat", "Speedtest A", "Speedtest B"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshots render missing %q", want)
		}
	}
}
