// Package web100 synthesizes the server-side TCP instrumentation NDT
// records (§2.1: "the server logs statistics including round trip
// time, bytes sent, received, and acknowledged, congestion window
// size, and the number of congestion signals (multiplicative downward
// congestion window adjustments)"). The real counters come from the
// web100 kernel patch; here they are derived consistently from the
// fluid-model outcome of a flow, so analyses written against the M-Lab
// schema (the 2014/2015 reports used CongSignals and retransmission
// rates alongside throughput) can run unchanged.
package web100

import (
	"math"
	"math/rand"

	"throughputlab/internal/netsim"
)

// Snapshot is the end-of-test counter set, named after the web100/NDT
// variables the M-Lab analyses consumed.
type Snapshot struct {
	// DurationSec is the measured transfer duration.
	DurationSec float64
	// HCThruOctetsAcked is the total bytes acknowledged (the NDT
	// throughput numerator).
	HCThruOctetsAcked int64
	// SegsOut and SegsRetrans count data segments sent and retransmitted.
	SegsOut, SegsRetrans int64
	// CongSignals counts multiplicative cwnd decreases.
	CongSignals int
	// MinRTTms and SmoothedRTTms are the flow RTT statistics.
	MinRTTms, SmoothedRTTms float64
	// CurCwndBytes is the final congestion window (≈ BDP at the
	// achieved rate).
	CurCwndBytes int
	// SndLimTimeCwndFrac, SndLimTimeRwinFrac and SndLimTimeSenderFrac
	// split the test duration by what limited the sender (they sum to
	// 1): the network (cwnd), the receiver (rwin — e.g. a Wi-Fi-starved
	// client), or the sender itself (an unconstrained fast path).
	SndLimTimeCwndFrac, SndLimTimeRwinFrac, SndLimTimeSenderFrac float64
}

const segmentBytes = 1460

// Synthesize derives a Snapshot from a flow outcome. durationSec is
// the test length (NDT runs ~10 s per direction); rng adds counter
// jitter and may be nil.
func Synthesize(res netsim.FlowResult, durationSec float64, rng *rand.Rand) Snapshot {
	if durationSec <= 0 {
		durationSec = 10
	}
	bytes := res.ThroughputMbps * 1e6 / 8 * durationSec
	segs := int64(bytes / segmentBytes)
	retrans := int64(float64(segs) * res.LossRate)
	// A congestion signal is a loss EPISODE, not a lost segment; bursts
	// average ~3 segments, and there is at most about one signal per
	// RTT.
	signals := int(float64(retrans) / 3)
	if maxSignals := int(durationSec * 1000 / math.Max(res.RTTms, 1)); signals > maxSignals {
		signals = maxSignals
	}
	if rng != nil && signals > 0 {
		signals += rng.Intn(3) - 1
		if signals < 1 {
			signals = 1
		}
	}

	s := Snapshot{
		DurationSec:       durationSec,
		HCThruOctetsAcked: int64(bytes),
		SegsOut:           segs + retrans,
		SegsRetrans:       retrans,
		CongSignals:       signals,
		MinRTTms:          res.StartRTTms,
		SmoothedRTTms:     res.RTTms,
		CurCwndBytes:      int(res.ThroughputMbps * 1e6 / 8 * res.RTTms / 1000),
	}
	switch res.Kind {
	case netsim.LimitHomeWiFi:
		// The starved client advertises a small window.
		s.SndLimTimeRwinFrac = 0.85
		s.SndLimTimeCwndFrac = 0.10
		s.SndLimTimeSenderFrac = 0.05
	case netsim.LimitLink, netsim.LimitLatency:
		s.SndLimTimeCwndFrac = 0.90
		s.SndLimTimeRwinFrac = 0.05
		s.SndLimTimeSenderFrac = 0.05
	default: // plan-shaped or unconstrained: the sender paces
		s.SndLimTimeCwndFrac = 0.35
		s.SndLimTimeRwinFrac = 0.05
		s.SndLimTimeSenderFrac = 0.60
	}
	return s
}

// Truncate rewrites the snapshot as the partial record a mid-transfer
// abort leaves behind: the cumulative counters cover only the
// delivered prefix of the transfer, and the send-limit accounting —
// the fields the web100 poller finalizes last — is missing entirely
// (Complete turns false). frac is the fraction of the transfer that
// completed, clamped to [0, 1].
func (s *Snapshot) Truncate(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	s.DurationSec *= frac
	s.HCThruOctetsAcked = int64(float64(s.HCThruOctetsAcked) * frac)
	s.SegsOut = int64(float64(s.SegsOut) * frac)
	s.SegsRetrans = int64(float64(s.SegsRetrans) * frac)
	s.CongSignals = int(float64(s.CongSignals) * frac)
	s.SndLimTimeCwndFrac, s.SndLimTimeRwinFrac, s.SndLimTimeSenderFrac = 0, 0, 0
}

// Complete reports whether the snapshot carries the full field set a
// finished test writes. Synthesize always produces complete snapshots
// (the send-limit fractions sum to 1); a truncated snapshot has them
// zeroed, which is how degradation-aware consumers recognize partial
// records without a side channel.
func (s Snapshot) Complete() bool {
	return s.SndLimTimeCwndFrac+s.SndLimTimeRwinFrac+s.SndLimTimeSenderFrac > 0.99
}

// ThroughputMbps recomputes the NDT headline number from the counters
// (consistency check and convenience).
func (s Snapshot) ThroughputMbps() float64 {
	if s.DurationSec <= 0 {
		return 0
	}
	return float64(s.HCThruOctetsAcked) * 8 / 1e6 / s.DurationSec
}

// RetransRate is SegsRetrans/SegsOut.
func (s Snapshot) RetransRate() float64 {
	if s.SegsOut == 0 {
		return 0
	}
	return float64(s.SegsRetrans) / float64(s.SegsOut)
}
