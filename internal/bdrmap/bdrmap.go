// Package bdrmap implements the analysis phase of bdrmap (Luckie et
// al., IMC 2016): from a vantage point inside a network, infer ALL of
// that network's interdomain interconnections — at the AS level and, by
// alias-resolving border interfaces into routers, at the router level —
// annotated with the business relationship to each neighbor.
//
// Collection is a traceroute campaign from the VP toward every routed
// prefix (package platform provides it); this package consumes the
// traces. Operator assignment of interface addresses reuses the MAP-IT
// machinery of package mapit, which handles the same far-side numbering
// ambiguities; bdrmap's own heuristics beyond that (per-vendor
// TTL-expired behaviour) are out of scope (DESIGN.md §7).
//
// Table 3 of the reproduced paper is a direct printout of this
// package's Result for 16 Ark VPs; Figures 2–4 intersect Results with
// the crossings observed on traces toward measurement servers and
// popular content.
package bdrmap

import (
	"math/rand"
	"sort"

	"throughputlab/internal/alias"
	"throughputlab/internal/mapit"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// Opts parameterizes a bdrmap run.
type Opts struct {
	// OrgASNs are the VP network's ASNs (the org's siblings).
	OrgASNs []topology.ASN
	// MapIt supplies the public datasets for operator inference.
	MapIt mapit.Opts
	// Rel returns the VP org's relationship to a neighbor ASN
	// (RelNone → reported as unknown).
	Rel func(neighbor topology.ASN) topology.Rel
	// Alias groups border interfaces into routers; nil skips
	// router-level analysis.
	Alias *alias.Resolver
	// AliasSeed seeds the alias resolver's probabilistic probing.
	AliasSeed int64
}

// Crossing is the first interdomain crossing on one trace out of the
// VP network.
type Crossing struct {
	Near, Far netaddr.Addr
	Neighbor  topology.ASN
}

// Border is one inferred AS-level interconnection of the VP network.
type Border struct {
	Neighbor topology.ASN
	Rel      topology.Rel
	// RouterPairs is the number of router-level interconnections
	// realizing this AS adjacency (0 when alias resolution is off).
	RouterPairs int
	// Traces is how many campaign traces crossed this border.
	Traces int
}

// Result is the border map of one VP network.
type Result struct {
	Borders []Border
	// ASCount and RouterCount are the Table 3 "ALL borders" columns.
	ASCount, RouterCount int
	// ByRel splits the counts by relationship (customer / provider /
	// peer; unknown under RelNone).
	ByRel map[topology.Rel]struct{ AS, Router int }
}

// Analyzer holds the operator inference shared between the border map
// and coverage analyses.
type Analyzer struct {
	opts Opts
	inf  *mapit.Inference
	org  map[topology.ASN]bool

	groupOnce bool
	groupOf   map[netaddr.Addr]int
}

// groups alias-resolves every labeled address once (deterministically
// for the configured seed) so the campaign's denominator and the
// coverage numerators count router pairs in the same identity space.
func (az *Analyzer) groups() map[netaddr.Addr]int {
	if az.groupOnce {
		return az.groupOf
	}
	az.groupOnce = true
	az.groupOf = map[netaddr.Addr]int{}
	if az.opts.Alias == nil {
		return az.groupOf
	}
	all := make([]netaddr.Addr, 0, len(az.inf.Operator))
	for a := range az.inf.Operator {
		all = append(all, a)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rng := rand.New(rand.NewSource(az.opts.AliasSeed))
	for gi, g := range az.opts.Alias.Group(all, rng) {
		for _, a := range g {
			az.groupOf[a] = gi
		}
	}
	return az.groupOf
}

// RouterKey maps a crossing to its router-pair identity. Without an
// alias resolver, each address is its own router.
func (az *Analyzer) RouterKey(c Crossing) [2]int {
	if az.opts.Alias == nil {
		return [2]int{int(c.Near), int(c.Far)}
	}
	g := az.groups()
	return [2]int{g[c.Near], g[c.Far]}
}

// NewAnalyzer runs operator inference over the trace corpus. For
// coverage analyses pass the union of the prefix campaign and the
// server-directed traces so every address is labeled consistently.
func NewAnalyzer(traces []*traceroute.Trace, opts Opts) *Analyzer {
	org := make(map[topology.ASN]bool, len(opts.OrgASNs))
	for _, a := range opts.OrgASNs {
		org[a] = true
	}
	return &Analyzer{opts: opts, inf: mapit.Run(traces, opts.MapIt), org: org}
}

// NewAnalyzerFromInference wraps an existing operator inference —
// typically one accumulated chunk-by-chunk with mapit.Builder during a
// streamed campaign — without re-running MAP-IT over the corpus.
func NewAnalyzerFromInference(inf *mapit.Inference, opts Opts) *Analyzer {
	org := make(map[topology.ASN]bool, len(opts.OrgASNs))
	for _, a := range opts.OrgASNs {
		org[a] = true
	}
	return &Analyzer{opts: opts, inf: inf, org: org}
}

// Inference exposes the underlying MAP-IT result.
func (az *Analyzer) Inference() *mapit.Inference { return az.inf }

// FirstCrossing finds where a trace first leaves the VP network: the
// last org-operated hop and the first hop operated by someone else.
// ok is false when the trace never visibly leaves (intra-network
// destination, unresponsive border, or inference gaps) and always for
// degraded traces — a hop lost to the fault layer exactly at the border
// would attribute the crossing to the wrong neighbor.
func (az *Analyzer) FirstCrossing(tr *traceroute.Trace) (Crossing, bool) {
	if tr.Degraded {
		return Crossing{}, false
	}
	addrs := tr.ResponsiveAddrs()
	end := len(addrs)
	if tr.Reached {
		end--
	}
	prevInOrg := false
	var prevAddr netaddr.Addr
	for i := 0; i < end; i++ {
		op, known := az.inf.Operator[addrs[i]]
		if !known {
			prevInOrg = false
			continue
		}
		if az.org[op] {
			prevInOrg, prevAddr = true, addrs[i]
			continue
		}
		if prevInOrg {
			return Crossing{Near: prevAddr, Far: addrs[i], Neighbor: op}, true
		}
		// Left the network without seeing the near side (missing hop):
		// unusable for border attribution.
		return Crossing{}, false
	}
	return Crossing{}, false
}

// Run performs the full bdrmap analysis on a prefix campaign.
func Run(traces []*traceroute.Trace, opts Opts) *Result {
	az := NewAnalyzer(traces, opts)
	return az.Borders(traces)
}

// Borders aggregates crossings of the given traces into the border
// map. When the analyzer's MAP-IT options carry an obs registry,
// crossing-match and border-classification counters accumulate there.
func (az *Analyzer) Borders(traces []*traceroute.Trace) *Result {
	acc := az.NewBorderAccumulator()
	acc.Add(traces)
	return acc.Result()
}

// BorderAccumulator folds trace chunks into the border map
// incrementally. Crossing attribution is per-trace and the neighbor
// aggregation is additive, so feeding a campaign chunk-by-chunk yields
// the identical Result to one Borders call over the concatenation.
type BorderAccumulator struct {
	az         *Analyzer
	byNeighbor map[topology.ASN]*neighborAgg
}

type neighborAgg struct {
	traces int
	pairs  map[[2]int]bool
}

// NewBorderAccumulator starts an empty border aggregation over this
// analyzer's inference.
func (az *Analyzer) NewBorderAccumulator() *BorderAccumulator {
	return &BorderAccumulator{az: az, byNeighbor: map[topology.ASN]*neighborAgg{}}
}

// Add folds one chunk of traces into the aggregation.
func (acc *BorderAccumulator) Add(traces []*traceroute.Trace) {
	az := acc.az
	reg := az.opts.MapIt.Obs
	matched := reg.Counter("bdrmap.crossings.matched")
	unmatched := reg.Counter("bdrmap.crossings.unmatched")
	skippedDegraded := reg.Counter("bdrmap.traces.skipped_degraded")
	for _, tr := range traces {
		if tr.Degraded {
			skippedDegraded.Inc()
			continue
		}
		c, ok := az.FirstCrossing(tr)
		if !ok {
			unmatched.Inc()
			continue
		}
		matched.Inc()
		a := acc.byNeighbor[c.Neighbor]
		if a == nil {
			a = &neighborAgg{pairs: map[[2]int]bool{}}
			acc.byNeighbor[c.Neighbor] = a
		}
		a.traces++
		a.pairs[az.RouterKey(c)] = true
	}
}

// Result finalizes the aggregation into the sorted border map.
func (acc *BorderAccumulator) Result() *Result {
	az := acc.az
	res := &Result{ByRel: map[topology.Rel]struct{ AS, Router int }{}}
	neighbors := make([]topology.ASN, 0, len(acc.byNeighbor))
	for n := range acc.byNeighbor {
		neighbors = append(neighbors, n)
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })

	for _, n := range neighbors {
		a := acc.byNeighbor[n]
		b := Border{Neighbor: n, Traces: a.traces, RouterPairs: len(a.pairs)}
		if az.opts.Rel != nil {
			b.Rel = az.opts.Rel(n)
		}
		res.Borders = append(res.Borders, b)
		res.ASCount++
		res.RouterCount += b.RouterPairs
		e := res.ByRel[b.Rel]
		e.AS++
		e.Router += b.RouterPairs
		res.ByRel[b.Rel] = e
	}
	reg := az.opts.MapIt.Obs
	reg.Counter("bdrmap.borders.as").Add(uint64(res.ASCount))
	reg.Counter("bdrmap.borders.router").Add(uint64(res.RouterCount))
	return res
}

// CoverageSets returns the AS-level and router-level interconnections
// crossed by the given traces (typically traces toward one platform's
// servers), keyed compatibly with Borders' counting: neighbor ASN and
// alias-grouped router pair. Figures 2–4 intersect these with a
// campaign's Result.
func (az *Analyzer) CoverageSets(traces []*traceroute.Trace) (asSet map[topology.ASN]bool, routerSet map[[2]int]bool) {
	asSet = map[topology.ASN]bool{}
	routerSet = map[[2]int]bool{}
	for _, tr := range traces {
		c, ok := az.FirstCrossing(tr)
		if !ok {
			continue
		}
		asSet[c.Neighbor] = true
		routerSet[az.RouterKey(c)] = true
	}
	return asSet, routerSet
}
