// Package tomo implements binary network tomography (§3): given
// end-to-end observations, each a set of links with a good/bad verdict,
// find a smallest set of "bad" links consistent with the observations
// (Duffield's boolean tomography, via the standard greedy set-cover
// approximation known as SCFS).
//
// It also implements the *simplified AS-level tomography* the M-Lab
// reports used: collapse every path to the single (server org, client
// org) pair and declare the interconnection congested when enough tests
// look bad. That method is only sound under the three assumptions of
// §3.1; the experiments use this package to show what happens when they
// fail.
package tomo

import (
	"sort"
)

// Observation is one end-to-end measurement: the links its path
// traversed and whether the path looked congested.
type Observation[L comparable] struct {
	Links []L
	Bad   bool
}

// Result is the outcome of SmallestFailureSet.
type Result[L comparable] struct {
	// Bad is the inferred bad-link set, in selection order.
	Bad []L
	// Consistent is false when some bad observation contains only links
	// exonerated by good observations (noise, or a non-link cause such
	// as a home-network problem — §3.1's assumption 1 analogue).
	Consistent bool
	// Uncovered counts bad observations that could not be explained.
	Uncovered int
}

// SmallestFailureSet runs greedy boolean tomography. Links appearing on
// any good path are exonerated; remaining candidates are chosen
// greedily by bad-path coverage (ties broken deterministically by
// first appearance order).
func SmallestFailureSet[L comparable](obs []Observation[L]) Result[L] {
	good := map[L]bool{}
	for _, o := range obs {
		if !o.Bad {
			for _, l := range o.Links {
				good[l] = true
			}
		}
	}

	// Candidate links per bad observation.
	type badObs struct {
		cands   []L
		covered bool
	}
	var bad []*badObs
	coverage := map[L][]*badObs{}
	order := map[L]int{} // first-appearance order for deterministic ties
	for _, o := range obs {
		if !o.Bad {
			continue
		}
		b := &badObs{}
		for _, l := range o.Links {
			if good[l] {
				continue
			}
			b.cands = append(b.cands, l)
			coverage[l] = append(coverage[l], b)
			if _, ok := order[l]; !ok {
				order[l] = len(order)
			}
		}
		bad = append(bad, b)
	}

	res := Result[L]{Consistent: true}
	remaining := 0
	for _, b := range bad {
		if len(b.cands) == 0 {
			res.Consistent = false
			res.Uncovered++
			b.covered = true // nothing can cover it
			continue
		}
		remaining++
	}

	for remaining > 0 {
		// Pick the candidate covering the most uncovered bad paths.
		var best L
		bestN, bestOrder, found := 0, 0, false
		for l, obsList := range coverage {
			n := 0
			for _, b := range obsList {
				if !b.covered {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if !found || n > bestN || (n == bestN && order[l] < bestOrder) {
				best, bestN, bestOrder, found = l, n, order[l], true
			}
		}
		if !found {
			break
		}
		res.Bad = append(res.Bad, best)
		for _, b := range coverage[best] {
			if !b.covered {
				b.covered = true
				remaining--
			}
		}
	}
	return res
}

// ASObservation is one test collapsed to the AS level, as in the M-Lab
// analysis: only the endpoint organizations are known.
type ASObservation struct {
	ServerOrg, ClientOrg string
	Bad                  bool
}

// PairVerdict summarizes the simplified AS-level tomography for one
// (server org, client org) pair.
type PairVerdict struct {
	ServerOrg, ClientOrg string
	Tests, BadTests      int
	// Congested is true when the bad fraction reaches the threshold.
	Congested bool
}

// SimplifiedASLevel applies the M-Lab method: group tests by endpoint
// org pair and flag the pair's interconnection as congested when the
// fraction of bad tests reaches badFrac. Under assumptions 1–3 of §3.1
// this localizes congestion to the direct interconnection; when those
// fail, the verdict mislocalizes — which is the paper's point.
// Results are sorted by (server, client) org.
func SimplifiedASLevel(obs []ASObservation, badFrac float64, minTests int) []PairVerdict {
	type key struct{ s, c string }
	agg := map[key]*PairVerdict{}
	for _, o := range obs {
		k := key{o.ServerOrg, o.ClientOrg}
		v := agg[k]
		if v == nil {
			v = &PairVerdict{ServerOrg: o.ServerOrg, ClientOrg: o.ClientOrg}
			agg[k] = v
		}
		v.Tests++
		if o.Bad {
			v.BadTests++
		}
	}
	out := make([]PairVerdict, 0, len(agg))
	for _, v := range agg {
		if v.Tests >= minTests && float64(v.BadTests)/float64(v.Tests) >= badFrac {
			v.Congested = true
		}
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ServerOrg != out[j].ServerOrg {
			return out[i].ServerOrg < out[j].ServerOrg
		}
		return out[i].ClientOrg < out[j].ClientOrg
	})
	return out
}

// AggregatePaths collapses noisy per-test observations into per-path
// verdicts before tomography: observations with an identical link set
// are grouped, and the group is bad when at least badFrac of its (at
// least minTests) members are bad. Groups below minTests are dropped.
// This is the aggregation step real pipelines run (peak vs off-peak
// medians per path) so that one lucky test on a congested path — or
// one Wi-Fi-throttled test on a healthy one — does not exonerate or
// frame a link.
func AggregatePaths[L comparable](obs []Observation[L], badFrac float64, minTests int,
	keyOf func([]L) string) []Observation[L] {

	type group struct {
		links      []L
		bad, total int
	}
	groups := map[string]*group{}
	order := []string{}
	for _, o := range obs {
		k := keyOf(o.Links)
		g := groups[k]
		if g == nil {
			g = &group{links: o.Links}
			groups[k] = g
			order = append(order, k)
		}
		g.total++
		if o.Bad {
			g.bad++
		}
	}
	var out []Observation[L]
	for _, k := range order {
		g := groups[k]
		if g.total < minTests {
			continue
		}
		out = append(out, Observation[L]{
			Links: g.links,
			Bad:   float64(g.bad)/float64(g.total) >= badFrac,
		})
	}
	return out
}
