package experiments

import (
	"fmt"
	"sort"
	"strings"

	"throughputlab/internal/core"
	"throughputlab/internal/datasets"
	"throughputlab/internal/dnsnames"
	"throughputlab/internal/mapit"
	"throughputlab/internal/ndt"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// Table2Row summarizes the interdomain links one client ASN's tests
// crossed from the chosen server.
type Table2Row struct {
	ISP       string
	ClientASN topology.ASN
	// TestsPerLink is the per-IP-link test count, descending (the
	// paper's third column).
	TestsPerLink []int
	// RouterGroups is the number of distinct router-level
	// interconnects the links collapse into using reverse-DNS hints
	// (the Cox parallel-link analysis of §4.3).
	RouterGroups int
}

// Table2Result reproduces Table 2: IP-level interdomain link diversity
// seen from one server toward the major access ISPs.
type Table2Result struct {
	ServerNet, ServerMetro string
	Rows                   []Table2Row
}

// Table2 analyzes the matched tests from one server network+metro
// (default: the Level3 Atlanta site, the paper's atl01).
func Table2(e *Env) *Table2Result {
	return Table2For(e, "Level3", "atl")
}

// Table2For runs the analysis for any server network and metro.
func Table2For(e *Env, serverNet, serverMetro string) *Table2Result {
	// The paper's Table 2 counts links "between Level 3 and that ISP":
	// only crossings whose near side is the server organization.
	serverOrg := map[topology.ASN]bool{}
	for _, tr := range datasets.Transits() {
		if tr.Name == serverNet {
			serverOrg[tr.ASN] = true
			if tr.SiblingASN != 0 {
				serverOrg[tr.SiblingASN] = true
			}
		}
	}
	div := core.LinkDiversity(e.Corpus.Tests, e.Matching, e.Inference,
		func(t *ndt.Test, tr *traceroute.Trace) (string, bool) {
			if t.ServerNet != serverNet || t.ServerMetro != serverMetro {
				return "", false
			}
			return fmt.Sprintf("%s|%d", t.ClientISP, t.ClientASN), true
		},
		func(l mapit.Link) bool { return serverOrg[l.NearAS] })

	res := &Table2Result{ServerNet: serverNet, ServerMetro: serverMetro}
	for key, uses := range div {
		parts := strings.SplitN(key, "|", 2)
		var asn topology.ASN
		fmt.Sscanf(parts[1], "%d", &asn)
		row := Table2Row{ISP: parts[0], ClientASN: asn}
		// Group parallel links by the router FQDN of the near-side
		// interface's DNS name (falling back to the raw address).
		groups := map[string]bool{}
		for _, u := range uses {
			row.TestsPerLink = append(row.TestsPerLink, u.Tests)
			name := ""
			if ifc := e.World.Topo.IfaceByAddr[u.Link.Near]; ifc != nil {
				name = dnsnames.RouterFQDN(ifc.DNSName)
			}
			if name == "" {
				name = u.Link.Near.String()
			}
			groups[name] = true
		}
		row.RouterGroups = len(groups)
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].ISP != res.Rows[j].ISP {
			return res.Rows[i].ISP < res.Rows[j].ISP
		}
		return res.Rows[i].ClientASN < res.Rows[j].ClientASN
	})
	return res
}

// Render prints the table.
func (r *Table2Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		counts := make([]string, 0, len(row.TestsPerLink))
		for i, n := range row.TestsPerLink {
			if i == 8 {
				counts = append(counts, "…")
				break
			}
			counts = append(counts, fmt.Sprintf("%d", n))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%s (AS%d)", row.ISP, row.ClientASN),
			fmt.Sprintf("%d", len(row.TestsPerLink)),
			fmt.Sprintf("%d", row.RouterGroups),
			strings.Join(counts, ","),
		})
	}
	return fmt.Sprintf("Table 2 — interdomain links seen by the %s %s server, with NDT tests per link\n",
		r.ServerNet, r.ServerMetro) +
		table([]string{"Client ISP (ASN)", "#links", "#router groups (DNS)", "tests/link"}, rows)
}
