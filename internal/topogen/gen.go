package topogen

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"throughputlab/internal/bgp"
	"throughputlab/internal/datasets"
	"throughputlab/internal/dnsnames"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/netsim"
	"throughputlab/internal/obs"
	"throughputlab/internal/routing"
	"throughputlab/internal/topology"
)

// builder carries generation state.
type builder struct {
	cfg    Config
	rng    *rand.Rand
	topo   *topology.Topology
	alloc  *topology.Allocator
	metros []string // metro codes, weight-descending
	// cities interns metro code → city name (ReplaceAll output), shared
	// by every router name in that metro.
	cities map[string]string

	// per-AS state
	asAlloc map[topology.ASN]*topology.Allocator
	cores   map[topology.ASN]map[string]*topology.Router
	// border router pools per (AS, metro, role); a new edge router is
	// opened every borderFanout neighbors.
	borders     map[topology.ASN]map[brKey][]*topology.Router
	borderCount map[topology.ASN]map[brKey]int

	transits  map[string]*datasets.TransitProfile
	access    map[string]*AccessNet
	ixps      map[string]*topology.IXP // by metro
	ixpCursor map[*topology.IXP]uint64

	hostingStubs []topology.ASN
	regionals    []topology.ASN

	world *World
}

const borderFanout = 24

// brKey identifies a border-router pool without building a composite
// string per lookup (borderRouter runs once per interconnect end).
type brKey struct {
	metro string
	role  string
}

// Generate builds the world.
// lazyRouteThreshold is the AS count above which generation always
// uses lazy per-destination routing: at 10k ASes the eager n×n tables
// cross ~600MB and grow quadratically from there, while campaigns touch
// only the few dozen destination trees behind servers and client pools.
const lazyRouteThreshold = 10000

func Generate(cfg Config) (*World, error) {
	return GenerateCtx(context.Background(), cfg)
}

// GenerateCtx is Generate under cooperative cancellation: a cancelled
// ctx skips every remaining generation phase and returns an error
// wrapping the context's cause. Cancellation is only observed at phase
// boundaries — the coarsest grain that still aborts a multi-minute
// xlarge build promptly, without threading ctx into the hot loops.
func GenerateCtx(ctx context.Context, cfg Config) (*World, error) {
	if cfg.Scale.StubASes == 0 {
		cfg.Scale = datasets.DefaultScale()
	}
	if cfg.Congestion == nil {
		cfg.Congestion = DefaultCongestion()
	}
	if cfg.SpeedtestFactor == 0 {
		cfg.SpeedtestFactor = 1
	}
	metros := datasets.USMetros()
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	b := &builder{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		topo:        topology.New(metros),
		alloc:       topology.NewAllocator(netaddr.MustParsePrefix("16.0.0.0/4")),
		cities:      make(map[string]string, len(metros)),
		asAlloc:     make(map[topology.ASN]*topology.Allocator),
		cores:       make(map[topology.ASN]map[string]*topology.Router),
		borders:     make(map[topology.ASN]map[brKey][]*topology.Router),
		borderCount: make(map[topology.ASN]map[brKey]int),
		transits:    make(map[string]*datasets.TransitProfile),
		access:      make(map[string]*AccessNet),
		ixps:        make(map[string]*topology.IXP),
		ixpCursor:   make(map[*topology.IXP]uint64),
	}
	b.topo.Reserve(b.expectedRouters(), b.expectedLinks())
	codes := make([]string, len(metros))
	for i, m := range metros {
		codes[i] = m.Code
	}
	b.metros = codes

	b.world = &World{
		Cfg:             cfg,
		Topo:            b.topo,
		ContentReplicas: make(map[string][]Host),
		DomainHosts:     make(map[string]Host),
		Access:          make(map[string]*AccessNet),
		Domains:         datasets.PopularDomainList(),
		rng:             b.rng,
	}

	reg := cfg.Obs
	gen := reg.Span("generate")
	// phase hands each stage its span so parallel stages can attach
	// per-worker child spans to it. A cancelled context skips every
	// remaining phase; the post-loop check turns that into an error.
	phase := func(name string, fn func(sp *obs.Span)) {
		if ctx.Err() != nil {
			return
		}
		sp := reg.Span("generate." + name)
		fn(sp)
		sp.End()
	}
	phase("topology", func(*obs.Span) {
		b.buildIXPs()
		b.buildTransits()
		b.buildAccess()
		b.buildContent()
		b.buildRegionals()
		b.buildStubs()
		b.applyCongestion()
	})
	phase("placement", func(*obs.Span) {
		b.placeMLab()
		b.placeSpeedtest()
		b.placeArkVPs()
	})
	phase("dnsnames", func(sp *obs.Span) {
		dnsnames.AssignWorkers(b.topo, cfg.Seed, cfg.NoPTRFrac, workers, sp)
	})

	var errs []error
	phase("validate", func(sp *obs.Span) { errs = b.topo.ValidateWorkers(workers, sp) })
	if len(errs) != 0 {
		gen.End()
		return nil, fmt.Errorf("topogen: generated topology invalid: %v (and %d more)", errs[0], len(errs)-1)
	}

	phase("bgp", func(sp *obs.Span) {
		if cfg.LazyRoutes || b.topo.NumASes() >= lazyRouteThreshold {
			b.world.Routes = bgp.ComputeLazy(b.topo)
			return
		}
		b.world.Routes = bgp.ComputeWorkers(b.topo, workers, sp)
	})
	phase("resolver", func(*obs.Span) {
		b.world.Resolver = routing.New(b.topo, b.world.Routes)
		b.world.Resolver.Observe(reg)
	})
	phase("netsim", func(*obs.Span) { b.world.Model = netsim.New(b.topo, b.world.Resolver) })
	gen.End()
	if ctx.Err() != nil {
		return nil, fmt.Errorf("topogen: generation interrupted: %w", context.Cause(ctx))
	}

	if reg != nil {
		for _, ph := range []string{"dnsnames", "validate", "bgp"} {
			reg.Gauge("topogen.workers." + ph).Set(int64(workers))
		}
		if b.world.Routes.Lazy() {
			reg.Gauge("topogen.routes.lazy").Set(1)
		}
		st := b.topo.CollectStats()
		reg.Gauge("topogen.ases").Set(int64(st.ASes))
		reg.Gauge("topogen.routers").Set(int64(st.Routers))
		reg.Gauge("topogen.links").Set(int64(st.Links))
		reg.Gauge("topogen.links.interdomain").Set(int64(st.ByLink[topology.LinkInterdomain]))
		reg.Gauge("topogen.links.saturated").Set(int64(st.SaturatedLinks))
		reg.Gauge("topogen.mlab.sites").Set(int64(len(b.world.MLabSites)))
		reg.Gauge("topogen.mlab.servers").Set(int64(len(b.world.MLabServers())))
		reg.Gauge("topogen.speedtest.servers").Set(int64(len(b.world.Speedtest)))
		reg.Gauge("topogen.ark.vps").Set(int64(len(b.world.ArkVPs)))
	}
	return b.world, nil
}

// MustGenerate is Generate that panics on error, for tests and examples.
func MustGenerate(cfg Config) *World {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// expectedRouters estimates the final router population from the scale
// profile so the topology arenas can be presized. Over-estimates waste
// a little memory; under-estimates only cost extra slab chunks.
func (b *builder) expectedRouters() int {
	s := b.cfg.Scale
	// Fixed infrastructure (transits, access ISPs and their siblings,
	// content) lands around 1.2-1.5k routers; each stub or regional
	// contributes a core plus a share of edge/aggregation routers.
	// (Measured: small scale 1472 routers, default scale 4322.)
	return 1200 + 2*s.StubASes + 10*s.RegionalISPs
}

// expectedLinks estimates the final link count (intra mesh + access
// lines + interdomain), sized like expectedRouters.
// (Measured: small scale 5387 links, default scale 10562.)
func (b *builder) expectedLinks() int {
	s := b.cfg.Scale
	return 4800 + 4*s.StubASes + 15*s.RegionalISPs
}

// ---- AS construction primitives ----

// newAS creates an AS with core routers and a meshed backbone in the
// given metros, allocating an address block of the given size.
func (b *builder) newAS(org *topology.Org, asn topology.ASN, name string, typ topology.ASType, metros []string, blockBits int) *topology.AS {
	as := &topology.AS{ASN: asn, Name: name, Org: org, Type: typ, Metros: metros}
	b.topo.AddAS(as)
	block := b.alloc.MustAlloc(blockBits)
	b.topo.Originate(asn, block)
	b.asAlloc[asn] = topology.NewAllocator(block)
	b.cores[asn] = make(map[string]*topology.Router)
	b.borders[asn] = make(map[brKey][]*topology.Router)
	b.borderCount[asn] = make(map[brKey]int)

	var prev []*topology.Router
	for _, m := range metros {
		city := b.cityName(m)
		core := b.topo.AddRouter(asn, m, topology.RouterCore, "core1."+city)
		b.cores[asn][m] = core
		// Mesh the new core with the existing ones.
		for _, p := range prev {
			b.intraLink(asn, p, core, 400000)
		}
		prev = append(prev, core)
	}
	return as
}

func (b *builder) cityName(metro string) string {
	if c, ok := b.cities[metro]; ok {
		return c
	}
	m := b.topo.MustMetro(metro)
	c := strings.ReplaceAll(m.Name, " ", "")
	b.cities[metro] = c
	return c
}

func (b *builder) hostAddr(asn topology.ASN) netaddr.Addr {
	return b.asAlloc[asn].MustAlloc(32).Addr()
}

func (b *builder) intraLink(asn topology.ASN, a, c *topology.Router, capMbps float64) {
	p := b.asAlloc[asn].MustAlloc(31)
	b.topo.AddLink(a, c, topology.LinkSpec{
		Kind: topology.LinkIntra, Metro: a.Metro, CapacityMbps: capMbps,
		BaseUtil: 0.1, PeakUtil: 0.35 + 0.1*b.rng.Float64(),
		AddrA: p.Nth(0), AddrOwnerA: asn,
		AddrB: p.Nth(1), AddrOwnerB: asn,
	})
}

// borderRouter returns an edge router of the AS in the metro for the
// given role, opening a new one (linked to the local core) every
// borderFanout neighbors. Roles separate upstream-facing edges (peers,
// providers) from customer aggregation edges, as real networks do —
// which also guarantees that transit THROUGH an AS crosses its core
// and leaves a visible own-address hop in traceroutes.
func (b *builder) borderRouter(asn topology.ASN, metro, role string) *topology.Router {
	key := brKey{metro: metro, role: role}
	n := b.borderCount[asn][key]
	b.borderCount[asn][key] = n + 1
	pool := b.borders[asn][key]
	if n/borderFanout < len(pool) {
		return pool[n/borderFanout]
	}
	city := b.cityName(metro)
	name := fmt.Sprintf("edge%d.%s%d", len(pool)+1, city, 1+len(pool)%3)
	if role == "up" {
		name = fmt.Sprintf("bb%d.%s%d", len(pool)+1, city, 1+len(pool)%3)
	}
	r := b.topo.AddRouter(asn, metro, topology.RouterBorder, name)
	core := b.cores[asn][metro]
	if core == nil {
		// AS without presence: adopt the metro by creating a core.
		core = b.topo.AddRouter(asn, metro, topology.RouterCore, "core1."+city)
		b.cores[asn][metro] = core
		for _, m2 := range b.topo.AS(asn).Metros {
			if c2 := b.cores[asn][m2]; c2 != nil && c2 != core {
				b.intraLink(asn, c2, core, 400000)
			}
		}
		b.topo.AS(asn).Metros = append(b.topo.AS(asn).Metros, metro)
	}
	b.intraLink(asn, core, r, 400000)
	b.borders[asn][key] = append(pool, r)
	return r
}

// borderRoles maps the relationship of b as seen from a to the edge
// roles each side terminates the link on: customer- and sibling-facing
// links land on aggregation edges ("down"), peer- and provider-facing
// links on upstream edges ("up").
func borderRoles(rel topology.Rel) (roleA, roleB string) {
	switch rel {
	case topology.RelCustomer: // b is a's customer
		return "down", "up"
	case topology.RelProvider: // b is a's provider
		return "up", "down"
	case topology.RelSibling:
		return "down", "down"
	default: // peers
		return "up", "up"
	}
}

// linkOpts carries interdomain link parameters.
type linkOpts struct {
	capMbps  float64
	baseUtil float64
	peakUtil float64
	// numberFrom chooses whose space numbers the /30 (0 = pick aASN).
	numberFrom topology.ASN
	ixp        *topology.IXP
	parallel   int
	// slash31 numbers from a /31 instead of a /30.
	slash31 bool
}

// connect creates parallel interdomain link(s) between two ASes in one
// metro and records the relationship (rel is b's relationship as seen
// from a, e.g. RelCustomer when bASN buys transit from aASN).
func (b *builder) connect(aASN, bASN topology.ASN, rel topology.Rel, metro string, o linkOpts) []*topology.Link {
	if b.topo.RelOf(aASN, bASN) == topology.RelNone {
		b.topo.SetRel(aASN, bASN, rel)
	}
	if o.parallel < 1 {
		o.parallel = 1
	}
	if o.numberFrom == 0 {
		o.numberFrom = aASN
	}
	roleA, roleB := borderRoles(rel)
	if r := b.topo.RelOf(aASN, bASN); r != topology.RelNone {
		roleA, roleB = borderRoles(r)
	}
	ra := b.borderRouter(aASN, metro, roleA)
	rb := b.borderRouter(bASN, metro, roleB)
	var out []*topology.Link
	for i := 0; i < o.parallel; i++ {
		var addrA, addrB netaddr.Addr
		ownerA, ownerB := o.numberFrom, o.numberFrom
		switch {
		case o.ixp != nil:
			// Both sides numbered from the IXP peering LAN.
			addrA = b.ixpAddr(o.ixp)
			addrB = b.ixpAddr(o.ixp)
			ownerA, ownerB = 0, 0
		case o.slash31:
			p := b.asAlloc[o.numberFrom].MustAlloc(31)
			addrA, addrB = p.Nth(0), p.Nth(1)
		default:
			p := b.asAlloc[o.numberFrom].MustAlloc(30)
			addrA, addrB = p.Nth(1), p.Nth(2)
		}
		l := b.topo.AddLink(ra, rb, topology.LinkSpec{
			Kind: topology.LinkInterdomain, Metro: metro,
			CapacityMbps: o.capMbps, BaseUtil: o.baseUtil, PeakUtil: o.peakUtil,
			AddrA: addrA, AddrOwnerA: ownerA,
			AddrB: addrB, AddrOwnerB: ownerB,
			IXP: o.ixp,
		})
		out = append(out, l)
	}
	return out
}

func (b *builder) ixpAddr(x *topology.IXP) netaddr.Addr {
	b.ixpCursor[x]++
	return x.Prefix.Nth(b.ixpCursor[x])
}

// healthyUtil returns a typical healthy interconnect utilization pair.
func (b *builder) healthyUtil() (base, peak float64) {
	base = 0.15 + 0.15*b.rng.Float64()
	peak = base + 0.25 + 0.25*b.rng.Float64()
	return base, peak
}

// ---- Construction phases ----

func (b *builder) buildIXPs() {
	for _, s := range datasets.IXPSites() {
		p := b.alloc.MustAlloc(24)
		x := &topology.IXP{Name: s.Name, Metro: s.Metro, Prefix: p}
		b.topo.AddIXP(x)
		b.ixps[s.Metro] = x
	}
}

func (b *builder) buildTransits() {
	profiles := datasets.Transits()
	for i := range profiles {
		p := profiles[i]
		org := &topology.Org{Name: p.Name + " Communications", ASNs: []topology.ASN{p.ASN}}
		b.topo.Orgs = append(b.topo.Orgs, org)
		b.newAS(org, p.ASN, p.Name, topology.ASTypeTransit, b.metros, 14)
		if p.SiblingASN != 0 {
			org.ASNs = append(org.ASNs, p.SiblingASN)
			// Sibling backbone present in the major metros.
			b.newAS(org, p.SiblingASN, p.Name+"-Legacy", topology.ASTypeTransit, b.metros[:8], 16)
			base, peak := b.healthyUtil()
			for _, m := range b.metros[:3] {
				b.connect(p.ASN, p.SiblingASN, topology.RelSibling, m, linkOpts{
					capMbps: 400000, baseUtil: base, peakUtil: peak,
				})
			}
		}
		b.transits[p.Name] = &profiles[i]
	}
	// Transit full mesh of peers (hosting-only networks instead buy
	// transit from two real transits).
	for i := range profiles {
		for j := i + 1; j < len(profiles); j++ {
			a, c := profiles[i], profiles[j]
			if a.HostingOnly || c.HostingOnly {
				continue
			}
			nm := 2 + b.rng.Intn(3)
			for k := 0; k < nm; k++ {
				m := b.metros[(i+j+k*5)%len(b.metros)]
				base, peak := b.healthyUtil()
				b.connect(a.ASN, c.ASN, topology.RelPeer, m, linkOpts{
					capMbps: 100000, baseUtil: base, peakUtil: peak,
				})
			}
		}
	}
	// Hosting-only networks buy transit.
	for i := range profiles {
		if !profiles[i].HostingOnly {
			continue
		}
		for _, up := range []string{"Cogent", "Level3"} {
			base, peak := b.healthyUtil()
			b.connect(b.transits[up].ASN, profiles[i].ASN, topology.RelCustomer, "nyc", linkOpts{
				capMbps: 40000, baseUtil: base, peakUtil: peak,
			})
		}
	}
}

// pickInterconnectMetros chooses where an access org interconnects with
// a transit: its biggest metros, plus any metros forced by congestion
// specs for this pair.
func (b *builder) pickInterconnectMetros(p datasets.AccessProfile, transitName string, n int) []string {
	var forced []string
	for _, cs := range b.cfg.Congestion {
		if cs.Transit == transitName && cs.Access == p.Name && cs.Metro != "" {
			forced = append(forced, cs.Metro)
		}
	}
	out := append([]string{}, forced...)
	for _, m := range b.metros { // weight-descending order from datasets
		if len(out) >= n+len(forced) {
			break
		}
		if !slices.Contains(p.Metros, m) || slices.Contains(out, m) {
			continue
		}
		out = append(out, m)
	}
	return out
}

func (b *builder) buildAccess() {
	profiles := datasets.AccessISPs()
	for i := range profiles {
		p := profiles[i]
		org := &topology.Org{Name: p.OrgName, ASNs: append([]topology.ASN{p.BackboneASN}, p.SiblingASNs...)}
		b.topo.Orgs = append(b.topo.Orgs, org)
		an := &AccessNet{Profile: p, Org: org, PoolByMetro: make(map[string]*PoolInfo)}
		b.access[p.Name] = an
		b.world.Access[p.Name] = an

		// Backbone everywhere the ISP operates.
		b.newAS(org, p.BackboneASN, p.Name, topology.ASTypeAccess, p.Metros, 14)

		// Partition metros among backbone and regional siblings: the
		// backbone keeps every third metro (including the largest);
		// regional siblings take the rest round-robin. Client prefixes
		// in sibling metros number from sibling space, so AS-level
		// aggregates split across sibling ASNs exactly as Table 2's
		// Comcast rows (AS7922 / AS7725 / AS22909) do.
		ownerOf := make(map[string]topology.ASN)
		if len(p.SiblingASNs) == 0 {
			for _, m := range p.Metros {
				ownerOf[m] = p.BackboneASN
			}
		} else {
			sibMetros := make(map[topology.ASN][]string)
			si := 0
			for i, m := range p.Metros {
				if i%3 == 0 {
					ownerOf[m] = p.BackboneASN
					continue
				}
				sib := p.SiblingASNs[si%len(p.SiblingASNs)]
				si++
				ownerOf[m] = sib
				sibMetros[sib] = append(sibMetros[sib], m)
			}
			for _, sib := range p.SiblingASNs {
				ms := sibMetros[sib]
				if len(ms) == 0 {
					ms = []string{p.Metros[0]} // presence only
					ownerOf[p.Metros[0]] = p.BackboneASN
				}
				b.newAS(org, sib, fmt.Sprintf("%s-Region-%d", p.Name, sib), topology.ASTypeAccess, ms, 16)
				// Sibling interconnects with the backbone in its metros.
				for _, m := range ms {
					base, peak := b.healthyUtil()
					b.connect(p.BackboneASN, sib, topology.RelSibling, m, linkOpts{
						capMbps: 400000, baseUtil: base, peakUtil: peak,
					})
				}
			}
		}

		// Client pools + access aggregation per metro.
		for _, m := range p.Metros {
			owner := ownerOf[m]
			if owner == 0 {
				owner = p.BackboneASN
			}
			pool := b.asAlloc[owner].MustAlloc(23)
			b.topo.Originate(owner, pool)
			b.topo.AS(owner).ClientPools[m] = pool
			agg := b.topo.AddRouter(owner, m, topology.RouterAccess, "agg1."+b.cityName(m))
			b.intraLink(owner, b.cores[owner][m], agg, 100000)
			line := b.topo.AddLink(agg, nil, topology.LinkSpec{
				Kind: topology.LinkAccessLine, Metro: m,
				CapacityMbps: 400 + 200*b.rng.Float64(),
				BaseUtil:     0.15 + 0.1*b.rng.Float64(),
				PeakUtil:     0.68 + 0.17*b.rng.Float64(),
				AddrA:        b.hostAddr(owner), AddrOwnerA: owner,
			})
			an.PoolByMetro[m] = &PoolInfo{
				ASN: owner, Metro: m, Prefix: pool, Router: agg.ID, AccessLine: line,
			}
		}

		// Transit interconnects (the Figure 1 / Table 2 structure).
		for _, tn := range p.TransitPeers {
			b.connectAccessTransit(p, an, tn, topology.RelPeer)
		}
		for _, tn := range p.TransitProviders {
			b.connectAccessTransit(p, an, tn, topology.RelProvider)
		}
	}

	// Access-access peering (after all access ASes exist).
	done := map[string]bool{}
	for _, p := range profiles {
		for _, peerName := range p.AccessPeers {
			key := p.Name + "|" + peerName
			if p.Name > peerName {
				key = peerName + "|" + p.Name
			}
			if done[key] {
				continue
			}
			done[key] = true
			q := b.access[peerName]
			if q == nil {
				continue
			}
			shared := intersect(p.Metros, q.Profile.Metros)
			if len(shared) == 0 {
				continue
			}
			nm := 1 + b.rng.Intn(2)
			for k := 0; k < nm && k < len(shared); k++ {
				m := shared[k]
				aOwner := b.poolOwner(p.Name, m)
				bOwner := b.poolOwner(peerName, m)
				base, peak := b.healthyUtil()
				b.connect(aOwner, bOwner, topology.RelPeer, m, linkOpts{
					capMbps: 60000, baseUtil: base, peakUtil: peak,
				})
			}
		}
	}
}

// poolOwner returns which ASN of the access org serves the metro (falls
// back to the backbone).
func (b *builder) poolOwner(isp, metro string) topology.ASN {
	an := b.access[isp]
	if pi := an.PoolByMetro[metro]; pi != nil {
		return pi.ASN
	}
	return an.Profile.BackboneASN
}

// intersect returns the elements of a that also appear in c,
// preserving a's order (deterministic output for deterministic input).
func intersect(a, c []string) []string {
	in := make(map[string]struct{}, len(c))
	for _, x := range c {
		in[x] = struct{}{}
	}
	var out []string
	for _, x := range a {
		if _, ok := in[x]; ok {
			out = append(out, x)
		}
	}
	return out
}

func (b *builder) connectAccessTransit(p datasets.AccessProfile, an *AccessNet, transitName string, rel topology.Rel) {
	tr := b.transits[transitName]
	if tr == nil {
		return
	}
	metros := b.pickInterconnectMetros(p, transitName, an.Profile.InterconnectMetros)
	for mi, m := range metros {
		owner := b.poolOwner(p.Name, m)
		tASN := tr.ASN
		// Some interconnects land on the transit's legacy sibling ASN,
		// multiplying AS-level link pairs (Table 2's 18 Level3-Comcast
		// AS links).
		if tr.SiblingASN != 0 && b.rng.Float64() < 0.3 && slices.Contains(b.topo.AS(tr.SiblingASN).Metros, m) {
			tASN = tr.SiblingASN
		}
		parallel := 1
		if an.Profile.ParallelLinkMean > 1 {
			parallel = 1 + b.rng.Intn(int(2*an.Profile.ParallelLinkMean-1))
		}
		base, peak := b.healthyUtil()
		numberFrom := tASN
		if b.rng.Float64() < 0.2 {
			numberFrom = owner
		}
		// The transit side "owns" the relationship direction: rel is the
		// transit as seen from the access org.
		relFromTransit := topology.RelPeer
		if rel == topology.RelProvider {
			relFromTransit = topology.RelCustomer // access is the transit's customer
		}
		o := linkOpts{
			capMbps: 20000 + 20000*b.rng.Float64(), baseUtil: base, peakUtil: peak,
			numberFrom: numberFrom, parallel: parallel,
		}
		// First interconnect in an IXP metro occasionally crosses the
		// exchange LAN.
		if x := b.ixps[m]; x != nil && mi == 0 && b.rng.Float64() < 0.3 {
			o.ixp = x
		}
		if b.rng.Float64() < 0.15 {
			o.slash31 = true
		}
		b.connect(tASN, owner, relFromTransit, m, o)
	}
}

func (b *builder) buildContent() {
	for _, c := range datasets.ContentNetworks() {
		org := &topology.Org{Name: c.Name, ASNs: []topology.ASN{c.ASN}}
		b.topo.Orgs = append(b.topo.Orgs, org)
		b.newAS(org, c.ASN, c.Name, topology.ASTypeContent, c.Metros, 18)
		// Two transit providers.
		tnames := []string{"Level3", "GTT", "Cogent", "Tata", "XO", "Zayo", "Telia", "NTT"}
		i1 := b.rng.Intn(len(tnames))
		i2 := (i1 + 1 + b.rng.Intn(len(tnames)-1)) % len(tnames)
		for _, ti := range []int{i1, i2} {
			tr := b.transits[tnames[ti]]
			m := c.Metros[b.rng.Intn(len(c.Metros))]
			base, peak := b.healthyUtil()
			b.connect(tr.ASN, c.ASN, topology.RelCustomer, m, linkOpts{
				capMbps: 80000, baseUtil: base, peakUtil: peak,
			})
		}
		// Direct peering with access ISPs.
		for _, ap := range datasets.AccessISPs() {
			if b.rng.Float64() >= ap.ContentPeerFrac {
				continue
			}
			shared := intersect(c.Metros, ap.Metros)
			if len(shared) == 0 {
				continue
			}
			m := shared[b.rng.Intn(len(shared))]
			owner := b.poolOwner(ap.Name, m)
			base, peak := b.healthyUtil()
			o := linkOpts{capMbps: 40000, baseUtil: base, peakUtil: peak}
			if x := b.ixps[m]; x != nil && b.rng.Float64() < 0.4 {
				o.ixp = x
			}
			b.connect(c.ASN, owner, topology.RelPeer, m, o)
		}
		// Replicas: one host per metro.
		for _, m := range c.Metros {
			h := Host{
				Name:    c.Name + "-" + m,
				Network: c.Name,
				Endpoint: routing.Endpoint{
					Addr: b.hostAddr(c.ASN), ASN: c.ASN, Metro: m,
					Router: b.cores[c.ASN][m].ID,
				},
			}
			b.world.ContentReplicas[c.Name] = append(b.world.ContentReplicas[c.Name], h)
		}
	}
}

func (b *builder) buildRegionals() {
	tnames := []string{"Level3", "GTT", "Cogent", "Tata", "XO", "Zayo", "Telia", "NTT"}
	for i := 0; i < b.cfg.Scale.RegionalISPs; i++ {
		asn := topology.ASN(36000 + i)
		name := fmt.Sprintf("Regional%d", i+1)
		org := &topology.Org{Name: name + " Networks", ASNs: []topology.ASN{asn}}
		b.topo.Orgs = append(b.topo.Orgs, org)
		nm := 2 + b.rng.Intn(3)
		start := b.rng.Intn(len(b.metros))
		var metros []string
		for k := 0; k < nm; k++ {
			metros = append(metros, b.metros[(start+k)%len(b.metros)])
		}
		b.newAS(org, asn, name, topology.ASTypeStub, metros, 20)
		b.topo.Originate(asn, b.asAlloc[asn].MustAlloc(24)) // extra routed prefix
		for k := 0; k < 1+b.rng.Intn(2); k++ {
			tr := b.transits[tnames[b.rng.Intn(len(tnames))]]
			base, peak := b.healthyUtil()
			b.connect(tr.ASN, asn, topology.RelCustomer, metros[0], linkOpts{
				capMbps: 10000, baseUtil: base, peakUtil: peak,
			})
		}
		b.regionals = append(b.regionals, asn)
	}
}

func (b *builder) buildStubs() {
	tnames := []string{"Level3", "GTT", "Cogent", "Tata", "XO", "Zayo", "Telia", "NTT"}
	metrosOf := datasets.USMetros()
	weights := make([]float64, len(metrosOf))
	for i, m := range metrosOf {
		weights[i] = m.Weight
	}

	type stub struct {
		asn     topology.ASN
		metro   string
		hosting bool
	}
	choose := newWeightedChooser(weights)
	stubs := make([]stub, 0, b.cfg.Scale.StubASes)
	// Stubs number from 50000 upward, skipping ASNs the earlier phases
	// already assigned (the real-world roster ASNs land in this range
	// once StubASes reaches internet scale). Stubs build last, so the
	// taken-set is complete here, and the skip changes nothing for
	// scales whose stub window is collision-free.
	next := topology.ASN(50000)
	for i := 0; i < b.cfg.Scale.StubASes; i++ {
		for b.topo.AS(next) != nil {
			next++
		}
		asn := next
		next++
		mi := choose.pick(b.rng)
		metro := metrosOf[mi].Code
		hosting := b.rng.Float64() < b.cfg.Scale.HostingFrac
		name := fmt.Sprintf("Stub%d", i+1)
		if hosting {
			name = fmt.Sprintf("Hosting%d", i+1)
		}
		org := &topology.Org{Name: name + " Inc", ASNs: []topology.ASN{asn}}
		b.topo.Orgs = append(b.topo.Orgs, org)
		b.newAS(org, asn, name, topology.ASTypeStub, []string{metro}, 22)
		// 1-3 routed prefixes.
		for k := 0; k < b.rng.Intn(3); k++ {
			b.topo.Originate(asn, b.asAlloc[asn].MustAlloc(25))
		}
		stubs = append(stubs, stub{asn: asn, metro: metro, hosting: hosting})
		if hosting {
			b.hostingStubs = append(b.hostingStubs, asn)
		}
	}

	// Fill access-ISP customer quotas first (Table 3's CUST borders).
	attached := make(map[topology.ASN]int)
	custScale := b.cfg.Scale.CustomerScale
	if custScale == 0 {
		custScale = 1
	}
	for _, p := range datasets.AccessISPs() {
		quota := int(float64(p.CustomerTarget)*custScale + 0.5)
		// Regionals count as marquee customers for the biggest ISPs.
		for _, rasn := range b.regionals {
			if quota == 0 {
				break
			}
			if b.rng.Float64() < 0.04 {
				ras := b.topo.AS(rasn)
				shared := intersect(ras.Metros, p.Metros)
				if len(shared) == 0 || b.topo.RelOf(p.BackboneASN, rasn) != topology.RelNone {
					continue
				}
				owner := b.poolOwner(p.Name, shared[0])
				base, peak := b.healthyUtil()
				b.connect(owner, rasn, topology.RelCustomer, shared[0], linkOpts{
					capMbps: 10000, baseUtil: base, peakUtil: peak,
				})
				quota--
			}
		}
		for pass := 0; pass < 4 && quota > 0; pass++ {
			for si := range stubs {
				if quota == 0 {
					break
				}
				s := stubs[si]
				if !slices.Contains(p.Metros, s.metro) || attached[s.asn] > pass {
					continue
				}
				if b.rng.Float64() > 0.5 {
					continue
				}
				owner := b.poolOwner(p.Name, s.metro)
				if b.topo.RelOf(owner, s.asn) != topology.RelNone {
					continue
				}
				nlinks := 1
				if b.rng.Float64() < 0.25 {
					nlinks = 2
				}
				base, peak := b.healthyUtil()
				b.connect(owner, s.asn, topology.RelCustomer, s.metro, linkOpts{
					capMbps: 2000 + 8000*b.rng.Float64(), baseUtil: base, peakUtil: peak,
					parallel: nlinks,
				})
				attached[s.asn]++
				quota--
			}
		}
	}

	// Everyone gets at least one transit provider.
	for _, s := range stubs {
		n := 1
		if b.rng.Float64() < 0.3 {
			n = 2
		}
		for k := 0; k < n; k++ {
			tr := b.transits[tnames[b.rng.Intn(len(tnames))]]
			if b.topo.RelOf(tr.ASN, s.asn) != topology.RelNone {
				continue
			}
			base, peak := b.healthyUtil()
			b.connect(tr.ASN, s.asn, topology.RelCustomer, s.metro, linkOpts{
				capMbps: 4000, baseUtil: base, peakUtil: peak,
			})
		}
	}

	// Hosted popular domains live on hosting stubs.
	if len(b.hostingStubs) > 0 {
		for _, d := range b.world.Domains {
			if d.ContentOrg != "" {
				continue
			}
			asn := b.hostingStubs[b.rng.Intn(len(b.hostingStubs))]
			as := b.topo.AS(asn)
			b.world.DomainHosts[d.Name] = Host{
				Name:    d.Name,
				Network: as.Name,
				Endpoint: routing.Endpoint{
					Addr: b.hostAddr(asn), ASN: asn, Metro: as.Metros[0],
					Router: b.cores[asn][as.Metros[0]].ID,
				},
			}
		}
	}
}

// weightedChooser holds the running prefix sums of a weight vector so
// repeated draws cost one binary search instead of a linear scan.
type weightedChooser struct {
	cum []float64
}

func newWeightedChooser(weights []float64) *weightedChooser {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	return &weightedChooser{cum: cum}
}

// pick draws an index with probability proportional to its weight,
// consuming exactly one rng.Float64() like the former linear scan. The
// linear scan returned the first index whose cumulative weight strictly
// exceeds the draw, so after SearchFloat64s (which finds >=) the pick
// skips past exact boundary hits to keep the two draw-identical.
func (c *weightedChooser) pick(rng *rand.Rand) int {
	if len(c.cum) == 0 {
		return -1
	}
	r := rng.Float64() * c.cum[len(c.cum)-1]
	i := sort.SearchFloat64s(c.cum, r)
	for i < len(c.cum)-1 && c.cum[i] == r {
		i++
	}
	if i == len(c.cum) {
		i--
	}
	return i
}

func weightedChoice(weights []float64, rng *rand.Rand) int {
	return newWeightedChooser(weights).pick(rng)
}

func (b *builder) applyCongestion() {
	for _, cs := range b.cfg.Congestion {
		tr := b.transits[cs.Transit]
		an := b.access[cs.Access]
		if tr == nil || an == nil {
			continue
		}
		tASNs := []topology.ASN{tr.ASN}
		if tr.SiblingASN != 0 {
			tASNs = append(tASNs, tr.SiblingASN)
		}
		for _, tASN := range tASNs {
			for _, aASN := range an.Org.ASNs {
				for _, l := range b.topo.InterdomainLinks(tASN, aASN) {
					if cs.Metro != "" && l.Metro != cs.Metro {
						continue
					}
					l.BaseUtil, l.PeakUtil = cs.BaseUtil, cs.PeakUtil
					if cs.CapacityMbps > 0 {
						l.CapacityMbps = cs.CapacityMbps
					}
				}
			}
		}
	}
}

func (b *builder) placeMLab() {
	for _, tr := range datasets.Transits() {
		for _, m := range tr.MLabMetros {
			site := MLabSite{
				Name:    fmt.Sprintf("%s01.%s", m, strings.ToLower(tr.Name)),
				HostNet: tr.Name,
				Metro:   m,
			}
			for s := 0; s < b.cfg.Scale.ServersPerMLabSite; s++ {
				site.Servers = append(site.Servers, Host{
					Name:    fmt.Sprintf("ndt-%s-%d", site.Name, s+1),
					Network: tr.Name,
					Endpoint: routing.Endpoint{
						Addr: b.hostAddr(tr.ASN), ASN: tr.ASN, Metro: m,
						Router: b.cores[tr.ASN][m].ID,
					},
				})
			}
			b.world.MLabSites = append(b.world.MLabSites, site)
		}
	}
}

func (b *builder) placeSpeedtest() {
	scale := func(n int) int {
		v := int(float64(n)*b.cfg.SpeedtestFactor + 0.5)
		if n > 0 && v == 0 {
			v = 1
		}
		return v
	}
	add := func(name string, network string, asn topology.ASN, metro string) {
		core := b.cores[asn][metro]
		if core == nil {
			if ms := b.topo.AS(asn).Metros; len(ms) > 0 {
				core = b.cores[asn][ms[0]]
			}
		}
		if core == nil {
			return
		}
		b.world.Speedtest = append(b.world.Speedtest, Host{
			Name: name, Network: network,
			Endpoint: routing.Endpoint{
				Addr: b.hostAddr(asn), ASN: asn, Metro: core.Metro, Router: core.ID,
			},
		})
	}
	for _, tr := range datasets.Transits() {
		for s := 0; s < scale(tr.SpeedtestServers); s++ {
			m := b.topo.AS(tr.ASN).Metros[s%len(b.topo.AS(tr.ASN).Metros)]
			add(fmt.Sprintf("st-%s-%d", strings.ToLower(tr.Name), s+1), tr.Name, tr.ASN, m)
		}
	}
	for _, p := range datasets.AccessISPs() {
		for s := 0; s < scale(p.SpeedtestServers); s++ {
			m := p.Metros[s%len(p.Metros)]
			owner := b.poolOwner(p.Name, m)
			add(fmt.Sprintf("st-%s-%d", strings.ToLower(strings.ReplaceAll(p.Name, " ", "")), s+1), p.Name, owner, m)
		}
	}
	for _, c := range datasets.ContentNetworks() {
		for s := 0; s < scale(c.SpeedtestServers); s++ {
			add(fmt.Sprintf("st-%s-%d", strings.ToLower(c.Name), s+1), c.Name, c.ASN, c.Metros[s%len(c.Metros)])
		}
	}
	// The long tail: hosting companies and regionals.
	pool := append(append([]topology.ASN{}, b.hostingStubs...), b.regionals...)
	n := scale(b.cfg.Scale.SpeedtestStubServers)
	for s := 0; s < n && len(pool) > 0; s++ {
		asn := pool[b.rng.Intn(len(pool))]
		as := b.topo.AS(asn)
		add(fmt.Sprintf("st-%s-%d", strings.ToLower(as.Name), s+1), as.Name, asn, as.Metros[0])
	}
}

func (b *builder) placeArkVPs() {
	for _, p := range datasets.AccessISPs() {
		for i, m := range p.ArkVPMetros {
			ep, ok := b.world.NewClient(p.Name, m)
			if !ok {
				continue
			}
			b.world.ArkVPs = append(b.world.ArkVPs, ArkVP{
				Label: p.ArkVPLabels[i],
				ISP:   p.Name,
				Host:  Host{Name: p.ArkVPLabels[i], Network: p.Name, Endpoint: ep},
			})
		}
	}
}
