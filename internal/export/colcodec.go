// Column codec primitives for the binary columnar corpus format
// (tputlab-corpus/2). Each column of a chunk is one *stripe*: a small
// self-describing frame carrying the field id, the encoding, the
// payload length, the payload, and a CRC-32C of the payload. The
// encodings are the classic columnar trio:
//
//   - delta+varint for monotone-ish integer columns (test ids,
//     StartMinute, hop TTLs): zigzag so occasional regressions stay
//     cheap, one or two bytes per row in the common case;
//   - dictionary for low-cardinality columns (AS numbers, metros,
//     service tiers, server sites, PTR names): values appear once,
//     rows are varint codes;
//   - raw little-endian for the measurement samples themselves
//     (throughput, RTT, loss): floats do not compress with varints,
//     and a flat []float64 image decodes with one bounds check per
//     stripe instead of one parse per value.
//
// Everything here decodes from an in-memory frame with strict bounds
// checks: a truncated stripe, an oversized varint, a dictionary code
// past the table, or a row count that cannot fit the payload is an
// error, never a panic or an unbounded allocation (the fuzz target in
// columnar_fuzz_test.go holds that line).
package export

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// castagnoli is the CRC-32C table every stripe and footer checksum
// uses (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stripe encodings.
const (
	encRaw    byte = 0 // flat little-endian values (float64 or uint32)
	encVarint byte = 1 // unsigned varints
	encDelta  byte = 2 // zigzag varint deltas from the previous row
	encDict   byte = 3 // dictionary table + varint codes
	encBitmap byte = 4 // bit-packed bools, LSB-first
)

// encName names an encoding in decode errors.
func encName(enc byte) string {
	switch enc {
	case encRaw:
		return "raw"
	case encVarint:
		return "varint"
	case encDelta:
		return "delta"
	case encDict:
		return "dict"
	case encBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("enc%d", enc)
}

// zigzag folds signed values so small magnitudes of either sign stay
// short varints.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// --- encode side -----------------------------------------------------

// appendUvarints appends each value as an unsigned varint.
func appendUvarints(b []byte, vals []uint64) []byte {
	for _, v := range vals {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// appendDeltas appends vals as zigzag varint deltas (first value is a
// delta from zero).
func appendDeltas(b []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		b = binary.AppendUvarint(b, zigzag(v-prev))
		prev = v
	}
	return b
}

// appendFloats appends vals as flat little-endian float64 bits.
func appendFloats(b []byte, vals []float64) []byte {
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// appendUint32s appends vals as flat little-endian uint32s.
func appendUint32s(b []byte, vals []uint32) []byte {
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// appendBitmap appends vals bit-packed LSB-first.
func appendBitmap(b []byte, vals []bool) []byte {
	n := (len(vals) + 7) / 8
	start := len(b)
	b = append(b, make([]byte, n)...)
	for i, v := range vals {
		if v {
			b[start+i/8] |= 1 << (i % 8)
		}
	}
	return b
}

// appendStringDict appends a string dictionary stripe payload: the
// table in first-appearance order (length-prefixed entries), then one
// varint code per row. First-appearance order makes the bytes a pure
// function of the column, so serial and worker encodes are identical.
func appendStringDict(b []byte, rows []string, scratch map[string]uint64) []byte {
	clear(scratch)
	var table []string
	for _, s := range rows {
		if _, ok := scratch[s]; !ok {
			scratch[s] = uint64(len(table))
			table = append(table, s)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(table)))
	for _, s := range table {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	for _, s := range rows {
		b = binary.AppendUvarint(b, scratch[s])
	}
	return b
}

// appendFloatColumn picks the cheaper of a float dictionary (table of
// distinct bit patterns + varint codes) and the raw image, returning
// the payload and the encoding it chose. Tier plans and web100 time
// fractions have a handful of distinct values; measured throughput has
// millions — the split keeps both near their entropy.
func appendFloatColumn(b []byte, rows []float64, scratch map[uint64]uint64) ([]byte, byte) {
	clear(scratch)
	var table []uint64
	for _, v := range rows {
		bits := math.Float64bits(v)
		if _, ok := scratch[bits]; !ok {
			if len(table) > len(rows)/4 || len(table) >= 1<<12 {
				// High cardinality: dict would cost more than raw.
				return appendFloats(b, rows), encRaw
			}
			scratch[bits] = uint64(len(table))
			table = append(table, bits)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(table)))
	for _, bits := range table {
		b = binary.LittleEndian.AppendUint64(b, bits)
	}
	for _, v := range rows {
		b = binary.AppendUvarint(b, scratch[math.Float64bits(v)])
	}
	return b, encDict
}

// appendIntDict appends an integer dictionary stripe payload (varint
// table + varint codes), for low-cardinality id columns (server
// addresses, ASNs).
func appendIntDict(b []byte, rows []uint64, scratch map[uint64]uint64) []byte {
	clear(scratch)
	var table []uint64
	for _, v := range rows {
		if _, ok := scratch[v]; !ok {
			scratch[v] = uint64(len(table))
			table = append(table, v)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(table)))
	b = appendUvarints(b, table)
	for _, v := range rows {
		b = binary.AppendUvarint(b, scratch[v])
	}
	return b
}

// --- decode side -----------------------------------------------------

// colReader is a bounds-checked cursor over one frame's bytes. Every
// read error carries enough context to name the failure; none of the
// methods panic on any input.
type colReader struct {
	b   []byte
	off int
}

func (r *colReader) remaining() int { return len(r.b) - r.off }

// uvarint reads one unsigned varint, rejecting truncation and
// overlong (>10 byte / overflowing) encodings.
func (r *colReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("truncated varint at offset %d", r.off)
		}
		return 0, fmt.Errorf("oversized varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// take returns the next n bytes without copying.
func (r *colReader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("truncated: need %d bytes at offset %d, have %d", n, r.off, r.remaining())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// uvarints decodes n varints through fn (called once per row).
func (r *colReader) uvarints(n int, fn func(i int, v uint64)) error {
	for i := 0; i < n; i++ {
		v, err := r.uvarint()
		if err != nil {
			return err
		}
		fn(i, v)
	}
	return nil
}

// deltas decodes n zigzag varint deltas through fn.
func (r *colReader) deltas(n int, fn func(i int, v int64)) error {
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, err := r.uvarint()
		if err != nil {
			return err
		}
		prev += unzigzag(u)
		fn(i, prev)
	}
	return nil
}

// floats decodes n raw little-endian float64s through fn.
func (r *colReader) floats(n int, fn func(i int, v float64)) error {
	b, err := r.take(n * 8)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		fn(i, math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return nil
}

// uint32s decodes n raw little-endian uint32s through fn.
func (r *colReader) uint32s(n int, fn func(i int, v uint32)) error {
	b, err := r.take(n * 4)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		fn(i, binary.LittleEndian.Uint32(b[i*4:]))
	}
	return nil
}

// bitmap decodes n bit-packed bools through fn.
func (r *colReader) bitmap(n int, fn func(i int, v bool)) error {
	b, err := r.take((n + 7) / 8)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		fn(i, b[i/8]&(1<<(i%8)) != 0)
	}
	return nil
}

// intDict decodes an integer dictionary column through fn.
func (r *colReader) intDict(n int, fn func(i int, v uint64)) error {
	dn, err := r.uvarint()
	if err != nil {
		return err
	}
	if dn > uint64(r.remaining()) {
		return fmt.Errorf("dictionary of %d entries cannot fit %d payload bytes", dn, r.remaining())
	}
	table := make([]uint64, dn)
	for i := range table {
		if table[i], err = r.uvarint(); err != nil {
			return err
		}
	}
	var bad error
	err = r.uvarints(n, func(i int, code uint64) {
		if code >= uint64(len(table)) {
			if bad == nil {
				bad = fmt.Errorf("dictionary code %d out of range (table has %d entries)", code, len(table))
			}
			return
		}
		fn(i, table[code])
	})
	if err != nil {
		return err
	}
	return bad
}

// floatDict decodes a float dictionary column through fn.
func (r *colReader) floatDict(n int, fn func(i int, v float64)) error {
	dn, err := r.uvarint()
	if err != nil {
		return err
	}
	if dn > uint64(r.remaining()/8)+1 {
		return fmt.Errorf("float dictionary of %d entries cannot fit %d payload bytes", dn, r.remaining())
	}
	raw, err := r.take(int(dn) * 8)
	if err != nil {
		return err
	}
	table := make([]float64, dn)
	for i := range table {
		table[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	var bad error
	err = r.uvarints(n, func(i int, code uint64) {
		if code >= uint64(len(table)) {
			if bad == nil {
				bad = fmt.Errorf("dictionary code %d out of range (table has %d entries)", code, len(table))
			}
			return
		}
		fn(i, table[code])
	})
	if err != nil {
		return err
	}
	return bad
}

// stringDict decodes a string dictionary column through fn. Table
// entries are materialized once and shared by every row that codes to
// them — the decode-side interning that makes PTR-name columns cheap.
func (r *colReader) stringDict(n int, fn func(i int, s string)) error {
	dn, err := r.uvarint()
	if err != nil {
		return err
	}
	if dn > uint64(r.remaining()) {
		return fmt.Errorf("dictionary of %d entries cannot fit %d payload bytes", dn, r.remaining())
	}
	table := make([]string, dn)
	for i := range table {
		sl, err := r.uvarint()
		if err != nil {
			return err
		}
		if sl > uint64(r.remaining()) {
			return fmt.Errorf("dictionary entry of %d bytes cannot fit %d payload bytes", sl, r.remaining())
		}
		b, err := r.take(int(sl))
		if err != nil {
			return err
		}
		table[i] = string(b)
	}
	var bad error
	err = r.uvarints(n, func(i int, code uint64) {
		if code >= uint64(len(table)) {
			if bad == nil {
				bad = fmt.Errorf("dictionary code %d out of range (table has %d entries)", code, len(table))
			}
			return
		}
		fn(i, table[code])
	})
	if err != nil {
		return err
	}
	return bad
}

// stripe framing ------------------------------------------------------

// appendStripe frames one encoded column: field id, encoding byte,
// payload length, payload, CRC-32C of the payload.
func appendStripe(b []byte, field uint64, enc byte, payload []byte) []byte {
	b = binary.AppendUvarint(b, field)
	b = append(b, enc)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
}

// stripeHeader is one decoded stripe's identity and payload view.
type stripeHeader struct {
	field uint64
	enc   byte
	body  []byte
}

// readStripe consumes one stripe from r, verifying its checksum.
func readStripe(r *colReader) (stripeHeader, error) {
	field, err := r.uvarint()
	if err != nil {
		return stripeHeader{}, fmt.Errorf("stripe header: %w", err)
	}
	encByte, err := r.take(1)
	if err != nil {
		return stripeHeader{}, fmt.Errorf("stripe %d: %w", field, err)
	}
	n, err := r.uvarint()
	if err != nil {
		return stripeHeader{}, fmt.Errorf("stripe %d: %w", field, err)
	}
	body, err := r.take(int(n))
	if err != nil {
		return stripeHeader{}, fmt.Errorf("stripe %d: %w", field, err)
	}
	sum, err := r.take(4)
	if err != nil {
		return stripeHeader{}, fmt.Errorf("stripe %d: checksum: %w", field, err)
	}
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(sum); got != want {
		return stripeHeader{}, fmt.Errorf("stripe %d (%s): checksum mismatch (%08x != %08x)",
			field, encName(encByte[0]), got, want)
	}
	return stripeHeader{field: field, enc: encByte[0], body: body}, nil
}
