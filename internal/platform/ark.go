package platform

import (
	"math/rand"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// EndpointForAddr builds a destination endpoint for an arbitrary
// address: the origin AS is looked up in the public prefix→AS table,
// and the host is attached to that AS's access router when the address
// falls in a client pool, or to a core router otherwise. Campaigns use
// this to probe "one address in every routed prefix" (bdrmap's
// collection phase, §5.1).
func EndpointForAddr(w *topogen.World, addr netaddr.Addr) (routing.Endpoint, bool) {
	asn, ok := w.Topo.OriginOf(addr)
	if !ok {
		return routing.Endpoint{}, false
	}
	as := w.Topo.AS(asn)
	if as == nil || len(as.Routers) == 0 {
		return routing.Endpoint{}, false
	}
	// Client pool?
	for metro, pool := range as.ClientPools {
		if pool.Contains(addr) {
			for _, r := range as.Routers {
				if r.Kind == topology.RouterAccess && r.Metro == metro {
					return routing.Endpoint{Addr: addr, ASN: asn, Metro: metro, Router: r.ID}, true
				}
			}
		}
	}
	// Default: first core router (deterministic: Routers preserves
	// creation order, cores first).
	r := as.Routers[0]
	return routing.Endpoint{Addr: addr, ASN: asn, Metro: r.Metro, Router: r.ID}, true
}

// RoutedPrefixTargets returns one probe target per routed prefix, the
// input list for a bdrmap-style campaign.
func RoutedPrefixTargets(w *topogen.World) []routing.Endpoint {
	var out []routing.Endpoint
	seen := map[netaddr.Addr]bool{}
	w.Topo.Origin.Walk(func(p netaddr.Prefix, _ topology.ASN) bool {
		// Nested prefixes (a pool inside its AS block) can share probe
		// addresses; keep the first.
		addr := p.Nth(1 % p.NumAddrs())
		if seen[addr] {
			return true
		}
		seen[addr] = true
		if ep, ok := EndpointForAddr(w, addr); ok {
			out = append(out, ep)
		}
		return true
	})
	return out
}

// Campaign runs traceroutes from a VP to every target, returning the
// traces in target order (errors, e.g. unroutable targets, are
// skipped: real campaigns lose some traces too).
func Campaign(w *topogen.World, vp routing.Endpoint, targets []routing.Endpoint,
	art traceroute.Artifacts, seed int64) []*traceroute.Trace {

	rng := rand.New(rand.NewSource(seed))
	tracer := traceroute.New(w.Topo, w.Resolver, art)
	out := make([]*traceroute.Trace, 0, len(targets))
	minute := 0
	for i, tgt := range targets {
		if tgt.Addr == vp.Addr {
			continue
		}
		tr, err := tracer.Trace(vp, tgt, uint32(i), minute, rng)
		if err != nil {
			continue
		}
		out = append(out, tr)
		minute += 1 // campaigns spread over time
	}
	return out
}

// HostTargets converts platform hosts (M-Lab servers, Speedtest
// servers, content replicas) into probe targets.
func HostTargets(hosts []topogen.Host) []routing.Endpoint {
	out := make([]routing.Endpoint, len(hosts))
	for i, h := range hosts {
		out[i] = h.Endpoint
	}
	return out
}

// AlexaTargets resolves every popular domain from the VP's metro (using
// the ISP's resolver, as §5.1 does) and returns the distinct resolved
// endpoints.
func AlexaTargets(w *topogen.World, vpMetro string) []routing.Endpoint {
	seen := map[netaddr.Addr]bool{}
	var out []routing.Endpoint
	for _, d := range w.Domains {
		h, ok := w.ResolveDomain(d, vpMetro)
		if !ok || seen[h.Endpoint.Addr] {
			continue
		}
		seen[h.Endpoint.Addr] = true
		out = append(out, h.Endpoint)
	}
	return out
}
