package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/routing"
)

// ExperimentStat records the cost of one experiment inside a
// RunParallel sweep.
type ExperimentStat struct {
	Name string
	// Wall is the experiment's own wall time.
	Wall time.Duration
	// AllocBytes is the heap allocated while the experiment ran,
	// measured from the runtime's global counters — exact with one
	// worker, an attribution estimate when experiments overlap.
	AllocBytes uint64
}

// RunStats summarizes a RunParallel sweep. It is a view over the obs
// registry the sweep ran against: per-experiment numbers come from the
// sweep's "experiments" span tree and alloc gauges, and the resolver
// block from the same counters `-metrics` renders — there is no second
// bookkeeping path.
type RunStats struct {
	Workers int
	// Wall is the end-to-end sweep time; with more than one worker it
	// is less than the sum of per-experiment wall times.
	Wall time.Duration
	// Experiments holds per-experiment costs in registry order.
	Experiments []ExperimentStat
	// Resolver is the world resolver's cumulative cache/fallback
	// counters at the end of the sweep (world generation, corpus
	// collection, and the experiments all resolve through it). A
	// nonzero CoreFallbacks means some AS was routed through a metro it
	// has no presence in — a topology bug the metro-keyed caches would
	// otherwise mask.
	Resolver routing.Stats
	// Completeness is the corpus's fault-plane ledger; the zero value
	// (clean campaigns) renders nothing.
	Completeness platform.Completeness
	// MatchedDegraded counts matched test↔trace pairs excluded from
	// path-sensitive analyses as degraded.
	MatchedDegraded int
	// FaultCounters snapshots the faults.<kind>.<outcome> counters
	// (nil/empty when the fault plane was off).
	FaultCounters map[string]uint64
}

// Summary renders the stats as a small table, slowest experiment
// first; equal wall times order by experiment name so the rendering is
// deterministic.
func (s *RunStats) Summary() string {
	ordered := append([]ExperimentStat(nil), s.Experiments...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Wall != ordered[j].Wall {
			return ordered[i].Wall > ordered[j].Wall
		}
		return ordered[i].Name < ordered[j].Name
	})
	var sum time.Duration
	for _, st := range ordered {
		sum += st.Wall
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d experiments in %.2fs wall (%.2fs cpu-serial, %d workers)\n",
		len(ordered), s.Wall.Seconds(), sum.Seconds(), s.Workers)
	for _, st := range ordered {
		fmt.Fprintf(&sb, "  %-12s %8.3fs  %8.1f MB\n",
			st.Name, st.Wall.Seconds(), float64(st.AllocBytes)/(1<<20))
	}
	rs := s.Resolver
	hitRate := func(hits, misses uint64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(&sb, "resolver caches: segment %.1f%% inter %.1f%% aspath %.1f%% hit; core fallbacks %d\n",
		hitRate(rs.SegmentHits, rs.SegmentMisses),
		hitRate(rs.InterHits, rs.InterMisses),
		hitRate(rs.ASPathHits, rs.ASPathMisses),
		rs.CoreFallbacks)
	// Data-completeness block: only campaigns the fault plane actually
	// touched print it, so clean sweeps stay byte-identical to the
	// pre-fault-layer output.
	if c := s.Completeness; c.Degraded() {
		fmt.Fprintf(&sb, "data completeness: %d/%d tests collected (%d abandoned, %d rows dropped); %d truncated; %d degraded traces; %d matched pairs excluded\n",
			c.ScheduledTests-c.AbandonedTests-c.DroppedRows, c.ScheduledTests,
			c.AbandonedTests, c.DroppedRows, c.TruncatedTests, c.DegradedTraces,
			s.MatchedDegraded)
	}
	if len(s.FaultCounters) > 0 {
		names := make([]string, 0, len(s.FaultCounters))
		for n := range s.FaultCounters {
			if s.FaultCounters[n] > 0 {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&sb, "  %-36s %d\n", n, s.FaultCounters[n])
		}
	}
	return sb.String()
}

// RunParallel executes every registry experiment over a worker pool
// and emits output in registry order, byte-identical to RunAll. When
// an experiment fails, the output of the registry entries before it is
// returned together with the error, matching RunAll's partial-output
// semantics.
//
// Each experiment runs under an obs span (child of one "experiments"
// phase span) on the Env's registry — or a private registry when the
// Env is uninstrumented — and RunStats is assembled from those spans,
// so `-metrics` output and the Summary table always agree.
//
// Experiments share the Env read-only (the §5 per-VP cache is built
// once under Env.vpsOnce), so any worker count is safe and the output
// deterministic.
func RunParallel(e *Env, workers int) (string, *RunStats, error) {
	return RunParallelCtx(context.Background(), e, workers)
}

// RunParallelCtx is RunParallel under cooperative cancellation: workers
// finish the experiment they are on, claim nothing further, and the
// call returns an error wrapping the context's cause.
func RunParallelCtx(ctx context.Context, e *Env, workers int) (string, *RunStats, error) {
	entries := Registry()
	if workers < 1 {
		workers = 1
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	reg := e.Opts.Obs
	if reg == nil {
		// Stats are always collected; an uninstrumented run just keeps
		// them on a private registry nobody else renders.
		reg = obs.NewRegistry()
	}
	start := time.Now()
	sweep := reg.Span("experiments")

	type slot struct {
		out  string
		err  error
		span *obs.Span
	}
	slots := make([]slot, len(entries))
	allocs := make([]uint64, len(entries))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return // cancelled: claim nothing further
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(entries) {
					return
				}
				entry := entries[i]
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				sp := sweep.Child(entry.Name)
				r, err := entry.Run(e)
				sp.End()
				runtime.ReadMemStats(&after)
				slots[i].span = sp
				allocs[i] = after.TotalAlloc - before.TotalAlloc
				reg.Gauge("experiments." + entry.Name + ".alloc_bytes").Set(int64(allocs[i]))
				if err != nil {
					slots[i].err = fmt.Errorf("experiment %s: %w", entry.Name, err)
					continue
				}
				slots[i].out = renderEntry(entry, r)
			}
		}()
	}
	wg.Wait()
	sweep.End()

	stats := &RunStats{
		Workers:         workers,
		Resolver:        e.World.Resolver.Stats(),
		Completeness:    e.Corpus.Completeness,
		MatchedDegraded: e.Matching.Degraded,
		FaultCounters:   reg.CountersWithPrefix("faults."),
	}
	if ctx.Err() != nil {
		stats.Wall = time.Since(start)
		return "", stats, fmt.Errorf("experiments: run interrupted: %w", context.Cause(ctx))
	}
	var sb strings.Builder
	for i := range slots {
		stats.Experiments = append(stats.Experiments, ExperimentStat{
			Name: entries[i].Name, Wall: slots[i].span.Duration(), AllocBytes: allocs[i],
		})
		if slots[i].err != nil {
			stats.Wall = time.Since(start)
			return sb.String(), stats, slots[i].err
		}
		sb.WriteString(slots[i].out)
	}
	stats.Wall = time.Since(start)
	return sb.String(), stats, nil
}
