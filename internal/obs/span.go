package obs

import (
	"sync"
	"time"
)

// The phase-span tracer. A Span measures the wall time of one pipeline
// phase; spans form a tree that mirrors the run: world generation →
// population build → corpus collection → resolver warm-up →
// per-experiment runs.
//
// Two nesting modes:
//
//   - Registry.Span(name) opens a sequential span nested under the
//     innermost still-open sequential span. This fits orchestration code
//     (Generate, CollectParallel, NewEnv, the CLI) where phases start
//     and end on one goroutine in stack order.
//   - Span.Child(name) opens an explicit child of a given parent and
//     does NOT join the sequential stack. Concurrent sections (the
//     RunParallel worker pool) use it so sibling spans from different
//     goroutines attach to the right parent without interleaving the
//     stack.
//
// All tree mutation is guarded by the registry's span mutex; reading
// the tree (Snapshot, Summary) is meant for after the traced work has
// completed. The nil *Span is a no-op, so disabled tracing costs one
// branch.

// Span is one timed phase. Create via Registry.Span or Span.Child;
// close with End. The nil span is a valid no-op.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span

	mu *sync.Mutex // the owning registry's spanMu
	r  *Registry
}

// Span opens a sequential phase span nested under the innermost open
// sequential span (a root span when none is open). On a nil registry it
// returns nil.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now(), mu: &r.spanMu, r: r}
	r.spanMu.Lock()
	if n := len(r.stack); n > 0 {
		parent := r.stack[n-1]
		parent.children = append(parent.children, s)
	} else {
		r.roots = append(r.roots, s)
	}
	r.stack = append(r.stack, s)
	r.spanMu.Unlock()
	return s
}

// Child opens a span as an explicit child of s, without touching the
// sequential stack. Use it from worker goroutines so concurrent sibling
// spans attach under one parent. On a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), mu: s.mu, r: s.r}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, recording its wall time. Sequential spans are
// popped from the registry stack together with any still-open spans
// opened after them (a missing inner End cannot wedge the tracer). End
// on a nil or already-ended span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if s.r != nil {
		for i := len(s.r.stack) - 1; i >= 0; i-- {
			if s.r.stack[i] == s {
				s.r.stack = s.r.stack[:i]
				break
			}
		}
	}
}

// Name returns the span's name ("" on the nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's recorded wall time; for a span that has
// not ended it returns the time elapsed so far (0 on the nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}
