package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"throughputlab/internal/bgp"
	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/routing"
	"throughputlab/internal/topology"
)

func TestDiurnalShapeRange(t *testing.T) {
	f := func(h float64) bool {
		h = math.Abs(math.Mod(h, 24))
		s := DiurnalShape(h)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiurnalShapePeakAndTrough(t *testing.T) {
	if DiurnalShape(21) < 0.99 {
		t.Errorf("21:00 shape = %v, want ≈1 (peak)", DiurnalShape(21))
	}
	if DiurnalShape(9) > 0.01 {
		t.Errorf("09:00 shape = %v, want ≈0 (trough)", DiurnalShape(9))
	}
	if DiurnalShape(4) > DiurnalShape(20) {
		t.Error("4am load should be below 8pm load")
	}
}

func TestPerFlowShare(t *testing.T) {
	// Idle link: full capacity.
	if s := perFlowShareMbps(1000, 0); s != 1000 {
		t.Errorf("idle share = %v", s)
	}
	// Half loaded: residual dominates.
	if s := perFlowShareMbps(1000, 0.5); math.Abs(s-500) > 1 {
		t.Errorf("half-load share = %v, want ~500", s)
	}
	// Continuous at saturation.
	below := perFlowShareMbps(1000, 0.9999)
	at := perFlowShareMbps(1000, 1.0)
	if math.Abs(below-at) > 0.5 {
		t.Errorf("discontinuity at ρ=1: %v vs %v", below, at)
	}
	// Overload collapses monotonically.
	prev := at
	for rho := 1.05; rho < 2; rho += 0.05 {
		s := perFlowShareMbps(1000, rho)
		if s >= prev {
			t.Fatalf("share not decreasing at ρ=%v", rho)
		}
		prev = s
	}
	// Deep overload well below 2 Mbps.
	if s := perFlowShareMbps(1000, 1.3); s > 2.5 {
		t.Errorf("ρ=1.3 share = %v, want small", s)
	}
}

func TestPerFlowSharePositiveProperty(t *testing.T) {
	f := func(capRaw, rhoRaw float64) bool {
		c := 1 + math.Abs(math.Mod(capRaw, 1e5))
		rho := math.Abs(math.Mod(rhoRaw, 2))
		s := perFlowShareMbps(c, rho)
		return s > 0 && s <= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossAndQueueMonotone(t *testing.T) {
	prevL, prevQ := -1.0, -1.0
	for rho := 0.0; rho <= 1.6; rho += 0.02 {
		l, q := lossAt(rho), queueMsAt(rho)
		if l < prevL || q < prevQ {
			t.Fatalf("loss/queue not monotone at ρ=%v", rho)
		}
		if l < 0 || q < 0 {
			t.Fatalf("negative loss/queue at ρ=%v", rho)
		}
		prevL, prevQ = l, q
	}
	if lossAt(1.25) < 0.01 {
		t.Error("overloaded link should lose >1% of packets")
	}
	if queueMsAt(1.25) < 50 {
		t.Error("overloaded link should add serious queueing delay")
	}
}

func TestMathisCap(t *testing.T) {
	// Textbook: 1.22 * 1460B*8 / (100ms * sqrt(1e-4)) ≈ 14.2 Mbps.
	got := MathisCapMbps(100, 1e-4)
	if math.Abs(got-14.2) > 0.5 {
		t.Errorf("Mathis(100ms, 1e-4) = %v, want ≈14.2", got)
	}
	// Lower RTT → higher cap (the paper's §2 latency argument).
	if MathisCapMbps(10, 1e-4) <= got {
		t.Error("cap should grow as RTT shrinks")
	}
	if !math.IsInf(MathisCapMbps(0, 1e-4), 1) {
		t.Error("zero RTT cap should be +Inf")
	}
}

// flowNet builds a minimal one-AS-pair network with a configurable
// interdomain link.
type flowNet struct {
	model  *Model
	rv     *routing.Resolver
	path   *routing.Path
	inter  *topology.Link
	access *topology.Link
}

func buildFlowNet(t testing.TB, interCap, interBase, interPeak float64) *flowNet {
	metros := []geo.Metro{{Code: "atl", Name: "Atlanta", Lat: 33.75, Lon: -84.39, UTCOffset: -5, Weight: 1}}
	tp := topology.New(metros)
	org1 := &topology.Org{Name: "T"}
	org2 := &topology.Org{Name: "A"}
	tp.AddAS(&topology.AS{ASN: 100, Name: "T", Org: org1, Type: topology.ASTypeTransit, Metros: []string{"atl"}})
	tp.AddAS(&topology.AS{ASN: 200, Name: "A", Org: org2, Type: topology.ASTypeAccess, Metros: []string{"atl"}})
	tp.SetRel(100, 200, topology.RelPeer)

	core1 := tp.AddRouter(100, "atl", topology.RouterCore, "core.t")
	b1 := tp.AddRouter(100, "atl", topology.RouterBorder, "edge.t")
	core2 := tp.AddRouter(200, "atl", topology.RouterCore, "core.a")
	b2 := tp.AddRouter(200, "atl", topology.RouterBorder, "edge.a")
	agg := tp.AddRouter(200, "atl", topology.RouterAccess, "agg.a")

	alloc := topology.NewAllocator(netaddr.MustParsePrefix("10.0.0.0/8"))
	infra := alloc.MustAlloc(16)
	tp.Originate(100, infra)
	n := uint64(0)
	addr := func() netaddr.Addr { n++; return infra.Nth(n) }
	intra := func(a, b *topology.Router) {
		tp.AddLink(a, b, topology.LinkSpec{
			Kind: topology.LinkIntra, Metro: "atl", CapacityMbps: 1e6,
			AddrA: addr(), AddrOwnerA: 100, AddrB: addr(), AddrOwnerB: 100,
		})
	}
	intra(core1, b1)
	intra(core2, b2)
	intra(core2, agg)

	p2p := alloc.MustAlloc(30)
	inter := tp.AddLink(b1, b2, topology.LinkSpec{
		Kind: topology.LinkInterdomain, Metro: "atl",
		CapacityMbps: interCap, BaseUtil: interBase, PeakUtil: interPeak,
		AddrA: p2p.Nth(1), AddrOwnerA: 100,
		AddrB: p2p.Nth(2), AddrOwnerB: 100,
	})

	pool := alloc.MustAlloc(20)
	tp.Originate(200, pool)
	tp.AS(200).ClientPools["atl"] = pool
	line := tp.AddLink(agg, nil, topology.LinkSpec{
		Kind: topology.LinkAccessLine, Metro: "atl", CapacityMbps: 400,
		BaseUtil: 0.2, PeakUtil: 0.85,
		AddrA: addr(), AddrOwnerA: 200,
	})

	if errs := tp.Validate(); len(errs) != 0 {
		t.Fatalf("invalid topology: %v", errs)
	}
	routes := bgp.Compute(tp)
	rv := routing.New(tp, routes)
	server := routing.Endpoint{Addr: infra.Nth(9000), ASN: 100, Metro: "atl", Router: core1.ID}
	client := routing.Endpoint{Addr: pool.Nth(5), ASN: 200, Metro: "atl", Router: agg.ID, AccessLine: line}
	path, err := rv.Resolve(server, client, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &flowNet{model: New(tp, rv), rv: rv, path: path, inter: inter, access: line}
}

// minuteAtLocalHour converts a local hour in UTC-5 to a simulation
// minute.
func minuteAtLocalHour(h int) int { return ((h + 5) % 24) * 60 }

func TestBulkFlowHealthyOffPeak(t *testing.T) {
	n := buildFlowNet(t, 10000, 0.2, 0.6)
	res := n.model.BulkFlow(n.path, minuteAtLocalHour(5), FlowOpts{TierMbps: 50}, nil)
	if res.Kind != LimitAccessPlan {
		t.Errorf("off-peak healthy flow limited by %v, want access plan", res.Kind)
	}
	if math.Abs(res.ThroughputMbps-50) > 0.01 {
		t.Errorf("throughput = %v, want tier 50", res.ThroughputMbps)
	}
}

func TestBulkFlowCongestedInterconnect(t *testing.T) {
	// Paper Figure 5a regime: saturated interconnect at peak.
	n := buildFlowNet(t, 2000, 0.45, 1.3)
	peak := n.model.BulkFlow(n.path, minuteAtLocalHour(21), FlowOpts{TierMbps: 18}, nil)
	off := n.model.BulkFlow(n.path, minuteAtLocalHour(5), FlowOpts{TierMbps: 18}, nil)
	if peak.ThroughputMbps > 2 {
		t.Errorf("peak throughput across saturated link = %v Mbps, want < 2", peak.ThroughputMbps)
	}
	if off.ThroughputMbps < 10 {
		t.Errorf("off-peak throughput = %v, want near tier", off.ThroughputMbps)
	}
	if peak.Kind != LimitLink && peak.Kind != LimitLatency {
		t.Errorf("peak flow limited by %v, want link/latency", peak.Kind)
	}
	if peak.Kind == LimitLink && !peak.BottleneckSaturated {
		t.Error("bottleneck should be flagged saturated")
	}
	// Congestion inflates RTT and loss.
	if peak.RTTms <= off.RTTms {
		t.Error("peak RTT should exceed off-peak RTT (bufferbloat)")
	}
	if peak.LossRate <= off.LossRate {
		t.Error("peak loss should exceed off-peak loss")
	}
}

func TestBulkFlowBusyAccessDip(t *testing.T) {
	// Paper Figure 5b regime: wide interconnect, busy shared access
	// line at peak (ρ→0.85 on 400 Mbps) clips high tiers ~20-30%.
	n := buildFlowNet(t, 100000, 0.1, 0.5)
	peak := n.model.BulkFlow(n.path, minuteAtLocalHour(21), FlowOpts{TierMbps: 105}, nil)
	off := n.model.BulkFlow(n.path, minuteAtLocalHour(5), FlowOpts{TierMbps: 105}, nil)
	if off.ThroughputMbps < 100 {
		t.Errorf("off-peak = %v, want ≈105", off.ThroughputMbps)
	}
	drop := 1 - peak.ThroughputMbps/off.ThroughputMbps
	if drop < 0.1 || drop > 0.8 {
		t.Errorf("peak dip = %.0f%%, want moderate (not collapse)", drop*100)
	}
	if peak.ThroughputMbps < 20 {
		t.Errorf("peak throughput = %v, busy (not congested) access should stay usable", peak.ThroughputMbps)
	}
	// A low-tier client on the same line is unaffected.
	lowPeak := n.model.BulkFlow(n.path, minuteAtLocalHour(21), FlowOpts{TierMbps: 25}, nil)
	if lowPeak.Kind != LimitAccessPlan {
		t.Errorf("low-tier peak limited by %v, want access plan", lowPeak.Kind)
	}
}

func TestBulkFlowWiFiCap(t *testing.T) {
	n := buildFlowNet(t, 10000, 0.1, 0.4)
	res := n.model.BulkFlow(n.path, minuteAtLocalHour(5), FlowOpts{TierMbps: 100, WiFiCapMbps: 30}, nil)
	if res.Kind != LimitHomeWiFi || math.Abs(res.ThroughputMbps-30) > 0.01 {
		t.Errorf("wifi-capped flow = %v (%v)", res.ThroughputMbps, res.Kind)
	}
}

func TestBulkFlowNoiseBounded(t *testing.T) {
	n := buildFlowNet(t, 10000, 0.1, 0.4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		res := n.model.BulkFlow(n.path, minuteAtLocalHour(5), FlowOpts{TierMbps: 50, NoiseSigma: 0.1}, rng)
		if res.ThroughputMbps > 50+1e-9 {
			t.Fatalf("noise pushed throughput above the shaped tier: %v", res.ThroughputMbps)
		}
		if res.ThroughputMbps < 20 {
			t.Fatalf("noise collapsed throughput: %v", res.ThroughputMbps)
		}
	}
}

func TestLinkUtilFollowsLocalTime(t *testing.T) {
	n := buildFlowNet(t, 1000, 0.2, 0.9)
	peak := n.model.LinkUtil(n.inter, minuteAtLocalHour(21))
	trough := n.model.LinkUtil(n.inter, minuteAtLocalHour(9))
	if math.Abs(peak-0.9) > 0.01 {
		t.Errorf("peak util = %v, want ≈0.9", peak)
	}
	if math.Abs(trough-0.2) > 0.01 {
		t.Errorf("trough util = %v, want ≈0.2", trough)
	}
}

func TestDiurnalThroughputShapeOverDay(t *testing.T) {
	// Sweep a full day on a congested pair: throughput at 20-23h local
	// must be the daily minimum.
	n := buildFlowNet(t, 2000, 0.45, 1.3)
	var series [24]float64
	for h := 0; h < 24; h++ {
		res := n.model.BulkFlow(n.path, minuteAtLocalHour(h), FlowOpts{TierMbps: 18}, nil)
		series[h] = res.ThroughputMbps
	}
	minH := 0
	for h, v := range series {
		if v < series[minH] {
			minH = h
		}
	}
	if minH < 18 && minH != 0 {
		t.Errorf("daily throughput minimum at hour %d, want evening", minH)
	}
}

func BenchmarkBulkFlow(b *testing.B) {
	n := buildFlowNet(b, 2000, 0.45, 1.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.model.BulkFlow(n.path, i%1440, FlowOpts{TierMbps: 50}, nil)
	}
}

func TestPartialThroughput(t *testing.T) {
	// A full transfer reports the full rate; a cut at fraction f of the
	// transfer reports strictly less (the denominator stays the full
	// duration), monotonically in f, and never negative.
	if got := PartialThroughput(100, 1); got < 99.9 {
		t.Errorf("full transfer reports %v, want ~100", got)
	}
	prev := -1.0
	for f := 0.0; f <= 1.0; f += 0.05 {
		got := PartialThroughput(100, f)
		if got < 0 || got > 100 {
			t.Fatalf("PartialThroughput(100, %v) = %v out of [0, 100]", f, got)
		}
		if got < prev {
			t.Fatalf("PartialThroughput not monotone at f=%v", f)
		}
		prev = got
	}
	// A mid-transfer cut biases the estimate low: exactly the partial-
	// snapshot division artifact degradation-aware consumers must not
	// ingest.
	if got := PartialThroughput(100, 0.5); got >= 50 {
		t.Errorf("half transfer reports %v, want < 50 (ramp loss)", got)
	}
}
