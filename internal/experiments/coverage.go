package experiments

import (
	"fmt"
	"strings"

	"throughputlab/internal/alias"
	"throughputlab/internal/bdrmap"
	"throughputlab/internal/platform"
	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// VPAnalysis bundles everything §5 computes from one Ark vantage
// point: the bdrmap border map (the denominator of Figures 2–3) and
// the interconnections covered by traces toward each platform's
// servers and toward popular content.
type VPAnalysis struct {
	Label string // paper VP name, e.g. "bed-us"
	ISP   string

	Borders *bdrmap.Result

	// Covered interconnections per target set.
	MLabAS, SpeedAS, AlexaAS             map[topology.ASN]bool
	MLabRouter, SpeedRouter, AlexaRouter map[[2]int]bool

	// Rel classifies a neighbor from the VP org's perspective.
	Rel func(topology.ASN) topology.Rel
}

// VPAnalyses runs the §5 methodology for every Ark VP (cached on the
// Env): a traceroute campaign to every routed prefix, plus campaigns
// toward M-Lab servers, Speedtest servers, and the per-VP Alexa
// targets, all labeled by one shared MAP-IT inference.
func VPAnalyses(e *Env) []*VPAnalysis {
	e.vpsOnce.Do(func() {
		w := e.World
		prefixTargets := platform.RoutedPrefixTargets(w)
		mlabTargets := platform.HostTargets(w.MLabServers())
		speedTargets := platform.HostTargets(w.Speedtest)

		var out []*VPAnalysis
		for vi, vp := range w.ArkVPs {
			out = append(out, AnalyzeVP(e, vp, prefixTargets, mlabTargets, speedTargets, int64(1000+vi)))
		}
		e.vps = out
	})
	return e.vps
}

// AnalyzeVP runs the §5 methodology for one vantage point (uncached).
// Target lists may be shared across VPs; pass nil to rebuild them.
func AnalyzeVP(e *Env, vp topogen.ArkVP, prefixTargets, mlabTargets, speedTargets []routing.Endpoint, seed int64) *VPAnalysis {
	w := e.World
	if prefixTargets == nil {
		prefixTargets = platform.RoutedPrefixTargets(w)
	}
	if mlabTargets == nil {
		mlabTargets = platform.HostTargets(w.MLabServers())
	}
	if speedTargets == nil {
		speedTargets = platform.HostTargets(w.Speedtest)
	}
	art := traceroute.DefaultArtifacts()
	art.DstNoReplyProb = 0.05

	campaign := platform.Campaign(w, vp.Host.Endpoint, prefixTargets, art, seed)
	mlab := platform.Campaign(w, vp.Host.Endpoint, mlabTargets, art, seed+1)
	speed := platform.Campaign(w, vp.Host.Endpoint, speedTargets, art, seed+2)
	alexa := platform.Campaign(w, vp.Host.Endpoint,
		platform.AlexaTargets(w, vp.Host.Endpoint.Metro), art, seed+3)

	orgASNs := w.Access[vp.ISP].Org.ASNs
	rel := func(n topology.ASN) topology.Rel {
		for _, o := range orgASNs {
			if r := w.Topo.RelOf(o, n); r != topology.RelNone {
				return r
			}
		}
		return topology.RelNone
	}
	opts := bdrmap.Opts{
		OrgASNs:   orgASNs,
		MapIt:     e.MapItOpts(),
		Rel:       rel,
		Alias:     alias.New(w.Topo),
		AliasSeed: seed + 4,
	}
	all := make([]*traceroute.Trace, 0, len(campaign)+len(mlab)+len(speed)+len(alexa))
	all = append(all, campaign...)
	all = append(all, mlab...)
	all = append(all, speed...)
	all = append(all, alexa...)
	az := bdrmap.NewAnalyzer(all, opts)

	va := &VPAnalysis{Label: vp.Label, ISP: vp.ISP, Rel: rel}
	va.Borders = az.Borders(campaign)
	va.MLabAS, va.MLabRouter = az.CoverageSets(mlab)
	va.SpeedAS, va.SpeedRouter = az.CoverageSets(speed)
	va.AlexaAS, va.AlexaRouter = az.CoverageSets(alexa)
	return va
}

// ---- Table 3 ----

// Table3Result reproduces Table 3: per-VP border statistics.
type Table3Result struct {
	Rows []*VPAnalysis
}

// Table3 runs bdrmap from all 16 Ark VPs.
func Table3(e *Env) *Table3Result { return &Table3Result{Rows: VPAnalyses(e)} }

// Render prints Table 3.
func (r *Table3Result) Render() string {
	var rows [][]string
	for _, v := range r.Rows {
		cust := v.Borders.ByRel[topology.RelCustomer]
		prov := v.Borders.ByRel[topology.RelProvider]
		peer := v.Borders.ByRel[topology.RelPeer]
		rows = append(rows, []string{
			v.ISP, v.Label,
			fmt.Sprintf("%d", v.Borders.ASCount), fmt.Sprintf("%d", v.Borders.RouterCount),
			fmt.Sprintf("%d", cust.AS), fmt.Sprintf("%d", cust.Router),
			fmt.Sprintf("%d", prov.AS), fmt.Sprintf("%d", prov.Router),
			fmt.Sprintf("%d", peer.AS), fmt.Sprintf("%d", peer.Router),
		})
	}
	return "Table 3 — bdrmap border statistics per Ark VP (AS / router level)\n" +
		table([]string{"Network", "VP", "ALL AS", "ALL rtr", "CUST AS", "CUST rtr",
			"PROV AS", "PROV rtr", "PEER AS", "PEER rtr"}, rows)
}

// ---- Figures 2 and 3 ----

// CoverageRow is one VP's bar group in Figure 2 or 3.
type CoverageRow struct {
	Label, ISP                   string
	BdrmapAS, MLabAS, SpeedAS    int
	BdrmapRtr, MLabRtr, SpeedRtr int
}

// CoverageResult holds Figure 2 (all interconnections) or Figure 3
// (peers only).
type CoverageResult struct {
	PeersOnly bool
	Rows      []CoverageRow
}

// Fig2 computes coverage of all interconnections.
func Fig2(e *Env) *CoverageResult { return coverage(e, false) }

// Fig3 computes coverage of peer interconnections only.
func Fig3(e *Env) *CoverageResult { return coverage(e, true) }

func coverage(e *Env, peersOnly bool) *CoverageResult {
	res := &CoverageResult{PeersOnly: peersOnly}
	for _, v := range VPAnalyses(e) {
		row := CoverageRow{Label: v.Label, ISP: v.ISP}
		keep := func(n topology.ASN) bool {
			return !peersOnly || v.Rel(n) == topology.RelPeer
		}
		for _, b := range v.Borders.Borders {
			if keep(b.Neighbor) {
				row.BdrmapAS++
				row.BdrmapRtr += b.RouterPairs
			}
		}
		countAS := func(set map[topology.ASN]bool) int {
			n := 0
			for a := range set {
				if keep(a) {
					n++
				}
			}
			return n
		}
		row.MLabAS = countAS(v.MLabAS)
		row.SpeedAS = countAS(v.SpeedAS)
		if peersOnly {
			// Router-level peer filtering requires neighbor attribution
			// per router pair; approximate by scaling with the AS-level
			// peer share of each covered set — the paper's router-level
			// bars follow the same ordering.
			row.MLabRtr = routerCountFiltered(v, v.MLabRouter, v.MLabAS, keep)
			row.SpeedRtr = routerCountFiltered(v, v.SpeedRouter, v.SpeedAS, keep)
		} else {
			row.MLabRtr = len(v.MLabRouter)
			row.SpeedRtr = len(v.SpeedRouter)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func routerCountFiltered(v *VPAnalysis, routers map[[2]int]bool, ases map[topology.ASN]bool,
	keep func(topology.ASN) bool) int {
	if len(ases) == 0 {
		return 0
	}
	kept := 0
	for a := range ases {
		if keep(a) {
			kept++
		}
	}
	return len(routers) * kept / len(ases)
}

// Render prints the coverage bars as a table with fractions.
func (r *CoverageResult) Render() string {
	title := "Figure 2 — coverage of AS- and router-level interconnections"
	if r.PeersOnly {
		title = "Figure 3 — coverage of AS- and router-level PEER interconnections"
	}
	var rows [][]string
	for _, row := range r.Rows {
		fm, fs := 0.0, 0.0
		if row.BdrmapAS > 0 {
			fm = float64(row.MLabAS) / float64(row.BdrmapAS)
			fs = float64(row.SpeedAS) / float64(row.BdrmapAS)
		}
		rows = append(rows, []string{
			row.Label, row.ISP,
			fmt.Sprintf("%d", row.BdrmapAS), fmt.Sprintf("%d", row.MLabAS), fmt.Sprintf("%d", row.SpeedAS),
			pct(fm), pct(fs),
			fmt.Sprintf("%d", row.BdrmapRtr), fmt.Sprintf("%d", row.MLabRtr), fmt.Sprintf("%d", row.SpeedRtr),
		})
	}
	return title + "\n" + table([]string{"VP", "ISP", "bdrmap AS", "M-Lab AS", "Speedtest AS",
		"M-Lab %", "Speedtest %", "bdrmap rtr", "M-Lab rtr", "Speedtest rtr"}, rows)
}

// ---- Figure 4 ----

// Fig4Row is one VP's set-difference bars.
type Fig4Row struct {
	Label, ISP string
	// AS-level set differences.
	MLabNotAlexa, AlexaNotMLab   int
	SpeedNotAlexa, AlexaNotSpeed int
	AlexaTotal                   int
	// Router-level set differences.
	RtrMLabNotAlexa, RtrAlexaNotMLab   int
	RtrSpeedNotAlexa, RtrAlexaNotSpeed int
}

// Fig4Result reproduces Figure 4.
type Fig4Result struct{ Rows []Fig4Row }

// Fig4 compares interconnections on paths to platform servers against
// those on paths to popular content.
func Fig4(e *Env) *Fig4Result {
	res := &Fig4Result{}
	for _, v := range VPAnalyses(e) {
		row := Fig4Row{Label: v.Label, ISP: v.ISP, AlexaTotal: len(v.AlexaAS)}
		diffAS := func(a, b map[topology.ASN]bool) int {
			n := 0
			for x := range a {
				if !b[x] {
					n++
				}
			}
			return n
		}
		diffRtr := func(a, b map[[2]int]bool) int {
			n := 0
			for x := range a {
				if !b[x] {
					n++
				}
			}
			return n
		}
		row.MLabNotAlexa = diffAS(v.MLabAS, v.AlexaAS)
		row.AlexaNotMLab = diffAS(v.AlexaAS, v.MLabAS)
		row.SpeedNotAlexa = diffAS(v.SpeedAS, v.AlexaAS)
		row.AlexaNotSpeed = diffAS(v.AlexaAS, v.SpeedAS)
		row.RtrMLabNotAlexa = diffRtr(v.MLabRouter, v.AlexaRouter)
		row.RtrAlexaNotMLab = diffRtr(v.AlexaRouter, v.MLabRouter)
		row.RtrSpeedNotAlexa = diffRtr(v.SpeedRouter, v.AlexaRouter)
		row.RtrAlexaNotSpeed = diffRtr(v.AlexaRouter, v.SpeedRouter)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints Figure 4's bars.
func (r *Fig4Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		uncov := 0.0
		if row.AlexaTotal > 0 {
			uncov = float64(row.AlexaNotMLab) / float64(row.AlexaTotal)
		}
		rows = append(rows, []string{
			row.Label, row.ISP,
			fmt.Sprintf("%d", row.MLabNotAlexa), fmt.Sprintf("%d", row.AlexaNotMLab),
			fmt.Sprintf("%d", row.SpeedNotAlexa), fmt.Sprintf("%d", row.AlexaNotSpeed),
			pct(uncov),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 4 — interconnections on platform paths vs popular-content paths (AS level)\n")
	sb.WriteString(table([]string{"VP", "ISP", "Mlab−Alexa", "Alexa−Mlab",
		"Speed−Alexa", "Alexa−Speed", "Alexa uncovered by M-Lab"}, rows))
	return sb.String()
}
