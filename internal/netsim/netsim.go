// Package netsim is the fluid network model: every link carries a
// diurnal background load, and a bulk TCP flow (an NDT test) over a
// resolved path achieves the minimum of its access-plan rate, its home
// Wi-Fi ceiling, the tightest link's available rate, and the
// Mathis/Padhye RTT-loss cap [33]. Saturated links additionally inflate
// RTT (bufferbloat) and loss, which is what drives peak-hour throughput
// below 1 Mbps for clients behind a congested interconnection while
// leaving the same clients fast off-peak (Figure 5a); busy-but-
// unsaturated links produce the shallower 20–30% diurnal dip of
// Figure 5b.
package netsim

import (
	"math"
	"math/rand"

	"throughputlab/internal/geo"
	"throughputlab/internal/routing"
	"throughputlab/internal/topology"
)

// DiurnalShape maps local hour [0,24) to load fraction [0,1]: the
// trough sits in the early morning and the peak around 21:00 local,
// matching the diurnal demand pattern the paper's analyses key on.
func DiurnalShape(localHour float64) float64 {
	s := 0.5 + 0.5*math.Cos(2*math.Pi*(localHour-21)/24)
	// Sharpen slightly so evening peak hours stand out.
	return math.Pow(s, 1.3)
}

// Model evaluates link state and flow throughput over a topology.
type Model struct {
	topo *topology.Topology
	rv   *routing.Resolver
	// linkMetro caches each link's metro by dense link ID, replacing a
	// string-keyed map lookup on every utilization evaluation.
	linkMetro []geo.Metro
}

// New builds a Model.
func New(t *topology.Topology, rv *routing.Resolver) *Model {
	m := &Model{topo: t, rv: rv}
	maxID := topology.LinkID(-1)
	for _, l := range t.Links() {
		if l.ID > maxID {
			maxID = l.ID
		}
	}
	m.linkMetro = make([]geo.Metro, maxID+1)
	for _, l := range t.Links() {
		m.linkMetro[l.ID] = t.MustMetro(l.Metro)
	}
	return m
}

// metroOf returns the link's metro from the dense cache, falling back
// to the topology for links the model was not built over (tests that
// synthesize links by hand).
func (m *Model) metroOf(l *topology.Link) geo.Metro {
	if int(l.ID) < len(m.linkMetro) && m.linkMetro[l.ID].Code == l.Metro {
		return m.linkMetro[l.ID]
	}
	return m.topo.MustMetro(l.Metro)
}

// LinkUtil returns the background demand/capacity ratio ρ of the link
// at the given simulation minute (values above 1 mean offered load
// exceeds capacity at that hour).
func (m *Model) LinkUtil(l *topology.Link, minute int) float64 {
	metro := m.metroOf(l)
	shape := DiurnalShape(metro.LocalHour(minute))
	return l.BaseUtil + (l.PeakUtil-l.BaseUtil)*shape
}

// shapeMemo caches DiurnalShape per UTC offset within one flow
// evaluation: every link on a path is evaluated at the same minute, so
// links sharing a timezone share the shape value exactly. Offsets
// outside the table (|off| > 13) fall through to a direct computation.
type shapeMemo struct {
	set [28]bool
	v   [28]float64
}

func (s *shapeMemo) at(metro geo.Metro, minute int) float64 {
	i := metro.UTCOffset + 13
	if i < 0 || i >= len(s.v) {
		return DiurnalShape(metro.LocalHour(minute))
	}
	if !s.set[i] {
		s.v[i] = DiurnalShape(metro.LocalHour(minute))
		s.set[i] = true
	}
	return s.v[i]
}

// perFlowShareMbps is the rate one more bulk flow achieves on the link
// given its current load. Below saturation the flow takes the larger of
// the residual capacity C·(1-ρ) and its TCP-fair share against the
// active flows; past saturation flows pile up and the share collapses.
// The function is continuous at ρ = 1.
func perFlowShareMbps(capMbps, rho float64) float64 {
	// satShare is the typical per-flow rate right at saturation on a
	// consumer-facing link.
	const satShare = 4.0
	switch {
	case rho <= 0:
		return capMbps
	case rho < 1:
		return math.Max(capMbps*(1-rho), satShare/math.Max(rho, 0.5))
	default:
		return satShare / (1 + 6*(rho-1))
	}
}

// LinkAvailMbps is the rate a new bulk flow can achieve on this link
// alone at the given minute.
func (m *Model) LinkAvailMbps(l *topology.Link, minute int) float64 {
	return perFlowShareMbps(l.CapacityMbps, m.LinkUtil(l, minute))
}

// LinkLossRate returns the packet loss probability contributed by the
// link at the given minute.
func (m *Model) LinkLossRate(l *topology.Link, minute int) float64 {
	return lossAt(m.LinkUtil(l, minute))
}

func lossAt(rho float64) float64 {
	switch {
	case rho < 0.7:
		return 1e-6
	case rho < 1:
		x := (rho - 0.7) / 0.3
		return 1e-6 + 2e-4*x*x
	default:
		return 0.003 + 0.08*(rho-1)
	}
}

// LinkQueueMs returns the queueing delay the link adds to the one-way
// path at the given minute (bufferbloat under overload).
func (m *Model) LinkQueueMs(l *topology.Link, minute int) float64 {
	return queueMsAt(m.LinkUtil(l, minute))
}

func queueMsAt(rho float64) float64 {
	switch {
	case rho < 0.5:
		return 0
	case rho < 1:
		return 15 * (rho - 0.5) / 0.5
	default:
		return 80 + 40*(rho-1)
	}
}

// FlowOpts carries the client-side constraints of one NDT test.
type FlowOpts struct {
	// TierMbps is the client's provisioned service-plan rate (0 = no
	// plan shaping, e.g. server-to-server tests).
	TierMbps float64
	// WiFiCapMbps caps throughput when the home wireless network is the
	// bottleneck (0 = wired/no cap). §6.1 "home network interference".
	WiFiCapMbps float64
	// NoiseSigma is the standard deviation of multiplicative lognormal
	// measurement noise (0 disables; typical 0.10).
	NoiseSigma float64
}

// BottleneckKind classifies what limited a flow — the ground truth the
// paper's §6.2 wishes speed tests could report.
type BottleneckKind int

const (
	// LimitAccessPlan: the service tier was the limit (healthy case).
	LimitAccessPlan BottleneckKind = iota
	// LimitHomeWiFi: the home wireless network was the limit.
	LimitHomeWiFi
	// LimitLink: a network link's available rate was the limit.
	LimitLink
	// LimitLatency: the Mathis RTT/loss cap was the limit.
	LimitLatency
)

// String implements fmt.Stringer.
func (k BottleneckKind) String() string {
	switch k {
	case LimitAccessPlan:
		return "access-plan"
	case LimitHomeWiFi:
		return "home-wifi"
	case LimitLink:
		return "link"
	case LimitLatency:
		return "latency"
	}
	return "unknown"
}

// FlowResult is the outcome of one simulated bulk transfer.
type FlowResult struct {
	ThroughputMbps float64
	// RTTms is the steady-state flow RTT including queueing delay on
	// loaded links AND the flow's self-induced buffering — the "flow
	// RTT" metric of the M-Lab reports.
	RTTms float64
	// BaseRTTms is the propagation-only RTT (no queues anywhere).
	BaseRTTms float64
	// StartRTTms is the RTT the flow's first packets see: propagation
	// plus queueing already present from background traffic, before the
	// flow has built any standing queue of its own. The gap between
	// StartRTTms and RTTms is the core discriminator of TCP congestion
	// signatures [37]: a flow that is itself the bottleneck-filler
	// starts with a low RTT and drives it up; a flow arriving at an
	// already-congested link sees a high RTT from the first packet.
	StartRTTms float64
	// SelfQueueMs is the flow's own standing-queue contribution
	// (RTTms - StartRTTms).
	SelfQueueMs float64
	// LossRate is the end-to-end loss probability (≈ NDT's
	// retransmission rate).
	LossRate float64
	// Bottleneck is the limiting link when Kind == LimitLink, or the
	// most-loaded link when the path crossed a saturated one (the
	// latency cap usually binds there via queueing and loss).
	Bottleneck *topology.Link
	// BottleneckSaturated reports whether ANY link on the path had
	// offered background load exceeding capacity (ρ ≥ 1): the "flow
	// arrived at an already congested link" state of §6.2 / TCP
	// congestion signatures [37]. On such paths the throughput limit
	// typically manifests as the RTT/loss cap, so this flag is
	// independent of Kind.
	BottleneckSaturated bool
	Kind                BottleneckKind
}

const (
	mssBits     = 1460 * 8
	mathisConst = 1.22
)

// PartialThroughput models the headline number a mid-transfer
// truncation leaves in a test record: the pipeline divides the bytes
// acknowledged before the cut by the NOMINAL test duration (the final
// duration field is among the counters a partial snapshot is missing),
// so the reported rate shrinks by the completed fraction — and a cut
// that lands inside the slow-start ramp (the first ~10% of the test)
// delivers proportionally less than frac of the bytes on top.
func PartialThroughput(rateMbps, frac float64) float64 {
	if frac >= 1 {
		return rateMbps
	}
	if frac <= 0 {
		return 0
	}
	const ramp = 0.1
	bytesFrac := frac - ramp/2
	if frac < ramp {
		// Entirely inside the ramp: bytes grow quadratically from 0.
		bytesFrac = frac * frac / (2 * ramp)
	}
	return rateMbps * bytesFrac
}

// MathisCapMbps is the throughput ceiling MSS·C/(RTT·√p) [33].
func MathisCapMbps(rttMs, loss float64) float64 {
	if rttMs <= 0 {
		return math.Inf(1)
	}
	if loss < 1e-7 {
		loss = 1e-7
	}
	return mathisConst * mssBits / (rttMs / 1000 * math.Sqrt(loss)) / 1e6
}

// BulkFlow evaluates one bulk TCP transfer along the path at the given
// simulation minute. rng supplies measurement noise and may be nil when
// opts.NoiseSigma is 0.
func (m *Model) BulkFlow(p *routing.Path, minute int, opts FlowOpts, rng *rand.Rand) FlowResult {
	res := FlowResult{Kind: LimitAccessPlan}

	// Scan links: tightest available rate, total loss, total queue.
	avail := math.Inf(1)
	loss := 0.0
	queueMs := 0.0
	maxRho := 0.0
	var bottleneck, hottest *topology.Link
	var shapes shapeMemo
	for _, l := range p.Links {
		shape := shapes.at(m.metroOf(l), minute)
		rho := l.BaseUtil + (l.PeakUtil-l.BaseUtil)*shape
		a := perFlowShareMbps(l.CapacityMbps, rho)
		if a < avail {
			avail, bottleneck = a, l
		}
		if rho > maxRho {
			maxRho, hottest = rho, l
		}
		loss += lossAt(rho)
		queueMs += queueMsAt(rho)
	}
	base := m.rv.RTTms(p)
	startRTT := base + queueMs
	res.BaseRTTms = base
	res.StartRTTms = startRTT
	res.LossRate = loss

	tput := avail
	kind := BottleneckKind(LimitLink)
	if cap := MathisCapMbps(startRTT, loss); cap < tput {
		tput, kind = cap, LimitLatency
	}
	if opts.TierMbps > 0 && opts.TierMbps < tput {
		tput, kind = opts.TierMbps, LimitAccessPlan
	}
	if opts.WiFiCapMbps > 0 && opts.WiFiCapMbps < tput {
		tput, kind = opts.WiFiCapMbps, LimitHomeWiFi
	}
	if opts.NoiseSigma > 0 && rng != nil {
		tput *= math.Exp(rng.NormFloat64() * opts.NoiseSigma)
		if opts.TierMbps > 0 && tput > opts.TierMbps {
			tput = opts.TierMbps // plans shape hard; noise cannot exceed them
		}
	}
	res.ThroughputMbps = tput
	res.Kind = kind

	// Self-induced standing queue: when the flow itself saturates its
	// bottleneck (plan shaper, Wi-Fi, or an otherwise-idle link), it
	// fills the buffer in front of that bottleneck — roughly one
	// home-router buffer (~128 KB) draining at the achieved rate. A
	// flow squeezed by an already-saturated upstream link never builds
	// a meaningful queue of its own: the buffer is already full of
	// other people's traffic.
	saturatedUpstream := maxRho >= 1
	switch {
	case saturatedUpstream || kind == LimitLatency:
		res.SelfQueueMs = 1.5
	default:
		const bufferKbit = 128 * 8
		res.SelfQueueMs = math.Min(80, bufferKbit/math.Max(tput, 1))
	}
	res.RTTms = startRTT + res.SelfQueueMs
	res.BottleneckSaturated = maxRho >= 1
	switch {
	case kind == LimitLink:
		res.Bottleneck = bottleneck
	case res.BottleneckSaturated:
		res.Bottleneck = hottest
	}
	return res
}
